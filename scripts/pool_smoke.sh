#!/usr/bin/env sh
# pool_smoke.sh — the sample-pool serving-path smoke: gate the binary
# wire codec's allocation budget, boot iqsserve with pooling on, drive a
# hot-window read loop (JSON and binary framing), and assert the pool
# actually served — full hits recorded, a high hit rate on the hot
# window, draws conserved against refills, and both wire-format legs
# counted. Exits non-zero on any failure. Used by `make pool-smoke`.
set -eu

BIN_DIR=${BIN_DIR:-/tmp/iqs-pool-smoke}
HOT_REQUESTS=${HOT_REQUESTS:-120}
mkdir -p "$BIN_DIR"

# Allocation gate first: the end-to-end binary /sample path must stay at
# or under 10 allocs/op (same budget the CI bench-smoke job enforces).
go test -run XXX -bench 'ServerSampleBinary' -benchmem -benchtime=100x \
  ./internal/server >"$BIN_DIR/bench-bin.out"
if awk '/BenchmarkServerSampleBinary/ { if ($NF != "allocs/op") exit 1; found=1; if ($(NF-1)+0 > 10) { print "binary allocs/op regression: " $0; bad=1 } } END { exit bad || !found }' "$BIN_DIR/bench-bin.out"; then
  echo "pool-smoke: binary allocation gate holds (<= 10 allocs/op)"
else
  cat "$BIN_DIR/bench-bin.out" >&2
  echo "pool-smoke: binary allocation gate failed" >&2
  exit 1
fi

go build -o "$BIN_DIR/iqsserve" ./cmd/iqsserve

SERVER_OUT="$BIN_DIR/server.out"
SERVER_ERR="$BIN_DIR/server.err"
: >"$SERVER_OUT"
: >"$SERVER_ERR"

"$BIN_DIR/iqsserve" -addr 127.0.0.1:0 -shards 4 -n 16384 -pool 512 \
  >"$SERVER_OUT" 2>"$SERVER_ERR" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

ADDR=
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^iqsserve: listening on \([^ ]*\) .*/\1/p' "$SERVER_OUT")
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "pool-smoke: server died during startup" >&2
    cat "$SERVER_ERR" >&2
    exit 1
  }
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "pool-smoke: server never reported its address" >&2
  cat "$SERVER_OUT" "$SERVER_ERR" >&2
  exit 1
fi
echo "pool-smoke: server on $ADDR"

# Hot load: one pool-favorable window, hammered. Every 8th request
# negotiates the binary framing so the format="binary" wire leg is
# exercised alongside JSON.
i=0
while [ "$i" -lt "$HOT_REQUESTS" ]; do
  if [ $((i % 8)) -eq 0 ]; then
    curl -fsS -H 'Accept: application/x-iqs-bin' \
      "http://$ADDR/sample?lo=100&hi=300&k=4" >/dev/null
  else
    curl -fsS "http://$ADDR/sample?lo=100&hi=300&k=4" >/dev/null
  fi
  i=$((i + 1))
done

METRICS_SNAP="$BIN_DIR/metrics.snap"
curl -fsS "http://$ADDR/metrics" >"$METRICS_SNAP"

# The pooled path must have served: full hits recorded, the hot window
# dominated by hits (the first few registration/fill lookups miss, so
# the floor is 0.5 rather than ~1), consume-once conservation (draws
# never exceed what the filler produced), and both wire legs counted.
awk '
  /^iqs_pool_hits_total/ { hits += $NF }
  /^iqs_pool_partial_hits_total/ { lookups += $NF }
  /^iqs_pool_misses_total/ { lookups += $NF }
  /^iqs_pool_draws_total/ { draws += $NF }
  /^iqs_pool_refill_draws_total/ { refill += $NF }
  /^iqs_wire_encoding_total\{[^}]*format="json"/ { json += $NF }
  /^iqs_wire_encoding_total\{[^}]*format="binary"/ { bin += $NF }
  END {
    lookups += hits
    bad = 0
    if (hits <= 0) { print "pool-smoke: no full pool hits" > "/dev/stderr"; bad = 1 }
    if (lookups > 0) {
      rate = hits / lookups
      printf "pool-smoke: pool hit rate %.3f (%d/%d), %d draws / %d refilled\n", rate, hits, lookups, draws, refill
      if (rate < 0.5) { print "pool-smoke: hot-window hit rate below 0.5" > "/dev/stderr"; bad = 1 }
    }
    if (draws > refill) { print "pool-smoke: draws exceed refill draws (double-serve)" > "/dev/stderr"; bad = 1 }
    if (json <= 0) { print "pool-smoke: no json-framed responses counted" > "/dev/stderr"; bad = 1 }
    if (bin <= 0) { print "pool-smoke: no binary-framed responses counted" > "/dev/stderr"; bad = 1 }
    exit bad
  }' "$METRICS_SNAP"

kill -INT "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "pool-smoke: server exited with status $WAIT_STATUS" >&2
  cat "$SERVER_ERR" >&2
  exit 1
fi
if ! grep -q 'drained cleanly' "$SERVER_OUT"; then
  echo "pool-smoke: server did not drain cleanly" >&2
  cat "$SERVER_OUT" >&2
  exit 1
fi
echo "pool-smoke: PASS"
