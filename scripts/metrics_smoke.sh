#!/usr/bin/env sh
# metrics_smoke.sh — boot iqsserve with fault injection and tracing on,
# drive load through metricscheck, validate the /metrics exposition,
# and drain cleanly. Exits non-zero on any failure. Used by
# `make metrics-smoke` and the CI metrics step.
set -eu

BIN_DIR=${BIN_DIR:-/tmp/iqs-metrics-smoke}
DRIVE=${DRIVE:-60}
mkdir -p "$BIN_DIR"

go build -o "$BIN_DIR/iqsserve" ./cmd/iqsserve
go build -o "$BIN_DIR/metricscheck" ./cmd/metricscheck

SERVER_OUT="$BIN_DIR/server.out"
SERVER_ERR="$BIN_DIR/server.err"
: >"$SERVER_OUT"
: >"$SERVER_ERR"

# Port 0: the kernel picks a free port; iqsserve prints the bound
# address on the "listening on" line, which we parse below.
# -mutable puts the ingest write path in front of every shard so the
# iqs_ingest_* families are live and metricscheck can drive writes;
# -pool 512 enables the precomputed sample pools so the iqs_pool_*
# families are live and metricscheck's -pool warm phase can hit them.
"$BIN_DIR/iqsserve" -addr 127.0.0.1:0 -shards 4 -n 16384 -mutable \
  -pool 512 -fault 0.05 -trace-sample-rate 0.25 -coalesce 8 \
  >"$SERVER_OUT" 2>"$SERVER_ERR" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

ADDR=
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^iqsserve: listening on \([^ ]*\) .*/\1/p' "$SERVER_OUT")
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "metrics-smoke: server died during startup" >&2
    cat "$SERVER_ERR" >&2
    exit 1
  }
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "metrics-smoke: server never reported its address" >&2
  cat "$SERVER_OUT" "$SERVER_ERR" >&2
  exit 1
fi
echo "metrics-smoke: server on $ADDR"

"$BIN_DIR/metricscheck" -base "http://$ADDR" -drive "$DRIVE" -mutable -pool

# Pool-hit-rate gate: metricscheck's warm phase hammered one hot window
# before the write drive, so full hits must dominate that window's
# lookups. The floor is deliberately loose (the write drive's misses
# share the denominator); metricscheck already asserted hits > 0.
METRICS_SNAP="$BIN_DIR/metrics.snap"
curl -fsS "http://$ADDR/metrics" >"$METRICS_SNAP"
awk '
  /^iqs_pool_hits_total/ { hits += $NF }
  /^iqs_pool_partial_hits_total/ { lookups += $NF }
  /^iqs_pool_misses_total/ { lookups += $NF }
  END {
    lookups += hits
    if (lookups <= 0) { print "metrics-smoke: pool saw no lookups" > "/dev/stderr"; exit 1 }
    rate = hits / lookups
    printf "metrics-smoke: pool hit rate %.3f (%d/%d)\n", rate, hits, lookups
    if (rate < 0.02) { print "metrics-smoke: pool hit rate below 0.02 floor" > "/dev/stderr"; exit 1 }
  }' "$METRICS_SNAP"

# With trace sampling at 0.25 and $DRIVE requests driven, at least one
# span-timing trace line must have been logged.
if ! grep -q '"msg":"trace"' "$SERVER_ERR"; then
  echo "metrics-smoke: no trace lines logged at -trace-sample-rate 0.25" >&2
  cat "$SERVER_ERR" >&2
  exit 1
fi

# Graceful drain: SIGINT, then the server must report a clean exit.
kill -INT "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "metrics-smoke: server exited with status $WAIT_STATUS" >&2
  cat "$SERVER_ERR" >&2
  exit 1
fi
if ! grep -q 'drained cleanly' "$SERVER_OUT"; then
  echo "metrics-smoke: server did not drain cleanly" >&2
  cat "$SERVER_OUT" >&2
  exit 1
fi
echo "metrics-smoke: PASS"
