#!/usr/bin/env sh
# metrics_smoke.sh — boot iqsserve with fault injection and tracing on,
# drive load through metricscheck, validate the /metrics exposition,
# and drain cleanly. Exits non-zero on any failure. Used by
# `make metrics-smoke` and the CI metrics step.
set -eu

BIN_DIR=${BIN_DIR:-/tmp/iqs-metrics-smoke}
DRIVE=${DRIVE:-60}
mkdir -p "$BIN_DIR"

go build -o "$BIN_DIR/iqsserve" ./cmd/iqsserve
go build -o "$BIN_DIR/metricscheck" ./cmd/metricscheck

SERVER_OUT="$BIN_DIR/server.out"
SERVER_ERR="$BIN_DIR/server.err"
: >"$SERVER_OUT"
: >"$SERVER_ERR"

# Port 0: the kernel picks a free port; iqsserve prints the bound
# address on the "listening on" line, which we parse below.
# -mutable puts the ingest write path in front of every shard so the
# iqs_ingest_* families are live and metricscheck can drive writes.
"$BIN_DIR/iqsserve" -addr 127.0.0.1:0 -shards 4 -n 16384 -mutable \
  -fault 0.05 -trace-sample-rate 0.25 -coalesce 8 \
  >"$SERVER_OUT" 2>"$SERVER_ERR" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

ADDR=
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^iqsserve: listening on \([^ ]*\) .*/\1/p' "$SERVER_OUT")
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "metrics-smoke: server died during startup" >&2
    cat "$SERVER_ERR" >&2
    exit 1
  }
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "metrics-smoke: server never reported its address" >&2
  cat "$SERVER_OUT" "$SERVER_ERR" >&2
  exit 1
fi
echo "metrics-smoke: server on $ADDR"

"$BIN_DIR/metricscheck" -base "http://$ADDR" -drive "$DRIVE" -mutable

# With trace sampling at 0.25 and $DRIVE requests driven, at least one
# span-timing trace line must have been logged.
if ! grep -q '"msg":"trace"' "$SERVER_ERR"; then
  echo "metrics-smoke: no trace lines logged at -trace-sample-rate 0.25" >&2
  cat "$SERVER_ERR" >&2
  exit 1
fi

# Graceful drain: SIGINT, then the server must report a clean exit.
kill -INT "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "metrics-smoke: server exited with status $WAIT_STATUS" >&2
  cat "$SERVER_ERR" >&2
  exit 1
fi
if ! grep -q 'drained cleanly' "$SERVER_OUT"; then
  echo "metrics-smoke: server did not drain cleanly" >&2
  cat "$SERVER_OUT" >&2
  exit 1
fi
echo "metrics-smoke: PASS"
