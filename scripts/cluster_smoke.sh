#!/usr/bin/env sh
# cluster_smoke.sh — boot two data nodes and a router (replicas=2, so
# every shard has a failover owner), drive load through
# metricscheck -cluster, crash one node, drive again asserting zero
# 5xx, and require the router's failover counters to prove the replica
# path actually absorbed the loss. Used by `make cluster-smoke` and the
# CI cluster step.
set -eu

BIN_DIR=${BIN_DIR:-/tmp/iqs-cluster-smoke}
DRIVE=${DRIVE:-60}
# The node addresses are part of the cluster identity (the hash ring is
# a pure function of the -nodes list), so they must be fixed upfront.
NODE1=${NODE1:-127.0.0.1:19411}
NODE2=${NODE2:-127.0.0.1:19412}
NODES="$NODE1,$NODE2"
mkdir -p "$BIN_DIR"

go build -o "$BIN_DIR/iqsserve" ./cmd/iqsserve
go build -o "$BIN_DIR/metricscheck" ./cmd/metricscheck

N1_OUT="$BIN_DIR/node1.out"
N2_OUT="$BIN_DIR/node2.out"
R_OUT="$BIN_DIR/router.out"
R_ERR="$BIN_DIR/router.err"
: >"$N1_OUT"; : >"$N2_OUT"; : >"$R_OUT"; : >"$R_ERR"

# -n 4096 with 6 shards keeps metricscheck's driven ranges (values up
# to ~1000) spanning shard boundaries, so the multi-shard fan-out and
# merge paths are exercised, not just the single-shard fast path.
COMMON="-nodes $NODES -replicas 2 -shards 6 -n 4096"

"$BIN_DIR/iqsserve" -node -addr "$NODE1" $COMMON >"$N1_OUT" 2>&1 &
N1_PID=$!
"$BIN_DIR/iqsserve" -node -addr "$NODE2" $COMMON >"$N2_OUT" 2>&1 &
N2_PID=$!
"$BIN_DIR/iqsserve" -router -addr 127.0.0.1:0 $COMMON >"$R_OUT" 2>"$R_ERR" &
R_PID=$!
trap 'kill "$N1_PID" "$N2_PID" "$R_PID" 2>/dev/null || true' EXIT

wait_listening() {
  out=$1; pid=$2; who=$3
  addr=
  for _ in $(seq 1 50); do
    addr=$(sed -n 's/^iqsserve: listening on \([^ ]*\) .*/\1/p' "$out")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || {
      echo "cluster-smoke: $who died during startup" >&2
      cat "$out" >&2
      exit 1
    }
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "cluster-smoke: $who never reported its address" >&2
    cat "$out" >&2
    exit 1
  fi
  echo "$addr"
}

wait_listening "$N1_OUT" "$N1_PID" "node1" >/dev/null
wait_listening "$N2_OUT" "$N2_PID" "node2" >/dev/null
ADDR=$(wait_listening "$R_OUT" "$R_PID" "router")
echo "cluster-smoke: router on $ADDR, nodes $NODES"

# Phase 1: healthy cluster. metricscheck asserts the iqs_cluster_*
# families, positive sub-sample/merge counters, and zero 5xx.
"$BIN_DIR/metricscheck" -cluster -base "http://$ADDR" -drive "$DRIVE"

# Phase 2: crash a node and drive again. The victim is the PRIMARY
# owner of shard 0 (read from the router's partition map) — killing a
# pure secondary would be absorbed without a single failover, proving
# nothing. SIGKILL: no drain, connections die mid-flight. Replica
# failover must keep the error budget at zero: metricscheck -cluster
# fails on any 5xx.
VICTIM=$(curl -fsS "http://$ADDR/cluster/partition" \
  | sed -n 's/.*"assignment":\[\["\([^"]*\)".*/\1/p')
if [ "$VICTIM" = "$NODE2" ]; then
  VICTIM_PID=$N2_PID; SURVIVOR_PID=$N1_PID; SURVIVOR_OUT=$N1_OUT
else
  VICTIM=$NODE1
  VICTIM_PID=$N1_PID; SURVIVOR_PID=$N2_PID; SURVIVOR_OUT=$N2_OUT
fi
kill -9 "$VICTIM_PID" 2>/dev/null || true
echo "cluster-smoke: killed primary owner $VICTIM, re-driving"
"$BIN_DIR/metricscheck" -cluster -base "http://$ADDR" -drive "$DRIVE"

# The second drive ran against a dead primary for some shards, so the
# router must have recorded failovers (and may hold node2's breaker
# open).
METRICS_SNAP="$BIN_DIR/metrics.snap"
curl -fsS "http://$ADDR/metrics" >"$METRICS_SNAP"
awk '
  /^iqs_cluster_failovers_total/ { fo += $NF }
  END {
    if (fo <= 0) { print "cluster-smoke: no failovers recorded after the node kill" > "/dev/stderr"; exit 1 }
    printf "cluster-smoke: %d failovers absorbed\n", fo
  }' "$METRICS_SNAP"

# Graceful drain: router first, then the surviving node.
kill -INT "$R_PID"
WAIT_STATUS=0
wait "$R_PID" || WAIT_STATUS=$?
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "cluster-smoke: router exited with status $WAIT_STATUS" >&2
  cat "$R_ERR" >&2
  exit 1
fi
if ! grep -q 'drained cleanly' "$R_OUT"; then
  echo "cluster-smoke: router did not drain cleanly" >&2
  cat "$R_OUT" >&2
  exit 1
fi
kill -INT "$SURVIVOR_PID"
WAIT_STATUS=0
wait "$SURVIVOR_PID" || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ] || ! grep -q 'drained cleanly' "$SURVIVOR_OUT"; then
  echo "cluster-smoke: surviving node did not drain cleanly (status $WAIT_STATUS)" >&2
  cat "$SURVIVOR_OUT" >&2
  exit 1
fi
echo "cluster-smoke: PASS"
