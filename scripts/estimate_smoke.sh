#!/usr/bin/env sh
# estimate_smoke.sh — boot iqsserve, hammer the /estimate endpoint with
# cmd/metricscheck -estimate (cycling count/sum/avg/distinct, validating
# every response's q-error against its certified bound client-side),
# assert the iqs_estimate_* metric families are exported with zero bound
# violations, and drain cleanly. Exits non-zero on any failure. Used by
# `make estimate-smoke` and the CI estimate step.
set -eu

BIN_DIR=${BIN_DIR:-/tmp/iqs-estimate-smoke}
DRIVE=${DRIVE:-80}
mkdir -p "$BIN_DIR"

go build -o "$BIN_DIR/iqsserve" ./cmd/iqsserve
go build -o "$BIN_DIR/metricscheck" ./cmd/metricscheck

SERVER_OUT="$BIN_DIR/server.out"
SERVER_ERR="$BIN_DIR/server.err"
: >"$SERVER_OUT"
: >"$SERVER_ERR"

"$BIN_DIR/iqsserve" -addr 127.0.0.1:0 -shards 4 -n 16384 \
  >"$SERVER_OUT" 2>"$SERVER_ERR" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

ADDR=
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^iqsserve: listening on \([^ ]*\) .*/\1/p' "$SERVER_OUT")
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "estimate-smoke: server died during startup" >&2
    cat "$SERVER_ERR" >&2
    exit 1
  }
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "estimate-smoke: server never reported its address" >&2
  cat "$SERVER_OUT" "$SERVER_ERR" >&2
  exit 1
fi
echo "estimate-smoke: server on $ADDR"

# One visible end-to-end probe before the drive: a scored COUNT must
# answer with an estimate and its q fields.
curl -fsS "http://$ADDR/estimate?op=count&lo=0&hi=4095&k=1024" \
  | grep -q '"q_error"' || {
  echo "estimate-smoke: /estimate probe missing q_error" >&2
  exit 1
}

"$BIN_DIR/metricscheck" -base "http://$ADDR" -drive "$DRIVE" -estimate

# Graceful drain: SIGINT, then the server must report a clean exit.
kill -INT "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "estimate-smoke: server exited with status $WAIT_STATUS" >&2
  cat "$SERVER_ERR" >&2
  exit 1
fi
if ! grep -q 'drained cleanly' "$SERVER_OUT"; then
  echo "estimate-smoke: server did not drain cleanly" >&2
  cat "$SERVER_OUT" >&2
  exit 1
fi
echo "estimate-smoke: PASS"
