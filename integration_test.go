// Integration tests: end-to-end flows across modules, mirroring the
// examples with assertions — the public API drives the technique
// packages which drive the substrates, and the statistical guarantees
// are verified with internal/stats.
package repro_test

import (
	"io"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fairnn"
	"repro/internal/permsample"
	"repro/internal/rng"
	"repro/internal/stats"
)

// TestEndToEndEstimationGuarantee reruns the estimation example as a
// test: the ε–δ guarantee must hold through the full public-API stack.
func TestEndToEndEstimationGuarantee(t *testing.T) {
	r := core.NewRand(100)
	const n = 50_000
	values := make([]float64, n)
	for i := range values {
		values[i] = r.Float64()
	}
	s, err := core.NewRangeSampler(core.KindChunked, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	const eps, delta = 0.05, 0.1
	k := stats.SampleSizeForEstimate(eps, delta)
	qLo, qHi, mid := 0.2, 0.8, 0.5
	truth := 0.0
	cnt := 0
	for _, v := range values {
		if v >= qLo && v <= qHi {
			cnt++
			if v < mid {
				truth++
			}
		}
	}
	truth /= float64(cnt)
	const estimates = 300
	bad := 0
	for i := 0; i < estimates; i++ {
		out, ok := s.Sample(r, qLo, qHi, k)
		if !ok {
			t.Fatal("empty")
		}
		hits := 0
		for _, v := range out {
			if v < mid {
				hits++
			}
		}
		if math.Abs(float64(hits)/float64(k)-truth) > eps {
			bad++
		}
	}
	// Hoeffding guarantees E[bad] ≤ δ·estimates = 30; allow 2x slack.
	if bad > 60 {
		t.Fatalf("bad estimates = %d/%d", bad, estimates)
	}
}

// TestEndToEndDiversity verifies the coupon-collector behaviour of
// repeated queries through the public API, against the frozen baseline.
func TestEndToEndDiversity(t *testing.T) {
	r := core.NewRand(101)
	const n = 4096
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	s, err := core.NewRangeSampler(core.KindAliasAug, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := permsample.New(values, 102)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 100.0, 199.0 // |S_q| = 100
	iqsSeen := map[float64]bool{}
	depSeen := map[int]bool{}
	for q := 0; q < 150; q++ {
		out, ok := s.Sample(r, lo, hi, 10)
		if !ok {
			t.Fatal("empty")
		}
		for _, v := range out {
			iqsSeen[v] = true
		}
		dout, _ := dep.Query(lo, hi, 10, nil)
		for _, pos := range dout {
			depSeen[pos] = true
		}
	}
	if len(iqsSeen) < 95 {
		t.Fatalf("IQS saw only %d of 100 after 150 queries", len(iqsSeen))
	}
	if len(depSeen) != 10 {
		t.Fatalf("dependent baseline saw %d, want exactly its frozen 10", len(depSeen))
	}
}

// TestEndToEndFairNN drives the fairnn stack (grids → setunion → sketch →
// rejection) and checks long-run fairness.
func TestEndToEndFairNN(t *testing.T) {
	r := rng.New(103)
	pts := dataset.ClusteredPoints(r, 400, 2, 1, 0.01)
	idx, err := fairnn.New(pts, 0.05, 8, 104)
	if err != nil {
		t.Fatal(err)
	}
	// Query at the cluster centre.
	q := []float64{pts[0][0], pts[0][1]}
	cand := idx.CandidateNear(q)
	if len(cand) < 20 {
		t.Skipf("only %d candidates", len(cand))
	}
	counts := map[int]int{}
	const queries = 20000
	for i := 0; i < queries; i++ {
		out, ok, err := idx.Query(r, q, 1, nil)
		if err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		counts[out[0]]++
	}
	obs := make([]int, 0, len(cand))
	for _, c := range cand {
		obs = append(obs, counts[c])
	}
	stat, err := stats.ChiSquareUniform(obs)
	if err != nil {
		t.Fatal(err)
	}
	if crit := stats.ChiSquareCritical(len(obs)-1, 1e-4); stat > crit {
		t.Fatalf("fairness chi2 = %v > %v", stat, crit)
	}
}

// TestEndToEndPointSamplerAgreement: the three multi-dimensional
// structures must agree on range weight and stay inside the rectangle.
func TestEndToEndPointSamplerAgreement(t *testing.T) {
	r := rng.New(105)
	pts := dataset.UniformPoints(r, 500, 2)
	w := dataset.RandomWeights(r, 500, 0.5, 3)
	min, max := []float64{0.25, 0.25}, []float64{0.75, 0.75}
	var weights []float64
	for _, kind := range []core.PointKind{core.PointKD, core.PointRangeTree, core.PointQuadtree} {
		ps, err := core.NewPointSampler(kind, pts, w)
		if err != nil {
			t.Fatal(err)
		}
		weights = append(weights, ps.RangeWeight(min, max))
		out, ok := ps.Sample(core.NewRand(106), min, max, 500)
		if !ok {
			t.Fatalf("kind %d: empty", kind)
		}
		for _, idx := range out {
			p := pts[idx]
			if p[0] < 0.25 || p[0] > 0.75 || p[1] < 0.25 || p[1] > 0.75 {
				t.Fatalf("kind %d: sample outside", kind)
			}
		}
	}
	if math.Abs(weights[0]-weights[1]) > 1e-9 || math.Abs(weights[1]-weights[2]) > 1e-9 {
		t.Fatalf("structures disagree on range weight: %v", weights)
	}
}

// TestBenchHarnessSmoke runs the cheap experiments end-to-end so the
// harness itself is covered by `go test`.
func TestBenchHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"E8", "E13", "A2"} {
		e, ok := bench.Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		e.Run(io.Discard, 1)
	}
	if _, ok := bench.Find("NOPE"); ok {
		t.Fatal("Find accepted an unknown id")
	}
	if len(bench.All()) < 17 {
		t.Fatalf("only %d experiments registered", len(bench.All()))
	}
}

// TestSamplerOutputPassesKS: uniform values sampled over the full domain
// must pass a Kolmogorov–Smirnov uniformity test end to end.
func TestSamplerOutputPassesKS(t *testing.T) {
	r := core.NewRand(200)
	const n = 20000
	values := make([]float64, n)
	for i := range values {
		values[i] = r.Float64()
	}
	s, err := core.NewRangeSampler(core.KindChunked, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := s.Sample(r, 0, 1, 5000)
	if !ok {
		t.Fatal("empty")
	}
	d, err := stats.KSUniform(out)
	if err != nil {
		t.Fatal(err)
	}
	// The sample follows the empirical (not exactly uniform) dataset;
	// with n=20000 source points and 5000 draws, the combined KS noise
	// stays well under this bound.
	if d > 0.035 {
		t.Fatalf("KS distance %v too large", d)
	}
}
