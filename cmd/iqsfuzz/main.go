// Command iqsfuzz is the differential soak fuzzer: it cross-checks
// every sampling structure in this repository against the naive oracle
// (exact identities where the API specifies stream equality,
// chi-squared/KS gates elsewhere), drives the real HTTP serving stack
// under faults, churn, and admission pressure, schedules workloads
// with a UCB1 bandit, and shrinks every finding to a minimal repro
// file that -replay re-executes deterministically.
//
// Usage:
//
//	iqsfuzz -rounds 50                      # bounded by case count
//	iqsfuzz -duration 30s -server -faults   # bounded by wall clock
//	iqsfuzz -replay artifacts/repro-….json  # re-execute one repro
//
// Exit status: 0 when no discrepancy was found (or a replayed repro no
// longer fails), 1 when a discrepancy was found (repro files land in
// -artifacts), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/soak"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("iqsfuzz", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		rounds    = fs.Int("rounds", 0, "number of fuzz cases to run (0: use -duration)")
		duration  = fs.Duration("duration", 0, "wall-clock budget (0: use -rounds)")
		seed      = fs.Uint64("seed", 1, "master seed; the same seed replays the same session")
		artifacts = fs.String("artifacts", "fuzz-artifacts", "directory for minimised repro files (empty: don't write)")
		replay    = fs.String("replay", "", "re-execute one repro file instead of fuzzing")
		targets   = fs.String("targets", "", "comma-separated target subset (default: all structure targets)")
		server    = fs.Bool("server", false, "include the end-to-end HTTP server soak arms")
		faults    = fs.Bool("faults", false, "with -server: include the EM-fault + snapshot-churn arm")
		alpha     = fs.Float64("alpha", 0, "per-gate significance level (default 1e-9)")
		maxFail   = fs.Int("maxfailures", 0, "stop after this many distinct findings (default 3)")
		quiet     = fs.Bool("q", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	h := &soak.Harness{Alpha: *alpha}

	if *replay != "" {
		return runReplay(h, *replay, out)
	}
	if *rounds <= 0 && *duration <= 0 {
		fmt.Fprintln(out, "iqsfuzz: need -rounds or -duration (or -replay)")
		return 2
	}
	opts := soak.FuzzOptions{
		Seed:         *seed,
		Rounds:       *rounds,
		Duration:     *duration,
		Server:       *server,
		Faults:       *faults,
		MaxFailures:  *maxFail,
		ArtifactsDir: *artifacts,
		Alpha:        *alpha,
	}
	if !*quiet {
		opts.Log = func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
	}
	if *targets != "" {
		for _, t := range strings.Split(*targets, ",") {
			opts.Targets = append(opts.Targets, soak.Target(strings.TrimSpace(t)))
		}
	}
	start := time.Now()
	res, err := h.Fuzz(opts)
	if err != nil {
		fmt.Fprintf(out, "iqsfuzz: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "iqsfuzz: %d cases, %d gates in %v\n", res.Rounds, res.Gates, time.Since(start).Round(time.Millisecond))
	for _, a := range res.Arms {
		fmt.Fprintf(out, "  arm %-28s pulls %3d  mean reward %.4f\n", a.Name, a.Pulls, a.Reward)
	}
	if len(res.Repros) == 0 {
		fmt.Fprintln(out, "iqsfuzz: no discrepancies found")
		return 0
	}
	for i, rep := range res.Repros {
		fmt.Fprintf(out, "iqsfuzz: FINDING %d: %s\n", i+1, rep.Failure)
	}
	for _, p := range res.Artifacts {
		fmt.Fprintf(out, "iqsfuzz: repro written: %s\n", p)
	}
	return 1
}

// runReplay re-executes one repro file deterministically.
func runReplay(h *soak.Harness, path string, out io.Writer) int {
	rep, err := soak.ReadRepro(path)
	if err != nil {
		fmt.Fprintf(out, "iqsfuzz: %v\n", err)
		return 2
	}
	fmt.Fprintf(out, "iqsfuzz: replaying %s (target %s, check %s)\n", path, rep.Case.Target, rep.Failure.Check)
	o, err := h.Replay(rep)
	if err != nil {
		fmt.Fprintf(out, "iqsfuzz: %v\n", err)
		return 2
	}
	if o.Failure != nil {
		fmt.Fprintf(out, "iqsfuzz: REPRODUCED: %s\n", o.Failure)
		return 1
	}
	fmt.Fprintf(out, "iqsfuzz: repro no longer fails (%d gates clean) — the bug appears fixed\n", o.Gates)
	return 0
}
