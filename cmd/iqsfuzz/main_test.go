package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/soak"
)

func TestRunUsageErrors(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{}, &sb); code != 2 {
		t.Fatalf("no budget: exit %d, want 2", code)
	}
	sb.Reset()
	if code := run([]string{"-bogus"}, &sb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// A short healthy session finds nothing and exits zero.
func TestRunCleanSessionExitsZero(t *testing.T) {
	var sb strings.Builder
	dir := t.TempDir()
	code := run([]string{
		"-rounds", "4", "-seed", "7", "-q",
		"-targets", "alias,wor",
		"-artifacts", filepath.Join(dir, "a"),
	}, &sb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "no discrepancies found") {
		t.Fatalf("missing summary:\n%s", sb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); !os.IsNotExist(err) {
		t.Fatal("artifacts dir created despite no findings")
	}
}

// -replay on a healthy-case repro reports the bug as fixed (exit 0); a
// garbage path and version skew exit 2.
func TestRunReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	rep := &soak.Repro{
		Version: soak.ReproVersion,
		Case: soak.Case{
			Target:   soak.TargetAlias,
			Dataset:  soak.DatasetSpec{Seed: 3, N: 16},
			Workload: soak.WorkloadSpec{Seed: 4, Queries: 2, Reps: 40},
		},
		Failure: &soak.Failure{Target: soak.TargetAlias, Check: "chi2-weights", Detail: "synthetic"},
	}
	if err := soak.WriteRepro(path, rep); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if code := run([]string{"-replay", path}, &sb); code != 0 {
		t.Fatalf("healthy replay: exit %d, want 0; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "no longer fails") {
		t.Fatalf("missing fixed notice:\n%s", sb.String())
	}
	sb.Reset()
	if code := run([]string{"-replay", filepath.Join(dir, "absent.json")}, &sb); code != 2 {
		t.Fatalf("absent file: exit %d, want 2", code)
	}
	bad := *rep
	bad.Version = soak.ReproVersion + 5
	badPath := filepath.Join(dir, "bad.json")
	if err := soak.WriteRepro(badPath, &bad); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if code := run([]string{"-replay", badPath}, &sb); code != 2 {
		t.Fatalf("version skew: exit %d, want 2", code)
	}
}
