// Command iqsgen generates the synthetic datasets and query workloads
// used by the experiments, as CSV on stdout — handy for comparing this
// library against external systems on identical inputs.
//
// Usage:
//
//	iqsgen -kind values  -n 100000 [-dist uniform|clustered] [-weights uniform|zipf|random]
//	iqsgen -kind points  -n 100000 -d 2 [-dist uniform|clustered]
//	iqsgen -kind queries -n 100000 -q 1000 -selectivity 0.1
//	iqsgen -kind sets    -m 64 -u 100000 -size 2000 -overlap 0.5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/dataset"
	"repro/internal/rng"
)

func main() {
	var (
		kind    = flag.String("kind", "values", "values | points | queries | sets")
		n       = flag.Int("n", 100000, "number of elements / points")
		d       = flag.Int("d", 2, "point dimensionality")
		dist    = flag.String("dist", "uniform", "uniform | clustered")
		weights = flag.String("weights", "uniform", "uniform | zipf | random")
		q       = flag.Int("q", 1000, "number of queries")
		sel     = flag.Float64("selectivity", 0.1, "query selectivity")
		m       = flag.Int("m", 64, "number of sets")
		u       = flag.Int("u", 100000, "set universe size")
		size    = flag.Int("size", 2000, "set size")
		overlap = flag.Float64("overlap", 0.5, "set overlap fraction")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	r := rng.New(*seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "values":
		vals := genValues(r, *n, *dist)
		wts := genWeights(r, *n, *weights)
		fmt.Fprintln(w, "value,weight")
		for i := range vals {
			fmt.Fprintf(w, "%g,%g\n", vals[i], wts[i])
		}
	case "points":
		var pts [][]float64
		if *dist == "clustered" {
			pts = dataset.ClusteredPoints(r, *n, *d, 8, 0.03)
		} else {
			pts = dataset.UniformPoints(r, *n, *d)
		}
		for j := 0; j < *d; j++ {
			if j > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "x%d", j)
		}
		fmt.Fprintln(w)
		for _, p := range pts {
			for j, c := range p {
				if j > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprintf(w, "%g", c)
			}
			fmt.Fprintln(w)
		}
	case "queries":
		vals := genValues(r, *n, *dist)
		sort.Float64s(vals)
		qs := dataset.IntervalQueries(r, vals, *q, *sel)
		fmt.Fprintln(w, "lo,hi")
		for _, iv := range qs {
			fmt.Fprintf(w, "%g,%g\n", iv.Lo, iv.Hi)
		}
	case "sets":
		sets, err := dataset.OverlappingSets(r, *m, *u, *size, *overlap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iqsgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(w, "set,element")
		for i, s := range sets {
			for _, e := range s {
				fmt.Fprintf(w, "%d,%d\n", i, e)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "iqsgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func genValues(r *rng.Source, n int, dist string) []float64 {
	if dist == "clustered" {
		return dataset.ClusteredValues(r, n, 8, 0.01)
	}
	return dataset.UniformValues(r, n)
}

func genWeights(r *rng.Source, n int, kind string) []float64 {
	switch kind {
	case "zipf":
		return dataset.ZipfWeights(r, n, 1.0)
	case "random":
		return dataset.RandomWeights(r, n, 0.5, 10)
	default:
		return dataset.UniformWeights(n)
	}
}
