// Command iqsserve serves independent range-sampling queries over
// HTTP: it range-partitions a dataset into K shards (internal/shard),
// fronts the coordinator with the admission-controlled JSON API of
// internal/server, and drains cleanly on SIGINT/SIGTERM.
//
//	iqsserve -addr 127.0.0.1:8080 -shards 4 -n 65536
//	curl 'http://127.0.0.1:8080/sample?lo=100&hi=900&k=8'
//
// With -load it doubles as its own load generator: the server starts
// in-process and -clients HTTP clients hammer it for -duration, then
// the run reports throughput, latency percentiles, and how often
// admission control shed requests (429 busy / 503 draining).
//
// With -fault > 0 every shard gets a fault-injected EM mirror, so the
// PR 1 degradation machinery is live under HTTP traffic too.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func parseKind(name string) (core.Kind, error) {
	for _, k := range []core.Kind{core.KindChunked, core.KindAliasAug, core.KindTreeWalk, core.KindNaive} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q (want chunked|aliasaug|treewalk|naive)", name)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iqsserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		shards    = fs.Int("shards", 4, "shard count K")
		seed      = fs.Uint64("seed", 42, "base random seed")
		duration  = fs.Duration("duration", 0, "auto-stop after this long; 0 means run until SIGINT/SIGTERM")
		n         = fs.Int("n", 1<<16, "dataset size")
		kindName  = fs.String("kind", "chunked", "per-shard structure: chunked|aliasaug|treewalk|naive")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-request deadline")
		inflight  = fs.Int("inflight", 64, "max concurrently executing requests")
		queue     = fs.Int("queue", 0, "max waiting requests beyond inflight before 429; 0 means 2x inflight")
		fault     = fs.Float64("fault", 0, "EM fault probability per mirror I/O; 0 disables the mirrors")
		load      = fs.Bool("load", false, "load-generator mode: serve in-process and hammer with -clients")
		clients   = fs.Int("clients", 16, "concurrent load clients (with -load)")
		pprofOn   = fs.String("pprof", "", "serve net/http/pprof on this host:port (empty disables); profile the hot path with e.g. go tool pprof http://HOST:PORT/debug/pprof/heap")
		traceRate = fs.Float64("trace-sample-rate", 0, "fraction of requests whose per-stage span timings are logged as JSON on stderr (0 disables)")
		coalesce  = fs.Int("coalesce", 16, "max concurrent /sample requests coalesced into one engine batch; 0 disables coalescing")
		linger    = fs.Duration("linger", 0, "how long a non-full batch waits for straggler requests; 0 means 100µs when coalescing is on")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: iqsserve [-addr A] [-shards K] [-seed S] [-duration D] [-n N] [-kind K] [-timeout D] [-inflight N] [-queue N] [-fault P] [-load] [-clients N] [-pprof A] [-trace-sample-rate P] [-coalesce N] [-linger D]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards < 1 || *n < 2 || *inflight < 1 || *queue < 0 || *timeout <= 0 ||
		*fault < 0 || *fault > 1 || *clients < 1 || *duration < 0 ||
		*traceRate < 0 || *traceRate > 1 || *coalesce < 0 || *linger < 0 {
		fmt.Fprintln(stderr, "iqsserve: bad flag values")
		fs.Usage()
		return 2
	}
	if *pprofOn != "" {
		if _, err := net.ResolveTCPAddr("tcp", *pprofOn); err != nil {
			fmt.Fprintf(stderr, "iqsserve: bad -pprof address %q: %v\n", *pprofOn, err)
			return 2
		}
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		fmt.Fprintf(stderr, "iqsserve: %v\n", err)
		return 2
	}
	if *load && *duration == 0 {
		*duration = 2 * time.Second
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var svcOpts func(int) service.Options
	var devs []*em.Device
	if *fault > 0 {
		devs = make([]*em.Device, *shards)
		for i := range devs {
			dev, err := em.NewDevice(64, 1<<16)
			if err != nil {
				fmt.Fprintf(stderr, "iqsserve: %v\n", err)
				return 1
			}
			dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: *fault, WriteFailProb: *fault, Seed: *seed + uint64(i) + 1})
			devs[i] = dev
		}
		svcOpts = func(i int) service.Options {
			return service.Options{
				Mirror:      devs[i],
				Retry:       em.RetryPolicy{MaxAttempts: 6, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond},
				BuildBudget: 30 * time.Second,
			}
		}
	}

	// One registry for the whole stack: the coordinator, every shard
	// service, and the HTTP front end all register here, so /metrics
	// exposes the full request path. Structured warnings (downgrades,
	// quality breaches) and sampled trace lines go to stderr as JSON.
	reg := metrics.NewRegistry()
	logger := slog.New(slog.NewJSONHandler(stderr, nil))

	values := make([]float64, *n)
	for i := range values {
		values[i] = float64(i)
	}
	coord, err := shard.New(context.Background(), "iqs", values, nil, shard.Options{
		Shards:  *shards,
		Kind:    kind,
		Service: svcOpts,
		Metrics: reg,
		Logger:  logger,
	})
	if err != nil {
		fmt.Fprintf(stderr, "iqsserve: build engine: %v\n", err)
		return 1
	}

	srv := server.New(coord, server.Options{
		MaxInFlight:     *inflight,
		MaxQueue:        *queue,
		Timeout:         *timeout,
		Seed:            *seed,
		Metrics:         reg,
		TraceSampleRate: *traceRate,
		Logger:          logger,
		Coalesce:        *coalesce,
		Linger:          *linger,
	})

	// Flag-guarded profiling endpoint on its own mux and listener, so
	// the pprof handlers are never reachable through the serving address
	// and the query mux stays free of debug routes.
	if *pprofOn != "" {
		pl, err := net.Listen("tcp", *pprofOn)
		if err != nil {
			fmt.Fprintf(stderr, "iqsserve: pprof listen: %v\n", err)
			return 1
		}
		defer pl.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { _ = http.Serve(pl, pmux) }()
		fmt.Fprintf(stdout, "iqsserve: pprof on http://%s/debug/pprof/\n", pl.Addr())
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "iqsserve: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "iqsserve: listening on %s (%d shards, n=%d, kind=%s, inflight=%d, coalesce=%d)\n",
		l.Addr(), *shards, *n, kind, *inflight, *coalesce)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	if *load {
		runLoad(ctx, stdout, "http://"+l.Addr().String(), *clients, *n, *seed)
	} else {
		<-ctx.Done()
	}

	shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		fmt.Fprintf(stderr, "iqsserve: shutdown: %v\n", err)
		return 1
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "iqsserve: serve: %v\n", err)
		return 1
	}

	h := coord.Health()
	fmt.Fprintf(stdout, "iqsserve: drained cleanly (engine requests %d, failures %d, panics contained %d, downgrades %d",
		h.Aggregate.Requests, h.Aggregate.Failures, h.Aggregate.PanicsContained, h.Aggregate.Downgrades)
	if devs != nil {
		var faults int64
		for _, dev := range devs {
			faults += dev.FaultsInjected()
		}
		fmt.Fprintf(stdout, ", EM faults %d", faults)
	}
	fmt.Fprintln(stdout, ")")
	return 0
}

// runLoad hammers base with clients goroutines until ctx expires, then
// reports throughput, latency percentiles, and admission-control sheds.
func runLoad(ctx context.Context, stdout io.Writer, base string, clients, n int, seed uint64) {
	fmt.Fprintf(stdout, "iqsserve: load mode, %d clients against %s\n", clients, base)
	var (
		wg                     sync.WaitGroup
		ok, busy, gone, failed atomic.Int64
		mu                     sync.Mutex
		lats                   []time.Duration
	)
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := core.NewRand(seed + uint64(g) + 1)
			cli := &http.Client{Timeout: 30 * time.Second}
			var local []time.Duration
			for i := 0; ctx.Err() == nil; i++ {
				lo := float64(r.Intn(n / 2))
				hi := lo + float64(1+r.Intn(n/2))
				url := fmt.Sprintf("%s/sample?lo=%g&hi=%g&k=8", base, lo, hi)
				if i%8 == 7 {
					url += "&wor=true"
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
				if err != nil {
					failed.Add(1)
					continue
				}
				t0 := time.Now()
				resp, err := cli.Do(req)
				if err != nil {
					if ctx.Err() == nil {
						failed.Add(1)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					local = append(local, time.Since(t0))
				case http.StatusTooManyRequests:
					busy.Add(1)
				case http.StatusServiceUnavailable:
					gone.Add(1)
				default:
					failed.Add(1)
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := ok.Load() + busy.Load() + gone.Load() + failed.Load()
	fmt.Fprintf(stdout, "load: %d requests in %v (%.0f req/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Fprintf(stdout, "load: ok %d, shed 429 (busy) %d, shed 503 (draining) %d, failed %d\n",
		ok.Load(), busy.Load(), gone.Load(), failed.Load())
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration { return lats[min(len(lats)-1, int(p*float64(len(lats))))] }
		fmt.Fprintf(stdout, "load: latency p50 %v, p95 %v, p99 %v, max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
}
