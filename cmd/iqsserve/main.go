// Command iqsserve runs the hardened query service under load: it
// spins up N client goroutines issuing mixed query/update traffic
// against datasets hosted by internal/service while the EM mirror
// device injects transient faults, then prints a health summary —
// requests, failures, contained panics, downgrades, rebuilds, and
// per-dataset state.
//
//	iqsserve -clients 16 -requests 20000 -fault 0.05
//
// The point of the demo: with faults injected into every mirror I/O at
// the given probability, the process never crashes, every failed
// request gets a typed error, and datasets that cannot rebuild degrade
// to the naive baseline instead of going dark.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iqsserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		clients  = fs.Int("clients", 16, "concurrent client goroutines")
		requests = fs.Int("requests", 20000, "total requests across all clients")
		fault    = fs.Float64("fault", 0.05, "EM fault probability per mirror I/O")
		n        = fs.Int("n", 4096, "elements per dataset")
		seed     = fs.Uint64("seed", 42, "random seed")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: iqsserve [-clients N] [-requests N] [-fault P] [-n N] [-seed S] [-timeout D]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *clients < 1 || *requests < 1 || *fault < 0 || *fault > 1 || *n < 2 {
		fmt.Fprintln(stderr, "iqsserve: bad flag values")
		fs.Usage()
		return 2
	}

	dev, err := em.NewDevice(64, 1<<16)
	if err != nil {
		fmt.Fprintf(stderr, "iqsserve: %v\n", err)
		return 1
	}
	dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: *fault, WriteFailProb: *fault, Seed: *seed})
	svc := service.New(service.Options{
		Mirror:      dev,
		Retry:       em.RetryPolicy{MaxAttempts: 6, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond},
		BuildBudget: 30 * time.Second,
	})

	ctx := context.Background()
	values := make([]float64, *n)
	for i := range values {
		values[i] = float64(i)
	}
	if err := svc.Create(ctx, "queries", core.KindChunked, values, nil); err != nil {
		fmt.Fprintf(stderr, "iqsserve: create queries: %v\n", err)
		return 1
	}
	if err := svc.Create(ctx, "updates", core.KindChunked, values[:min(*n, 512)], nil); err != nil {
		fmt.Fprintf(stderr, "iqsserve: create updates: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "iqsserve: %d clients, %d requests, fault p=%.3g on mirror I/O\n",
		*clients, *requests, *fault)
	start := time.Now()

	var (
		wg                 sync.WaitGroup
		issued, errTyped   atomic.Int64
		errUntyped, canned atomic.Int64
	)
	perClient := (*requests + *clients - 1) / *clients
	hi := float64(*n - 1)
	for g := 0; g < *clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := core.NewRand(*seed + uint64(g) + 1)
			var inserted []float64
			for i := 0; i < perClient; i++ {
				rctx, cancel := context.WithTimeout(ctx, *timeout)
				var err error
				switch i % 8 {
				case 0, 1, 2, 3:
					_, err = svc.Sample(rctx, r, "queries", hi*r.Float64()/2, hi, 8)
				case 4:
					_, err = svc.SampleWoR(rctx, r, "queries", 0, hi, 16)
				case 5:
					_, err = svc.Count(rctx, "queries", 0, hi*r.Float64())
				case 6:
					v := float64(1_000_000 + g*100_000 + i)
					if err = svc.Insert(rctx, "updates", v, 1+r.Float64()); err == nil {
						inserted = append(inserted, v)
					}
				case 7:
					if len(inserted) > 0 {
						v := inserted[len(inserted)-1]
						if err = svc.Delete(rctx, "updates", v); err == nil {
							inserted = inserted[:len(inserted)-1]
						}
					}
				}
				cancel()
				issued.Add(1)
				if err != nil {
					if service.IsTyped(err) {
						errTyped.Add(1)
						if err == context.DeadlineExceeded {
							canned.Add(1)
						}
					} else {
						errUntyped.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	h := svc.Health()
	fmt.Fprintf(stdout, "\ndone in %v (%.0f req/s)\n", elapsed.Round(time.Millisecond),
		float64(issued.Load())/elapsed.Seconds())
	fmt.Fprintf(stdout, "requests          %d\n", h.Requests)
	fmt.Fprintf(stdout, "failures          %d (typed %d, timeouts %d, untyped %d)\n",
		h.Failures, errTyped.Load(), canned.Load(), errUntyped.Load())
	fmt.Fprintf(stdout, "panics contained  %d\n", h.PanicsContained)
	fmt.Fprintf(stdout, "downgrades        %d\n", h.Downgrades)
	fmt.Fprintf(stdout, "rebuilds          %d\n", h.Rebuilds)
	fmt.Fprintf(stdout, "EM faults         %d (injected by device)\n", dev.FaultsInjected())
	fmt.Fprintln(stdout, "datasets:")
	for _, d := range h.Datasets {
		state := "ok"
		if d.Degraded {
			state = "DEGRADED"
		}
		fmt.Fprintf(stdout, "  %-10s requested=%-9v active=%-9v len=%-7d %s\n",
			d.Name, d.Requested, d.Active, d.Len, state)
	}
	for _, ev := range svc.Downgrades() {
		fmt.Fprintf(stdout, "downgrade: %s %s during %s: %s\n", ev.Time.Format("15:04:05.000"), ev.Dataset, ev.Op, ev.Reason)
	}
	if errUntyped.Load() > 0 {
		fmt.Fprintln(stderr, "iqsserve: untyped errors escaped the service boundary")
		return 1
	}
	return 0
}
