// Command iqsserve serves independent range-sampling queries over
// HTTP: it range-partitions a dataset into K shards (internal/shard),
// fronts the coordinator with the admission-controlled JSON API of
// internal/server, and drains cleanly on SIGINT/SIGTERM.
//
//	iqsserve -addr 127.0.0.1:8080 -shards 4 -n 65536
//	curl 'http://127.0.0.1:8080/sample?lo=100&hi=900&k=8'
//
// With -load it doubles as its own load generator: the server starts
// in-process and -clients HTTP clients hammer it for -duration, then
// the run reports throughput, latency percentiles, and how often
// admission control shed requests (429 busy / 503 draining).
//
// With -fault > 0 every shard gets a fault-injected EM mirror, so the
// PR 1 degradation machinery is live under HTTP traffic too.
//
// With -nodes the same binary becomes either tier of the
// internal/cluster scale-out: -node hosts the shards the hash ring
// assigns to -addr and serves /subsample; -router holds no shards and
// fans sub-sample budgets out to the nodes. Combined with -load, the
// load generator hammers the in-process router, so the whole cluster
// path is measurable from one command:
//
//	iqsserve -node -addr 127.0.0.1:9001 -nodes 127.0.0.1:9001,127.0.0.1:9002 &
//	iqsserve -node -addr 127.0.0.1:9002 -nodes 127.0.0.1:9001,127.0.0.1:9002 &
//	iqsserve -router -nodes 127.0.0.1:9001,127.0.0.1:9002 -load
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/metrics"
	"repro/internal/samplepool"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/shard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func parseKind(name string) (core.Kind, error) {
	for _, k := range []core.Kind{core.KindChunked, core.KindAliasAug, core.KindTreeWalk, core.KindNaive} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q (want chunked|aliasaug|treewalk|naive)", name)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iqsserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		shards    = fs.Int("shards", 4, "shard count K")
		seed      = fs.Uint64("seed", 42, "base random seed")
		duration  = fs.Duration("duration", 0, "auto-stop after this long; 0 means run until SIGINT/SIGTERM")
		n         = fs.Int("n", 1<<16, "dataset size")
		kindName  = fs.String("kind", "chunked", "per-shard structure: chunked|aliasaug|treewalk|naive")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-request deadline")
		inflight  = fs.Int("inflight", 64, "max concurrently executing requests")
		queue     = fs.Int("queue", 0, "max waiting requests beyond inflight before 429; 0 means 2x inflight")
		fault     = fs.Float64("fault", 0, "EM fault probability per mirror I/O; 0 disables the mirrors")
		load      = fs.Bool("load", false, "load-generator mode: serve in-process and hammer with -clients")
		clients   = fs.Int("clients", 16, "concurrent load clients (with -load)")
		pprofOn   = fs.String("pprof", "", "serve net/http/pprof on this host:port (empty disables); profile the hot path with e.g. go tool pprof http://HOST:PORT/debug/pprof/heap")
		traceRate = fs.Float64("trace-sample-rate", 0, "fraction of requests whose per-stage span timings are logged as JSON on stderr (0 disables)")
		coalesce  = fs.Int("coalesce", 16, "max concurrent /sample requests coalesced into one engine batch; 0 disables coalescing")
		linger    = fs.Duration("linger", 0, "how long a non-full batch waits for straggler requests; 0 means 100µs when coalescing is on")
		mutable   = fs.Bool("mutable", false, "serve the dataset behind the ingest write path: /insert, /delete and /bulkload go live and shard boundaries rebalance under skew")
		writeMix  = fs.Float64("write-mix", 0, "fraction of load-mode requests that are writes (requires -mutable and -load)")
		assertQ   = fs.Float64("assert-quality", 0, "post-drain gate: enable per-shard sample-quality monitors and exit 1 unless the worst quality ratio stays <= this (0 disables)")
		poolCap   = fs.Int("pool", 0, "precomputed sample-pool capacity per hot window (draws pre-filled off the request path); 0 disables pooling")
		poolWin   = fs.Int("pool-windows", 0, "max distinct pooled windows per shard (LRU beyond this); 0 means the samplepool default")
		binaryOn  = fs.Bool("binary", false, "load mode: negotiate the binary response framing (Accept: "+server.BinContentType+") on queries")
		keepAlive = fs.Bool("keepalive", true, "load mode: reuse persistent connections across requests (false dials per request)")
		hotFrac   = fs.Float64("hot", 0, "load mode: fraction of queries aimed at one fixed hot range (pool-favorable) instead of a uniform random range")
		estFrac   = fs.Float64("estimate", 0, "load mode: fraction of queries sent to /estimate (cycling count/sum/avg/distinct), each response validated client-side")
		routerOn  = fs.Bool("router", false, "cluster router mode: hold no shard data, plan queries locally and fan sub-samples out to -nodes")
		nodeOn    = fs.Bool("node", false, "cluster data-node mode: host the shards the hash ring assigns to -addr and serve /subsample")
		nodesCSV  = fs.String("nodes", "", "comma-separated data-node addresses in canonical cluster order (required by -router and -node)")
		replicas  = fs.Int("replicas", 2, "cluster replica count R: owners per shard, failover width")
		ioRate    = fs.Float64("io-rate", 0, "node mode: storage device sustained read rate in blocks/s; sub-samples admit their estimated block cost before drawing (0 disables the gate)")
		ioBurst   = fs.Float64("io-burst", 0, "node mode: I/O gate burst capacity in blocks; 0 derives a default from -io-rate")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: iqsserve [-addr A] [-shards K] [-seed S] [-duration D] [-n N] [-kind K] [-timeout D] [-inflight N] [-queue N] [-fault P] [-load] [-clients N] [-pprof A] [-trace-sample-rate P] [-coalesce N] [-linger D] [-pool N] [-pool-windows N] [-binary] [-keepalive] [-hot P] [-router|-node] [-nodes A,B,...] [-replicas R] [-io-rate B] [-io-burst B]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards < 1 || *n < 2 || *inflight < 1 || *queue < 0 || *timeout <= 0 ||
		*fault < 0 || *fault > 1 || *clients < 1 || *duration < 0 ||
		*traceRate < 0 || *traceRate > 1 || *coalesce < 0 || *linger < 0 ||
		*writeMix < 0 || *writeMix > 1 || *assertQ < 0 ||
		*poolCap < 0 || *poolWin < 0 || *hotFrac < 0 || *hotFrac > 1 ||
		*estFrac < 0 || *estFrac > 1 ||
		*replicas < 1 || *ioRate < 0 || *ioBurst < 0 {
		fmt.Fprintln(stderr, "iqsserve: bad flag values")
		fs.Usage()
		return 2
	}
	if *writeMix > 0 && !*mutable {
		fmt.Fprintln(stderr, "iqsserve: -write-mix requires -mutable")
		return 2
	}
	var nodeList []string
	for _, a := range strings.Split(*nodesCSV, ",") {
		if a = strings.TrimSpace(a); a != "" {
			nodeList = append(nodeList, a)
		}
	}
	if *routerOn || *nodeOn {
		switch {
		case *routerOn && *nodeOn:
			fmt.Fprintln(stderr, "iqsserve: -router and -node are mutually exclusive")
			return 2
		case len(nodeList) == 0:
			fmt.Fprintln(stderr, "iqsserve: -router/-node require -nodes")
			return 2
		case *mutable || *poolCap > 0:
			fmt.Fprintln(stderr, "iqsserve: -mutable and -pool are single-node features (both would make draws diverge from the router's deterministic plan)")
			return 2
		}
		if *routerOn && (*fault > 0 || *assertQ > 0) {
			fmt.Fprintln(stderr, "iqsserve: -fault and -assert-quality need shard services; the router hosts none (set them on the nodes)")
			return 2
		}
	}
	if (*ioRate > 0 || *ioBurst > 0) && !*nodeOn {
		fmt.Fprintln(stderr, "iqsserve: -io-rate/-io-burst only apply to -node")
		return 2
	}
	if *pprofOn != "" {
		if _, err := net.ResolveTCPAddr("tcp", *pprofOn); err != nil {
			fmt.Fprintf(stderr, "iqsserve: bad -pprof address %q: %v\n", *pprofOn, err)
			return 2
		}
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		fmt.Fprintf(stderr, "iqsserve: %v\n", err)
		return 2
	}
	if *load && *duration == 0 {
		*duration = 2 * time.Second
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var svcOpts func(int) service.Options
	var devs []*em.Device
	if *fault > 0 {
		devs = make([]*em.Device, *shards)
		for i := range devs {
			dev, err := em.NewDevice(64, 1<<16)
			if err != nil {
				fmt.Fprintf(stderr, "iqsserve: %v\n", err)
				return 1
			}
			dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: *fault, WriteFailProb: *fault, Seed: *seed + uint64(i) + 1})
			devs[i] = dev
		}
		svcOpts = func(i int) service.Options {
			so := service.Options{
				Mirror:      devs[i],
				Retry:       em.RetryPolicy{MaxAttempts: 6, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond},
				BuildBudget: 30 * time.Second,
			}
			if *assertQ > 0 {
				// The hook owns the whole per-shard Options, so the quality
				// monitors the gate reads must be re-requested here.
				so.Quality = metrics.UniformityOptions{Stride: 1, MinFolded: 256}
			}
			return so
		}
	}

	// One registry for the whole stack: the coordinator, every shard
	// service, and the HTTP front end all register here, so /metrics
	// exposes the full request path. Structured warnings (downgrades,
	// quality breaches) and sampled trace lines go to stderr as JSON.
	reg := metrics.NewRegistry()
	logger := slog.New(slog.NewJSONHandler(stderr, nil))

	values := make([]float64, *n)
	for i := range values {
		values[i] = float64(i)
	}
	var eng server.Engine
	var nodeBackend server.NodeBackend
	switch {
	case *routerOn:
		rt, err := cluster.NewRouter(values, nil, cluster.Options{
			Nodes:    nodeList,
			Replicas: *replicas,
			Shards:   *shards,
			Metrics:  reg,
		})
		if err != nil {
			fmt.Fprintf(stderr, "iqsserve: build router: %v\n", err)
			return 1
		}
		defer rt.Close()
		eng = rt
		fmt.Fprintf(stdout, "iqsserve: router over %d nodes (replicas=%d, shards=%d)\n",
			len(nodeList), *replicas, *shards)
	case *nodeOn:
		nopts := cluster.NodeOptions{
			Nodes:    nodeList,
			Self:     *addr,
			Replicas: *replicas,
			Shards:   *shards,
			Kind:     kind,
			Service:  svcOpts,
			IOGate:   em.NewIOGate(*ioRate, *ioBurst),
			Metrics:  reg,
			Logger:   logger,
		}
		if *assertQ > 0 {
			nopts.Quality = metrics.UniformityOptions{Stride: 1, MinFolded: 256}
		}
		nh, err := cluster.NewNodeHost(context.Background(), values, nil, nopts)
		if err != nil {
			fmt.Fprintf(stderr, "iqsserve: build node: %v\n", err)
			return 1
		}
		defer nh.Close()
		eng, nodeBackend = nh, nh
		fmt.Fprintf(stdout, "iqsserve: node %s owns shards %v of %d (replicas=%d, io-rate=%g)\n",
			*addr, nh.Owned(), *shards, *replicas, *ioRate)
	default:
		shOpts := shard.Options{
			Shards:  *shards,
			Kind:    kind,
			Service: svcOpts,
			Metrics: reg,
			Logger:  logger,
		}
		if *assertQ > 0 {
			// The gate needs live quality signal: fold every served sample.
			shOpts.Quality = metrics.UniformityOptions{Stride: 1, MinFolded: 256}
		}
		if *mutable {
			shOpts.Mutable = true
			shOpts.Ingest = service.MutableOptions{Seed: *seed}
			shOpts.RebalanceInterval = 500 * time.Millisecond
		}
		if *poolCap > 0 {
			shOpts.Pool = &samplepool.Config{Capacity: *poolCap, MaxEntries: *poolWin, Seed: *seed}
		}
		coord, err := shard.New(context.Background(), "iqs", values, nil, shOpts)
		if err != nil {
			fmt.Fprintf(stderr, "iqsserve: build engine: %v\n", err)
			return 1
		}
		defer coord.Close()
		eng = coord
	}

	srv := server.New(eng, server.Options{
		MaxInFlight:     *inflight,
		MaxQueue:        *queue,
		Timeout:         *timeout,
		Seed:            *seed,
		Metrics:         reg,
		TraceSampleRate: *traceRate,
		Logger:          logger,
		Coalesce:        *coalesce,
		Linger:          *linger,
		Node:            nodeBackend,
	})

	// Flag-guarded profiling endpoint on its own mux and listener, so
	// the pprof handlers are never reachable through the serving address
	// and the query mux stays free of debug routes.
	if *pprofOn != "" {
		pl, err := net.Listen("tcp", *pprofOn)
		if err != nil {
			fmt.Fprintf(stderr, "iqsserve: pprof listen: %v\n", err)
			return 1
		}
		defer pl.Close()
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Even the debug listener bounds slow header reads and idle
		// connections: every listener this binary opens carries explicit
		// timeouts.
		ps := &http.Server{
			Handler:           pmux,
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() { _ = ps.Serve(pl) }()
		fmt.Fprintf(stdout, "iqsserve: pprof on http://%s/debug/pprof/\n", pl.Addr())
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "iqsserve: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "iqsserve: listening on %s (%d shards, n=%d, kind=%s, inflight=%d, coalesce=%d)\n",
		l.Addr(), *shards, *n, kind, *inflight, *coalesce)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	if *load {
		runLoad(ctx, stdout, "http://"+l.Addr().String(), loadConfig{
			clients: *clients, n: *n, seed: *seed, writeMix: *writeMix,
			binary: *binaryOn, keepAlive: *keepAlive, hotFrac: *hotFrac,
			estFrac: *estFrac,
		})
	} else {
		<-ctx.Done()
	}

	shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		fmt.Fprintf(stderr, "iqsserve: shutdown: %v\n", err)
		return 1
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "iqsserve: serve: %v\n", err)
		return 1
	}

	h := eng.Health()
	fmt.Fprintf(stdout, "iqsserve: drained cleanly (engine requests %d, failures %d, panics contained %d, downgrades %d",
		h.Aggregate.Requests, h.Aggregate.Failures, h.Aggregate.PanicsContained, h.Aggregate.Downgrades)
	if devs != nil {
		var faults int64
		for _, dev := range devs {
			faults += dev.FaultsInjected()
		}
		fmt.Fprintf(stdout, ", EM faults %d", faults)
	}
	fmt.Fprintln(stdout, ")")

	if *assertQ > 0 {
		// Post-drain statistical gate for the churn smoke job: scrape the
		// registry the monitors fed during the run and fail hard if any
		// shard's chi-squared quality ratio ended out of bounds, or if a
		// write-mix run never applied a write.
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			fmt.Fprintf(stderr, "iqsserve: render metrics: %v\n", err)
			return 1
		}
		exp, err := metrics.ParseExposition(&buf)
		if err != nil {
			fmt.Fprintf(stderr, "iqsserve: parse metrics: %v\n", err)
			return 1
		}
		q, ok := exp.MaxAcross("iqs_sample_quality_ratio")
		if !ok {
			fmt.Fprintln(stderr, "iqsserve: quality gate: no iqs_sample_quality_ratio series")
			return 1
		}
		if q > *assertQ {
			fmt.Fprintf(stderr, "iqsserve: quality gate FAILED: worst ratio %.3f > %.3f\n", q, *assertQ)
			return 1
		}
		if *writeMix > 0 {
			if applied := exp.SumAcross("iqs_ingest_applied_total"); applied == 0 {
				fmt.Fprintln(stderr, "iqsserve: quality gate: write-mix run applied no writes")
				return 1
			}
		}
		fmt.Fprintf(stdout, "iqsserve: quality gate passed (worst ratio %.3f <= %.3f)\n", q, *assertQ)
	}
	return 0
}

// loadConfig parameterizes one load-generator run.
type loadConfig struct {
	clients   int
	n         int
	seed      uint64
	writeMix  float64
	binary    bool // negotiate the binary framing on queries
	keepAlive bool // persistent connections (shared transport)
	hotFrac   float64
	estFrac   float64 // fraction of queries sent to /estimate
}

// runLoad hammers base with clients goroutines until ctx expires, then
// reports throughput, latency percentiles, and admission-control sheds.
// writeMix is the probability a request is a write instead of a query:
// inserts of fresh out-of-span values and deletes of the client's own
// earlier inserts, so the dataset churns without ever going empty.
// hotFrac aims that fraction of queries at one fixed range, the
// pool-favorable regime; with keepAlive every client reuses persistent
// connections through one shared transport sized for the fleet, so
// per-request cost measures the serving stack rather than TCP setup.
func runLoad(ctx context.Context, stdout io.Writer, base string, lc loadConfig) {
	clients, n, seed, writeMix := lc.clients, lc.n, lc.seed, lc.writeMix
	fmt.Fprintf(stdout, "iqsserve: load mode, %d clients against %s (write mix %.0f%%, hot %.0f%%, binary %v, keepalive %v)\n",
		clients, base, 100*writeMix, 100*lc.hotFrac, lc.binary, lc.keepAlive)
	tr := &http.Transport{
		MaxIdleConns:        clients + 8,
		MaxIdleConnsPerHost: clients + 8,
		IdleConnTimeout:     90 * time.Second,
		DisableKeepAlives:   !lc.keepAlive,
	}
	defer tr.CloseIdleConnections()
	// One fixed hot window: a narrow slice in the middle of the seeded
	// span, so it lands inside a single shard on any partition count.
	hotLo := float64(n / 2)
	hotHi := hotLo + float64(max(n/64, 1))
	var (
		wg                     sync.WaitGroup
		ok, busy, gone, failed atomic.Int64
		wrote, decodeBad       atomic.Int64
		estimated              atomic.Int64
		estQErrBits            atomic.Uint64 // Float64bits of the worst scored q-error
		mu                     sync.Mutex
		lats                   []time.Duration
	)
	estOps := [...]string{"count", "sum", "avg", "distinct"}
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := core.NewRand(seed + uint64(g) + 1)
			cli := &http.Client{Timeout: 30 * time.Second, Transport: tr}
			var local []time.Duration
			var inserted []float64
			var body bytes.Buffer
			for i := 0; ctx.Err() == nil; i++ {
				var req *http.Request
				var err error
				isWrite := writeMix > 0 && r.Float64() < writeMix
				isEst := false
				if isWrite {
					// Delete an own earlier insert half the time (keeping
					// the live size roughly flat), else insert a value
					// unique to this client above the seeded span.
					var body string
					if len(inserted) > 0 && r.Float64() < 0.5 {
						v := inserted[len(inserted)-1]
						inserted = inserted[:len(inserted)-1]
						body = fmt.Sprintf(`{"value":%g}`, v)
						req, err = http.NewRequestWithContext(ctx, http.MethodPost, base+"/delete", strings.NewReader(body))
					} else {
						v := float64(n) + float64(g)*1e9 + float64(i)
						inserted = append(inserted, v)
						body = fmt.Sprintf(`{"value":%g,"weight":%g}`, v, 1+r.Float64())
						req, err = http.NewRequestWithContext(ctx, http.MethodPost, base+"/insert", strings.NewReader(body))
					}
					if req != nil {
						req.Header.Set("Content-Type", "application/json")
					}
				} else if lc.estFrac > 0 && r.Float64() < lc.estFrac {
					// Approximate-analytics traffic: cycle the aggregates
					// over random ranges (distinct ignores the range).
					isEst = true
					lo := float64(r.Intn(n / 2))
					hi := lo + float64(1+r.Intn(n/2))
					url := fmt.Sprintf("%s/estimate?op=%s&lo=%g&hi=%g&k=256", base, estOps[i%len(estOps)], lo, hi)
					req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
					if req != nil {
						req.Header.Set("Accept", server.BinContentType)
					}
				} else {
					lo := float64(r.Intn(n / 2))
					hi := lo + float64(1+r.Intn(n/2))
					wor := i%8 == 7
					if lc.hotFrac > 0 && r.Float64() < lc.hotFrac {
						lo, hi, wor = hotLo, hotHi, false
					}
					url := fmt.Sprintf("%s/sample?lo=%g&hi=%g&k=8", base, lo, hi)
					if wor {
						url += "&wor=true"
					}
					req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
					if req != nil && lc.binary {
						req.Header.Set("Accept", server.BinContentType)
					}
				}
				if err != nil {
					failed.Add(1)
					continue
				}
				t0 := time.Now()
				resp, err := cli.Do(req)
				if err != nil {
					if ctx.Err() == nil {
						failed.Add(1)
					}
					continue
				}
				if isEst && resp.StatusCode == http.StatusOK {
					// Estimates always negotiate the binary framing; decode
					// the frame and keep the worst scored q-error seen.
					body.Reset()
					if _, cerr := io.Copy(&body, resp.Body); cerr == nil {
						res, derr := server.DecodeEstimateBody(body.Bytes())
						if derr != nil {
							decodeBad.Add(1)
						} else if q := res.QError; q >= 1 && !math.IsInf(q, 1) {
							for {
								prev := estQErrBits.Load()
								if q <= math.Float64frombits(prev) || estQErrBits.CompareAndSwap(prev, math.Float64bits(q)) {
									break
								}
							}
						}
					}
				} else if lc.binary && !isWrite && resp.StatusCode == http.StatusOK {
					// Validate the negotiated framing end to end instead of
					// discarding it: a malformed frame counts against the run.
					body.Reset()
					if _, cerr := io.Copy(&body, resp.Body); cerr == nil {
						if _, derr := server.DecodeSampleBody(body.Bytes()); derr != nil {
							decodeBad.Add(1)
						}
					}
				} else {
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					if isWrite {
						wrote.Add(1)
					}
					if isEst {
						estimated.Add(1)
					}
					local = append(local, time.Since(t0))
				case http.StatusTooManyRequests:
					busy.Add(1)
				case http.StatusServiceUnavailable:
					gone.Add(1)
				default:
					failed.Add(1)
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := ok.Load() + busy.Load() + gone.Load() + failed.Load()
	fmt.Fprintf(stdout, "load: %d requests in %v (%.0f req/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Fprintf(stdout, "load: ok %d (writes %d), shed 429 (busy) %d, shed 503 (draining) %d, failed %d\n",
		ok.Load(), wrote.Load(), busy.Load(), gone.Load(), failed.Load())
	if lc.binary {
		fmt.Fprintf(stdout, "load: binary frames decoded, %d malformed\n", decodeBad.Load())
	}
	if lc.estFrac > 0 {
		fmt.Fprintf(stdout, "load: estimates ok %d, worst scored q-error %.4f, %d malformed frames\n",
			estimated.Load(), math.Float64frombits(estQErrBits.Load()), decodeBad.Load())
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration { return lats[min(len(lats)-1, int(p*float64(len(lats))))] }
		fmt.Fprintf(stdout, "load: latency p50 %v, p95 %v, p99 %v, max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
}
