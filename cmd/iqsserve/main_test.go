package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallLoad(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-clients", "4", "-requests", "400", "-n", "256", "-fault", "0.05"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	for _, want := range []string{"requests", "panics contained", "downgrades", "EM faults", "datasets:"} {
		if !strings.Contains(s, want) {
			t.Errorf("health summary missing %q:\n%s", want, s)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-fault", "2"}, &out, &errw); code == 0 {
		t.Fatal("fault probability > 1 must exit non-zero")
	}
	if !strings.Contains(errw.String(), "usage:") {
		t.Errorf("missing usage, got: %s", errw.String())
	}
	if code := run([]string{"-no-such"}, &out, &errw); code == 0 {
		t.Fatal("unknown flag must exit non-zero")
	}
}
