package main

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-shards", "0"},
		{"-n", "1"},
		{"-inflight", "0"},
		{"-fault", "2"},
		{"-duration", "-1s"},
		{"-kind", "btree"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, errw.String())
		}
	}
}

// TestRunServeMode starts the server for a bounded duration and checks
// it comes up, auto-stops, and drains cleanly with exit 0.
func TestRunServeMode(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-duration", "200ms", "-n", "1024", "-shards", "3"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	if !strings.Contains(s, "listening on") {
		t.Errorf("no listening banner:\n%s", s)
	}
	if !strings.Contains(s, "drained cleanly") {
		t.Errorf("no clean-drain report:\n%s", s)
	}
}

// TestRunLoadMode runs the built-in load generator against a tiny
// admission window: with 8 clients and only inflight=1/queue=1 the
// server must shed with 429s while still serving traffic, and the run
// must still drain cleanly.
func TestRunLoadMode(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-load", "-addr", "127.0.0.1:0", "-duration", "600ms",
		"-clients", "8", "-inflight", "1", "-queue", "1", "-n", "1024",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	s := out.String()
	m := regexp.MustCompile(`ok (\d+) \(writes \d+\), shed 429 \(busy\) (\d+)`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no load report:\n%s", s)
	}
	okN, _ := strconv.Atoi(m[1])
	busyN, _ := strconv.Atoi(m[2])
	if okN == 0 {
		t.Errorf("load run served nothing:\n%s", s)
	}
	if busyN == 0 {
		t.Errorf("admission control never engaged (no 429s) despite inflight=1 and 8 clients:\n%s", s)
	}
	if !strings.Contains(s, "drained cleanly") {
		t.Errorf("no clean-drain report:\n%s", s)
	}
}

// TestRunLoadModeWithFaults keeps the PR 1 chaos contract alive over
// HTTP: fault-injected shard mirrors under load traffic must not crash
// the binary or poison the exit code.
func TestRunLoadModeWithFaults(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-load", "-addr", "127.0.0.1:0", "-duration", "400ms",
		"-clients", "4", "-n", "512", "-fault", "0.05", "-shards", "2",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "EM faults") {
		t.Errorf("no EM fault report:\n%s", out.String())
	}
}

// TestRunMutableChurnMode is the churn gate in miniature: mutable
// serving with a 25% write mix, and the post-drain quality assertion
// over the dynamic uniformity monitors must pass.
func TestRunMutableChurnMode(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-mutable", "-load", "-addr", "127.0.0.1:0", "-duration", "600ms",
		"-clients", "4", "-write-mix", "0.25", "-n", "2048", "-shards", "2",
		"-assert-quality", "1",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errw.String(), out.String())
	}
	s := out.String()
	m := regexp.MustCompile(`ok \d+ \(writes (\d+)\)`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no load report:\n%s", s)
	}
	if w, _ := strconv.Atoi(m[1]); w == 0 {
		t.Errorf("write mix produced no writes:\n%s", s)
	}
	if !strings.Contains(s, "quality gate passed") {
		t.Errorf("no quality gate report:\n%s", s)
	}
}

// TestRunEstimateLoadMode drives the approximate-analytics traffic arm:
// every estimate response is decoded client-side from the binary frame
// and the run reports how many validated plus the worst scored q-error.
func TestRunEstimateLoadMode(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{
		"-load", "-addr", "127.0.0.1:0", "-duration", "600ms",
		"-clients", "4", "-estimate", "0.5", "-n", "4096", "-shards", "2",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errw.String(), out.String())
	}
	s := out.String()
	m := regexp.MustCompile(`load: estimates ok (\d+), worst scored q-error ([0-9.]+), (\d+) malformed frames`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no estimate report:\n%s", s)
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Errorf("estimate arm produced no validated responses:\n%s", s)
	}
	if bad, _ := strconv.Atoi(m[3]); bad != 0 {
		t.Errorf("estimate frames failed to decode (%d malformed):\n%s", bad, s)
	}
}

// TestRunRejectsWriteMixWithoutMutable pins the flag validation: a
// write mix needs the write path.
func TestRunRejectsWriteMixWithoutMutable(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-load", "-write-mix", "0.5", "-addr", "127.0.0.1:0"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2 (bad flags)", code)
	}
}
