package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func good(label, name string) Entry {
	return Entry{Label: label, Name: name, NsPerOp: 2000, BytesPerOp: 64, AllocsPerOp: 2, QPS: 5e5}
}

func TestValidateEntries(t *testing.T) {
	cases := []struct {
		name    string
		entries []Entry
		want    string // substring of the defect message; "" = sound
	}{
		{"empty", nil, ""},
		{"sound", []Entry{good("pr3-before", "BenchmarkA"), good("pr3-after", "BenchmarkA")}, ""},
		{"bad name", []Entry{{Label: "pr3-after", Name: "A", NsPerOp: 1, QPS: 1e9}}, "does not name a benchmark"},
		{"zero ns", []Entry{{Label: "pr3-after", Name: "BenchmarkA", NsPerOp: 0}}, "not positive"},
		{"negative allocs", []Entry{{Label: "pr3-after", Name: "BenchmarkA", NsPerOp: 2000, AllocsPerOp: -1, QPS: 5e5}}, "negative memory stats"},
		{"legacy label", []Entry{good("after", "BenchmarkA")}, "not normalized"},
		{"qps drift", []Entry{{Label: "pr3-after", Name: "BenchmarkA", NsPerOp: 2000, QPS: 1e6}}, "inconsistent with ns_per_op"},
		{"duplicate key", []Entry{good("pr3-after", "BenchmarkA"), good("pr3-after", "BenchmarkA")}, "duplicate key"},
	}
	for _, tc := range cases {
		msg := validateEntries(tc.entries)
		if tc.want == "" && msg != "" {
			t.Errorf("%s: unexpected defect %q", tc.name, msg)
		}
		if tc.want != "" && !strings.Contains(msg, tc.want) {
			t.Errorf("%s: defect %q does not mention %q", tc.name, msg, tc.want)
		}
	}
}

// TestValidateFlagRejectsMalformedFile pins the CLI exit codes the CI
// schema-check step relies on: a sound file passes, a duplicated or
// otherwise malformed one fails.
func TestValidateFlagRejectsMalformedFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, blob string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	sound := write("ok.json", `[
  {"label":"pr9-after","name":"BenchmarkX","ns_per_op":1000,"b_per_op":0,"allocs_per_op":0,"qps":1000000}
]`)
	if code := run([]string{"-validate", "-out", sound}); code != 0 {
		t.Errorf("sound file: exit %d, want 0", code)
	}
	dup := write("dup.json", `[
  {"label":"pr9-after","name":"BenchmarkX","ns_per_op":1000,"qps":1000000},
  {"label":"pr9-after","name":"BenchmarkX","ns_per_op":1200,"qps":833333}
]`)
	if code := run([]string{"-validate", "-out", dup}); code != 1 {
		t.Errorf("duplicate keys: exit %d, want 1", code)
	}
	garbled := write("garbled.json", `{"not":"a list"}`)
	if code := run([]string{"-validate", "-out", garbled}); code != 1 {
		t.Errorf("non-list JSON: exit %d, want 1", code)
	}
}

// TestValidateCheckedInSnapshot keeps the repository's own trajectory
// file loadable and schema-clean from the test suite, not only the CI
// shell step.
func TestValidateCheckedInSnapshot(t *testing.T) {
	entries, err := load("../../BENCH_hotpath.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("checked-in snapshot is empty")
	}
	if msg := validateEntries(entries); msg != "" {
		t.Fatalf("checked-in snapshot malformed: %s", msg)
	}
}
