// Command benchjson runs the hot-path benchmark suite with -benchmem and
// records the results as JSON entries in BENCH_hotpath.json at the repo
// root, so the performance trajectory accumulates PR over PR:
//
//	go run ./cmd/benchjson -label after            # run + append
//	go run ./cmd/benchjson -validate               # schema-check only
//
// Each entry carries the benchmark name, ns/op, B/op, allocs/op, and the
// derived single-goroutine qps (1e9/ns_per_op). Entries are keyed by
// (label, name): re-running with the same label overwrites that label's
// entries in place instead of duplicating them.
//
// Labels must name the PR they measure: prN-before / prN-after. The
// bare labels "before"/"after" that early snapshots used are ambiguous
// once several PRs share the file ("after" ended up holding a mix of
// PR-3 and PR-7 results), so they are rejected for new runs and
// migrated on load: "before" → "pr3-before" (the file's first
// snapshot), "after" → "pr7-after" for the mutable-engine benchmarks
// PR 7 introduced and "pr3-after" for the rest. Any write (a bench run
// or -normalize) persists the migrated labels.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement in BENCH_hotpath.json.
type Entry struct {
	Label       string  `json:"label"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	QPS         float64 `json:"qps"`
}

// benchLine matches `go test -bench -benchmem` result lines, e.g.
// BenchmarkServerSample-8   12345   98765 ns/op   4321 B/op   21 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// labelForm is the only accepted shape for new labels: the PR the
// numbers belong to, plus which side of it they measure.
var labelForm = regexp.MustCompile(`^pr\d+-(before|after)$`)

// normalizeLabel migrates the legacy bare labels left by early
// snapshots. "before" predates every prN label, so it is PR 3's
// baseline; "after" accumulated results from two eras — the mutable
// benchmarks appeared with PR 7, everything else was written by PR 3.
func normalizeLabel(label, name string) string {
	switch label {
	case "before":
		return "pr3-before"
	case "after":
		if strings.HasPrefix(name, "BenchmarkMutable") {
			return "pr7-after"
		}
		return "pr3-after"
	}
	return label
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		label     = fs.String("label", "", "label stored with each entry; must be prN-before or prN-after (e.g. pr8-after)")
		out       = fs.String("out", "BENCH_hotpath.json", "output JSON file")
		benchRe   = fs.String("bench", "RangeSample|ServiceSample|ShardSample|ShardBatch|ServerSample|ServerBatch|ClusterSample|Fill|Uint64Scalar|AliasSample|UniformWoR|WeightedWoR", "benchmark regex passed to go test -bench")
		benchtime = fs.String("benchtime", "1s", "benchtime passed to go test")
		pkgs      = fs.String("pkgs", "./internal/core ./internal/service ./internal/shard ./internal/server ./internal/cluster ./internal/rng ./internal/alias ./internal/wor", "space-separated package list")
		validate  = fs.Bool("validate", false, "only validate that the output file is well-formed")
		normalize = fs.Bool("normalize", false, "rewrite the output file with legacy labels migrated and duplicates dropped, without running benchmarks")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *validate {
		entries, err := load(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		if msg := validateEntries(entries); msg != "" {
			fmt.Fprintf(os.Stderr, "benchjson: %s\n", msg)
			return 1
		}
		fmt.Printf("benchjson: %s ok, %d entries\n", *out, len(entries))
		return 0
	}
	if *normalize {
		entries, err := load(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		if err := save(*out, merge(entries, nil)); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		fmt.Printf("benchjson: normalized %d entries in %s\n", len(entries), *out)
		return 0
	}
	if !labelForm.MatchString(*label) {
		fmt.Fprintf(os.Stderr, "benchjson: -label %q must be prN-before or prN-after (e.g. -label pr8-after)\n", *label)
		return 2
	}

	cmdArgs := append([]string{"test", "-run", "^$", "-bench", *benchRe,
		"-benchmem", "-benchtime", *benchtime, "-count", "1"},
		strings.Fields(*pkgs)...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n%s", err, raw)
		return 1
	}
	fresh := parse(string(raw), *label)
	if len(fresh) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark results parsed\n%s", raw)
		return 1
	}
	entries, err := load(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	entries = merge(entries, fresh)
	if err := save(*out, entries); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	for _, e := range fresh {
		fmt.Printf("%-45s %12.1f ns/op %8d B/op %6d allocs/op %12.0f qps\n",
			e.Label+"/"+e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.QPS)
	}
	fmt.Printf("benchjson: wrote %d entries (%d new/updated) to %s\n", len(entries), len(fresh), *out)
	return 0
}

// validateEntries schema-checks a loaded trajectory and returns a
// description of the first defect, or "" when the file is sound. Beyond
// the field-level checks (a Benchmark-prefixed name, positive ns/op,
// non-negative memory stats, a normalized prN-before/prN-after label,
// qps consistent with ns/op) it rejects duplicate (label, name) keys:
// the merge discipline guarantees uniqueness, so a duplicate means the
// file was hand-edited or written by a broken tool and the trajectory
// would silently shadow one of the measurements.
func validateEntries(entries []Entry) string {
	seen := make(map[string]int, len(entries))
	for i, e := range entries {
		if !strings.HasPrefix(e.Name, "Benchmark") {
			return fmt.Sprintf("entry %d name %q does not name a benchmark: %+v", i, e.Name, e)
		}
		if !(e.NsPerOp > 0) {
			return fmt.Sprintf("entry %d ns_per_op %v not positive: %+v", i, e.NsPerOp, e)
		}
		if e.BytesPerOp < 0 || e.AllocsPerOp < 0 {
			return fmt.Sprintf("entry %d has negative memory stats: %+v", i, e)
		}
		if !labelForm.MatchString(e.Label) {
			return fmt.Sprintf("entry %d label %q not normalized (want prN-before/prN-after; run -normalize)", i, e.Label)
		}
		if want := 1e9 / e.NsPerOp; e.QPS <= 0 || e.QPS > 1.01*want || e.QPS < 0.99*want {
			return fmt.Sprintf("entry %d qps %v inconsistent with ns_per_op %v (want ~%.1f)", i, e.QPS, e.NsPerOp, want)
		}
		key := e.Label + "\x00" + e.Name
		if j, dup := seen[key]; dup {
			return fmt.Sprintf("entries %d and %d duplicate key (%s, %s); run -normalize", j, i, e.Label, e.Name)
		}
		seen[key] = i
	}
	return ""
}

// load reads the existing entries with legacy labels migrated; a
// missing file is an empty trajectory.
func load(path string) ([]Entry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i := range entries {
		entries[i].Label = normalizeLabel(entries[i].Label, entries[i].Name)
	}
	return entries, nil
}

// save writes the merged trajectory back to disk.
func save(path string, entries []Entry) error {
	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// parse extracts Entry values from go test -bench output.
func parse(out, label string) []Entry {
	var entries []Entry
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		var bpo, apo int64
		if m[3] != "" {
			bpo, _ = strconv.ParseInt(m[3], 10, 64)
			apo, _ = strconv.ParseInt(m[4], 10, 64)
		}
		e := Entry{Label: label, Name: m[1], NsPerOp: ns, BytesPerOp: bpo, AllocsPerOp: apo}
		if ns > 0 {
			e.QPS = 1e9 / ns
		}
		entries = append(entries, e)
	}
	return entries
}

// merge replaces same-(label, name) entries and appends the rest,
// keeping the stored order stable for reviewable diffs. Files written
// by the old append-only behaviour may already hold duplicate keys;
// only the first occurrence survives a merge, so one run repairs them.
func merge(old, fresh []Entry) []Entry {
	out := make([]Entry, 0, len(old)+len(fresh))
	replaced := make(map[string]Entry, len(fresh))
	for _, e := range fresh {
		replaced[e.Label+"\x00"+e.Name] = e
	}
	seen := make(map[string]bool, len(old)+len(fresh))
	for _, e := range old {
		key := e.Label + "\x00" + e.Name
		if seen[key] {
			continue // pre-existing duplicate: drop
		}
		seen[key] = true
		if ne, ok := replaced[key]; ok {
			out = append(out, ne)
			continue
		}
		out = append(out, e)
	}
	for _, e := range fresh {
		key := e.Label + "\x00" + e.Name
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	return out
}
