package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	for _, id := range []string{"E1", "E14", "A1"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-experiment", "E1", "-seed", "7"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	if out.Len() == 0 {
		t.Error("experiment produced no output")
	}
}

func TestRunUnknownExperimentFails(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-experiment", "E99"}, &out, &errw); code == 0 {
		t.Fatal("unknown experiment must exit non-zero")
	}
	msg := errw.String()
	if !strings.Contains(msg, "unknown experiment") || !strings.Contains(msg, "usage:") {
		t.Errorf("missing diagnostics+usage, got: %s", msg)
	}
}

func TestRunNoModeFlagFails(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code == 0 {
		t.Fatal("no mode flag must exit non-zero")
	}
	if !strings.Contains(errw.String(), "usage:") {
		t.Errorf("missing usage message, got: %s", errw.String())
	}
}

func TestRunBadFlagFails(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errw); code == 0 {
		t.Fatal("bad flag must exit non-zero")
	}
}
