// Command iqsbench regenerates the experiment tables indexed in
// DESIGN.md (E1–E14, A1–A3).
//
// Usage:
//
//	iqsbench -list
//	iqsbench -experiment E4 [-seed 42]
//	iqsbench -all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args with its own FlagSet,
// writes results to stdout and diagnostics to stderr, and returns the
// process exit code. Unknown experiment IDs and invocations without a
// mode flag print a usage message and exit non-zero.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iqsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID = fs.String("experiment", "", "experiment id (E1..E16, A1..A3, S1)")
		all   = fs.Bool("all", false, "run every experiment")
		list  = fs.Bool("list", false, "list experiments")
		seed  = fs.Uint64("seed", 42, "random seed")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: iqsbench -list | -experiment <id> [-seed N] | -all [-seed N]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "==== %s: %s ====\n", e.ID, e.Title)
			e.Run(stdout, *seed)
			fmt.Fprintln(stdout)
		}
	case *expID != "":
		e, ok := bench.Find(*expID)
		if !ok {
			fmt.Fprintf(stderr, "iqsbench: unknown experiment %q (use -list)\n", *expID)
			fs.Usage()
			return 2
		}
		e.Run(stdout, *seed)
	default:
		fmt.Fprintln(stderr, "iqsbench: no mode flag given")
		fs.Usage()
		return 2
	}
	return 0
}
