// Command iqsbench regenerates the experiment tables indexed in
// DESIGN.md (E1–E14, A1–A3).
//
// Usage:
//
//	iqsbench -list
//	iqsbench -experiment E4 [-seed 42]
//	iqsbench -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		expID = flag.String("experiment", "", "experiment id (E1..E14, A1..A3)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiments")
		seed  = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range bench.All() {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
			e.Run(os.Stdout, *seed)
			fmt.Println()
		}
	case *expID != "":
		e, ok := bench.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "iqsbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		e.Run(os.Stdout, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
