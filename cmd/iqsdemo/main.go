// Command iqsdemo is an interactive shell over a 1-D IQS sampler: load a
// value,weight CSV (e.g. from iqsgen) or generate synthetic data, then
// issue sampling queries and watch independence at work.
//
//	iqsdemo -csv data.csv
//	iqsdemo -n 1000000 -weights zipf
//
// Commands at the prompt:
//
//	sample <lo> <hi> <s>     s independent weighted samples of S∩[lo,hi]
//	wor <lo> <hi> <s>        without-replacement sample (uniform weights)
//	count <lo> <hi>          |S∩[lo,hi]|
//	save <path>              persist a snapshot
//	help | quit
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func main() {
	var (
		csvPath = flag.String("csv", "", "value,weight CSV (header optional); empty = synthetic")
		n       = flag.Int("n", 100000, "synthetic dataset size")
		wkind   = flag.String("weights", "uniform", "uniform | zipf | random (synthetic)")
		kind    = flag.String("structure", "chunked", "chunked | aliasaug | treewalk | naive")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	values, weights, err := loadData(*csvPath, *n, *wkind, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iqsdemo: %v\n", err)
		os.Exit(1)
	}
	k, err := parseKind(*kind)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iqsdemo: %v\n", err)
		os.Exit(2)
	}
	s, err := core.NewRangeSampler(k, values, weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iqsdemo: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d elements into a %v sampler; type 'help' for commands\n", s.Len(), s.Kind())
	repl(s, core.NewRand(*seed+1), os.Stdin, os.Stdout)
}

func parseKind(name string) (core.Kind, error) {
	switch name {
	case "chunked":
		return core.KindChunked, nil
	case "aliasaug":
		return core.KindAliasAug, nil
	case "treewalk":
		return core.KindTreeWalk, nil
	case "naive":
		return core.KindNaive, nil
	default:
		return 0, fmt.Errorf("unknown structure %q", name)
	}
}

func loadData(csvPath string, n int, wkind string, seed uint64) ([]float64, []float64, error) {
	if csvPath == "" {
		r := rng.New(seed)
		values := dataset.UniformValues(r, n)
		for i := range values {
			values[i] *= 1000
		}
		var weights []float64
		switch wkind {
		case "zipf":
			weights = dataset.ZipfWeights(r, n, 1)
		case "random":
			weights = dataset.RandomWeights(r, n, 0.5, 10)
		default:
			weights = dataset.UniformWeights(n)
		}
		return values, weights, nil
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rd := csv.NewReader(f)
	rd.FieldsPerRecord = -1 // allow rows with and without a weight column
	var values, weights []float64
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if len(rec) < 1 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		if err != nil {
			continue // header or junk line
		}
		w := 1.0
		if len(rec) > 1 {
			if pw, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64); err == nil {
				w = pw
			}
		}
		values = append(values, v)
		weights = append(weights, w)
	}
	if len(values) == 0 {
		return nil, nil, fmt.Errorf("no numeric rows in %s", csvPath)
	}
	return values, weights, nil
}

// repl runs the command loop; split out for testability.
func repl(s *core.RangeSampler, r *core.Rand, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			fmt.Fprint(out, "> ")
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Fprintln(out, "commands: sample <lo> <hi> <s> | wor <lo> <hi> <s> | count <lo> <hi> | save <path> | quit")
		case "count":
			if lo, hi, _, ok := parseArgs(out, fields, 2); ok {
				fmt.Fprintf(out, "%d\n", s.Count(lo, hi))
			}
		case "sample":
			if lo, hi, k, ok := parseArgs(out, fields, 3); ok {
				vals, found := s.Sample(r, lo, hi, k)
				if !found {
					fmt.Fprintln(out, "(empty range)")
				} else {
					printVals(out, vals)
				}
			}
		case "wor":
			if lo, hi, k, ok := parseArgs(out, fields, 3); ok {
				vals, err := s.SampleWoR(r, lo, hi, k)
				if err != nil {
					fmt.Fprintf(out, "error: %v\n", err)
				} else {
					printVals(out, vals)
				}
			}
		case "save":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: save <path>")
				break
			}
			if err := saveTo(s, fields[1]); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else {
				fmt.Fprintf(out, "saved to %s\n", fields[1])
			}
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", fields[0])
		}
		fmt.Fprint(out, "> ")
	}
}

func saveTo(s *core.RangeSampler, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Save(f)
}

func parseArgs(out io.Writer, fields []string, want int) (lo, hi float64, k int, ok bool) {
	if len(fields) != want+1 {
		fmt.Fprintf(out, "usage: %s needs %d arguments\n", fields[0], want)
		return 0, 0, 0, false
	}
	var err error
	if lo, err = strconv.ParseFloat(fields[1], 64); err != nil {
		fmt.Fprintf(out, "bad lo %q\n", fields[1])
		return 0, 0, 0, false
	}
	if hi, err = strconv.ParseFloat(fields[2], 64); err != nil {
		fmt.Fprintf(out, "bad hi %q\n", fields[2])
		return 0, 0, 0, false
	}
	if want == 3 {
		if k, err = strconv.Atoi(fields[3]); err != nil || k < 1 {
			fmt.Fprintf(out, "bad s %q\n", fields[3])
			return 0, 0, 0, false
		}
	}
	return lo, hi, k, true
}

func printVals(out io.Writer, vals []float64) {
	for i, v := range vals {
		if i > 0 {
			fmt.Fprint(out, " ")
		}
		fmt.Fprintf(out, "%.4g", v)
	}
	fmt.Fprintln(out)
}
