package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseKind(t *testing.T) {
	for name, want := range map[string]core.Kind{
		"chunked": core.KindChunked, "aliasaug": core.KindAliasAug,
		"treewalk": core.KindTreeWalk, "naive": core.KindNaive,
	} {
		got, err := parseKind(name)
		if err != nil || got != want {
			t.Fatalf("parseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseKind("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestLoadDataSynthetic(t *testing.T) {
	for _, wk := range []string{"uniform", "zipf", "random"} {
		values, weights, err := loadData("", 100, wk, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(values) != 100 || len(weights) != 100 {
			t.Fatalf("%s: %d/%d", wk, len(values), len(weights))
		}
	}
}

func TestLoadDataCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	content := "value,weight\n1.5,2\n2.5,3\n3.5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	values, weights, err := loadData(path, 0, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 3 {
		t.Fatalf("rows = %d", len(values))
	}
	if values[0] != 1.5 || weights[0] != 2 {
		t.Fatalf("row 0 = %v/%v", values[0], weights[0])
	}
	if weights[2] != 1 {
		t.Fatalf("missing weight should default to 1, got %v", weights[2])
	}
	// Empty / junk file.
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("a,b\nc,d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadData(bad, 0, "", 1); err == nil {
		t.Fatal("non-numeric CSV accepted")
	}
	if _, _, err := loadData(filepath.Join(dir, "missing.csv"), 0, "", 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestREPLEndToEnd(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5}
	s, err := core.NewRangeSampler(core.KindChunked, values, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "s.snap")
	in := strings.NewReader(strings.Join([]string{
		"help",
		"count 2 4",
		"sample 2 4 3",
		"wor 2 4 2",
		"sample 10 20 1",
		"bogus",
		"count 1",      // wrong arity
		"sample a b 1", // bad floats
		"save " + snap,
		"",
		"quit",
	}, "\n"))
	var out strings.Builder
	repl(s, core.NewRand(1), in, &out)
	got := out.String()
	for _, want := range []string{
		"commands:", "3\n", "(empty range)", "unknown command", "needs 2 arguments",
		"bad lo", "saved to",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// The snapshot must round-trip.
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 5 {
		t.Fatalf("reloaded Len = %d", loaded.Len())
	}
}
