// Command metricscheck validates a running iqsserve instance's
// /metrics endpoint: it optionally drives a burst of /sample and
// /batch traffic, scrapes the exposition, checks that it parses as
// Prometheus text format, and asserts a required set of series is
// present with sane values. Exit status is non-zero on any failure,
// which makes it the backbone of `make metrics-smoke` and the CI
// metrics step.
//
//	metricscheck -base http://127.0.0.1:8080 -drive 50
//	metricscheck -base http://127.0.0.1:8080 -require iqs_server_served_total,iqs_sample_quality_ratio
//	metricscheck -base http://127.0.0.1:8080 -drive 50 -mutable
//	metricscheck -base http://127.0.0.1:8080 -drive 50 -mutable -pool
//
// With -mutable the drive phase mixes /insert and /delete writes into
// the traffic and the required set grows by the ingest families
// (iqs_ingest_*, the rebuild histogram, the server write counter),
// with iqs_ingest_applied_total additionally required to be positive.
//
// With -estimate the drive phase also cycles /estimate traffic through
// count/sum/avg/distinct, validates every response client-side (a
// scored q-error must sit inside its certified bound), and the required
// set grows by the iqs_estimate_* families, with
// iqs_estimate_qerror_bound_exceeded_total additionally required to
// stay zero.
//
// With -pool (the server booted with -pool N) a hot-window warm phase
// runs BEFORE any write traffic — a mutable base boots pure and the
// pool serves only while it stays pure, so warming after the first
// /insert could never record a hit — and the required set grows by the
// iqs_pool_* and iqs_wire_encoding_total families. The warm phase mixes
// binary-framed requests in so both format legs of the wire counter are
// exercised, and with -mutable a trailing /bulkload kicks a rebuild
// whose pool rebind must bump iqs_pool_invalidations_total.
//
// With -cluster the base must be a cluster router (iqsserve -router):
// the single-node engine families are swapped for the iqs_cluster_*
// set, any 5xx during the drive fails the check (the failover path
// must absorb node loss invisibly), and the sub-sample RPC and merge
// counters must be positive after the drive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
)

// serverRequired is the HTTP front-end set, present on any iqsserve
// tier: single-node, cluster router, or data node.
var serverRequired = []string{
	"iqs_server_served_total",
	"iqs_server_request_seconds_count",
	"iqs_server_stage_seconds_count",
	"iqs_server_in_flight",
	"iqs_server_queue_depth",
	// Coalescer series: registered unconditionally, so they must be
	// present (zero is fine when -coalesce is off).
	"iqs_coalesce_batch_size_count",
	"iqs_coalesce_linger_seconds_count",
	"iqs_coalesced_requests_total",
}

// engineRequired joins serverRequired on a single-node server: the
// shard coordinator and per-shard service families. A cluster router
// hosts no shard services, so -cluster swaps this set for
// clusterRequired instead.
var engineRequired = []string{
	"iqs_service_requests_total",
	"iqs_service_sample_seconds_count",
	"iqs_shard_fanout_seconds_count",
	"iqs_shard_merge_seconds_count",
	"iqs_sample_quality_ratio",
}

// clusterRequired joins serverRequired under -cluster (base points at
// a cluster router): the fan-out, per-node RPC, failover, and breaker
// families the router registers.
var clusterRequired = []string{
	"iqs_cluster_fanout_seconds_count",
	"iqs_cluster_merge_seconds_count",
	"iqs_cluster_subsample_seconds_count",
	"iqs_cluster_subsamples_total",
	"iqs_cluster_node_errors_total",
	"iqs_cluster_failovers_total",
	"iqs_cluster_breaker_open",
}

// mutableRequired joins defaultRequired when -mutable drives writes:
// the ingest write path must export its delta-log, rebuild, and overlay
// series, and the server must count the writes it answered.
var mutableRequired = []string{
	"iqs_ingest_applied_total",
	"iqs_ingest_rejected_total",
	"iqs_ingest_rebuilds_total",
	"iqs_ingest_rebuild_failures_total",
	"iqs_ingest_rebuild_seconds_count",
	"iqs_ingest_delta_log_depth",
	"iqs_ingest_queue_depth",
	"iqs_ingest_overlay_fraction",
	"iqs_server_writes_total",
}

// poolRequired joins the set under -pool: the consume-once sample-pool
// families and the wire-format counter. Presence is asserted here;
// positivity of the hit, draw, wire, and (under -mutable) invalidation
// counters is asserted separately after the drive.
var poolRequired = []string{
	"iqs_pool_hits_total",
	"iqs_pool_partial_hits_total",
	"iqs_pool_misses_total",
	"iqs_pool_draws_total",
	"iqs_pool_refills_total",
	"iqs_pool_refill_draws_total",
	"iqs_pool_invalidations_total",
	"iqs_pool_evictions_total",
	"iqs_pool_entries",
	"iqs_pool_inventory",
	"iqs_wire_encoding_total",
}

// estimateRequired joins the set under -estimate: the request counter
// (per-op labels), the failure counter, the q-error histogram, and the
// bound-violation counter must all be exported.
var estimateRequired = []string{
	"iqs_estimate_requests_total",
	"iqs_estimate_failed_total",
	"iqs_estimate_qerror_count",
	"iqs_estimate_qerror_bound_exceeded_total",
}

// binContentType mirrors server.BinContentType: an Accept header
// containing it negotiates the length-prefixed binary framing.
const binContentType = "application/x-iqs-bin"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("metricscheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		base    = fs.String("base", "http://127.0.0.1:8080", "server base URL; /metrics and /sample are derived from it")
		drive   = fs.Int("drive", 50, "requests to issue before scraping so the series are non-empty; 0 scrapes as-is")
		require = fs.String("require", "", "comma-separated series names that must be present (default: the standard serving-stack set)")
		timeout = fs.Duration("timeout", 10*time.Second, "per-HTTP-request deadline")
		mutable = fs.Bool("mutable", false, "drive /insert and /delete writes too and require the ingest metric families")
		pool    = fs.Bool("pool", false, "the server runs with -pool: warm a hot window before any writes, require the iqs_pool_* and iqs_wire_encoding_total families, and assert pool hits (plus a rebuild-driven invalidation under -mutable)")
		est     = fs.Bool("estimate", false, "drive /estimate traffic (count/sum/avg/distinct), validate each response's q-error against its bound, and require the iqs_estimate_* families")
		clus    = fs.Bool("cluster", false, "the base is a cluster router: require the iqs_cluster_* families instead of the single-node engine set, assert sub-sample fan-out happened, and fail the drive on any 5xx")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *clus && (*mutable || *pool || *est) {
		fmt.Fprintln(stderr, "metricscheck: -cluster is incompatible with -mutable/-pool/-estimate (the router serves none of those paths)")
		return 2
	}
	required := append([]string(nil), serverRequired...)
	if *clus {
		required = append(required, clusterRequired...)
	} else {
		required = append(required, engineRequired...)
	}
	if *require != "" {
		required = strings.Split(*require, ",")
	} else {
		if *mutable {
			required = append(required, mutableRequired...)
		}
		if *pool {
			required = append(required, poolRequired...)
		}
		if *est {
			required = append(required, estimateRequired...)
		}
	}
	client := &http.Client{Timeout: *timeout}
	baseURL := strings.TrimRight(*base, "/")

	if *pool && *drive > 0 {
		if code := warmPool(client, baseURL, stderr); code != 0 {
			return code
		}
	}

	var wantSamples int
	for i := 0; i < *drive; i++ {
		if *mutable && i%4 == 3 {
			// Insert a fresh value, delete every other one right back, so
			// both write endpoints and the delete path see traffic.
			v := 1e9 + float64(i)
			resp, err := client.Post(baseURL+"/insert", "application/json",
				strings.NewReader(fmt.Sprintf(`{"value":%g,"weight":2}`, v)))
			if err != nil {
				fmt.Fprintf(stderr, "metricscheck: drive /insert: %v\n", err)
				return 1
			}
			drain(resp)
			if i%8 == 7 {
				resp, err = client.Post(baseURL+"/delete", "application/json",
					strings.NewReader(fmt.Sprintf(`{"value":%g}`, v)))
				if err != nil {
					fmt.Fprintf(stderr, "metricscheck: drive /delete: %v\n", err)
					return 1
				}
				drain(resp)
			}
			continue
		}
		if i%10 == 9 {
			resp, err := client.Post(baseURL+"/batch", "application/json",
				strings.NewReader(`{"queries":[{"lo":0,"hi":100,"k":4},{"lo":10,"hi":400,"k":8,"wor":true}]}`))
			if err != nil {
				fmt.Fprintf(stderr, "metricscheck: drive /batch: %v\n", err)
				return 1
			}
			status := resp.StatusCode
			drain(resp)
			if *clus && status >= 500 {
				fmt.Fprintf(stderr, "metricscheck: /batch answered %d through the cluster\n", status)
				return 1
			}
			continue
		}
		url := fmt.Sprintf("%s/sample?lo=%d&hi=%d&k=8", baseURL, i%100, 200+i%800)
		if i%5 == 4 {
			url += "&wor=true"
		}
		resp, err := client.Get(url)
		if err != nil {
			fmt.Fprintf(stderr, "metricscheck: drive /sample: %v\n", err)
			return 1
		}
		if resp.Header.Get("X-Request-ID") == "" {
			drain(resp)
			fmt.Fprintln(stderr, "metricscheck: /sample response missing X-Request-ID")
			return 1
		}
		status := resp.StatusCode
		drain(resp)
		if *clus && status >= 500 {
			fmt.Fprintf(stderr, "metricscheck: /sample answered %d through the cluster\n", status)
			return 1
		}
		wantSamples++
	}

	if *pool && *mutable && *drive > 0 {
		if code := driveBulkInvalidation(client, baseURL, stderr); code != 0 {
			return code
		}
	}

	wantEstimates := 0
	if *est && *drive > 0 {
		var code int
		if wantEstimates, code = driveEstimates(client, baseURL, *drive, stderr); code != 0 {
			return code
		}
	}

	exp, err := scrape(client, baseURL)
	if err != nil {
		fmt.Fprintf(stderr, "metricscheck: %v\n", err)
		return 1
	}

	bad := 0
	for _, name := range required {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if v := exp.SumAcross(name); v == 0 {
			if _, ok := exp.Get(name); !ok {
				fmt.Fprintf(stderr, "metricscheck: required series %q missing\n", name)
				bad++
			}
		}
	}
	if *drive > 0 {
		if v := exp.SumAcross("iqs_server_request_seconds_count"); v < float64(*drive) {
			fmt.Fprintf(stderr, "metricscheck: request histogram count %v < %d driven requests\n", v, *drive)
			bad++
		}
		if v, _ := exp.Get("iqs_server_served_total"); v <= 0 {
			fmt.Fprintln(stderr, "metricscheck: served_total is zero after driving load")
			bad++
		}
	}
	if *mutable && *drive > 0 {
		if v := exp.SumAcross("iqs_ingest_applied_total"); v <= 0 {
			fmt.Fprintln(stderr, "metricscheck: iqs_ingest_applied_total is zero after driving writes")
			bad++
		}
		if v := exp.SumAcross("iqs_server_writes_total"); v <= 0 {
			fmt.Fprintln(stderr, "metricscheck: iqs_server_writes_total is zero after driving writes")
			bad++
		}
	}
	if *pool && *drive > 0 {
		for _, name := range []string{"iqs_pool_hits_total", "iqs_pool_draws_total", "iqs_pool_refill_draws_total"} {
			if v := exp.SumAcross(name); v <= 0 {
				fmt.Fprintf(stderr, "metricscheck: %s is zero after the hot-window warm phase\n", name)
				bad++
			}
		}
		// Both wire-format legs must have served traffic: the drive is
		// JSON, the warm phase mixed binary-framed requests in.
		for _, format := range []string{`format="json"`, `format="binary"`} {
			if v := exp.SumAcross("iqs_wire_encoding_total", format); v <= 0 {
				fmt.Fprintf(stderr, "metricscheck: iqs_wire_encoding_total{%s} is zero\n", format)
				bad++
			}
		}
		if *mutable {
			if v := exp.SumAcross("iqs_pool_invalidations_total"); v <= 0 {
				fmt.Fprintln(stderr, "metricscheck: no pool invalidation recorded after the /bulkload rebuild")
				bad++
			}
		}
	}
	if *clus && *drive > 0 {
		// The driven queries span multiple shards, so sub-sample RPCs and
		// merges must have happened; zero means the fan-out path was
		// bypassed entirely.
		for _, name := range []string{"iqs_cluster_subsamples_total", "iqs_cluster_fanout_seconds_count", "iqs_cluster_merge_seconds_count"} {
			if v := exp.SumAcross(name); v <= 0 {
				fmt.Fprintf(stderr, "metricscheck: %s is zero after driving cluster load\n", name)
				bad++
			}
		}
	}
	if *est && *drive > 0 {
		if v := exp.SumAcross("iqs_estimate_requests_total"); v < float64(wantEstimates) {
			fmt.Fprintf(stderr, "metricscheck: iqs_estimate_requests_total %v < %d driven estimates\n", v, wantEstimates)
			bad++
		}
		if v := exp.SumAcross("iqs_estimate_qerror_count"); v <= 0 {
			fmt.Fprintln(stderr, "metricscheck: q-error histogram observed nothing after driving scored counts")
			bad++
		}
		// Every scored q-error sat inside its certified bound client-side;
		// the server-side monitor must agree.
		if v := exp.SumAcross("iqs_estimate_qerror_bound_exceeded_total"); v > 0 {
			fmt.Fprintf(stderr, "metricscheck: %v q-error bound violations recorded\n", v)
			bad++
		}
	}
	// /stats mallocs are process-wide and deliberately excluded from the
	// exposition; their presence would mean the caveat regressed.
	for name := range exp.Types {
		if strings.Contains(name, "malloc") {
			fmt.Fprintf(stderr, "metricscheck: malloc-derived series %q must not be exported\n", name)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	fmt.Fprintf(stdout, "metricscheck: ok (%d series families, %d samples driven)\n", len(exp.Types), wantSamples)
	return 0
}

// warmPool repeats one WR window until the pool records full hits, then
// runs a bonus round so the scraped hit rate reflects steady-state hot
// traffic rather than the cold entry's registration misses. It must run
// before any write: a mutable base boots pure, the pool serves only
// while it stays pure, and the first /insert gates the pooled path off.
// One request per round negotiates the binary framing so the
// format="binary" leg of iqs_wire_encoding_total is live too.
func warmPool(client *http.Client, baseURL string, stderr io.Writer) int {
	const hotWindow = "/sample?lo=100&hi=300&k=4"
	const perRound = 25
	hot := func(binary bool) int {
		req, err := http.NewRequest(http.MethodGet, baseURL+hotWindow, nil)
		if err != nil {
			fmt.Fprintf(stderr, "metricscheck: warm request: %v\n", err)
			return 1
		}
		if binary {
			req.Header.Set("Accept", binContentType)
		}
		resp, err := client.Do(req)
		if err != nil {
			fmt.Fprintf(stderr, "metricscheck: warm %s: %v\n", hotWindow, err)
			return 1
		}
		drain(resp)
		return 0
	}
	warmed := false
	for round := 0; round < 20 && !warmed; round++ {
		for i := 0; i < perRound; i++ {
			if code := hot(i == 0); code != 0 {
				return code
			}
		}
		exp, err := scrape(client, baseURL)
		if err != nil {
			fmt.Fprintf(stderr, "metricscheck: %v\n", err)
			return 1
		}
		warmed = exp.SumAcross("iqs_pool_hits_total") > 0
	}
	if !warmed {
		fmt.Fprintln(stderr, "metricscheck: pool recorded no full hits after the hot-window warm phase")
		return 1
	}
	for i := 0; i < perRound; i++ {
		if code := hot(false); code != 0 {
			return code
		}
	}
	return 0
}

// driveBulkInvalidation posts a /bulkload — which kicks an immediate
// ingest rebuild — and polls the exposition until the rebuild's pool
// rebind bumps iqs_pool_invalidations_total. The create-time bind does
// not count, so a positive value proves the retire-on-rebuild hook ran.
func driveBulkInvalidation(client *http.Client, baseURL string, stderr io.Writer) int {
	var sb strings.Builder
	sb.WriteString(`{"values":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%g", 2e9+float64(i))
	}
	sb.WriteString(`]}`)
	resp, err := client.Post(baseURL+"/bulkload", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		fmt.Fprintf(stderr, "metricscheck: drive /bulkload: %v\n", err)
		return 1
	}
	status := resp.StatusCode
	drain(resp)
	if status != http.StatusOK {
		fmt.Fprintf(stderr, "metricscheck: /bulkload status %d\n", status)
		return 1
	}
	for i := 0; i < 50; i++ {
		exp, err := scrape(client, baseURL)
		if err != nil {
			fmt.Fprintf(stderr, "metricscheck: %v\n", err)
			return 1
		}
		if exp.SumAcross("iqs_pool_invalidations_total") > 0 {
			return 0
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintln(stderr, "metricscheck: no pool invalidation after a /bulkload-kicked rebuild")
	return 1
}

// driveEstimates issues n /estimate requests cycling through the four
// operators over varied ranges, decoding every JSON response. Each
// response must answer 200 with a finite estimate bracketed by its own
// confidence interval, and a scored q-error (COUNT responses) must sit
// inside its certified bound whenever the bound is finite — the
// client-side twin of the server's bound-violation counter. Returns how
// many estimates were validated.
func driveEstimates(client *http.Client, baseURL string, n int, stderr io.Writer) (int, int) {
	ops := [...]string{"count", "sum", "avg", "distinct"}
	done := 0
	for i := 0; i < n; i++ {
		op := ops[i%len(ops)]
		url := fmt.Sprintf("%s/estimate?op=%s&lo=%d&hi=%d&k=512", baseURL, op, i%50, 200+i%1000)
		resp, err := client.Get(url)
		if err != nil {
			fmt.Fprintf(stderr, "metricscheck: drive /estimate: %v\n", err)
			return done, 1
		}
		var body struct {
			Estimate float64 `json:"estimate"`
			CILo     float64 `json:"ci_lo"`
			CIHi     float64 `json:"ci_hi"`
			QError   float64 `json:"q_error"`
			QBound   float64 `json:"q_bound"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&body)
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(stderr, "metricscheck: /estimate op=%s status %d\n", op, resp.StatusCode)
			return done, 1
		}
		if decErr != nil {
			fmt.Fprintf(stderr, "metricscheck: /estimate op=%s body: %v\n", op, decErr)
			return done, 1
		}
		if body.Estimate < body.CILo || body.Estimate > body.CIHi {
			fmt.Fprintf(stderr, "metricscheck: /estimate op=%s estimate %v outside its interval [%v, %v]\n",
				op, body.Estimate, body.CILo, body.CIHi)
			return done, 1
		}
		if body.QError >= 1 && body.QBound > 1 && body.QError > body.QBound {
			fmt.Fprintf(stderr, "metricscheck: /estimate op=%s q-error %v exceeds bound %v\n",
				op, body.QError, body.QBound)
			return done, 1
		}
		done++
	}
	return done, 0
}

// scrape fetches and strictly parses the /metrics exposition.
func scrape(client *http.Client, baseURL string) (*metrics.Exposition, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("/metrics content type %q, want text/plain", ct)
	}
	exp, err := metrics.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("exposition does not parse: %w", err)
	}
	return exp, nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
