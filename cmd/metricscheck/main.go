// Command metricscheck validates a running iqsserve instance's
// /metrics endpoint: it optionally drives a burst of /sample and
// /batch traffic, scrapes the exposition, checks that it parses as
// Prometheus text format, and asserts a required set of series is
// present with sane values. Exit status is non-zero on any failure,
// which makes it the backbone of `make metrics-smoke` and the CI
// metrics step.
//
//	metricscheck -base http://127.0.0.1:8080 -drive 50
//	metricscheck -base http://127.0.0.1:8080 -require iqs_server_served_total,iqs_sample_quality_ratio
//	metricscheck -base http://127.0.0.1:8080 -drive 50 -mutable
//
// With -mutable the drive phase mixes /insert and /delete writes into
// the traffic and the required set grows by the ingest families
// (iqs_ingest_*, the rebuild histogram, the server write counter),
// with iqs_ingest_applied_total additionally required to be positive.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
)

var defaultRequired = []string{
	"iqs_server_served_total",
	"iqs_server_request_seconds_count",
	"iqs_server_stage_seconds_count",
	"iqs_server_in_flight",
	"iqs_server_queue_depth",
	"iqs_service_requests_total",
	"iqs_service_sample_seconds_count",
	"iqs_shard_fanout_seconds_count",
	"iqs_shard_merge_seconds_count",
	"iqs_sample_quality_ratio",
	// Coalescer series: registered unconditionally, so they must be
	// present (zero is fine when -coalesce is off).
	"iqs_coalesce_batch_size_count",
	"iqs_coalesce_linger_seconds_count",
	"iqs_coalesced_requests_total",
}

// mutableRequired joins defaultRequired when -mutable drives writes:
// the ingest write path must export its delta-log, rebuild, and overlay
// series, and the server must count the writes it answered.
var mutableRequired = []string{
	"iqs_ingest_applied_total",
	"iqs_ingest_rejected_total",
	"iqs_ingest_rebuilds_total",
	"iqs_ingest_rebuild_failures_total",
	"iqs_ingest_rebuild_seconds_count",
	"iqs_ingest_delta_log_depth",
	"iqs_ingest_queue_depth",
	"iqs_ingest_overlay_fraction",
	"iqs_server_writes_total",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("metricscheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		base    = fs.String("base", "http://127.0.0.1:8080", "server base URL; /metrics and /sample are derived from it")
		drive   = fs.Int("drive", 50, "requests to issue before scraping so the series are non-empty; 0 scrapes as-is")
		require = fs.String("require", "", "comma-separated series names that must be present (default: the standard serving-stack set)")
		timeout = fs.Duration("timeout", 10*time.Second, "per-HTTP-request deadline")
		mutable = fs.Bool("mutable", false, "drive /insert and /delete writes too and require the ingest metric families")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	required := defaultRequired
	if *require != "" {
		required = strings.Split(*require, ",")
	} else if *mutable {
		required = append(append([]string(nil), defaultRequired...), mutableRequired...)
	}
	client := &http.Client{Timeout: *timeout}
	baseURL := strings.TrimRight(*base, "/")

	var wantSamples int
	for i := 0; i < *drive; i++ {
		if *mutable && i%4 == 3 {
			// Insert a fresh value, delete every other one right back, so
			// both write endpoints and the delete path see traffic.
			v := 1e9 + float64(i)
			resp, err := client.Post(baseURL+"/insert", "application/json",
				strings.NewReader(fmt.Sprintf(`{"value":%g,"weight":2}`, v)))
			if err != nil {
				fmt.Fprintf(stderr, "metricscheck: drive /insert: %v\n", err)
				return 1
			}
			drain(resp)
			if i%8 == 7 {
				resp, err = client.Post(baseURL+"/delete", "application/json",
					strings.NewReader(fmt.Sprintf(`{"value":%g}`, v)))
				if err != nil {
					fmt.Fprintf(stderr, "metricscheck: drive /delete: %v\n", err)
					return 1
				}
				drain(resp)
			}
			continue
		}
		if i%10 == 9 {
			resp, err := client.Post(baseURL+"/batch", "application/json",
				strings.NewReader(`{"queries":[{"lo":0,"hi":100,"k":4},{"lo":10,"hi":400,"k":8,"wor":true}]}`))
			if err != nil {
				fmt.Fprintf(stderr, "metricscheck: drive /batch: %v\n", err)
				return 1
			}
			drain(resp)
			continue
		}
		url := fmt.Sprintf("%s/sample?lo=%d&hi=%d&k=8", baseURL, i%100, 200+i%800)
		if i%5 == 4 {
			url += "&wor=true"
		}
		resp, err := client.Get(url)
		if err != nil {
			fmt.Fprintf(stderr, "metricscheck: drive /sample: %v\n", err)
			return 1
		}
		if resp.Header.Get("X-Request-ID") == "" {
			drain(resp)
			fmt.Fprintln(stderr, "metricscheck: /sample response missing X-Request-ID")
			return 1
		}
		drain(resp)
		wantSamples++
	}

	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		fmt.Fprintf(stderr, "metricscheck: scrape: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "metricscheck: /metrics status %d\n", resp.StatusCode)
		return 1
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		fmt.Fprintf(stderr, "metricscheck: /metrics content type %q, want text/plain\n", ct)
		return 1
	}
	exp, err := metrics.ParseExposition(resp.Body)
	if err != nil {
		fmt.Fprintf(stderr, "metricscheck: exposition does not parse: %v\n", err)
		return 1
	}

	bad := 0
	for _, name := range required {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if v := exp.SumAcross(name); v == 0 {
			if _, ok := exp.Get(name); !ok {
				fmt.Fprintf(stderr, "metricscheck: required series %q missing\n", name)
				bad++
			}
		}
	}
	if *drive > 0 {
		if v := exp.SumAcross("iqs_server_request_seconds_count"); v < float64(*drive) {
			fmt.Fprintf(stderr, "metricscheck: request histogram count %v < %d driven requests\n", v, *drive)
			bad++
		}
		if v, _ := exp.Get("iqs_server_served_total"); v <= 0 {
			fmt.Fprintln(stderr, "metricscheck: served_total is zero after driving load")
			bad++
		}
	}
	if *mutable && *drive > 0 {
		if v := exp.SumAcross("iqs_ingest_applied_total"); v <= 0 {
			fmt.Fprintln(stderr, "metricscheck: iqs_ingest_applied_total is zero after driving writes")
			bad++
		}
		if v := exp.SumAcross("iqs_server_writes_total"); v <= 0 {
			fmt.Fprintln(stderr, "metricscheck: iqs_server_writes_total is zero after driving writes")
			bad++
		}
	}
	// /stats mallocs are process-wide and deliberately excluded from the
	// exposition; their presence would mean the caveat regressed.
	for name := range exp.Types {
		if strings.Contains(name, "malloc") {
			fmt.Fprintf(stderr, "metricscheck: malloc-derived series %q must not be exported\n", name)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	fmt.Fprintf(stdout, "metricscheck: ok (%d series families, %d samples driven)\n", len(exp.Types), wantSamples)
	return 0
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
