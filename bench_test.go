// bench_test.go exposes every experiment's workload as a testing.B
// benchmark — one benchmark (family) per table in DESIGN.md §2. The
// narrative tables themselves are produced by cmd/iqsbench; these
// benchmarks give ns/op and allocs/op for the same code paths.
package repro_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/alias"
	"repro/internal/bst"
	"repro/internal/coverage"
	"repro/internal/em"
	"repro/internal/emiqs"
	"repro/internal/halfplane"
	"repro/internal/intervaltree"
	"repro/internal/kdtree"
	"repro/internal/permsample"
	"repro/internal/quadtree"
	"repro/internal/rangesample"
	"repro/internal/rangetree"
	"repro/internal/rng"
	"repro/internal/setunion"
	"repro/internal/shard"
	"repro/internal/treesample"
)

func seededData(n int, weighted bool) (values, weights []float64) {
	r := rng.New(1)
	values = make([]float64, n)
	weights = make([]float64, n)
	for i := range values {
		values[i] = r.Float64()
		if weighted {
			weights[i] = r.Float64()*9 + 0.5
		} else {
			weights[i] = 1
		}
	}
	return
}

// --- E1: Theorem 1 ---------------------------------------------------

func BenchmarkE1AliasBuild(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 15, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			_, w := seededData(n, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alias.MustNew(w)
			}
		})
	}
}

func BenchmarkE1AliasSample(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			_, w := seededData(n, true)
			a := alias.MustNew(w)
			r := rng.New(2)
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink = a.Sample(r)
			}
			_ = sink
		})
	}
}

// --- E2/E3/E4/E14: 1-D range sampling --------------------------------

func rangeBench(b *testing.B, s rangesample.Sampler, sCount int) {
	b.Helper()
	r := rng.New(3)
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := r.Float64() * 0.9
		dst, _ = s.Query(r, bst.Interval{Lo: lo, Hi: lo + 0.1}, sCount, dst[:0])
	}
}

func BenchmarkE2TreeWalk(b *testing.B) {
	values, weights := seededData(1<<18, true)
	tw, err := rangesample.NewTreeWalk(values, weights)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) { rangeBench(b, tw, s) })
	}
}

func BenchmarkE3AliasAug(b *testing.B) {
	values, weights := seededData(1<<18, true)
	aa, err := rangesample.NewAliasAug(values, weights)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) { rangeBench(b, aa, s) })
	}
}

func BenchmarkE4Chunked(b *testing.B) {
	values, weights := seededData(1<<18, true)
	ck, err := rangesample.NewChunked(values, weights)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) { rangeBench(b, ck, s) })
	}
}

func BenchmarkE14NaiveVsIQS(b *testing.B) {
	values, weights := seededData(1<<18, true)
	nv, err := rangesample.NewNaive(values, weights)
	if err != nil {
		b.Fatal(err)
	}
	ck, err := rangesample.NewChunked(values, weights)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("naive/sel=10%", func(b *testing.B) { rangeBench(b, nv, 64) })
	b.Run("chunked/sel=10%", func(b *testing.B) { rangeBench(b, ck, 64) })
}

// --- E5: tree sampling -----------------------------------------------

func buildBalancedTree(b *testing.B, leaves int) *treesample.Tree {
	b.Helper()
	bld := treesample.NewBuilder()
	root := bld.AddRoot()
	queue := []treesample.NodeID{root}
	for len(queue) < leaves {
		nd := queue[0]
		queue = queue[1:]
		queue = append(queue, bld.AddChild(nd), bld.AddChild(nd))
	}
	r := rng.New(4)
	for _, leaf := range queue {
		bld.SetLeafWeight(leaf, r.Float64()+0.01)
	}
	tree, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

func BenchmarkE5Euler(b *testing.B) {
	tree := buildBalancedTree(b, 1<<16)
	ws := treesample.NewWalkSampler(tree)
	es := treesample.NewEulerSampler(tree)
	r := rng.New(5)
	b.Run("walk/s=64", func(b *testing.B) {
		var dst []treesample.NodeID
		for i := 0; i < b.N; i++ {
			dst = ws.Query(r, tree.Root(), 64, dst[:0])
		}
	})
	b.Run("euler/s=64", func(b *testing.B) {
		var dst []treesample.NodeID
		for i := 0; i < b.N; i++ {
			dst = es.Query(r, tree.Root(), 64, dst[:0])
		}
	})
}

// --- E6/E7: multi-dimensional ----------------------------------------

func seededPoints(n, d int) ([][]float64, []float64) {
	r := rng.New(6)
	pts := make([][]float64, n)
	w := make([]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
		w[i] = r.Float64() + 0.1
	}
	return pts, w
}

func BenchmarkE6KDTree(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 18} {
		pts, w := seededPoints(n, 2)
		kd, err := kdtree.NewSampler(pts, w)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("kd/n=%d", n), func(b *testing.B) {
			r := rng.New(7)
			q := kdtree.Rect{Min: []float64{0.3, 0.3}, Max: []float64{0.7, 0.7}}
			var dst []int
			for i := 0; i < b.N; i++ {
				dst, _ = kd.Query(r, q, 64, dst[:0])
			}
		})
		qt, err := quadtree.NewSampler(pts, w)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("quad/n=%d", n), func(b *testing.B) {
			r := rng.New(7)
			q := quadtree.Rect{Min: [2]float64{0.3, 0.3}, Max: [2]float64{0.7, 0.7}}
			var dst []int
			for i := 0; i < b.N; i++ {
				dst, _ = qt.Query(r, q, 64, dst[:0])
			}
		})
	}
}

func BenchmarkE7RangeTree(b *testing.B) {
	pts, w := seededPoints(1<<14, 2)
	ly, err := rangetree.NewLayered(pts, w, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{16, 1024} {
		b.Run(fmt.Sprintf("layered/s=%d", s), func(b *testing.B) {
			r := rng.New(8)
			q := rangetree.Rect{Min: []float64{0.3, 0.3}, Max: []float64{0.7, 0.7}}
			var dst []int
			for i := 0; i < b.N; i++ {
				dst, _ = ly.Query(r, q, s, dst[:0])
			}
		})
	}
	for _, mode := range []rangetree.Mode{rangetree.WalkMode, rangetree.AliasMode} {
		rt, err := rangetree.New(pts, w, mode)
		if err != nil {
			b.Fatal(err)
		}
		name := "walk"
		if mode == rangetree.AliasMode {
			name = "alias"
		}
		for _, s := range []int{16, 1024} {
			b.Run(fmt.Sprintf("%s/s=%d", name, s), func(b *testing.B) {
				r := rng.New(8)
				q := rangetree.Rect{Min: []float64{0.3, 0.3}, Max: []float64{0.7, 0.7}}
				var dst []int
				for i := 0; i < b.N; i++ {
					dst, _ = rt.Query(r, q, s, dst[:0])
				}
			})
		}
	}
}

// --- E8: approximate coverage ----------------------------------------

func BenchmarkE8ApproxCover(b *testing.B) {
	const n = 1 << 16
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1
	}
	sp, _, err := coverage.NewComplementSampler(values, weights)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(9)
	q := coverage.Interval{Lo: float64(n / 10), Hi: float64(n * 9 / 10)}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var e error
		dst, _, e = sp.Query(r, q, 16, dst[:0])
		if e != nil {
			b.Fatal(e)
		}
	}
}

// --- E9: set union sampling ------------------------------------------

func BenchmarkE9SetUnion(b *testing.B) {
	r := rng.New(10)
	sets := make([][]int, 64)
	for i := range sets {
		s := make([]int, 2000)
		base := i * 1000
		for j := range s {
			s[j] = (base + r.Intn(4000)) % 100000
		}
		sets[i] = s
	}
	c, err := setunion.New(sets, 11)
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range []int{2, 8, 32} {
		G := make([]int, g)
		for i := range G {
			G[i] = i
		}
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			var dst []int
			for i := 0; i < b.N; i++ {
				var ok bool
				var e error
				dst, ok, e = c.Query(r, G, 1, dst[:0])
				if e != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, e)
				}
			}
		})
	}
}

// --- E10/E11: external memory ----------------------------------------

func BenchmarkE10EMPool(b *testing.B) {
	const n = 1 << 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(12)
	dev, err := em.NewDevice(256, 4096)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := emiqs.NewSetSampler(dev, values, r)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pool/s=256", func(b *testing.B) {
		var dst []float64
		start := dev.IOs()
		for i := 0; i < b.N; i++ {
			dst = pool.Query(r, 256, dst[:0])
		}
		b.ReportMetric(float64(dev.IOs()-start)/float64(b.N), "IOs/op")
	})
	devN, err := em.NewDevice(256, 4096)
	if err != nil {
		b.Fatal(err)
	}
	naive, err := emiqs.NewNaiveSetSampler(devN, values)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("naive/s=256", func(b *testing.B) {
		var dst []float64
		start := devN.IOs()
		for i := 0; i < b.N; i++ {
			dst = naive.Query(r, 256, dst[:0])
		}
		b.ReportMetric(float64(devN.IOs()-start)/float64(b.N), "IOs/op")
	})
}

func BenchmarkE11EMRange(b *testing.B) {
	const n = 1 << 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	r := rng.New(13)
	dev, err := em.NewDevice(256, 4096)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := emiqs.NewRangeSampler(dev, values, r)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pools once.
	rs.Query(r, 1000, 60000, 1024, nil)
	b.ResetTimer()
	var dst []float64
	start := dev.IOs()
	for i := 0; i < b.N; i++ {
		var ok bool
		dst, ok = rs.Query(r, 1000, 60000, 1024, dst[:0])
		if !ok {
			b.Fatal("empty")
		}
	}
	b.ReportMetric(float64(dev.IOs()-start)/float64(b.N), "IOs/op")
}

// --- E12/E13: the dependent baseline ---------------------------------

func BenchmarkE12PermBaseline(b *testing.B) {
	values, _ := seededData(1<<18, false)
	ps, err := permsample.New(values, 14)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(15)
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := r.Float64() * 0.9
		dst, _ = ps.Query(lo, lo+0.1, 64, dst[:0])
	}
}

func BenchmarkE13RepeatedQuery(b *testing.B) {
	values, weights := seededData(1<<18, false)
	ck, err := rangesample.NewChunked(values, weights)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(16)
	q := bst.Interval{Lo: 0.45, Hi: 0.55}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = ck.Query(r, q, 10, dst[:0])
	}
}

// --- A1/A2/A3: ablations ----------------------------------------------

func BenchmarkA1ChunkSize(b *testing.B) {
	values, weights := seededData(1<<18, true)
	for _, cs := range []int{4, 18, 256} {
		ck, err := rangesample.NewChunkedSize(values, weights, cs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("chunk=%d", cs), func(b *testing.B) { rangeBench(b, ck, 64) })
	}
}

func BenchmarkA2CoverSampling(b *testing.B) {
	r := rng.New(17)
	weights := make([]float64, 64)
	for i := range weights {
		weights[i] = r.Float64() + 0.1
	}
	b.Run("alias-build-and-draw", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			a := alias.MustNew(weights)
			for j := 0; j < 64; j++ {
				sink = a.Sample(r)
			}
		}
		_ = sink
	})
}

func BenchmarkA3DynamicAlias(b *testing.B) {
	d := alias.NewDynamic()
	r := rng.New(18)
	for i := 0; i < 1<<16; i++ {
		if err := d.Insert(i, r.Float64()+0.1); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			key := 1<<16 + i
			if err := d.Insert(key, r.Float64()+0.1); err != nil {
				b.Fatal(err)
			}
			if err := d.Delete(key); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sample", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink = d.Sample(r)
		}
		_ = sink
	})
}

// --- E15/E16: additional Theorem 5 instantiations ----------------------

func BenchmarkE15IntervalStab(b *testing.B) {
	r := rng.New(19)
	const n = 1 << 17
	ivs := make([]intervaltree.Interval, n)
	wts := make([]float64, n)
	for i := range ivs {
		l := r.Float64() * 100
		ivs[i] = intervaltree.Interval{L: l, R: l + r.Float64()*10}
		wts[i] = r.Float64() + 0.1
	}
	tree, err := intervaltree.New(ivs, wts)
	if err != nil {
		b.Fatal(err)
	}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = tree.Query(r, 5+r.Float64()*90, 16, dst[:0])
	}
}

func BenchmarkE16Halfplane(b *testing.B) {
	r := rng.New(20)
	const n = 1 << 15
	pts := make([][]float64, n)
	wts := make([]float64, n)
	for i := range pts {
		pts[i] = []float64{r.Float64()*2 - 1, r.Float64()*2 - 1}
		wts[i] = r.Float64() + 0.1
	}
	ix, err := halfplane.New(pts, wts)
	if err != nil {
		b.Fatal(err)
	}
	q := halfplane.Halfplane{A: 1, B: 1, C: -0.8}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _, _ = ix.Query(r, q, 16, dst[:0])
	}
}

// --- S1: sharded coordinator -----------------------------------------

func BenchmarkS1ShardedSample(b *testing.B) {
	const n = 1 << 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	ctx := context.Background()
	for _, k := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			coord, err := shard.New(ctx, "bench", values, nil, shard.Options{Shards: k})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Sample(ctx, r, 0, n/2, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkS1ShardedSampleParallel(b *testing.B) {
	const n = 1 << 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	ctx := context.Background()
	coord, err := shard.New(ctx, "bench", values, nil, shard.Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	var seq atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(100 + seq.Add(1))
		for pb.Next() {
			if _, err := coord.Sample(ctx, r, 0, n/2, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}
