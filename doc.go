// Package repro is a from-scratch Go reproduction of "Algorithmic
// Techniques for Independent Query Sampling" (Yufei Tao, PODS 2022).
//
// Independent query sampling (IQS) returns, for a query predicate q and a
// sample size s, s random elements of the query result S_q — with the
// guarantee that the outputs of all queries ever asked are mutually
// independent. The paper distills the known solutions into four generic
// techniques; this repository implements all of them, every substrate
// they rest on, and an experiment harness reproducing every quantitative
// claim:
//
//	internal/alias        Theorem 1 (Walker's alias method) + dynamization
//	internal/treesample   §3.2 tree sampling, §5 Euler-tour reduction
//	internal/rangesample  §3–4: TreeWalk, AliasAug (Lemma 2), Chunked
//	                      (Theorem 3), Dynamic, Naive baseline
//	internal/coverage     Theorems 5–6, Corollary 7 (generic transforms)
//	internal/kdtree       Theorem 5 on the kd-tree
//	internal/rangetree    Theorem 5 on the range tree
//	internal/quadtree     the Looz–Meyerhenke comparator
//	internal/setunion     Theorem 8 (random permutation technique)
//	internal/fairnn       §2 fair nearest neighbour search
//	internal/em, emiqs    §8 external-memory model and structures
//	internal/core         the unified public API
//	internal/bench        the experiment harness (cmd/iqsbench)
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
