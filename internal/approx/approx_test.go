package approx

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil, 0.1); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([]float64{1}, []float64{1, 2}, 0.1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	for _, eps := range []float64{0, 1, -0.5, 2} {
		if _, err := New([]float64{1}, []float64{1}, eps); err != ErrBadEpsilon {
			t.Fatalf("eps=%v err = %v", eps, err)
		}
	}
	if _, err := New([]float64{1}, []float64{0}, 0.1); err != ErrBadWeight {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([]float64{1}, []float64{math.Inf(1)}, 0.1); err != ErrBadWeight {
		t.Fatalf("err = %v", err)
	}
}

func TestProbabilityRatioWithinEpsilon(t *testing.T) {
	r := rng.New(1)
	f := func(raw []uint16, epsRaw uint8) bool {
		if len(raw) < 2 || len(raw) > 300 {
			return true
		}
		eps := 0.05 + float64(epsRaw%90)/100 // 0.05 .. 0.94
		values := make([]float64, len(raw))
		weights := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(i)
			weights[i] = float64(v%997) + 0.5
		}
		s, err := New(values, weights, eps)
		if err != nil {
			return false
		}
		lo := float64(r.Intn(len(raw)))
		hi := lo + float64(r.Intn(len(raw)))
		ratio := s.MaxProbabilityRatio(lo, hi)
		// Quantisation keeps per-element mass within (1±ε) of exact;
		// normalising by the quantised total can widen this to (1+ε)².
		return ratio <= (1+eps)*(1+eps)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformWeightsAreExact(t *testing.T) {
	// All-equal weights collapse to one class: sampling is exactly
	// uniform regardless of ε.
	const n = 40
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 3
	}
	s, err := New(values, weights, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClasses() != 1 {
		t.Fatalf("classes = %d, want 1", s.NumClasses())
	}
	if ratio := s.MaxProbabilityRatio(0, n-1); ratio > 1+1e-12 {
		t.Fatalf("ratio = %v, want 1 up to float rounding", ratio)
	}
	r := rng.New(2)
	const draws = 100000
	counts := make([]int, n)
	out, ok := s.Query(r, 5, 34, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, pos := range out {
		if pos < 5 || pos > 34 {
			t.Fatalf("pos %d outside", pos)
		}
		counts[pos]++
	}
	expected := float64(draws) / 30
	for i := 5; i <= 34; i++ {
		if math.Abs(float64(counts[i])-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pos %d count %d", i, counts[i])
		}
	}
}

func TestEmpiricalDistributionNearExact(t *testing.T) {
	// With small ε the empirical distribution must sit close to the
	// exact weighted one.
	const n = 24
	r := rng.New(3)
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = r.Float64()*20 + 0.5
	}
	s, err := New(values, weights, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 400000
	counts := make([]int, n)
	out, ok := s.Query(r, 0, n-1, draws, nil)
	if !ok {
		t.Fatal("empty")
	}
	for _, pos := range out {
		counts[pos]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, c := range counts {
		exact := weights[i] / total
		got := float64(c) / draws
		// Allow ε-band plus sampling noise.
		if got < exact/1.2-0.01 || got > exact*1.2+0.01 {
			t.Fatalf("pos %d freq %v, exact %v", i, got, exact)
		}
	}
}

func TestEmptyRange(t *testing.T) {
	s, err := New([]float64{1, 2, 3}, []float64{1, 2, 3}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for _, q := range [][2]float64{{-5, 0}, {4, 9}, {2.2, 2.8}} {
		if _, ok := s.Query(r, q[0], q[1], 1, nil); ok {
			t.Fatalf("query %v returned ok", q)
		}
	}
	if got := s.MaxProbabilityRatio(-5, 0); got != 1 {
		t.Fatalf("empty ratio = %v", got)
	}
}

func TestClassCountBounded(t *testing.T) {
	// Weight spread 2^20 with ε=0.5 → L ≤ log_{1.5}(2^20)+1 ≈ 35.
	const n = 1000
	r := rng.New(5)
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = math.Pow(2, 20*r.Float64())
	}
	s, err := New(values, weights, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	maxL := int(20/math.Log2(1.5)) + 2
	if s.NumClasses() > maxL {
		t.Fatalf("classes = %d > %d", s.NumClasses(), maxL)
	}
}

func TestSortsInput(t *testing.T) {
	s, err := New([]float64{3, 1, 2}, []float64{30, 10, 20}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Value(0) != 1 || s.Weight(0) != 10 || s.Value(2) != 3 || s.Weight(2) != 30 {
		t.Fatal("values/weights not sorted together")
	}
}

func BenchmarkApproxQuery(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 18
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = r.Float64()
		weights[i] = r.Float64()*9 + 0.5
	}
	s, err := New(values, weights, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := r.Float64() * 0.9
		dst, _ = s.Query(r, lo, lo+0.1, 64, dst[:0])
	}
}

func TestAccessors(t *testing.T) {
	s, err := New([]float64{1, 2, 3}, []float64{1, 2, 3}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Epsilon() != 0.25 {
		t.Fatalf("Epsilon = %v", s.Epsilon())
	}
}
