// Package approx implements ε-approximate independent query sampling —
// Direction 4 of the paper's concluding remarks:
//
//	"Many estimation tasks can be carried out with approximate sampling,
//	 namely, the sample probability of a possible outcome is allowed to
//	 slightly deviate from its intended value. ... How does the value ε
//	 affect the space and query complexities of IQS?"
//
// The structure here answers 1-D weighted range sampling queries where
// each element e ∈ S_q is returned with probability within a (1±ε)
// factor of w(e)/w(S_q), trading exactness for simplicity and speed:
//
//   - weights are quantised to powers of (1+ε), grouping the elements
//     into L = O(log_{1+ε}(w_max/w_min)) weight classes;
//   - each class keeps its members' sorted positions, so the number of
//     class members inside any query range — and a uniform such member —
//     follow from two binary searches and one random offset;
//   - a query computes the L class counts (O(L·log n)), builds a
//     Theorem 1 alias over the quantised class masses (O(L)), and then
//     draws each sample in O(1).
//
// Space O(n + L); query O(L·log n + s). For constant ε the class count L
// is O(log(w_max/w_min)), so the query is O(log(w_max/w_min)·log n + s)
// — independent of how the weights are distributed, and with a per-sample
// constant several times smaller than the exact structures (no alias
// trees, no chunk machinery). Cross-query independence is exact; only
// the per-element probabilities are approximate.
package approx

import (
	"errors"
	"math"
	"sort"

	"repro/internal/alias"
	"repro/internal/rng"
)

// ErrEmpty is returned when building over no elements.
var ErrEmpty = errors.New("approx: empty input")

// ErrBadEpsilon is returned for ε outside (0, 1).
var ErrBadEpsilon = errors.New("approx: epsilon must be in (0, 1)")

// ErrBadWeight is returned for non-positive or non-finite weights.
var ErrBadWeight = errors.New("approx: weights must be positive and finite")

// Sampler answers ε-approximate weighted range sampling queries.
type Sampler struct {
	eps    float64
	values []float64 // sorted
	// classOf[i] is the weight class of sorted position i.
	classOf []int32
	// classes[c] holds the sorted positions of class-c members.
	classes [][]int32
	// classMass[c] is the quantised per-member weight of class c.
	classMass []float64
	trueW     []float64 // exact weights (for diagnostics/tests)
}

// New builds the sampler over values and weights with approximation
// parameter eps ∈ (0, 1).
func New(values, weights []float64, eps float64) (*Sampler, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(weights) != n {
		return nil, errors.New("approx: values and weights length mismatch")
	}
	if !(eps > 0 && eps < 1) {
		return nil, ErrBadEpsilon
	}
	for _, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, ErrBadWeight
		}
	}
	s := &Sampler{
		eps:    eps,
		values: append([]float64(nil), values...),
		trueW:  append([]float64(nil), weights...),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	for i, j := range idx {
		s.values[i] = values[j]
		s.trueW[i] = weights[j]
	}
	// Quantise: class c holds weights in [(1+ε)^c·w_min, (1+ε)^{c+1}·w_min).
	wMin := s.trueW[0]
	for _, w := range s.trueW {
		if w < wMin {
			wMin = w
		}
	}
	logBase := math.Log1p(eps)
	classIdx := map[int]int{}
	s.classOf = make([]int32, n)
	for i, w := range s.trueW {
		c := int(math.Floor(math.Log(w/wMin) / logBase))
		ci, ok := classIdx[c]
		if !ok {
			ci = len(s.classes)
			classIdx[c] = ci
			s.classes = append(s.classes, nil)
			// Midpoint mass: the representative weight of the class is
			// (1+ε)^{c+1/2}·w_min, within (1±ε/2-ish) of every member.
			s.classMass = append(s.classMass, wMin*math.Exp((float64(c)+0.5)*logBase))
		}
		s.classOf[i] = int32(ci)
		s.classes[ci] = append(s.classes[ci], int32(i))
	}
	// Positions within each class are appended in sorted-value order, so
	// they are already sorted.
	return s, nil
}

// Len returns the number of elements.
func (s *Sampler) Len() int { return len(s.values) }

// NumClasses returns L, the number of weight classes.
func (s *Sampler) NumClasses() int { return len(s.classes) }

// Epsilon returns the approximation parameter.
func (s *Sampler) Epsilon() float64 { return s.eps }

// Value returns the i-th smallest value.
func (s *Sampler) Value(i int) float64 { return s.values[i] }

// Weight returns the exact weight of the i-th smallest value.
func (s *Sampler) Weight(i int) float64 { return s.trueW[i] }

// Query appends k ε-approximate weighted samples from S ∩ [lo, hi] to
// dst as sorted positions. ok is false when the range is empty. Each
// element's sampling probability is within a multiplicative (1±ε) of its
// exact weighted probability; outputs are independent across queries.
func (s *Sampler) Query(r *rng.Source, lo, hi float64, k int, dst []int) ([]int, bool) {
	a := sort.SearchFloat64s(s.values, lo)
	b := sort.Search(len(s.values), func(i int) bool { return s.values[i] > hi }) - 1
	if a > b {
		return dst, false
	}
	// Per-class membership counts within [a, b].
	type classRange struct {
		ci       int
		off, cnt int
	}
	var ranges []classRange
	masses := make([]float64, 0, len(s.classes))
	for ci, members := range s.classes {
		offA := sort.Search(len(members), func(i int) bool { return int(members[i]) >= a })
		offB := sort.Search(len(members), func(i int) bool { return int(members[i]) > b })
		cnt := offB - offA
		if cnt == 0 {
			continue
		}
		ranges = append(ranges, classRange{ci: ci, off: offA, cnt: cnt})
		masses = append(masses, float64(cnt)*s.classMass[ci])
	}
	if len(ranges) == 0 {
		return dst, false
	}
	top := alias.MustNew(masses)
	for i := 0; i < k; i++ {
		cr := ranges[top.Sample(r)]
		pos := s.classes[cr.ci][cr.off+r.Intn(cr.cnt)]
		dst = append(dst, int(pos))
	}
	return dst, true
}

// MaxProbabilityRatio returns, for a query range, the worst-case ratio
// between an element's approximate and exact sampling probabilities
// (diagnostic used by the tests and the A-series ablations). A correct
// build keeps it within [1/(1+ε), 1+ε].
func (s *Sampler) MaxProbabilityRatio(lo, hi float64) float64 {
	a := sort.SearchFloat64s(s.values, lo)
	b := sort.Search(len(s.values), func(i int) bool { return s.values[i] > hi }) - 1
	if a > b {
		return 1
	}
	exactTotal := 0.0
	approxTotal := 0.0
	for i := a; i <= b; i++ {
		exactTotal += s.trueW[i]
		approxTotal += s.classMass[s.classOf[i]]
	}
	worst := 1.0
	for i := a; i <= b; i++ {
		exact := s.trueW[i] / exactTotal
		apx := s.classMass[s.classOf[i]] / approxTotal
		ratio := apx / exact
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > worst {
			worst = ratio
		}
	}
	return worst
}
