// Package estimate turns the repository's independent-sampling
// machinery into approximate analytics: COUNT, SUM and AVG over a value
// range with normal-approximation confidence intervals, and
// distinct-count from mergeable KMV sketches unified with adaptive
// threshold samples over streaming ingest (Ting 2018).
//
// # Count
//
// The serving layer draws m rows uniformly from the full dataset (the
// paper's independent-sample contract makes every draw an independent
// uniform row pick on uniform-weight data) and counts the matches x in
// [lo, hi]. The estimator N̂ = N·x/m is unbiased with Var(N̂) =
// N²·p(1−p)/m; the 1−α interval is N̂ ± z·N·√(p̂(1−p̂)/m). The monitored
// q-error bound follows "Q-error Bounds of Random Uniform Sampling for
// Cardinality Estimation" (PAPERS.md): by Chernoff, with probability
// ≥ 1−δ the multiplicative error of x/m stays within 1±ε for
// ε = √(3·ln(2/δ)/(m·p)), so q = max(N̂/N, N/N̂) ≤ (1+ε)/(1−ε) when
// ε < 1. The serving layer evaluates the bound at p̂ and exports both
// the empirical q-error (exact counts are O(log n) here, so every
// estimate can be scored) and the bound violation count.
//
// # Sum and Avg
//
// Draws from [lo, hi] are weight-proportional (Horvitz–Thompson with
// inclusion probability wᵢ/W(lo,hi) per draw). The HT estimator of the
// weighted range sum Σ wᵢvᵢ is W·mean(draws); AVG is the plain sample
// mean of the draws (the weighted average of v over the range). Both
// get CLT intervals: mean ± z·s/√m scaled by W for SUM. On
// uniform-weight data these are exactly the textbook row-sampling
// estimators.
//
// # Distinct
//
// Each shard maintains a KMV sketch of its base values plus an adaptive
// threshold sample of the values streamed into its ingest overlay since
// the sketch was built. Both are threshold samples in Ting's sense: a
// set of retained hashes strictly below a cut τ, with |S| estimated as
// kept/frac(τ). The union over shards keeps hashes below τ* = min τᵢ —
// a valid threshold sample of the union because each constituent
// retains every hash below its own τ ≥ τ* — so the estimator stays
// unbiased conditioned on the thresholds. When every view is unsaturated
// (τ = 2^64) the union count is exact.
package estimate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sketch"
	"repro/internal/stats"
)

// Op selects the aggregate an estimate answers.
type Op uint8

const (
	OpCount Op = iota
	OpSum
	OpAvg
	OpDistinct
)

// ErrBadOp is returned for an unknown aggregate name.
var ErrBadOp = errors.New("estimate: unknown op (want count, sum, avg or distinct)")

// ParseOp maps the wire spelling to an Op.
func ParseOp(s string) (Op, error) {
	switch strings.ToLower(s) {
	case "count":
		return OpCount, nil
	case "sum":
		return OpSum, nil
	case "avg", "mean":
		return OpAvg, nil
	case "distinct", "ndv":
		return OpDistinct, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrBadOp, s)
}

func (o Op) String() string {
	switch o {
	case OpCount:
		return "count"
	case OpSum:
		return "sum"
	case OpAvg:
		return "avg"
	case OpDistinct:
		return "distinct"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Result is one answered estimate.
type Result struct {
	Op         Op
	Estimate   float64
	CILo, CIHi float64 // confidence interval at Confidence
	Confidence float64 // nominal coverage, e.g. 0.95
	K          int     // sample draws consumed (0 for sketch-served distinct)
	Exact      bool    // the estimate is exact (degenerate or unsaturated cases)
	// QError and QBound are set for OpCount, where the exact answer is
	// cheap enough to score every estimate: QError = max(est/exact,
	// exact/est) and QBound = (1+ε)/(1−ε) at the measured selectivity
	// (+Inf when ε ≥ 1, i.e. the sample cannot certify a bound).
	QError, QBound float64
}

// clampCI orders and floors an interval for nonnegative quantities.
func clampCI(lo, hi float64, nonneg bool) (float64, float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if nonneg && lo < 0 {
		lo = 0
	}
	return lo, hi
}

// Count estimates the rows matching a predicate observed matches times
// in draws uniform row picks, over a population of total rows.
func Count(total, matches, draws int, conf float64) Result {
	res := Result{Op: OpCount, Confidence: conf, K: draws}
	if total <= 0 || draws <= 0 {
		res.Exact = total <= 0 // an empty population really has count 0
		return res
	}
	p := float64(matches) / float64(draws)
	res.Estimate = float64(total) * p
	z := stats.NormalQuantile(1 - (1-conf)/2)
	half := z * float64(total) * math.Sqrt(p*(1-p)/float64(draws))
	res.CILo, res.CIHi = clampCI(res.Estimate-half, res.Estimate+half, true)
	if res.CIHi > float64(total) {
		res.CIHi = float64(total)
	}
	res.QBound = QErrorBound(draws, p, 1-conf)
	return res
}

// Sum estimates Σ wᵢvᵢ over the queried range from weight-proportional
// draws, where rangeWeight = W(lo,hi) is the exact total weight of the
// range (O(log n) from the prefix sums). With no draws over a non-empty
// range the estimate is undefined and the zero-width interval reflects
// only the empty-range case.
func Sum(rangeWeight float64, draws []float64, conf float64) Result {
	res := Result{Op: OpSum, Confidence: conf, K: len(draws)}
	if rangeWeight <= 0 {
		res.Exact = true // empty range: the sum is exactly 0
		return res
	}
	if len(draws) == 0 {
		return res
	}
	sm := stats.Summarize(draws)
	res.Estimate = rangeWeight * sm.Mean
	std := math.Sqrt(sm.Variance)
	z := stats.NormalQuantile(1 - (1-conf)/2)
	half := z * rangeWeight * std / math.Sqrt(float64(len(draws)))
	res.CILo, res.CIHi = clampCI(res.Estimate-half, res.Estimate+half, false)
	// A zero sample variance across >1 draws means the range is (almost
	// surely) constant-valued: the HT estimate is then exact. A single
	// draw carries no variance information and is reported without an
	// interval but not as exact.
	res.Exact = sm.Variance == 0 && len(draws) > 1
	return res
}

// Avg estimates the weighted average of v over the queried range from
// weight-proportional draws: the plain sample mean, with a CLT
// interval.
func Avg(draws []float64, conf float64) Result {
	res := Result{Op: OpAvg, Confidence: conf, K: len(draws)}
	if len(draws) == 0 {
		return res
	}
	sm := stats.Summarize(draws)
	res.Estimate = sm.Mean
	z := stats.NormalQuantile(1 - (1-conf)/2)
	half := z * math.Sqrt(sm.Variance) / math.Sqrt(float64(len(draws)))
	res.CILo, res.CIHi = clampCI(res.Estimate-half, res.Estimate+half, false)
	res.Exact = sm.Variance == 0 && len(draws) > 1
	return res
}

// QError returns max(est/exact, exact/est), the symmetric
// multiplicative error metric of the cardinality-estimation literature.
// Conventions at the boundary: both zero is a perfect 1; exactly one
// zero is +Inf.
func QError(est, exact float64) float64 {
	if est < 0 || exact < 0 || math.IsNaN(est) || math.IsNaN(exact) {
		return math.NaN()
	}
	if est == 0 && exact == 0 {
		return 1
	}
	if est == 0 || exact == 0 {
		return math.Inf(1)
	}
	if est > exact {
		return est / exact
	}
	return exact / est
}

// QErrorBound returns the monitored q-error bound for a uniform sample
// of m rows at (measured) selectivity p: with probability ≥ 1−delta the
// sampled fraction is within (1±ε) of the true one for
// ε = √(3·ln(2/δ)/(m·p)), giving q ≤ (1+ε)/(1−ε). Returns +Inf when
// ε ≥ 1 (the sample is too small to certify anything at this
// selectivity, e.g. zero matches).
func QErrorBound(m int, p, delta float64) float64 {
	if m <= 0 || p <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	eps := math.Sqrt(3 * math.Log(2/delta) / (float64(m) * p))
	if eps >= 1 {
		return math.Inf(1)
	}
	return (1 + eps) / (1 - eps)
}

// View is a threshold sample of a value set: the distinct hashes
// strictly below the exclusive cut Tau, under the shared dataset
// hasher. AllKept marks an exhaustive view (conceptually τ = 2^64:
// every hash of the set is present, so counts through it are exact).
type View struct {
	Hashes  []uint64
	Tau     uint64
	AllKept bool
}

// KMVView adapts a KMV sketch to a threshold view: a saturated sketch
// retains the k−1 hashes strictly below its k-th minimum (the cut), an
// unsaturated one has seen every hash.
func KMVView(s *sketch.KMV) View {
	if s == nil {
		return View{AllKept: true}
	}
	h := s.Hashes()
	if !s.Saturated() {
		return View{Hashes: h, AllKept: true}
	}
	return View{Hashes: h[:len(h)-1], Tau: h[len(h)-1]}
}

// UnionDistinct estimates the distinct count of the union of the sets
// behind the views. All views must come from the same hasher. The union
// keeps each view's hashes below the smallest cut τ* — a threshold
// sample of the union — and estimates kept/frac(τ*); when every view is
// exhaustive the deduplicated count is exact. The interval uses the KMV
// deviation analysis: conditioned on τ*, kept is a sum of independent
// indicators with relative deviation ~1/√kept, so the 1−α interval is
// est/(1+zε) .. est/(1−zε) with ε = 1/√kept.
func UnionDistinct(conf float64, views ...View) Result {
	res := Result{Op: OpDistinct, Confidence: conf}
	tau := uint64(math.MaxUint64)
	exact := true
	total := 0
	for _, v := range views {
		if !v.AllKept && v.Tau < tau {
			tau = v.Tau
			exact = false
		}
		total += len(v.Hashes)
	}
	merged := make([]uint64, 0, total)
	for _, v := range views {
		for _, h := range v.Hashes {
			if exact || h < tau {
				merged = append(merged, h)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	kept := 0
	for i, h := range merged {
		if i == 0 || merged[i-1] != h {
			kept++
		}
	}
	if exact {
		res.Estimate = float64(kept)
		res.CILo, res.CIHi = res.Estimate, res.Estimate
		res.Exact = true
		return res
	}
	res.Estimate = sketch.DistinctGivenKth(kept, tau)
	if kept == 0 {
		// Nothing below the cut: the estimator degenerates; report 0
		// with an uninformative interval capped by what τ* can hide.
		res.CILo, res.CIHi = 0, sketch.DistinctGivenKth(1, tau)
		return res
	}
	z := stats.NormalQuantile(1 - (1-conf)/2)
	eps := z / math.Sqrt(float64(kept))
	lo := res.Estimate / (1 + eps)
	hi := math.Inf(1)
	if eps < 1 {
		hi = res.Estimate / (1 - eps)
	}
	res.CILo, res.CIHi = clampCI(lo, hi, true)
	return res
}
