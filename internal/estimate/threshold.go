package estimate

import "repro/internal/sketch"

// Threshold is an adaptive threshold sampler over a stream of hashed
// values (Ting, "Adaptive threshold sampling and unbiased estimation",
// 2018). It retains every distinct hash strictly below a cut τ that
// adapts to the stream: τ starts at 2^64 (everything kept, counts
// exact) and, once more than capacity distinct hashes have been
// retained, tightens to the (capacity+1)-th smallest hash seen. That is
// precisely a bottom-(capacity+1) sketch — bottom-k is the canonical
// adaptive threshold sample — so the retained set is a valid threshold
// sample at every prefix of the stream, and estimates conditioned on τ
// are unbiased regardless of the (data-dependent) times at which τ
// tightened. The serving layer runs one per mutable dataset to absorb
// ingest-overlay inserts that post-date the base KMV sketch; its View
// unions with KMV views through the shared min-τ rule.
//
// Threshold is not synchronised; callers serialise access (the service
// layer owns one behind its estimator mutex).
type Threshold struct {
	s       *sketch.KMV
	offered int
}

// NewThreshold returns a sampler retaining at most capacity hashes
// below its adaptive cut (capacity < 1 falls back to 256).
func NewThreshold(capacity int) *Threshold {
	if capacity < 1 {
		capacity = 256
	}
	s, _ := sketch.NewKMV(capacity + 1) // capacity+1 ≥ 2: NewKMV cannot fail
	return &Threshold{s: s}
}

// AddHash offers one hashed value to the sampler.
func (t *Threshold) AddHash(h uint64) {
	t.offered++
	t.s.Add(h)
}

// Offered returns how many hashes have been offered (diagnostics).
func (t *Threshold) Offered() int { return t.offered }

// View returns the current threshold sample. The hash slice aliases the
// sampler's store and is only valid until the next AddHash.
func (t *Threshold) View() View {
	return KMVView(t.s)
}
