package estimate

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sketch"
)

func TestParseOp(t *testing.T) {
	for s, want := range map[string]Op{
		"count": OpCount, "sum": OpSum, "avg": OpAvg, "mean": OpAvg,
		"distinct": OpDistinct, "ndv": OpDistinct, "COUNT": OpCount,
	} {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("median"); err == nil {
		t.Error("ParseOp(median) succeeded, want error")
	}
	for _, op := range []Op{OpCount, OpSum, OpAvg, OpDistinct} {
		back, err := ParseOp(op.String())
		if err != nil || back != op {
			t.Errorf("round trip %v failed: %v, %v", op, back, err)
		}
	}
}

func TestCountEstimator(t *testing.T) {
	res := Count(10000, 300, 1000, 0.95)
	if res.Op != OpCount || res.K != 1000 {
		t.Fatalf("bad metadata: %+v", res)
	}
	if res.Estimate != 3000 {
		t.Fatalf("estimate = %v, want 3000", res.Estimate)
	}
	if res.CILo >= res.Estimate || res.CIHi <= res.Estimate {
		t.Fatalf("interval [%v, %v] does not bracket %v", res.CILo, res.CIHi, res.Estimate)
	}
	// Known binomial half-width: z·N·sqrt(p(1-p)/m) ≈ 1.96·10000·0.01449 ≈ 284.
	if half := res.CIHi - res.Estimate; half < 250 || half > 320 {
		t.Fatalf("half-width %v outside the binomial expectation", half)
	}
	if res.QBound <= 1 || math.IsInf(res.QBound, 1) {
		t.Fatalf("q-bound %v not a finite bound > 1", res.QBound)
	}

	// Degenerate cases.
	if r := Count(0, 0, 100, 0.95); !r.Exact || r.Estimate != 0 {
		t.Fatalf("empty population: %+v", r)
	}
	if r := Count(100, 0, 50, 0.95); r.Estimate != 0 || r.CILo != 0 {
		t.Fatalf("zero matches: %+v", r)
	}
	if r := Count(100, 50, 50, 0.95); r.CIHi > 100 {
		t.Fatalf("interval exceeds the population: %+v", r)
	}
}

// TestCountCoverageAndQBound simulates the serving setup on fixed
// seeds: uniform row draws, N=20000, selectivity 0.2. The nominal 95%
// intervals must cover the truth ≥ 90% of the time (the soak gate), and
// the q-error bound at 95% must hold with at most ~3x the nominal 5%
// violation rate on these seeds.
func TestCountCoverageAndQBound(t *testing.T) {
	const (
		n      = 20000
		p      = 0.2
		m      = 800
		trials = 400
	)
	exact := float64(n) * p
	r := rng.New(99)
	covered, qViolations := 0, 0
	for trial := 0; trial < trials; trial++ {
		matches := 0
		for i := 0; i < m; i++ {
			if r.Float64() < p {
				matches++
			}
		}
		res := Count(n, matches, m, 0.95)
		if res.CILo <= exact && exact <= res.CIHi {
			covered++
		}
		if q := QError(res.Estimate, exact); !math.IsInf(res.QBound, 1) && q > res.QBound {
			qViolations++
		}
	}
	if cov := float64(covered) / trials; cov < 0.90 {
		t.Fatalf("empirical coverage %.3f < 0.90", cov)
	}
	if frac := float64(qViolations) / trials; frac > 0.15 {
		t.Fatalf("q-bound violated in %.3f of trials", frac)
	}
}

func TestSumAvgEstimators(t *testing.T) {
	// Constant draws: exact, zero-width interval.
	draws := []float64{5, 5, 5, 5}
	if r := Sum(40, draws, 0.95); !r.Exact || r.Estimate != 200 || r.CILo != 200 || r.CIHi != 200 {
		t.Fatalf("constant sum: %+v", r)
	}
	if r := Avg(draws, 0.95); !r.Exact || r.Estimate != 5 {
		t.Fatalf("constant avg: %+v", r)
	}
	// Empty range.
	if r := Sum(0, nil, 0.95); !r.Exact || r.Estimate != 0 {
		t.Fatalf("empty-range sum: %+v", r)
	}
	// Varied draws bracket the estimate.
	draws = []float64{1, 3, 5, 7, 9, 11}
	r := Sum(60, draws, 0.95)
	if r.Estimate != 360 {
		t.Fatalf("sum = %v, want 60·mean=360", r.Estimate)
	}
	if r.Exact || r.CILo >= r.Estimate || r.CIHi <= r.Estimate {
		t.Fatalf("varied sum interval: %+v", r)
	}
	a := Avg(draws, 0.95)
	if a.Estimate != 6 || a.CILo >= 6 || a.CIHi <= 6 {
		t.Fatalf("varied avg: %+v", a)
	}
	// Monte Carlo: HT sum from uniform draws over known values.
	src := rng.New(3)
	values := make([]float64, 1000)
	var total float64
	for i := range values {
		values[i] = src.Float64() * 10
		total += values[i]
	}
	var mc []float64
	for i := 0; i < 2000; i++ {
		mc = append(mc, values[src.Intn(len(values))])
	}
	est := Sum(float64(len(values)), mc, 0.99)
	if est.CILo > total || total > est.CIHi {
		t.Fatalf("MC sum interval [%v, %v] misses the truth %v", est.CILo, est.CIHi, total)
	}
}

func TestQError(t *testing.T) {
	for _, tc := range []struct{ est, exact, want float64 }{
		{100, 100, 1},
		{200, 100, 2},
		{100, 200, 2},
		{0, 0, 1},
	} {
		if got := QError(tc.est, tc.exact); got != tc.want {
			t.Errorf("QError(%v, %v) = %v, want %v", tc.est, tc.exact, got, tc.want)
		}
	}
	if !math.IsInf(QError(0, 5), 1) || !math.IsInf(QError(5, 0), 1) {
		t.Error("one-sided zero must be +Inf")
	}
	if !math.IsNaN(QError(-1, 5)) {
		t.Error("negative input must be NaN")
	}
}

func TestQErrorBound(t *testing.T) {
	b1 := QErrorBound(1000, 0.3, 0.05)
	if b1 <= 1 {
		t.Fatalf("bound %v must exceed 1", b1)
	}
	// More draws tighten, lower selectivity loosens.
	if b2 := QErrorBound(4000, 0.3, 0.05); b2 >= b1 {
		t.Fatalf("bound did not tighten with draws: %v -> %v", b1, b2)
	}
	if b3 := QErrorBound(1000, 0.05, 0.05); b3 <= b1 {
		t.Fatalf("bound did not loosen with selectivity: %v -> %v", b1, b3)
	}
	if !math.IsInf(QErrorBound(10, 0.001, 0.05), 1) {
		t.Error("uncertifiable sample must report +Inf")
	}
	if !math.IsInf(QErrorBound(0, 0.5, 0.05), 1) || !math.IsInf(QErrorBound(100, 0, 0.05), 1) {
		t.Error("degenerate inputs must report +Inf")
	}
}

func TestUnionDistinctExactWhenUnsaturated(t *testing.T) {
	h := sketch.NewHasher(7)
	a, _ := sketch.NewKMV(64)
	b, _ := sketch.NewKMV(64)
	for i := 0; i < 30; i++ {
		a.Add(h.Hash(i))
	}
	for i := 20; i < 50; i++ {
		b.Add(h.Hash(i))
	}
	res := UnionDistinct(0.95, KMVView(a), KMVView(b))
	if !res.Exact || res.Estimate != 50 || res.CILo != 50 || res.CIHi != 50 {
		t.Fatalf("unsaturated union: %+v, want exact 50", res)
	}
}

func TestUnionDistinctApproximatesUnion(t *testing.T) {
	h := sketch.NewHasher(11)
	const k = 512
	a, _ := sketch.NewKMV(k)
	b, _ := sketch.NewKMV(k)
	// Overlapping sets: 0..39999 and 20000..59999 — union 60000.
	for i := 0; i < 40000; i++ {
		a.Add(h.Hash(i))
	}
	for i := 20000; i < 60000; i++ {
		b.Add(h.Hash(i))
	}
	res := UnionDistinct(0.99, KMVView(a), KMVView(b))
	if res.Exact {
		t.Fatal("saturated union reported exact")
	}
	if rel := math.Abs(res.Estimate-60000) / 60000; rel > 0.15 {
		t.Fatalf("union estimate %v off by %.3f relative", res.Estimate, rel)
	}
	if res.CILo > 60000 || 60000 > res.CIHi {
		t.Fatalf("99%% interval [%v, %v] misses 60000", res.CILo, res.CIHi)
	}
	// The same rule must agree with sketch-level Merge on these inputs.
	m := a.Clone()
	if err := m.Merge(b); err != nil {
		t.Fatal(err)
	}
	viaMerge := UnionDistinct(0.99, KMVView(m))
	if rel := math.Abs(res.Estimate-viaMerge.Estimate) / viaMerge.Estimate; rel > 0.10 {
		t.Fatalf("min-τ union %v vs Merge union %v disagree by %.3f", res.Estimate, viaMerge.Estimate, rel)
	}
}

func TestThresholdAdaptiveSampler(t *testing.T) {
	h := sketch.NewHasher(13)
	th := NewThreshold(128)
	// Below capacity: exhaustive view, exact counting.
	for i := 0; i < 100; i++ {
		th.AddHash(h.Hash(i))
	}
	v := th.View()
	if !v.AllKept || len(v.Hashes) != 100 {
		t.Fatalf("below-capacity view: AllKept=%v len=%d", v.AllKept, len(v.Hashes))
	}
	if res := UnionDistinct(0.95, v); !res.Exact || res.Estimate != 100 {
		t.Fatalf("exact regime: %+v", res)
	}
	// Past capacity the threshold adapts and estimates stay calibrated.
	for i := 100; i < 50000; i++ {
		th.AddHash(h.Hash(i))
	}
	if th.Offered() != 50000 {
		t.Fatalf("offered = %d", th.Offered())
	}
	v = th.View()
	if v.AllKept || len(v.Hashes) != 128 {
		t.Fatalf("adaptive view: AllKept=%v len=%d, want 128 kept", v.AllKept, len(v.Hashes))
	}
	res := UnionDistinct(0.99, v)
	if rel := math.Abs(res.Estimate-50000) / 50000; rel > 0.30 {
		t.Fatalf("threshold estimate %v off by %.3f relative at capacity 128", res.Estimate, rel)
	}
	// Unioning the stream sample with a base KMV over a disjoint set
	// approximates the combined distinct count — the overlay+base shape
	// the service runs.
	base, _ := sketch.NewKMV(512)
	for i := 100000; i < 140000; i++ {
		base.Add(h.Hash(i))
	}
	u := UnionDistinct(0.99, KMVView(base), th.View())
	if rel := math.Abs(u.Estimate-90000) / 90000; rel > 0.30 {
		t.Fatalf("base+stream union %v off by %.3f relative", u.Estimate, rel)
	}
	if u.CILo > 90000 || 90000 > u.CIHi {
		t.Fatalf("base+stream interval [%v, %v] misses 90000", u.CILo, u.CIHi)
	}
}

func TestUnionDistinctEmptyViews(t *testing.T) {
	res := UnionDistinct(0.95)
	if !res.Exact || res.Estimate != 0 {
		t.Fatalf("no views: %+v", res)
	}
	res = UnionDistinct(0.95, View{AllKept: true})
	if !res.Exact || res.Estimate != 0 {
		t.Fatalf("empty exhaustive view: %+v", res)
	}
}
