package ingest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/race"
	"repro/internal/rng"
	"repro/internal/scratch"
	"repro/internal/stats"
)

// plainBuild is the test build path: a chunked structure, no mirror.
func plainBuild(_ context.Context, values, weights []float64) (*core.RangeSampler, error) {
	return core.NewRangeSampler(core.KindChunked, values, weights)
}

// newTestTable builds a table over values 0..n-1 with the given
// weights (nil = uniform).
func newTestTable(t *testing.T, n int, weights []float64, cfg Config) *Table {
	t.Helper()
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	base, err := core.NewRangeSampler(core.KindChunked, values, weights)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	if cfg.Build == nil {
		cfg.Build = plainBuild
	}
	tbl, err := New(base, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(tbl.Close)
	return tbl
}

// liveModel mirrors the table's expected live multiset for the
// deterministic checks.
func liveModel(tbl *Table) map[float64]float64 {
	vals, ws := tbl.LiveData()
	m := make(map[float64]float64, len(vals))
	for i, v := range vals {
		m[v] += ws[i]
	}
	return m
}

func TestInsertVisibleImmediately(t *testing.T) {
	tbl := newTestTable(t, 16, nil, Config{Seed: 1})
	ctx := context.Background()
	if err := tbl.Insert(ctx, 7.5, 100); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if got := tbl.Len(); got != 17 {
		t.Fatalf("Len = %d, want 17", got)
	}
	if got := tbl.Count(7.5, 7.5); got != 1 {
		t.Fatalf("Count(7.5) = %d, want 1", got)
	}
	if got := tbl.RangeWeight(7.2, 7.8); got != 100 {
		t.Fatalf("RangeWeight = %v, want 100", got)
	}
	// Weight 100 vs neighbours' 1: a handful of draws in [7, 8] must
	// surface the new element.
	r := rng.New(2)
	sc := scratch.Get()
	defer scratch.Put(sc)
	out, ok := tbl.SampleInto(r, 7, 8, 64, nil, sc)
	if !ok {
		t.Fatal("SampleInto: empty range")
	}
	seen := false
	for _, v := range out {
		if v == 7.5 {
			seen = true
		}
		if v != 7 && v != 7.5 && v != 8 {
			t.Fatalf("sample %v outside [7, 8] support", v)
		}
	}
	if !seen {
		t.Fatal("inserted element (weight 100:1) never sampled in 64 draws")
	}
}

func TestDeleteMasksImmediately(t *testing.T) {
	tbl := newTestTable(t, 16, nil, Config{Seed: 3})
	ctx := context.Background()
	if err := tbl.Delete(ctx, 5); err != nil {
		t.Fatalf("delete base: %v", err)
	}
	if err := tbl.Insert(ctx, 5.5, 1); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := tbl.Delete(ctx, 5.5); err != nil {
		t.Fatalf("delete overlay: %v", err)
	}
	if err := tbl.Delete(ctx, 99); !errors.Is(err, ErrValueNotFound) {
		t.Fatalf("delete absent: %v, want ErrValueNotFound", err)
	}
	if got := tbl.Len(); got != 15 {
		t.Fatalf("Len = %d, want 15", got)
	}
	r := rng.New(4)
	sc := scratch.Get()
	defer scratch.Put(sc)
	out, ok := tbl.SampleInto(r, 0, 15, 2048, nil, sc)
	if !ok {
		t.Fatal("empty range")
	}
	for _, v := range out {
		if v == 5 || v == 5.5 {
			t.Fatalf("deleted value %v sampled", v)
		}
	}
	// WoR of the full live set must be exactly the live set.
	got, err := tbl.SampleWoRInto(rng.New(5), 0, 15, 15, nil, sc)
	if err != nil {
		t.Fatalf("wor: %v", err)
	}
	sort.Float64s(got)
	for i, v := range got {
		want := float64(i)
		if i >= 5 {
			want++
		}
		if v != want {
			t.Fatalf("wor[%d] = %v, want %v", i, v, want)
		}
	}
	if _, err := tbl.SampleWoRInto(rng.New(6), 0, 15, 16, nil, sc); !errors.Is(err, core.ErrSampleTooLarge) {
		t.Fatalf("oversized wor: %v, want ErrSampleTooLarge", err)
	}
}

func TestLastElementUndeletable(t *testing.T) {
	tbl := newTestTable(t, 2, nil, Config{Seed: 7})
	ctx := context.Background()
	if err := tbl.Delete(ctx, 0); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	if err := tbl.Delete(ctx, 1); !errors.Is(err, ErrLastElement) {
		t.Fatalf("last delete: %v, want ErrLastElement", err)
	}
}

func TestRebuildFoldsLog(t *testing.T) {
	tbl := newTestTable(t, 32, nil, Config{Seed: 11, RebuildThreshold: 8})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := tbl.Insert(ctx, float64(i)+0.5, 2); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := tbl.Delete(ctx, float64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	before := liveModel(tbl)
	if err := tbl.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	st := tbl.Stats()
	if st.LogDepth != 0 || st.OverlayLen != 0 || st.Tombstones != 0 {
		t.Fatalf("post-flush stats: %+v", st)
	}
	if st.Rebuilds == 0 {
		t.Fatal("no rebuilds recorded")
	}
	if !tbl.pure.Load() {
		t.Fatal("table not pure after flush")
	}
	after := liveModel(tbl)
	if len(before) != len(after) {
		t.Fatalf("live set changed across rebuild: %d vs %d", len(before), len(after))
	}
	for v, w := range before {
		if after[v] != w {
			t.Fatalf("value %v weight %v → %v across rebuild", v, w, after[v])
		}
	}
	if st.Len != 32+20-6 {
		t.Fatalf("Len = %d, want 46", st.Len)
	}
}

func TestBulkLoad(t *testing.T) {
	tbl := newTestTable(t, 8, nil, Config{Seed: 13})
	ctx := context.Background()
	vals := []float64{100, 101, 102, 103}
	if err := tbl.BulkLoad(ctx, vals, nil); err != nil {
		t.Fatalf("bulkload: %v", err)
	}
	if got := tbl.Count(100, 103); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if err := tbl.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := tbl.Len(); got != 12 {
		t.Fatalf("Len = %d, want 12", got)
	}
}

func TestBackpressure(t *testing.T) {
	// A build that blocks until released keeps the delta log deep.
	release := make(chan struct{})
	blockingBuild := func(ctx context.Context, values, weights []float64) (*core.RangeSampler, error) {
		<-release
		return plainBuild(ctx, values, weights)
	}
	tbl := newTestTable(t, 8, nil, Config{
		Seed: 17, RebuildThreshold: 2, MaxLag: 4, Build: blockingBuild,
	})
	defer close(release)
	ctx := context.Background()
	var backpressured bool
	for i := 0; i < 64; i++ {
		err := tbl.Insert(ctx, float64(i)+0.25, 1)
		if errors.Is(err, ErrBackpressure) {
			backpressured = true
			break
		}
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if !backpressured {
		t.Fatal("no backpressure despite a wedged rebuilder and MaxLag 4")
	}
	if tbl.Stats().Shed == 0 {
		t.Fatal("shed counter not incremented")
	}
}

// TestWRExactDistribution gates the with-replacement union sampler
// against exact per-element probabilities in a fixed mutated state
// covering all three regimes at once: live base elements, tombstoned
// base elements, and overlay elements.
func TestWRExactDistribution(t *testing.T) {
	weights := make([]float64, 16)
	for i := range weights {
		weights[i] = float64(1 + i%4)
	}
	tbl := newTestTable(t, 16, weights, Config{Seed: 19})
	ctx := context.Background()
	// Tombstone two base elements inside the query range, insert three
	// overlay elements (one duplicated value).
	for _, v := range []float64{4, 9} {
		if err := tbl.Delete(ctx, v); err != nil {
			t.Fatalf("delete %v: %v", v, err)
		}
	}
	for _, ins := range [][2]float64{{4.5, 3}, {4.5, 2}, {10.25, 5}} {
		if err := tbl.Insert(ctx, ins[0], ins[1]); err != nil {
			t.Fatalf("insert %v: %v", ins[0], err)
		}
	}
	lo, hi := 2.0, 12.0
	vals, ws := tbl.LiveData()
	type cell struct {
		v float64
		w float64
	}
	var cells []cell
	idx := make(map[float64]int)
	totalW := 0.0
	for i, v := range vals {
		if v < lo || v > hi {
			continue
		}
		totalW += ws[i]
		if j, ok := idx[v]; ok {
			cells[j].w += ws[i]
			continue
		}
		idx[v] = len(cells)
		cells = append(cells, cell{v: v, w: ws[i]})
	}
	if got := tbl.RangeWeight(lo, hi); math.Abs(got-totalW) > 1e-9 {
		t.Fatalf("RangeWeight = %v, want %v", got, totalW)
	}

	r := rng.New(23)
	sc := scratch.Get()
	defer scratch.Put(sc)
	const draws = 40000
	counts := make([]int, len(cells))
	buf := make([]float64, 0, 64)
	for rem := draws; rem > 0; {
		k := 64
		if rem < k {
			k = rem
		}
		buf = buf[:0]
		out, ok := tbl.SampleInto(r, lo, hi, k, buf, sc)
		if !ok {
			t.Fatal("empty range")
		}
		for _, v := range out {
			j, ok := idx[v]
			if !ok {
				t.Fatalf("sampled %v outside live support", v)
			}
			counts[j]++
		}
		rem -= k
	}
	exp := make([]float64, len(cells))
	for j, c := range cells {
		exp[j] = float64(draws) * c.w / totalW
	}
	stat, err := stats.ChiSquare(counts, exp)
	if err != nil {
		t.Fatalf("chi2: %v", err)
	}
	crit := stats.ChiSquareCritical(len(cells)-1, 1e-6)
	if stat > crit {
		t.Fatalf("WR distribution off: chi2 %.2f > critical %.2f", stat, crit)
	}
}

// TestWoRUniformMarginal gates the without-replacement union sampler:
// every draw is duplicate-free (within live multiplicity) and the
// per-element marginal is k/total.
func TestWoRUniformMarginal(t *testing.T) {
	tbl := newTestTable(t, 20, nil, Config{Seed: 29})
	ctx := context.Background()
	for _, v := range []float64{3, 11, 17} {
		if err := tbl.Delete(ctx, v); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	for _, v := range []float64{2.5, 7.25, 13.75} {
		if err := tbl.Insert(ctx, v, 1); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	lo, hi := 1.0, 18.0
	total := tbl.Count(lo, hi)
	vals, _ := tbl.LiveData()
	idx := make(map[float64]int)
	for _, v := range vals {
		if v >= lo && v <= hi {
			idx[v] = len(idx)
		}
	}
	if total != len(idx) {
		t.Fatalf("Count %d vs distinct live %d", total, len(idx))
	}

	r := rng.New(31)
	sc := scratch.Get()
	defer scratch.Put(sc)
	const reps = 6000
	k := 5
	counts := make([]int, len(idx))
	for rep := 0; rep < reps; rep++ {
		out, err := tbl.SampleWoRInto(r, lo, hi, k, nil, sc)
		if err != nil {
			t.Fatalf("wor: %v", err)
		}
		seen := make(map[float64]bool, k)
		for _, v := range out {
			if seen[v] {
				t.Fatalf("duplicate %v in one WoR draw", v)
			}
			seen[v] = true
			j, ok := idx[v]
			if !ok {
				t.Fatalf("WoR sampled %v outside live support", v)
			}
			counts[j]++
		}
	}
	exp := make([]float64, len(idx))
	for j := range exp {
		exp[j] = float64(reps) * float64(k) / float64(total)
	}
	stat, err := stats.ChiSquare(counts, exp)
	if err != nil {
		t.Fatalf("chi2: %v", err)
	}
	// Marginal counts across WoR draws are negatively correlated within
	// a draw; the chi-squared statistic is conservative there, so the
	// plain critical value is safe.
	crit := stats.ChiSquareCritical(len(exp)-1, 1e-6)
	if stat > crit {
		t.Fatalf("WoR marginal off: chi2 %.2f > critical %.2f", stat, crit)
	}
}

// TestChurnStatisticalGates is the tentpole acceptance gate at the
// table level: uniformity and cross-query independence hold *while* a
// background writer mutates at well over 10% of read volume, with
// rebuilds landing mid-stream. Each folded query is conditioned on an
// unchanged range state (pre/post weight+count snapshots match), which
// makes the per-query expectations exact — the paper's guarantee is
// per-instantaneous-state, and that is precisely what is asserted.
func TestChurnStatisticalGates(t *testing.T) {
	weights := make([]float64, 64)
	for i := range weights {
		weights[i] = float64(1 + i%3)
	}
	tbl := newTestTable(t, 64, weights, Config{Seed: 37, RebuildThreshold: 16})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Background writer: inserts into and deletes from the *outside* of
	// the probe range so the probe distribution is stable, plus churn
	// inside the range, at full speed.
	var writes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wr := rng.New(41)
		cursor := 1000.0
		var inRange []float64
		for ctx.Err() == nil {
			applied := false
			switch wr.Intn(4) {
			case 0: // insert outside the probe range
				cursor += 0.5
				applied = tbl.Insert(ctx, cursor, 1+wr.Float64()) == nil
			case 1: // insert inside the probe range
				v := 100 + wr.Float64()*10
				if tbl.Insert(ctx, v, 1+wr.Float64()) == nil {
					inRange = append(inRange, v)
					applied = true
				}
			case 2: // delete one of our in-range inserts
				if len(inRange) > 0 {
					v := inRange[len(inRange)-1]
					if tbl.Delete(ctx, v) == nil {
						inRange = inRange[:len(inRange)-1]
						applied = true
					}
				}
			case 3: // delete an outside insert (keeps growth bounded)
				if cursor > 1000.5 {
					if tbl.Delete(ctx, cursor) == nil {
						cursor -= 0.5
						applied = true
					}
				}
			}
			if applied {
				writes.Add(1)
			}
		}
	}()

	// Reader: probe range is the original base span [0, 63]; the writer
	// mutates [100, 110] and [1000, ∞) so per-element probabilities in
	// the probe range shift only via the total (they don't — the probe
	// range weight is what the split uses, and it is untouched... except
	// the conditioning below makes this robust even if it were).
	r := rng.New(43)
	sc := scratch.Get()
	defer scratch.Put(sc)
	lo, hi := 10.0, 50.0
	idx := make(map[float64]int)
	var exp []float64
	rangeW := 0.0
	for i := 10; i <= 50; i++ {
		idx[float64(i)] = len(exp)
		exp = append(exp, weights[i])
		rangeW += weights[i]
	}
	counts := make([]int, len(exp))
	folded := 0
	var pairs [][2]int
	prevBin := -1
	const bins = 8
	deadline := time.Now().Add(5 * time.Second)
	reads := 0
	for folded < 2500 && time.Now().Before(deadline) {
		// Pace the reader against the writer so mutation stays at ≥1/8
		// of read volume — well past the 10% the acceptance gate asks
		// for — instead of hoping the scheduler cooperates.
		for writes.Load()*8 < int64(reads) && time.Now().Before(deadline) {
			time.Sleep(5 * time.Microsecond)
		}
		preW, preC := tbl.RangeWeight(lo, hi), tbl.Count(lo, hi)
		out, ok := tbl.SampleInto(r, lo, hi, 8, nil, sc)
		postW, postC := tbl.RangeWeight(lo, hi), tbl.Count(lo, hi)
		reads++
		if !ok {
			t.Fatal("probe range empty")
		}
		for _, v := range out {
			if _, known := idx[v]; !known {
				t.Fatalf("sampled %v outside probe support", v)
			}
		}
		if preW != postW || preC != postC {
			continue // state moved under the query: don't fold
		}
		for _, v := range out {
			counts[idx[v]]++
		}
		folded++
		bin := int(out[0]-lo) * bins / int(hi-lo+1)
		if bin >= bins {
			bin = bins - 1
		}
		if prevBin >= 0 {
			pairs = append(pairs, [2]int{prevBin, bin})
		}
		prevBin = bin
	}
	cancel()
	wg.Wait()

	if folded < 500 {
		t.Fatalf("only %d stable queries folded (reads %d, writes %d)", folded, reads, writes.Load())
	}
	if w := writes.Load(); w < int64(reads/10) {
		t.Fatalf("writer too slow for the gate: %d writes vs %d reads", w, reads)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	expCounts := make([]float64, len(exp))
	for j, w := range exp {
		expCounts[j] = float64(total) * w / rangeW
	}
	stat, err := stats.ChiSquare(counts, expCounts)
	if err != nil {
		t.Fatalf("chi2: %v", err)
	}
	if crit := stats.ChiSquareCritical(len(exp)-1, 1e-6); stat > crit {
		t.Fatalf("uniformity under churn: chi2 %.2f > critical %.2f (rebuilds %d)",
			stat, crit, tbl.Stats().Rebuilds)
	}
	// Cross-query independence: consecutive first draws must not
	// correlate.
	table := make([]int, bins*bins)
	rows := make([]int, bins)
	cols := make([]int, bins)
	for _, p := range pairs {
		table[p[0]*bins+p[1]]++
		rows[p[0]]++
		cols[p[1]]++
	}
	n := float64(len(pairs))
	statI := 0.0
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			e := float64(rows[i]) * float64(cols[j]) / n
			if e < 5 {
				continue
			}
			d := float64(table[i*bins+j]) - e
			statI += d * d / e
		}
	}
	if crit := stats.ChiSquareCritical((bins-1)*(bins-1), 1e-6); statI > crit {
		t.Fatalf("independence under churn: chi2 %.2f > critical %.2f", statI, crit)
	}
}

// TestPureFastPathZeroAlloc pins the acceptance criterion: with the
// ingest machinery attached but the overlay drained (pure state), the
// read hot path allocates nothing.
func TestPureFastPathZeroAlloc(t *testing.T) {
	tbl := newTestTable(t, 1024, nil, Config{Seed: 47, RebuildThreshold: 4})
	ctx := context.Background()
	// Mutate, then drain, so the fast path re-arms on a rebuilt base.
	for i := 0; i < 8; i++ {
		if err := tbl.Insert(ctx, float64(i)+0.5, 1); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := tbl.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if !tbl.pure.Load() {
		t.Fatal("table not pure after flush")
	}
	r := rng.New(53)
	sc := scratch.Get()
	defer scratch.Put(sc)
	buf := make([]float64, 0, 64)
	fn := func() {
		buf = buf[:0]
		var ok bool
		buf, ok = tbl.SampleInto(r, 100, 900, 32, buf, sc)
		if !ok {
			panic("empty range")
		}
	}
	fn()
	if race.Enabled {
		t.Log("race build, allocation count not asserted")
		return
	}
	if got := testing.AllocsPerRun(200, fn); got > 0 {
		t.Errorf("pure-path SampleInto: %v allocs/op, want 0", got)
	}
}

func TestCloseRejectsWrites(t *testing.T) {
	tbl := newTestTable(t, 8, nil, Config{Seed: 59})
	tbl.Close()
	if err := tbl.Insert(context.Background(), 1.5, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: %v, want ErrClosed", err)
	}
	// Reads still serve.
	if got := tbl.Len(); got != 8 {
		t.Fatalf("Len after close = %d", got)
	}
}

func TestStatsString(t *testing.T) {
	tbl := newTestTable(t, 8, nil, Config{Seed: 61})
	st := tbl.Stats()
	if st.Len != 8 || st.LogDepth != 0 {
		t.Fatalf("fresh stats: %+v", st)
	}
	_ = fmt.Sprintf("%+v", st)
}

// TestWriteLagSecondsTracksLogDepth: the drain-lag estimate must be 0
// with no signal, grow with the delta log once a rebuild has calibrated
// the drain rate, and fall back to 0 when the log drains. This is the
// quantity the serving layer quotes as the write path's Retry-After
// under churn.
func TestWriteLagSecondsTracksLogDepth(t *testing.T) {
	tbl := newTestTable(t, 1024, nil, Config{Seed: 5, RebuildThreshold: 1 << 20})
	ctx := context.Background()

	// No rebuild yet: no rate signal even with a non-empty log.
	for i := 0; i < 64; i++ {
		if err := tbl.Insert(ctx, float64(2000+i), 1); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if lag := tbl.WriteLagSeconds(); lag != 0 {
		t.Fatalf("lag before any rebuild = %v, want 0 (no rate signal)", lag)
	}

	// Flush calibrates the drain rate and empties the log: lag 0 again.
	if err := tbl.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if lag := tbl.WriteLagSeconds(); lag != 0 {
		t.Fatalf("lag with empty log = %v, want 0", lag)
	}
	if st := tbl.Stats(); st.LagSeconds != 0 {
		t.Fatalf("Stats.LagSeconds = %v, want 0", st.LagSeconds)
	}

	// With a calibrated rate, lag must appear with the log and scale
	// with its depth (proportionally: same rate, deeper log).
	for i := 0; i < 64; i++ {
		if err := tbl.Insert(ctx, float64(3000+i), 1); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	lagSmall := tbl.WriteLagSeconds()
	if lagSmall <= 0 {
		t.Fatalf("lag with 64 queued ops = %v, want > 0", lagSmall)
	}
	for i := 0; i < 192; i++ {
		if err := tbl.Insert(ctx, float64(4000+i), 1); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	lagLarge := tbl.WriteLagSeconds()
	if lagLarge != 4*lagSmall {
		t.Fatalf("lag at 4x depth = %v, want exactly 4x %v (same rate)", lagLarge, lagSmall)
	}
	if st := tbl.Stats(); st.LagSeconds != lagLarge {
		t.Fatalf("Stats.LagSeconds = %v, want %v", st.LagSeconds, lagLarge)
	}
}
