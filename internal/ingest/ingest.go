// Package ingest is the write path of the serving stack: it makes a
// dataset mutable while the read hot path keeps sampling from it with
// the paper's guarantees intact at every instant.
//
// Architecture (LSM-flavoured, one Table per dataset per shard):
//
//   - The base is the frozen static structure already serving reads
//     (core.RangeSampler — Theorem 3 / Lemma 2 / §3.2 behind it).
//   - Inserts land in a memtable overlay: the §9 Direction-1 dynamic
//     treap (rangesample.Dynamic), whose read paths are strictly
//     non-mutating, so samplers walk it concurrently with impunity.
//   - Deletes of base elements become tombstones — a position-keyed set
//     plus two Fenwick trees (count, weight) over base positions, so
//     "live weight/count in [lo, hi]" and "p-th live position" stay
//     O(log n).
//   - Every accepted write is also appended to the delta log. A
//     background rebuilder drains the log into a fresh static structure
//     (through the same build path the service uses, EM mirror and
//     degradation included) and atomically swaps it in; the overlay,
//     tombstones and log suffix are replayed onto the new base under
//     one short exclusive section.
//   - Writes flow through a bounded queue into a single-writer apply
//     loop; when the queue is full or the delta log outruns rebuilds
//     past MaxLag, writes are shed with ErrBackpressure (the server
//     maps it to 429 + Retry-After). Reads never shed.
//
// Sampling the union (the part that keeps the statistics exact): a
// with-replacement budget k is split between base and overlay by a
// Multinomial draw over their live in-range weights — the same budget
// arithmetic the sharded coordinator uses across shards — then base
// draws are taken through the frozen structure with tombstone rejection
// (falling back to an exact Fenwick-CDF inversion if rejection thrashes)
// and overlay draws descend the treap. A without-replacement budget is
// split by drawing k global ranks uniformly without replacement over the
// live count (equivalently: the base/overlay split is hypergeometric)
// and mapping ranks through Fenwick rank-select / treap order
// statistics. Both compositions are exact, not approximate, so
// chi-squared uniformity and cross-query independence hold *during*
// mutation, against the instantaneous dataset state.
//
// While the table is pure (no overlay elements, no tombstones) reads
// take a lock-free fast path straight into the base — the zero-alloc
// hot path is untouched by the machinery above.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fenwick"
	"repro/internal/metrics"
	"repro/internal/rangesample"
	"repro/internal/rng"
	"repro/internal/scratch"
	"repro/internal/wor"
)

// Typed errors the serving layers map to HTTP statuses.
var (
	// ErrBackpressure sheds a write when the queue is full or the delta
	// log has outrun the rebuilder past MaxLag.
	ErrBackpressure = errors.New("ingest: write shed, delta log awaiting rebuild")
	// ErrValueNotFound reports a delete of an absent value.
	ErrValueNotFound = errors.New("ingest: value not found")
	// ErrLastElement refuses to delete the final live element (the
	// serving stack's structures are defined over non-empty sets).
	ErrLastElement = errors.New("ingest: cannot delete the last live element")
	// ErrClosed reports a write against a closed table.
	ErrClosed = errors.New("ingest: table closed")
)

// Defaults for the Config knobs.
const (
	DefaultQueueDepth       = 256
	DefaultRebuildThreshold = 4096
)

// rejectionCap bounds tombstone-rejection attempts per with-replacement
// base draw before the exact Fenwick-CDF fallback takes over. The
// expected attempt count is 1/(live fraction), so under the MaxLag
// backpressure regime this is essentially never hit; heavily tombstoned
// ranges stay correct through the fallback rather than fast.
const rejectionCap = 32

// Config parameterises a Table.
type Config struct {
	// Seed drives overlay treap priorities (structural randomness only,
	// never the query sampling).
	Seed uint64
	// QueueDepth bounds the write queue (default DefaultQueueDepth).
	QueueDepth int
	// RebuildThreshold is the delta-log depth that kicks the background
	// rebuilder (default DefaultRebuildThreshold).
	RebuildThreshold int
	// MaxLag is the delta-log depth past which writes are shed with
	// ErrBackpressure (default 4×RebuildThreshold).
	MaxLag int
	// RebuildInterval additionally rebuilds on a timer when positive,
	// folding trickle writes that never reach the threshold.
	RebuildInterval time.Duration
	// Build constructs a fresh static structure over the materialised
	// live data. Required. The service layer passes its own build path
	// here so rebuilds inherit EM mirroring, cancellation and naive
	// degradation.
	Build func(ctx context.Context, values, weights []float64) (*core.RangeSampler, error)
	// Metrics, when non-nil, registers the iqs_ingest_* families with
	// the given labels.
	Metrics *metrics.Registry
	Labels  []metrics.Label
	// Logger receives rebuild failures; nil discards.
	Logger *slog.Logger
}

// opKind tags delta-log entries.
type opKind uint8

const (
	opInsert opKind = iota
	opDelete
	opBulk
)

// op is one delta-log entry.
type op struct {
	kind    opKind
	value   float64
	weight  float64
	values  []float64 // opBulk only
	weights []float64 // opBulk only
}

// request is one queued write awaiting the apply loop.
type request struct {
	op   op
	done chan error
}

// Stats is a point-in-time diagnostic snapshot.
type Stats struct {
	Len         int     // live elements
	LogDepth    int     // delta-log entries awaiting rebuild
	OverlayLen  int     // memtable elements
	Tombstones  int     // masked base positions
	Applied     uint64  // writes applied since creation
	Shed        uint64  // writes shed with ErrBackpressure
	Rebuilds    uint64  // successful base swaps
	RebuildErrs uint64  // failed rebuild attempts
	OverlayFrac float64 // overlay weight / live weight
	LagSeconds  float64 // estimated time for the rebuilder to drain the log
}

// Table serves one mutable dataset: a frozen base, a dynamic overlay,
// tombstones, and the delta log that reconciles them.
type Table struct {
	cfg Config

	// basePtr is the lock-free handle the pure fast path reads;
	// t.mu guards everything else (and basePtr swaps happen under it).
	basePtr atomic.Pointer[core.RangeSampler]
	pure    atomic.Bool

	mu            sync.RWMutex
	overlay       *rangesample.Dynamic
	overlayCount  int
	tomb          map[int]struct{}
	tombC         *fenwick.Tree // 1 per tombstoned base position
	tombW         *fenwick.Tree // weight per tombstoned base position
	log           []op
	overlaySeed   uint64
	logDepthGauge atomic.Int64

	queue   chan *request
	kick    chan struct{}
	closeCh chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup

	applied     atomic.Uint64
	shed        atomic.Uint64
	rebuilds    atomic.Uint64
	rebuildErrs atomic.Uint64
	// drainRate is an EWMA of observed rebuild throughput in delta-log
	// ops per second (Float64bits). It converts a log depth into the
	// wall time the rebuilder needs to work through it — the honest
	// Retry-After for writers shed at MaxLag, which tracks the
	// rebuilder, not the read queue.
	drainRate atomic.Uint64

	appliedC    *metrics.Counter
	shedC       *metrics.Counter
	rebuildsC   *metrics.Counter
	rebuildErrC *metrics.Counter
	rebuildHist *metrics.Histogram
}

// New builds a Table over an already-built base and starts its apply
// and rebuild loops. The base is adopted, not copied: the caller must
// stop sampling through any other handle that mutates it (there are
// none — RangeSampler is immutable).
func New(base *core.RangeSampler, cfg Config) (*Table, error) {
	if base == nil || base.Len() == 0 {
		return nil, fmt.Errorf("ingest: nil or empty base")
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("ingest: Config.Build is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RebuildThreshold <= 0 {
		cfg.RebuildThreshold = DefaultRebuildThreshold
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 4 * cfg.RebuildThreshold
	}
	t := &Table{
		cfg:         cfg,
		overlaySeed: cfg.Seed,
		tomb:        make(map[int]struct{}),
		tombC:       fenwick.New(base.Len()),
		tombW:       fenwick.New(base.Len()),
		queue:       make(chan *request, cfg.QueueDepth),
		kick:        make(chan struct{}, 1),
		closeCh:     make(chan struct{}),
	}
	t.basePtr.Store(base)
	t.overlay = rangesample.NewDynamic(t.nextOverlaySeed())
	t.pure.Store(true)
	t.registerMetrics()
	t.wg.Add(2)
	go t.applyLoop()
	go t.rebuildLoop()
	return t, nil
}

// nextOverlaySeed derives a fresh structural seed per overlay
// generation (splitmix step), keeping treap shapes independent across
// rebuild cycles without consuming query randomness.
func (t *Table) nextOverlaySeed() uint64 {
	t.overlaySeed += 0x9e3779b97f4a7c15
	return t.overlaySeed
}

func (t *Table) registerMetrics() {
	reg := t.cfg.Metrics
	if reg == nil {
		return
	}
	ls := t.cfg.Labels
	t.appliedC = reg.Counter("iqs_ingest_applied_total", "Writes applied to the mutable table.", ls...)
	t.shedC = reg.Counter("iqs_ingest_rejected_total", "Writes shed by ingest backpressure.", ls...)
	t.rebuildsC = reg.Counter("iqs_ingest_rebuilds_total", "Delta-log drains into a fresh base structure.", ls...)
	t.rebuildErrC = reg.Counter("iqs_ingest_rebuild_failures_total", "Rebuild attempts that failed to build.", ls...)
	t.rebuildHist = reg.Histogram("iqs_ingest_rebuild_seconds", "Wall time of one base rebuild (build + replay + swap).", nil, ls...)
	reg.GaugeFunc("iqs_ingest_delta_log_depth", "Delta-log entries awaiting rebuild.",
		func() float64 { return float64(t.logDepthGauge.Load()) }, ls...)
	reg.GaugeFunc("iqs_ingest_queue_depth", "Writes waiting in the bounded ingest queue.",
		func() float64 { return float64(len(t.queue)) }, ls...)
	reg.GaugeFunc("iqs_ingest_overlay_fraction", "Fraction of live weight served by the memtable overlay.",
		func() float64 { return t.Stats().OverlayFrac }, ls...)
}

// Close stops the apply and rebuild loops. Queued writes are drained
// with ErrClosed; reads keep working against the last published state.
func (t *Table) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	close(t.closeCh)
	t.wg.Wait()
	// Drain anything that raced past the closed check into the queue.
	for {
		select {
		case req := <-t.queue:
			req.done <- ErrClosed
		default:
			return
		}
	}
}

// ---------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------

// Insert adds an element with the given weight, visible to sampling as
// soon as it returns. Sheds with ErrBackpressure under lag.
func (t *Table) Insert(ctx context.Context, value, weight float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: %v", core.ErrBadValue, value)
	}
	if !(weight > 0) || math.IsInf(weight, 0) {
		return fmt.Errorf("%w: %v", core.ErrBadWeight, weight)
	}
	return t.submit(ctx, op{kind: opInsert, value: value, weight: weight})
}

// Delete removes one live element with the given value (an arbitrary
// one if duplicated): overlay elements are removed directly, base
// elements are tombstoned. ErrValueNotFound when absent; the last live
// element is never deleted.
func (t *Table) Delete(ctx context.Context, value float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: %v", core.ErrBadValue, value)
	}
	return t.submit(ctx, op{kind: opDelete, value: value})
}

// BulkLoad appends a batch of elements in one queue slot and one log
// entry, then kicks an immediate rebuild. weights may be nil (uniform).
func (t *Table) BulkLoad(ctx context.Context, values, weights []float64) error {
	if len(values) == 0 {
		return nil
	}
	if weights != nil && len(weights) != len(values) {
		return fmt.Errorf("%w: %d values vs %d weights", core.ErrBadWeight, len(values), len(weights))
	}
	vs := append([]float64(nil), values...)
	var ws []float64
	if weights == nil {
		ws = make([]float64, len(vs))
		for i := range ws {
			ws[i] = 1
		}
	} else {
		ws = append([]float64(nil), weights...)
	}
	for i, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %v", core.ErrBadValue, v)
		}
		if !(ws[i] > 0) || math.IsInf(ws[i], 0) {
			return fmt.Errorf("%w: %v", core.ErrBadWeight, ws[i])
		}
	}
	err := t.submit(ctx, op{kind: opBulk, values: vs, weights: ws})
	if err == nil {
		t.kickRebuild()
	}
	return err
}

// submit enqueues one validated op and waits for the apply loop's
// verdict. Backpressure is a fast, non-blocking rejection: a full queue
// or an over-lag delta log sheds immediately rather than stalling the
// caller behind the rebuilder.
func (t *Table) submit(ctx context.Context, o op) error {
	if t.closed.Load() {
		return ErrClosed
	}
	if int(t.logDepthGauge.Load()) >= t.cfg.MaxLag {
		t.shedWrite()
		return ErrBackpressure
	}
	req := &request{op: o, done: make(chan error, 1)}
	select {
	case t.queue <- req:
	default:
		t.shedWrite()
		return ErrBackpressure
	}
	select {
	case err := <-req.done:
		return err
	case <-ctx.Done():
		// The op may still apply after abandonment; the caller only
		// loses the acknowledgement, not consistency.
		return ctx.Err()
	case <-t.closeCh:
		return ErrClosed
	}
}

func (t *Table) shedWrite() {
	t.shed.Add(1)
	if t.shedC != nil {
		t.shedC.Add(1)
	}
}

// applyLoop is the single writer: every mutation funnels through it, so
// the read paths only ever contend with one short exclusive section per
// op, never with each other.
func (t *Table) applyLoop() {
	defer t.wg.Done()
	for {
		select {
		case <-t.closeCh:
			return
		case req := <-t.queue:
			t.mu.Lock()
			err := t.applyLocked(req.op)
			if err == nil {
				t.log = append(t.log, req.op)
				t.logDepthGauge.Store(int64(len(t.log)))
			}
			t.mu.Unlock()
			if err == nil {
				t.applied.Add(1)
				if t.appliedC != nil {
					t.appliedC.Add(1)
				}
				if int(t.logDepthGauge.Load()) >= t.cfg.RebuildThreshold {
					t.kickRebuild()
				}
			}
			req.done <- err
		}
	}
}

// applyLocked applies one op to the overlay/tombstone state. Callers
// hold t.mu exclusively and append to the delta log on success.
func (t *Table) applyLocked(o op) error {
	switch o.kind {
	case opInsert:
		t.pure.Store(false)
		if err := t.overlay.Insert(o.value, o.weight); err != nil {
			return err
		}
		t.overlayCount++
	case opDelete:
		if t.liveLenLocked() <= 1 {
			return ErrLastElement
		}
		iv := rangesample.Interval{Lo: o.value, Hi: o.value}
		if t.overlay.Count(iv) > 0 {
			if err := t.overlay.Delete(o.value); err != nil {
				return err
			}
			t.overlayCount--
			t.updatePureLocked()
			return nil
		}
		base := t.basePtr.Load()
		a, b := base.PosRange(o.value, o.value)
		for p := a; p < b; p++ {
			if _, dead := t.tomb[p]; dead {
				continue
			}
			t.pure.Store(false)
			t.tomb[p] = struct{}{}
			t.tombC.Add(p, 1)
			t.tombW.Add(p, base.WeightAt(p))
			return nil
		}
		return fmt.Errorf("%w: %v", ErrValueNotFound, o.value)
	case opBulk:
		t.pure.Store(false)
		for i, v := range o.values {
			if err := t.overlay.Insert(v, o.weights[i]); err != nil {
				return err
			}
			t.overlayCount++
		}
	}
	return nil
}

// updatePureLocked re-derives the pure flag (lock-free base fast path)
// after an op that may have emptied the overlay/tombstones.
func (t *Table) updatePureLocked() {
	t.pure.Store(t.overlayCount == 0 && len(t.tomb) == 0)
}

func (t *Table) kickRebuild() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// ---------------------------------------------------------------------
// Rebuild path
// ---------------------------------------------------------------------

func (t *Table) rebuildLoop() {
	defer t.wg.Done()
	var tickC <-chan time.Time
	if t.cfg.RebuildInterval > 0 {
		tick := time.NewTicker(t.cfg.RebuildInterval)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-t.closeCh:
			return
		case <-t.kick:
		case <-tickC:
		}
		t.rebuildOnce(context.Background())
	}
}

// rebuildOnce drains the delta log: materialise live data under a read
// lock (writes keep flowing), build the fresh base outside all locks,
// then — under one exclusive section — replay the log suffix that
// landed during the build onto a fresh overlay and swap. The retired
// base has its cover caches invalidated so a stale decomposition can
// never serve the mutated dataset.
func (t *Table) rebuildOnce(ctx context.Context) {
	t.mu.RLock()
	depth := len(t.log)
	if depth == 0 {
		t.mu.RUnlock()
		return
	}
	values, weights := t.materializeLocked()
	t.mu.RUnlock()

	start := time.Now()
	next, err := t.cfg.Build(ctx, values, weights)
	if err != nil {
		t.rebuildErrs.Add(1)
		if t.rebuildErrC != nil {
			t.rebuildErrC.Add(1)
		}
		if t.cfg.Logger != nil {
			t.cfg.Logger.Warn("ingest rebuild failed", "err", err, "log_depth", depth)
		}
		return
	}

	t.mu.Lock()
	rest := append([]op(nil), t.log[depth:]...)
	old := t.basePtr.Load()
	t.basePtr.Store(next)
	t.overlay = rangesample.NewDynamic(t.nextOverlaySeed())
	t.overlayCount = 0
	t.tomb = make(map[int]struct{})
	t.tombC = fenwick.New(next.Len())
	t.tombW = fenwick.New(next.Len())
	newLog := t.log[:0]
	for _, o := range rest {
		if aerr := t.applyLocked(o); aerr != nil {
			// Replay against content-equivalent state cannot fail; if it
			// somehow does, dropping the op (loudly) beats wedging the
			// apply loop.
			if t.cfg.Logger != nil {
				t.cfg.Logger.Warn("ingest replay dropped op", "err", aerr)
			}
			continue
		}
		newLog = append(newLog, o)
	}
	t.log = newLog
	t.logDepthGauge.Store(int64(len(newLog)))
	t.updatePureLocked()
	t.mu.Unlock()

	old.InvalidateCovers()
	t.rebuilds.Add(1)
	if t.rebuildsC != nil {
		t.rebuildsC.Add(1)
	}
	elapsed := time.Since(start).Seconds()
	if t.rebuildHist != nil {
		t.rebuildHist.Observe(elapsed)
	}
	if elapsed > 0 {
		rate := float64(depth) / elapsed
		if prev := math.Float64frombits(t.drainRate.Load()); prev > 0 {
			rate = 0.5*prev + 0.5*rate
		}
		t.drainRate.Store(math.Float64bits(rate))
	}
}

// WriteLagSeconds estimates how long the background rebuilder needs to
// drain the current delta log: log depth over an EWMA of observed
// rebuild throughput. It returns 0 when the log is empty or no rebuild
// has completed yet (no rate signal). This is the write path's honest
// backoff quote — under pure-write backpressure the read queue can be
// empty while the rebuilder is minutes behind.
func (t *Table) WriteLagSeconds() float64 {
	depth := float64(t.logDepthGauge.Load())
	if depth <= 0 {
		return 0
	}
	rate := math.Float64frombits(t.drainRate.Load())
	if rate <= 0 {
		return 0
	}
	return depth / rate
}

// materializeLocked flattens live state — base minus tombstones plus
// overlay — into fresh arrays. Callers hold at least a read lock.
func (t *Table) materializeLocked() (values, weights []float64) {
	base := t.basePtr.Load()
	n := base.Len()
	live := n - len(t.tomb) + t.overlayCount
	values = make([]float64, 0, live)
	weights = make([]float64, 0, live)
	for i := 0; i < n; i++ {
		if _, dead := t.tomb[i]; dead {
			continue
		}
		values = append(values, base.ValueAt(i))
		weights = append(weights, base.WeightAt(i))
	}
	t.overlay.Walk(func(v, w float64) {
		values = append(values, v)
		weights = append(weights, w)
	})
	return values, weights
}

// LiveData returns copies of the live values and weights (shard
// rebalancing and tests).
func (t *Table) LiveData() (values, weights []float64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.materializeLocked()
}

// Flush forces rebuilds until the delta log is empty (tests and
// drains). It blocks the caller, never the readers.
func (t *Table) Flush(ctx context.Context) error {
	for {
		t.mu.RLock()
		depth := len(t.log)
		t.mu.RUnlock()
		if depth == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		t.rebuildOnce(ctx)
		if t.rebuildErrs.Load() > 0 && int(t.logDepthGauge.Load()) >= depth {
			return fmt.Errorf("ingest: flush stalled at depth %d", depth)
		}
	}
}

// Stats returns a diagnostic snapshot.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	base := t.basePtr.Load()
	liveW := t.liveWeightLocked()
	overW := t.overlay.TotalWeight()
	st := Stats{
		Len:        base.Len() - len(t.tomb) + t.overlayCount,
		LogDepth:   len(t.log),
		OverlayLen: t.overlayCount,
		Tombstones: len(t.tomb),
	}
	t.mu.RUnlock()
	st.Applied = t.applied.Load()
	st.Shed = t.shed.Load()
	st.Rebuilds = t.rebuilds.Load()
	st.RebuildErrs = t.rebuildErrs.Load()
	if liveW > 0 {
		st.OverlayFrac = overW / liveW
	}
	st.LagSeconds = t.WriteLagSeconds()
	return st
}

// ---------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------

func (t *Table) liveLenLocked() int {
	return t.basePtr.Load().Len() - len(t.tomb) + t.overlayCount
}

func (t *Table) liveWeightLocked() float64 {
	base := t.basePtr.Load()
	return base.TotalWeight() - t.tombW.Total() + t.overlay.TotalWeight()
}

// Len returns the live element count.
func (t *Table) Len() int {
	if t.pure.Load() {
		return t.basePtr.Load().Len()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.liveLenLocked()
}

// TotalWeight returns the live total weight.
func (t *Table) TotalWeight() float64 {
	if t.pure.Load() {
		return t.basePtr.Load().TotalWeight()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.liveWeightLocked()
}

// RangeWeight returns the live weight of S ∩ [lo, hi].
func (t *Table) RangeWeight(lo, hi float64) float64 {
	if t.pure.Load() {
		return t.basePtr.Load().RangeWeight(lo, hi)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rangeWeightLocked(lo, hi)
}

func (t *Table) rangeWeightLocked(lo, hi float64) float64 {
	base := t.basePtr.Load()
	a, b := base.PosRange(lo, hi)
	w := base.RangeWeight(lo, hi)
	if b > a {
		w -= t.tombW.RangeSum(a, b-1)
	}
	if w < 0 {
		w = 0
	}
	return w + t.overlay.RangeWeight(rangesample.Interval{Lo: lo, Hi: hi})
}

// Count returns the live count of S ∩ [lo, hi].
func (t *Table) Count(lo, hi float64) int {
	if t.pure.Load() {
		return t.basePtr.Load().Count(lo, hi)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.countLocked(lo, hi)
}

func (t *Table) countLocked(lo, hi float64) int {
	base := t.basePtr.Load()
	a, b := base.PosRange(lo, hi)
	c := b - a
	if b > a {
		c -= int(t.tombC.RangeSum(a, b-1) + 0.5)
	}
	if c < 0 {
		c = 0
	}
	return c + t.overlay.Count(rangesample.Interval{Lo: lo, Hi: hi})
}

// Kind returns the current base structure kind (degradation shows
// through here exactly as on the immutable path).
func (t *Table) Kind() core.Kind { return t.basePtr.Load().Kind() }

// PureBase returns the frozen base sampler when the table is pure (no
// overlay inserts, no tombstones — live state IS the base), and false
// otherwise. Callers use it to serve from base-keyed caches such as
// sample pools: the same lock-free pure check that gates SampleInto's
// fast path gates the caller, so any pooled draw bound to the returned
// sampler is distributed exactly like a live draw at this linearization
// point. The instant a delta lands, pure flips false before the delta
// is visible to reads, and the pool's identity check (bound sampler !=
// presented sampler after the next rebuild rebind) closes the window on
// the other side.
func (t *Table) PureBase() (*core.RangeSampler, bool) {
	if !t.pure.Load() {
		return nil, false
	}
	return t.basePtr.Load(), true
}

// SampleInto draws k independent weighted samples from the live S ∩
// [lo, hi], appending values to dst; temporaries come from the arena.
// ok is false when the live range is empty. While the table is pure the
// call is the base's own zero-alloc hot path, lock-free.
func (t *Table) SampleInto(r *rng.Source, lo, hi float64, k int, dst []float64, sc *scratch.Arena) ([]float64, bool) {
	if t.pure.Load() {
		return t.basePtr.Load().SampleInto(r, lo, hi, k, dst, sc)
	}
	if core.ValidateRange(lo, hi) != nil {
		return dst, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	base := t.basePtr.Load()
	a, b := base.PosRange(lo, hi)
	wBaseGross := base.RangeWeight(lo, hi)
	wTomb := 0.0
	if b > a {
		wTomb = t.tombW.RangeSum(a, b-1)
	}
	wBase := wBaseGross - wTomb
	if wBase < 0 {
		wBase = 0
	}
	iv := rangesample.Interval{Lo: lo, Hi: hi}
	wOver := t.overlay.RangeWeight(iv)
	if !(wBase+wOver > 0) {
		return dst, false
	}
	if k <= 0 {
		return dst, true
	}

	// Two-way budget split: Multinomial over {live base weight, overlay
	// weight} — the same arithmetic the coordinator uses across shards.
	split, err := rng.Multinomial(r, k, []float64{wBase, wOver})
	if err != nil {
		return dst, false
	}
	kBase, kOver := split[0], split[1]
	start := len(dst)

	// Base draws: weighted position draws through the frozen structure,
	// tombstones rejected. Rejection is exact (acceptance ∝ live
	// weight); if it thrashes, an exact CDF inversion over live prefix
	// weights finishes the budget.
	attempts := 0
	for drawn := 0; drawn < kBase; {
		if attempts >= rejectionCap+kBase {
			dst = t.denseBaseDrawsLocked(r, a, b, kBase-drawn, dst)
			break
		}
		attempts++
		pos, ok := base.SamplePosInto(r, lo, hi, 1, sc.Pos(1), sc)
		if !ok || len(pos) == 0 {
			break
		}
		if _, dead := t.tomb[pos[0]]; dead {
			continue
		}
		dst = append(dst, base.ValueAt(pos[0]))
		drawn++
	}

	// Overlay draws: non-mutating weighted treap descents.
	for i := 0; i < kOver; i++ {
		v, ok := t.overlay.Sample(r, iv)
		if !ok {
			break
		}
		dst = append(dst, v)
	}

	// The split put base draws before overlay draws; shuffle the batch
	// so the output sequence is exchangeable like every other path.
	tail := dst[start:]
	r.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	return dst, true
}

// denseBaseDrawsLocked draws rem weighted live base positions in
// [a, b) by exact CDF inversion: live prefix weight is PrefixWeight
// minus the tombstone Fenwick prefix, monotone in position, so each
// draw is a binary search costing O(log² n).
func (t *Table) denseBaseDrawsLocked(r *rng.Source, a, b, rem int, dst []float64) []float64 {
	base := t.basePtr.Load()
	livePrefix := func(p int) float64 { // live weight of positions [a, p]
		w := base.PrefixWeight(p+1) - base.PrefixWeight(a)
		if p >= a {
			w -= t.tombW.RangeSum(a, p)
		}
		return w
	}
	total := livePrefix(b - 1)
	if !(total > 0) {
		return dst
	}
	for i := 0; i < rem; i++ {
		x := r.Float64() * total
		lo, hi := a, b-1
		for lo < hi {
			mid := (lo + hi) / 2
			if livePrefix(mid) > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		// lo is the first position whose live prefix exceeds x; it is
		// necessarily live (tombstoned positions add no mass).
		dst = append(dst, base.ValueAt(lo))
	}
	return dst
}

// SampleWoRInto draws a uniformly random size-k subset of the live
// S ∩ [lo, hi] (without replacement), appending values to dst. Global
// ranks are drawn uniformly without replacement over the live count —
// the base/overlay split this induces is exactly hypergeometric — then
// base ranks map through Fenwick rank-select and overlay ranks through
// treap order statistics. Returns core.ErrSampleTooLarge when k exceeds
// the live range count.
func (t *Table) SampleWoRInto(r *rng.Source, lo, hi float64, k int, dst []float64, sc *scratch.Arena) ([]float64, error) {
	if t.pure.Load() {
		return t.basePtr.Load().SampleWoRInto(r, lo, hi, k, dst, sc)
	}
	if err := core.ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	base := t.basePtr.Load()
	a, b := base.PosRange(lo, hi)
	nBase := b - a
	if b > a {
		nBase -= int(t.tombC.RangeSum(a, b-1) + 0.5)
	}
	if nBase < 0 {
		nBase = 0
	}
	iv := rangesample.Interval{Lo: lo, Hi: hi}
	nOver := t.overlay.Count(iv)
	total := nBase + nOver
	if k > total {
		return dst, core.ErrSampleTooLarge
	}
	if k <= 0 {
		return dst, nil
	}
	ranks, err := wor.UniformWoRInto(r, total, k, sc.Pos(k), sc.Seen(k))
	if err != nil {
		return dst, err
	}
	for _, rk := range ranks {
		if rk < nBase {
			p := t.liveSelectLocked(a, b, rk)
			dst = append(dst, base.ValueAt(p))
			continue
		}
		v, ok := t.overlay.SelectInRange(iv, rk-nBase)
		if !ok {
			return dst, fmt.Errorf("ingest: overlay rank %d/%d missing", rk-nBase, nOver)
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// liveSelectLocked returns the base position holding the rank-th live
// element (0-based) of the window [a, b): the smallest p with
// liveCount[a..p] = rank+1. The predicate is monotone and tombstoned
// positions contribute nothing, so the binary search lands on a live
// position.
func (t *Table) liveSelectLocked(a, b, rank int) int {
	lo, hi := a, b-1
	want := float64(rank + 1)
	liveCount := func(p int) float64 {
		return float64(p-a+1) - t.tombC.RangeSum(a, p)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if liveCount(mid) >= want {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
