package alias

import (
	"testing"

	"repro/internal/race"
	"repro/internal/rng"
)

func bulkWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(1 + (i*7)%13)
	}
	return w
}

// TestSampleBulkMatchesScalar drives SampleBulk and a scalar Sample
// loop from identically seeded sources: outputs and the final
// generator state must match exactly.
func TestSampleBulkMatchesScalar(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 1000} {
		a, err := New(bulkWeights(n))
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		for _, s := range []int{0, 1, 7, 128, 129, 500} {
			rs, rb := rng.New(uint64(n*1000+s)), rng.New(uint64(n*1000+s))
			want := make([]int, 0, s)
			for i := 0; i < s; i++ {
				want = append(want, 10+a.Sample(rs))
			}
			got := a.SampleBulk(rb, s, 10, nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d s=%d: got %d samples want %d", n, s, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d s=%d: sample %d: got %d want %d", n, s, i, got[i], want[i])
				}
			}
			if *rs != *rb {
				t.Fatalf("n=%d s=%d: final states diverge", n, s)
			}
		}
	}
}

func TestCountsBulkIntoMatchesScalar(t *testing.T) {
	a, err := New(bulkWeights(37))
	if err != nil {
		t.Fatal(err)
	}
	rs, rb := rng.New(42), rng.New(42)
	want := a.CountsInto(rs, 777, make([]int, 37))
	got := a.CountsBulkInto(rb, 777, make([]int, 37))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("count %d: got %d want %d", i, got[i], want[i])
		}
	}
	if *rs != *rb {
		t.Fatal("final states diverge")
	}
}

func TestSampleBlockMatchesSample(t *testing.T) {
	a, err := New(bulkWeights(64))
	if err != nil {
		t.Fatal(err)
	}
	rs, rb := rng.New(5), rng.New(5)
	var buf [32]uint64
	bk := rng.MakeBlock(rb, buf[:])
	for i := 0; i < 200; i++ {
		if i%16 == 0 {
			k := 2 * (200 - i)
			if k > 32 {
				k = 32
			}
			bk.Prime(k)
		}
		if g, w := a.SampleBlock(&bk), a.Sample(rs); g != w {
			t.Fatalf("draw %d: got %d want %d", i, g, w)
		}
	}
	if *rs != *rb {
		t.Fatal("final states diverge")
	}
}

// TestSampleBulkZeroAlloc pins the bulk kernel's variate supply on the
// stack: appending into pre-sized dst must not touch the heap.
func TestSampleBulkZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race build: allocation counts not asserted")
	}
	a, err := New(bulkWeights(256))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	dst := make([]int, 0, 512)
	got := testing.AllocsPerRun(200, func() {
		dst = a.SampleBulk(r, 512, 0, dst[:0])
	})
	if got != 0 {
		t.Errorf("SampleBulk: %v allocs/op, want 0", got)
	}
	counts := make([]int, 256)
	got = testing.AllocsPerRun(200, func() {
		a.CountsBulkInto(r, 512, counts)
	})
	if got != 0 {
		t.Errorf("CountsBulkInto: %v allocs/op, want 0", got)
	}
}

func BenchmarkAliasSampleScalar(b *testing.B) {
	a, err := New(bulkWeights(1024))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	s := 0
	for i := 0; i < b.N; i++ {
		s += a.Sample(r)
	}
	sinkInt = s
}

func BenchmarkAliasSampleBulk(b *testing.B) {
	a, err := New(bulkWeights(1024))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	dst := make([]int, 0, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i += 512 {
		dst = a.SampleBulk(r, 512, 0, dst[:0])
	}
	sinkInt = dst[0]
}

var sinkInt int
