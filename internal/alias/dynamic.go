package alias

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Dynamic is a weighted sampler over a mutable set of elements, addressing
// Direction 1 ("Dynamization") of the paper's concluding remarks. It
// supports Insert, Delete and UpdateWeight in O(1) time and Sample in
// O(L) expected time, where L is the number of occupied weight levels
// (L ≤ log2(w_max/w_min) + 1, a small constant for realistic weight
// spreads). Samples are independent across calls.
//
// Design (level-bucketed rejection): elements are grouped into levels by
// the power-of-two bracket of their weight — level ℓ holds elements with
// weight in [2^ℓ, 2^{ℓ+1}). Each level has a capacity bound
// U_ℓ = |members(ℓ)| · 2^{ℓ+1}, which overestimates the level's true
// total weight by at most 2x. Sampling selects a level with probability
// proportional to U_ℓ, picks a uniform member, and accepts it with
// probability weight/2^{ℓ+1} ∈ [1/2, 1). A rejected proposal restarts.
//
// Correctness: P(element e accepted in one round)
//
//	= (U_ℓ/ΣU) · (1/|members(ℓ)|) · (w(e)/2^{ℓ+1}) = w(e)/ΣU,
//
// identical for every element up to its weight, so conditioned on
// acceptance the output is an exact weighted sample. Since U_ℓ ≤ 2·total,
// the per-round acceptance probability is ≥ 1/2 and the expected number
// of rounds is ≤ 2.
//
// The capacity bounds are powers of two scaled by integer counts, so
// ΣU is maintained incrementally without floating-point drift.
//
// The cited optimal result ([16] in the paper, for integer weights)
// achieves O(1) worst-case sampling; this structure trades that for
// simplicity while keeping O(1) expected time whenever the weight spread
// is polynomial (L = O(log n) levels, visited geometrically rarely).
type Dynamic struct {
	levels map[int]*level
	// position of each element: level exponent and slot within the level.
	where  map[int]slot
	weight map[int]float64
	total  float64 // live total weight (informational)

	// ordered cache of occupied level exponents; maintained eagerly by
	// the write path so Sample never mutates the structure (this is what
	// makes concurrent readers safe — see the concurrency note on
	// Sample).
	order    []int
	capTotal float64 // Σ_ℓ |members(ℓ)|·2^{ℓ+1}, maintained exactly
}

type level struct {
	exp     int // members have weight in [2^exp, 2^{exp+1})
	members []int
}

type slot struct {
	exp int
	idx int
}

// NewDynamic returns an empty dynamic sampler.
func NewDynamic() *Dynamic {
	return &Dynamic{
		levels: make(map[int]*level),
		where:  make(map[int]slot),
		weight: make(map[int]float64),
	}
}

// Len returns the number of elements currently in the set.
func (d *Dynamic) Len() int { return len(d.weight) }

// Total returns the current total weight.
func (d *Dynamic) Total() float64 { return d.total }

// Weight returns the weight of element key, or 0 if absent.
func (d *Dynamic) Weight(key int) float64 { return d.weight[key] }

// Contains reports whether key is present.
func (d *Dynamic) Contains(key int) bool {
	_, ok := d.weight[key]
	return ok
}

// Insert adds element key with weight w. It returns an error if key is
// already present or w is invalid. O(1).
func (d *Dynamic) Insert(key int, w float64) error {
	if _, ok := d.weight[key]; ok {
		return fmt.Errorf("alias: duplicate key %d", key)
	}
	if !(w > 0) || w > maxFinite {
		return fmt.Errorf("%w: %v", ErrBadWeight, w)
	}
	exp := weightExp(w)
	lv := d.levels[exp]
	if lv == nil {
		lv = &level{exp: exp}
		d.levels[exp] = lv
		d.insertOrder(exp)
	}
	d.where[key] = slot{exp: exp, idx: len(lv.members)}
	lv.members = append(lv.members, key)
	d.weight[key] = w
	d.total += w
	d.capTotal += math.Ldexp(1, exp+1)
	return nil
}

// Delete removes element key. It returns an error if key is absent. O(1).
func (d *Dynamic) Delete(key int) error {
	pos, ok := d.where[key]
	if !ok {
		return fmt.Errorf("alias: unknown key %d", key)
	}
	w := d.weight[key]
	lv := d.levels[pos.exp]
	last := len(lv.members) - 1
	moved := lv.members[last]
	lv.members[pos.idx] = moved
	lv.members = lv.members[:last]
	if moved != key {
		d.where[moved] = slot{exp: pos.exp, idx: pos.idx}
	}
	if len(lv.members) == 0 {
		delete(d.levels, pos.exp)
		d.removeOrder(pos.exp)
	}
	delete(d.where, key)
	delete(d.weight, key)
	d.total -= w
	d.capTotal -= math.Ldexp(1, pos.exp+1)
	return nil
}

// UpdateWeight changes the weight of an existing element. O(1).
func (d *Dynamic) UpdateWeight(key int, w float64) error {
	if _, ok := d.weight[key]; !ok {
		return fmt.Errorf("alias: unknown key %d", key)
	}
	if err := d.Delete(key); err != nil {
		return err
	}
	return d.Insert(key, w)
}

// Sample draws one independent weighted sample. Expected time O(L) with
// L the number of occupied levels; expected number of rejection rounds
// is at most 2. It panics if the set is empty.
//
// Sample and SampleMany never write to the structure, so concurrent
// readers (each with its own rng.Source) are safe. Insert, Delete and
// UpdateWeight require exclusive access.
func (d *Dynamic) Sample(r *rng.Source) int {
	if len(d.weight) == 0 {
		panic("alias: Sample on empty Dynamic")
	}
	for {
		lv := d.sampleLevelByCapacity(r)
		key := lv.members[r.Intn(len(lv.members))]
		capWeight := math.Ldexp(1, lv.exp+1)
		if r.Float64() < d.weight[key]/capWeight {
			return key
		}
	}
}

// SampleMany appends s independent weighted samples to dst.
func (d *Dynamic) SampleMany(r *rng.Source, s int, dst []int) []int {
	for i := 0; i < s; i++ {
		dst = append(dst, d.Sample(r))
	}
	return dst
}

// sampleLevelByCapacity returns a level with probability U_ℓ/ΣU by a
// cumulative scan over the (cached, ordered) occupied levels.
func (d *Dynamic) sampleLevelByCapacity(r *rng.Source) *level {
	x := r.Float64() * d.capTotal
	var lastNonEmpty *level
	for _, exp := range d.order {
		lv := d.levels[exp]
		if lv == nil || len(lv.members) == 0 {
			continue
		}
		lastNonEmpty = lv
		u := float64(len(lv.members)) * math.Ldexp(1, exp+1)
		if x < u {
			return lv
		}
		x -= u
	}
	// Floating-point slack: fall through to the last occupied level.
	return lastNonEmpty
}

// insertOrder splices exp into the sorted occupied-level cache. L is
// tiny (≤ log2 of the weight spread) so a linear splice is fine.
func (d *Dynamic) insertOrder(exp int) {
	i := len(d.order)
	for i > 0 && d.order[i-1] > exp {
		i--
	}
	d.order = append(d.order, 0)
	copy(d.order[i+1:], d.order[i:])
	d.order[i] = exp
}

// removeOrder drops exp from the occupied-level cache.
func (d *Dynamic) removeOrder(exp int) {
	for i, e := range d.order {
		if e == exp {
			d.order = append(d.order[:i], d.order[i+1:]...)
			return
		}
	}
}

// Levels returns the number of occupied weight levels (diagnostic).
func (d *Dynamic) Levels() int { return len(d.levels) }

// weightExp returns ℓ such that w ∈ [2^ℓ, 2^{ℓ+1}).
func weightExp(w float64) int {
	return math.Ilogb(w)
}
