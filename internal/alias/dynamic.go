package alias

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Dynamic is a weighted sampler over a mutable set of elements, addressing
// Direction 1 ("Dynamization") of the paper's concluding remarks. It
// supports Insert, Delete and UpdateWeight in O(1) time and Sample in
// O(L) expected time, where L is the number of occupied weight levels
// (L ≤ log2(w_max/w_min) + 1, a small constant for realistic weight
// spreads). Samples are independent across calls.
//
// Design (level-bucketed rejection): elements are grouped into levels by
// the power-of-two bracket of their weight — level ℓ holds elements with
// weight in [2^ℓ, 2^{ℓ+1}). Each level has a capacity bound
// U_ℓ = |members(ℓ)| · 2^{ℓ+1}, which overestimates the level's true
// total weight by at most 2x. Sampling selects a level with probability
// proportional to U_ℓ, picks a uniform member, and accepts it with
// probability weight/2^{ℓ+1} ∈ [1/2, 1). A rejected proposal restarts.
//
// Correctness: P(element e accepted in one round)
//
//	= (U_ℓ/ΣU) · (1/|members(ℓ)|) · (w(e)/2^{ℓ+1}) = w(e)/ΣU,
//
// identical for every element up to its weight, so conditioned on
// acceptance the output is an exact weighted sample. Since U_ℓ ≤ 2·total,
// the per-round acceptance probability is ≥ 1/2 and the expected number
// of rounds is ≤ 2.
//
// The capacity bounds are powers of two scaled by integer counts, so
// ΣU is maintained incrementally without floating-point drift.
//
// The cited optimal result ([16] in the paper, for integer weights)
// achieves O(1) worst-case sampling; this structure trades that for
// simplicity while keeping O(1) expected time whenever the weight spread
// is polynomial (L = O(log n) levels, visited geometrically rarely).
type Dynamic struct {
	levels map[int]*level
	// position of each element: level exponent and slot within the level.
	where  map[int]slot
	weight map[int]float64
	total  float64 // live total weight (informational)

	// ordered cache of occupied level exponents; rebuilt lazily when the
	// occupied set changes.
	order      []int
	orderDirty bool
	capTotal   float64 // Σ_ℓ |members(ℓ)|·2^{ℓ+1}, maintained exactly
}

type level struct {
	exp     int // members have weight in [2^exp, 2^{exp+1})
	members []int
}

type slot struct {
	exp int
	idx int
}

// NewDynamic returns an empty dynamic sampler.
func NewDynamic() *Dynamic {
	return &Dynamic{
		levels: make(map[int]*level),
		where:  make(map[int]slot),
		weight: make(map[int]float64),
	}
}

// Len returns the number of elements currently in the set.
func (d *Dynamic) Len() int { return len(d.weight) }

// Total returns the current total weight.
func (d *Dynamic) Total() float64 { return d.total }

// Weight returns the weight of element key, or 0 if absent.
func (d *Dynamic) Weight(key int) float64 { return d.weight[key] }

// Contains reports whether key is present.
func (d *Dynamic) Contains(key int) bool {
	_, ok := d.weight[key]
	return ok
}

// Insert adds element key with weight w. It returns an error if key is
// already present or w is invalid. O(1).
func (d *Dynamic) Insert(key int, w float64) error {
	if _, ok := d.weight[key]; ok {
		return fmt.Errorf("alias: duplicate key %d", key)
	}
	if !(w > 0) || w > maxFinite {
		return fmt.Errorf("%w: %v", ErrBadWeight, w)
	}
	exp := weightExp(w)
	lv := d.levels[exp]
	if lv == nil {
		lv = &level{exp: exp}
		d.levels[exp] = lv
		d.orderDirty = true
	}
	d.where[key] = slot{exp: exp, idx: len(lv.members)}
	lv.members = append(lv.members, key)
	d.weight[key] = w
	d.total += w
	d.capTotal += math.Ldexp(1, exp+1)
	return nil
}

// Delete removes element key. It returns an error if key is absent. O(1).
func (d *Dynamic) Delete(key int) error {
	pos, ok := d.where[key]
	if !ok {
		return fmt.Errorf("alias: unknown key %d", key)
	}
	w := d.weight[key]
	lv := d.levels[pos.exp]
	last := len(lv.members) - 1
	moved := lv.members[last]
	lv.members[pos.idx] = moved
	lv.members = lv.members[:last]
	if moved != key {
		d.where[moved] = slot{exp: pos.exp, idx: pos.idx}
	}
	if len(lv.members) == 0 {
		delete(d.levels, pos.exp)
		d.orderDirty = true
	}
	delete(d.where, key)
	delete(d.weight, key)
	d.total -= w
	d.capTotal -= math.Ldexp(1, pos.exp+1)
	return nil
}

// UpdateWeight changes the weight of an existing element. O(1).
func (d *Dynamic) UpdateWeight(key int, w float64) error {
	if _, ok := d.weight[key]; !ok {
		return fmt.Errorf("alias: unknown key %d", key)
	}
	if err := d.Delete(key); err != nil {
		return err
	}
	return d.Insert(key, w)
}

// Sample draws one independent weighted sample. Expected time O(L) with
// L the number of occupied levels; expected number of rejection rounds
// is at most 2. It panics if the set is empty.
func (d *Dynamic) Sample(r *rng.Source) int {
	if len(d.weight) == 0 {
		panic("alias: Sample on empty Dynamic")
	}
	d.ensureOrder()
	for {
		lv := d.sampleLevelByCapacity(r)
		key := lv.members[r.Intn(len(lv.members))]
		capWeight := math.Ldexp(1, lv.exp+1)
		if r.Float64() < d.weight[key]/capWeight {
			return key
		}
	}
}

// SampleMany appends s independent weighted samples to dst.
func (d *Dynamic) SampleMany(r *rng.Source, s int, dst []int) []int {
	for i := 0; i < s; i++ {
		dst = append(dst, d.Sample(r))
	}
	return dst
}

// sampleLevelByCapacity returns a level with probability U_ℓ/ΣU by a
// cumulative scan over the (cached, ordered) occupied levels.
func (d *Dynamic) sampleLevelByCapacity(r *rng.Source) *level {
	x := r.Float64() * d.capTotal
	var lastNonEmpty *level
	for _, exp := range d.order {
		lv := d.levels[exp]
		if lv == nil || len(lv.members) == 0 {
			continue
		}
		lastNonEmpty = lv
		u := float64(len(lv.members)) * math.Ldexp(1, exp+1)
		if x < u {
			return lv
		}
		x -= u
	}
	// Floating-point slack: fall through to the last occupied level.
	return lastNonEmpty
}

func (d *Dynamic) ensureOrder() {
	if !d.orderDirty && len(d.order) > 0 {
		return
	}
	d.order = d.order[:0]
	for exp := range d.levels {
		d.order = append(d.order, exp)
	}
	// Insertion sort: L is tiny and this avoids importing sort here.
	for i := 1; i < len(d.order); i++ {
		for j := i; j > 0 && d.order[j] < d.order[j-1]; j-- {
			d.order[j], d.order[j-1] = d.order[j-1], d.order[j]
		}
	}
	d.orderDirty = false
}

// Levels returns the number of occupied weight levels (diagnostic).
func (d *Dynamic) Levels() int { return len(d.levels) }

// weightExp returns ℓ such that w ∈ [2^ℓ, 2^{ℓ+1}).
func weightExp(w float64) int {
	return math.Ilogb(w)
}
