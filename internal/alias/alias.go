// Package alias implements Walker's alias method for weighted set sampling
// (Theorem 1 of the paper): a structure of O(n) space, built in O(n) time,
// from which an independent weighted sample is drawn in O(1) time.
//
// The construction follows Section 3.1 of the paper: the total weight W is
// spread into n "urns" of capacity W/n each; every urn holds one or two
// elements. A sample picks a uniform urn, then flips a biased coin between
// the urn's (at most) two occupants. Each draw consumes fresh randomness,
// so samples across calls — and hence across queries built on top of this
// structure — are mutually independent.
//
// The package also provides Dynamic, a weighted sampler supporting
// insertions, deletions and weight updates (Direction 1 in the paper's
// concluding remarks) with O(1) expected sample time and O(1) amortized
// update time, via level-bucketed rejection sampling.
package alias

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// ErrEmpty is returned when constructing a sampler over no elements.
var ErrEmpty = errors.New("alias: empty input")

// ErrBadWeight is returned when a weight is not strictly positive or not
// finite.
var ErrBadWeight = errors.New("alias: weights must be positive and finite")

// Alias is Walker's alias structure over elements 0..n-1. The zero value
// is not usable; construct with New.
type Alias struct {
	n int
	// prob[i] is the probability that urn i resolves to its primary
	// element i (scaled so that 1.0 means "always i").
	prob []float64
	// alias[i] is the secondary element sharing urn i.
	alias []int32
	total float64
}

// New builds the alias structure over weights. weights[i] is the weight of
// element i; all must be positive and finite. Build time and space are
// O(n). For repeated small builds on a hot path, use Builder, which reuses
// its construction buffers across calls.
func New(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrEmpty
	}
	a := &Alias{
		n:     n,
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	if err := build(a, weights, scaled, small, large); err != nil {
		return nil, err
	}
	return a, nil
}

// build fills a (whose prob/alias are already sized to len(weights))
// using the provided construction buffers: scaled must have length
// len(weights); small and large must be empty with capacity ≥ n.
func build(a *Alias, weights, scaled []float64, small, large []int32) error {
	n := len(weights)
	total := 0.0
	for i, w := range weights {
		if !(w > 0) || w > maxFinite {
			return fmt.Errorf("%w: weights[%d] = %v", ErrBadWeight, i, w)
		}
		total += w
	}
	if !(total > 0) || total > maxFinite {
		return fmt.Errorf("%w: total = %v", ErrBadWeight, total)
	}
	a.total = total

	// Scale weights so that the average urn load is exactly 1.
	scale := float64(n) / total
	for i, w := range weights {
		scaled[i] = w * scale
	}

	// Two worklists: elements below the urn capacity ("small") and at or
	// above it ("large"). Each step empties one small element into an
	// urn, topping the urn up from a large element.
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}

	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]

		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are urns holding exactly their own element. Floating
	// point can leave a residue in either list.
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small {
		a.prob[s] = 1
		a.alias[s] = s
	}
	return nil
}

// MustNew is New but panics on error; for use with programmatically
// generated weights known to be valid.
func MustNew(weights []float64) *Alias {
	a, err := New(weights)
	if err != nil {
		panic(err)
	}
	return a
}

const maxFinite = 1.7976931348623157e308

// Len returns the number of elements.
func (a *Alias) Len() int { return a.n }

// Total returns the total weight the structure was built over.
func (a *Alias) Total() float64 { return a.total }

// Sample draws one independent weighted sample: element i is returned with
// probability weights[i]/Total(). O(1) time; two random numbers consumed.
func (a *Alias) Sample(r *rng.Source) int {
	u := r.Intn(a.n)
	if r.Float64() < a.prob[u] {
		return u
	}
	return int(a.alias[u])
}

// SampleMany appends s independent weighted samples to dst and returns the
// extended slice. O(s) time.
func (a *Alias) SampleMany(r *rng.Source, s int, dst []int) []int {
	for i := 0; i < s; i++ {
		dst = append(dst, a.Sample(r))
	}
	return dst
}

// Counts draws s independent weighted samples and returns how many times
// each element in [0, n) occurred. This is the "multinomial split"
// primitive used by Lemma 2 / Theorem 3 query algorithms to decide how
// many samples each canonical piece contributes. O(n + s) time.
func (a *Alias) Counts(r *rng.Source, s int) []int {
	return a.CountsInto(r, s, make([]int, a.n))
}

// CountsInto is Counts writing into counts, which must have length n; it
// is zeroed first and returned. Allocation-free given a caller-owned
// buffer.
func (a *Alias) CountsInto(r *rng.Source, s int, counts []int) []int {
	if len(counts) != a.n {
		panic("alias: CountsInto buffer length mismatch")
	}
	for i := range counts {
		counts[i] = 0
	}
	for i := 0; i < s; i++ {
		counts[a.Sample(r)]++
	}
	return counts
}
