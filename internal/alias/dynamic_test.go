package alias

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDynamicInsertDelete(t *testing.T) {
	d := NewDynamic()
	if d.Len() != 0 {
		t.Fatal("new Dynamic not empty")
	}
	if err := d.Insert(1, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(1, 3.0); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if err := d.Insert(2, -1); err == nil {
		t.Fatal("negative weight insert succeeded")
	}
	if err := d.Insert(2, math.NaN()); err == nil {
		t.Fatal("NaN weight insert succeeded")
	}
	if err := d.Delete(99); err == nil {
		t.Fatal("delete of absent key succeeded")
	}
	if err := d.Delete(1); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 || d.Contains(1) {
		t.Fatal("delete did not remove element")
	}
}

func TestDynamicUpdateWeight(t *testing.T) {
	d := NewDynamic()
	if err := d.UpdateWeight(1, 2); err == nil {
		t.Fatal("update of absent key succeeded")
	}
	must(t, d.Insert(1, 1))
	must(t, d.UpdateWeight(1, 100))
	if got := d.Weight(1); got != 100 {
		t.Fatalf("Weight = %v", got)
	}
	if math.Abs(d.Total()-100) > 1e-12 {
		t.Fatalf("Total = %v", d.Total())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestDynamicDistribution(t *testing.T) {
	d := NewDynamic()
	w := []float64{1, 2, 4, 8, 0.5, 3, 7, 100}
	for i, x := range w {
		must(t, d.Insert(i, x))
	}
	r := rng.New(41)
	const draws = 400000
	counts := make([]int, len(w))
	for i := 0; i < draws; i++ {
		counts[d.Sample(r)]++
	}
	if stat := chiSquare(counts, w, draws); stat > chi2Crit(len(w)-1) {
		t.Fatalf("dynamic chi2 = %v (counts %v)", stat, counts)
	}
}

func TestDynamicDistributionAfterChurn(t *testing.T) {
	// Heavy churn: insert 200, delete half, update a quarter, then check
	// the surviving distribution is still exact.
	d := NewDynamic()
	r := rng.New(43)
	for i := 0; i < 200; i++ {
		must(t, d.Insert(i, r.Float64()*10+0.01))
	}
	for i := 0; i < 200; i += 2 {
		must(t, d.Delete(i))
	}
	for i := 1; i < 200; i += 8 {
		must(t, d.UpdateWeight(i, r.Float64()*100+0.01))
	}
	live := map[int]float64{}
	total := 0.0
	for i := 1; i < 200; i += 2 {
		live[i] = d.Weight(i)
		total += d.Weight(i)
	}
	const draws = 500000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[d.Sample(r)]++
	}
	stat := 0.0
	for k, w := range live {
		expected := float64(draws) * w / total
		diff := float64(counts[k]) - expected
		stat += diff * diff / expected
	}
	if stat > chi2Crit(len(live)-1) {
		t.Fatalf("post-churn chi2 = %v with dof %d (crit %v)", stat, len(live)-1, chi2Crit(len(live)-1))
	}
}

func TestDynamicSingleElement(t *testing.T) {
	d := NewDynamic()
	must(t, d.Insert(42, 0.001))
	r := rng.New(4)
	for i := 0; i < 50; i++ {
		if got := d.Sample(r); got != 42 {
			t.Fatalf("Sample = %d", got)
		}
	}
}

func TestDynamicEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample on empty Dynamic did not panic")
		}
	}()
	NewDynamic().Sample(rng.New(1))
}

func TestDynamicWideWeightSpread(t *testing.T) {
	// Weights spanning 30 orders of magnitude: levels machinery must
	// still produce an exact distribution dominated by the heavy element.
	d := NewDynamic()
	must(t, d.Insert(0, 1e-15))
	must(t, d.Insert(1, 1e15))
	must(t, d.Insert(2, 1))
	r := rng.New(8)
	for i := 0; i < 1000; i++ {
		if got := d.Sample(r); got != 1 {
			t.Fatalf("draw %d: got %d, heavy element should dominate", i, got)
		}
	}
	if d.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", d.Levels())
	}
}

func TestDynamicTotalTracksOperations(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewDynamic()
		ref := map[int]float64{}
		for _, op := range ops {
			key := int(op % 32)
			w := float64(op%97)/7 + 0.125
			if _, ok := ref[key]; ok {
				if op%3 == 0 {
					if d.Delete(key) != nil {
						return false
					}
					delete(ref, key)
				} else {
					if d.UpdateWeight(key, w) != nil {
						return false
					}
					ref[key] = w
				}
			} else {
				if d.Insert(key, w) != nil {
					return false
				}
				ref[key] = w
			}
		}
		if d.Len() != len(ref) {
			return false
		}
		want := 0.0
		for k, w := range ref {
			if math.Abs(d.Weight(k)-w) > 1e-9 {
				return false
			}
			want += w
		}
		return math.Abs(d.Total()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicSampleManyLength(t *testing.T) {
	d := NewDynamic()
	must(t, d.Insert(0, 1))
	must(t, d.Insert(1, 2))
	out := d.SampleMany(rng.New(5), 25, nil)
	if len(out) != 25 {
		t.Fatalf("SampleMany returned %d", len(out))
	}
}

func BenchmarkDynamicSample(b *testing.B) {
	d := NewDynamic()
	r := rng.New(1)
	for i := 0; i < 100000; i++ {
		if err := d.Insert(i, r.Float64()+0.001); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = d.Sample(r)
	}
	_ = sink
}

func BenchmarkDynamicInsertDelete(b *testing.B) {
	d := NewDynamic()
	r := rng.New(1)
	for i := 0; i < 100000; i++ {
		if err := d.Insert(i, r.Float64()+0.001); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := 100000 + i
		if err := d.Insert(key, r.Float64()+0.001); err != nil {
			b.Fatal(err)
		}
		if err := d.Delete(key); err != nil {
			b.Fatal(err)
		}
	}
}
