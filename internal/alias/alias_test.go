package alias

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); err != ErrEmpty {
		t.Fatalf("New(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := New([]float64{}); err != ErrEmpty {
		t.Fatalf("New(empty) err = %v, want ErrEmpty", err)
	}
	for _, bad := range [][]float64{
		{0},
		{-1},
		{1, math.NaN()},
		{1, math.Inf(1)},
		{1, 0, 2},
	} {
		if _, err := New(bad); err == nil {
			t.Fatalf("New(%v) succeeded, want error", bad)
		}
	}
}

func TestSingleElement(t *testing.T) {
	a := MustNew([]float64{3.5})
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if got := a.Sample(r); got != 0 {
			t.Fatalf("Sample = %d, want 0", got)
		}
	}
	if a.Len() != 1 || a.Total() != 3.5 {
		t.Fatalf("Len/Total = %d/%v", a.Len(), a.Total())
	}
}

// chiSquare returns the chi-square statistic of observed counts against
// the expected distribution given by weights (normalised internally).
func chiSquare(counts []int, weights []float64, draws int) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	stat := 0.0
	for i, c := range counts {
		expected := float64(draws) * weights[i] / total
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat
}

// chi-square critical values at alpha = 1e-4 for small dof, used to keep
// these statistical tests essentially flake-free with fixed seeds.
func chi2Crit(dof int) float64 {
	// Wilson–Hilferty approximation.
	z := 3.719 // z-score at 1e-4
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestUniformWeightsDistribution(t *testing.T) {
	const n, draws = 8, 200000
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	a := MustNew(w)
	r := rng.New(99)
	counts := a.Counts(r, draws)
	if stat := chiSquare(counts, w, draws); stat > chi2Crit(n-1) {
		t.Fatalf("uniform chi2 = %v > %v (counts %v)", stat, chi2Crit(n-1), counts)
	}
}

func TestSkewedWeightsDistribution(t *testing.T) {
	w := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	a := MustNew(w)
	r := rng.New(7)
	const draws = 400000
	counts := a.Counts(r, draws)
	if stat := chiSquare(counts, w, draws); stat > chi2Crit(len(w)-1) {
		t.Fatalf("skewed chi2 = %v (counts %v)", stat, counts)
	}
}

func TestExtremeWeightRatio(t *testing.T) {
	// One element carries almost all mass.
	w := []float64{1e-9, 1, 1e-9}
	a := MustNew(w)
	r := rng.New(5)
	const draws = 100000
	counts := a.Counts(r, draws)
	if counts[1] < draws-10 {
		t.Fatalf("dominant element sampled only %d/%d times", counts[1], draws)
	}
}

func TestProbabilitiesFormValidTable(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		w := make([]float64, len(raw))
		for i, v := range raw {
			w[i] = float64(v%1000) + 0.5
		}
		a, err := New(w)
		if err != nil {
			return false
		}
		// Reconstruct each element's implied probability from the urn
		// table and compare to w_i/W. This verifies conditions (1)-(2)
		// of Section 3.1 numerically.
		implied := make([]float64, len(w))
		for u := 0; u < a.n; u++ {
			implied[u] += a.prob[u] / float64(a.n)
			implied[a.alias[u]] += (1 - a.prob[u]) / float64(a.n)
		}
		total := 0.0
		for _, x := range w {
			total += x
		}
		for i := range w {
			if math.Abs(implied[i]-w[i]/total) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleManyLength(t *testing.T) {
	a := MustNew([]float64{1, 2, 3})
	r := rng.New(2)
	out := a.SampleMany(r, 17, nil)
	if len(out) != 17 {
		t.Fatalf("SampleMany returned %d samples", len(out))
	}
	out = a.SampleMany(r, 3, out)
	if len(out) != 20 {
		t.Fatalf("SampleMany append returned %d samples", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 2 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestCountsSum(t *testing.T) {
	a := MustNew([]float64{5, 1, 1})
	r := rng.New(3)
	counts := a.Counts(r, 1000)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 1000 {
		t.Fatalf("Counts sum = %d", sum)
	}
}

func TestIndependenceAcrossDraws(t *testing.T) {
	// With two equal-weight elements, consecutive draws form pairs whose
	// four outcomes must be equally likely — a minimal serial-correlation
	// check of cross-draw independence.
	a := MustNew([]float64{1, 1})
	r := rng.New(123)
	var pairs [4]int
	const draws = 100000
	prev := a.Sample(r)
	for i := 0; i < draws; i++ {
		cur := a.Sample(r)
		pairs[prev*2+cur]++
		prev = cur
	}
	expected := float64(draws) / 4
	for i, c := range pairs {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pair %02b count = %d, expected ~%v", i, c, expected)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	const n = 100000
	w := make([]float64, n)
	for i := range w {
		w[i] = r.Float64() + 0.001
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustNew(w)
	}
}

func BenchmarkSample(b *testing.B) {
	r := rng.New(1)
	const n = 100000
	w := make([]float64, n)
	for i := range w {
		w[i] = r.Float64() + 0.001
	}
	a := MustNew(w)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = a.Sample(r)
	}
	_ = sink
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(nil) did not panic")
		}
	}()
	MustNew(nil)
}
