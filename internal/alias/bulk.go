// Bulk kernels for the alias structure: s draws against one table share
// all setup, so the variates are pre-generated in cache-friendly runs
// (rng.FillUint64 under a rng.Block) instead of two generator calls per
// sample. Draw-for-draw identical to the scalar Sample loop: each
// sample still consumes one bounded urn pick then one coin word, in the
// same order, from the same stream.
package alias

import "repro/internal/rng"

// bulkWords is the stack buffer the bulk kernels run their variate
// blocks through; two words per sample means blocks of bulkWords/2
// samples between refills. Kept to 512 bytes deliberately: these are
// leaf frames on fan-out goroutines, and a larger array would force a
// stack grow-and-copy per goroutine that costs more than blocking
// saves.
const bulkWords = 64

// SampleBlock draws one sample with its variates pulled through bk —
// the primitive the range-sampling bulk loops interleave with other
// block draws. Consumes exactly the words Sample would.
func (a *Alias) SampleBlock(bk *rng.Block) int {
	u := bk.Intn(a.n)
	if bk.Float64() < a.prob[u] {
		return u
	}
	return int(a.alias[u])
}

// SampleBulk appends s independent weighted samples, each offset by
// off, to dst, generating variates in blocks. Stream-identical to
// s scalar Sample calls (guaranteed minimum two words per sample;
// Lemire rejections overflow to direct draws in order).
func (a *Alias) SampleBulk(r *rng.Source, s, off int, dst []int) []int {
	var raw [bulkWords]uint64
	bk := rng.MakeBlock(r, raw[:])
	for done := 0; done < s; {
		chunk := s - done
		if chunk > bulkWords/2 {
			chunk = bulkWords / 2
		}
		bk.Prime(2 * chunk)
		for i := 0; i < chunk; i++ {
			dst = append(dst, off+a.SampleBlock(&bk))
		}
		done += chunk
	}
	return dst
}

// CountsBulkInto is CountsInto with block-generated variates: counts
// must have length n, is zeroed, filled with the occurrence counts of
// s draws, and returned. Stream-identical to CountsInto.
func (a *Alias) CountsBulkInto(r *rng.Source, s int, counts []int) []int {
	if len(counts) != a.n {
		panic("alias: CountsBulkInto buffer length mismatch")
	}
	for i := range counts {
		counts[i] = 0
	}
	var raw [bulkWords]uint64
	bk := rng.MakeBlock(r, raw[:])
	for done := 0; done < s; {
		chunk := s - done
		if chunk > bulkWords/2 {
			chunk = bulkWords / 2
		}
		bk.Prime(2 * chunk)
		for i := 0; i < chunk; i++ {
			counts[a.SampleBlock(&bk)]++
		}
		done += chunk
	}
	return counts
}
