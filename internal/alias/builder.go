// Builder: reusable construction state for the alias method, so that the
// chunked/tree query algorithms — which rebuild small alias tables on the
// fly for every partial chunk and canonical cover (Theorem 3) — can run
// allocation-free once warm.
package alias

// Builder owns the slices an alias construction needs (the table itself
// plus scaled weights and the two worklists) and reuses them across
// Rebuild calls. The zero value is ready to use. Not safe for concurrent
// use, and the *Alias returned by one Rebuild is invalidated by the
// next: callers needing the table to outlive the builder must use New.
type Builder struct {
	a      Alias
	scaled []float64
	small  []int32
	large  []int32
}

// Rebuild constructs the alias structure over weights in the builder's
// buffers, growing them only past their high-water mark. The returned
// *Alias points into the builder and is valid until the next Rebuild.
// Construction is identical to New: same validation, same worklist
// order, same table contents.
func (b *Builder) Rebuild(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrEmpty
	}
	if cap(b.a.prob) < n {
		b.a.prob = make([]float64, n)
		b.a.alias = make([]int32, n)
		b.scaled = make([]float64, n)
		b.small = make([]int32, 0, n)
		b.large = make([]int32, 0, n)
	}
	b.a.n = n
	b.a.prob = b.a.prob[:n]
	b.a.alias = b.a.alias[:n]
	if err := build(&b.a, weights, b.scaled[:n], b.small[:0], b.large[:0]); err != nil {
		return nil, err
	}
	return &b.a, nil
}

// MustRebuild is Rebuild but panics on error; for programmatically
// generated weights known to be valid.
func (b *Builder) MustRebuild(weights []float64) *Alias {
	a, err := b.Rebuild(weights)
	if err != nil {
		panic(err)
	}
	return a
}
