package alias

import (
	"sync"
	"testing"

	"repro/internal/race"
	"repro/internal/rng"
)

// Sample/SampleMany are specified non-mutating (the occupied-level
// order cache is maintained eagerly by the write path), so concurrent
// readers may share one Dynamic. The pre-PR-7 implementation rebuilt
// the order cache lazily inside Sample — a write on the read path the
// detector flags with two concurrent samplers after any level change.

func buildAliasDynamic(tb testing.TB, n int) *Dynamic {
	tb.Helper()
	d := NewDynamic()
	w := 1.0
	for i := 0; i < n; i++ {
		if err := d.Insert(i, w); err != nil {
			tb.Fatalf("insert: %v", err)
		}
		w *= 1.07 // spread across several levels
		if w > 1024 {
			w = 1
		}
	}
	return d
}

func TestDynamicConcurrentSamplers(t *testing.T) {
	d := buildAliasDynamic(t, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			buf := make([]int, 0, 8)
			for i := 0; i < 2000; i++ {
				if k := d.Sample(r); !d.Contains(k) {
					t.Errorf("sampled absent key %d", k)
					return
				}
				buf = buf[:0]
				buf = d.SampleMany(r, 4, buf)
			}
		}(uint64(g + 3))
	}
	wg.Wait()
}

// TestDynamicReadersWithExclusiveWriter runs the RWMutex discipline the
// callers use, with the writer forcing level occupancy changes (the
// order-cache churn case) every burst.
func TestDynamicReadersWithExclusiveWriter(t *testing.T) {
	d := buildAliasDynamic(t, 128)
	var mu sync.RWMutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				if d.Len() > 0 {
					d.Sample(r)
				}
				mu.RUnlock()
			}
		}(uint64(g + 17))
	}
	wr := rng.New(23)
	next := 1000
	for i := 0; i < 4000; i++ {
		mu.Lock()
		switch wr.Intn(3) {
		case 0:
			// Extreme weights occupy fresh levels, churning the order
			// cache.
			d.Insert(next, float64(int(1)<<(wr.Intn(20))))
			next++
		case 1:
			if next > 1000 {
				next--
				d.Delete(next)
			}
		case 2:
			d.UpdateWeight(wr.Intn(128), 1+wr.Float64()*500)
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
}

// TestDynamicSampleZeroAlloc pins the read path: Sample and a warm
// SampleMany buffer allocate nothing per call.
func TestDynamicSampleZeroAlloc(t *testing.T) {
	d := buildAliasDynamic(t, 512)
	r := rng.New(5)
	buf := make([]int, 0, 16)
	fn := func() {
		_ = d.Sample(r)
		buf = buf[:0]
		buf = d.SampleMany(r, 8, buf)
	}
	fn()
	if race.Enabled {
		t.Log("race build, allocation count not asserted")
		return
	}
	if got := testing.AllocsPerRun(200, fn); got > 0 {
		t.Errorf("Sample/SampleMany: %v allocs/op, want 0", got)
	}
}

// TestDynamicOrderMaintained verifies the eager order cache tracks the
// occupied levels through arbitrary churn (the invariant Sample relies
// on instead of rebuilding).
func TestDynamicOrderMaintained(t *testing.T) {
	d := NewDynamic()
	wr := rng.New(7)
	next := 0
	live := map[int]bool{}
	for i := 0; i < 3000; i++ {
		if wr.Bernoulli(0.55) || len(live) == 0 {
			d.Insert(next, float64(int(1)<<(wr.Intn(16)))+wr.Float64())
			live[next] = true
			next++
		} else {
			for k := range live {
				d.Delete(k)
				delete(live, k)
				break
			}
		}
		if len(d.order) != len(d.levels) {
			t.Fatalf("order cache has %d entries, %d levels occupied", len(d.order), len(d.levels))
		}
		for j := 1; j < len(d.order); j++ {
			if d.order[j-1] >= d.order[j] {
				t.Fatalf("order cache unsorted at %d: %v", j, d.order)
			}
		}
		for _, exp := range d.order {
			if d.levels[exp] == nil {
				t.Fatalf("order cache lists vacant level %d", exp)
			}
		}
	}
}
