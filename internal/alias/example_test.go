package alias_test

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/rng"
)

// ExampleAlias demonstrates Theorem 1: constant-time weighted sampling.
func ExampleAlias() {
	// Three outcomes with weights 1 : 2 : 7.
	a := alias.MustNew([]float64{1, 2, 7})
	r := rng.New(42)
	counts := make([]int, 3)
	for i := 0; i < 100000; i++ {
		counts[a.Sample(r)]++
	}
	// The heavy outcome dominates ~70% of draws.
	fmt.Println("heaviest sampled most:", counts[2] > counts[1] && counts[1] > counts[0])
	fmt.Printf("share of element 2: %.1f (expect ~0.7)\n", float64(counts[2])/100000)
	// Output:
	// heaviest sampled most: true
	// share of element 2: 0.7 (expect ~0.7)
}

// ExampleDynamic shows Direction 1: updates without rebuilding.
func ExampleDynamic() {
	d := alias.NewDynamic()
	_ = d.Insert(1, 5.0)
	_ = d.Insert(2, 5.0)
	fmt.Println("len:", d.Len(), "total:", d.Total())
	_ = d.Delete(1)
	fmt.Println("after delete:", d.Len())
	r := rng.New(7)
	fmt.Println("only remaining key sampled:", d.Sample(r))
	// Output:
	// len: 2 total: 10
	// after delete: 1
	// only remaining key sampled: 2
}
