package kdtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/coverage"
	"repro/internal/rng"
)

func makePoints(n, d int, seed uint64) ([][]float64, []float64) {
	r := rng.New(seed)
	pts := make([][]float64, n)
	w := make([]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
		w[i] = r.Float64()*3 + 0.2
	}
	return pts, w
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New([][]float64{{1, 2}, {1}}, []float64{1, 1}); err == nil {
		t.Fatal("ragged dimensions accepted")
	}
	if _, err := New([][]float64{{1}}, []float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := New([][]float64{{}}, []float64{1}); err == nil {
		t.Fatal("zero-dimensional accepted")
	}
}

func TestReportMatchesBruteForce(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		pts, w := makePoints(300, d, uint64(10+d))
		tree, err := New(pts, w)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(20 + d))
		for trial := 0; trial < 50; trial++ {
			q := Rect{Min: make([]float64, d), Max: make([]float64, d)}
			for j := 0; j < d; j++ {
				a, b := r.Float64(), r.Float64()
				if a > b {
					a, b = b, a
				}
				q.Min[j], q.Max[j] = a, b
			}
			var got []int
			for _, pos := range tree.Report(q, nil) {
				got = append(got, tree.OrigIndex(pos))
			}
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if q.Contains(p) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("d=%d: report size %d, want %d", d, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("d=%d: report mismatch at %d", d, i)
				}
			}
		}
	}
}

func TestCoverDisjointAndTight(t *testing.T) {
	pts, w := makePoints(256, 2, 30)
	tree, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	f := func(raw [4]uint16) bool {
		var q Rect
		q.Min = []float64{float64(raw[0]%100) / 100, float64(raw[1]%100) / 100}
		q.Max = []float64{q.Min[0] + float64(raw[2]%100)/100, q.Min[1] + float64(raw[3]%100)/100}
		cov := tree.Cover(q, nil)
		// Spans must be disjoint.
		sort.Slice(cov, func(i, j int) bool { return cov[i].Lo < cov[j].Lo })
		for i := 1; i < len(cov); i++ {
			if cov[i].Lo <= cov[i-1].Hi {
				return false
			}
		}
		// Union of spans = exactly the satisfying points.
		inCover := map[int]bool{}
		for _, nd := range cov {
			for i := nd.Lo; i <= nd.Hi; i++ {
				inCover[i] = true
			}
		}
		for i := 0; i < tree.Len(); i++ {
			if q.Contains(tree.Point(i)) != inCover[i] {
				return false
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverSizeSublinear(t *testing.T) {
	// The kd-tree guarantee: cover size O(sqrt(n)) in 2-D. Check the
	// empirical max over queries stays within a generous constant.
	const n = 1 << 12
	pts, w := makePoints(n, 2, 40)
	tree, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(41)
	maxCover := 0
	for trial := 0; trial < 100; trial++ {
		lo0, lo1 := r.Float64()*0.5, r.Float64()*0.5
		q := Rect{Min: []float64{lo0, lo1}, Max: []float64{lo0 + 0.4, lo1 + 0.4}}
		cov := tree.Cover(q, nil)
		if len(cov) > maxCover {
			maxCover = len(cov)
		}
	}
	bound := int(12 * math.Sqrt(n))
	if maxCover > bound {
		t.Fatalf("max cover size %d exceeds %d", maxCover, bound)
	}
}

func chi2Crit(dof int) float64 {
	z := 3.719
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestSamplerDistribution2D(t *testing.T) {
	const n = 64
	pts, w := makePoints(n, 2, 50)
	sp, err := NewSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{0.2, 0.2}, Max: []float64{0.8, 0.8}}
	inside := map[int]float64{}
	total := 0.0
	for i, p := range pts {
		if q.Contains(p) {
			inside[i] = w[i]
			total += w[i]
		}
	}
	if len(inside) < 5 {
		t.Fatalf("test setup: only %d points inside", len(inside))
	}
	r := rng.New(51)
	const draws = 300000
	counts := map[int]int{}
	out, ok := sp.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, idx := range out {
		if _, in := inside[idx]; !in {
			t.Fatalf("sampled point %d outside query", idx)
		}
		counts[idx]++
	}
	chi2 := 0.0
	for idx, wi := range inside {
		expected := draws * wi / total
		diff := float64(counts[idx]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(len(inside)-1) {
		t.Fatalf("chi2 = %v (dof %d)", chi2, len(inside)-1)
	}
	if got := sp.RangeWeight(q); math.Abs(got-total) > 1e-9 {
		t.Fatalf("RangeWeight = %v, want %v", got, total)
	}
}

func TestSamplerEmptyQuery(t *testing.T) {
	pts, w := makePoints(32, 2, 60)
	sp, err := NewSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{5, 5}, Max: []float64{6, 6}}
	if _, ok := sp.Query(rng.New(61), q, 3, nil); ok {
		t.Fatal("empty query returned ok")
	}
	if got := sp.RangeWeight(q); got != 0 {
		t.Fatalf("RangeWeight = %v", got)
	}
}

func TestSamplerSinglePoint(t *testing.T) {
	sp, err := NewSampler([][]float64{{0.5, 0.5}}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{0, 0}, Max: []float64{1, 1}}
	out, ok := sp.Query(rng.New(62), q, 4, nil)
	if !ok || len(out) != 4 {
		t.Fatalf("ok=%v len=%d", ok, len(out))
	}
	for _, idx := range out {
		if idx != 0 {
			t.Fatalf("idx = %d", idx)
		}
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	// Many identical points: the three-way partition must not blow up.
	pts := make([][]float64, 100)
	w := make([]float64, 100)
	for i := range pts {
		pts[i] = []float64{1, 1}
		w[i] = 1
	}
	sp, err := NewSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{0, 0}, Max: []float64{2, 2}}
	out, ok := sp.Query(rng.New(63), q, 1000, nil)
	if !ok {
		t.Fatal("query empty")
	}
	seen := map[int]bool{}
	for _, idx := range out {
		seen[idx] = true
	}
	if len(seen) < 50 {
		t.Fatalf("only %d of 100 duplicates ever sampled", len(seen))
	}
}

func TestQueryDimensionPanics(t *testing.T) {
	tree, err := New([][]float64{{1, 2}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dimension query did not panic")
		}
	}()
	tree.Cover(Rect{Min: []float64{0}, Max: []float64{1}}, nil)
}

func BenchmarkCover2D(b *testing.B) {
	pts, w := makePoints(1<<16, 2, 1)
	tree, err := New(pts, w)
	if err != nil {
		b.Fatal(err)
	}
	q := Rect{Min: []float64{0.25, 0.25}, Max: []float64{0.75, 0.75}}
	var scratch []coverage.Node
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = tree.Cover(q, scratch[:0])
	}
}

func BenchmarkSamplerQuery2D(b *testing.B) {
	pts, w := makePoints(1<<16, 2, 1)
	sp, err := NewSampler(pts, w)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	q := Rect{Min: []float64{0.25, 0.25}, Max: []float64{0.75, 0.75}}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = sp.Query(r, q, 64, dst[:0])
	}
}
