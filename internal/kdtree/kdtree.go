// Package kdtree implements a kd-tree over points in R^d and its IQS
// conversion via the coverage technique — the first example under
// Theorem 5 of the paper:
//
//	"A kd-tree on S uses O(n) space and permits us to find a cover C_q of
//	 size O(n^{1−1/d}) for every q: Theorem 5 directly gives an IQS
//	 structure of O(n) space and O(n^{1−1/d} + s) query time for the
//	 multi-dimensional weighted range sampling problem."
//
// The tree is the classic Bentley kd-tree: median splits cycling through
// the axes, one point per leaf. Because the build lays points out in the
// tree's in-order, every subtree spans a contiguous range of the point
// array (Proposition 1), which is exactly what the coverage transform
// consumes.
package kdtree

import (
	"errors"
	"fmt"

	"repro/internal/coverage"
	"repro/internal/rng"
)

// Rect is an axis-parallel rectangle [Min[i], Max[i]] per dimension
// (closed on both sides).
type Rect struct {
	Min, Max []float64
}

// Contains reports whether p lies in the rectangle.
func (q Rect) Contains(p []float64) bool {
	for i := range q.Min {
		if p[i] < q.Min[i] || p[i] > q.Max[i] {
			return false
		}
	}
	return true
}

// ErrEmpty is returned when building over no points.
var ErrEmpty = errors.New("kdtree: empty input")

// Tree is a kd-tree over n points in R^d.
type Tree struct {
	dim         int
	pts         [][]float64 // points in leaf (in-order) layout
	orig        []int       // orig[i] = caller's index of the point at leaf position i
	leafWeights []float64   // weights in leaf layout
	nodes       []node
	boxData     []float64 // backing store for node bounding boxes
	root        int32
}

type node struct {
	left, right int32 // -1 for leaves
	lo, hi      int32 // leaf-position span
	// bbox of the points in the subtree, laid out [min0..min_{d-1},
	// max0..max_{d-1}] in boxes.
	boxOff int32
	weight float64
}

// boxes backing store lives on the tree to keep node small.
type buildCtx struct {
	t       *Tree
	weights []float64
	boxes   []float64
	r       *rng.Source
}

// New builds a kd-tree over pts (all of identical dimension d ≥ 1) with
// per-point weights. Points are copied; the original order is preserved
// through OrigIndex. Build time O(n log n) expected (randomised median
// selection).
func New(pts [][]float64, weights []float64) (*Tree, error) {
	n := len(pts)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(weights) != n {
		return nil, errors.New("kdtree: points and weights length mismatch")
	}
	d := len(pts[0])
	if d == 0 {
		return nil, errors.New("kdtree: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("kdtree: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	for _, w := range weights {
		if !(w > 0) {
			return nil, errors.New("kdtree: weights must be positive and finite")
		}
	}
	t := &Tree{
		dim:  d,
		pts:  make([][]float64, n),
		orig: make([]int, n),
	}
	for i, p := range pts {
		t.pts[i] = append([]float64(nil), p...)
		t.orig[i] = i
	}
	w := append([]float64(nil), weights...)
	ctx := &buildCtx{
		t:       t,
		weights: w,
		// 2n-1 nodes, 2d floats per box.
		boxes: make([]float64, 0, (2*n-1)*2*d),
		r:     rng.New(0x6b64747265655f31), // structural pivots only
	}
	t.nodes = make([]node, 0, 2*n-1)
	t.root = build(ctx, 0, n-1, 0)
	t.boxData = ctx.boxes
	t.leafWeights = w
	return t, nil
}

func build(c *buildCtx, lo, hi, depth int) int32 {
	t := c.t
	id := int32(len(t.nodes))
	boxOff := int32(len(c.boxes))
	c.boxes = append(c.boxes, make([]float64, 2*t.dim)...)
	if lo == hi {
		t.nodes = append(t.nodes, node{
			left: -1, right: -1,
			lo: int32(lo), hi: int32(hi),
			boxOff: boxOff,
			weight: c.weights[lo],
		})
		box := c.boxes[boxOff : boxOff+int32(2*t.dim)]
		for i := 0; i < t.dim; i++ {
			box[i] = t.pts[lo][i]
			box[t.dim+i] = t.pts[lo][i]
		}
		return id
	}
	t.nodes = append(t.nodes, node{lo: int32(lo), hi: int32(hi), boxOff: boxOff})
	axis := depth % t.dim
	mid := lo + (hi-lo)/2
	selectNth(c, lo, hi, mid, axis)
	l := build(c, lo, mid, depth+1)
	r := build(c, mid+1, hi, depth+1)
	nd := &t.nodes[id]
	nd.left, nd.right = l, r
	nd.weight = t.nodes[l].weight + t.nodes[r].weight
	// Union of child boxes.
	box := c.boxes[boxOff : boxOff+int32(2*t.dim)]
	lb := c.boxes[t.nodes[l].boxOff : t.nodes[l].boxOff+int32(2*t.dim)]
	rb := c.boxes[t.nodes[r].boxOff : t.nodes[r].boxOff+int32(2*t.dim)]
	for i := 0; i < t.dim; i++ {
		box[i] = min(lb[i], rb[i])
		box[t.dim+i] = max(lb[t.dim+i], rb[t.dim+i])
	}
	return id
}

// selectNth partially sorts positions [lo, hi] so that position nth holds
// the element of rank nth by coordinate axis (randomised quickselect).
func selectNth(c *buildCtx, lo, hi, nth, axis int) {
	t := c.t
	for lo < hi {
		// Random pivot.
		p := lo + c.r.Intn(hi-lo+1)
		pv := t.pts[p][axis]
		// Three-way partition (handles duplicate coordinates).
		lt, i, gt := lo, lo, hi
		for i <= gt {
			v := t.pts[i][axis]
			switch {
			case v < pv:
				c.swap(lt, i)
				lt++
				i++
			case v > pv:
				c.swap(i, gt)
				gt--
			default:
				i++
			}
		}
		switch {
		case nth < lt:
			hi = lt - 1
		case nth > gt:
			lo = gt + 1
		default:
			return
		}
	}
}

func (c *buildCtx) swap(i, j int) {
	t := c.t
	t.pts[i], t.pts[j] = t.pts[j], t.pts[i]
	t.orig[i], t.orig[j] = t.orig[j], t.orig[i]
	c.weights[i], c.weights[j] = c.weights[j], c.weights[i]
}

// Len returns the number of points.
func (t *Tree) Len() int { return len(t.pts) }

// Dim returns the dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Point returns the point at leaf position i (aliases internal state).
func (t *Tree) Point(i int) []float64 { return t.pts[i] }

// OrigIndex returns the caller's original index of the point at leaf
// position i.
func (t *Tree) OrigIndex(i int) int { return t.orig[i] }

// LeafWeights returns the weights in leaf order (aliases internal state).
func (t *Tree) LeafWeights() []float64 { return t.leafWeights }

// NumElements implements coverage.Index.
func (t *Tree) NumElements() int { return len(t.pts) }

// Cover implements coverage.Index for rectangle predicates: it returns
// the canonical kd-tree cover of q, of size O(n^{1−1/d}).
func (t *Tree) Cover(q Rect, dst []coverage.Node) []coverage.Node {
	if len(q.Min) != t.dim || len(q.Max) != t.dim {
		panic(fmt.Sprintf("kdtree: query dimension %d/%d, want %d", len(q.Min), len(q.Max), t.dim))
	}
	return t.cover(t.root, q, dst)
}

func (t *Tree) cover(id int32, q Rect, dst []coverage.Node) []coverage.Node {
	nd := &t.nodes[id]
	box := t.boxData[nd.boxOff : nd.boxOff+int32(2*t.dim)]
	// Disjoint?
	for i := 0; i < t.dim; i++ {
		if box[t.dim+i] < q.Min[i] || box[i] > q.Max[i] {
			return dst
		}
	}
	// Fully contained?
	contained := true
	for i := 0; i < t.dim; i++ {
		if box[i] < q.Min[i] || box[t.dim+i] > q.Max[i] {
			contained = false
			break
		}
	}
	if contained {
		return append(dst, coverage.Node{Lo: int(nd.lo), Hi: int(nd.hi), Weight: nd.weight})
	}
	if nd.left == -1 {
		// Leaf partially overlapping: include iff the point qualifies.
		if q.Contains(t.pts[nd.lo]) {
			return append(dst, coverage.Node{Lo: int(nd.lo), Hi: int(nd.hi), Weight: nd.weight})
		}
		return dst
	}
	dst = t.cover(nd.left, q, dst)
	return t.cover(nd.right, q, dst)
}

// Report appends the leaf positions of all points in q (conventional
// reporting query, for baselines and tests).
func (t *Tree) Report(q Rect, dst []int) []int {
	var scratch [256]coverage.Node
	cov := t.Cover(q, scratch[:0])
	for _, nd := range cov {
		for i := nd.Lo; i <= nd.Hi; i++ {
			dst = append(dst, i)
		}
	}
	return dst
}

var _ coverage.Index[Rect] = (*Tree)(nil)

// Sampler bundles a kd-tree with the Theorem 5 transform: an IQS
// structure for multi-dimensional weighted range sampling with O(n)
// space (tree) + O(n log n) sampling engine and O(n^{1−1/d} + s) query
// time.
type Sampler struct {
	Tree *Tree
	cov  *coverage.Sampler[Rect]
}

// NewSampler builds the kd-tree and its coverage transform.
func NewSampler(pts [][]float64, weights []float64) (*Sampler, error) {
	t, err := New(pts, weights)
	if err != nil {
		return nil, err
	}
	cs, err := coverage.NewSampler[Rect](t, t.leafWeights)
	if err != nil {
		return nil, err
	}
	return &Sampler{Tree: t, cov: cs}, nil
}

// Query appends s independent weighted samples from S ∩ q to dst as the
// caller's original point indices. ok is false when the range is empty.
func (sp *Sampler) Query(r *rng.Source, q Rect, s int, dst []int) ([]int, bool) {
	var scratch [64]int
	buf, ok := sp.cov.Query(r, q, s, scratch[:0])
	if !ok {
		return dst, false
	}
	for _, pos := range buf {
		dst = append(dst, sp.Tree.orig[pos])
	}
	return dst, true
}

// RangeWeight returns the total weight of points in q.
func (sp *Sampler) RangeWeight(q Rect) float64 { return sp.cov.RangeWeight(q) }
