package kdtree

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDiscContains(t *testing.T) {
	q := Disc{Center: []float64{0, 0}, Radius: 1}
	if !q.Contains([]float64{0.6, 0.6}) {
		t.Fatal("inside point rejected")
	}
	if q.Contains([]float64{0.8, 0.8}) {
		t.Fatal("outside point accepted")
	}
	if !q.Contains([]float64{1, 0}) {
		t.Fatal("boundary point rejected (ball is closed)")
	}
}

func TestDiscCoverContainsAllQualifying(t *testing.T) {
	pts, w := makePoints(500, 2, 70)
	tree, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	di := tree.DiscQueries()
	r := rng.New(71)
	for trial := 0; trial < 50; trial++ {
		q := Disc{
			Center: []float64{r.Float64(), r.Float64()},
			Radius: 0.05 + r.Float64()*0.3,
		}
		cov := di.ApproxCover(q, nil)
		inCover := map[int]bool{}
		for _, nd := range cov {
			for i := nd.Lo; i <= nd.Hi; i++ {
				inCover[i] = true
			}
		}
		for i := 0; i < tree.Len(); i++ {
			if q.Contains(tree.Point(i)) && !inCover[i] {
				t.Fatalf("qualifying point %d missing from cover", i)
			}
		}
	}
}

func TestDiscSamplerDistribution(t *testing.T) {
	const n = 300
	pts, w := makePoints(n, 2, 72)
	sp, err := NewDiscSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Disc{Center: []float64{0.5, 0.5}, Radius: 0.3}
	inside := map[int]float64{}
	total := 0.0
	for i, p := range pts {
		if q.Contains(p) {
			inside[i] = w[i]
			total += w[i]
		}
	}
	if len(inside) < 10 {
		t.Fatalf("setup: only %d inside", len(inside))
	}
	r := rng.New(73)
	const draws = 300000
	counts := map[int]int{}
	out, ok, err := sp.Query(r, q, draws, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, idx := range out {
		if _, in := inside[idx]; !in {
			t.Fatalf("sampled %d outside ball", idx)
		}
		counts[idx]++
	}
	chi2 := 0.0
	for idx, wi := range inside {
		expected := draws * wi / total
		diff := float64(counts[idx]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(len(inside)-1) {
		t.Fatalf("chi2 = %v (dof %d)", chi2, len(inside)-1)
	}
}

func TestDiscEmpty(t *testing.T) {
	pts, w := makePoints(50, 2, 74)
	sp, err := NewDiscSampler(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Disc{Center: []float64{10, 10}, Radius: 0.1}
	out, ok, err := sp.Query(rng.New(75), q, 3, nil)
	if err != nil || ok || len(out) != 0 {
		t.Fatalf("ok=%v err=%v len=%d", ok, err, len(out))
	}
}

func TestDiscDimensionPanic(t *testing.T) {
	pts, w := makePoints(10, 2, 76)
	tree, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dimension disc did not panic")
		}
	}()
	tree.DiscQueries().ApproxCover(Disc{Center: []float64{0}, Radius: 1}, nil)
}

func TestDiscBoundaryDensity(t *testing.T) {
	// Uniform data: the covered-but-outside fraction should be modest, so
	// the rejection loop terminates quickly (Theorem 6's premise).
	pts, w := makePoints(2000, 2, 77)
	tree, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	di := tree.DiscQueries()
	q := Disc{Center: []float64{0.5, 0.5}, Radius: 0.25}
	cov := di.ApproxCover(q, nil)
	covered, qualifying := 0, 0
	for _, nd := range cov {
		for i := nd.Lo; i <= nd.Hi; i++ {
			covered++
			if q.Contains(tree.Point(i)) {
				qualifying++
			}
		}
	}
	if qualifying == 0 {
		t.Skip("no qualifying points")
	}
	density := float64(qualifying) / float64(covered)
	if density < 0.3 {
		t.Fatalf("density %v too low: boundary dominates (covered %d, qualifying %d)",
			density, covered, qualifying)
	}
	// The boundary should be O(sqrt n)-ish: covered - qualifying small
	// relative to n.
	if covered-qualifying > 8*int(math.Sqrt(2000))+len(cov) {
		t.Logf("note: boundary slack %d (cover %d nodes)", covered-qualifying, len(cov))
	}
}
