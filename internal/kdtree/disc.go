package kdtree

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/rng"
)

// Disc is a ball predicate: points within Euclidean distance Radius of
// Center.
type Disc struct {
	Center []float64
	Radius float64
}

// Contains reports whether p lies in the closed ball.
func (q Disc) Contains(p []float64) bool {
	s := 0.0
	for i := range q.Center {
		d := p[i] - q.Center[i]
		s += d * d
	}
	return s <= q.Radius*q.Radius
}

// DiscIndex adapts the kd-tree to ball predicates through *approximate*
// coverage (Theorem 6), in the spirit of Xie et al. [27]: the cover
// consists of the maximal nodes whose boxes are fully inside the ball
// (their points all qualify) plus the boundary leaves whose boxes
// intersect it (their points may or may not qualify — the rejection step
// of the Theorem 6 transform filters them). On non-adversarial data the
// boundary contributes O(n^{1−1/d}) leaves while the interior carries
// Ω(|S_q|) of the covered mass, so the density condition holds and
// samples cost O(1) expected repeats; a pathological instance (all mass
// on the boundary, nothing inside) degrades the rejection rate and is
// surfaced by coverage.ErrRejectionStuck rather than silently mis-
// sampling.
type DiscIndex struct {
	t *Tree
}

// DiscQueries returns the tree's ball-predicate adapter.
func (t *Tree) DiscQueries() *DiscIndex { return &DiscIndex{t: t} }

// NumElements implements coverage.ApproxIndex.
func (di *DiscIndex) NumElements() int { return di.t.Len() }

// Contains implements coverage.ApproxIndex.
func (di *DiscIndex) Contains(q Disc, pos int) bool {
	return q.Contains(di.t.pts[pos])
}

// ApproxCover implements coverage.ApproxIndex.
func (di *DiscIndex) ApproxCover(q Disc, dst []coverage.Node) []coverage.Node {
	if len(q.Center) != di.t.dim {
		panic(fmt.Sprintf("kdtree: disc dimension %d, want %d", len(q.Center), di.t.dim))
	}
	return di.cover(di.t.root, q, dst)
}

func (di *DiscIndex) cover(id int32, q Disc, dst []coverage.Node) []coverage.Node {
	t := di.t
	nd := &t.nodes[id]
	box := t.boxData[nd.boxOff : nd.boxOff+int32(2*t.dim)]
	// Minimum and maximum squared distance from the centre to the box.
	minD2, maxD2 := 0.0, 0.0
	for i := 0; i < t.dim; i++ {
		lo, hi := box[i], box[t.dim+i]
		c := q.Center[i]
		switch {
		case c < lo:
			d := lo - c
			minD2 += d * d
		case c > hi:
			d := c - hi
			minD2 += d * d
		}
		far := hi - c
		if c-lo > far {
			far = c - lo
		}
		maxD2 += far * far
	}
	r2 := q.Radius * q.Radius
	if minD2 > r2 {
		return dst // box disjoint from the ball
	}
	if maxD2 <= r2 {
		// Box fully inside: every point qualifies.
		return append(dst, coverage.Node{Lo: int(nd.lo), Hi: int(nd.hi), Weight: nd.weight})
	}
	if nd.left == -1 {
		// Boundary leaf: include; the rejection step filters it.
		return append(dst, coverage.Node{Lo: int(nd.lo), Hi: int(nd.hi), Weight: nd.weight})
	}
	dst = di.cover(nd.left, q, dst)
	return di.cover(nd.right, q, dst)
}

var _ coverage.ApproxIndex[Disc] = (*DiscIndex)(nil)

// DiscSampler bundles the kd-tree with the Theorem 6 transform for ball
// queries.
type DiscSampler struct {
	Tree *Tree
	cov  *coverage.ApproxSampler[Disc]
}

// NewDiscSampler builds the kd-tree and its approximate-coverage
// transform.
func NewDiscSampler(pts [][]float64, weights []float64) (*DiscSampler, error) {
	t, err := New(pts, weights)
	if err != nil {
		return nil, err
	}
	cs, err := coverage.NewApproxSampler[Disc](t.DiscQueries(), t.leafWeights)
	if err != nil {
		return nil, err
	}
	return &DiscSampler{Tree: t, cov: cs}, nil
}

// Query appends s independent weighted samples of the points inside q to
// dst as original point indices. It reports coverage.ErrRejectionStuck
// when the boundary dominates the cover so badly that the Theorem 6
// density condition fails.
func (sp *DiscSampler) Query(r *rng.Source, q Disc, s int, dst []int) ([]int, bool, error) {
	var scratch [64]int
	buf, ok, err := sp.cov.Query(r, q, s, scratch[:0])
	if err != nil || !ok {
		return dst, ok, err
	}
	for _, pos := range buf {
		dst = append(dst, sp.Tree.orig[pos])
	}
	return dst, true, nil
}
