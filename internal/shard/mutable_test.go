package shard

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/service"
)

func mkMutable(t *testing.T, n, k int, opts Options) *Coordinator {
	t.Helper()
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1 + float64(i%4)
	}
	opts.Shards = k
	opts.Mutable = true
	c, err := New(context.Background(), "mut", values, weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestMutableShardWriteRouting(t *testing.T) {
	ctx := context.Background()
	c := mkMutable(t, 400, 4, Options{Ingest: service.MutableOptions{RebuildThreshold: 1 << 20}})
	r := core.NewRand(5)

	// Writes land in the owning shard and are visible immediately.
	if err := c.Insert(ctx, 1000.5, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(ctx, -7, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, 42); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, 42); !errors.Is(err, service.ErrValueNotFound) {
		t.Fatalf("double delete: %v, want ErrValueNotFound", err)
	}
	n, err := c.Count(ctx, math.Inf(-1), math.Inf(1))
	if err != nil || n != 401 {
		t.Fatalf("Count = %d, %v; want 401", n, err)
	}
	// The out-of-span insert is sampleable through the global fan-out.
	got, err := c.Sample(ctx, r, 1000, 1001, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 1000.5 {
			t.Fatalf("sample outside [1000,1001]: %v", v)
		}
	}
	// The deleted value is masked everywhere.
	if _, err := c.Sample(ctx, r, 42, 42, 1); !errors.Is(err, core.ErrEmptyRange) {
		t.Fatalf("sampling deleted value: %v, want ErrEmptyRange", err)
	}

	// BulkLoad partitions by owner; invalid values are rejected whole.
	if err := c.BulkLoad(ctx, []float64{50.5, 350.25}, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.BulkLoad(ctx, []float64{1, math.NaN()}, nil); !errors.Is(err, core.ErrBadValue) {
		t.Fatalf("NaN bulk load: %v, want ErrBadValue", err)
	}
	n, err = c.Count(ctx, math.Inf(-1), math.Inf(1))
	if err != nil || n != 403 {
		t.Fatalf("Count after bulk = %d, %v; want 403", n, err)
	}
}

func TestStaticCoordinatorRejectsMutableOps(t *testing.T) {
	ctx := context.Background()
	c, _, _ := mkCoordinator(t, 100, 2, false)
	if err := c.BulkLoad(ctx, []float64{1}, nil); !errors.Is(err, service.ErrNotMutable) {
		t.Fatalf("BulkLoad on static: %v, want ErrNotMutable", err)
	}
	if err := c.Rebalance(ctx); !errors.Is(err, service.ErrNotMutable) {
		t.Fatalf("Rebalance on static: %v, want ErrNotMutable", err)
	}
}

func TestRebalanceRestoresPartition(t *testing.T) {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	c := mkMutable(t, 400, 4, Options{
		Metrics: reg,
		Ingest:  service.MutableOptions{RebuildThreshold: 1 << 20},
	})

	// Skew every write into the last shard's interval.
	for i := 0; i < 1200; i++ {
		if err := c.Insert(ctx, 400+float64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(ctx, 42); err != nil {
		t.Fatal(err)
	}
	if !c.imbalanced() {
		t.Fatal("coordinator should report imbalance after skewed writes")
	}
	if err := c.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Health().Rebalances; got != 1 {
		t.Fatalf("Health().Rebalances = %d, want 1", got)
	}
	if c.imbalanced() {
		t.Fatal("still imbalanced after rebalance")
	}

	// Content is preserved exactly: 400 seed + 1200 inserts - 1 delete.
	n, err := c.Count(ctx, math.Inf(-1), math.Inf(1))
	if err != nil || n != 1599 {
		t.Fatalf("Count after rebalance = %d, %v; want 1599", n, err)
	}
	if _, err := c.Sample(ctx, core.NewRand(9), 42, 42, 1); !errors.Is(err, core.ErrEmptyRange) {
		t.Fatalf("deleted value resurrected by rebalance: %v", err)
	}

	// Writes keep routing against the new boundaries.
	if err := c.Insert(ctx, 2000, 1); err != nil {
		t.Fatal(err)
	}
	got, err := c.SampleWoR(ctx, core.NewRand(11), 1999, 2001, 1)
	if err != nil || len(got) != 1 || got[0] != 2000 {
		t.Fatalf("post-rebalance insert not served: %v, %v", got, err)
	}

	// The func-backed ingest gauges rebound to the fresh generation's
	// tables: the delta-log depth must reflect the drained state, not
	// the retired tables' final depth.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := metrics.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.MaxAcross("iqs_ingest_delta_log_depth"); !ok || v != 1 {
		// Exactly one write (the 2000 insert) since the rebuild swap.
		t.Fatalf("iqs_ingest_delta_log_depth max = %v, %v; want 1", v, ok)
	}
	if v, ok := exp.Get("iqs_shard_rebalances_total"); !ok || v != 1 {
		t.Fatalf("iqs_shard_rebalances_total = %v, %v; want 1", v, ok)
	}
	if _, ok := exp.MaxAcross("iqs_shard_rebalance_seconds_count"); !ok {
		t.Fatal("iqs_shard_rebalance_seconds histogram missing")
	}
}

func TestBackgroundRebalanceUnderChurn(t *testing.T) {
	ctx := context.Background()
	c := mkMutable(t, 200, 4, Options{
		Ingest:            service.MutableOptions{RebuildThreshold: 64},
		RebalanceFactor:   2,
		RebalanceInterval: 2 * time.Millisecond,
	})

	// Reader hammers global samples while the writer skews the tail
	// shard hard enough to trip the background rebalancer.
	var stop atomic.Bool
	var readerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := core.NewRand(3)
		buf := make([]float64, 0, 8)
		for !stop.Load() {
			var err error
			buf, err = c.SampleInto(ctx, r, math.Inf(-1), math.Inf(1), 8, buf[:0])
			if err != nil && !errors.Is(err, core.ErrEmptyRange) {
				readerErr = err
				return
			}
		}
	}()

	inserted := 0
	deadline := time.Now().Add(5 * time.Second)
	for c.Health().Rebalances == 0 && time.Now().Before(deadline) {
		err := c.Insert(ctx, 200+float64(inserted), 1)
		if errors.Is(err, ingest.ErrBackpressure) {
			// The skewed shard's delta log outran its rebuilds; back off
			// like a real writer and let the drain catch up.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		inserted++
	}
	stop.Store(true)
	wg.Wait()
	if readerErr != nil {
		t.Fatalf("reader failed during rebalance: %v", readerErr)
	}
	if c.Health().Rebalances == 0 {
		t.Fatal("background rebalancer never fired")
	}
	n, err := c.Count(ctx, math.Inf(-1), math.Inf(1))
	if err != nil || n != 200+inserted {
		t.Fatalf("Count = %d, %v; want %d", n, err, 200+inserted)
	}

	// Close stops writes but the last published view keeps serving reads.
	c.Close()
	if err := c.Insert(ctx, 1e6, 1); !errors.Is(err, ingest.ErrClosed) {
		t.Fatalf("Insert after Close: %v, want ingest.ErrClosed", err)
	}
	if _, err := c.Sample(ctx, core.NewRand(7), 0, 100, 4); err != nil {
		t.Fatalf("read after Close: %v", err)
	}
}
