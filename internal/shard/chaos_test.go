package shard

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/service"
	"repro/internal/stats"
)

// TestChaosShardedFanOutUnderFaults extends the PR 1 chaos contract to
// the sharded coordinator: 24 concurrent clients push mixed traffic
// through a K=4 coordinator whose shards each own a fault-injected EM
// mirror (p = 0.05 per I/O). Proved here, under -race:
//
//   - zero panics escape (contained per shard as *service.InternalError);
//   - every error crossing the coordinator is in the typed vocabulary;
//   - surviving samples stay uniform (chi-squared), i.e. faults never
//     bias the merged distribution;
//   - forced rebuild faults degrade exactly the owning shard, the
//     coordinator aggregates the downgrade events with correct shard
//     tags, and the aggregate counter equals the per-shard sum.
func TestChaosShardedFanOutUnderFaults(t *testing.T) {
	const (
		shards  = 4
		n       = 512
		clients = 24
		perCli  = 200
	)
	devs := make([]*em.Device, shards)
	for i := range devs {
		dev, err := em.NewDevice(64, 4096)
		if err != nil {
			t.Fatal(err)
		}
		dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: 0.05, WriteFailProb: 0.05, Seed: uint64(i + 1)})
		devs[i] = dev
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	ctx := context.Background()
	c, err := New(ctx, "chaos", values, nil, Options{
		Shards: shards,
		Service: func(i int) service.Options {
			return service.Options{
				Mirror:      devs[i],
				Retry:       em.RetryPolicy{MaxAttempts: 8, BaseDelay: 20 * time.Microsecond, MaxDelay: 200 * time.Microsecond},
				BuildBudget: 10 * time.Second,
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		bins    = make([]int, n)
		badErrs []error
	)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := core.NewRand(uint64(9000 + g))
			local := make([]int, n)
			var localBad []error
			var inserted []float64
			for i := 0; i < perCli; i++ {
				qctx, cancel := context.WithTimeout(ctx, 5*time.Second)
				var err error
				switch i % 8 {
				case 0, 1, 2, 3:
					var out []float64
					out, err = c.Sample(qctx, r, 0, n-1, 8)
					for _, v := range out {
						local[int(v)]++
					}
				case 4:
					_, err = c.SampleWoR(qctx, r, 0, n-1, 16)
				case 5:
					_, err = c.Count(qctx, float64(r.Intn(n)), n-1)
				case 6:
					v := float64(1_000_000 + g*10_000 + i)
					if err = c.Insert(qctx, v, 1+r.Float64()); err == nil {
						inserted = append(inserted, v)
					}
				case 7:
					if len(inserted) > 0 {
						v := inserted[len(inserted)-1]
						if err = c.Delete(qctx, v); err == nil {
							inserted = inserted[:len(inserted)-1]
						}
					} else {
						err = c.Delete(qctx, -math.Pi) // missing: must fail typed
					}
				}
				cancel()
				if err != nil && !service.IsTyped(err) {
					localBad = append(localBad, err)
				}
			}
			mu.Lock()
			for b, cnt := range local {
				bins[b] += cnt
			}
			badErrs = append(badErrs, localBad...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	for _, e := range badErrs {
		t.Errorf("untyped error crossed the coordinator boundary: %v", e)
	}
	faults := int64(0)
	for _, dev := range devs {
		faults += dev.FaultsInjected()
	}
	if faults == 0 {
		t.Fatal("no EM faults injected — the chaos exercised nothing")
	}

	total := 0
	for _, cnt := range bins {
		total += cnt
	}
	if total < 10000 {
		t.Fatalf("only %d surviving samples", total)
	}
	chi2, err := stats.ChiSquareUniform(bins)
	if err != nil {
		t.Fatal(err)
	}
	if crit := stats.ChiSquareCritical(n-1, 1e-4); chi2 > crit {
		t.Errorf("surviving merged samples not uniform: chi2 = %.1f > crit %.1f over %d samples", chi2, crit, total)
	}

	h := c.Health()
	if h.Aggregate.Requests == 0 {
		t.Fatal("aggregate health lost all requests")
	}
	var perShardDowngrades int64
	for _, sh := range h.PerShard {
		perShardDowngrades += sh.Downgrades
	}
	if h.Aggregate.Downgrades != perShardDowngrades {
		t.Errorf("aggregate downgrades %d != per-shard sum %d", h.Aggregate.Downgrades, perShardDowngrades)
	}
	if int64(len(c.Downgrades())) != perShardDowngrades {
		t.Errorf("Downgrades() returned %d events, counters say %d", len(c.Downgrades()), perShardDowngrades)
	}
	t.Logf("aggregate after chaos: %+v (EM faults %d)", h.Aggregate, faults)

	// Forced rebuild faults on shard 0's mirror only: an update routed
	// into shard 0 must degrade that shard alone, with a correctly
	// tagged event.
	devs[0].SetFaultPolicy(&em.FaultPolicy{ReadFailProb: 1, WriteFailProb: 1, Seed: 99})
	before := len(c.Downgrades())
	if err := c.Insert(ctx, -1, 1); err != nil { // -1 routes below shard 0's data
		t.Fatalf("insert under forced faults should degrade, not fail: %v", err)
	}
	evs := c.Downgrades()
	if len(evs) <= before {
		t.Fatal("forced rebuild fault recorded no downgrade event")
	}
	last := evs[len(evs)-1]
	if last.Shard != 0 || last.Event.Op != "rebuild" {
		t.Fatalf("downgrade mis-tagged: %+v", last)
	}
	h = c.Health()
	if h.Degraded != 1 {
		t.Fatalf("exactly shard 0 should be degraded, got %d degraded shards", h.Degraded)
	}
	// The degraded shard keeps answering through the coordinator.
	out, err := c.Sample(ctx, core.NewRand(31), -1, 10, 8)
	if err != nil || len(out) != 8 {
		t.Fatalf("degraded shard stopped answering: %v, %d", err, len(out))
	}
}
