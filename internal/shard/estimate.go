package shard

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/service"
	"repro/internal/sketch"
)

// Approximate analytics over the partition. COUNT/SUM/AVG reuse the
// coordinator's own fan-out read path — the multinomial budget split
// over in-range shard weights makes the merged draws exactly k
// independent global samples (the same canonical-decomposition argument
// the sampling path rests on), so the estimators in internal/estimate
// apply to the merged multiset unchanged. DISTINCT merges the per-shard
// base KMV sketches with sketch.Merge — every shard service hashes
// through the same salt, so the sketches are compatible by construction
// — and unions the result with each shard's ingest-stream threshold
// sample under the min-τ rule.

// fullLo/fullHi span every finite value: a draw over them is a
// weight-proportional pick from the whole partition.
const fullLo, fullHi = -math.MaxFloat64, math.MaxFloat64

// Estimate answers one approximate aggregate over the sharded dataset.
// COUNT scores itself against the exact cross-shard count and carries
// the measured q-error next to the monitored bound.
func (c *Coordinator) Estimate(ctx context.Context, r *core.Rand, req service.EstimateRequest) (estimate.Result, error) {
	var res estimate.Result
	if req.K <= 0 {
		req.K = 256
	}
	if req.Conf <= 0 || req.Conf >= 1 {
		req.Conf = 0.95
	}
	if req.Op != estimate.OpDistinct {
		if err := core.ValidateRange(req.Lo, req.Hi); err != nil {
			return res, err
		}
	}
	switch req.Op {
	case estimate.OpCount:
		total, err := c.Count(ctx, fullLo, fullHi)
		if err != nil {
			return res, err
		}
		draws, err := c.SampleInto(ctx, r, fullLo, fullHi, req.K, nil)
		if err != nil {
			return res, err
		}
		matches := 0
		for _, v := range draws {
			if v >= req.Lo && v <= req.Hi {
				matches++
			}
		}
		res = estimate.Count(total, matches, len(draws), req.Conf)
		exact, err := c.Count(ctx, req.Lo, req.Hi)
		if err != nil {
			return res, err
		}
		res.QError = estimate.QError(res.Estimate, float64(exact))
		return res, nil

	case estimate.OpSum, estimate.OpAvg:
		w, err := c.RangeWeight(ctx, req.Lo, req.Hi)
		if err != nil {
			return res, err
		}
		if w <= 0 {
			if req.Op == estimate.OpSum {
				return estimate.Sum(0, nil, req.Conf), nil
			}
			return res, core.ErrEmptyRange
		}
		draws, err := c.SampleInto(ctx, r, req.Lo, req.Hi, req.K, nil)
		if err != nil {
			return res, err
		}
		if req.Op == estimate.OpSum {
			return estimate.Sum(w, draws, req.Conf), nil
		}
		return estimate.Avg(draws, req.Conf), nil

	case estimate.OpDistinct:
		var merged *sketch.KMV
		views := make([]estimate.View, 0, c.Shards())
		for _, hs := range c.view() {
			base, stream, err := hs.svc.DistinctSketch(dsName)
			if err != nil {
				return res, err
			}
			if merged == nil {
				merged = base
			} else if err := merged.Merge(base); err != nil {
				return res, err
			}
			views = append(views, stream)
		}
		views = append(views, estimate.KMVView(merged))
		return estimate.UnionDistinct(req.Conf, views...), nil
	}
	return res, estimate.ErrBadOp
}
