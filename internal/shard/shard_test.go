package shard

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/stats"
)

func mkCoordinator(t *testing.T, n, k int, weighted bool) (*Coordinator, []float64, []float64) {
	t.Helper()
	r := core.NewRand(17)
	values := make([]float64, n)
	var weights []float64
	if weighted {
		weights = make([]float64, n)
	}
	for i := range values {
		values[i] = float64(i)
		if weighted {
			weights[i] = 0.5 + 9*r.Float64()
		}
	}
	c, err := New(context.Background(), "test", values, weights, Options{Shards: k})
	if err != nil {
		t.Fatal(err)
	}
	return c, values, weights
}

func TestPartitionCoversInput(t *testing.T) {
	ctx := context.Background()
	c, values, _ := mkCoordinator(t, 1000, 4, true)
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", c.Shards())
	}
	n, err := c.Count(ctx, math.Inf(-1), math.Inf(1))
	if err != nil || n != len(values) {
		t.Fatalf("global Count = %d, %v; want %d", n, err, len(values))
	}
	h := c.Health()
	if h.Len != len(values) || h.Shards != 4 || h.Degraded != 0 {
		t.Fatalf("health: %+v", h)
	}
	// A sub-range count must agree with the brute-force count.
	lo, hi := 123.0, 771.0
	n, err = c.Count(ctx, lo, hi)
	if err != nil || n != 649 {
		t.Fatalf("Count(%v, %v) = %d, %v; want 649", lo, hi, n, err)
	}
}

func TestMoreShardsThanValues(t *testing.T) {
	c, err := New(context.Background(), "tiny", []float64{5, 1, 3}, nil, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 3 {
		t.Fatalf("Shards() = %d, want collapsed to 3", c.Shards())
	}
}

func TestDuplicateValuesStayTogether(t *testing.T) {
	// 100 copies of the same value cannot straddle shard boundaries.
	values := make([]float64, 100)
	for i := range values {
		values[i] = 7
	}
	c, err := New(context.Background(), "dup", values, nil, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1 (all values equal)", c.Shards())
	}
}

func TestSampleInRangeAndErrors(t *testing.T) {
	ctx := context.Background()
	c, _, _ := mkCoordinator(t, 500, 4, true)
	r := core.NewRand(3)

	out, err := c.Sample(ctx, r, 100, 399, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 64 {
		t.Fatalf("got %d samples, want 64", len(out))
	}
	for _, v := range out {
		if v < 100 || v > 399 {
			t.Fatalf("sample %v outside [100, 399]", v)
		}
	}

	if _, err := c.Sample(ctx, r, 100.5, 100.9, 4); !errors.Is(err, core.ErrEmptyRange) {
		t.Fatalf("empty range: %v", err)
	}
	if _, err := c.Sample(ctx, r, 10, 5, 4); !errors.Is(err, core.ErrBadRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if out, err := c.Sample(ctx, r, 0, 499, 0); err != nil || out != nil {
		t.Fatalf("k=0: %v, %v", out, err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Sample(canceled, r, 0, 499, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled: %v", err)
	}
}

func TestSampleWoRNoDuplicatesAcrossShards(t *testing.T) {
	ctx := context.Background()
	c, _, _ := mkCoordinator(t, 400, 4, false)
	r := core.NewRand(5)
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(350)
		out, err := c.SampleWoR(ctx, r, 10, 380, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != k {
			t.Fatalf("got %d, want %d", len(out), k)
		}
		seen := make(map[float64]struct{}, k)
		for _, v := range out {
			if v < 10 || v > 380 {
				t.Fatalf("WoR sample %v outside range", v)
			}
			if _, dup := seen[v]; dup {
				t.Fatalf("duplicate %v in cross-shard WoR sample (trial %d, k=%d)", v, trial, k)
			}
			seen[v] = struct{}{}
		}
	}
	// k equal to the full range count returns exactly the range.
	out, err := c.SampleWoR(ctx, r, 0, 399, 400)
	if err != nil || len(out) != 400 {
		t.Fatalf("full-range WoR: %d, %v", len(out), err)
	}
	// k beyond the range count is a typed error.
	if _, err := c.SampleWoR(ctx, r, 0, 399, 401); !errors.Is(err, core.ErrSampleTooLarge) {
		t.Fatalf("oversized WoR: %v", err)
	}
}

func TestInsertDeleteRouting(t *testing.T) {
	ctx := context.Background()
	c, _, _ := mkCoordinator(t, 100, 4, false)
	before, _ := c.Count(ctx, math.Inf(-1), math.Inf(1))
	if err := c.Insert(ctx, 41.5, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(ctx, -10, 1); err != nil { // below every shard: routed to the first
		t.Fatal(err)
	}
	if err := c.Insert(ctx, 1e9, 1); err != nil { // above every shard: routed to the last
		t.Fatal(err)
	}
	after, _ := c.Count(ctx, math.Inf(-1), math.Inf(1))
	if after != before+3 {
		t.Fatalf("count after inserts: %d, want %d", after, before+3)
	}
	n, _ := c.Count(ctx, 41.5, 41.5)
	if n != 1 {
		t.Fatalf("inserted value not found: count = %d", n)
	}
	if err := c.Delete(ctx, 41.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, 41.5); !errors.Is(err, service.ErrValueNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if err := c.Insert(ctx, math.NaN(), 1); !errors.Is(err, core.ErrBadValue) {
		t.Fatalf("NaN insert: %v", err)
	}
	// Inserts must be visible to sampling (snapshot swap propagated).
	r := core.NewRand(9)
	out, err := c.Sample(ctx, r, -10, -10, 3)
	if err != nil || len(out) != 3 || out[0] != -10 {
		t.Fatalf("sampling the routed insert: %v, %v", out, err)
	}
}

func TestRangeWeightSumsShards(t *testing.T) {
	ctx := context.Background()
	c, _, weights := mkCoordinator(t, 300, 4, true)
	want := 0.0
	for i := 50; i <= 249; i++ {
		want += weights[i]
	}
	got, err := c.RangeWeight(ctx, 50, 249)
	if err != nil || math.Abs(got-want) > 1e-6 {
		t.Fatalf("RangeWeight = %v, %v; want %v", got, err, want)
	}
}

func TestBatch(t *testing.T) {
	ctx := context.Background()
	c, _, _ := mkCoordinator(t, 200, 4, false)
	r := core.NewRand(21)
	queries := []Query{
		{Lo: 0, Hi: 199, K: 10},
		{Lo: 50, Hi: 60, K: 5, WoR: true},
		{Lo: 10, Hi: 5, K: 3},               // inverted: per-query error
		{Lo: 0.2, Hi: 0.8, K: 2},            // empty: per-query error
		{Lo: 0, Hi: 199, K: 300, WoR: true}, // oversized WoR: per-query error
	}
	results := c.Batch(ctx, r, queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || len(results[0].Samples) != 10 {
		t.Fatalf("q0: %+v", results[0])
	}
	if results[1].Err != nil || len(results[1].Samples) != 5 {
		t.Fatalf("q1: %+v", results[1])
	}
	if !errors.Is(results[2].Err, core.ErrBadRange) {
		t.Fatalf("q2: %v", results[2].Err)
	}
	if !errors.Is(results[3].Err, core.ErrEmptyRange) {
		t.Fatalf("q3: %v", results[3].Err)
	}
	if !errors.Is(results[4].Err, core.ErrSampleTooLarge) {
		t.Fatalf("q4: %v", results[4].Err)
	}
}

// TestShardedMatchesSingleNodeChiSquare is the acceptance test for the
// multinomial budget split: at the same seed budget, samples drawn
// through the K=4 sharded path and through a single-node sampler must
// both match the weight distribution conditioned on the query range —
// a two-sample homogeneity chi-square against the pooled expectation.
func TestShardedMatchesSingleNodeChiSquare(t *testing.T) {
	const (
		n       = 1000
		budget  = 64
		queries = 1200 // 1200 × 64 = 76 800 samples per engine
		cells   = 20
	)
	r := core.NewRand(101)
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 0.5 + 9*r.Float64()
	}
	single, err := core.NewRangeSampler(core.KindChunked, values, weights)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sharded, err := New(ctx, "chi", values, weights, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	lo, hi := 100.0, 899.0
	cellOf := func(v float64) int {
		c := int((v - lo) / (hi + 1 - lo) * cells)
		if c < 0 {
			c = 0
		}
		if c >= cells {
			c = cells - 1
		}
		return c
	}

	singleObs := make([]int, cells)
	shardObs := make([]int, cells)
	rs := core.NewRand(555)
	rc := core.NewRand(555) // same seed budget for both engines
	for q := 0; q < queries; q++ {
		out, ok := single.Sample(rs, lo, hi, budget)
		if !ok {
			t.Fatal("single-node sample failed")
		}
		for _, v := range out {
			singleObs[cellOf(v)]++
		}
		out2, err := sharded.Sample(ctx, rc, lo, hi, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(out2) != budget {
			t.Fatalf("sharded returned %d of %d samples", len(out2), budget)
		}
		for _, v := range out2 {
			shardObs[cellOf(v)]++
		}
	}

	// Two-sample chi-square: expected cell mass is the pooled proportion
	// scaled to each engine's total. dof = cells − 1.
	total := float64(2 * queries * budget)
	pooled := make([]float64, cells)
	for i := range pooled {
		pooled[i] = float64(singleObs[i]+shardObs[i]) / total
		if pooled[i] == 0 {
			t.Fatalf("cell %d empty in both engines", i)
		}
	}
	expected := make([]float64, cells)
	for i := range expected {
		expected[i] = pooled[i] * total / 2
	}
	chiS, err := stats.ChiSquare(singleObs, expected)
	if err != nil {
		t.Fatal(err)
	}
	chiC, err := stats.ChiSquare(shardObs, expected)
	if err != nil {
		t.Fatal(err)
	}
	stat := chiS + chiC
	crit := stats.ChiSquareCritical(cells-1, 1e-4)
	t.Logf("two-sample chi-square: %.2f (critical %.2f at alpha=1e-4, dof=%d, %d samples/engine)",
		stat, crit, cells-1, queries*budget)
	if stat > crit {
		t.Errorf("sharded vs single-node distinguishable: chi2 = %.2f > %.2f", stat, crit)
	}

	// Each engine must also match the *theoretical* conditional weight
	// distribution, not merely each other.
	theo := make([]float64, cells)
	wTotal := 0.0
	for i := 100; i <= 899; i++ {
		theo[cellOf(values[i])] += weights[i]
		wTotal += weights[i]
	}
	for i := range theo {
		theo[i] = theo[i] / wTotal * float64(queries*budget)
	}
	for name, obs := range map[string][]int{"single": singleObs, "sharded": shardObs} {
		chi, err := stats.ChiSquare(obs, theo)
		if err != nil {
			t.Fatal(err)
		}
		if chi > crit {
			t.Errorf("%s engine deviates from weight distribution: chi2 = %.2f > %.2f", name, chi, crit)
		}
	}
}

// TestCrossShardIndependence checks Equation 1 at the coordinator
// level: outputs of *repeated* queries must be mutually independent,
// in particular which shard answers query t must not predict which
// shard answers query t+1. Non-overlapping query pairs are bucketed by
// (shard of t, shard of t+1) and chi-squared against the product of
// the marginal shard-hit probabilities.
func TestCrossShardIndependence(t *testing.T) {
	const (
		n     = 800
		pairs = 20000
		k     = 4 // shards
	)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	ctx := context.Background()
	c, err := New(ctx, "indep", values, nil, Options{Shards: k})
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRand(777)
	shardOf := func(v float64) int { return int(v) / (n / k) }

	joint := make([]int, k*k)
	for p := 0; p < pairs; p++ {
		a, err := c.Sample(ctx, r, 0, n-1, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Sample(ctx, r, 0, n-1, 1)
		if err != nil {
			t.Fatal(err)
		}
		joint[shardOf(a[0])*k+shardOf(b[0])]++
	}
	// Uniform weights and equal shard sizes: every joint cell expects
	// pairs/k² hits under independence.
	expected := make([]float64, k*k)
	for i := range expected {
		expected[i] = float64(pairs) / float64(k*k)
	}
	chi, err := stats.ChiSquare(joint, expected)
	if err != nil {
		t.Fatal(err)
	}
	crit := stats.ChiSquareCritical(k*k-1, 1e-4)
	t.Logf("cross-shard independence chi-square: %.2f (critical %.2f)", chi, crit)
	if chi > crit {
		t.Errorf("consecutive queries correlated across shards: chi2 = %.2f > %.2f\njoint: %v", chi, crit, joint)
	}
}
