// Package shard scales the hardened query service horizontally: a
// Coordinator range-partitions one dataset into K shards, hosts each
// shard in its own internal/service instance — inheriting per-shard
// cancellation, panic containment, and graceful degradation — and
// answers global queries by splitting the sample budget across the
// shards that overlap the query range.
//
// Correctness of the split is the paper's own canonical-decomposition
// argument (Lemma 2 / Theorem 3, and the weighted-partition sampling of
// Afshani–Phillips) lifted from tree nodes to shards. S ∩ q is the
// disjoint union of the per-shard S_i ∩ q, so:
//
//   - WR/weighted: draw per-shard budgets (s_1..s_K) ~ Multinomial(s,
//     W_i/W) over the in-range shard weights W_i (rng.Multinomial, the
//     alias.Counts mechanism), then draw s_i weighted samples inside
//     shard i. The merged multiset is s independent global weighted
//     samples, exactly.
//
//   - WoR: per-shard budgets follow the multivariate hypergeometric
//     law instead, realised by drawing a global uniform WoR sample of
//     ranks with wor.UniformWoR (Floyd) and bucketing it by shard
//     prefix counts. Uniform WoR subsets of each shard then compose
//     into a uniform WoR subset of S ∩ q — never with a duplicate,
//     because the shards are disjoint by construction.
//
// Fan-out runs on a bounded worker pool with a per-shard context
// derived from the request context: the first shard error cancels the
// siblings, and per-shard downgrade/fault events aggregate into one
// coordinator-level health view.
package shard

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/samplepool"
	"repro/internal/service"
)

// Options configures a Coordinator.
type Options struct {
	// Shards is the partition count K; at least 1. Shards exceeding the
	// number of distinct values are collapsed (a shard never starts
	// empty).
	Shards int
	// Kind is the per-shard index structure; the zero value is
	// core.KindChunked.
	Kind core.Kind
	// Workers bounds the fan-out worker pool; 0 means Shards.
	Workers int
	// Service, when non-nil, supplies the service.Options for shard i —
	// the hook chaos tests use to give each shard its own fault-injected
	// EM mirror. Nil means zero Options for every shard.
	Service func(shard int) service.Options
	// Metrics, when non-nil, receives the coordinator's fan-out and
	// merge latency histograms and is handed down to every shard's
	// service (unless the Service hook set its own registry).
	Metrics *metrics.Registry
	// MetricLabels are constant labels stamped on the coordinator's own
	// series; shard services additionally get a shard="i" label.
	MetricLabels []metrics.Label
	// Logger is handed to shard services that the Service hook left
	// without one. Nil discards.
	Logger *slog.Logger
	// Quality configures the per-shard sample-quality monitors when the
	// Service hook is nil (a hook owns the whole service.Options it
	// returns, quality included).
	Quality metrics.UniformityOptions
	// Pool, when non-nil, enables precomputed sample pools on every
	// shard's service (unless the Service hook set its own Pool). Each
	// shard pools independently against its own frozen snapshot; the
	// coordinator's PoolHot probe reports whether a query would be
	// served entirely from pooled inventory.
	Pool *samplepool.Config
	// Mutable hosts every shard's slice behind the ingest write path
	// (service.CreateMutable): Insert/Delete/BulkLoad are visible to
	// sampling immediately and fold into the base via background
	// rebuilds instead of paying a full rebuild per write.
	Mutable bool
	// Ingest tunes each shard's ingestion machinery (mutable only).
	// The per-shard overlay seed is derived from Ingest.Seed, the shard
	// index and the rebalance generation.
	Ingest service.MutableOptions
	// RebalanceFactor triggers a rebalance when the largest shard holds
	// more than factor× the elements of the smallest (0 means 4;
	// negative disables the imbalance check). Mutable only.
	RebalanceFactor float64
	// RebalanceInterval is the period of the background imbalance check
	// (0 disables it; Rebalance can still be called directly).
	RebalanceInterval time.Duration
}

// Query is one batched range-sampling request.
type Query struct {
	Lo, Hi float64
	K      int
	WoR    bool
}

// Result is the outcome of one batched query.
type Result struct {
	Samples []float64
	Err     error
}

// Downgrade tags a per-shard service downgrade event with its shard
// index, for coordinator-level aggregation.
type Downgrade struct {
	Shard int
	Event service.DowngradeEvent
}

// Health aggregates the per-shard service health views.
type Health struct {
	Shards     int
	Len        int            // total elements across shards
	Degraded   int            // shards currently serving a fallback kind
	Rebalances int            // completed shard-boundary rebalances
	Aggregate  service.Health // counters summed across shards
	PerShard   []service.Health
}

// host is one shard: a dedicated service instance and the half-open
// value interval [lo, hi) it owns for update routing.
type host struct {
	svc    *service.Service
	lo, hi float64
}

// Coordinator routes range-sampling traffic over K range-partitioned
// shards. All methods are safe for concurrent use; callers supply one
// *core.Rand per goroutine, as everywhere else in this repository.
//
// The shard set is published through an atomic pointer: reads capture
// one consistent partition view per call and never block on the
// rebalancer. Writes (mutable coordinators) hold a shared lock that
// the rebalancer takes exclusively while it re-partitions, so no write
// can land between the live-data capture and the swap.
type Coordinator struct {
	name    string
	kind    core.Kind
	workers int
	opts    Options

	hostsPtr atomic.Pointer[[]host]
	writeMu  sync.RWMutex // writes shared; rebalance exclusive
	gen      atomic.Uint64

	stop   chan struct{}
	bg     sync.WaitGroup
	closed atomic.Bool
	log    *slog.Logger

	// fanout[op] (0 sample, 1 wor) times the full per-query fan-out —
	// budget split, worker draws, merge; merge isolates the final
	// append-and-shuffle. Always non-nil (unregistered when Options.
	// Metrics is nil).
	fanout     [2]*metrics.Histogram
	merge      *metrics.Histogram
	rebalances *metrics.Counter
	rebalanceH *metrics.Histogram
}

// view returns the current partition. The slice is immutable once
// published; a rebalance publishes a replacement instead of mutating.
func (c *Coordinator) view() []host { return *c.hostsPtr.Load() }

// dsName is the dataset name each shard's service hosts its slice
// under.
const dsName = "shard"

// New range-partitions values (and weights; nil means uniform) into
// opts.Shards contiguous runs of near-equal size and builds one service
// instance per run. Values with equal keys always land in the same
// shard, so update routing by value is deterministic. Mutable
// coordinators (opts.Mutable) additionally start the background
// rebalancer when RebalanceInterval is positive; call Close to stop
// the ingestion machinery.
func New(ctx context.Context, name string, values, weights []float64, opts Options) (*Coordinator, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("%w: shards = %d", core.ErrBadValue, opts.Shards)
	}
	if len(values) == 0 {
		return nil, service.ErrEmptyDataset
	}
	if weights != nil && len(weights) != len(values) {
		return nil, fmt.Errorf("%w: %d values vs %d weights", core.ErrBadValue, len(values), len(weights))
	}
	sv, sw := SortByValue(values, weights)

	c := &Coordinator{name: name, kind: opts.Kind, workers: opts.Workers, opts: opts, stop: make(chan struct{})}
	c.log = opts.Logger
	if c.log == nil {
		c.log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	for op, opName := range []string{"sample", "wor"} {
		ls := append(append([]metrics.Label(nil), opts.MetricLabels...), metrics.L("op", opName))
		c.fanout[op] = opts.Metrics.Histogram("iqs_shard_fanout_seconds",
			"Wall time of the full per-query shard fan-out (budget split, draws, merge).", nil, ls...)
	}
	c.merge = opts.Metrics.Histogram("iqs_shard_merge_seconds",
		"Time to merge and shuffle per-shard partials into the response buffer.", nil, opts.MetricLabels...)
	c.rebalances = opts.Metrics.Counter("iqs_shard_rebalances_total",
		"Completed shard-boundary rebalances.", opts.MetricLabels...)
	c.rebalanceH = opts.Metrics.Histogram("iqs_shard_rebalance_seconds",
		"Wall time of a full rebalance cycle (capture, re-partition, rebuild, swap).", nil, opts.MetricLabels...)

	hosts, err := c.buildHosts(ctx, sv, sw)
	if err != nil {
		return nil, err
	}
	c.hostsPtr.Store(&hosts)
	if c.workers <= 0 {
		c.workers = len(hosts)
	}
	if opts.Mutable && opts.RebalanceInterval > 0 {
		c.bg.Add(1)
		go c.rebalanceLoop()
	}
	return c, nil
}

// buildHosts cuts the sorted arrays into K near-equal runs via CutRuns
// (each cut advanced past duplicates so equal values never straddle a
// boundary) and builds one service per run. On error, services already
// created are closed.
func (c *Coordinator) buildHosts(ctx context.Context, sorted, sortedW []float64) ([]host, error) {
	opts := c.opts
	runs := CutRuns(sorted, opts.Shards)

	gen := c.gen.Load()
	var hosts []host
	fail := func(err error) ([]host, error) {
		for _, h := range hosts {
			h.svc.Close()
		}
		return nil, err
	}
	for i, run := range runs {
		// Fresh copies: mutable services retain and grow their slices, so
		// shards must never alias one backing array.
		sv := append(make([]float64, 0, run[1]-run[0]), sorted[run[0]:run[1]]...)
		sw := append(make([]float64, 0, run[1]-run[0]), sortedW[run[0]:run[1]]...)
		var sopts service.Options
		if opts.Service != nil {
			sopts = opts.Service(i)
		} else {
			sopts.Quality = opts.Quality
		}
		if sopts.Metrics == nil {
			sopts.Metrics = opts.Metrics
		}
		if sopts.Pool == nil {
			sopts.Pool = opts.Pool
		}
		if sopts.Logger == nil {
			sopts.Logger = opts.Logger
		}
		if sopts.MetricLabels == nil {
			sopts.MetricLabels = append(append([]metrics.Label(nil), opts.MetricLabels...),
				metrics.L("shard", strconv.Itoa(i)))
		}
		svc := service.New(sopts)
		var err error
		if opts.Mutable {
			mo := opts.Ingest
			// Distinct overlay priorities per shard and per generation.
			mo.Seed = opts.Ingest.Seed ^ (gen*0x9e3779b97f4a7c15 + uint64(i) + 1)
			err = svc.CreateMutable(ctx, dsName, opts.Kind, sv, sw, mo)
		} else {
			err = svc.Create(ctx, dsName, opts.Kind, sv, sw)
		}
		if err != nil {
			return fail(fmt.Errorf("shard %d: %w", i, err))
		}
		lo, hi := RunBounds(sorted, runs, i)
		hosts = append(hosts, host{svc: svc, lo: lo, hi: hi})
	}
	return hosts, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.view()) }

// Name returns the dataset name the coordinator was created with.
func (c *Coordinator) Name() string { return c.name }

// overlapping returns the indices of shards whose owned interval
// intersects [lo, hi].
func overlapping(hosts []host, lo, hi float64) []int {
	out := make([]int, 0, len(hosts))
	for i, h := range hosts {
		// Shard i owns values in [h.lo, h.hi); it overlaps the closed
		// query [lo, hi] unless the query ends before the shard starts
		// or starts at/after the shard's exclusive end.
		if hi < h.lo || lo >= h.hi {
			continue
		}
		out = append(out, i)
	}
	return out
}

// owner returns the index of the shard whose interval contains value
// (the intervals tile the real line, so the first shard ending past the
// value owns it).
func owner(hosts []host, value float64) int {
	for i, h := range hosts {
		if value < h.hi {
			return i
		}
	}
	return len(hosts) - 1
}

// partPool recycles the per-job sample buffers the fan-out workers draw
// into: under a steady query load each job appends into a pooled buffer
// via service.SampleInto instead of allocating a fresh slice per shard
// per query.
var partPool = sync.Pool{New: func() any {
	b := make([]float64, 0, 256)
	return &b
}}

// draw runs one shard's share of a fan-out: op 0 is the weighted WR
// path, op 1 the uniform WoR path. A method instead of a per-request
// closure keeps the dispatch allocation-free.
func (h host) draw(ctx context.Context, op int, r *core.Rand, lo, hi float64, k int, buf []float64) ([]float64, error) {
	if op == 1 {
		return h.svc.SampleWoRInto(ctx, r, dsName, lo, hi, k, buf)
	}
	return h.svc.SampleInto(ctx, r, dsName, lo, hi, k, buf)
}

// fanOut draws every shard with a positive budget on the bounded worker
// pool, each under a context that the first error cancels. Each task
// gets its own rng stream, split from r in deterministic order before
// any goroutine starts. Per-shard partials land in pooled buffers and
// are appended to dst; the appended region comes back shuffled with r
// so the output order carries no shard signal. dst is returned
// unchanged on error.
func (c *Coordinator) fanOut(ctx context.Context, r *core.Rand, op int, hosts []host, shards []int, budgets []int, lo, hi float64, dst []float64) ([]float64, error) {
	total, positive, last := 0, 0, -1
	for i := range shards {
		if budgets[i] > 0 {
			positive++
			last = i
			total += budgets[i]
		}
	}
	if positive == 0 {
		return dst, nil
	}
	endSpan := metrics.TraceFrom(ctx).StartSpan("shard.fanout")
	fanStart := time.Now()
	defer func() {
		c.fanout[op].Observe(time.Since(fanStart).Seconds())
		endSpan()
	}()

	if positive == 1 {
		// Single-shard queries (the hot-range case) draw inline on the
		// caller's goroutine: no jobs slice, derived context, semaphore,
		// worker goroutine or pooled partial buffer. Randomness
		// consumption is byte-identical to the worker path — one stream
		// split, the draw appends the same values in the same order (one
		// partial, appended first), and the tail is shuffled with r
		// exactly as the merge below would.
		out, err := hosts[shards[last]].draw(ctx, op, r.Split(), lo, hi, budgets[last], dst)
		if err != nil {
			return dst, err
		}
		mergeStart := time.Now()
		tail := out[len(dst):]
		r.Shuffle(len(tail), func(i, k int) { tail[i], tail[k] = tail[k], tail[i] })
		c.merge.Observe(time.Since(mergeStart).Seconds())
		return out, nil
	}

	type job struct {
		shard, k int
		r        *core.Rand
	}
	jobs := make([]job, 0, positive)
	for i, s := range shards {
		if budgets[i] <= 0 {
			continue
		}
		jobs = append(jobs, job{shard: s, k: budgets[i], r: r.Split()})
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, c.workers)
		mu       sync.Mutex
		firstErr error
	)
	parts := make([][]float64, len(jobs))
	bufs := make([]*[]float64, len(jobs))
	defer func() {
		// Recycle after the merge below has copied the partials out (the
		// deferred call runs once the return value is final).
		for ji, bp := range bufs {
			if bp == nil {
				continue
			}
			if parts[ji] != nil {
				*bp = parts[ji][:0] // keep any growth the draw caused
			}
			partPool.Put(bp)
		}
	}()
	for ji := range jobs {
		wg.Add(1)
		go func(ji int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-fctx.Done():
				mu.Lock()
				if firstErr == nil {
					firstErr = fctx.Err()
				}
				mu.Unlock()
				return
			}
			j := jobs[ji]
			bp := partPool.Get().(*[]float64)
			bufs[ji] = bp
			out, err := hosts[j.shard].draw(fctx, op, j.r, lo, hi, j.k, (*bp)[:0])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel() // first error stops the sibling shards
				return
			}
			parts[ji] = out
		}(ji)
	}
	wg.Wait()
	if firstErr != nil {
		// Prefer the caller's own cancellation cause over the derived
		// context's when both fired.
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		return dst, firstErr
	}
	mergeStart := time.Now()
	base := len(dst)
	dst = slices.Grow(dst, total)
	for _, p := range parts {
		dst = append(dst, p...)
	}
	tail := dst[base:]
	r.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	c.merge.Observe(time.Since(mergeStart).Seconds())
	return dst, nil
}

// Sample draws k independent weighted samples from S ∩ [lo, hi],
// splitting the budget multinomially over in-range shard weights and
// fanning out. Returns core.ErrEmptyRange when no shard holds in-range
// weight.
func (c *Coordinator) Sample(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	return c.SampleInto(ctx, r, lo, hi, k, nil)
}

// SampleInto is Sample appending into caller-owned dst, so the HTTP
// front end can recycle one response buffer per worker. Randomness
// consumption matches Sample exactly; dst is returned unchanged on
// error.
func (c *Coordinator) SampleInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	if err := core.ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	if k <= 0 {
		return dst, nil
	}
	hosts := c.view()
	first, overlaps := -1, 0
	for i, h := range hosts {
		if hi < h.lo || lo >= h.hi {
			continue
		}
		if first < 0 {
			first = i
		}
		overlaps++
	}
	if overlaps == 1 {
		// Single overlapping shard — the hot-range case. The multinomial
		// split is deterministic (the whole budget lands on that shard)
		// and Multinomial consumes no randomness for one category, so the
		// RangeWeight round trip and the weight/budget slices are pure
		// overhead: skip them. The random stream is untouched, so answers
		// stay byte-identical to the weighted path; an empty intersection
		// surfaces as core.ErrEmptyRange from the kernel draw, exactly as
		// the weighted path reports it. SampleMulti applies the identical
		// rule so coalesced answers keep matching per request id.
		shardsOne, budgetsOne := [1]int{first}, [1]int{k}
		return c.fanOut(ctx, r, 0, hosts, shardsOne[:], budgetsOne[:], lo, hi, dst)
	}
	shards := overlapping(hosts, lo, hi)
	weights := make([]float64, len(shards))
	total := 0.0
	for i, s := range shards {
		w, err := hosts[s].svc.RangeWeight(ctx, dsName, lo, hi)
		if err != nil {
			return dst, err
		}
		weights[i] = w
		total += w
	}
	if !(total > 0) {
		return dst, core.ErrEmptyRange
	}
	budgets, err := PlanWR(r, k, weights)
	if err != nil {
		return dst, err
	}
	return c.fanOut(ctx, r, 0, hosts, shards, budgets, lo, hi, dst)
}

// SampleWoR draws a uniformly random size-k subset of S ∩ [lo, hi]
// without replacement (uniform-weight regime). The per-shard budgets
// are multivariate hypergeometric — a global uniform WoR rank draw
// bucketed by shard prefix counts — so the merged subset is exactly
// uniform over all size-k subsets, with no duplicates possible across
// the disjoint shards.
func (c *Coordinator) SampleWoR(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	return c.SampleWoRInto(ctx, r, lo, hi, k, nil)
}

// SampleWoRInto is SampleWoR appending into caller-owned dst.
// Randomness consumption matches SampleWoR exactly; dst is returned
// unchanged on error.
func (c *Coordinator) SampleWoRInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	if err := core.ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	hosts := c.view()
	shards := overlapping(hosts, lo, hi)
	counts := make([]int, len(shards))
	for i, s := range shards {
		n, err := hosts[s].svc.Count(ctx, dsName, lo, hi)
		if err != nil {
			return dst, err
		}
		counts[i] = n
	}
	budgets, err := PlanWoR(r, k, counts)
	if err != nil {
		return dst, err
	}
	return c.fanOut(ctx, r, 1, hosts, shards, budgets, lo, hi, dst)
}

// PoolHot reports whether a WR query for (lo, hi, k) would be served
// entirely from precomputed pool inventory: exactly one shard overlaps
// the range (so the whole budget lands there deterministically) and
// that shard's pool holds at least k draws for the window. The probe
// never consumes inventory; the HTTP layer uses it to route hot
// requests around the batch coalescer.
func (c *Coordinator) PoolHot(lo, hi float64, k int) bool {
	if c.opts.Pool == nil && c.opts.Service == nil {
		return false
	}
	if core.ValidateRange(lo, hi) != nil || k <= 0 {
		return false
	}
	hosts := c.view()
	shards := overlapping(hosts, lo, hi)
	if len(shards) != 1 {
		return false
	}
	return hosts[shards[0]].svc.PoolHot(dsName, lo, hi, k)
}

// Count returns |S ∩ [lo, hi]| summed across shards.
func (c *Coordinator) Count(ctx context.Context, lo, hi float64) (int, error) {
	hosts := c.view()
	total := 0
	for _, s := range overlapping(hosts, lo, hi) {
		n, err := hosts[s].svc.Count(ctx, dsName, lo, hi)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// RangeWeight returns the total weight of S ∩ [lo, hi] summed across
// shards.
func (c *Coordinator) RangeWeight(ctx context.Context, lo, hi float64) (float64, error) {
	hosts := c.view()
	total := 0.0
	for _, s := range overlapping(hosts, lo, hi) {
		w, err := hosts[s].svc.RangeWeight(ctx, dsName, lo, hi)
		if err != nil {
			return 0, err
		}
		total += w
	}
	return total, nil
}

// Insert routes the element to the shard owning its value. Boundaries
// absorb inserts falling in their interval; skew is corrected by the
// next rebalance on mutable coordinators.
func (c *Coordinator) Insert(ctx context.Context, value, weight float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: value = %v", core.ErrBadValue, value)
	}
	c.writeMu.RLock()
	defer c.writeMu.RUnlock()
	hosts := c.view()
	return hosts[owner(hosts, value)].svc.Insert(ctx, dsName, value, weight)
}

// Delete routes the removal to the shard owning the value.
func (c *Coordinator) Delete(ctx context.Context, value float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("%w: value = %v", core.ErrBadValue, value)
	}
	c.writeMu.RLock()
	defer c.writeMu.RUnlock()
	hosts := c.view()
	return hosts[owner(hosts, value)].svc.Delete(ctx, dsName, value)
}

// BulkLoad partitions the batch by owning shard and forwards one
// per-shard bulk append each. Mutable coordinators only.
func (c *Coordinator) BulkLoad(ctx context.Context, values, weights []float64) error {
	if !c.opts.Mutable {
		return fmt.Errorf("%w: %q", service.ErrNotMutable, c.name)
	}
	if weights != nil && len(weights) != len(values) {
		return fmt.Errorf("%w: %d values vs %d weights", core.ErrBadValue, len(values), len(weights))
	}
	c.writeMu.RLock()
	defer c.writeMu.RUnlock()
	hosts := c.view()
	byShard := make(map[int][2][]float64)
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: value = %v", core.ErrBadValue, v)
		}
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		s := owner(hosts, v)
		part := byShard[s]
		part[0] = append(part[0], v)
		part[1] = append(part[1], w)
		byShard[s] = part
	}
	for s, part := range byShard {
		if err := hosts[s].svc.BulkLoad(ctx, dsName, part[0], part[1]); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Batch answers queries concurrently on the worker pool, one Result per
// query in order. Each query gets its own rng stream split from r;
// per-query errors land in the Result rather than failing the batch.
func (c *Coordinator) Batch(ctx context.Context, r *core.Rand, queries []Query) []Result {
	results := make([]Result, len(queries))
	rands := make([]*core.Rand, len(queries))
	for i := range queries {
		rands[i] = r.Split()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.workers)
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			q := queries[i]
			if q.WoR {
				results[i].Samples, results[i].Err = c.SampleWoR(ctx, rands[i], q.Lo, q.Hi, q.K)
			} else {
				results[i].Samples, results[i].Err = c.Sample(ctx, rands[i], q.Lo, q.Hi, q.K)
			}
		}(i)
	}
	wg.Wait()
	return results
}

// Health sums the per-shard counters and reports each shard's view.
func (c *Coordinator) Health() Health {
	hosts := c.view()
	h := Health{Shards: len(hosts), Rebalances: int(c.rebalances.Value())}
	for _, hs := range hosts {
		sh := hs.svc.Health()
		h.PerShard = append(h.PerShard, sh)
		h.Aggregate.Requests += sh.Requests
		h.Aggregate.Failures += sh.Failures
		h.Aggregate.PanicsContained += sh.PanicsContained
		h.Aggregate.Downgrades += sh.Downgrades
		h.Aggregate.Rebuilds += sh.Rebuilds
		h.Aggregate.EMFaults += sh.EMFaults
		for _, d := range sh.Datasets {
			h.Len += d.Len
			if d.Degraded {
				h.Degraded++
			}
		}
	}
	return h
}

// WriteLagSeconds reports the largest estimated ingest drain lag across
// all shards, in seconds. A write shed by any one shard's saturated
// delta log gets a Retry-After quote covering the slowest rebuilder,
// which is the earliest moment a retried write routed to that shard can
// succeed.
func (c *Coordinator) WriteLagSeconds() float64 {
	var lag float64
	for _, hs := range c.view() {
		if l := hs.svc.WriteLagSeconds(); l > lag {
			lag = l
		}
	}
	return lag
}

// Downgrades returns every shard's downgrade events tagged with the
// shard index.
func (c *Coordinator) Downgrades() []Downgrade {
	var out []Downgrade
	for i, hs := range c.view() {
		for _, ev := range hs.svc.Downgrades() {
			out = append(out, Downgrade{Shard: i, Event: ev})
		}
	}
	return out
}

// imbalanced reports whether the current partition violates the
// configured imbalance factor: skewed writes have concentrated more
// than factor× the elements of the smallest shard into the largest.
func (c *Coordinator) imbalanced() bool {
	factor := c.opts.RebalanceFactor
	if factor < 0 {
		return false
	}
	if factor == 0 {
		factor = 4
	}
	hosts := c.view()
	if len(hosts) < 2 {
		return false
	}
	minLen, maxLen := math.MaxInt, 0
	for _, h := range hosts {
		n := 0
		for _, d := range h.svc.Health().Datasets {
			n += d.Len
		}
		if n < minLen {
			minLen = n
		}
		if n > maxLen {
			maxLen = n
		}
	}
	if minLen < 1 {
		minLen = 1
	}
	return float64(maxLen) > factor*float64(minLen)
}

// Rebalance re-partitions the dataset across opts.Shards fresh shards
// from its instantaneous live state: writes are paused (readers are
// not), every shard's live data is captured, new shard services are
// built over the re-cut boundaries, and the host view is swapped
// atomically before the retired services are closed. In-flight reads
// keep answering against the retired view — retirement stops writes
// and background rebuilds, never reads. Mutable coordinators only.
func (c *Coordinator) Rebalance(ctx context.Context) error {
	if !c.opts.Mutable {
		return fmt.Errorf("%w: %q", service.ErrNotMutable, c.name)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	start := time.Now()
	old := c.view()
	var vs, ws []float64
	for i := range old {
		v, w, err := old[i].svc.LiveData(dsName)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		vs = append(vs, v...)
		ws = append(ws, w...)
	}
	sv, sw := SortByValue(vs, ws)
	c.gen.Add(1)
	hosts, err := c.buildHosts(ctx, sv, sw)
	if err != nil {
		return err // the old partition keeps serving
	}
	c.hostsPtr.Store(&hosts)
	for i := range old {
		old[i].svc.Close()
	}
	c.rebalances.Inc()
	c.rebalanceH.Observe(time.Since(start).Seconds())
	c.log.Info("shard rebalance complete",
		slog.String("dataset", c.name),
		slog.Int("shards", len(hosts)),
		slog.Int("elements", len(sv)),
		slog.Duration("took", time.Since(start)))
	return nil
}

// rebalanceLoop is the background imbalance check.
func (c *Coordinator) rebalanceLoop() {
	defer c.bg.Done()
	t := time.NewTicker(c.opts.RebalanceInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			if !c.imbalanced() {
				continue
			}
			if err := c.Rebalance(context.Background()); err != nil {
				c.log.Warn("shard rebalance failed", slog.String("dataset", c.name), slog.String("err", err.Error()))
			}
		}
	}
}

// Close stops the background rebalancer and every shard's ingestion
// machinery. Reads keep answering from the last published state;
// writes fail with ingest.ErrClosed. Safe to call more than once.
func (c *Coordinator) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	close(c.stop)
	c.bg.Wait()
	for _, h := range c.view() {
		h.svc.Close()
	}
}
