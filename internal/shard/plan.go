// Exported partition and budget-splitting planners.
//
// The coordinator's correctness rests on three deterministic pieces:
// how a dataset is sorted and cut into contiguous shard runs, how a WR
// budget splits multinomially over in-range shard weights, and how a
// WoR budget splits hypergeometrically via a global rank draw. The
// cluster router (internal/cluster) replans the exact same splits
// against remote nodes, so all three are exported here and the
// Coordinator consumes them itself — one implementation, byte-identical
// everywhere it runs.
package shard

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/wor"
)

// SortByValue returns fresh copies of values and weights sorted by
// value, using the exact comparison and algorithm New applies before
// cutting shard runs. nil weights mean uniform (every weight 1). Ties
// are permuted deterministically for a given input order, so every
// process sorting the same arrays derives the same shard contents.
func SortByValue(values, weights []float64) (sv, sw []float64) {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return values[idx[x]] < values[idx[y]] })
	sv = make([]float64, len(values))
	sw = make([]float64, len(values))
	for i, j := range idx {
		sv[i] = values[j]
		if weights != nil {
			sw[i] = weights[j]
		} else {
			sw[i] = 1
		}
	}
	return sv, sw
}

// CutRuns cuts n sorted values into at most k contiguous [start, end)
// runs of near-equal size, advancing each cut past duplicates so equal
// values never straddle a boundary. Fewer than k runs come back when k
// exceeds the number of distinct values (a run never starts empty).
func CutRuns(sorted []float64, k int) [][2]int {
	if k > len(sorted) {
		k = len(sorted)
	}
	var runs [][2]int
	start := 0
	for i := 0; i < k && start < len(sorted); i++ {
		end := start + (len(sorted)-start)/(k-i)
		if end <= start {
			end = start + 1
		}
		for end < len(sorted) && sorted[end] == sorted[end-1] {
			end++
		}
		runs = append(runs, [2]int{start, end})
		start = end
	}
	return runs
}

// RunBounds returns the half-open ownership interval [lo, hi) of run i:
// the first run extends to -inf, the last to +inf, and interior
// boundaries sit on the first value of the next run — the exact
// intervals the coordinator's hosts carry, so routing by value agrees
// across processes.
func RunBounds(sorted []float64, runs [][2]int, i int) (lo, hi float64) {
	lo = math.Inf(-1)
	if i > 0 {
		lo = sorted[runs[i][0]]
	}
	hi = math.Inf(1)
	if i < len(runs)-1 {
		hi = sorted[runs[i+1][0]]
	}
	return lo, hi
}

// PlanWR draws per-shard WR budgets summing to k, distributed
// Multinomial(k, weights/Σweights) on r — the paper's weighted
// canonical-decomposition split lifted to shards. Randomness
// consumption is exactly rng.Multinomial's; errors carry the
// coordinator's typed vocabulary.
func PlanWR(r *core.Rand, k int, weights []float64) ([]int, error) {
	budgets, err := rng.Multinomial(r, k, weights)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadWeight, err)
	}
	return budgets, nil
}

// PlanWoR draws per-shard WoR budgets for a global without-replacement
// sample of size k over shards holding counts[i] qualifying elements
// each: a single uniform WoR rank draw over the total (wor.UniformWoR,
// Floyd) bucketed by shard prefix counts realises the multivariate
// hypergeometric law exactly. k exceeding the total (or an empty
// range) returns core.ErrSampleTooLarge; k <= 0 returns all-zero
// budgets, consuming no randomness.
func PlanWoR(r *core.Rand, k int, counts []int) ([]int, error) {
	total := 0
	for _, n := range counts {
		total += n
	}
	if k > total || total == 0 {
		return nil, core.ErrSampleTooLarge
	}
	budgets := make([]int, len(counts))
	if k <= 0 {
		return budgets, nil
	}
	ranks, err := wor.UniformWoR(r, total, k)
	if err != nil {
		return nil, err
	}
	for _, rank := range ranks {
		for i, n := range counts {
			if rank < n {
				budgets[i]++
				break
			}
			rank -= n
		}
	}
	return budgets, nil
}
