package shard

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
)

func multiFixture(t *testing.T, n, shards int) *Coordinator {
	t.Helper()
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = float64(1 + (i*7)%13)
	}
	c, err := New(context.Background(), "multi", values, weights, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSampleMultiMatchesScalar is the batching determinism contract:
// a request answered inside a batch must be byte-identical to the same
// request answered alone through SampleInto / SampleWoRInto with an
// identically seeded stream.
func TestSampleMultiMatchesScalar(t *testing.T) {
	c := multiFixture(t, 4096, 4)
	ctx := context.Background()

	type spec struct {
		lo, hi float64
		k      int
		wor    bool
		seed   uint64
	}
	specs := []spec{
		{100, 3000, 16, false, 1},
		{0, 4095, 64, false, 2},
		{2000, 2100, 8, true, 3},
		{50, 60, 0, false, 4},     // k = 0: empty result, no randomness
		{100, 3000, 16, true, 5},  // same range as first, different mode
		{9000, 9999, 4, false, 6}, // empty range: ErrEmptyRange
	}

	reqs := make([]*MultiQuery, len(specs))
	for i, sp := range specs {
		reqs[i] = &MultiQuery{Lo: sp.lo, Hi: sp.hi, K: sp.k, WoR: sp.wor, R: core.NewRand(sp.seed)}
	}
	c.SampleMulti(ctx, reqs)

	for i, sp := range specs {
		var want []float64
		var wantErr error
		if sp.wor {
			want, wantErr = c.SampleWoRInto(ctx, core.NewRand(sp.seed), sp.lo, sp.hi, sp.k, nil)
		} else {
			want, wantErr = c.SampleInto(ctx, core.NewRand(sp.seed), sp.lo, sp.hi, sp.k, nil)
		}
		q := reqs[i]
		if (q.Err == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(q.Err, wantErr)) {
			t.Fatalf("req %d: err %v, scalar err %v", i, q.Err, wantErr)
		}
		if len(q.Out) != len(want) {
			t.Fatalf("req %d: %d samples, scalar %d", i, len(q.Out), len(want))
		}
		for j := range want {
			if q.Out[j] != want[j] {
				t.Fatalf("req %d sample %d: batched %v != scalar %v", i, j, q.Out[j], want[j])
			}
		}
	}
}

// TestSampleMultiRepeatedBatch re-runs batches with reused buffers to
// exercise the pooled partials, and checks every sample stays in range.
func TestSampleMultiRepeatedBatch(t *testing.T) {
	c := multiFixture(t, 2048, 3)
	ctx := context.Background()
	reqs := make([]*MultiQuery, 8)
	for i := range reqs {
		reqs[i] = &MultiQuery{}
	}
	for round := 0; round < 20; round++ {
		for i := range reqs {
			*reqs[i] = MultiQuery{
				Lo: float64(10 * i), Hi: float64(1500 + 10*i), K: 8 + i,
				WoR: i%2 == 1,
				R:   core.NewRand(uint64(round*100 + i)),
				Dst: reqs[i].Dst[:0],
			}
		}
		c.SampleMulti(ctx, reqs)
		for i, q := range reqs {
			if q.Err != nil {
				t.Fatalf("round %d req %d: %v", round, i, q.Err)
			}
			if len(q.Out) != 8+i {
				t.Fatalf("round %d req %d: %d samples, want %d", round, i, len(q.Out), 8+i)
			}
			for _, v := range q.Out {
				if v < float64(10*i) || v > float64(1500+10*i) {
					t.Fatalf("round %d req %d: sample %v out of range", round, i, v)
				}
			}
			reqs[i].Dst = q.Out // recycle capacity next round
		}
	}
}
