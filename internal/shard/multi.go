package shard

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/wor"
)

// MultiQuery is one request in a coalesced batch. Each request keeps
// its own rng stream (R) and result buffer, so the answer is exactly
// what SampleInto / SampleWoRInto would produce with the same stream —
// batching shares structure traversal and scratch, never randomness.
type MultiQuery struct {
	Lo, Hi float64
	K      int
	WoR    bool
	R      *core.Rand
	// Dst is the caller-owned buffer samples are appended to; Out is
	// the extended slice (Out == Dst on error).
	Dst []float64
	Out []float64
	Err error
}

// multiPiece is one (request, shard) work unit of a batch.
type multiPiece struct {
	req int
	job service.MultiJob
	buf *[]float64
}

// SampleMulti answers a batch of requests in three phases: per-request
// planning (validation, budget split, stream splits — consuming each
// request's own R in exactly the order SampleInto/SampleWoRInto
// would), per-shard grouped execution (all pieces bound for a shard
// run through one service.SampleMulti call, sharing a snapshot and
// arena), and per-request merge (partials concatenated in ascending
// shard order — the same order fanOut issues jobs — then shuffled with
// the request's R). Because every random draw comes from the same
// stream in the same sequence, each request's Out is byte-identical to
// the scalar path's; errors land per request in Err.
func (c *Coordinator) SampleMulti(ctx context.Context, reqs []*MultiQuery) {
	hosts := c.view()
	shardPieces := make([][]*multiPiece, len(hosts))
	reqPieces := make([][]*multiPiece, len(reqs))
	opsSeen := [2]bool{}

	// Phase 1: plan each request in order on its own stream.
	for qi, q := range reqs {
		q.Out, q.Err = q.Dst, nil
		if err := core.ValidateRange(q.Lo, q.Hi); err != nil {
			q.Err = err
			continue
		}
		if err := ctx.Err(); err != nil {
			q.Err = err
			continue
		}
		shards := overlapping(hosts, q.Lo, q.Hi)
		var budgets []int
		if q.WoR {
			counts := make([]int, len(shards))
			total := 0
			for i, s := range shards {
				n, err := hosts[s].svc.Count(ctx, dsName, q.Lo, q.Hi)
				if err != nil {
					q.Err = err
					break
				}
				counts[i] = n
				total += n
			}
			if q.Err != nil {
				continue
			}
			if q.K > total || total == 0 {
				q.Err = core.ErrSampleTooLarge
				continue
			}
			if q.K <= 0 {
				continue
			}
			ranks, err := wor.UniformWoR(q.R, total, q.K)
			if err != nil {
				q.Err = err
				continue
			}
			budgets = make([]int, len(shards))
			for _, rank := range ranks {
				for i := range shards {
					if rank < counts[i] {
						budgets[i]++
						break
					}
					rank -= counts[i]
				}
			}
		} else {
			if q.K <= 0 {
				continue
			}
			if len(shards) == 1 {
				// Mirror of SampleInto's single-shard fast path: the split
				// is deterministic and consumes no randomness, so skipping
				// RangeWeight + Multinomial keeps the coalesced answer
				// byte-identical to the scalar path per request id. An
				// empty intersection surfaces from the kernel draw.
				opsSeen[0] = true
				p := &multiPiece{req: qi}
				p.job = service.MultiJob{R: q.R.Split(), Lo: q.Lo, Hi: q.Hi, K: q.K}
				shardPieces[shards[0]] = append(shardPieces[shards[0]], p)
				reqPieces[qi] = append(reqPieces[qi], p)
				continue
			}
			weights := make([]float64, len(shards))
			total := 0.0
			for i, s := range shards {
				w, err := hosts[s].svc.RangeWeight(ctx, dsName, q.Lo, q.Hi)
				if err != nil {
					q.Err = err
					break
				}
				weights[i] = w
				total += w
			}
			if q.Err != nil {
				continue
			}
			if !(total > 0) {
				q.Err = core.ErrEmptyRange
				continue
			}
			var err error
			budgets, err = rng.Multinomial(q.R, q.K, weights)
			if err != nil {
				q.Err = fmt.Errorf("%w: %v", core.ErrBadWeight, err)
				continue
			}
		}
		op := 0
		if q.WoR {
			op = 1
		}
		opsSeen[op] = true
		// Split one stream per positive-budget shard in ascending shard
		// order — the exact sequence fanOut consumes on the scalar path.
		for i, s := range shards {
			if budgets[i] <= 0 {
				continue
			}
			p := &multiPiece{req: qi}
			p.job = service.MultiJob{R: q.R.Split(), Lo: q.Lo, Hi: q.Hi, K: budgets[i], WoR: q.WoR}
			shardPieces[s] = append(shardPieces[s], p)
			reqPieces[qi] = append(reqPieces[qi], p)
		}
	}

	fanStart := time.Now()

	// Phase 2: one grouped service pass per shard, shards in parallel
	// on the bounded worker pool. Piece streams were pre-split, so the
	// schedule cannot influence any request's randomness.
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.workers)
	for s := range shardPieces {
		ps := shardPieces[s]
		if len(ps) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, ps []*multiPiece) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			jobs := make([]*service.MultiJob, len(ps))
			for i, p := range ps {
				bp := partPool.Get().(*[]float64)
				p.buf = bp
				p.job.Dst = (*bp)[:0]
				jobs[i] = &p.job
			}
			hosts[s].svc.SampleMulti(ctx, dsName, jobs)
		}(s, ps)
	}
	wg.Wait()
	for op, seen := range opsSeen {
		if seen {
			c.fanout[op].Observe(time.Since(fanStart).Seconds())
		}
	}

	// Phase 3: merge each request's partials in issue order and shuffle
	// the appended tail with the request's own stream — the scalar
	// path's final consumption on R.
	for qi, q := range reqs {
		ps := reqPieces[qi]
		if len(ps) == 0 {
			continue
		}
		mergeStart := time.Now()
		var jerr error
		total := 0
		for _, p := range ps {
			if p.job.Err != nil && jerr == nil {
				jerr = p.job.Err
			}
			total += len(p.job.Out)
		}
		if jerr != nil {
			q.Err = jerr
			q.Out = q.Dst
		} else {
			base := len(q.Dst)
			out := slices.Grow(q.Dst, total)
			for _, p := range ps {
				out = append(out, p.job.Out...)
			}
			tail := out[base:]
			q.R.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
			q.Out = out
			c.merge.Observe(time.Since(mergeStart).Seconds())
		}
		for _, p := range ps {
			if p.buf != nil {
				*p.buf = p.job.Out[:0]
				partPool.Put(p.buf)
				p.buf = nil
			}
		}
	}
}
