package shard

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/service"
)

func TestCoordinatorEstimate(t *testing.T) {
	ctx := context.Background()
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = float64(i)
	}
	c, err := New(ctx, "est", vals, nil, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := core.NewRand(21)

	// COUNT over [0, 4999] spans two shard boundaries: exact 5000 of
	// 20000. The full-range draws split multinomially over the shards.
	res, err := c.Estimate(ctx, r, service.EstimateRequest{Op: estimate.OpCount, Lo: 0, Hi: 4999, K: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Estimate-5000) / 5000; rel > 0.15 {
		t.Fatalf("count estimate %v off by %.3f relative", res.Estimate, rel)
	}
	if res.CILo > 5000 || 5000 > res.CIHi {
		t.Fatalf("interval [%v, %v] misses 5000", res.CILo, res.CIHi)
	}
	if res.QError < 1 || res.QBound <= 1 {
		t.Fatalf("q-error %v / bound %v not populated", res.QError, res.QBound)
	}

	// SUM over a range crossing shards: exact 5000·(5000+9999)/2.
	exactSum := 5000.0 * (5000 + 9999) / 2
	res, err = c.Estimate(ctx, r, service.EstimateRequest{Op: estimate.OpSum, Lo: 5000, Hi: 9999, K: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Estimate-exactSum) / exactSum; rel > 0.10 {
		t.Fatalf("sum estimate %v off by %.3f relative (exact %v)", res.Estimate, rel, exactSum)
	}

	// AVG over the same range ≈ 7499.5.
	res, err = c.Estimate(ctx, r, service.EstimateRequest{Op: estimate.OpAvg, Lo: 5000, Hi: 9999, K: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate < 7300 || res.Estimate > 7700 {
		t.Fatalf("avg estimate %v implausible for [5000,9999]", res.Estimate)
	}

	// DISTINCT merges the four per-shard sketches: 20000 distinct values
	// well past the default sketch capacity.
	res, err = c.Estimate(ctx, r, service.EstimateRequest{Op: estimate.OpDistinct, Conf: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("sketched cross-shard distinct reported exact")
	}
	if rel := math.Abs(res.Estimate-20000) / 20000; rel > 0.20 {
		t.Fatalf("distinct estimate %v off by %.3f relative", res.Estimate, rel)
	}
	if res.CILo > 20000 || 20000 > res.CIHi {
		t.Fatalf("99%% interval [%v, %v] misses 20000", res.CILo, res.CIHi)
	}

	// Typed validation survives the fan-out.
	if _, err = c.Estimate(ctx, r, service.EstimateRequest{Op: estimate.OpCount, Lo: 5, Hi: 1}); !errors.Is(err, core.ErrBadRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if _, err = c.Estimate(ctx, r, service.EstimateRequest{Op: estimate.OpAvg, Lo: 1e9, Hi: 2e9}); !errors.Is(err, core.ErrEmptyRange) {
		t.Fatalf("empty-range avg: %v", err)
	}
}

func TestCoordinatorEstimateMutableStream(t *testing.T) {
	ctx := context.Background()
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(i)
	}
	c, err := New(ctx, "est-mut", vals, nil, Options{
		Shards:  2,
		Mutable: true,
		Ingest:  service.MutableOptions{RebuildThreshold: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := core.NewRand(23)

	// Stream new distinct values into both shards' overlays; the union
	// of base sketches and stream samples must count them immediately.
	for i := 0; i < 64; i++ {
		if err := c.Insert(ctx, float64(1000+i), 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(ctx, float64(-1000-i), 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Estimate(ctx, r, service.EstimateRequest{Op: estimate.OpDistinct})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Estimate != 384 {
		t.Fatalf("mutable distinct: %+v, want exact 384 (256 base + 128 streamed)", res)
	}
}
