package shard

import (
	"context"
	"testing"

	"repro/internal/core"
)

// Hot-path benchmarks for the bench-json pipeline: the sharded engine's
// single-query and batched paths, with -benchmem quantifying per-request
// allocation pressure (budget split, fan-out, shuffle-merge).

func benchCoordinator(b *testing.B, shards int) *Coordinator {
	b.Helper()
	n := 1 << 16
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
		weights[i] = 1 + float64((i*7)%13)
	}
	c, err := New(context.Background(), "bench", values, weights, Options{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkShardSample(b *testing.B) {
	c := benchCoordinator(b, 4)
	r := core.NewRand(1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := c.Sample(ctx, r, 1000, 50000, 16)
		if err != nil || len(out) != 16 {
			b.Fatal("bad sample")
		}
	}
}

func BenchmarkShardBatch(b *testing.B) {
	c := benchCoordinator(b, 4)
	r := core.NewRand(1)
	ctx := context.Background()
	queries := make([]Query, 16)
	for i := range queries {
		queries[i] = Query{Lo: float64(i * 1000), Hi: float64(i*1000 + 20000), K: 8}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := c.Batch(ctx, r, queries)
		for _, res := range results {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}
