//go:build race

package race

// Enabled reports whether the build is race-instrumented.
const Enabled = true
