//go:build !race

// Package race exposes whether the race detector instrumented this
// build. Allocation-count assertions consult it: the detector's
// shadow-memory bookkeeping allocates, so tests pinning allocs/op skip
// the count check (while still exercising the code) under -race.
package race

// Enabled reports whether the build is race-instrumented.
const Enabled = false
