package rangetree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func makePoints(n, d int, seed uint64) ([][]float64, []float64) {
	r := rng.New(seed)
	pts := make([][]float64, n)
	w := make([]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
		w[i] = r.Float64()*3 + 0.2
	}
	return pts, w
}

func randRect(r *rng.Source, d int) Rect {
	q := Rect{Min: make([]float64, d), Max: make([]float64, d)}
	for j := 0; j < d; j++ {
		a, b := r.Float64(), r.Float64()
		if a > b {
			a, b = b, a
		}
		q.Min[j], q.Max[j] = a, b
	}
	return q
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil, WalkMode); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([][]float64{{1}}, []float64{1, 2}, WalkMode); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New([][]float64{{1, 2}, {3}}, []float64{1, 1}, WalkMode); err == nil {
		t.Fatal("ragged dims accepted")
	}
	if _, err := New([][]float64{{1}}, []float64{-1}, WalkMode); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := New([][]float64{{}}, []float64{1}, WalkMode); err == nil {
		t.Fatal("zero-dim accepted")
	}
}

func TestReportMatchesBruteForce(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		pts, w := makePoints(200, d, uint64(d))
		tr, err := New(pts, w, WalkMode)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(100 + d))
		for trial := 0; trial < 40; trial++ {
			q := randRect(r, d)
			got := tr.Report(q, nil)
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if q.Contains(p) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("d=%d: report %d, want %d", d, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("d=%d: mismatch at %d", d, i)
				}
			}
		}
	}
}

func TestCoverSizePolylog(t *testing.T) {
	const n = 1 << 12
	pts, w := makePoints(n, 2, 7)
	tr, err := New(pts, w, WalkMode)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	logn := math.Log2(n)
	bound := int(4 * logn * logn) // generous constant on O(log² n)
	for trial := 0; trial < 100; trial++ {
		q := randRect(r, 2)
		if got := tr.CoverSize(q); got > bound {
			t.Fatalf("cover size %d exceeds %d", got, bound)
		}
	}
}

func chi2Crit(dof int) float64 {
	z := 3.719
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func testDistribution(t *testing.T, mode Mode, seed uint64) {
	t.Helper()
	const n = 64
	pts, w := makePoints(n, 2, seed)
	tr, err := New(pts, w, mode)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{0.15, 0.15}, Max: []float64{0.85, 0.85}}
	inside := map[int]float64{}
	total := 0.0
	for i, p := range pts {
		if q.Contains(p) {
			inside[i] = w[i]
			total += w[i]
		}
	}
	if len(inside) < 5 {
		t.Fatalf("setup: only %d inside", len(inside))
	}
	r := rng.New(seed + 1)
	const draws = 300000
	counts := map[int]int{}
	out, ok := tr.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, idx := range out {
		if _, in := inside[idx]; !in {
			t.Fatalf("sampled %d outside query", idx)
		}
		counts[idx]++
	}
	chi2 := 0.0
	for idx, wi := range inside {
		expected := draws * wi / total
		diff := float64(counts[idx]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(len(inside)-1) {
		t.Fatalf("mode %v chi2 = %v", mode, chi2)
	}
	if got := tr.RangeWeight(q); math.Abs(got-total) > 1e-9 {
		t.Fatalf("RangeWeight = %v, want %v", got, total)
	}
}

func TestWalkModeDistribution(t *testing.T)  { testDistribution(t, WalkMode, 20) }
func TestAliasModeDistribution(t *testing.T) { testDistribution(t, AliasMode, 30) }

func TestDistribution3D(t *testing.T) {
	const n = 48
	pts, w := makePoints(n, 3, 40)
	tr, err := New(pts, w, WalkMode)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{0.1, 0.1, 0.1}, Max: []float64{0.9, 0.9, 0.9}}
	inside := map[int]float64{}
	total := 0.0
	for i, p := range pts {
		if q.Contains(p) {
			inside[i] = w[i]
			total += w[i]
		}
	}
	r := rng.New(41)
	const draws = 200000
	counts := map[int]int{}
	out, ok := tr.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, idx := range out {
		counts[idx]++
	}
	chi2 := 0.0
	for idx, wi := range inside {
		expected := draws * wi / total
		diff := float64(counts[idx]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(len(inside)-1) {
		t.Fatalf("3D chi2 = %v", chi2)
	}
}

func TestEmptyQuery(t *testing.T) {
	pts, w := makePoints(32, 2, 50)
	tr, err := New(pts, w, WalkMode)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{5, 5}, Max: []float64{6, 6}}
	if _, ok := tr.Query(rng.New(51), q, 3, nil); ok {
		t.Fatal("empty query returned ok")
	}
	if got := tr.RangeWeight(q); got != 0 {
		t.Fatalf("RangeWeight = %v", got)
	}
}

func TestDuplicateCoordsDistinctWeights(t *testing.T) {
	// Regression guard for the leaf-alignment hazard: equal coordinates
	// with very different weights must keep their own weights.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 2}, {2, 1}}
	w := []float64{100, 1, 1, 1}
	tr, err := New(pts, w, WalkMode)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{1, 1}, Max: []float64{1, 1}} // pts 0 and 1 only
	r := rng.New(52)
	const draws = 50000
	counts := map[int]int{}
	out, ok := tr.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, idx := range out {
		if idx != 0 && idx != 1 {
			t.Fatalf("sampled %d outside query", idx)
		}
		counts[idx]++
	}
	// Point 0 should take ~100/101 of samples.
	p0 := float64(counts[0]) / draws
	if math.Abs(p0-100.0/101) > 0.01 {
		t.Fatalf("heavy duplicate sampled with frequency %v, want ~0.990", p0)
	}
}

func TestSamplesAlwaysInsideProperty(t *testing.T) {
	pts, w := makePoints(128, 2, 60)
	tr, err := New(pts, w, AliasMode)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(61)
	f := func(raw [4]uint8) bool {
		q := Rect{
			Min: []float64{float64(raw[0]) / 256, float64(raw[1]) / 256},
			Max: []float64{float64(raw[0])/256 + float64(raw[2])/256, float64(raw[1])/256 + float64(raw[3])/256},
		}
		out, ok := tr.Query(r, q, 6, nil)
		if !ok {
			return true
		}
		for _, idx := range out {
			if !q.Contains(pts[idx]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueryWalk(b *testing.B)  { benchQuery(b, WalkMode) }
func BenchmarkQueryAlias(b *testing.B) { benchQuery(b, AliasMode) }

func benchQuery(b *testing.B, mode Mode) {
	pts, w := makePoints(1<<14, 2, 1)
	tr, err := New(pts, w, mode)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	q := Rect{Min: []float64{0.25, 0.25}, Max: []float64{0.75, 0.75}}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = tr.Query(r, q, 64, dst[:0])
	}
}
