package rangetree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLayeredErrors(t *testing.T) {
	if _, err := NewLayered(nil, nil, false); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewLayered([][]float64{{1, 2, 3}}, []float64{1}, false); err == nil {
		t.Fatal("3-D accepted")
	}
	if _, err := NewLayered([][]float64{{1, 2}}, []float64{0}, false); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewLayered([][]float64{{1, 2}}, []float64{1, 2}, false); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLayeredRangeWeightMatchesBruteForce(t *testing.T) {
	pts, w := makePoints(300, 2, 80)
	for _, engines := range []bool{false, true} {
		l, err := NewLayered(pts, w, engines)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(81)
		f := func(raw [4]uint8) bool {
			q := Rect{
				Min: []float64{float64(raw[0]) / 256, float64(raw[1]) / 256},
				Max: []float64{float64(raw[0])/256 + float64(raw[2])/200, float64(raw[1])/256 + float64(raw[3])/200},
			}
			want := 0.0
			for i, p := range pts {
				if q.Contains(p) {
					want += w[i]
				}
			}
			_ = r
			return math.Abs(l.RangeWeight(q)-want) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("engines=%v: %v", engines, err)
		}
	}
}

func TestLayeredDistributionWeighted(t *testing.T) {
	const n = 64
	pts, w := makePoints(n, 2, 82)
	for _, engines := range []bool{false, true} {
		l, err := NewLayered(pts, w, engines)
		if err != nil {
			t.Fatal(err)
		}
		q := Rect{Min: []float64{0.15, 0.15}, Max: []float64{0.85, 0.85}}
		inside := map[int]float64{}
		total := 0.0
		for i, p := range pts {
			if q.Contains(p) {
				inside[i] = w[i]
				total += w[i]
			}
		}
		if len(inside) < 5 {
			t.Fatal("setup: too few inside")
		}
		r := rng.New(83)
		const draws = 300000
		counts := map[int]int{}
		out, ok := l.Query(r, q, draws, nil)
		if !ok {
			t.Fatal("empty")
		}
		for _, idx := range out {
			if _, in := inside[idx]; !in {
				t.Fatalf("engines=%v: sampled %d outside", engines, idx)
			}
			counts[idx]++
		}
		chi2 := 0.0
		for idx, wi := range inside {
			expected := draws * wi / total
			diff := float64(counts[idx]) - expected
			chi2 += diff * diff / expected
		}
		if chi2 > chi2Crit(len(inside)-1) {
			t.Fatalf("engines=%v: chi2 = %v", engines, chi2)
		}
	}
}

func TestLayeredUniformFastPath(t *testing.T) {
	const n = 80
	pts, _ := makePoints(n, 2, 84)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	l, err := NewLayered(pts, w, false)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{0.1, 0.1}, Max: []float64{0.9, 0.9}}
	var inside []int
	for i, p := range pts {
		if q.Contains(p) {
			inside = append(inside, i)
		}
	}
	r := rng.New(85)
	const draws = 200000
	counts := map[int]int{}
	out, ok := l.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("empty")
	}
	for _, idx := range out {
		counts[idx]++
	}
	expected := float64(draws) / float64(len(inside))
	for _, idx := range inside {
		if math.Abs(float64(counts[idx])-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("point %d count %d, expected ~%v", idx, counts[idx], expected)
		}
	}
}

func TestLayeredCoverSmallerThanUncascaded(t *testing.T) {
	const n = 1 << 12
	pts, w := makePoints(n, 2, 86)
	l, err := NewLayered(pts, w, false)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(pts, w, WalkMode)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(87)
	logn := math.Log2(n)
	sumL, sumU := 0, 0
	for trial := 0; trial < 50; trial++ {
		q := randRect(r, 2)
		cl := l.CoverSize(q)
		cu := rt.CoverSize(q)
		sumL += cl
		sumU += cu
		// Layered cover is bounded by the x-canonical count O(log n).
		if cl > 2*int(logn)+2 {
			t.Fatalf("layered cover %d exceeds O(log n)", cl)
		}
	}
	if sumL >= sumU {
		t.Fatalf("layered covers (%d total) not smaller than uncascaded (%d)", sumL, sumU)
	}
}

func TestLayeredEmptyQueries(t *testing.T) {
	pts, w := makePoints(50, 2, 88)
	l, err := NewLayered(pts, w, false)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(89)
	for _, q := range []Rect{
		{Min: []float64{5, 5}, Max: []float64{6, 6}},
		{Min: []float64{0.5, 5}, Max: []float64{0.6, 6}},
		{Min: []float64{0.5, 0.5}, Max: []float64{0.4, 0.4}},
	} {
		if _, ok := l.Query(r, q, 2, nil); ok {
			t.Fatalf("query %v returned ok", q)
		}
		if got := l.RangeWeight(q); got != 0 {
			t.Fatalf("RangeWeight = %v", got)
		}
	}
}

func TestLayeredMatchesUncascadedDistribution(t *testing.T) {
	const n = 40
	pts, w := makePoints(n, 2, 90)
	l, err := NewLayered(pts, w, false)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(pts, w, WalkMode)
	if err != nil {
		t.Fatal(err)
	}
	q := Rect{Min: []float64{0.2, 0.2}, Max: []float64{0.8, 0.8}}
	r := rng.New(91)
	const draws = 150000
	a := map[int]int{}
	bCounts := map[int]int{}
	outL, okL := l.Query(r, q, draws, nil)
	outU, okU := rt.Query(r, q, draws, nil)
	if !okL || !okU {
		t.Fatal("empty")
	}
	for _, idx := range outL {
		a[idx]++
	}
	for _, idx := range outU {
		bCounts[idx]++
	}
	// Two-sample chi2.
	chi2 := 0.0
	dof := 0
	for idx := range a {
		x, y := float64(a[idx]), float64(bCounts[idx])
		if x+y == 0 {
			continue
		}
		diff := x - y
		chi2 += diff * diff / (x + y)
		dof++
	}
	if chi2 > chi2Crit(dof-1) {
		t.Fatalf("layered vs uncascaded chi2 = %v", chi2)
	}
}

func BenchmarkLayeredQuery(b *testing.B) {
	pts, w := makePoints(1<<16, 2, 1)
	l, err := NewLayered(pts, w, true)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	q := Rect{Min: []float64{0.25, 0.25}, Max: []float64{0.75, 0.75}}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = l.Query(r, q, 64, dst[:0])
	}
}
