// Package rangetree implements a multi-dimensional range tree and its IQS
// conversion — the second example under Theorem 5 of the paper:
//
//	"A range tree on S uses O(n log^{d−1} n) space and permits us to find
//	 a cover C_q of size O(log^d n) for every q. Theorem 5 yields a
//	 structure for multi-dimensional weighted range sampling that uses
//	 O(n log^{d−1} n) space and guarantees O(log^d n + s) query time
//	 (improving the structure of Martinez [20])."
//
// The classic construction: a balanced BST over the first coordinate; each
// of its nodes carries a (d−1)-dimensional range tree over the elements in
// its subtree. A query decomposes into O(log n) canonical nodes per level,
// bottoming out at O(log^d n) last-level canonical nodes whose element
// sets are disjoint and union to S_q — an exact cover in the sense of
// Theorem 5 (footnote 4's duplication issue is remedied by sampling
// within the last-level trees only, where each element copy appears
// once per cover).
//
// Two sampling modes:
//
//	WalkMode (default): last-level canonical nodes are sampled by the
//	  §3.2 top-down descent — O(log^d n + s·log n) query, matching the
//	  Martinez [20] comparator; space O(n log^{d−1} n).
//	AliasMode: each last-level tree carries a Lemma 2 engine —
//	  O(log^d n + s) query exactly as Theorem 5 states, at the price of
//	  one extra log factor of space.
package rangetree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/alias"
	"repro/internal/bst"
	"repro/internal/rangesample"
	"repro/internal/rng"
)

// Rect is an axis-parallel rectangle [Min[i], Max[i]] per dimension.
type Rect struct {
	Min, Max []float64
}

// Contains reports whether p lies in the rectangle.
func (q Rect) Contains(p []float64) bool {
	for i := range q.Min {
		if p[i] < q.Min[i] || p[i] > q.Max[i] {
			return false
		}
	}
	return true
}

// Mode selects the in-cover sampling strategy.
type Mode int

const (
	// WalkMode samples within last-level canonical nodes by weighted
	// top-down descent: O(log n) per sample, minimal space.
	WalkMode Mode = iota
	// AliasMode attaches a Lemma 2 alias engine to every last-level
	// tree: O(1) per sample after the cover, one extra log factor of
	// space.
	AliasMode
)

// ErrEmpty is returned when building over no points.
var ErrEmpty = errors.New("rangetree: empty input")

// Tree is a d-dimensional range tree with IQS sampling.
type Tree struct {
	dim    int
	pts    [][]float64
	wts    []float64
	root   *level
	mode   Mode
	numLvl int // diagnostic: number of level structures built
}

// level is a range tree over one axis for a subset of elements.
type level struct {
	axis  int
	tree  *bst.Tree
	elems []int32 // element ids in this tree's leaf order
	// secondary[id] is the (axis+1)-level structure over the elements in
	// the subtree of node id; nil slices on the last level.
	secondary []*level
	// pos is the Lemma 2 engine over this tree's leaf weights
	// (AliasMode, last level only).
	pos *rangesample.PosSampler
}

// New builds the range tree over pts with weights. All points must share
// dimension d ≥ 1. Build time and space are O(n log^{d−1} n)
// (plus a log factor in AliasMode).
func New(pts [][]float64, weights []float64, mode Mode) (*Tree, error) {
	n := len(pts)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(weights) != n {
		return nil, errors.New("rangetree: points and weights length mismatch")
	}
	d := len(pts[0])
	if d == 0 {
		return nil, errors.New("rangetree: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("rangetree: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	for _, w := range weights {
		if !(w > 0) {
			return nil, errors.New("rangetree: weights must be positive and finite")
		}
	}
	t := &Tree{
		dim:  d,
		pts:  pts,
		wts:  weights,
		mode: mode,
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	var err error
	t.root, err = t.buildLevel(0, all)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// buildLevel builds the structure over elems for the given axis.
func (t *Tree) buildLevel(axis int, elems []int32) (*level, error) {
	t.numLvl++
	// Sort the element ids by this axis (ties by id, for determinism),
	// then hand the *pre-paired* arrays to bst.NewSorted so that leaf
	// position i is guaranteed to hold elems[i] — required when equal
	// coordinates carry distinct weights.
	sorted := append([]int32(nil), elems...)
	sort.Slice(sorted, func(a, b int) bool {
		ca, cb := t.pts[sorted[a]][axis], t.pts[sorted[b]][axis]
		if ca != cb {
			return ca < cb
		}
		return sorted[a] < sorted[b]
	})
	coords := make([]float64, len(sorted))
	ws := make([]float64, len(sorted))
	for i, id := range sorted {
		coords[i] = t.pts[id][axis]
		ws[i] = t.wts[id]
	}
	tr, err := bst.NewSorted(coords, ws)
	if err != nil {
		return nil, err
	}
	lv := &level{axis: axis, tree: tr, elems: sorted}
	if axis == t.dim-1 {
		if t.mode == AliasMode {
			leafW := make([]float64, len(lv.elems))
			for i, id := range lv.elems {
				leafW[i] = t.wts[id]
			}
			lv.pos = rangesample.NewPosSampler(leafW)
		}
		return lv, nil
	}
	// Intermediate level: secondary structure per node.
	lv.secondary = make([]*level, tr.NumNodes())
	for id := 0; id < tr.NumNodes(); id++ {
		lo, hi := tr.Span(bst.NodeID(id))
		sub := lv.elems[lo : hi+1]
		sec, err := t.buildLevel(axis+1, sub)
		if err != nil {
			return nil, err
		}
		lv.secondary[id] = sec
	}
	return lv, nil
}

// coverNode is one last-level canonical node.
type coverNode struct {
	lv   *level
	id   bst.NodeID
	wsum float64
}

// cover recursively decomposes q into last-level canonical nodes.
func (t *Tree) cover(lv *level, q Rect, dst []coverNode) []coverNode {
	iv := bst.Interval{Lo: q.Min[lv.axis], Hi: q.Max[lv.axis]}
	var scratch [64]bst.NodeID
	canon := lv.tree.CoverInterval(iv, scratch[:0])
	if lv.axis == t.dim-1 {
		for _, id := range canon {
			dst = append(dst, coverNode{lv: lv, id: id, wsum: subtreeWeight(lv, id)})
		}
		return dst
	}
	for _, id := range canon {
		dst = t.cover(lv.secondary[id], q, dst)
	}
	return dst
}

// subtreeWeight returns the true total weight of the elements under id,
// computed from the level's own element list alignment.
func subtreeWeight(lv *level, id bst.NodeID) float64 {
	return lv.tree.Weight(id)
}

// Query appends s independent weighted samples from S ∩ q to dst as
// original point indices. ok is false when the range is empty.
func (t *Tree) Query(r *rng.Source, q Rect, s int, dst []int) ([]int, bool) {
	if len(q.Min) != t.dim || len(q.Max) != t.dim {
		panic(fmt.Sprintf("rangetree: query dimension %d/%d, want %d", len(q.Min), len(q.Max), t.dim))
	}
	cov := t.cover(t.root, q, nil)
	if len(cov) == 0 {
		return dst, false
	}
	w := make([]float64, len(cov))
	for i, c := range cov {
		w[i] = c.wsum
	}
	counts := alias.MustNew(w).Counts(r, s)
	for i, cnt := range counts {
		if cnt == 0 {
			continue
		}
		c := cov[i]
		if t.mode == AliasMode {
			lo, hi := c.lv.tree.Span(c.id)
			var buf [64]int
			out := c.lv.pos.Query(r, lo, hi, cnt, buf[:0])
			for _, pos := range out {
				dst = append(dst, int(c.lv.elems[pos]))
			}
		} else {
			for j := 0; j < cnt; j++ {
				leaf := c.lv.tree.SampleLeaf(r, c.id)
				dst = append(dst, int(c.lv.elems[leaf]))
			}
		}
	}
	return dst, true
}

// RangeWeight returns the total weight of S ∩ q.
func (t *Tree) RangeWeight(q Rect) float64 {
	cov := t.cover(t.root, q, nil)
	sum := 0.0
	for _, c := range cov {
		sum += c.wsum
	}
	return sum
}

// CoverSize returns |C_q| for diagnostics (O(log^d n) by the range-tree
// guarantee).
func (t *Tree) CoverSize(q Rect) int {
	return len(t.cover(t.root, q, nil))
}

// Report appends all original indices of points in q (baseline/test
// helper).
func (t *Tree) Report(q Rect, dst []int) []int {
	cov := t.cover(t.root, q, nil)
	for _, c := range cov {
		lo, hi := c.lv.tree.Span(c.id)
		for pos := lo; pos <= hi; pos++ {
			dst = append(dst, int(c.lv.elems[pos]))
		}
	}
	return dst
}

// Len returns the number of points.
func (t *Tree) Len() int { return len(t.pts) }

// Dim returns the dimensionality.
func (t *Tree) Dim() int { return t.dim }

// NumLevels returns how many level structures were built (space
// diagnostic: O(n log^{d-1} n) total elements across levels).
func (t *Tree) NumLevels() int { return t.numLvl }
