package rangetree

import (
	"errors"
	"sort"

	"repro/internal/alias"
	"repro/internal/bst"
	"repro/internal/rangesample"
	"repro/internal/rng"
)

// Layered is the fractional-cascading variant of the 2-D range tree —
// footnote 5 of the paper:
//
//	"the query time can be further reduced to O(log^{d−1} n + s), by
//	 incorporating additional ideas based on fractional cascading."
//
// Construction (the classic layered range tree): a balanced BST over the
// x-coordinates; every node u stores the y-values of its subtree as a
// sorted array, plus two *bridge* arrays mapping each position in u's
// y-array to the smallest not-smaller position in each child's y-array.
// A query performs ONE binary search for [y1, y2] at the root; as the
// two x-paths descend, the y-range in every visited node follows from
// the parent's range through the bridges in O(1). Each canonical node u
// therefore knows its qualifying elements as a contiguous run of its
// y-array — a Lemma 4-style element-aligned range — with no per-node
// binary search.
//
// Query time: O(log n) to locate the cover (d = 2, so log^{d−1} n =
// log n), then O(1) per sample in the uniform-weight (WR) regime via
// position arithmetic, or O(log n) per sample for general weights
// through each node's weighted engine — with AliasEngines enabled,
// general weights are also O(1) per sample at one extra log factor of
// space. Space: O(n log n) for the arrays and bridges.
type Layered struct {
	pts    [][]float64
	wts    []float64
	xtree  *bst.Tree
	xelems []int32 // element ids in x-sorted order (xtree leaf order)
	// Per node (indexed by bst.NodeID): y-sorted element ids, weight
	// prefix sums, and bridges into the two children.
	ys       [][]int32
	prefix   [][]float64
	bridgeL  [][]int32
	bridgeR  [][]int32
	engines  []*rangesample.PosSampler // per-node weighted engines (optional)
	aliasOn  bool
	uniformW bool
}

// NewLayered builds the structure over 2-D points. aliasEngines selects
// whether per-node Lemma 2 engines are built for O(1)-per-sample
// weighted queries (costing one extra log factor of space); without
// them, weighted sampling within a node is done by inverse-CDF binary
// search over the node's weight prefix (O(log n) per sample), and
// uniform-weight inputs always use O(1) position arithmetic.
func NewLayered(pts [][]float64, weights []float64, aliasEngines bool) (*Layered, error) {
	n := len(pts)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(weights) != n {
		return nil, errors.New("rangetree: points and weights length mismatch")
	}
	for i, p := range pts {
		if len(p) != 2 {
			return nil, errors.New("rangetree: Layered requires 2-D points")
		}
		if !(weights[i] > 0) {
			return nil, errors.New("rangetree: weights must be positive and finite")
		}
	}
	l := &Layered{pts: pts, wts: weights, aliasOn: aliasEngines, uniformW: true}
	for _, w := range weights {
		if w != weights[0] {
			l.uniformW = false
			break
		}
	}
	// x-sorted element order, ties by id.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		xa, xb := pts[order[a]][0], pts[order[b]][0]
		if xa != xb {
			return xa < xb
		}
		return order[a] < order[b]
	})
	xs := make([]float64, n)
	xw := make([]float64, n)
	for i, id := range order {
		xs[i] = pts[id][0]
		xw[i] = weights[id]
	}
	xt, err := bst.NewSorted(xs, xw)
	if err != nil {
		return nil, err
	}
	l.xtree = xt
	l.xelems = order

	m := xt.NumNodes()
	l.ys = make([][]int32, m)
	l.prefix = make([][]float64, m)
	l.bridgeL = make([][]int32, m)
	l.bridgeR = make([][]int32, m)
	if aliasEngines {
		l.engines = make([]*rangesample.PosSampler, m)
	}
	l.buildNode(xt.Root())
	return l, nil
}

// buildNode fills ys/prefix/bridges bottom-up by merging children.
func (l *Layered) buildNode(id bst.NodeID) {
	t := l.xtree
	if t.IsLeaf(id) {
		lo, _ := t.Span(id)
		l.ys[id] = []int32{l.xelems[lo]}
	} else {
		left, right := t.Children(id)
		l.buildNode(left)
		l.buildNode(right)
		a, b := l.ys[left], l.ys[right]
		merged := make([]int32, 0, len(a)+len(b))
		bl := make([]int32, 0, len(a)+len(b)+1)
		br := make([]int32, 0, len(a)+len(b)+1)
		i, j := 0, 0
		for i < len(a) || j < len(b) {
			bl = append(bl, int32(i))
			br = append(br, int32(j))
			if j >= len(b) || (i < len(a) && l.yLess(a[i], b[j])) {
				merged = append(merged, a[i])
				i++
			} else {
				merged = append(merged, b[j])
				j++
			}
		}
		// Sentinel entries so a parent range ending at len(merged) maps
		// to the children's array ends.
		bl = append(bl, int32(len(a)))
		br = append(br, int32(len(b)))
		l.ys[id] = merged
		l.bridgeL[id] = bl
		l.bridgeR[id] = br
	}
	// Weight prefix over the node's y-order.
	ys := l.ys[id]
	pf := make([]float64, len(ys)+1)
	for i, e := range ys {
		pf[i+1] = pf[i] + l.wts[e]
	}
	l.prefix[id] = pf
	if l.aliasOn && !l.uniformW {
		w := make([]float64, len(ys))
		for i, e := range ys {
			w[i] = l.wts[e]
		}
		l.engines[id] = rangesample.NewPosSampler(w)
	}
}

// yLess orders elements by (y, id) — the order of every ys array.
func (l *Layered) yLess(a, b int32) bool {
	ya, yb := l.pts[a][1], l.pts[b][1]
	if ya != yb {
		return ya < yb
	}
	return a < b
}

// Len returns the number of points.
func (l *Layered) Len() int { return len(l.pts) }

// layeredCover is one canonical node with its cascaded y-range [a, b).
type layeredCover struct {
	id   bst.NodeID
	a, b int32
}

// cover collects the canonical x-nodes of [x1, x2] with their cascaded
// y-ranges for [y1, y2], in O(log n) total.
func (l *Layered) cover(q Rect, dst []layeredCover) []layeredCover {
	t := l.xtree
	// x positions.
	iv := bst.Interval{Lo: q.Min[0], Hi: q.Max[0]}
	xa, xb, ok := t.LeafRange(iv)
	if !ok {
		return dst
	}
	// Root y-range by binary search (the only binary search performed).
	root := t.Root()
	rootYs := l.ys[root]
	ya := int32(sort.Search(len(rootYs), func(i int) bool {
		return l.pts[rootYs[i]][1] >= q.Min[1]
	}))
	yb := int32(sort.Search(len(rootYs), func(i int) bool {
		return l.pts[rootYs[i]][1] > q.Max[1]
	}))
	if ya >= yb {
		return dst
	}
	return l.descend(root, int32(xa), int32(xb), ya, yb, dst)
}

// descend walks toward the canonical nodes, cascading the y-range.
func (l *Layered) descend(id bst.NodeID, xa, xb, ya, yb int32, dst []layeredCover) []layeredCover {
	if ya >= yb {
		return dst
	}
	t := l.xtree
	lo, hi := t.Span(id)
	if int32(lo) > xb || int32(hi) < xa {
		return dst
	}
	if xa <= int32(lo) && int32(hi) <= xb {
		return append(dst, layeredCover{id: id, a: ya, b: yb})
	}
	left, right := t.Children(id)
	// Cascade: the child's y-range follows from the bridges in O(1).
	bl, br := l.bridgeL[id], l.bridgeR[id]
	dst = l.descend(left, xa, xb, bl[ya], bl[yb], dst)
	return l.descend(right, xa, xb, br[ya], br[yb], dst)
}

// Query appends s independent weighted samples of the points in q to dst
// as original point indices. O(log n + s) for uniform weights or with
// alias engines; O(log n + s·log n) otherwise.
func (l *Layered) Query(r *rng.Source, q Rect, s int, dst []int) ([]int, bool) {
	var scratch [64]layeredCover
	cov := l.cover(q, scratch[:0])
	if len(cov) == 0 {
		return dst, false
	}
	w := make([]float64, len(cov))
	for i, c := range cov {
		w[i] = l.prefix[c.id][c.b] - l.prefix[c.id][c.a]
	}
	counts := alias.MustNew(w).Counts(r, s)
	for i, cnt := range counts {
		if cnt == 0 {
			continue
		}
		c := cov[i]
		switch {
		case l.uniformW:
			span := int(c.b - c.a)
			for j := 0; j < cnt; j++ {
				pos := int(c.a) + r.Intn(span)
				dst = append(dst, int(l.ys[c.id][pos]))
			}
		case l.aliasOn:
			var buf [64]int
			out := l.engines[c.id].Query(r, int(c.a), int(c.b)-1, cnt, buf[:0])
			for _, pos := range out {
				dst = append(dst, int(l.ys[c.id][pos]))
			}
		default:
			// Inverse-CDF binary search over the node's weight prefix.
			pf := l.prefix[c.id]
			base := pf[c.a]
			total := pf[c.b] - base
			for j := 0; j < cnt; j++ {
				x := base + r.Float64()*total
				pos := sort.Search(int(c.b-c.a), func(k int) bool {
					return pf[int(c.a)+k+1] > x
				})
				dst = append(dst, int(l.ys[c.id][int(c.a)+pos]))
			}
		}
	}
	return dst, true
}

// RangeWeight returns the total weight of points in q in O(log n).
func (l *Layered) RangeWeight(q Rect) float64 {
	var scratch [64]layeredCover
	cov := l.cover(q, scratch[:0])
	sum := 0.0
	for _, c := range cov {
		sum += l.prefix[c.id][c.b] - l.prefix[c.id][c.a]
	}
	return sum
}

// CoverSize returns the number of canonical nodes for q (O(log n) by the
// cascading bound, versus O(log² n) for the uncascaded tree).
func (l *Layered) CoverSize(q Rect) int {
	var scratch [64]layeredCover
	return len(l.cover(q, scratch[:0]))
}
