// Package fairnn implements r-fair nearest neighbour search — the
// motivating application of Section 2 (Benefit 2) and Section 7 of the
// paper. Given a query point q, an r-near query returns the points within
// distance r of q; the fair version returns a uniformly random such
// point, independent of all past queries' outputs (IQS with s = 1).
//
// Following the blueprint of Har-Peled–Mahabadi [17] and Aumüller et al.
// [6–8], the index hashes points into buckets and reduces the query to
// set union sampling (Theorem 8) over the buckets containing q, followed
// by a distance-rejection step. Where those papers use LSH, this package
// uses L randomly shifted uniform grids of cell width 2r (DESIGN.md
// substitution 3): a point within distance r of q lands in q's cell of a
// given grid with constant probability per axis, so with L = Θ(log n)
// grids every near point is in some shared cell with high probability.
// The candidate sets of different grids overlap heavily — exactly the
// regime set union sampling exists for.
//
// The guarantee is the standard LSH-style one: each query returns a
// uniform sample of R(q) := (∪ candidate cells) ∩ ball(q, r), which
// contains every near point with probability ≥ 1 − 1/poly(n); samples are
// independent across queries.
package fairnn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/setunion"
)

// ErrEmpty is returned when building over no points.
var ErrEmpty = errors.New("fairnn: empty input")

// Index is the fair r-near neighbour structure.
type Index struct {
	pts      [][]float64
	dim      int
	radius   float64
	numGrids int
	cellSize float64
	offsets  [][]float64
	// cellSet[g] maps a grid-g cell key to its set index in coll.
	cellSet []map[string]int
	coll    *setunion.Collection
	// maxAttemptsPerSample bounds the distance-rejection loop.
	maxAttempts int
}

// New builds the index over pts with the given radius. numGrids controls
// the recall/work trade (Θ(log n) recommended; minimum 1). seed drives
// the grid shifts and the set-union structure.
func New(pts [][]float64, radius float64, numGrids int, seed uint64) (*Index, error) {
	n := len(pts)
	if n == 0 {
		return nil, ErrEmpty
	}
	if !(radius > 0) {
		return nil, errors.New("fairnn: radius must be positive")
	}
	if numGrids < 1 {
		return nil, errors.New("fairnn: numGrids must be at least 1")
	}
	d := len(pts[0])
	if d == 0 {
		return nil, errors.New("fairnn: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("fairnn: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	idx := &Index{
		pts:         pts,
		dim:         d,
		radius:      radius,
		numGrids:    numGrids,
		cellSize:    2 * radius,
		offsets:     make([][]float64, numGrids),
		cellSet:     make([]map[string]int, numGrids),
		maxAttempts: 256,
	}
	r := rng.New(seed)
	var sets [][]int
	for g := 0; g < numGrids; g++ {
		off := make([]float64, d)
		for j := range off {
			off[j] = r.Float64() * idx.cellSize
		}
		idx.offsets[g] = off
		idx.cellSet[g] = make(map[string]int)
		for i, p := range pts {
			key := idx.cellKey(g, p)
			si, ok := idx.cellSet[g][key]
			if !ok {
				si = len(sets)
				sets = append(sets, nil)
				idx.cellSet[g][key] = si
			}
			sets[si] = append(sets[si], i)
		}
	}
	coll, err := setunion.New(sets, r.Uint64())
	if err != nil {
		return nil, err
	}
	idx.coll = coll
	return idx, nil
}

// cellKey returns the grid-g cell identifier of point p.
func (idx *Index) cellKey(g int, p []float64) string {
	buf := make([]byte, 0, idx.dim*9)
	for j := 0; j < idx.dim; j++ {
		c := int64(math.Floor((p[j] + idx.offsets[g][j]) / idx.cellSize))
		for k := 0; k < 8; k++ {
			buf = append(buf, byte(c>>(8*k)))
		}
		buf = append(buf, ',')
	}
	return string(buf)
}

// dist2 returns the squared Euclidean distance.
func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// candidateGroup returns the set indices of q's cells across the grids.
func (idx *Index) candidateGroup(q []float64) []int {
	var G []int
	seen := map[int]struct{}{}
	for g := 0; g < idx.numGrids; g++ {
		if si, ok := idx.cellSet[g][idx.cellKey(g, q)]; ok {
			if _, dup := seen[si]; !dup {
				seen[si] = struct{}{}
				G = append(G, si)
			}
		}
	}
	return G
}

// Query appends s independent uniform samples of R(q) (the candidate
// near points of q) to dst as point indices. ok is false when R(q) is
// empty. Sample outputs are independent across queries.
func (idx *Index) Query(r *rng.Source, q []float64, s int, dst []int) ([]int, bool, error) {
	if len(q) != idx.dim {
		return dst, false, fmt.Errorf("fairnn: query dimension %d, want %d", len(q), idx.dim)
	}
	G := idx.candidateGroup(q)
	if len(G) == 0 {
		return dst, false, nil
	}
	r2 := idx.radius * idx.radius
	var one [1]int
	for drawn := 0; drawn < s; {
		accepted := false
		for attempt := 0; attempt < idx.maxAttempts; attempt++ {
			out, ok, err := idx.coll.Query(r, G, 1, one[:0])
			if err != nil {
				return dst, false, err
			}
			if !ok {
				return dst, false, nil
			}
			cand := out[0]
			if dist2(idx.pts[cand], q) <= r2 {
				dst = append(dst, cand)
				drawn++
				accepted = true
				break
			}
		}
		if !accepted {
			// The candidate cells contain no (or a vanishing fraction
			// of) points inside the ball.
			if drawn == 0 {
				return dst, false, nil
			}
			return dst, true, nil
		}
	}
	return dst, true, nil
}

// NearBruteForce returns the exact r-near set of q (test/benchmark
// helper; O(n·d)).
func (idx *Index) NearBruteForce(q []float64) []int {
	r2 := idx.radius * idx.radius
	var out []int
	for i, p := range idx.pts {
		if dist2(p, q) <= r2 {
			out = append(out, i)
		}
	}
	return out
}

// CandidateNear returns R(q) exactly: the points in q's candidate cells
// that lie within the ball (test helper; scans all points and tests cell
// co-membership per grid).
func (idx *Index) CandidateNear(q []float64) []int {
	r2 := idx.radius * idx.radius
	seen := map[int]struct{}{}
	var out []int
	for i, p := range idx.pts {
		if dist2(p, q) > r2 {
			continue
		}
		for g := 0; g < idx.numGrids; g++ {
			if idx.cellKey(g, p) == idx.cellKey(g, q) {
				if _, dup := seen[i]; !dup {
					seen[i] = struct{}{}
					out = append(out, i)
				}
				break
			}
		}
	}
	return out
}

// Recall estimates, for diagnostics, the fraction of true near points of
// q that are candidates.
func (idx *Index) Recall(q []float64) float64 {
	near := idx.NearBruteForce(q)
	if len(near) == 0 {
		return 1
	}
	cand := idx.CandidateNear(q)
	return float64(len(cand)) / float64(len(near))
}

// NumGrids returns the number of shifted grids.
func (idx *Index) NumGrids() int { return idx.numGrids }

// Radius returns the query radius.
func (idx *Index) Radius() float64 { return idx.radius }
