package fairnn

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func clusteredPoints(n int, seed uint64) [][]float64 {
	r := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		// Two clusters plus background noise.
		switch i % 3 {
		case 0:
			pts[i] = []float64{0.3 + r.NormFloat64()*0.02, 0.3 + r.NormFloat64()*0.02}
		case 1:
			pts[i] = []float64{0.7 + r.NormFloat64()*0.02, 0.7 + r.NormFloat64()*0.02}
		default:
			pts[i] = []float64{r.Float64(), r.Float64()}
		}
	}
	return pts
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 1, 1, 1); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([][]float64{{1, 2}}, 0, 1, 1); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := New([][]float64{{1, 2}}, 1, 0, 1); err == nil {
		t.Fatal("zero grids accepted")
	}
	if _, err := New([][]float64{{1, 2}, {1}}, 1, 1, 1); err == nil {
		t.Fatal("ragged dims accepted")
	}
	if _, err := New([][]float64{{}}, 1, 1, 1); err == nil {
		t.Fatal("zero-dim accepted")
	}
}

func TestQueryDimMismatch(t *testing.T) {
	idx, err := New([][]float64{{1, 2}}, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := idx.Query(rng.New(1), []float64{1}, 1, nil); err == nil {
		t.Fatal("wrong-dimension query accepted")
	}
}

func TestSamplesAreNear(t *testing.T) {
	pts := clusteredPoints(600, 2)
	idx, err := New(pts, 0.08, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	q := []float64{0.3, 0.3}
	out, ok, err := idx.Query(r, q, 50, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, i := range out {
		if math.Sqrt(dist2(pts[i], q)) > idx.Radius()+1e-12 {
			t.Fatalf("sample %d at distance %v > radius", i, math.Sqrt(dist2(pts[i], q)))
		}
	}
}

func TestEmptyNeighbourhood(t *testing.T) {
	pts := clusteredPoints(100, 5)
	idx, err := New(pts, 0.01, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	// A query far outside the data square.
	out, ok, err := idx.Query(rng.New(7), []float64{50, 50}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(out) != 0 {
		t.Fatalf("ok=%v len=%d for empty neighbourhood", ok, len(out))
	}
}

func TestFairnessUniformOverCandidates(t *testing.T) {
	// Dense cluster: the candidate near set is large; repeated fair
	// queries must hit each candidate uniformly.
	r := rng.New(8)
	pts := make([][]float64, 60)
	for i := range pts {
		pts[i] = []float64{0.5 + r.NormFloat64()*0.01, 0.5 + r.NormFloat64()*0.01}
	}
	idx, err := New(pts, 0.05, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, 0.5}
	cand := idx.CandidateNear(q)
	if len(cand) < 30 {
		t.Fatalf("setup: only %d candidates", len(cand))
	}
	isCand := map[int]bool{}
	for _, i := range cand {
		isCand[i] = true
	}
	const queries = 30000
	counts := map[int]int{}
	for i := 0; i < queries; i++ {
		out, ok, err := idx.Query(r, q, 1, nil)
		if err != nil || !ok {
			t.Fatalf("query %d: ok=%v err=%v", i, ok, err)
		}
		if !isCand[out[0]] {
			t.Fatalf("sampled non-candidate %d", out[0])
		}
		counts[out[0]]++
	}
	expected := float64(queries) / float64(len(cand))
	for i, cnt := range counts {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("candidate %d sampled %d, expected ~%v", i, cnt, expected)
		}
	}
}

func TestRecallHighWithManyGrids(t *testing.T) {
	pts := clusteredPoints(500, 10)
	idx, err := New(pts, 0.06, 12, 11)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	sumRecall, trials := 0.0, 0
	for i := 0; i < 40; i++ {
		q := []float64{0.28 + r.Float64()*0.04, 0.28 + r.Float64()*0.04}
		if len(idx.NearBruteForce(q)) == 0 {
			continue
		}
		sumRecall += idx.Recall(q)
		trials++
	}
	if trials == 0 {
		t.Skip("no populated queries")
	}
	if avg := sumRecall / float64(trials); avg < 0.9 {
		t.Fatalf("average recall %v < 0.9 with 12 grids", avg)
	}
}

func TestIndependentAcrossQueries(t *testing.T) {
	// Two near points: repeated fair queries must alternate randomly,
	// unlike the permutation baseline which would freeze on one.
	pts := [][]float64{{0.500, 0.5}, {0.501, 0.5}}
	idx, err := New(pts, 0.05, 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(14)
	q := []float64{0.5005, 0.5}
	var pairs [4]int
	out, ok, err := idx.Query(r, q, 1, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	prev := out[0]
	const queries = 20000
	for i := 0; i < queries; i++ {
		out, ok, err := idx.Query(r, q, 1, nil)
		if err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		pairs[prev*2+out[0]]++
		prev = out[0]
	}
	expected := float64(queries) / 4
	for i, cnt := range pairs {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pair %02b count %d, expected ~%v", i, cnt, expected)
		}
	}
}

func BenchmarkFairQuery(b *testing.B) {
	r := rng.New(1)
	pts := make([][]float64, 1<<15)
	for i := range pts {
		pts[i] = []float64{r.Float64(), r.Float64()}
	}
	idx, err := New(pts, 0.02, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.5, 0.5}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _, _ = idx.Query(r, q, 1, dst[:0])
	}
}

func TestAccessors(t *testing.T) {
	pts := clusteredPoints(50, 20)
	idx, err := New(pts, 0.1, 5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumGrids() != 5 {
		t.Fatalf("NumGrids = %d", idx.NumGrids())
	}
	if idx.Radius() != 0.1 {
		t.Fatalf("Radius = %v", idx.Radius())
	}
	// Recall of a query with no true neighbours is defined as 1.
	if got := idx.Recall([]float64{99, 99}); got != 1 {
		t.Fatalf("empty Recall = %v", got)
	}
}

func TestQueryMultipleSamples(t *testing.T) {
	r := rng.New(22)
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{0.5 + r.NormFloat64()*0.005, 0.5 + r.NormFloat64()*0.005}
	}
	idx, err := New(pts, 0.05, 6, 23)
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := idx.Query(r, []float64{0.5, 0.5}, 25, nil)
	if err != nil || !ok || len(out) != 25 {
		t.Fatalf("ok=%v err=%v len=%d", ok, err, len(out))
	}
}
