package soak

import (
	"fmt"

	"repro/internal/rangesample"
	"repro/internal/stats"
)

// Failure reports one discrepancy: a violated deterministic invariant
// (support, draw-for-draw identity, error semantics) or a statistical
// gate whose statistic crossed its critical value.
type Failure struct {
	Target   Target       `json:"target"`
	Check    string       `json:"check"`
	Detail   string       `json:"detail"`
	Query    *QueryRecord `json:"query,omitempty"`
	Stat     float64      `json:"stat,omitempty"`
	Critical float64      `json:"critical,omitempty"`
}

// Error makes a Failure usable as a value in error strings.
func (f *Failure) String() string {
	s := fmt.Sprintf("[%s] %s: %s", f.Target, f.Check, f.Detail)
	if f.Critical > 0 {
		s += fmt.Sprintf(" (stat %.4g, critical %.4g)", f.Stat, f.Critical)
	}
	return s
}

// Outcome summarises one RunCase execution.
type Outcome struct {
	// Failure is the first discrepancy found, nil when the case passed.
	Failure *Failure
	// Suspicion is the maximum stat/critical ratio observed across all
	// statistical gates (1.0 when a gate fired) — the bandit's reward
	// signal: configurations that get *close* to tripping a gate are
	// worth revisiting.
	Suspicion float64
	// Gates counts evaluated gates (statistical and deterministic), a
	// coverage signal for tests.
	Gates int
}

// Harness runs fuzz cases. The zero value is ready to use.
type Harness struct {
	// Alpha is the per-gate significance level of the statistical
	// gates. It defaults to 1e-9: a correct implementation trips a
	// single gate with probability ~1e-9, so a full fuzzing session
	// stays false-positive-free, while gross bias (an off-by-one, a
	// stale buffer, a shared rng stream) produces statistics orders of
	// magnitude past any critical value.
	Alpha float64
	// MinExpected is the smallest expected count a chi-squared cell may
	// have; adjacent cells are pooled until they reach it. Default 8.
	MinExpected float64
	// Mutate, when non-nil, wraps every 1-D range-sampling structure
	// under test (never the naive oracle) — the seam the mutation tests
	// use to prove the gates catch an injected off-by-one. Production
	// runs leave it nil.
	Mutate func(rangesample.Sampler) rangesample.Sampler
	// MutateWrites, when positive, silently drops every MutateWrites-th
	// write from the mutable subject (never from the shadow oracle) —
	// the seam the mutation tests use to prove the live gates catch
	// lost writes. Production runs leave it zero.
	MutateWrites int
}

func (h *Harness) alpha() float64 {
	if h.Alpha > 0 {
		return h.Alpha
	}
	return 1e-9
}

func (h *Harness) minExpected() float64 {
	if h.MinExpected > 0 {
		return h.MinExpected
	}
	return 8
}

// RunCase executes one case. A non-nil Outcome.Failure is a found
// discrepancy; err reports an invalid case (bad spec), not a finding.
func (h *Harness) RunCase(c Case) (Outcome, error) {
	rn := &run{h: h, c: &c}
	var err error
	switch c.Target {
	case TargetChunked, TargetAliasAug, TargetTreeWalk:
		err = rn.run1D()
	case TargetAlias:
		err = rn.runAlias()
	case TargetWoR:
		err = rn.runWoR()
	case TargetTreeSample:
		err = rn.runTreeSample()
	case TargetIntervalTree:
		err = rn.runIntervalTree()
	case TargetMutable:
		err = rn.runMutable()
	case TargetPooled:
		err = rn.runPooled()
	case TargetEstimate:
		err = rn.runEstimate()
	case TargetServer:
		err = rn.runServer()
	case TargetCluster:
		err = rn.runCluster()
	default:
		return Outcome{}, fmt.Errorf("soak: unknown target %q", c.Target)
	}
	if err != nil {
		return Outcome{}, err
	}
	return rn.out, nil
}

// run is the per-case check context: it collects the first failure and
// the suspicion signal while an oracle executes.
type run struct {
	h   *Harness
	c   *Case
	out Outcome
}

// failed reports whether the case already has a finding; oracles bail
// out early once it does so the reported failure stays the first one.
func (rn *run) failed() bool { return rn.out.Failure != nil }

// fail records a deterministic-invariant violation.
func (rn *run) fail(check, format string, args ...any) {
	rn.out.Gates++
	if rn.out.Failure != nil {
		return
	}
	rn.out.Suspicion = 1
	rn.out.Failure = &Failure{Target: rn.c.Target, Check: check, Detail: fmt.Sprintf(format, args...)}
}

// failQuery is fail carrying the query that exposed the violation.
func (rn *run) failQuery(check string, q QueryRecord, format string, args ...any) {
	rn.fail(check, format, args...)
	if rn.out.Failure != nil && rn.out.Failure.Query == nil {
		qq := q
		rn.out.Failure.Query = &qq
	}
}

// pass records a deterministic gate that held.
func (rn *run) pass() { rn.out.Gates++ }

// statGate records a statistical gate evaluation: the suspicion signal
// always updates, and the gate fails when stat > critical.
func (rn *run) statGate(check string, q *QueryRecord, stat, critical float64) {
	rn.out.Gates++
	if critical > 0 {
		if ratio := stat / critical; ratio > rn.out.Suspicion {
			rn.out.Suspicion = ratio
		}
	}
	if stat <= critical || rn.out.Failure != nil {
		return
	}
	rn.out.Suspicion = 1
	f := &Failure{
		Target: rn.c.Target, Check: check,
		Detail:   fmt.Sprintf("statistic %.6g exceeds critical value %.6g", stat, critical),
		Stat:     stat,
		Critical: critical,
	}
	if q != nil {
		qq := *q
		f.Query = &qq
	}
	rn.out.Failure = f
}

// gateChi2Probs runs a chi-squared goodness-of-fit gate of observed
// per-cell counts against expected probabilities, pooling adjacent
// cells until every expected count reaches MinExpected. Cells with zero
// probability must have zero counts (checked deterministically: a draw
// landing on a zero-probability cell is a support violation, not a
// statistical fluctuation).
func (rn *run) gateChi2Probs(check string, q *QueryRecord, counts []int, probs []float64) {
	if len(counts) != len(probs) {
		rn.fail(check, "internal: %d counts vs %d probs", len(counts), len(probs))
		return
	}
	total := 0
	for i, c := range counts {
		total += c
		if probs[i] == 0 && c > 0 {
			rn.fail(check+"-support", "cell %d has %d draws but zero probability", i, c)
			return
		}
	}
	if total == 0 {
		return
	}
	minE := rn.h.minExpected()
	var obs []int
	var exp []float64
	accC, accP := 0, 0.0
	for i := range counts {
		accC += counts[i]
		accP += probs[i]
		if accP*float64(total) >= minE {
			obs = append(obs, accC)
			exp = append(exp, accP*float64(total))
			accC, accP = 0, 0.0
		}
	}
	if accC > 0 || accP > 0 {
		if len(obs) == 0 {
			return // too few draws to bin at all: no gate
		}
		obs[len(obs)-1] += accC
		exp[len(exp)-1] += accP * float64(total)
	}
	if len(obs) < 2 {
		return
	}
	stat, err := stats.ChiSquare(obs, exp)
	if err != nil {
		rn.fail(check, "internal: chi-square: %v", err)
		return
	}
	rn.statGate(check, q, stat, stats.ChiSquareCritical(len(obs)-1, rn.h.alpha()))
}

// gateTwoSampleCounts runs the two-sample chi-squared homogeneity gate
// between the structure's counts and the oracle's counts over the same
// cells, pooling adjacent cells (by combined count) to keep the
// asymptotics honest.
func (rn *run) gateTwoSampleCounts(check string, q *QueryRecord, a, b []int) {
	if len(a) != len(b) {
		rn.fail(check, "internal: %d vs %d cells", len(a), len(b))
		return
	}
	minC := int(2 * rn.h.minExpected())
	var pa, pb []int
	accA, accB := 0, 0
	for i := range a {
		accA += a[i]
		accB += b[i]
		if accA+accB >= minC {
			pa = append(pa, accA)
			pb = append(pb, accB)
			accA, accB = 0, 0
		}
	}
	if (accA > 0 || accB > 0) && len(pa) > 0 {
		pa[len(pa)-1] += accA
		pb[len(pb)-1] += accB
	}
	if len(pa) < 2 {
		return
	}
	stat, dof, err := stats.ChiSquareTwoSample(pa, pb)
	if err != nil {
		return // degenerate pooling (one live cell): no gate
	}
	rn.statGate(check, q, stat, stats.ChiSquareCritical(dof, rn.h.alpha()))
}

// gateKSTwoSample runs the two-sample KS gate between continuous sample
// sets (the structure's sampled values vs the oracle's).
func (rn *run) gateKSTwoSample(check string, q *QueryRecord, x, y []float64) {
	if len(x) == 0 || len(y) == 0 {
		return
	}
	d, err := stats.KSTwoSample(x, y)
	if err != nil {
		rn.fail(check, "internal: ks: %v", err)
		return
	}
	rn.statGate(check, q, d, stats.KSTwoSampleCritical(len(x), len(y), rn.h.alpha()))
}

// gateIndependence runs a chi-squared independence gate over a
// contingency table of (previous draw bin, current draw bin) pairs from
// consecutive queries: under cross-query independence (Equation 1 of
// the paper) the table factorises into its margins.
func (rn *run) gateIndependence(check string, pairs [][2]int, bins int) {
	if len(pairs) == 0 || bins < 2 {
		return
	}
	table := make([]int, bins*bins)
	rows := make([]int, bins)
	cols := make([]int, bins)
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= bins || p[1] < 0 || p[1] >= bins {
			rn.fail(check, "internal: pair (%d, %d) outside %d bins", p[0], p[1], bins)
			return
		}
		table[p[0]*bins+p[1]]++
		rows[p[0]]++
		cols[p[1]]++
	}
	n := float64(len(pairs))
	// Only rows/columns with enough mass participate; sparse margins
	// would wreck the chi-squared asymptotics.
	minE := rn.h.minExpected()
	stat := 0.0
	liveR, liveC := 0, 0
	for i := 0; i < bins; i++ {
		if float64(rows[i]) >= minE {
			liveR++
		}
		if float64(cols[i]) >= minE {
			liveC++
		}
	}
	if liveR < 2 || liveC < 2 {
		return
	}
	for i := 0; i < bins; i++ {
		if float64(rows[i]) < minE {
			continue
		}
		for j := 0; j < bins; j++ {
			if float64(cols[j]) < minE {
				continue
			}
			e := float64(rows[i]) * float64(cols[j]) / n
			if e == 0 {
				continue
			}
			d := float64(table[i*bins+j]) - e
			stat += d * d / e
		}
	}
	dof := (liveR - 1) * (liveC - 1)
	rn.statGate(check, nil, stat, stats.ChiSquareCritical(dof, rn.h.alpha()))
}

// binOf maps a position in [0, n) to one of `bins` contiguous buckets.
func binOf(pos, n, bins int) int {
	if n <= 0 {
		return 0
	}
	b := pos * bins / n
	if b >= bins {
		b = bins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}
