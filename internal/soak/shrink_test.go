package soak_test

import (
	"testing"

	"repro/internal/rangesample"
	"repro/internal/soak"
)

// Shrinking a failing case must keep it failing the same check while
// only ever making the case smaller or simpler.
func TestShrinkPreservesFailureAndReduces(t *testing.T) {
	h := &soak.Harness{
		Mutate: func(s rangesample.Sampler) rangesample.Sampler { return offByOne{s} },
	}
	c := soak.Case{
		Target:   soak.TargetChunked,
		Dataset:  soak.DatasetSpec{Seed: 41, N: 200, Weights: "random"},
		Workload: soak.WorkloadSpec{Seed: 42, Queries: 10, Reps: 200},
	}
	out, err := h.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failure == nil {
		t.Fatal("injected bug not caught on the unshrunk case")
	}
	min := h.Shrink(c, out.Failure)
	mout, err := h.RunCase(min)
	if err != nil {
		t.Fatal(err)
	}
	if mout.Failure == nil {
		t.Fatal("shrunk case no longer fails")
	}
	if mout.Failure.Check != out.Failure.Check {
		t.Fatalf("shrunk case fails %q, original failed %q", mout.Failure.Check, out.Failure.Check)
	}
	if len(min.Trace) == 0 {
		t.Fatal("shrinker did not pin the query trace")
	}
	if len(min.Trace) >= 10 {
		t.Fatalf("trace not reduced: %d queries", len(min.Trace))
	}
	if min.Dataset.N > c.Dataset.N {
		t.Fatalf("dataset grew: %d > %d", min.Dataset.N, c.Dataset.N)
	}
}

// Shrinking must be deterministic: same input case, same minimised
// output.
func TestShrinkDeterministic(t *testing.T) {
	h := &soak.Harness{
		Mutate: func(s rangesample.Sampler) rangesample.Sampler { return offByOne{s} },
	}
	c := soak.Case{
		Target:   soak.TargetChunked,
		Dataset:  soak.DatasetSpec{Seed: 51, N: 120},
		Workload: soak.WorkloadSpec{Seed: 52, Queries: 6, Reps: 150},
	}
	out, err := h.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failure == nil {
		t.Skip("seed did not trip a gate on this configuration")
	}
	a := h.Shrink(c, out.Failure)
	b := h.Shrink(c, out.Failure)
	if a.Dataset != b.Dataset || len(a.Trace) != len(b.Trace) || a.Workload != b.Workload {
		t.Fatalf("shrink nondeterministic:\n%+v\nvs\n%+v", a, b)
	}
}
