package soak

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/service"
)

// mutableDS is the dataset name the mutable soak hosts.
const mutableDS = "live"

// mutOracle is the naive shadow of a mutable dataset: sorted parallel
// value/weight slices with O(n) writes. It is the ground truth the
// ingest stack (delta log + overlay + rebuild swaps) is diffed against
// after every operation.
type mutOracle struct {
	vals []float64
	ws   []float64
}

func newMutOracle(values, weights []float64) *mutOracle {
	n := len(values)
	type vw struct{ v, w float64 }
	pairs := make([]vw, n)
	for i := range pairs {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		pairs[i] = vw{values[i], w}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	o := &mutOracle{vals: make([]float64, n), ws: make([]float64, n)}
	for i, p := range pairs {
		o.vals[i], o.ws[i] = p.v, p.w
	}
	return o
}

func (o *mutOracle) size() int { return len(o.vals) }

// insert adds (v, w) at the leftmost position keeping vals sorted.
func (o *mutOracle) insert(v, w float64) {
	i := sort.SearchFloat64s(o.vals, v)
	o.vals = append(o.vals, 0)
	o.ws = append(o.ws, 0)
	copy(o.vals[i+1:], o.vals[i:])
	copy(o.ws[i+1:], o.ws[i:])
	o.vals[i], o.ws[i] = v, w
}

// remove deletes the leftmost element with value v, reporting whether
// one existed.
func (o *mutOracle) remove(v float64) bool {
	i := sort.SearchFloat64s(o.vals, v)
	if i >= len(o.vals) || o.vals[i] != v {
		return false
	}
	o.vals = append(o.vals[:i], o.vals[i+1:]...)
	o.ws = append(o.ws[:i], o.ws[i+1:]...)
	return true
}

// posRange maps a value interval to live positions [a, b].
func (o *mutOracle) posRange(lo, hi float64) (a, b int, inRange bool) {
	return posRange(o.vals, lo, hi)
}

// rangeWeight sums the live weights of positions [a, b].
func (o *mutOracle) rangeWeight(a, b int) float64 {
	t := 0.0
	for i := a; i <= b && i >= 0; i++ {
		t += o.ws[i]
	}
	return t
}

// cells collapses positions [a, b] into distinct-value cells with
// normalised probabilities. Sampling returns values, not positions, so
// duplicate values are indistinguishable and must share one cell.
func (o *mutOracle) cells(a, b int) (vals, probs []float64) {
	total := 0.0
	for i := a; i <= b; i++ {
		total += o.ws[i]
	}
	for i := a; i <= b; i++ {
		if len(vals) > 0 && vals[len(vals)-1] == o.vals[i] {
			probs[len(probs)-1] += o.ws[i] / total
			continue
		}
		vals = append(vals, o.vals[i])
		probs = append(probs, o.ws[i]/total)
	}
	return vals, probs
}

// multiplicity counts live elements with value v inside positions [a, b].
func (o *mutOracle) multiplicity(a, b int, v float64) int {
	n := 0
	for i := a; i <= b; i++ {
		if o.vals[i] == v {
			n++
		}
	}
	return n
}

// cellIndex locates v in the distinct sorted cell values; -1 if absent.
func cellIndex(cellVals []float64, v float64) int {
	i := sort.SearchFloat64s(cellVals, v)
	if i < len(cellVals) && cellVals[i] == v {
		return i
	}
	return -1
}

// runMutable differentially tests the ingest write path: a mutable
// service-hosted dataset executes an interleaved insert/delete/query
// schedule against the naive mutable oracle. Deterministic gates check
// count, range weight, write error semantics, and post-rebuild state
// identity; statistical gates check per-query uniformity against the
// instantaneous live weights and within-step cross-draw independence —
// the paper's guarantees, asserted while the dataset changes under the
// sampler. A small RebuildThreshold forces the delta log through
// several background rebuild + snapshot-swap cycles per case.
func (rn *run) runMutable() error {
	c := rn.c
	values, weights, err := c.Dataset.Generate()
	if err != nil {
		return err
	}
	svc := service.New(service.Options{})
	defer svc.Close()
	ctx := context.Background()
	mo := service.MutableOptions{RebuildThreshold: 24, MaxLag: 1 << 20, Seed: c.Workload.Seed}
	if err := svc.CreateMutable(ctx, mutableDS, core.KindChunked, values, weights, mo); err != nil {
		return fmt.Errorf("soak: create mutable: %w", err)
	}
	oracle := newMutOracle(values, weights)
	trace := c.Queries(append([]float64(nil), oracle.vals...))
	reps := c.reps()
	r := rng.New(c.Workload.Seed ^ 0x8f14e45fceea1e7b)
	buf := make([]float64, 0, 64)

	// Deterministic probe: a query past the live maximum must report an
	// empty range.
	ghost := QueryRecord{Lo: oracle.vals[oracle.size()-1] + 1, K: 3}
	ghost.Hi = ghost.Lo + 1
	if _, gerr := svc.SampleInto(ctx, r, mutableDS, ghost.Lo, ghost.Hi, ghost.K, buf[:0]); !errors.Is(gerr, core.ErrEmptyRange) {
		rn.failQuery("empty-range", ghost, "sample past max value returned %v, want ErrEmptyRange", gerr)
	} else {
		rn.pass()
	}

	writes, steps := 0, 0
	dropWrite := func() bool {
		return rn.h.MutateWrites > 0 && writes%rn.h.MutateWrites == 0
	}
	for ti := 0; ti < len(trace) && !rn.failed(); ti++ {
		rec := trace[ti]
		switch rec.Op {
		case OpInsert:
			oracle.insert(rec.Lo, rec.Hi)
			writes++
			if dropWrite() {
				continue
			}
			if err := svc.Insert(ctx, mutableDS, rec.Lo, rec.Hi); err != nil {
				rn.failQuery("write-insert", rec, "Insert(%v, %v): %v", rec.Lo, rec.Hi, err)
				continue
			}
			rn.pass()
		case OpDelete:
			if oracle.size() <= 1 {
				continue // the last live element is never deletable
			}
			present := oracle.remove(rec.Lo)
			writes++
			if dropWrite() {
				continue
			}
			err := svc.Delete(ctx, mutableDS, rec.Lo)
			switch {
			case present && err != nil:
				rn.failQuery("write-delete", rec, "Delete(%v): %v", rec.Lo, err)
			case !present && !errors.Is(err, service.ErrValueNotFound):
				rn.failQuery("delete-miss", rec, "delete of absent %v returned %v, want ErrValueNotFound", rec.Lo, err)
			default:
				rn.pass()
			}
		default:
			steps++
			rn.mutableQuery(ctx, svc, oracle, rec, reps, r, &buf)
			if steps%3 == 0 && !rn.failed() {
				rn.mutableFlushCheck(ctx, svc, oracle)
			}
		}
	}
	return nil
}

// mutableFlushCheck forces the delta log through synchronous rebuilds
// and asserts the published snapshot is exactly the oracle state: the
// swap must neither lose, duplicate, nor reweight elements.
func (rn *run) mutableFlushCheck(ctx context.Context, svc *service.Service, o *mutOracle) {
	if err := svc.Flush(ctx, mutableDS); err != nil {
		rn.fail("flush", "Flush: %v", err)
		return
	}
	lv, lw, err := svc.LiveData(mutableDS)
	if err != nil {
		rn.fail("flush-live", "LiveData: %v", err)
		return
	}
	sort.Float64s(lv)
	if !equalFloats(lv, o.vals) {
		rn.fail("flush-values", "post-rebuild live values diverge from oracle: %d vs %d elements", len(lv), o.size())
		return
	}
	sum, osum := 0.0, 0.0
	for _, w := range lw {
		sum += w
	}
	for _, w := range o.ws {
		osum += w
	}
	if math.Abs(sum-osum) > 1e-9*(1+math.Abs(osum)) {
		rn.fail("flush-weights", "post-rebuild weight mass %v, oracle %v", sum, osum)
		return
	}
	rn.pass()
}

// mutableQuery checks one read step against the oracle's instantaneous
// state: exact count, range weight, support, chi-squared uniformity of
// repeated draws, and within-step independence (the live state is
// frozen between writes, so consecutive draws are identically
// distributed and the contingency gate is valid).
func (rn *run) mutableQuery(ctx context.Context, svc *service.Service, o *mutOracle, rec QueryRecord, reps int, r *rng.Source, buf *[]float64) {
	a, b, inRange := o.posRange(rec.Lo, rec.Hi)
	want := 0
	if inRange {
		want = b - a + 1
	}
	n, err := svc.Count(ctx, mutableDS, rec.Lo, rec.Hi)
	if err != nil {
		rn.failQuery("count", rec, "Count: %v", err)
		return
	}
	if n != want {
		rn.failQuery("count-vs-oracle", rec, "live Count = %d, oracle has %d", n, want)
		return
	}
	rn.pass()
	wGot, err := svc.RangeWeight(ctx, mutableDS, rec.Lo, rec.Hi)
	if err != nil {
		rn.failQuery("weight", rec, "RangeWeight: %v", err)
		return
	}
	wWant := 0.0
	if inRange {
		wWant = o.rangeWeight(a, b)
	}
	if math.Abs(wGot-wWant) > 1e-9*(1+math.Abs(wWant)) {
		rn.failQuery("weight-vs-oracle", rec, "live RangeWeight = %v, oracle has %v", wGot, wWant)
		return
	}
	rn.pass()
	if !inRange {
		if _, serr := svc.SampleInto(ctx, r, mutableDS, rec.Lo, rec.Hi, rec.K, (*buf)[:0]); !errors.Is(serr, core.ErrEmptyRange) {
			rn.failQuery("empty-range", rec, "sample of empty range returned %v, want ErrEmptyRange", serr)
			return
		}
		rn.pass()
		return
	}
	if rec.WoR {
		rn.mutableWoR(ctx, svc, o, rec, a, b, reps, r, buf)
		return
	}
	k := rec.K
	if k < 1 {
		k = 1
	}
	cellVals, cellProbs := o.cells(a, b)
	counts := make([]int, len(cellVals))
	var bins []int
	for rep := 0; rep < reps && !rn.failed(); rep++ {
		out, serr := svc.SampleInto(ctx, r, mutableDS, rec.Lo, rec.Hi, k, (*buf)[:0])
		if serr != nil {
			rn.failQuery("sample", rec, "SampleInto: %v", serr)
			return
		}
		if len(out) != k {
			rn.failQuery("sample-count", rec, "got %d draws, want %d", len(out), k)
			return
		}
		for _, v := range out {
			ci := cellIndex(cellVals, v)
			if ci < 0 {
				rn.failQuery("support", rec, "sampled %v is not a live value in [%v, %v]", v, rec.Lo, rec.Hi)
				return
			}
			counts[ci]++
		}
		bins = append(bins, binOf(cellIndex(cellVals, out[0]), len(cellVals), indepBins))
	}
	if rn.failed() {
		return
	}
	rn.gateChi2Probs("chi2-live", &rec, counts, cellProbs)
	rn.gateIndependence("independence-live", pairUp(bins), indepBins)
}

// mutableWoR checks the without-replacement path against the live
// state: overdraw error semantics, sample size, per-value multiplicity
// bounds, and exact multiset identity when the budget equals the
// qualifying count.
func (rn *run) mutableWoR(ctx context.Context, svc *service.Service, o *mutOracle, rec QueryRecord, a, b, reps int, r *rng.Source, buf *[]float64) {
	cnt := b - a + 1
	if _, serr := svc.SampleWoR(ctx, r, mutableDS, rec.Lo, rec.Hi, cnt+1); !errors.Is(serr, core.ErrSampleTooLarge) {
		rn.failQuery("wor-overdraw", rec, "k = count+1 returned %v, want ErrSampleTooLarge", serr)
		return
	}
	rn.pass()
	k := rec.K
	if k > cnt {
		k = cnt
	}
	if k < 1 {
		k = 1
	}
	worReps := reps / 4
	if worReps < 16 {
		worReps = 16
	}
	for rep := 0; rep < worReps; rep++ {
		out, serr := svc.SampleWoRInto(ctx, r, mutableDS, rec.Lo, rec.Hi, k, (*buf)[:0])
		if serr != nil {
			rn.failQuery("wor-error", rec, "SampleWoRInto(k=%d, count=%d): %v", k, cnt, serr)
			return
		}
		if len(out) != k {
			rn.failQuery("wor-size", rec, "got %d, want %d", len(out), k)
			return
		}
		seen := make(map[float64]int, k)
		for _, v := range out {
			seen[v]++
			m := o.multiplicity(a, b, v)
			if m == 0 {
				rn.failQuery("wor-support", rec, "WoR value %v is not live in range", v)
				return
			}
			if seen[v] > m {
				rn.failQuery("wor-multiplicity", rec, "value %v drawn %d times, only %d live", v, seen[v], m)
				return
			}
		}
		if k == cnt {
			// Exhaustive draw: the sample is the whole live range.
			got := append([]float64(nil), out...)
			sort.Float64s(got)
			if !equalFloats(got, o.vals[a:b+1]) {
				rn.failQuery("wor-exhaustive", rec, "k = count draw is not the full live range")
				return
			}
		}
	}
	rn.pass()
}
