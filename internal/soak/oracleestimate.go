package soak

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/rng"
	"repro/internal/service"
)

// estimateDS is the dataset name the estimate soak hosts.
const estimateDS = "approx"

// estConf is the nominal interval coverage every soak estimate requests;
// the pooled coverage gate asserts the empirical rate stays above
// estCoverFloor (the paper-suite acceptance: >= 90% at nominal 95%).
const (
	estConf       = 0.95
	estCoverFloor = 0.90
	// estK is the per-estimate draw budget. 512 keeps the expected match
	// count m·p comfortably in normal-approximation territory even at the
	// generator's smallest selectivities, so the pooled CLT coverage is
	// meaningfully close to nominal rather than binomial-degenerate.
	estK = 512
)

// runEstimate differentially tests the approximate-analytics suite: a
// service-hosted dataset answers repeated COUNT/SUM/AVG/DISTINCT
// estimates whose ground truth the naive oracle computes exactly.
// Deterministic gates check the self-scored q-error against the
// oracle's exact count (the service computing a different "exact" than
// the oracle is a correctness bug, not an approximation), the exact
// distinct count while the sketch is unsaturated, and empty-range
// semantics. Statistical gates check that finite certified q-error
// bounds are violated no more often than their nominal failure rate and
// that pooled interval coverage stays above estCoverFloor. A churn
// phase drives the distinct estimator through the ingest overlay: the
// threshold stream must track inserts exactly, over-count deletes (the
// documented contract) no further than the ever-inserted set, and snap
// back to the live distinct count on rebuild.
func (rn *run) runEstimate() error {
	c := rn.c
	values, weights, err := c.Dataset.Generate()
	if err != nil {
		return err
	}
	svc := service.New(service.Options{})
	defer svc.Close()
	ctx := context.Background()
	if err := svc.Create(ctx, estimateDS, core.KindChunked, values, weights); err != nil {
		return fmt.Errorf("soak: create estimate: %w", err)
	}
	oracle := newMutOracle(values, weights)
	trace := c.Queries(append([]float64(nil), oracle.vals...))
	reps := c.reps()
	r := rng.New(c.Workload.Seed ^ 0xc2b2ae3d27d4eb4f)

	// Deterministic distinct probe: at soak sizes the sketch never
	// saturates, so the estimate must be the exact distinct value count.
	exactDistinct := distinctCount(oracle.vals)
	dres, derr := svc.Estimate(ctx, r, estimateDS, service.EstimateRequest{Op: estimate.OpDistinct, Conf: estConf})
	switch {
	case derr != nil:
		rn.fail("distinct", "Estimate(distinct): %v", derr)
	case dres.Exact && dres.Estimate != float64(exactDistinct):
		rn.fail("distinct-exact", "unsaturated distinct = %v, oracle has %d", dres.Estimate, exactDistinct)
	case !dres.Exact && relErr(dres.Estimate, float64(exactDistinct)) > 0.15:
		rn.fail("distinct-sketched", "sketched distinct = %v, oracle has %d", dres.Estimate, exactDistinct)
	default:
		rn.pass()
	}
	if rn.failed() {
		return nil
	}

	// Empty-range probes past the live maximum: COUNT estimates zero
	// exactly (no full-range draw can match), SUM is exactly zero, AVG is
	// the typed empty-range error.
	ghost := QueryRecord{Lo: oracle.vals[oracle.size()-1] + 1, K: estK}
	ghost.Hi = ghost.Lo + 1
	gres, gerr := svc.Estimate(ctx, r, estimateDS, service.EstimateRequest{Op: estimate.OpCount, Lo: ghost.Lo, Hi: ghost.Hi, K: estK, Conf: estConf})
	if gerr != nil || gres.Estimate != 0 || gres.QError != 1 {
		rn.failQuery("empty-count", ghost, "count past max: est %v, q-error %v, err %v (want 0, 1, nil)", gres.Estimate, gres.QError, gerr)
	} else {
		rn.pass()
	}
	gres, gerr = svc.Estimate(ctx, r, estimateDS, service.EstimateRequest{Op: estimate.OpSum, Lo: ghost.Lo, Hi: ghost.Hi, K: estK, Conf: estConf})
	if gerr != nil || !gres.Exact || gres.Estimate != 0 {
		rn.failQuery("empty-sum", ghost, "sum past max: est %v, exact %v, err %v (want exact 0)", gres.Estimate, gres.Exact, gerr)
	} else {
		rn.pass()
	}
	if _, aerr := svc.Estimate(ctx, r, estimateDS, service.EstimateRequest{Op: estimate.OpAvg, Lo: ghost.Lo, Hi: ghost.Hi, K: estK, Conf: estConf}); !errors.Is(aerr, core.ErrEmptyRange) {
		rn.failQuery("empty-avg", ghost, "avg past max returned %v, want ErrEmptyRange", aerr)
	} else {
		rn.pass()
	}
	if rn.failed() {
		return nil
	}

	// The COUNT estimator draws weight-proportionally from the full
	// range, so its uniform-row-pick analysis (estimate, interval, and
	// Chernoff q-error bound) is only calibrated on uniform-weight data —
	// the documented caveat. On skewed weights the self-scored q-error
	// must still agree with the oracle (both score against the true
	// count), but its accuracy gates do not apply.
	uniformW := c.Dataset.Weights == "" || c.Dataset.Weights == "uniform"

	// Pooled interval-coverage tally across every scored estimate in the
	// case; the per-op nominal rate is estConf, the gate floor
	// estCoverFloor.
	scored, covered := 0, 0
	for ti := 0; ti < len(trace) && !rn.failed(); ti++ {
		rec := trace[ti]
		if rec.Op != OpQuery {
			continue
		}
		a, b, inRange := oracle.posRange(rec.Lo, rec.Hi)
		if !inRange {
			continue
		}
		exactCount := float64(b - a + 1)
		exactSum, exactW := 0.0, 0.0
		for i := a; i <= b; i++ {
			exactSum += oracle.ws[i] * oracle.vals[i]
			exactW += oracle.ws[i]
		}
		exactAvg := exactSum / exactW
		violations := 0
		for rep := 0; rep < reps && !rn.failed(); rep++ {
			resC, cerr := svc.Estimate(ctx, r, estimateDS, service.EstimateRequest{Op: estimate.OpCount, Lo: rec.Lo, Hi: rec.Hi, K: estK, Conf: estConf})
			if cerr != nil {
				rn.failQuery("count-estimate", rec, "Estimate(count): %v", cerr)
				return nil
			}
			// The service scores its own q-error against an exact count it
			// computes internally; recomputing it against the oracle's exact
			// must agree, or the serving stack's notion of "exact" is wrong.
			if wantQ := estimate.QError(resC.Estimate, exactCount); !sameQ(resC.QError, wantQ) {
				rn.failQuery("qerror-vs-oracle", rec, "self-scored q-error %v, oracle scores %v (est %v, exact %v)", resC.QError, wantQ, resC.Estimate, exactCount)
				return nil
			}
			if resC.K != estK {
				rn.failQuery("count-draws", rec, "count consumed %d draws, want %d", resC.K, estK)
				return nil
			}
			if uniformW {
				if !math.IsInf(resC.QBound, 1) && resC.QError > resC.QBound {
					violations++
				}
				scored++
				if ciCovers(resC.CILo, resC.CIHi, exactCount) {
					covered++
				}
			}
			resS, serr := svc.Estimate(ctx, r, estimateDS, service.EstimateRequest{Op: estimate.OpSum, Lo: rec.Lo, Hi: rec.Hi, K: estK, Conf: estConf})
			if serr != nil {
				rn.failQuery("sum-estimate", rec, "Estimate(sum): %v", serr)
				return nil
			}
			scored++
			if ciCovers(resS.CILo, resS.CIHi, exactSum) {
				covered++
			}
			resA, aerr := svc.Estimate(ctx, r, estimateDS, service.EstimateRequest{Op: estimate.OpAvg, Lo: rec.Lo, Hi: rec.Hi, K: estK, Conf: estConf})
			if aerr != nil {
				rn.failQuery("avg-estimate", rec, "Estimate(avg): %v", aerr)
				return nil
			}
			scored++
			if ciCovers(resA.CILo, resA.CIHi, exactAvg) {
				covered++
			}
		}
		if rn.failed() {
			return nil
		}
		// Finite certified bounds fail with probability <= 1-estConf each
		// (and in practice far less: the Chernoff constant is loose), so
		// the per-query violation count exceeding the nominal budget is a
		// finding, not a fluctuation.
		if uniformW {
			rn.statGate("qerror-bound-rate", &rec, float64(violations), (1-estConf)*float64(reps))
		}
	}
	if rn.failed() {
		return nil
	}
	if scored >= 100 {
		misses := scored - covered
		rn.statGate("ci-coverage", nil, float64(misses), (1-estCoverFloor)*float64(scored))
	}

	rn.runEstimateChurn(ctx, values, weights)
	return nil
}

// runEstimateChurn drives the distinct estimator through the ingest
// overlay: a mutable dataset with rebuilds held off takes inserts (the
// threshold stream must absorb them exactly — the sketch is unsaturated
// at soak sizes) and deletes (the documented over-count: the stream
// cannot unsee a value, so the estimate pins to the ever-inserted
// distinct count until a rebuild re-bases it on the live arrays).
func (rn *run) runEstimateChurn(ctx context.Context, values, weights []float64) {
	svc := service.New(service.Options{})
	defer svc.Close()
	// RebuildThreshold far above the write volume: every write stays in
	// the overlay until the explicit Flush.
	mo := service.MutableOptions{RebuildThreshold: 1 << 20, MaxLag: 1 << 20, Seed: rn.c.Workload.Seed}
	if err := svc.CreateMutable(ctx, estimateDS, core.KindChunked, values, weights, mo); err != nil {
		rn.fail("churn-create", "CreateMutable: %v", err)
		return
	}
	oracle := newMutOracle(values, weights)
	ever := make(map[float64]bool, oracle.size())
	for _, v := range oracle.vals {
		ever[v] = true
	}
	r := rng.New(rn.c.Workload.Seed ^ 0x165667b19e3779f9)
	rq := rng.New(rn.c.Workload.Seed ^ 0x27220a95fe791189)
	lo, hi := oracle.vals[0], oracle.vals[oracle.size()-1]
	if hi <= lo {
		hi = lo + 1
	}
	// A mixed write burst: fresh continuous inserts (collision-free
	// against generated datasets) and deletes of original elements.
	for i := 0; i < 24; i++ {
		if i%3 == 2 && oracle.size() > 1 {
			victim := oracle.vals[r.Intn(oracle.size())]
			if err := svc.Delete(ctx, estimateDS, victim); err != nil {
				rn.fail("churn-delete", "Delete(%v): %v", victim, err)
				return
			}
			oracle.remove(victim)
			continue
		}
		v := lo + (hi-lo)*r.Float64()
		if err := svc.Insert(ctx, estimateDS, v, 0.5+2*r.Float64()); err != nil {
			rn.fail("churn-insert", "Insert(%v): %v", v, err)
			return
		}
		oracle.insert(v, 1)
		ever[v] = true
	}
	live := distinctCount(oracle.vals)
	res, err := svc.Estimate(ctx, rq, estimateDS, service.EstimateRequest{Op: estimate.OpDistinct, Conf: estConf})
	if err != nil {
		rn.fail("churn-distinct", "Estimate(distinct) under overlay: %v", err)
		return
	}
	// Unsaturated views count the union of base and streamed values
	// exactly: the ever-inserted distinct count, never below live.
	if !res.Exact || res.Estimate != float64(len(ever)) {
		rn.fail("churn-overcount", "overlay distinct = %v (exact %v), ever-inserted has %d", res.Estimate, res.Exact, len(ever))
		return
	}
	if res.Estimate < float64(live) {
		rn.fail("churn-undercount", "overlay distinct %v below live distinct %d", res.Estimate, live)
		return
	}
	rn.pass()
	// The rebuild re-bases the sketch and stream on the materialized live
	// arrays: the delete over-count must vanish.
	if err := svc.Flush(ctx, estimateDS); err != nil {
		rn.fail("churn-flush", "Flush: %v", err)
		return
	}
	res, err = svc.Estimate(ctx, rq, estimateDS, service.EstimateRequest{Op: estimate.OpDistinct, Conf: estConf})
	if err != nil {
		rn.fail("churn-distinct", "Estimate(distinct) after rebuild: %v", err)
		return
	}
	if !res.Exact || res.Estimate != float64(live) {
		rn.fail("churn-rebase", "post-rebuild distinct = %v (exact %v), live has %d", res.Estimate, res.Exact, live)
		return
	}
	rn.pass()
}

// distinctCount counts distinct values in a sorted slice.
func distinctCount(sorted []float64) int {
	n := 0
	for i, v := range sorted {
		if i == 0 || sorted[i-1] != v {
			n++
		}
	}
	return n
}

// relErr is the relative error of est against a nonzero exact value.
func relErr(est, exact float64) float64 {
	return math.Abs(est-exact) / math.Abs(exact)
}

// ciCovers reports whether [lo, hi] contains exact, with a hair of
// float tolerance so zero-width exact intervals compare safely.
func ciCovers(lo, hi, exact float64) bool {
	tol := 1e-9 * (1 + math.Abs(exact))
	return lo-tol <= exact && exact <= hi+tol
}

// sameQ compares two q-error scores, treating +Inf as equal to +Inf and
// allowing float roundoff between the service's internal exact count
// and the oracle's.
func sameQ(got, want float64) bool {
	if math.IsInf(got, 1) || math.IsInf(want, 1) {
		return math.IsInf(got, 1) && math.IsInf(want, 1)
	}
	return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
}
