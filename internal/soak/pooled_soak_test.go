package soak_test

import (
	"testing"

	"repro/internal/soak"
)

// The pooled target must warm windows, consume pooled inventory, and
// pass the pooled-vs-kernel equivalence, independence, conservation,
// and invalidation-under-churn gates on a healthy stack in both the
// smooth and skewed regimes.
func TestRunCasePooledRegimes(t *testing.T) {
	cases := map[string]soak.Case{
		"smooth": {
			Target:   soak.TargetPooled,
			Dataset:  soak.DatasetSpec{Seed: 21, N: 96},
			Workload: soak.WorkloadSpec{Seed: 23, Queries: 4, Reps: 120, K: 6},
		},
		"skewed": {
			Target:   soak.TargetPooled,
			Dataset:  soak.DatasetSpec{Seed: 27, N: 128, Values: "clustered", Weights: "zipf", Alpha: 1.2},
			Workload: soak.WorkloadSpec{Seed: 29, Queries: 4, Reps: 100, K: 4},
		},
	}
	for name, c := range cases {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := &soak.Harness{}
			out, err := h.RunCase(c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Failure != nil {
				t.Fatalf("false positive: %v", out.Failure)
			}
			if out.Gates == 0 {
				t.Fatal("no gates evaluated")
			}
		})
	}
}

// A short fuzz session over the pooled arm must execute cleanly: the
// bandit schedules it like any structure target and no gate trips on a
// healthy pool.
func TestPooledFuzzSessionClean(t *testing.T) {
	h := &soak.Harness{}
	res, err := h.Fuzz(soak.FuzzOptions{
		Seed:    61,
		Rounds:  3,
		Targets: []soak.Target{soak.TargetPooled},
		Log:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repros) != 0 {
		t.Fatalf("healthy pool produced findings: %v", res.Repros[0].Failure)
	}
	if res.Gates == 0 {
		t.Fatal("no gates evaluated across the session")
	}
}
