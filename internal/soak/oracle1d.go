package soak

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rangesample"
	"repro/internal/rng"
	"repro/internal/scratch"
)

// indepBins is the bucket count of the cross-query independence
// contingency tables.
const indepBins = 4

// run1D differentially tests one 1-D range-sampling structure
// (Chunked, AliasAug, or TreeWalk) against the Naive oracle, then
// repeats the workload through internal/core for the draw-for-draw
// identity contracts of the *Into/Context variants and the WoR path.
func (rn *run) run1D() error {
	c := rn.c
	values, weights, err := c.Dataset.Generate()
	if err != nil {
		return err
	}
	naive, err := rangesample.NewNaive(values, weights)
	if err != nil {
		return fmt.Errorf("soak: naive oracle: %w", err)
	}
	var subject rangesample.Sampler
	var kind core.Kind
	switch c.Target {
	case TargetChunked:
		subject, err = rangesample.NewChunked(values, weights)
		kind = core.KindChunked
	case TargetAliasAug:
		subject, err = rangesample.NewAliasAug(values, weights)
		kind = core.KindAliasAug
	case TargetTreeWalk:
		subject, err = rangesample.NewTreeWalk(values, weights)
		kind = core.KindTreeWalk
	default:
		return fmt.Errorf("soak: run1D on target %q", c.Target)
	}
	if err != nil {
		return fmt.Errorf("soak: build %s: %w", c.Target, err)
	}
	if rn.h.Mutate != nil {
		subject = rn.h.Mutate(subject)
	}

	n := naive.Len()
	sorted := make([]float64, n)
	sortedW := make([]float64, n)
	for i := 0; i < n; i++ {
		sorted[i] = naive.Value(i)
		sortedW[i] = naive.Weight(i)
	}
	queries := c.Queries(sorted)
	reps := c.reps()

	// Deterministic probe: a query beyond the stored values must report
	// an empty range and leave dst untouched.
	ghost := QueryRecord{Lo: sorted[n-1] + 1, Hi: sorted[n-1] + 2, K: 3}
	if out, ok := subject.Query(rng.New(c.Workload.Seed), ghostIv(ghost), ghost.K, nil); ok || len(out) != 0 {
		rn.failQuery("empty-range", ghost, "query past max value returned ok=%v with %d samples", ok, len(out))
	} else {
		rn.pass()
	}

	rSub := rng.New(c.Workload.Seed ^ 0x9e3779b97f4a7c15)
	rOra := rng.New(c.Workload.Seed ^ 0xbf58476d1ce4e5b9)
	for qi := range queries {
		q := queries[qi]
		iv := rangesample.Interval{Lo: q.Lo, Hi: q.Hi}
		a, b, inRange := posRange(sorted, q.Lo, q.Hi)
		probs := rangeProbs(sortedW, a, b)
		counts := make([]int, len(probs))
		oracleCounts := make([]int, len(probs))
		subVals := make([]float64, 0, reps*q.K)
		oraVals := make([]float64, 0, reps*q.K)
		var bins []int
		for rep := 0; rep < reps && !rn.failed(); rep++ {
			out, ok := subject.Query(rSub, iv, q.K, nil)
			if ok != inRange {
				rn.failQuery("empty-range-flag", q, "structure ok=%v, oracle range has %d elements", ok, b-a+1)
				break
			}
			if !inRange {
				break
			}
			if len(out) != q.K {
				rn.failQuery("sample-count", q, "got %d samples, want %d", len(out), q.K)
				break
			}
			for _, pos := range out {
				if pos < a || pos > b {
					rn.failQuery("support", q, "sampled position %d outside in-range positions [%d, %d]", pos, a, b)
					break
				}
				v := sorted[pos]
				if v < q.Lo || v > q.Hi {
					rn.failQuery("support", q, "sampled value %v outside [%v, %v]", v, q.Lo, q.Hi)
					break
				}
				counts[pos-a]++
				subVals = append(subVals, v)
			}
			oout, ook := naive.Query(rOra, iv, q.K, nil)
			if ook != inRange {
				return fmt.Errorf("soak: naive oracle disagrees with posRange on %+v", q)
			}
			for _, pos := range oout {
				oracleCounts[pos-a]++
				oraVals = append(oraVals, sorted[pos])
			}
			if len(out) > 0 {
				bins = append(bins, binOf(out[0]-a, b-a+1, indepBins))
			}
		}
		if rn.failed() || !inRange {
			continue
		}
		rn.gateChi2Probs("chi2-uniformity", &q, counts, probs)
		rn.gateTwoSampleCounts("chi2-vs-oracle", &q, counts, oracleCounts)
		rn.gateKSTwoSample("ks-vs-oracle", &q, subVals, oraVals)
		// Cross-query independence (Equation 1), gated per query: pairs
		// from different queries have different margins, and pooling them
		// would fake dependence (Simpson mixing).
		rn.gateIndependence("independence", pairUp(bins), indepBins)
		rn.checkScratchIdentity(q, subject, iv)
	}
	if rn.failed() {
		return nil
	}
	return rn.runCore1D(kind, values, weights, sorted, sortedW, queries)
}

// checkScratchIdentity asserts the documented stream-identity contract
// between Query and QueryScratch when the structure (or its mutation
// wrapper) implements ScratchSampler.
func (rn *run) checkScratchIdentity(q QueryRecord, subject rangesample.Sampler, iv rangesample.Interval) {
	ss, isScratch := subject.(rangesample.ScratchSampler)
	if !isScratch {
		return
	}
	seed := rn.c.Workload.Seed ^ (uint64(q.K) * 0x94d049bb133111eb)
	r1, r2 := rng.New(seed), rng.New(seed)
	o1, ok1 := subject.Query(r1, iv, q.K, nil)
	sc := &scratch.Arena{}
	o2, ok2 := ss.QueryScratch(r2, iv, q.K, nil, sc)
	if ok1 != ok2 || !equalInts(o1, o2) {
		rn.failQuery("identity-scratch", q, "Query and QueryScratch diverge: %v/%v vs %v/%v", o1, ok1, o2, ok2)
		return
	}
	if r1.Uint64() != r2.Uint64() {
		rn.failQuery("identity-scratch-stream", q, "Query and QueryScratch consumed different randomness")
		return
	}
	rn.pass()
}

// runCore1D runs the internal/core contract checks: the *Into and
// Context variants must be draw-for-draw identical to the allocating
// entry points, and the WoR path must return duplicate-free in-range
// subsets with uniform inclusion, erroring exactly when k exceeds the
// qualifying count.
func (rn *run) runCore1D(kind core.Kind, values, weights, sorted, sortedW []float64, queries []QueryRecord) error {
	cs, err := core.NewRangeSampler(kind, values, weights)
	if err != nil {
		return fmt.Errorf("soak: core build %v: %w", kind, err)
	}
	naive, err := core.NewRangeSampler(core.KindNaive, values, weights)
	if err != nil {
		return fmt.Errorf("soak: core naive oracle: %w", err)
	}
	rWoR := rng.New(rn.c.Workload.Seed ^ 0xd6e8feb86659fd93)
	rWoROra := rng.New(rn.c.Workload.Seed ^ 0xa0761d6478bd642f)
	reps := rn.c.reps()
	for qi := range queries {
		q := queries[qi]
		if rn.failed() {
			return nil
		}
		seed := rn.c.Workload.Seed + uint64(qi)*0x2545f4914f6cdd1d
		// Identity: Sample vs SampleInto on the same stream.
		r1, r2 := rng.New(seed), rng.New(seed)
		o1, ok1 := cs.Sample(r1, q.Lo, q.Hi, q.K)
		sc := core.NewScratch()
		o2, ok2 := cs.SampleInto(r2, q.Lo, q.Hi, q.K, make([]float64, 0, q.K), sc)
		if ok1 != ok2 || !equalFloats(o1, o2) {
			rn.failQuery("identity-into", q, "Sample vs SampleInto diverge: %v/%v vs %v/%v", o1, ok1, o2, ok2)
			return nil
		}
		if r1.Uint64() != r2.Uint64() {
			rn.failQuery("identity-into-stream", q, "Sample and SampleInto consumed different randomness")
			return nil
		}
		rn.pass()

		// WoR support + error semantics + uniform inclusion.
		a, b, inRange := posRange(sorted, q.Lo, q.Hi)
		if !inRange {
			continue
		}
		cnt := b - a + 1
		if _, werr := cs.SampleWoR(rng.New(seed), q.Lo, q.Hi, cnt+1); !errors.Is(werr, core.ErrSampleTooLarge) {
			rn.failQuery("wor-overdraw", q, "k = count+1 returned %v, want ErrSampleTooLarge", werr)
			return nil
		}
		rn.pass()
		k := q.K
		if k > cnt {
			k = cnt
		}
		if k == 0 {
			continue
		}
		incl := make([]int, cnt)
		oracleIncl := make([]int, cnt)
		worReps := reps / 4
		if worReps < 32 {
			worReps = 32
		}
		for rep := 0; rep < worReps; rep++ {
			out, werr := cs.SampleWoR(rWoR, q.Lo, q.Hi, k)
			if werr != nil {
				rn.failQuery("wor-error", q, "SampleWoR(k=%d, count=%d): %v", k, cnt, werr)
				return nil
			}
			if len(out) != k {
				rn.failQuery("wor-size", q, "got %d, want %d", len(out), k)
				return nil
			}
			seen := make(map[int]bool, k)
			for _, v := range out {
				pos := findPos(sorted, v)
				if pos < a || pos > b {
					rn.failQuery("wor-support", q, "WoR value %v outside range", v)
					return nil
				}
				if seen[pos] {
					rn.failQuery("wor-duplicate", q, "duplicate element %v in WoR sample", v)
					return nil
				}
				seen[pos] = true
				incl[pos-a]++
			}
			oout, werr := naive.SampleWoR(rWoROra, q.Lo, q.Hi, k)
			if werr != nil {
				return fmt.Errorf("soak: naive SampleWoR oracle: %w", werr)
			}
			for _, v := range oout {
				oracleIncl[findPos(sorted, v)-a]++
			}
		}
		rn.pass()
		// Differential inclusion: whatever the weight vector, the
		// structure's WoR inclusion counts must be homogeneous with the
		// naive baseline's. (Mapping duplicate values to their leftmost
		// position is the same deterministic collapse on both sides, so
		// homogeneity is unaffected.)
		rn.gateTwoSampleCounts("wor-inclusion-vs-naive", &q, incl, oracleIncl)
		// Uniform inclusion holds only in the uniform-weight regime —
		// SampleWoR's contract; with weights it dedupes weighted draws.
		if !hasAdjacentDup(sorted[a:b+1]) && allEqual(sortedW[a:b+1]) {
			probs := make([]float64, cnt)
			for i := range probs {
				probs[i] = 1 / float64(cnt)
			}
			rn.gateChi2Probs("wor-inclusion", &q, incl, probs)
		}
	}
	return nil
}

func ghostIv(q QueryRecord) rangesample.Interval {
	return rangesample.Interval{Lo: q.Lo, Hi: q.Hi}
}

// posRange maps a value interval to sorted positions [a, b]; inRange is
// false when no stored value qualifies.
func posRange(sorted []float64, lo, hi float64) (a, b int, inRange bool) {
	a = sort.SearchFloat64s(sorted, lo)
	b = sort.Search(len(sorted), func(i int) bool { return sorted[i] > hi }) - 1
	return a, b, a <= b
}

// rangeProbs returns the normalised weight vector of positions [a, b].
func rangeProbs(sortedW []float64, a, b int) []float64 {
	if a > b {
		return nil
	}
	probs := make([]float64, b-a+1)
	total := 0.0
	for i := a; i <= b; i++ {
		total += sortedW[i]
	}
	for i := range probs {
		probs[i] = sortedW[a+i] / total
	}
	return probs
}

// findPos locates v in sorted order (leftmost on duplicates; -1 when
// absent).
func findPos(sorted []float64, v float64) int {
	i := sort.SearchFloat64s(sorted, v)
	if i < len(sorted) && sorted[i] == v {
		return i
	}
	return -1
}

// pairUp turns a sequence of first-draw bins into non-overlapping
// (x_{2i}, x_{2i+1}) pairs: overlapping bigrams share elements and are
// not valid chi-squared observations.
func pairUp(bins []int) [][2]int {
	pairs := make([][2]int, 0, len(bins)/2)
	for i := 0; i+1 < len(bins); i += 2 {
		pairs = append(pairs, [2]int{bins[i], bins[i+1]})
	}
	return pairs
}

func allEqual(w []float64) bool {
	for i := 1; i < len(w); i++ {
		if w[i] != w[0] {
			return false
		}
	}
	return true
}

func hasAdjacentDup(sorted []float64) bool {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
