package soak

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReproVersion is the repro file format version; bump on incompatible
// Case changes so stale artifacts fail loudly instead of replaying the
// wrong thing.
const ReproVersion = 1

// Repro is a self-contained, minimised reproduction of one finding:
// the shrunk case (seeds, dataset spec, pinned query trace, fault
// schedule) plus the failure it reproduces. Serialised as JSON,
// re-executed with Replay (or `iqsfuzz -replay file`).
type Repro struct {
	Version int      `json:"version"`
	Case    Case     `json:"case"`
	Failure *Failure `json:"failure"`
}

// Replay re-executes a repro deterministically. The returned outcome's
// Failure is nil when the underlying discrepancy has been fixed.
func (h *Harness) Replay(rep *Repro) (Outcome, error) {
	if rep.Version != ReproVersion {
		return Outcome{}, fmt.Errorf("soak: repro version %d, this binary speaks %d", rep.Version, ReproVersion)
	}
	return h.RunCase(rep.Case)
}

// WriteRepro serialises a repro to path (pretty-printed: repros are
// read by humans bisecting a failure).
func WriteRepro(path string, rep *Repro) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("soak: encode repro: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRepro loads a repro file.
func ReadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := new(Repro)
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("soak: decode repro %s: %w", path, err)
	}
	return rep, nil
}
