package soak

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/rng"
)

// FuzzOptions configures a fuzzing session.
type FuzzOptions struct {
	// Seed drives every derived case seed; the same seed replays the
	// same session (modulo the Duration cutoff).
	Seed uint64
	// Rounds bounds the number of cases executed; 0 means unbounded
	// (Duration must then be set).
	Rounds int
	// Duration bounds wall-clock time; 0 means rounds-only.
	Duration time.Duration
	// Targets selects what to fuzz; nil means StructureTargets.
	Targets []Target
	// Server adds the end-to-end HTTP soak arms (plain, coalesced under
	// admission pressure, and — with Faults — EM faults plus churn).
	Server bool
	// Faults enables the fault-injected server arm.
	Faults bool
	// MaxFailures stops the session early after this many distinct
	// findings; 0 means 3.
	MaxFailures int
	// ArtifactsDir receives one minimised repro file per finding; ""
	// disables writing.
	ArtifactsDir string
	// Alpha, when positive, overrides the harness's per-gate
	// significance level.
	Alpha float64
	// Log receives progress lines; nil discards.
	Log func(format string, args ...any)
}

// ArmStat reports one scheduler arm after a session.
type ArmStat struct {
	Name   string  `json:"name"`
	Pulls  int     `json:"pulls"`
	Reward float64 `json:"mean_reward"`
}

// FuzzResult summarises a session.
type FuzzResult struct {
	Rounds    int       `json:"rounds"`
	Gates     int       `json:"gates"`
	Repros    []*Repro  `json:"repros,omitempty"`
	Artifacts []string  `json:"artifacts,omitempty"`
	Arms      []ArmStat `json:"arms"`
}

// arm is one bandit arm: a case template whose seeds and size are
// re-derived every pull.
type arm struct {
	name string
	c    Case
}

// Fuzz runs an adaptive differential fuzzing session: a UCB1 bandit
// schedules case templates (structure × dataset shape × workload
// shape), every failing case is shrunk to a minimal repro, and repro
// files land in ArtifactsDir. The harness h carries the gate
// configuration (and the Mutate seam used by the mutation tests).
func (h *Harness) Fuzz(opts FuzzOptions) (*FuzzResult, error) {
	if opts.Rounds <= 0 && opts.Duration <= 0 {
		return nil, fmt.Errorf("soak: fuzz needs Rounds or Duration")
	}
	if opts.Alpha > 0 {
		h.Alpha = opts.Alpha
	}
	maxFail := opts.MaxFailures
	if maxFail <= 0 {
		maxFail = 3
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	arms := buildArms(opts)
	if len(arms) == 0 {
		return nil, fmt.Errorf("soak: no targets selected")
	}
	names := make([]string, len(arms))
	for i, a := range arms {
		names[i] = a.name
	}
	b := NewBandit(names)
	seeds := rng.New(opts.Seed ^ 0x6a09e667f3bcc908)

	res := &FuzzResult{}
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = time.Now().Add(opts.Duration)
	}
	seen := make(map[string]bool) // (target, check) already reported
	for round := 0; ; round++ {
		if opts.Rounds > 0 && round >= opts.Rounds {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		i := b.Next()
		c := arms[i].c
		// Fresh seeds and a fresh size every pull: the arm fixes the
		// shape, the pull fixes the instance.
		c.Dataset.Seed = seeds.Uint64()
		c.Workload.Seed = seeds.Uint64()
		if c.Faults.ReadProb > 0 || c.Faults.WriteProb > 0 {
			c.Faults.Seed = seeds.Uint64()
		}
		if c.Dataset.N <= 0 {
			c.Dataset.N = 16 + seeds.Intn(241)
		}
		out, err := h.RunCase(c)
		if err != nil {
			return nil, fmt.Errorf("soak: arm %s: %w", arms[i].name, err)
		}
		res.Rounds++
		res.Gates += out.Gates
		reward := out.Suspicion
		if out.Failure != nil {
			reward = 1
			key := string(out.Failure.Target) + "/" + out.Failure.Check
			if !seen[key] {
				seen[key] = true
				logf("round %d arm %s: FAIL %s — shrinking", round, arms[i].name, out.Failure)
				min := h.Shrink(c, out.Failure)
				mout, merr := h.RunCase(min)
				if merr != nil || mout.Failure == nil {
					min = c // shrinking went sideways; keep the original
					mout = out
				}
				rep := &Repro{Version: ReproVersion, Case: min, Failure: mout.Failure}
				res.Repros = append(res.Repros, rep)
				if opts.ArtifactsDir != "" {
					if path, werr := writeArtifact(opts.ArtifactsDir, len(res.Repros), rep); werr != nil {
						logf("round %d: cannot write repro: %v", round, werr)
					} else {
						res.Artifacts = append(res.Artifacts, path)
						logf("round %d: repro written to %s", round, path)
					}
				}
				if len(res.Repros) >= maxFail {
					break
				}
			}
		}
		b.Update(i, reward)
	}
	for i := range arms {
		res.Arms = append(res.Arms, ArmStat{Name: b.Name(i), Pulls: b.Pulls(i), Reward: b.Mean(i)})
	}
	return res, nil
}

// writeArtifact drops a repro file into dir, creating it on demand.
func writeArtifact(dir string, n int, rep *Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("repro-%s-%s-%03d.json", rep.Case.Target, rep.Failure.Check, n))
	return path, WriteRepro(path, rep)
}

// buildArms expands the selected targets into bandit arms: each target
// gets a smooth arm (uniform values and weights) and a skewed arm
// (clustered values, zipf weights); the 1-D structures additionally
// get a without-replacement arm, and the mutable ingest target a
// write-heavy WoR churn arm. The server target contributes a plain
// arm, a coalesced arm under admission pressure, and — when faults are
// on — an EM-fault arm with snapshot churn.
func buildArms(opts FuzzOptions) []arm {
	targets := opts.Targets
	if targets == nil {
		targets = StructureTargets
	}
	var arms []arm
	for _, t := range targets {
		if t == TargetServer || t == TargetCluster {
			continue // configured below via opts.Server
		}
		arms = append(arms, arm{
			name: string(t) + "/smooth",
			c:    Case{Target: t, Workload: WorkloadSpec{Queries: 6}},
		})
		arms = append(arms, arm{
			name: string(t) + "/skewed",
			c: Case{
				Target:   t,
				Dataset:  DatasetSpec{Values: "clustered", Weights: "zipf", Alpha: 1.2},
				Workload: WorkloadSpec{Queries: 6},
			},
		})
		switch t {
		case TargetChunked, TargetAliasAug, TargetTreeWalk:
			arms = append(arms, arm{
				name: string(t) + "/wor",
				c: Case{
					Target:   t,
					Dataset:  DatasetSpec{Weights: "random"},
					Workload: WorkloadSpec{Queries: 6, WoR: true},
				},
			})
		case TargetMutable:
			// The write-heavy arm: more steps means more delta-log churn
			// and more rebuild/swap cycles per case.
			arms = append(arms, arm{
				name: string(t) + "/wor-churn",
				c: Case{
					Target:   t,
					Dataset:  DatasetSpec{Weights: "random"},
					Workload: WorkloadSpec{Queries: 10, WoR: true},
				},
			})
		}
	}
	if opts.Server {
		arms = append(arms, arm{
			name: "server/plain",
			c:    Case{Target: TargetServer, Workload: WorkloadSpec{Queries: 8, K: 8}, Requests: 384},
		})
		arms = append(arms, arm{
			name: "server/coalesced-pressure",
			c: Case{
				Target:   TargetServer,
				Dataset:  DatasetSpec{Weights: "zipf", Alpha: 1.1},
				Workload: WorkloadSpec{Queries: 8, K: 8, WoR: true},
				Coalesce: 8, InFlight: 4, Clients: 8, Requests: 384,
			},
		})
		if opts.Faults {
			arms = append(arms, arm{
				name: "server/faults-churn",
				c: Case{
					Target:   TargetServer,
					Workload: WorkloadSpec{Queries: 8, K: 8},
					Faults:   FaultSpec{ReadProb: 0.02, WriteProb: 0.02, MaxConsecutive: 4},
					Clients:  4, Requests: 384, Churn: true,
				},
			})
		}
		// The cluster arms boot real data-node HTTP servers, so they ride
		// the same opt-in as the other end-to-end arms.
		arms = append(arms, arm{
			name: "cluster/differential",
			c: Case{
				Target:   TargetCluster,
				Dataset:  DatasetSpec{Weights: "zipf", Alpha: 1.1},
				Workload: WorkloadSpec{Queries: 6, K: 8, WoR: true, Reps: 96},
				Shards:   5, Nodes: 3, Replicas: 2,
			},
		})
		arms = append(arms, arm{
			name: "cluster/failover",
			c: Case{
				Target:   TargetCluster,
				Workload: WorkloadSpec{Queries: 6, K: 8, Reps: 96},
				Shards:   4, Nodes: 2, Replicas: 2, Kill: true,
			},
		})
	}
	return arms
}
