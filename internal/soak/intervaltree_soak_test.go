package soak_test

import (
	"testing"

	"repro/internal/soak"
)

// The interval tree was the one multi-dimensional structure with no
// integration coverage; these tests drive it through the shared soak
// harness across the dataset regimes the fuzzer schedules.
func TestIntervalTreeSoakRegimes(t *testing.T) {
	cases := map[string]soak.DatasetSpec{
		"uniform":       {Seed: 81, N: 80},
		"zipf-weights":  {Seed: 82, N: 80, Weights: "zipf", Alpha: 1.4},
		"clustered":     {Seed: 83, N: 80, Values: "clustered", Clusters: 5, Sigma: 0.02},
		"random-weight": {Seed: 84, N: 80, Weights: "random"},
		"tiny":          {Seed: 85, N: 3},
	}
	for name, ds := range cases {
		name, ds := name, ds
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := &soak.Harness{}
			out, err := h.RunCase(soak.Case{
				Target:   soak.TargetIntervalTree,
				Dataset:  ds,
				Workload: soak.WorkloadSpec{Seed: ds.Seed + 1, Queries: 6, Reps: 150},
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.Failure != nil {
				t.Fatalf("false positive: %v", out.Failure)
			}
			if out.Gates == 0 {
				t.Fatal("no gates evaluated")
			}
		})
	}
}

// Many seeds, moderate size: the statistical gates over the stabbing
// sampler stay quiet across repeated independent instances.
func TestIntervalTreeSoakManySeeds(t *testing.T) {
	h := &soak.Harness{}
	for seed := uint64(0); seed < 8; seed++ {
		out, err := h.RunCase(soak.Case{
			Target:   soak.TargetIntervalTree,
			Dataset:  soak.DatasetSpec{Seed: 100 + seed, N: 40, Weights: "random"},
			Workload: soak.WorkloadSpec{Seed: 200 + seed, Queries: 4, Reps: 80},
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Failure != nil {
			t.Fatalf("seed %d: false positive: %v", seed, out.Failure)
		}
	}
}
