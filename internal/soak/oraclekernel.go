package soak

import (
	"errors"
	"fmt"

	"repro/internal/alias"
	"repro/internal/rng"
	"repro/internal/treesample"
	"repro/internal/wor"
)

// runAlias differentially tests the alias structure (Theorem 1): the
// bulk kernels must be draw-for-draw identical to the scalar path, and
// the draw distribution must match the weight vector.
func (rn *run) runAlias() error {
	c := rn.c
	_, weights, err := c.Dataset.Generate()
	if err != nil {
		return err
	}
	al, err := alias.New(weights)
	if err != nil {
		return fmt.Errorf("soak: alias build: %w", err)
	}
	n := al.Len()
	total := 0.0
	for _, w := range weights {
		total += w
	}
	probs := make([]float64, n)
	for i, w := range weights {
		probs[i] = w / total
	}

	queries := c.Queries(identityValues(n))
	reps := c.reps()
	rDraw := rng.New(c.Workload.Seed ^ 0x9e3779b97f4a7c15)
	var bins []int
	for qi := range queries {
		q := queries[qi]
		s := q.K * reps
		// Identity: SampleBulk is specified stream-identical to s scalar
		// Sample calls — same outputs, same final generator state.
		seed := c.Workload.Seed + uint64(qi)*0x9e3779b97f4a7c15
		r1, r2 := rng.New(seed), rng.New(seed)
		scalar := make([]int, 0, s)
		for i := 0; i < s; i++ {
			scalar = append(scalar, al.Sample(r1))
		}
		bulk := al.SampleBulk(r2, s, 0, make([]int, 0, s))
		if !equalInts(scalar, bulk) {
			rn.failQuery("identity-bulk", q, "SampleBulk diverges from scalar Sample after %d draws", s)
			return nil
		}
		if r1.Uint64() != r2.Uint64() {
			rn.failQuery("identity-bulk-stream", q, "SampleBulk consumed different randomness than scalar path")
			return nil
		}
		rn.pass()
		// Identity: CountsBulkInto vs CountsInto on the same stream.
		r3, r4 := rng.New(seed+1), rng.New(seed+1)
		c1 := al.CountsInto(r3, s, make([]int, n))
		c2 := al.CountsBulkInto(r4, s, make([]int, n))
		if !equalInts(c1, c2) {
			rn.failQuery("identity-counts", q, "CountsBulkInto diverges from CountsInto")
			return nil
		}
		rn.pass()
		// Distribution: fresh draws against the weight vector, plus the
		// cross-query independence pairs.
		counts := make([]int, n)
		for i := 0; i < s; i++ {
			v := al.Sample(rDraw)
			if v < 0 || v >= n {
				rn.failQuery("support", q, "Sample returned %d outside [0, %d)", v, n)
				return nil
			}
			counts[v]++
			if i == 0 {
				bins = append(bins, binOf(v, n, indepBins))
			}
		}
		rn.gateChi2Probs("chi2-weights", &q, counts, probs)
		// Differential: the bulk draws above came from the same
		// distribution; two-sample gate between scalar and bulk counts.
		bulkCounts := make([]int, n)
		for _, v := range bulk {
			bulkCounts[v]++
		}
		rn.gateTwoSampleCounts("chi2-scalar-vs-bulk", &q, counts, bulkCounts)
		if rn.failed() {
			return nil
		}
	}
	rn.gateIndependence("independence", pairUp(bins), indepBins)
	return nil
}

// runWoR differentially tests the WR/WoR kernels: Floyd's uniform WoR
// against uniform inclusion, the weighted WoR heap against a naive
// sequential-draw oracle, and every bulk kernel against its scalar twin.
func (rn *run) runWoR() error {
	c := rn.c
	_, weights, err := c.Dataset.Generate()
	if err != nil {
		return err
	}
	n := len(weights)
	queries := c.Queries(identityValues(n))
	reps := c.reps()

	// Error semantics: an overdraw must fail with ErrSampleTooLarge.
	if _, werr := wor.UniformWoR(rng.New(1), n, n+1); !errors.Is(werr, wor.ErrSampleTooLarge) {
		rn.fail("wor-overdraw", "UniformWoR(n, n+1) returned %v, want ErrSampleTooLarge", werr)
		return nil
	}
	rn.pass()

	rDraw := rng.New(c.Workload.Seed ^ 0x2545f4914f6cdd1d)
	rOra := rng.New(c.Workload.Seed ^ 0x9e3779b97f4a7c15)
	for qi := range queries {
		q := queries[qi]
		s := q.K
		if s > n {
			s = n
		}
		if s == 0 {
			continue
		}
		seed := c.Workload.Seed + uint64(qi)*0xbf58476d1ce4e5b9

		// Identity: every bulk kernel against its scalar twin.
		r1, r2 := rng.New(seed), rng.New(seed)
		wr1 := wor.UniformWRInto(r1, n, s, nil)
		wr2 := wor.UniformWRBulkInto(r2, n, s, nil)
		if !equalInts(wr1, wr2) || r1.Uint64() != r2.Uint64() {
			rn.failQuery("identity-wr-bulk", q, "UniformWRBulkInto diverges from UniformWRInto")
			return nil
		}
		r3, r4 := rng.New(seed+1), rng.New(seed+1)
		wor1, err1 := wor.UniformWoRInto(r3, n, s, nil, make(map[int]struct{}, s))
		wor2, err2 := wor.UniformWoRBulkInto(r4, n, s, nil, make(map[int]struct{}, s))
		if err1 != nil || err2 != nil || !equalInts(wor1, wor2) || r3.Uint64() != r4.Uint64() {
			rn.failQuery("identity-wor-bulk", q, "UniformWoRBulkInto diverges from UniformWoRInto (%v, %v)", err1, err2)
			return nil
		}
		r5, r6 := rng.New(seed+2), rng.New(seed+2)
		ww1, err1 := wor.WeightedWoRInto(r5, weights, s, nil, make([]float64, s))
		ww2, err2 := wor.WeightedWoRBulkInto(r6, weights, s, nil, make([]float64, s))
		if err1 != nil || err2 != nil || !equalInts(ww1, ww2) || r5.Uint64() != r6.Uint64() {
			rn.failQuery("identity-weighted-bulk", q, "WeightedWoRBulkInto diverges from WeightedWoRInto (%v, %v)", err1, err2)
			return nil
		}
		rn.pass()

		// Uniform WoR: duplicate-free in-range subsets with uniform
		// inclusion and a uniform first element (exchangeability).
		incl := make([]int, n)
		first := make([]int, n)
		for rep := 0; rep < reps; rep++ {
			out, werr := wor.UniformWoR(rDraw, n, s)
			if werr != nil {
				rn.failQuery("wor-error", q, "UniformWoR(%d, %d): %v", n, s, werr)
				return nil
			}
			if len(out) != s {
				rn.failQuery("wor-size", q, "got %d, want %d", len(out), s)
				return nil
			}
			seen := make(map[int]bool, s)
			for _, v := range out {
				if v < 0 || v >= n {
					rn.failQuery("wor-support", q, "index %d outside [0, %d)", v, n)
					return nil
				}
				if seen[v] {
					rn.failQuery("wor-duplicate", q, "duplicate index %d", v)
					return nil
				}
				seen[v] = true
				incl[v]++
			}
			first[out[0]]++
		}
		uni := make([]float64, n)
		for i := range uni {
			uni[i] = 1 / float64(n)
		}
		rn.gateChi2Probs("wor-inclusion", &q, incl, uni)
		rn.gateChi2Probs("wor-first-element", &q, first, uni)

		// Weighted WoR vs the naive sequential oracle. The
		// Efraimidis–Spirakis heap emits winners in heap order (not draw
		// order), so only the *inclusion* distribution is comparable —
		// and by their theorem it must match successive sampling exactly.
		wIncl := make([]int, n)
		oIncl := make([]int, n)
		for rep := 0; rep < reps; rep++ {
			out, werr := wor.WeightedWoR(rDraw, weights, s)
			if werr != nil {
				rn.failQuery("weighted-wor-error", q, "WeightedWoR: %v", werr)
				return nil
			}
			seen := make(map[int]bool, s)
			for _, v := range out {
				if v < 0 || v >= n || seen[v] {
					rn.failQuery("weighted-wor-support", q, "bad or duplicate index %d", v)
					return nil
				}
				seen[v] = true
				wIncl[v]++
			}
			for _, v := range naiveWeightedWoR(rOra, weights, s) {
				oIncl[v]++
			}
		}
		rn.gateTwoSampleCounts("weighted-wor-inclusion-vs-oracle", &q, wIncl, oIncl)
		if rn.failed() {
			return nil
		}
	}
	return nil
}

// naiveWeightedWoR is the obviously-correct weighted without-replacement
// oracle: s successive categorical draws over the remaining weights.
func naiveWeightedWoR(r *rng.Source, weights []float64, s int) []int {
	w := append([]float64(nil), weights...)
	out := make([]int, 0, s)
	for j := 0; j < s; j++ {
		total := 0.0
		for _, wi := range w {
			total += wi
		}
		u := r.Float64() * total
		idx := -1
		acc := 0.0
		for i, wi := range w {
			if wi == 0 {
				continue
			}
			acc += wi
			idx = i
			if u < acc {
				break
			}
		}
		out = append(out, idx)
		w[idx] = 0
	}
	return out
}

// runTreeSample differentially tests the two tree-sampling structures
// of Section 5 against each other and against the leaf-weight
// distribution, over a random tree generated from the case seed.
func (rn *run) runTreeSample() error {
	c := rn.c
	_, weights, err := c.Dataset.Generate()
	if err != nil {
		return err
	}
	m := len(weights)
	if m < 3 {
		m = 3
	}
	rShape := rng.New(c.Dataset.Seed ^ 0x94d049bb133111eb)
	parent := make([]int, m)
	parent[0] = -1
	hasChild := make([]bool, m)
	for i := 1; i < m; i++ {
		parent[i] = rShape.Intn(i)
		hasChild[parent[i]] = true
	}
	lw := make([]float64, m)
	for i := range lw {
		if !hasChild[i] {
			lw[i] = weights[i%len(weights)]
		}
	}
	t, err := treesample.FromParents(parent, lw)
	if err != nil {
		return fmt.Errorf("soak: tree build: %w", err)
	}
	walk := treesample.NewWalkSampler(t)
	euler := treesample.NewEulerSampler(t)
	leafW := t.LeafWeights()

	queries := c.Queries(identityValues(t.NumNodes()))
	reps := c.reps()
	rWalk := rng.New(c.Workload.Seed ^ 0x2545f4914f6cdd1d)
	rEuler := rng.New(c.Workload.Seed ^ 0xd6e8feb86659fd93)
	for qi := range queries {
		q := queries[qi]
		node := treesample.NodeID(int(q.frac() * float64(t.NumNodes())))
		if int(node) >= t.NumNodes() {
			node = t.Root()
		}
		lo, hi := t.Span(node)
		span := hi - lo + 1
		probs := make([]float64, span)
		total := 0.0
		for i := lo; i <= hi; i++ {
			total += leafW[i]
		}
		for i := range probs {
			probs[i] = leafW[lo+i] / total
		}
		wCounts := make([]int, span)
		eCounts := make([]int, span)
		for rep := 0; rep < reps; rep++ {
			for _, leaf := range walk.Query(rWalk, node, q.K, nil) {
				pos, _ := t.Span(leaf)
				if !t.IsLeaf(leaf) || pos < lo || pos > hi {
					rn.failQuery("walk-support", q, "walk sampled node %d outside subtree span [%d, %d]", leaf, lo, hi)
					return nil
				}
				wCounts[pos-lo]++
			}
			for _, leaf := range euler.Query(rEuler, node, q.K, nil) {
				pos, _ := t.Span(leaf)
				if !t.IsLeaf(leaf) || pos < lo || pos > hi {
					rn.failQuery("euler-support", q, "euler sampled node %d outside subtree span [%d, %d]", leaf, lo, hi)
					return nil
				}
				eCounts[pos-lo]++
			}
		}
		rn.gateChi2Probs("walk-chi2-weights", &q, wCounts, probs)
		rn.gateChi2Probs("euler-chi2-weights", &q, eCounts, probs)
		rn.gateTwoSampleCounts("walk-vs-euler", &q, wCounts, eCounts)
		if rn.failed() {
			return nil
		}
	}
	return nil
}

// identityValues builds the sorted pseudo-value array 0..n-1 the
// workload generator derives index-space queries from.
func identityValues(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}
