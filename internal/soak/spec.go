// Package soak is the differential soak-fuzzing harness: it generates
// random datasets, query workloads, and fault schedules from explicit
// seeds, runs every sampling structure in this repository against the
// naive oracle, and gates the results on exact draw-for-draw equality
// (for paths specified to be stream-identical) and on chi-squared / KS
// statistics (for paths specified to be distribution-identical). The
// paper's two guarantees — per-query uniformity and cross-query
// independence — are exactly the invariants the aggressive hot-path
// work (arena reuse, bulk kernels, request coalescing) can silently
// break, so this package is the correctness backstop every perf PR
// runs under.
//
// Everything is deterministic given a Case: the same specs replay to
// the same draws, which is what makes shrunk repro files
// re-executable. cmd/iqsfuzz is the CLI front end.
package soak

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// Target names one structure or serving path under differential test.
type Target string

// The structure targets cross-check one package against the naive
// oracle; TargetServer drives the real HTTP serving stack end-to-end.
const (
	TargetChunked      Target = "chunked"      // rangesample.Chunked (Theorem 3)
	TargetAliasAug     Target = "aliasaug"     // rangesample.AliasAug (Lemma 2)
	TargetTreeWalk     Target = "treewalk"     // rangesample.TreeWalk (§3.2)
	TargetAlias        Target = "alias"        // alias.Alias (Theorem 1)
	TargetWoR          Target = "wor"          // wor kernels (WR/WoR/weighted WoR)
	TargetTreeSample   Target = "treesample"   // treesample Walk vs Euler (§5)
	TargetIntervalTree Target = "intervaltree" // intervaltree stabbing (multi-d path)
	TargetMutable      Target = "mutable"      // ingest write path (delta log + overlay + rebuilds)
	TargetPooled       Target = "pooled"       // consume-once sample pool vs live kernel (+ invalidation under churn)
	TargetEstimate     Target = "estimate"     // approximate COUNT/SUM/AVG/DISTINCT vs exact oracle (q-error + coverage)
	TargetServer       Target = "server"       // service → shard → server over HTTP
	TargetCluster      Target = "cluster"      // router + data nodes vs single-node coordinator (draw identity + failover)
)

// StructureTargets are the per-package differential targets (everything
// but the end-to-end server soak).
var StructureTargets = []Target{
	TargetChunked, TargetAliasAug, TargetTreeWalk,
	TargetAlias, TargetWoR, TargetTreeSample, TargetIntervalTree,
	TargetMutable, TargetPooled, TargetEstimate,
}

// DatasetSpec deterministically describes an input dataset.
type DatasetSpec struct {
	Seed     uint64  `json:"seed"`
	N        int     `json:"n"`
	Values   string  `json:"values"`  // "uniform" | "clustered" | "grid"
	Weights  string  `json:"weights"` // "uniform" | "zipf" | "random"
	Alpha    float64 `json:"alpha,omitempty"`
	Clusters int     `json:"clusters,omitempty"`
	Sigma    float64 `json:"sigma,omitempty"`
}

// Generate materialises the dataset. The same spec always produces the
// same arrays.
func (d DatasetSpec) Generate() (values, weights []float64, err error) {
	if d.N < 1 {
		return nil, nil, fmt.Errorf("soak: dataset n = %d", d.N)
	}
	r := rng.New(d.Seed)
	switch d.Values {
	case "", "uniform":
		values = dataset.UniformValues(r, d.N)
	case "clustered":
		k, sigma := d.Clusters, d.Sigma
		if k <= 0 {
			k = 8
		}
		if sigma <= 0 {
			sigma = 0.05
		}
		values = dataset.ClusteredValues(r, d.N, k, sigma)
	case "grid":
		// Distinct, sorted, duplicate-free — the regime the server soak
		// needs to map returned values back to elements exactly.
		values = make([]float64, d.N)
		for i := range values {
			values[i] = float64(i)
		}
	default:
		return nil, nil, fmt.Errorf("soak: unknown value distribution %q", d.Values)
	}
	switch d.Weights {
	case "", "uniform":
		weights = dataset.UniformWeights(d.N)
	case "zipf":
		a := d.Alpha
		if a <= 0 {
			a = 1
		}
		weights = dataset.ZipfWeights(r, d.N, a)
	case "random":
		weights = dataset.RandomWeights(r, d.N, 0.5, 2)
	default:
		return nil, nil, fmt.Errorf("soak: unknown weight distribution %q", d.Weights)
	}
	return values, weights, nil
}

// WorkloadSpec deterministically describes a query workload.
type WorkloadSpec struct {
	Seed        uint64  `json:"seed"`
	Queries     int     `json:"queries"`
	Reps        int     `json:"reps"` // repeated draws per query, for the statistical gates
	K           int     `json:"k"`    // sample budget per draw
	Selectivity float64 `json:"selectivity,omitempty"`
	WoR         bool    `json:"wor,omitempty"` // also exercise without-replacement paths
}

// FaultSpec deterministically describes an EM fault schedule for the
// service-backed targets.
type FaultSpec struct {
	ReadProb       float64 `json:"read_prob,omitempty"`
	WriteProb      float64 `json:"write_prob,omitempty"`
	MaxConsecutive int     `json:"max_consecutive,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
}

// Op values for QueryRecord.Op on the mutable target. An empty Op is a
// plain read query on every target.
const (
	OpQuery  = ""    // read: sample Lo..Hi
	OpInsert = "ins" // write: insert value Lo with weight Hi
	OpDelete = "del" // write: delete one element with value Lo
)

// QueryRecord is one replayable query. Range targets use Lo/Hi as the
// value interval; the interval-tree target stabs at Lo; node/index
// targets (alias, wor, treesample) derive their per-query choice from
// Lo as a fraction in [0, 1). The mutable target interleaves writes
// into the trace via Op (OpInsert/OpDelete reinterpret Lo/Hi as the
// written value and weight).
type QueryRecord struct {
	Lo  float64 `json:"lo"`
	Hi  float64 `json:"hi"`
	K   int     `json:"k"`
	WoR bool    `json:"wor,omitempty"`
	Op  string  `json:"op,omitempty"`
}

// Case is one self-contained fuzz case: everything RunCase needs to
// re-execute a run bit-for-bit.
type Case struct {
	Target   Target       `json:"target"`
	Dataset  DatasetSpec  `json:"dataset"`
	Workload WorkloadSpec `json:"workload"`
	// Trace, when non-empty, overrides the generated workload — the
	// shrinker materialises and then minimises it.
	Trace []QueryRecord `json:"trace,omitempty"`

	// Server-soak knobs (TargetServer only).
	Faults   FaultSpec `json:"faults,omitempty"`
	Shards   int       `json:"shards,omitempty"`
	Coalesce int       `json:"coalesce,omitempty"`
	InFlight int       `json:"in_flight,omitempty"`
	Clients  int       `json:"clients,omitempty"`
	Requests int       `json:"requests,omitempty"`
	Churn    bool      `json:"churn,omitempty"`

	// Cluster-soak knobs (TargetCluster only): data-node count, replica
	// width, and whether a node-kill failover phase runs after the
	// healthy phases.
	Nodes    int  `json:"nodes,omitempty"`
	Replicas int  `json:"replicas,omitempty"`
	Kill     bool `json:"kill,omitempty"`
}

// Queries returns the case's query trace, generating it from the
// workload spec when no explicit trace is pinned. sortedValues is the
// dataset in sorted order; query intervals always span stored values so
// empty ranges stay rare (the empty-range path has its own dedicated
// probe in the oracles).
func (c *Case) Queries(sortedValues []float64) []QueryRecord {
	if len(c.Trace) > 0 {
		return c.Trace
	}
	if c.Target == TargetMutable {
		return c.mutableTrace(sortedValues)
	}
	w := c.Workload
	nq := w.Queries
	if nq < 1 {
		nq = 8
	}
	r := rng.New(w.Seed)
	n := len(sortedValues)
	out := make([]QueryRecord, nq)
	for i := range out {
		sel := w.Selectivity
		if sel <= 0 {
			sel = 0.02 + 0.48*r.Float64()
		}
		span := int(sel * float64(n))
		if span < 1 {
			span = 1
		}
		if span > n {
			span = n
		}
		a := r.Intn(n - span + 1)
		k := w.K
		if k <= 0 {
			k = 1 + r.Intn(32)
		}
		wor := w.WoR && r.Bernoulli(0.5)
		if wor && k > span {
			k = span // a WoR budget never exceeds the qualifying count
		}
		out[i] = QueryRecord{Lo: sortedValues[a], Hi: sortedValues[a+span-1], K: k, WoR: wor}
	}
	return out
}

// mutableTrace generates the mixed write/read schedule of the mutable
// target: a burst of 1–3 writes lands before every read step, so each
// query observes a different instantaneous dataset state. Inserted
// values are fresh continuous draws inside the original value span
// (collision-free against the generated datasets), deletes target
// either an earlier insert or an original element — re-deleting an
// already-removed original exercises the miss path on both sides.
func (c *Case) mutableTrace(sorted []float64) []QueryRecord {
	w := c.Workload
	nq := w.Queries
	if nq < 1 {
		nq = 8
	}
	r := rng.New(w.Seed)
	n := len(sorted)
	lo, hi := sorted[0], sorted[n-1]
	if hi <= lo {
		hi = lo + 1
	}
	var out []QueryRecord
	var pool []float64 // values inserted so far, deletion candidates
	for i := 0; i < nq; i++ {
		for j, nw := 0, 1+r.Intn(3); j < nw; j++ {
			switch {
			case len(pool) > 0 && r.Bernoulli(0.35):
				di := r.Intn(len(pool))
				out = append(out, QueryRecord{Op: OpDelete, Lo: pool[di]})
				pool = append(pool[:di], pool[di+1:]...)
			case r.Bernoulli(0.25):
				out = append(out, QueryRecord{Op: OpDelete, Lo: sorted[r.Intn(n)]})
			default:
				v := lo + (hi-lo)*r.Float64()
				out = append(out, QueryRecord{Op: OpInsert, Lo: v, Hi: 0.5 + 2*r.Float64()})
				pool = append(pool, v)
			}
		}
		sel := w.Selectivity
		if sel <= 0 {
			sel = 0.1 + 0.6*r.Float64()
		}
		span := sel * (hi - lo)
		qlo := lo + (hi-lo-span)*r.Float64()
		k := w.K
		if k <= 0 {
			k = 1 + r.Intn(16)
		}
		wor := w.WoR && r.Bernoulli(0.5)
		out = append(out, QueryRecord{Lo: qlo, Hi: qlo + span, K: k, WoR: wor})
	}
	return out
}

// reps returns the per-query draw repetition count with its default.
func (c *Case) reps() int {
	if c.Workload.Reps > 0 {
		return c.Workload.Reps
	}
	return 200
}

// frac maps a query's Lo to a deterministic fraction in [0, 1) for the
// targets that pick nodes or indices rather than value ranges.
func (q *QueryRecord) frac() float64 {
	f := q.Lo - math.Floor(q.Lo)
	if f < 0 || f >= 1 || math.IsNaN(f) {
		return 0
	}
	return f
}
