package soak

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/em"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/shard"
)

// serverFailure is a finding recorded by a traffic worker; workers
// cannot call rn.fail directly (run is not goroutine-safe), so the
// first finding is captured under a mutex and reported after the join.
type serverFailure struct {
	check  string
	detail string
	query  QueryRecord
}

// runServer drives the real serving stack — service → shard →
// server.Handler over HTTP — under snapshot churn, EM faults, and
// admission pressure, and asserts the paper's guarantees end-to-end:
// every response stays inside the requested range and the stable
// region's sampling distribution matches the weight vector no matter
// what the fault schedule and the coalescer are doing.
func (rn *run) runServer() error {
	c := rn.c
	ds := c.Dataset
	// The grid regime (distinct integer values) is forced so every
	// returned value maps back to exactly one element.
	ds.Values = "grid"
	values, weights, err := ds.Generate()
	if err != nil {
		return err
	}
	n := len(values)

	shards := c.Shards
	if shards < 1 {
		shards = 4
	}
	sopts := shard.Options{Shards: shards}
	if f := c.Faults; f.ReadProb > 0 || f.WriteProb > 0 {
		mc := f.MaxConsecutive
		if mc <= 0 {
			mc = 4 // keep the fault stream transient so the soak terminates
		}
		devs := make([]*em.Device, shards)
		for i := range devs {
			dev, derr := em.NewDevice(16, 256)
			if derr != nil {
				return fmt.Errorf("soak: em device: %w", derr)
			}
			dev.SetFaultPolicy(&em.FaultPolicy{
				ReadFailProb:   f.ReadProb,
				WriteFailProb:  f.WriteProb,
				MaxConsecutive: mc,
				Seed:           f.Seed + uint64(i)*0x9e3779b97f4a7c15,
			})
			devs[i] = dev
		}
		sopts.Service = func(i int) service.Options {
			return service.Options{Mirror: devs[i%len(devs)], Retry: em.RetryPolicy{MaxAttempts: 8}}
		}
	}
	ctx := context.Background()
	coord, err := shard.New(ctx, "soak", values, weights, sopts)
	if err != nil {
		return fmt.Errorf("soak: coordinator: %w", err)
	}
	srv := server.New(coord, server.Options{
		MaxInFlight: c.InFlight,
		Seed:        c.Workload.Seed,
		Coalesce:    c.Coalesce,
		Timeout:     30 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Snapshot churn: insert/delete values outside the stable region
	// [0, n) while traffic flows. The gates below assert the stable
	// region's distribution and support are unaffected — a stale
	// snapshot, a torn swap, or coalescer cross-contamination shows up
	// as an out-of-range value or a skewed count.
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	if c.Churn {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for j := 0; ; j++ {
				select {
				case <-stopChurn:
					return
				default:
				}
				v := float64(n + j%64)
				_ = coord.Insert(ctx, v, 1)
				_ = coord.Delete(ctx, v)
			}
		}()
	}
	defer func() {
		close(stopChurn)
		churnWG.Wait()
	}()

	total := c.Requests
	if total <= 0 {
		total = 256
	}
	clients := c.Clients
	if clients < 1 {
		clients = 1
	}
	k := c.Workload.K
	if k <= 0 {
		k = 8
	}
	if k > n {
		k = n
	}
	queries := c.Queries(values)
	fullLo, fullHi := values[0], values[n-1]
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	probs := make([]float64, n)
	for i, w := range weights {
		probs[i] = w / totalW
	}

	var (
		mu     sync.Mutex
		first  *serverFailure
		counts = make([]int, n)
		bins   []int
		okReqs int
		sheds  int
	)
	record := func(f serverFailure) {
		mu.Lock()
		if first == nil {
			first = &f
		}
		mu.Unlock()
	}
	client := ts.Client()
	doRequest := func(idx int) {
		q := QueryRecord{Lo: fullLo, Hi: fullHi, K: k}
		fullRange := true
		if idx%4 == 3 && len(queries) > 0 {
			q = queries[idx%len(queries)]
			q.WoR = false
			fullRange = false
		} else if c.Workload.WoR && idx%8 == 1 {
			q.WoR = true
		}
		url := fmt.Sprintf("%s/sample?lo=%v&hi=%v&k=%d&wor=%v", ts.URL, q.Lo, q.Hi, q.K, q.WoR)
		resp, rerr := client.Get(url)
		if rerr != nil {
			record(serverFailure{"server-transport", rerr.Error(), q})
			return
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Admission pressure sheds by design; tolerated.
			mu.Lock()
			sheds++
			mu.Unlock()
			return
		default:
			record(serverFailure{"server-status", fmt.Sprintf("unexpected HTTP %d for %s", resp.StatusCode, url), q})
			return
		}
		var body struct {
			Samples []float64 `json:"samples"`
			Count   int       `json:"count"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&body); derr != nil {
			record(serverFailure{"server-decode", derr.Error(), q})
			return
		}
		if body.Count != len(body.Samples) {
			record(serverFailure{"server-count", fmt.Sprintf("count %d but %d samples", body.Count, len(body.Samples)), q})
			return
		}
		if len(body.Samples) != q.K {
			record(serverFailure{"server-size", fmt.Sprintf("got %d samples, want %d", len(body.Samples), q.K), q})
			return
		}
		seen := make(map[int]bool, len(body.Samples))
		for _, v := range body.Samples {
			if v < q.Lo || v > q.Hi {
				record(serverFailure{"server-support", fmt.Sprintf("sample %v outside [%v, %v]", v, q.Lo, q.Hi), q})
				return
			}
			pos := int(v)
			if v != math.Trunc(v) || pos < 0 || pos >= n {
				record(serverFailure{"server-ghost", fmt.Sprintf("sample %v is not a stable-region element", v), q})
				return
			}
			if q.WoR {
				if seen[pos] {
					record(serverFailure{"server-wor-duplicate", fmt.Sprintf("duplicate %v in WoR response", v), q})
					return
				}
				seen[pos] = true
			}
			if fullRange {
				mu.Lock()
				counts[pos]++
				mu.Unlock()
			}
		}
		mu.Lock()
		okReqs++
		if fullRange && clients == 1 && len(body.Samples) > 0 {
			bins = append(bins, binOf(int(body.Samples[0]), n, indepBins))
		}
		mu.Unlock()
	}

	if clients == 1 {
		for i := 0; i < total; i++ {
			doRequest(i)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < total; i += clients {
					doRequest(i)
				}
			}(w)
		}
		wg.Wait()
	}

	if first != nil {
		rn.failQuery(first.check, first.query, "%s", first.detail)
		return nil
	}
	rn.pass()
	if okReqs == 0 {
		rn.fail("server-starved", "all %d requests shed (%d) or failed under in_flight=%d clients=%d",
			total, sheds, c.InFlight, clients)
		return nil
	}
	rn.gateChi2Probs("server-uniformity", nil, counts, probs)
	if clients == 1 {
		rn.gateIndependence("server-independence", pairUp(bins), indepBins)
	}
	return nil
}
