package soak

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/shard"
)

// runCluster is the multi-node differential soak: a router fronting
// live data-node HTTP servers versus the single-node coordinator on
// the same dataset and the same seeds. Because the router plans every
// budget and stream seed locally, its responses are specified to be
// draw-for-draw identical to the coordinator's — the strongest gate in
// this package, checked directly — and the statistical gates (full
// dataset uniformity, cross-query independence) re-verify the paper's
// guarantees through the wire path. With Kill set, the primary owner
// of shard 0 is crashed mid-case and the identity gate re-runs: a
// failover to a replica must not perturb a single draw.
func (rn *run) runCluster() error {
	c := rn.c
	ds := c.Dataset
	// The grid regime (distinct integer values) is forced so every
	// returned value maps back to exactly one element.
	ds.Values = "grid"
	values, weights, err := ds.Generate()
	if err != nil {
		return err
	}
	n := len(values)
	shards := c.Shards
	if shards < 1 {
		shards = 4
	}
	nNodes := c.Nodes
	if nNodes < 2 {
		nNodes = 2
	}
	replicas := c.Replicas
	if replicas < 1 || c.Kill && replicas < 2 {
		// A kill phase needs a surviving owner per shard.
		replicas = 2
	}
	if replicas > nNodes {
		replicas = nNodes
	}

	// Boot: listeners first so every node and the router share the
	// final address list (the ring is a pure function of it).
	listeners := make([]net.Listener, nNodes)
	addrs := make([]string, nNodes)
	for i := range listeners {
		l, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return fmt.Errorf("soak: cluster listen: %w", lerr)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	ctx := context.Background()
	hosts := make([]*cluster.NodeHost, nNodes)
	servers := make([]*server.Server, nNodes)
	defer func() {
		for i := range servers {
			if servers[i] != nil {
				sctx, cancel := context.WithTimeout(context.Background(), time.Second)
				servers[i].Shutdown(sctx)
				cancel()
			}
			if listeners[i] != nil {
				listeners[i].Close()
			}
			if hosts[i] != nil {
				hosts[i].Close()
			}
		}
	}()
	for i := range hosts {
		nh, nerr := cluster.NewNodeHost(ctx, values, weights, cluster.NodeOptions{
			Nodes:    addrs,
			Self:     addrs[i],
			Replicas: replicas,
			Shards:   shards,
		})
		if nerr != nil {
			return fmt.Errorf("soak: cluster node %d: %w", i, nerr)
		}
		hosts[i] = nh
		srv := server.New(nh, server.Options{Node: nh, Seed: c.Workload.Seed + uint64(i), Timeout: 30 * time.Second})
		servers[i] = srv
		go http.Serve(listeners[i], srv.Handler())
	}
	rt, rerr := cluster.NewRouter(values, weights, cluster.Options{
		Nodes:          addrs,
		Replicas:       replicas,
		Shards:         shards,
		AttemptTimeout: 5 * time.Second,
		Backoff:        200 * time.Microsecond,
	})
	if rerr != nil {
		return fmt.Errorf("soak: cluster router: %w", rerr)
	}
	defer rt.Close()
	coord, cerr := shard.New(ctx, "soak", values, weights, shard.Options{Shards: shards})
	if cerr != nil {
		return fmt.Errorf("soak: coordinator: %w", cerr)
	}
	defer coord.Close()

	seeds := rng.New(c.Workload.Seed ^ 0x5bd1e995c2b2ae35)
	checkIdentity := func(tag string, q QueryRecord) {
		if rn.failed() {
			return
		}
		seed := seeds.Uint64()
		var want, got []float64
		var werr, gerr error
		if q.WoR {
			want, werr = coord.SampleWoRInto(ctx, rng.New(seed), q.Lo, q.Hi, q.K, nil)
			got, gerr = rt.SampleWoRInto(ctx, rng.New(seed), q.Lo, q.Hi, q.K, nil)
		} else {
			want, werr = coord.SampleInto(ctx, rng.New(seed), q.Lo, q.Hi, q.K, nil)
			got, gerr = rt.SampleInto(ctx, rng.New(seed), q.Lo, q.Hi, q.K, nil)
		}
		if (werr == nil) != (gerr == nil) {
			rn.failQuery(tag+"-error", q, "coordinator err = %v, router err = %v", werr, gerr)
			return
		}
		if werr != nil {
			rn.pass()
			return
		}
		if len(want) != len(got) {
			rn.failQuery(tag, q, "coordinator drew %d samples, router drew %d", len(want), len(got))
			return
		}
		for i := range want {
			if want[i] != got[i] {
				rn.failQuery(tag, q, "draw %d: coordinator %v, router %v — draw identity broken", i, want[i], got[i])
				return
			}
		}
		rn.pass()
	}

	// Phase 1: draw identity over the case's query trace (mixed ranges,
	// budgets, and WoR) on shared seeds.
	queries := c.Queries(values)
	for _, q := range queries {
		checkIdentity("cluster-identity", q)
	}

	// Phase 2: distribution and independence of the router's own output
	// over the full dataset — the wire path must not bias what the
	// kernels drew. Every rep also re-checks identity: it is free and
	// pins the two engines together for the whole phase.
	k := c.Workload.K
	if k <= 0 {
		k = 8
	}
	if k > n {
		k = n
	}
	fullLo, fullHi := values[0], values[n-1]
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	probs := make([]float64, n)
	for i, w := range weights {
		probs[i] = w / totalW
	}
	counts := make([]int, n)
	var bins []int
	full := QueryRecord{Lo: fullLo, Hi: fullHi, K: k}
	reps := c.reps()
	for i := 0; i < reps && !rn.failed(); i++ {
		seed := seeds.Uint64()
		want, werr := coord.SampleInto(ctx, rng.New(seed), fullLo, fullHi, k, nil)
		got, gerr := rt.SampleInto(ctx, rng.New(seed), fullLo, fullHi, k, nil)
		if werr != nil || gerr != nil {
			rn.failQuery("cluster-draw", full, "full-range draw: coordinator err = %v, router err = %v", werr, gerr)
			break
		}
		ok := true
		for j, v := range got {
			if j < len(want) && want[j] != v {
				rn.failQuery("cluster-identity", full, "draw %d: coordinator %v, router %v — draw identity broken", j, want[j], v)
				ok = false
				break
			}
			pos := int(v)
			if v != math.Trunc(v) || pos < 0 || pos >= n {
				rn.failQuery("cluster-support", full, "sample %v is not a dataset element", v)
				ok = false
				break
			}
			counts[pos]++
		}
		if !ok {
			break
		}
		if len(got) > 0 {
			bins = append(bins, binOf(int(got[0]), n, indepBins))
		}
	}
	if !rn.failed() {
		rn.gateChi2Probs("cluster-uniformity", nil, counts, probs)
		rn.gateIndependence("cluster-independence", pairUp(bins), indepBins)
	}

	// Phase 3 (Kill): crash the primary owner of shard 0 and re-run the
	// identity gates — replicas hold identical data and the seeds fix
	// the draws, so failover must be invisible in the samples. The
	// victim comes from the router's own partition map.
	if c.Kill && !rn.failed() {
		raw, perr := rt.PartitionJSON()
		var pm cluster.PartitionMap
		if perr == nil {
			perr = json.Unmarshal(raw, &pm)
		}
		if perr != nil || len(pm.Assignment) == 0 || len(pm.Assignment[0]) == 0 {
			return fmt.Errorf("soak: cluster partition map: %v", perr)
		}
		victim := -1
		for i, a := range addrs {
			if a == pm.Assignment[0][0] {
				victim = i
			}
		}
		if victim < 0 {
			return fmt.Errorf("soak: cluster victim %q not in node list", pm.Assignment[0][0])
		}
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		servers[victim].Shutdown(sctx)
		cancel()
		listeners[victim].Close()
		servers[victim], listeners[victim] = nil, nil

		for _, q := range queries {
			checkIdentity("cluster-failover-identity", q)
		}
		// Full-range draws touch every shard, so the victim's primaries
		// are guaranteed to be attempted and failed over.
		for i := 0; i < 16 && !rn.failed(); i++ {
			checkIdentity("cluster-failover-identity", full)
		}
		if !rn.failed() {
			if rt.Failovers() == 0 {
				rn.fail("cluster-failover", "killing node %s produced no failovers", addrs[victim])
			} else {
				rn.pass()
			}
		}
	}
	return nil
}
