package soak

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/samplepool"
	"repro/internal/service"
)

// pooledDS is the dataset name the pooled soak hosts.
const pooledDS = "pooled"

// warmAttempts bounds the PoolHot probe loop per window. The probes
// record demand and the interleaved yields hand the single filler
// goroutine the CPU, so a healthy pool warms a window in a few dozen
// iterations even on one core; exhausting the budget means the filler
// is wedged or the invalidation path purges entries it should not.
const warmAttempts = 8192

// runPooled differentially tests the consume-once sample pool: the same
// dataset is served by a pooled service and a pool-free kernel service,
// and repeated draws through both must be statistically identical (the
// package's core claim: j pooled + k−j kernel draws are distributed
// exactly like k kernel draws) and independent within a step. A second
// phase drives a pooled *mutable* dataset through writes and a rebuild
// to check the invalidation contract: the pool gates itself off while
// overlay deltas exist, purges on the snapshot swap, and never serves a
// draw from the pre-write distribution afterwards (a deleted value
// reappearing is a deterministic support violation, not a statistic).
func (rn *run) runPooled() error {
	c := rn.c
	values, weights, err := c.Dataset.Generate()
	if err != nil {
		return err
	}
	poolCfg := &samplepool.Config{Capacity: 256, MinTakes: 1, Seed: c.Workload.Seed | 1}
	svcPool := service.New(service.Options{Pool: poolCfg})
	defer svcPool.Close()
	svcKern := service.New(service.Options{})
	defer svcKern.Close()
	ctx := context.Background()
	if err := svcPool.Create(ctx, pooledDS, core.KindChunked, values, weights); err != nil {
		return fmt.Errorf("soak: create pooled: %w", err)
	}
	if err := svcKern.Create(ctx, pooledDS, core.KindChunked, values, weights); err != nil {
		return fmt.Errorf("soak: create kernel twin: %w", err)
	}
	oracle := newMutOracle(values, weights)
	trace := c.Queries(append([]float64(nil), oracle.vals...))
	reps := c.reps()
	// Distinct fixed streams: the two services must agree in
	// distribution, never draw-for-draw.
	rP := rng.New(c.Workload.Seed ^ 0x9e3779b97f4a7c15)
	rK := rng.New(c.Workload.Seed ^ 0x3c6ef372fe94f82a)
	buf := make([]float64, 0, 64)

	for ti := 0; ti < len(trace) && !rn.failed(); ti++ {
		rec := trace[ti]
		if rec.Op != OpQuery {
			continue
		}
		a, b, inRange := oracle.posRange(rec.Lo, rec.Hi)
		if !inRange {
			continue
		}
		k := rec.K
		if k < 1 {
			k = 1
		}
		if !rn.warmWindow(svcPool, rec, k) {
			return nil
		}
		cellVals, cellProbs := oracle.cells(a, b)
		countsP := make([]int, len(cellVals))
		countsK := make([]int, len(cellVals))
		var bins []int
		for rep := 0; rep < reps && !rn.failed(); rep++ {
			outP, perr := svcPool.SampleInto(ctx, rP, pooledDS, rec.Lo, rec.Hi, k, buf[:0])
			if perr != nil {
				rn.failQuery("pooled-sample", rec, "pooled SampleInto: %v", perr)
				return nil
			}
			if len(outP) != k {
				rn.failQuery("pooled-count", rec, "pooled path returned %d draws, want %d", len(outP), k)
				return nil
			}
			for _, v := range outP {
				ci := cellIndex(cellVals, v)
				if ci < 0 {
					rn.failQuery("pooled-support", rec, "pooled draw %v is not a stored value in [%v, %v]", v, rec.Lo, rec.Hi)
					return nil
				}
				countsP[ci]++
			}
			bins = append(bins, binOf(cellIndex(cellVals, outP[0]), len(cellVals), indepBins))
			outK, kerr := svcKern.SampleInto(ctx, rK, pooledDS, rec.Lo, rec.Hi, k, buf[:0])
			if kerr != nil {
				rn.failQuery("kernel-sample", rec, "kernel SampleInto: %v", kerr)
				return nil
			}
			for _, v := range outK {
				if ci := cellIndex(cellVals, v); ci >= 0 {
					countsK[ci]++
				}
			}
		}
		if rn.failed() {
			return nil
		}
		rn.gateChi2Probs("chi2-pooled", &rec, countsP, cellProbs)
		rn.gateTwoSampleCounts("pooled-vs-kernel", &rec, countsP, countsK)
		rn.gateIndependence("independence-pooled", pairUp(bins), indepBins)
	}
	if rn.failed() {
		return nil
	}

	// Conservation: consumed pooled draws can never exceed what the
	// filler produced — a violation means a draw was served twice.
	st := svcPool.PoolStats(pooledDS)
	if st.Draws > st.RefillDraws {
		rn.fail("pool-conservation", "consumed %d pooled draws but the filler only produced %d", st.Draws, st.RefillDraws)
		return nil
	}
	rn.pass()
	if st.Hits == 0 && st.PartialHits == 0 {
		rn.fail("pool-exercised", "no request consumed pooled inventory despite warmed windows (hits=0, partials=0, misses=%d)", st.Misses)
		return nil
	}
	rn.pass()

	rn.runPooledChurn(ctx, values, weights, poolCfg, reps)
	return nil
}

// warmWindow probes one window until the pool reports it fully stocked,
// yielding so the filler goroutine gets scheduled. Exhausting the
// budget is a finding (wedged filler or over-eager purge), not a spec
// error.
func (rn *run) warmWindow(svc *service.Service, rec QueryRecord, k int) bool {
	for i := 0; i < warmAttempts; i++ {
		if svc.PoolHot(pooledDS, rec.Lo, rec.Hi, k) {
			rn.pass()
			return true
		}
		runtime.Gosched()
	}
	rn.failQuery("pool-warm", rec, "window never fully pooled after %d probes", warmAttempts)
	return false
}

// runPooledChurn is the invalidation phase: a pooled mutable dataset
// has one window warmed, then mutated, then rebuilt. Gates: the pooled
// path must disable itself while overlay deltas are pending, the
// rebuild's snapshot swap must purge the pool, and post-rebuild draws
// must follow the post-write distribution exactly — in particular a
// draw of the deleted value would prove a stale pooled sample survived
// the swap.
func (rn *run) runPooledChurn(ctx context.Context, values, weights []float64, poolCfg *samplepool.Config, reps int) {
	svc := service.New(service.Options{Pool: poolCfg})
	defer svc.Close()
	mo := service.MutableOptions{RebuildThreshold: 64, MaxLag: 1 << 20, Seed: rn.c.Workload.Seed}
	if err := svc.CreateMutable(ctx, pooledDS, core.KindChunked, values, weights, mo); err != nil {
		rn.fail("pool-churn-create", "CreateMutable: %v", err)
		return
	}
	oracle := newMutOracle(values, weights)
	n := oracle.size()
	// The churn window: the middle half of the dataset, wide enough to
	// hold the writes below and a meaningful post-rebuild chi-squared.
	a, b := n/4, n-1-n/4
	if b <= a {
		a, b = 0, n-1
	}
	rec := QueryRecord{Lo: oracle.vals[a], Hi: oracle.vals[b], K: 4}
	if !rn.warmWindow(svc, rec, rec.K) {
		return
	}
	before := svc.PoolStats(pooledDS)

	// Writes inside the window: one delete and two inserts straddling
	// the deleted value's weight. The oracle mirrors every write.
	victim := oracle.vals[(a+b)/2]
	if err := svc.Delete(ctx, pooledDS, victim); err != nil {
		rn.failQuery("pool-churn-write", rec, "Delete(%v): %v", victim, err)
		return
	}
	oracle.remove(victim)
	r := rng.New(rn.c.Workload.Seed ^ 0xa5a5a5a5a5a5a5a5)
	for i := 0; i < 2; i++ {
		v := rec.Lo + (rec.Hi-rec.Lo)*r.Float64()
		w := 0.5 + 2*r.Float64()
		if err := svc.Insert(ctx, pooledDS, v, w); err != nil {
			rn.failQuery("pool-churn-write", rec, "Insert(%v, %v): %v", v, w, err)
			return
		}
		oracle.insert(v, w)
	}
	// With overlay deltas pending the pooled fast path must gate itself
	// off: serving pre-write pooled draws now would be a stale read.
	if svc.PoolHot(pooledDS, rec.Lo, rec.Hi, rec.K) {
		rn.failQuery("pool-churn-gate", rec, "PoolHot still true with overlay deltas pending")
		return
	}
	rn.pass()

	// The rebuild publishes a fresh snapshot; the swap must purge the
	// pool (visible as an invalidation) before the window re-warms from
	// the post-write distribution.
	if err := svc.Flush(ctx, pooledDS); err != nil {
		rn.fail("pool-churn-flush", "Flush: %v", err)
		return
	}
	after := svc.PoolStats(pooledDS)
	if after.Invalidations <= before.Invalidations {
		rn.failQuery("pool-invalidate", rec, "rebuild swap did not invalidate the pool (%d -> %d)", before.Invalidations, after.Invalidations)
		return
	}
	rn.pass()
	if !rn.warmWindow(svc, rec, rec.K) {
		return
	}
	aa, bb, inRange := oracle.posRange(rec.Lo, rec.Hi)
	if !inRange {
		rn.failQuery("pool-churn-oracle", rec, "churn window empty after writes")
		return
	}
	cellVals, cellProbs := oracle.cells(aa, bb)
	counts := make([]int, len(cellVals))
	// Duplicate values can leave other live elements sharing the
	// victim's value; only a value with no live copies proves staleness.
	victimGone := cellIndex(cellVals, victim) < 0
	rQ := rng.New(rn.c.Workload.Seed ^ 0x0123456789abcdef)
	buf := make([]float64, 0, 64)
	for rep := 0; rep < reps && !rn.failed(); rep++ {
		out, err := svc.SampleInto(ctx, rQ, pooledDS, rec.Lo, rec.Hi, rec.K, buf[:0])
		if err != nil {
			rn.failQuery("pool-churn-sample", rec, "post-rebuild SampleInto: %v", err)
			return
		}
		for _, v := range out {
			if victimGone && v == victim {
				rn.failQuery("pool-stale-draw", rec, "deleted value %v served after rebuild: stale pooled draw", v)
				return
			}
			ci := cellIndex(cellVals, v)
			if ci < 0 {
				rn.failQuery("pool-churn-support", rec, "post-rebuild draw %v not in live window", v)
				return
			}
			counts[ci]++
		}
	}
	if rn.failed() {
		return
	}
	rn.gateChi2Probs("chi2-pooled-churn", &rec, counts, cellProbs)
}
