package soak_test

import (
	"testing"

	"repro/internal/soak"
)

// The estimate target must hold its gates on a healthy stack with fixed
// seeds: self-scored q-errors agree with the oracle, finite certified
// bounds are violated no more often than their nominal rate, pooled
// interval coverage stays above the 90% floor at nominal 95%, the
// unsaturated distinct estimate is exact, and the churn phase sees the
// documented overlay over-count collapse on rebuild.
func TestRunCaseEstimateRegimes(t *testing.T) {
	cases := map[string]soak.Case{
		"smooth": {
			Target:   soak.TargetEstimate,
			Dataset:  soak.DatasetSpec{Seed: 41, N: 160},
			Workload: soak.WorkloadSpec{Seed: 43, Queries: 4, Reps: 120},
		},
		"skewed": {
			Target:   soak.TargetEstimate,
			Dataset:  soak.DatasetSpec{Seed: 47, N: 192, Values: "clustered", Weights: "zipf", Alpha: 1.2},
			Workload: soak.WorkloadSpec{Seed: 53, Queries: 4, Reps: 100},
		},
	}
	for name, c := range cases {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := &soak.Harness{}
			out, err := h.RunCase(c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Failure != nil {
				t.Fatalf("false positive: %v", out.Failure)
			}
			if out.Gates == 0 {
				t.Fatal("no gates evaluated")
			}
		})
	}
}

// A short fuzz session over the estimate arm must execute cleanly under
// the bandit with derived seeds, like every other structure target.
func TestEstimateFuzzSessionClean(t *testing.T) {
	h := &soak.Harness{}
	res, err := h.Fuzz(soak.FuzzOptions{
		Seed:    71,
		Rounds:  3,
		Targets: []soak.Target{soak.TargetEstimate},
		Log:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repros) != 0 {
		t.Fatalf("healthy estimator produced findings: %v", res.Repros[0].Failure)
	}
	if res.Gates == 0 {
		t.Fatal("no gates evaluated across the session")
	}
}
