package soak_test

import (
	"testing"

	"repro/internal/soak"
)

// The end-to-end soak over the real HTTP serving stack must pass on a
// healthy build in every regime the fuzzer schedules: plain, coalesced
// under admission pressure, and EM faults with snapshot churn.
func TestServerSoakRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("server soak in -short mode")
	}
	cases := map[string]soak.Case{
		"plain": {
			Target:   soak.TargetServer,
			Dataset:  soak.DatasetSpec{Seed: 61, N: 48},
			Workload: soak.WorkloadSpec{Seed: 62, Queries: 6, K: 8},
			Requests: 256,
		},
		"coalesced-pressure": {
			Target:   soak.TargetServer,
			Dataset:  soak.DatasetSpec{Seed: 63, N: 48, Weights: "zipf", Alpha: 1.2},
			Workload: soak.WorkloadSpec{Seed: 64, Queries: 6, K: 8, WoR: true},
			Coalesce: 8, InFlight: 4, Clients: 8, Requests: 256,
		},
		"faults-churn": {
			Target:   soak.TargetServer,
			Dataset:  soak.DatasetSpec{Seed: 65, N: 48},
			Workload: soak.WorkloadSpec{Seed: 66, Queries: 6, K: 8},
			Faults:   soak.FaultSpec{ReadProb: 0.05, WriteProb: 0.05, MaxConsecutive: 3, Seed: 67},
			Clients:  4, Requests: 256, Churn: true,
		},
	}
	for name, c := range cases {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := &soak.Harness{}
			out, err := h.RunCase(c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Failure != nil {
				t.Fatalf("false positive: %v", out.Failure)
			}
			if out.Gates < 2 {
				t.Fatalf("only %d gates evaluated", out.Gates)
			}
		})
	}
}

// The serial server soak (one client) is deterministic end to end —
// the property -replay relies on for server repros.
func TestServerSoakSerialDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("server soak in -short mode")
	}
	c := soak.Case{
		Target:   soak.TargetServer,
		Dataset:  soak.DatasetSpec{Seed: 71, N: 32},
		Workload: soak.WorkloadSpec{Seed: 72, Queries: 4, K: 4},
		Requests: 64,
	}
	h := &soak.Harness{}
	a, err := h.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Gates != b.Gates || (a.Failure == nil) != (b.Failure == nil) {
		t.Fatalf("server soak nondeterministic: %+v vs %+v", a, b)
	}
}
