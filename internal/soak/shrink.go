package soak

import "sort"

// shrinkBudget caps RunCase invocations per Shrink call; each case run
// is cheap (a fraction of a second) so this bounds shrinking to a few
// seconds worst-case.
const shrinkBudget = 48

// Shrink minimises a failing case while preserving the failure: it
// pins the generated query trace into the case, then greedily applies
// a fixed reduction schedule — shrink the trace, halve the dataset,
// halve the draw counts, simplify the distributions, strip faults and
// churn — accepting a reduction only when the reduced case still fails
// the same check. The result is what lands in the repro file.
func (h *Harness) Shrink(c Case, f *Failure) Case {
	budget := shrinkBudget
	stillFails := func(cand Case) bool {
		if budget <= 0 {
			return false
		}
		budget--
		out, err := h.RunCase(cand)
		return err == nil && out.Failure != nil && out.Failure.Check == f.Check
	}

	// Pin the trace so later reductions (which change the dataset the
	// trace was generated from) cannot silently change the queries.
	if len(c.Trace) == 0 {
		if vals, err := c.traceValues(); err == nil {
			cand := c
			cand.Trace = c.Queries(vals)
			if stillFails(cand) {
				c = cand
			}
		}
	}

	// Trace reduction: try halves first, then drop queries one by one.
	for len(c.Trace) > 1 {
		half := len(c.Trace) / 2
		lo, hi := c, c
		lo.Trace = c.Trace[:half]
		hi.Trace = c.Trace[half:]
		if stillFails(lo) {
			c = lo
			continue
		}
		if stillFails(hi) {
			c = hi
			continue
		}
		break
	}
	for i := 0; i < len(c.Trace) && len(c.Trace) > 1 && budget > 0; {
		cand := c
		cand.Trace = append(append([]QueryRecord(nil), c.Trace[:i]...), c.Trace[i+1:]...)
		if stillFails(cand) {
			c = cand
			continue // same index now names the next query
		}
		i++
	}

	// Scalar halving: dataset size, repetitions, sample budget.
	shrinkInt := func(get func(*Case) *int, floor int) {
		for budget > 0 {
			cand := c
			p := get(&cand)
			if *p <= floor {
				return
			}
			*p /= 2
			if *p < floor {
				*p = floor
			}
			if !stillFails(cand) {
				return
			}
			c = cand
		}
	}
	shrinkInt(func(c *Case) *int { return &c.Dataset.N }, 2)
	shrinkInt(func(c *Case) *int { return &c.Workload.Reps }, 8)
	shrinkInt(func(c *Case) *int { return &c.Workload.K }, 1)
	shrinkInt(func(c *Case) *int { return &c.Requests }, 8)
	shrinkInt(func(c *Case) *int { return &c.Shards }, 1)
	if c.Nodes > 2 {
		shrinkInt(func(c *Case) *int { return &c.Nodes }, 2)
	}

	// Simplifications: each is attempted once and kept if the failure
	// survives without it.
	try := func(mutate func(*Case)) {
		cand := c
		mutate(&cand)
		if stillFails(cand) {
			c = cand
		}
	}
	if c.Target != TargetServer && c.Target != TargetCluster {
		try(func(c *Case) { c.Dataset.Values = "uniform" })
	}
	try(func(c *Case) { c.Kill = false })
	try(func(c *Case) { c.Dataset.Weights = "uniform" })
	try(func(c *Case) { c.Faults = FaultSpec{} })
	try(func(c *Case) { c.Churn = false })
	try(func(c *Case) { c.Coalesce = 0 })
	try(func(c *Case) { c.Clients = 0 })
	try(func(c *Case) { c.InFlight = 0 })
	try(func(c *Case) { c.Workload.WoR = false })
	return c
}

// traceValues reconstructs the value array each oracle hands to
// Case.Queries, so the shrinker can pin the exact trace the failing
// run executed.
func (c *Case) traceValues() ([]float64, error) {
	ds := c.Dataset
	if c.Target == TargetServer || c.Target == TargetCluster {
		ds.Values = "grid" // runServer and runCluster force the grid regime
	}
	values, weights, err := ds.Generate()
	if err != nil {
		return nil, err
	}
	switch c.Target {
	case TargetChunked, TargetAliasAug, TargetTreeWalk, TargetMutable, TargetPooled, TargetServer, TargetCluster:
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		return sorted, nil
	case TargetAlias, TargetWoR:
		return identityValues(len(weights)), nil
	case TargetTreeSample:
		m := len(weights)
		if m < 3 {
			m = 3
		}
		return identityValues(m), nil
	default: // TargetIntervalTree stabs at raw values
		return values, nil
	}
}
