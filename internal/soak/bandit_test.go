package soak_test

import (
	"testing"

	"repro/internal/soak"
)

func TestBanditVisitsEveryArmFirst(t *testing.T) {
	b := soak.NewBandit([]string{"a", "b", "c"})
	for want := 0; want < 3; want++ {
		got := b.Next()
		if got != want {
			t.Fatalf("pull %d: arm %d, want %d", want, got, want)
		}
		b.Update(got, 0)
	}
}

func TestBanditConvergesOnRewardingArm(t *testing.T) {
	b := soak.NewBandit([]string{"dud", "hot", "dud2"})
	for i := 0; i < 300; i++ {
		arm := b.Next()
		if arm == 1 {
			b.Update(arm, 0.9)
		} else {
			b.Update(arm, 0.05)
		}
	}
	if p := b.Pulls(1); p <= b.Pulls(0) || p <= b.Pulls(2) {
		t.Fatalf("rewarding arm not favoured: pulls %d/%d/%d", b.Pulls(0), b.Pulls(1), b.Pulls(2))
	}
	// UCB1 still explores: no arm is starved entirely.
	for i := 0; i < 3; i++ {
		if b.Pulls(i) < 2 {
			t.Fatalf("arm %d starved: %d pulls", i, b.Pulls(i))
		}
	}
	if m := b.Mean(1); m < 0.8 || m > 1 {
		t.Fatalf("mean reward %v, want ≈0.9", m)
	}
}

func TestBanditDeterministicSchedule(t *testing.T) {
	run := func() []int {
		b := soak.NewBandit([]string{"x", "y"})
		var seq []int
		for i := 0; i < 50; i++ {
			a := b.Next()
			seq = append(seq, a)
			b.Update(a, float64(a)*0.3)
		}
		return seq
	}
	s1, s2 := run(), run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedule diverges at pull %d: %d vs %d", i, s1[i], s2[i])
		}
	}
}

func TestBanditClampsReward(t *testing.T) {
	b := soak.NewBandit([]string{"a"})
	b.Update(0, 7)
	b.Update(0, -3)
	if m := b.Mean(0); m != 0.5 {
		t.Fatalf("mean %v after clamped updates, want 0.5", m)
	}
}
