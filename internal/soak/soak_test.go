package soak_test

import (
	"path/filepath"
	"testing"

	"repro/internal/rangesample"
	"repro/internal/rng"
	"repro/internal/soak"
)

// A correct implementation must sail through every structure target:
// the per-gate alpha is 1e-9, so a single false positive here is
// overwhelmingly more likely to be a harness bug than bad luck.
func TestRunCaseStructureTargetsPass(t *testing.T) {
	for _, target := range soak.StructureTargets {
		target := target
		t.Run(string(target), func(t *testing.T) {
			t.Parallel()
			h := &soak.Harness{}
			c := soak.Case{
				Target:   target,
				Dataset:  soak.DatasetSpec{Seed: 7, N: 64},
				Workload: soak.WorkloadSpec{Seed: 11, Queries: 4, Reps: 120, WoR: true},
			}
			out, err := h.RunCase(c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Failure != nil {
				t.Fatalf("false positive: %v", out.Failure)
			}
			if out.Gates == 0 {
				t.Fatal("no gates evaluated")
			}
		})
	}
}

// Skewed datasets (clustered values, zipf weights) exercise the pooled
// chi-squared path and duplicate handling.
func TestRunCaseSkewedDatasetsPass(t *testing.T) {
	for _, target := range []soak.Target{soak.TargetChunked, soak.TargetAliasAug, soak.TargetTreeWalk, soak.TargetIntervalTree} {
		target := target
		t.Run(string(target), func(t *testing.T) {
			t.Parallel()
			h := &soak.Harness{}
			c := soak.Case{
				Target:   target,
				Dataset:  soak.DatasetSpec{Seed: 3, N: 96, Values: "clustered", Weights: "zipf", Alpha: 1.3},
				Workload: soak.WorkloadSpec{Seed: 5, Queries: 4, Reps: 100},
			}
			out, err := h.RunCase(c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Failure != nil {
				t.Fatalf("false positive: %v", out.Failure)
			}
		})
	}
}

// The same case must replay to the same outcome — the property every
// repro file depends on.
func TestRunCaseDeterministic(t *testing.T) {
	h := &soak.Harness{}
	c := soak.Case{
		Target:   soak.TargetChunked,
		Dataset:  soak.DatasetSpec{Seed: 21, N: 48, Weights: "random"},
		Workload: soak.WorkloadSpec{Seed: 22, Queries: 3, Reps: 60, WoR: true},
	}
	a, err := h.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Gates != b.Gates || a.Suspicion != b.Suspicion || (a.Failure == nil) != (b.Failure == nil) {
		t.Fatalf("outcomes differ: %+v vs %+v", a, b)
	}
}

// A pinned trace overrides workload generation, and an invalid spec is
// an error, not a finding.
func TestCaseSpecEdges(t *testing.T) {
	h := &soak.Harness{}
	c := soak.Case{
		Target:  soak.TargetChunked,
		Dataset: soak.DatasetSpec{Seed: 1, N: 32},
		Trace:   []soak.QueryRecord{{Lo: 5, Hi: 20, K: 4}},
		Workload: soak.WorkloadSpec{
			Seed: 2, Reps: 40,
		},
	}
	if out, err := h.RunCase(c); err != nil || out.Failure != nil {
		t.Fatalf("pinned trace: %v / %v", err, out.Failure)
	}
	bad := soak.Case{Target: soak.TargetAlias, Dataset: soak.DatasetSpec{N: 0}}
	if _, err := h.RunCase(bad); err == nil {
		t.Fatal("n=0 dataset accepted")
	}
	if _, err := h.RunCase(soak.Case{Target: "nope", Dataset: soak.DatasetSpec{N: 4}}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// offByOne wraps a 1-D sampler and injects the classical bug: every
// sampled position is shifted one slot toward the low end of the
// range, piling the first element's probability mass up and starving
// the last element's.
type offByOne struct {
	rangesample.Sampler
}

func (o offByOne) Query(r *rng.Source, q rangesample.Interval, s int, dst []int) ([]int, bool) {
	out, ok := o.Sampler.Query(r, q, s, dst)
	if !ok {
		return out, ok
	}
	first := o.firstPos(q)
	for i := range out {
		if out[i] > first {
			out[i]--
		}
	}
	return out, ok
}

// firstPos locates the first in-range position.
func (o offByOne) firstPos(q rangesample.Interval) int {
	n := o.Sampler.Len()
	for i := 0; i < n; i++ {
		if o.Sampler.Value(i) >= q.Lo {
			return i
		}
	}
	return n
}

// The mutation check demanded by the acceptance criteria: an injected
// off-by-one in the sampler must be caught, the failure must shrink to
// a repro file, and the repro must replay deterministically.
func TestMutationOffByOneCaughtAndReproReplays(t *testing.T) {
	h := &soak.Harness{
		Mutate: func(s rangesample.Sampler) rangesample.Sampler { return offByOne{s} },
	}
	dir := t.TempDir()
	res, err := h.Fuzz(soak.FuzzOptions{
		Seed:         99,
		Rounds:       12,
		Targets:      []soak.Target{soak.TargetChunked},
		MaxFailures:  1,
		ArtifactsDir: dir,
		Log:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repros) == 0 {
		t.Fatal("injected off-by-one not caught within the round budget")
	}
	if len(res.Artifacts) == 0 {
		t.Fatal("no repro artifact written")
	}
	rep, err := soak.ReadRepro(res.Artifacts[0])
	if err != nil {
		t.Fatal(err)
	}
	// The repro replays to the same check under the mutated harness...
	out, err := h.Replay(rep)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failure == nil || out.Failure.Check != rep.Failure.Check {
		t.Fatalf("replay did not reproduce %q: got %v", rep.Failure.Check, out.Failure)
	}
	// ...and twice in a row (determinism).
	out2, err := h.Replay(rep)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Failure == nil || out2.Failure.Check != out.Failure.Check {
		t.Fatalf("second replay diverged: %v vs %v", out2.Failure, out.Failure)
	}
	// A healthy harness (no mutation) passes the same case: the repro
	// pins the bug, not the configuration.
	clean := &soak.Harness{}
	cout, err := clean.Replay(rep)
	if err != nil {
		t.Fatal(err)
	}
	if cout.Failure != nil {
		t.Fatalf("clean replay still fails: %v", cout.Failure)
	}
}

// Version skew must fail loudly.
func TestReplayRejectsVersionSkew(t *testing.T) {
	h := &soak.Harness{}
	rep := &soak.Repro{Version: soak.ReproVersion + 1}
	if _, err := h.Replay(rep); err == nil {
		t.Fatal("future repro version accepted")
	}
}

// WriteRepro/ReadRepro round-trip the full case, including the pinned
// trace the shrinker produces.
func TestReproRoundTrip(t *testing.T) {
	rep := &soak.Repro{
		Version: soak.ReproVersion,
		Case: soak.Case{
			Target:   soak.TargetWoR,
			Dataset:  soak.DatasetSpec{Seed: 4, N: 9, Weights: "zipf", Alpha: 1.5},
			Workload: soak.WorkloadSpec{Seed: 5, Reps: 16},
			Trace:    []soak.QueryRecord{{Lo: 0.25, Hi: 0.75, K: 3, WoR: true}},
		},
		Failure: &soak.Failure{Target: soak.TargetWoR, Check: "x", Detail: "y"},
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := soak.WriteRepro(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := soak.ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Case.Target != rep.Case.Target || len(got.Case.Trace) != 1 || got.Case.Trace[0].K != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}
