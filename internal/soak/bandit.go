package soak

import "math"

// Bandit is the adaptive workload scheduler: a deterministic UCB1
// multi-armed bandit over fuzz configurations. Reward is 1 on a found
// discrepancy and the maximum stat/critical suspicion ratio otherwise,
// so the fuzzing budget drifts toward configurations whose statistics
// run closest to their gates — the ones most likely to surface a real
// discrepancy — while the exploration term keeps every configuration
// alive.
type Bandit struct {
	names  []string
	pulls  []int
	reward []float64
	total  int
	// c is the exploration coefficient of the UCB1 index
	// mean_i + c·√(ln t / n_i); √2 is the classical choice.
	c float64
}

// NewBandit creates a scheduler over the named arms.
func NewBandit(names []string) *Bandit {
	return &Bandit{
		names:  names,
		pulls:  make([]int, len(names)),
		reward: make([]float64, len(names)),
		c:      math.Sqrt2,
	}
}

// Len returns the arm count.
func (b *Bandit) Len() int { return len(b.names) }

// Name returns arm i's label.
func (b *Bandit) Name(i int) string { return b.names[i] }

// Pulls returns how often arm i was selected.
func (b *Bandit) Pulls(i int) int { return b.pulls[i] }

// Mean returns arm i's empirical mean reward (0 before the first pull).
func (b *Bandit) Mean(i int) float64 {
	if b.pulls[i] == 0 {
		return 0
	}
	return b.reward[i] / float64(b.pulls[i])
}

// Next picks the arm to pull: each arm once in order first, then the
// UCB1 argmax. Ties resolve to the lowest index, so the whole schedule
// is deterministic.
func (b *Bandit) Next() int {
	for i := range b.pulls {
		if b.pulls[i] == 0 {
			return i
		}
	}
	best, bestIdx := -1, math.Inf(-1)
	lnT := math.Log(float64(b.total))
	for i := range b.pulls {
		idx := b.Mean(i) + b.c*math.Sqrt(lnT/float64(b.pulls[i]))
		if idx > bestIdx {
			best, bestIdx = i, idx
		}
	}
	return best
}

// Update records the observed reward for a pull of arm i.
func (b *Bandit) Update(i int, reward float64) {
	if reward < 0 {
		reward = 0
	}
	if reward > 1 {
		reward = 1
	}
	b.pulls[i]++
	b.total++
	b.reward[i] += reward
}
