package soak

import (
	"fmt"
	"math"

	"repro/internal/alias"
	"repro/internal/intervaltree"
	"repro/internal/rng"
)

// runIntervalTree differentially tests the interval-tree stabbing
// sampler (the multi-dimensional path, Lemma 4) against two oracles:
// Report for the qualifying set and an alias table over the reported
// weights for the sampling distribution.
func (rn *run) runIntervalTree() error {
	c := rn.c
	values, weights, err := c.Dataset.Generate()
	if err != nil {
		return err
	}
	n := len(values)
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	spread := hi - lo
	if spread <= 0 {
		spread = 1
	}
	// Intervals start at the dataset values with lengths up to 20% of
	// the value spread, so stabbing at a stored value hits a non-trivial
	// but not universal subset.
	rLen := rng.New(c.Dataset.Seed ^ 0xd6e8feb86659fd93)
	ivs := make([]intervaltree.Interval, n)
	for i, v := range values {
		ivs[i] = intervaltree.Interval{L: v, R: v + rLen.Float64()*0.2*spread}
	}
	t, err := intervaltree.New(ivs, weights)
	if err != nil {
		return fmt.Errorf("soak: interval tree build: %w", err)
	}

	// Deterministic probe: stabbing left of every interval must report
	// empty and sample nothing.
	if out, ok := t.Query(rng.New(c.Workload.Seed), lo-1, 3, nil); ok || len(out) != 0 {
		rn.fail("empty-stab", "stab left of all intervals returned ok=%v with %d samples", ok, len(out))
		return nil
	}
	rn.pass()

	queries := c.Queries(values)
	reps := c.reps()
	rSub := rng.New(c.Workload.Seed ^ 0x9e3779b97f4a7c15)
	rOra := rng.New(c.Workload.Seed ^ 0xbf58476d1ce4e5b9)
	for qi := range queries {
		q := queries[qi]
		stab := q.Lo
		report := t.Report(stab, nil)
		for _, id := range report {
			if !ivs[id].Contains(stab) {
				return fmt.Errorf("soak: Report oracle returned non-stabbed interval %d at %v", id, stab)
			}
		}
		slot := make(map[int]int, len(report))
		sumW := 0.0
		for i, id := range report {
			slot[id] = i
			sumW += weights[id]
		}
		// StabWeight must agree with the reported weight sum up to
		// floating-point reassociation.
		sw := t.StabWeight(stab)
		if diff := math.Abs(sw - sumW); diff > 1e-9*(1+sumW) {
			rn.failQuery("stab-weight", q, "StabWeight %v vs reported sum %v", sw, sumW)
			return nil
		}
		rn.pass()
		if len(report) == 0 {
			if out, ok := t.Query(rSub, stab, q.K, nil); ok || len(out) != 0 {
				rn.failQuery("empty-stab-flag", q, "empty report but Query ok=%v with %d samples", ok, len(out))
				return nil
			}
			rn.pass()
			continue
		}
		probs := make([]float64, len(report))
		rw := make([]float64, len(report))
		for i, id := range report {
			probs[i] = weights[id] / sumW
			rw[i] = weights[id]
		}
		oracle, err := alias.New(rw)
		if err != nil {
			return fmt.Errorf("soak: alias oracle over report: %w", err)
		}
		counts := make([]int, len(report))
		oracleCounts := make([]int, len(report))
		var bins []int
		for rep := 0; rep < reps; rep++ {
			out, ok := t.Query(rSub, stab, q.K, nil)
			if !ok {
				rn.failQuery("stab-flag", q, "non-empty report (%d intervals) but Query ok=false", len(report))
				return nil
			}
			if len(out) != q.K {
				rn.failQuery("sample-count", q, "got %d samples, want %d", len(out), q.K)
				return nil
			}
			for _, id := range out {
				s, inReport := slot[id]
				if !inReport {
					rn.failQuery("support", q, "sampled interval %d not in the stab set of %v", id, stab)
					return nil
				}
				counts[s]++
			}
			for i := 0; i < q.K; i++ {
				oracleCounts[oracle.Sample(rOra)]++
			}
			bins = append(bins, binOf(slot[out[0]], len(report), indepBins))
		}
		rn.gateChi2Probs("chi2-stab-weights", &q, counts, probs)
		rn.gateTwoSampleCounts("chi2-vs-alias-oracle", &q, counts, oracleCounts)
		// Per query: pooling pairs across stabs with different margins
		// would fake dependence (Simpson mixing).
		rn.gateIndependence("independence", pairUp(bins), indepBins)
		if rn.failed() {
			return nil
		}
	}
	return nil
}
