package soak_test

import (
	"testing"

	"repro/internal/soak"
)

// The mutable target must generate interleaved write/read traces and
// pass every gate on a healthy ingest stack, including the skewed and
// WoR regimes.
func TestRunCaseMutableRegimes(t *testing.T) {
	cases := map[string]soak.Case{
		"smooth": {
			Target:   soak.TargetMutable,
			Dataset:  soak.DatasetSpec{Seed: 7, N: 64},
			Workload: soak.WorkloadSpec{Seed: 11, Queries: 6, Reps: 120},
		},
		"skewed": {
			Target:   soak.TargetMutable,
			Dataset:  soak.DatasetSpec{Seed: 3, N: 96, Values: "clustered", Weights: "zipf", Alpha: 1.3},
			Workload: soak.WorkloadSpec{Seed: 5, Queries: 6, Reps: 100},
		},
		"wor": {
			Target:   soak.TargetMutable,
			Dataset:  soak.DatasetSpec{Seed: 9, N: 48, Weights: "random"},
			Workload: soak.WorkloadSpec{Seed: 13, Queries: 8, Reps: 80, WoR: true},
		},
	}
	for name, c := range cases {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := &soak.Harness{}
			out, err := h.RunCase(c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Failure != nil {
				t.Fatalf("false positive: %v", out.Failure)
			}
			if out.Gates == 0 {
				t.Fatal("no gates evaluated")
			}
		})
	}
}

// A lost write (applied to the oracle, silently dropped from the
// subject) must trip a deterministic state gate, shrink to a repro, and
// replay: the differential harness actually watches the write path.
func TestMutableLostWriteCaughtAndShrinks(t *testing.T) {
	h := &soak.Harness{MutateWrites: 3}
	dir := t.TempDir()
	res, err := h.Fuzz(soak.FuzzOptions{
		Seed:         41,
		Rounds:       12,
		Targets:      []soak.Target{soak.TargetMutable},
		MaxFailures:  1,
		ArtifactsDir: dir,
		Log:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repros) == 0 {
		t.Fatal("dropped writes not caught within the round budget")
	}
	rep := res.Repros[0]
	out, err := h.Replay(rep)
	if err != nil {
		t.Fatal(err)
	}
	if out.Failure == nil || out.Failure.Check != rep.Failure.Check {
		t.Fatalf("replay did not reproduce %q: got %v", rep.Failure.Check, out.Failure)
	}
	// A healthy harness passes the same shrunk case: the repro pins the
	// injected fault, not the configuration.
	clean := &soak.Harness{}
	cout, err := clean.Replay(rep)
	if err != nil {
		t.Fatal(err)
	}
	if cout.Failure != nil {
		t.Fatalf("clean replay still fails: %v", cout.Failure)
	}
}

// The mutable trace generator is deterministic and write-bearing: the
// same seed yields the same schedule, and the schedule interleaves
// inserts, deletes, and queries.
func TestMutableTraceShape(t *testing.T) {
	c := soak.Case{
		Target:   soak.TargetMutable,
		Dataset:  soak.DatasetSpec{Seed: 1, N: 32},
		Workload: soak.WorkloadSpec{Seed: 2, Queries: 8},
	}
	vals := make([]float64, 32)
	for i := range vals {
		vals[i] = float64(i)
	}
	a := c.Queries(vals)
	b := c.Queries(vals)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic trace: %d vs %d records", len(a), len(b))
	}
	ops := map[string]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic trace at %d: %+v vs %+v", i, a[i], b[i])
		}
		ops[a[i].Op]++
	}
	if ops[soak.OpQuery] != 8 {
		t.Fatalf("trace has %d query steps, want 8", ops[soak.OpQuery])
	}
	if ops[soak.OpInsert] == 0 || ops[soak.OpDelete] == 0 {
		t.Fatalf("trace has no writes: %v", ops)
	}
	for _, rec := range a {
		if rec.Op == soak.OpInsert && rec.Hi <= 0 {
			t.Fatalf("insert with non-positive weight: %+v", rec)
		}
	}
}
