package soak_test

import (
	"testing"

	"repro/internal/soak"
)

// The cluster soak — router + live node HTTP servers vs the
// single-node coordinator — must pass on a healthy build in both
// fuzzer regimes: the weighted differential arm and the node-kill
// failover arm.
func TestClusterSoakRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak in -short mode")
	}
	cases := map[string]soak.Case{
		"differential": {
			Target:   soak.TargetCluster,
			Dataset:  soak.DatasetSpec{Seed: 81, N: 48, Weights: "zipf", Alpha: 1.1},
			Workload: soak.WorkloadSpec{Seed: 82, Queries: 6, K: 8, WoR: true, Reps: 96},
			Shards:   5, Nodes: 3, Replicas: 2,
		},
		"failover": {
			Target:   soak.TargetCluster,
			Dataset:  soak.DatasetSpec{Seed: 83, N: 48},
			Workload: soak.WorkloadSpec{Seed: 84, Queries: 6, K: 8, Reps: 64},
			Shards:   4, Nodes: 2, Replicas: 2, Kill: true,
		},
	}
	for name, c := range cases {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			h := &soak.Harness{}
			out, err := h.RunCase(c)
			if err != nil {
				t.Fatal(err)
			}
			if out.Failure != nil {
				t.Fatalf("false positive: %v", out.Failure)
			}
			if out.Gates < 4 {
				t.Fatalf("only %d gates evaluated", out.Gates)
			}
		})
	}
}

// The cluster soak is deterministic: the same case replays to the
// same gate count and verdict, the property repro files rely on.
func TestClusterSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak in -short mode")
	}
	c := soak.Case{
		Target:   soak.TargetCluster,
		Dataset:  soak.DatasetSpec{Seed: 91, N: 32},
		Workload: soak.WorkloadSpec{Seed: 92, Queries: 4, K: 4, Reps: 32},
		Shards:   3, Nodes: 2, Replicas: 2,
	}
	h := &soak.Harness{}
	a, err := h.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Gates != b.Gates || (a.Failure == nil) != (b.Failure == nil) {
		t.Fatalf("cluster soak nondeterministic: %+v vs %+v", a, b)
	}
}
