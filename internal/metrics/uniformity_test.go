package metrics

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// drawQueries drives the monitor with q random range queries of k
// samples each, produced by draw(lo, hi, k) (values must lie in the
// dataset), folding every sample (stride 1).
func drawQueries(u *Uniformity, r *rng.Source, n, q, k int, wor bool,
	draw func(r *rng.Source, L, R, k int) []float64) {
	for i := 0; i < q; i++ {
		L := r.Intn(n / 2)
		R := L + 1 + r.Intn(n-L-1)
		lo, hi := float64(L), float64(R)
		u.Fold(lo, hi, draw(r, L, R, k), wor)
	}
}

func uniformDraw(r *rng.Source, L, R, k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = float64(L + r.Intn(R-L+1))
	}
	return out
}

func testValues(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func TestUniformityQuietOnCorrectSampler(t *testing.T) {
	const n = 1024
	breaches := 0
	u := NewUniformity(testValues(n), nil, UniformityOptions{
		Stride:   1,
		OnBreach: func(stat, crit float64, folded int64) { breaches++ },
	})
	r := rng.New(7)
	drawQueries(u, r, n, 400, 16, false, uniformDraw)
	stat, crit, folded := u.Snapshot()
	if folded < 6000 {
		t.Fatalf("folded %d, expected all samples at stride 1", folded)
	}
	if breaches != 0 || stat > crit {
		t.Fatalf("correct sampler tripped the monitor: stat %.1f crit %.1f breaches %d", stat, crit, breaches)
	}
	if u.Quality() > 1 {
		t.Fatalf("quality %v > 1 on correct sampler", u.Quality())
	}
}

func TestUniformityQuietOnWeightedSampler(t *testing.T) {
	const n = 1024
	vals := testValues(n)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 + float64(i%7) // lumpy but valid weights
	}
	prefix := make([]float64, n+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	// Exact weight-proportional draw within [L, R] by inverse CDF.
	weightedDraw := func(r *rng.Source, L, R, k int) []float64 {
		out := make([]float64, k)
		for i := range out {
			target := prefix[L] + r.Float64()*(prefix[R+1]-prefix[L])
			j := sort.SearchFloat64s(prefix, target)
			if j > 0 {
				j--
			}
			if j < L {
				j = L
			}
			if j > R {
				j = R
			}
			out[i] = vals[j]
		}
		return out
	}
	u := NewUniformity(vals, weights, UniformityOptions{Stride: 1})
	drawQueries(u, rng.New(11), n, 400, 16, false, weightedDraw)
	if q := u.Quality(); q > 1 {
		t.Fatalf("quality %v > 1 on correct weighted sampler", q)
	}
}

func TestUniformityFiresOnBiasedSampler(t *testing.T) {
	const n = 1024
	breaches := 0
	var gauge Gauge
	u := NewUniformity(testValues(n), nil, UniformityOptions{
		Stride: 1,
		Gauge:  &gauge,
		OnBreach: func(stat, crit float64, folded int64) {
			breaches++
			if stat <= crit {
				t.Errorf("breach with stat %.1f <= crit %.1f", stat, crit)
			}
		},
	})
	// Biased: only ever samples the lower half of the query range.
	biased := func(r *rng.Source, L, R, k int) []float64 {
		mid := L + (R-L)/2 + 1
		return uniformDraw(r, L, mid-1, k)
	}
	drawQueries(u, rng.New(3), n, 400, 16, false, biased)
	if breaches == 0 {
		t.Fatal("biased sampler never tripped the monitor")
	}
	if gauge.Value() <= 1 {
		t.Fatalf("quality gauge %v, want > 1 under bias", gauge.Value())
	}
}

func TestUniformityWoRMode(t *testing.T) {
	const n = 512
	// WoR marginal: every in-range element equally likely. A correct
	// uniform draw must stay quiet even over a weighted dataset,
	// because wor=true switches expectations to count-proportional.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(1 + i) // strongly non-uniform weights
	}
	u := NewUniformity(testValues(n), weights, UniformityOptions{Stride: 1})
	drawQueries(u, rng.New(5), n, 400, 8, true, uniformDraw)
	if q := u.Quality(); q > 1 {
		t.Fatalf("quality %v > 1 on correct WoR sampler", q)
	}
}

func TestUniformityWarmupAndInert(t *testing.T) {
	u := NewUniformity(testValues(256), nil, UniformityOptions{Stride: 1, MinFolded: 1 << 30})
	drawQueries(u, rng.New(1), 256, 50, 8, false, uniformDraw)
	if stat, crit, _ := u.Snapshot(); stat != 0 || crit != 0 {
		t.Fatalf("stat %v crit %v below MinFolded, want 0", stat, crit)
	}
	// A dataset too small to cut into two cells yields an inert monitor.
	tiny := NewUniformity([]float64{1}, nil, UniformityOptions{})
	tiny.Fold(0, 2, []float64{1}, false)
	if _, _, folded := tiny.Snapshot(); folded != 0 || tiny.Cells() != 0 {
		t.Fatal("tiny monitor not inert")
	}
	// Duplicate-heavy data: duplicates never straddle cells, so folding
	// a duplicated value is unambiguous and must not panic.
	dup := make([]float64, 256)
	for i := range dup {
		dup[i] = float64(i / 64) // 4 distinct values
	}
	du := NewUniformity(dup, nil, UniformityOptions{Stride: 1, Cells: 16})
	du.Fold(0, 3, []float64{0, 1, 2, 3, 3, 3}, false)
}

func TestUniformityStride(t *testing.T) {
	u := NewUniformity(testValues(256), nil, UniformityOptions{Stride: 4, MinFolded: 1})
	samples := uniformDraw(rng.New(2), 0, 255, 100)
	u.Fold(0, 255, samples, false)
	if _, _, folded := u.Snapshot(); folded != 25 {
		t.Fatalf("stride 4 folded %d of 100, want 25", folded)
	}
}

// TestUniformityLiveWeight exercises the dynamic-expectations mode for
// mutable datasets: a model dataset mutates mid-stream, the sampler
// tracks it, and the monitor — fed the live per-range weight — stays
// quiet; a sampler stuck on the stale distribution trips it.
func TestUniformityLiveWeight(t *testing.T) {
	const n = 512
	vals := testValues(n)
	// live[i] is the current weight of value i; mutations below double
	// part of the domain and mask another part.
	live := make([]float64, n)
	for i := range live {
		live[i] = 1
	}
	liveWeight := func(lo, hi float64, wor bool) float64 {
		w := 0.0
		for i := range live {
			if float64(i) >= lo && float64(i) <= hi {
				if wor {
					if live[i] > 0 {
						w++
					}
				} else {
					w += live[i]
				}
			}
		}
		return w
	}
	liveDraw := func(r *rng.Source, L, R, k int) []float64 {
		out := make([]float64, 0, k)
		total := liveWeight(float64(L), float64(R), false)
		for len(out) < k {
			x := r.Float64() * total
			for i := L; i <= R; i++ {
				x -= live[i]
				if x < 0 {
					out = append(out, float64(i))
					break
				}
			}
		}
		return out
	}

	u := NewUniformity(vals, nil, UniformityOptions{Stride: 1, LiveWeight: liveWeight})
	r := rng.New(11)
	drawQueries(u, r, n, 100, 16, false, liveDraw)
	// Mutate: left quarter gets weight 3 (as if re-inserted heavier),
	// one slice is deleted outright.
	for i := 0; i < n/4; i++ {
		live[i] = 3
	}
	for i := 300; i < 340; i++ {
		live[i] = 0
	}
	drawQueries(u, r, n, 300, 16, false, liveDraw)
	if q := u.Quality(); q > 1 {
		t.Fatalf("live-tracking sampler tripped the dynamic monitor: quality %v", q)
	}

	// A sampler still drawing uniformly (stale view) must trip against
	// the live expectations.
	stale := NewUniformity(vals, nil, UniformityOptions{Stride: 1, LiveWeight: liveWeight})
	drawQueries(stale, r, n, 300, 16, false, uniformDraw)
	if q := stale.Quality(); q <= 1 {
		t.Fatalf("stale sampler not caught by dynamic expectations: quality %v", q)
	}
}

// TestUniformityLiveWeightOutOfSpan: values inserted outside the
// construction-time span bucket into the unbounded edge cells and the
// live expectations account for them — no support violation, no bias.
func TestUniformityLiveWeightOutOfSpan(t *testing.T) {
	const n = 128
	vals := testValues(n) // 0..127
	extra := 0.0          // weight at value 200 (outside the span)
	liveWeight := func(lo, hi float64, wor bool) float64 {
		w := 0.0
		for i := 0; i < n; i++ {
			if float64(i) >= lo && float64(i) <= hi {
				w++
			}
		}
		if 200 >= lo && 200 <= hi {
			w += extra
		}
		return w
	}
	u := NewUniformity(vals, nil, UniformityOptions{Stride: 1, MinFolded: 64, LiveWeight: liveWeight})
	extra = 64 // a third of the mass of [64, 200]
	r := rng.New(13)
	for q := 0; q < 200; q++ {
		out := make([]float64, 0, 8)
		total := liveWeight(64, 200, false)
		for len(out) < 8 {
			x := r.Float64() * total
			if x < extra {
				out = append(out, 200)
				continue
			}
			out = append(out, 64+float64(r.Intn(n-64)))
		}
		u.Fold(64, 200, out, false)
	}
	if q := u.Quality(); q > 1 {
		t.Fatalf("out-of-span inserts mis-accounted: quality %v", q)
	}
}
