package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds: 10µs to 5s,
// roughly log-spaced, chosen so the serving stack's p50 lands mid-range
// and the per-request Timeout (default 5s) lands in the last finite
// bucket.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters:
// Observe is a binary search over the (immutable) bucket bounds plus two
// atomic adds, so concurrent observers never contend on a lock and never
// allocate. Quantiles are estimated at read time by linear interpolation
// inside the owning bucket — exact enough for p50/p95/p99 reporting when
// the buckets are log-spaced.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns an unregistered histogram with the given bucket
// upper bounds (nil or empty means DefBuckets). Bounds are sorted and
// deduplicated; a trailing +Inf bound is dropped (it is implicit).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	out := bs[:0]
	for _, b := range bs {
		if math.IsInf(b, 1) {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == b {
			continue
		}
		out = append(out, b)
	}
	return &Histogram{bounds: out, counts: make([]atomic.Int64, len(out)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s returns the first bucket whose upper bound
	// holds v (le semantics: bucket i covers (bounds[i-1], bounds[i]]).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot reads the counters loosely (observers may land between
// loads); the exposition consumer tolerates that, and the race test pins
// that count and buckets stay consistent once traffic quiesces.
func (h *Histogram) snapshot() (counts []int64, total int64, sum float64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.total.Load(), h.Sum()
}

// Quantile estimates the p-quantile (p in [0,1]) of the observed values
// by linear interpolation inside the owning bucket. It returns 0 with no
// observations, and the last finite bound when the quantile lands in the
// +Inf bucket.
func (h *Histogram) Quantile(p float64) float64 {
	counts, total, _ := h.snapshot()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
