package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "help", L("path", "/x"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name+labels returns the same instance.
	if c2 := reg.Counter("t_total", "help", L("path", "/x")); c2 != c {
		t.Fatal("re-registration returned a new counter")
	}
	// Different labels: new series, same family.
	c3 := reg.Counter("t_total", "help", L("path", "/y"))
	c3.Inc()
	g := reg.Gauge("t_gauge", "help")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	reg.GaugeFunc("t_fn", "help", func() float64 { return 7 })

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE t_total counter",
		`t_total{path="/x"} 5`,
		`t_total{path="/y"} 1`,
		"# TYPE t_gauge gauge",
		"t_gauge 2.5",
		"t_fn 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryIsFunctional(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter broken")
	}
	h := reg.Histogram("x_seconds", "", nil)
	h.Observe(0.001)
	if h.Count() != 1 {
		t.Fatal("nil-registry histogram broken")
	}
	reg.Gauge("x", "").Set(1)
	reg.GaugeFunc("y", "", func() float64 { return 0 })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, %v", buf.String(), err)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	reg.Gauge("m", "")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform over (0, 4]: 25 per bucket 1,2 and 50 in (2,4].
	for i := 0; i < 100; i++ {
		h.Observe(4 * (float64(i) + 0.5) / 100)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); math.Abs(s-200) > 1 {
		t.Fatalf("sum = %v, want ≈200", s)
	}
	if q := h.Quantile(0.5); math.Abs(q-2) > 0.25 {
		t.Fatalf("p50 = %v, want ≈2", q)
	}
	if q := h.Quantile(0.95); math.Abs(q-3.8) > 0.3 {
		t.Fatalf("p95 = %v, want ≈3.8", q)
	}
	// Values past the last bound land in +Inf and report the last bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("overflow quantile = %v, want 1", q)
	}
	if h.Quantile(0.5) < h.Quantile(0.05) {
		t.Fatal("quantiles not monotone")
	}
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	const G, N = 8, 1000
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(0.001 * float64(g+1))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != G*N {
		t.Fatalf("count = %d, want %d", h.Count(), G*N)
	}
	wantSum := 0.0
	for g := 1; g <= G; g++ {
		wantSum += 0.001 * float64(g) * N
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9*wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_total", "requests", L("code", "200")).Add(3)
	reg.Gauge("rt_quality", `weird "label"`, L("ds", `a\b`)).Set(0.5)
	h := reg.Histogram("rt_seconds", "latency", []float64{0.001, 0.01}, L("path", "/s"))
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("self-rendered exposition does not parse: %v\n%s", err, buf.String())
	}
	if v, ok := exp.Get("rt_total", `code="200"`); !ok || v != 3 {
		t.Fatalf("rt_total = %v, %v", v, ok)
	}
	if exp.Types["rt_seconds"] != "histogram" {
		t.Fatalf("rt_seconds type = %q", exp.Types["rt_seconds"])
	}
	// Histogram invariants: cumulative buckets end at count, sum matches.
	if v, ok := exp.Get("rt_seconds_bucket", `le="+Inf"`); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
	if v, ok := exp.Get("rt_seconds_count", `path="/s"`); !ok || v != 3 {
		t.Fatalf("count = %v, %v", v, ok)
	}
	lo, _ := exp.Get("rt_seconds_bucket", `le="0.001"`)
	mid, _ := exp.Get("rt_seconds_bucket", `le="0.01"`)
	if !(lo <= mid && mid <= 3) {
		t.Fatalf("buckets not cumulative: %v %v", lo, mid)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		`unbalanced{a="b" 1` + "\n",
		`badlabel{a=b} 1` + "\n",
		`m{a="b"} notafloat` + "\n",
		"",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("parsed malformed input %q", bad)
		}
	}
}

func TestRequestID(t *testing.T) {
	a := RequestID(1, 1)
	b := RequestID(1, 2)
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q %q", a, b)
	}
	if a != RequestID(1, 1) {
		t.Fatal("not deterministic")
	}
}
