package metrics

import (
	"context"
	"sync"
	"time"
)

// Per-request tracing. A Trace is created at server admission, carries
// the request ID every layer attaches to its structured logs (and the
// server returns as X-Request-Id), and — for sampled requests — records
// named per-stage spans as the request flows server → service → shard →
// core. Traces are pooled: the unsampled hot path costs one context
// value and the ID string, nothing else.
//
// All methods are nil-safe: layers call TraceFrom(ctx).StartSpan(...)
// unconditionally and pay nothing when no trace is installed.

// Span is one timed stage of a request, with Start and End as offsets
// from the trace origin.
type Span struct {
	Name       string
	Start, End time.Duration
}

// Trace carries one request's ID and, when sampled, its span log.
type Trace struct {
	id      string
	sampled bool
	origin  time.Time

	mu    sync.Mutex
	spans []Span // reused across pool cycles
}

var tracePool = sync.Pool{New: func() any {
	return &Trace{spans: make([]Span, 0, 16)}
}}

// NewTrace returns a pooled trace with the given request ID; sampled
// controls whether spans are recorded. Release it when the request is
// fully finished (response written, logs emitted).
func NewTrace(id string, sampled bool) *Trace {
	t := tracePool.Get().(*Trace)
	t.id = id
	t.sampled = sampled
	t.origin = time.Now()
	t.spans = t.spans[:0]
	return t
}

// Release returns the trace to the pool. The caller must not use the
// trace — or any ctx carrying it — afterwards.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	tracePool.Put(t)
}

// ID returns the request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Sampled reports whether spans are being recorded.
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// nopEnd is the shared end func for unsampled spans, so the unsampled
// path never allocates a closure.
var nopEnd = func() {}

// StartSpan opens a named span and returns the func that closes it.
// Safe for concurrent use (shard fan-out workers record in parallel).
func (t *Trace) StartSpan(name string) func() {
	if t == nil || !t.sampled {
		return nopEnd
	}
	start := time.Since(t.origin)
	return func() {
		end := time.Since(t.origin)
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start, End: end})
		t.mu.Unlock()
	}
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

type traceKey struct{}

// ContextWithTrace installs t in ctx.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace installed in ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

type requestIDKey struct{}

// ContextWithRequestID installs the request ID in ctx for downstream
// propagation. Unlike a Trace — pooled, installed only for sampled
// requests — the plain ID is attached unconditionally by servers whose
// engine declares it forwards requests to other processes, so a cluster
// router can stamp the same X-Request-ID on every node hop of a query.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID installed by
// ContextWithRequestID, falling back to the trace's ID, or "".
func RequestIDFromContext(ctx context.Context) string {
	if id, ok := ctx.Value(requestIDKey{}).(string); ok {
		return id
	}
	return TraceFrom(ctx).ID()
}

const hexDigits = "0123456789abcdef"

// RequestID derives a 16-hex-digit request ID from a base seed and a
// per-request sequence number via a splitmix64 finalizer — unique per
// (seed, seq) and deterministic, so load-test logs can be correlated
// across runs.
func RequestID(seed, seq uint64) string {
	x := seed + 0x9e3779b97f4a7c15*(seq+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[x&0xf]
		x >>= 4
	}
	return string(b[:])
}
