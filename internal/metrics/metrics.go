// Package metrics is the dependency-free instrumentation layer of the
// serving stack: atomic counters and gauges, lock-cheap fixed-bucket
// latency histograms with quantile estimation, a registry that renders
// everything in the Prometheus text exposition format, per-request
// tracing (request IDs + per-stage spans propagated via context), and a
// streaming chi-squared uniformity monitor that turns the paper's
// distribution guarantees into a runtime alarm.
//
// Design constraints, in order:
//
//   - The observe path must be safe for concurrent use and must not
//     allocate: counters and gauges are single atomics, histograms are a
//     binary search plus two atomic adds. Nothing on the hot path takes
//     a lock.
//
//   - A nil *Registry is fully functional: every constructor returns a
//     working unregistered instrument, so library layers can instrument
//     unconditionally and only the process decides what is exported.
//
//   - Rendering is scrape-time work: the registry walks its families
//     under a lock only when /metrics is hit, never on the request path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a metric series.
type Label struct{ Name, Value string }

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative for the exported series to stay
// monotone (not enforced, by design — the race test enforces it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates family types in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
)

func (k metricKind) expositionType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// instance is one labelled series inside a family. fn is an atomic
// pointer because func-backed series rebind on re-registration (see
// GaugeFunc) while scrapes read it without the registry lock.
type instance struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     atomic.Pointer[func() float64]
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name string
	help string
	kind metricKind

	order []string // label signatures in registration order
	insts map[string]*instance
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use. A nil *Registry is valid:
// constructors return working unregistered instruments and
// WritePrometheus writes nothing.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// signature renders a label set canonically ("a=\"x\",b=\"y\"", sorted).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register finds or creates the (family, instance) pair for name+labels.
// Re-registering the same name and labels returns the existing instance;
// registering the same name with a different kind panics (programmer
// error, caught at construction time).
func (r *Registry) register(name, help string, kind metricKind, labels []Label, mk func() *instance) *instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, insts: make(map[string]*instance)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s, was %s",
			name, kind.expositionType(), f.kind.expositionType()))
	}
	sig := signature(labels)
	if in := f.insts[sig]; in != nil {
		if kind == kindGaugeFunc || kind == kindCounterFunc {
			// Latest registrant wins: a replacement component (e.g. a
			// rebalanced shard's fresh ingest table) takes over the
			// series instead of leaving it scraping a retired object.
			in.fn.Store(mk().fn.Load())
		}
		return in
	}
	in := mk()
	in.labels = append([]Label(nil), labels...)
	f.insts[sig] = in
	f.order = append(f.order, sig)
	return in
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.register(name, help, kindCounter, labels, func() *instance {
		return &instance{c: &Counter{}}
	}).c
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.register(name, help, kindGauge, labels, func() *instance {
		return &instance{g: &Gauge{}}
	}).g
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// scrape time — for mirroring counters owned elsewhere (queue depths,
// device I/O totals). fn must be safe to call concurrently.
// Re-registering the same name and labels rebinds the callback to the
// new fn (latest registrant wins), so a component that replaces
// another — a rebalanced shard, a recreated dataset — takes over the
// series rather than leaving it stuck on the retired object.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGaugeFunc, labels, func() *instance {
		in := &instance{}
		in.fn.Store(&fn)
		return in
	})
}

// CounterFunc is GaugeFunc exported with type counter, for values that
// are semantically monotone (I/O totals, injected-fault totals). Like
// GaugeFunc, re-registration rebinds the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounterFunc, labels, func() *instance {
		in := &instance{}
		in.fn.Store(&fn)
		return in
	})
}

// Histogram returns the histogram registered under name with the given
// labels, creating it with the given bucket upper bounds on first use
// (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return NewHistogram(buckets)
	}
	return r.register(name, help, kindHistogram, labels, func() *instance {
		return &instance{h: NewHistogram(buckets)}
	}).h
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSeries(w io.Writer, name, sig, suffix, extraLabel string, v float64) error {
	labels := sig
	if extraLabel != "" {
		if labels != "" {
			labels += ","
		}
		labels += extraLabel
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s%s %s\n", name, suffix, labels, formatValue(v))
	return err
}

// WritePrometheus renders every family in the text exposition format
// (# HELP / # TYPE headers, histogram _bucket/_sum/_count expansion).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.expositionType()); err != nil {
			return err
		}
		r.mu.Lock()
		order := append([]string(nil), f.order...)
		insts := make([]*instance, len(order))
		for i, sig := range order {
			insts[i] = f.insts[sig]
		}
		r.mu.Unlock()
		for i, in := range insts {
			sig := order[i]
			var err error
			switch f.kind {
			case kindCounter:
				err = writeSeries(w, f.name, sig, "", "", float64(in.c.Value()))
			case kindGauge:
				err = writeSeries(w, f.name, sig, "", "", in.g.Value())
			case kindGaugeFunc, kindCounterFunc:
				err = writeSeries(w, f.name, sig, "", "", (*in.fn.Load())())
			case kindHistogram:
				err = in.h.write(w, f.name, sig)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// write renders one histogram series set; cumulative buckets, then sum
// and count, as the exposition format requires.
func (h *Histogram) write(w io.Writer, name, sig string) error {
	counts, total, sum := h.snapshot()
	cum := int64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		le := `le="` + formatValue(b) + `"`
		if err := writeSeries(w, name, sig, "_bucket", le, float64(cum)); err != nil {
			return err
		}
	}
	if err := writeSeries(w, name, sig, "_bucket", `le="+Inf"`, float64(total)); err != nil {
		return err
	}
	if err := writeSeries(w, name, sig, "_sum", "", sum); err != nil {
		return err
	}
	return writeSeries(w, name, sig, "_count", "", float64(total))
}
