package metrics

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("abc", true)
	defer tr.Release()
	end := tr.StartSpan("stage1")
	time.Sleep(time.Millisecond)
	end()
	tr.StartSpan("stage2")() // zero-length span is fine
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "stage1" || spans[0].End < spans[0].Start {
		t.Fatalf("bad span %+v", spans[0])
	}
	if spans[0].End-spans[0].Start < 500*time.Microsecond {
		t.Fatalf("span did not measure the sleep: %+v", spans[0])
	}
	if tr.ID() != "abc" || !tr.Sampled() {
		t.Fatal("id/sampled lost")
	}
}

func TestTraceUnsampledAndNil(t *testing.T) {
	tr := NewTrace("id", false)
	defer tr.Release()
	tr.StartSpan("x")()
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("unsampled trace recorded %d spans", len(got))
	}
	var nilTr *Trace
	nilTr.StartSpan("y")() // must not panic
	nilTr.Release()
	if nilTr.ID() != "" || nilTr.Sampled() || nilTr.Spans() != nil {
		t.Fatal("nil trace not inert")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("ctx-id", true)
	defer tr.Release()
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("trace lost in context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("phantom trace")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("conc", true)
	defer tr.Release()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			end := tr.StartSpan("worker")
			end()
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 16 {
		t.Fatalf("got %d spans, want 16", got)
	}
}

func TestTracePoolReuseResetsSpans(t *testing.T) {
	tr := NewTrace("one", true)
	tr.StartSpan("s")()
	tr.Release()
	tr2 := NewTrace("two", true)
	defer tr2.Release()
	if len(tr2.Spans()) != 0 {
		t.Fatal("pooled trace leaked spans")
	}
}
