package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Minimal Prometheus text-exposition parser — enough to validate what
// the registry renders and to let the smoke checker and the race test
// read scraped values back without a client_golang dependency.

// Sample is one parsed series line.
type Sample struct {
	Name   string // metric name without the label block
	Labels string // raw label block content (without braces), "" if none
	Value  float64
}

// Exposition is a parsed scrape.
type Exposition struct {
	Samples []Sample
	Types   map[string]string // family name -> declared TYPE
}

// Get returns the value of the first sample whose name matches and
// whose label block contains every given fragment (e.g. `path="/sample"`).
func (e *Exposition) Get(name string, labelFragments ...string) (float64, bool) {
next:
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		for _, f := range labelFragments {
			if !strings.Contains(s.Labels, f) {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}

// SumAcross sums every sample of the family whose label block contains
// all fragments (for summing a counter across its label values).
func (e *Exposition) SumAcross(name string, labelFragments ...string) float64 {
	total := 0.0
next:
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		for _, f := range labelFragments {
			if !strings.Contains(s.Labels, f) {
				continue next
			}
		}
		total += s.Value
	}
	return total
}

// MaxAcross returns the maximum value across every sample of the
// family whose label block contains all fragments (for bounding a
// gauge across its label values, e.g. the worst per-dataset quality
// ratio). ok is false when no sample matches.
func (e *Exposition) MaxAcross(name string, labelFragments ...string) (float64, bool) {
	max, found := 0.0, false
next:
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		for _, f := range labelFragments {
			if !strings.Contains(s.Labels, f) {
				continue next
			}
		}
		if !found || s.Value > max {
			max = s.Value
		}
		found = true
	}
	return max, found
}

// ParseExposition parses r strictly: every non-comment, non-blank line
// must be `name[{labels}] value`, label blocks must be well-formed
// (quoted values, balanced braces), and values must parse as Go floats
// (+Inf/NaN included). The first malformed line fails the whole parse —
// that strictness is the point of the smoke check.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(exp.Samples) == 0 {
		return nil, fmt.Errorf("no samples in exposition")
	}
	return exp, nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else if rest[i] == '{' {
		s.Name = rest[:i]
		end := strings.LastIndex(rest, "}")
		if end < i {
			return s, fmt.Errorf("unbalanced label braces in %q", line)
		}
		s.Labels = rest[i+1 : end]
		if err := checkLabels(s.Labels); err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		s.Name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	// A timestamp may follow the value; take the first field as value.
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

// checkLabels validates `name="value",...` syntax, allowing escaped
// quotes inside values.
func checkLabels(block string) error {
	rest := block
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return fmt.Errorf("bad label pair %q", rest)
		}
		if len(rest) < eq+2 || rest[eq+1] != '"' {
			return fmt.Errorf("unquoted label value in %q", rest)
		}
		i := eq + 2
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", rest)
		}
		rest = rest[i+1:]
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return fmt.Errorf("expected ',' in label block at %q", rest)
		}
		rest = rest[1:]
	}
	return nil
}
