package metrics

import (
	"math"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Streaming distribution self-check. The IQS contract is that every
// served sample is drawn weight-proportionally (or, WoR, uniformly)
// from S ∩ [lo, hi]; a bug anywhere in the pipeline — a stale alias
// table, a mis-split shard budget, a biased merge — silently corrupts
// every estimate built on the samples (the q-error blowups of Li et
// al.). The Uniformity monitor turns that guarantee into a runtime
// alarm: it folds every stride-th served sample into a running per-cell
// histogram, accumulates — per query — the exact conditional
// expectation of each cell given the query's range, and keeps a
// chi-squared statistic over the accumulated (observed, expected)
// pairs. The critical value comes from internal/stats
// (Wilson–Hilferty); a quality ratio statistic/critical > 1 at the
// configured alpha trips the breach callback.
//
// Cells are equal-weight quantile ranges of the dataset (duplicates
// never straddle a cell, mirroring the shard partitioner), so the check
// is equally sensitive across the weight mass rather than across the
// value domain.

// UniformityOptions configures a monitor; zero values mean the
// documented defaults.
type UniformityOptions struct {
	// Cells is the histogram cell count (quantile cells); 0 means 32.
	Cells int
	// Stride folds every Stride-th served sample; 0 means 16, 1 folds
	// every sample.
	Stride int
	// Alpha is the upper-tail probability of the chi-squared critical
	// value; 0 means 1e-6 (a deliberately conservative alarm: with
	// ~30 cells the monitor virtually never fires on a correct
	// sampler, yet a constant-factor bias trips it within a few
	// hundred folded samples).
	Alpha float64
	// MinFolded suppresses the statistic until this many samples have
	// been folded; 0 means 256.
	MinFolded int64
	// Gauge, when non-nil, is set to statistic/critical after every
	// fold (0 while below MinFolded) — the exported quality signal.
	Gauge *Gauge
	// OnBreach, when non-nil, fires each time the quality ratio
	// crosses 1 from below (not on every fold above it).
	OnBreach func(stat, critical float64, folded int64)
	// LiveWeight, when non-nil, switches the monitor to dynamic
	// expectations for mutable datasets: instead of the frozen
	// construction-time prefix sums, the per-cell expected mass of each
	// folded query is computed by querying the live in-range weight
	// (wor false) or count (wor true) over the intersection of the
	// query range and the cell's value interval. Cell boundaries stay
	// frozen at construction (they only define the histogram bins —
	// the first and last cells are unbounded below/above, so values
	// inserted outside the original span still bucket and weigh
	// correctly); the *expectations* track the instantaneous dataset,
	// which is exactly the paper's per-state guarantee. The callback
	// must be safe for concurrent use and O(log n)-ish: it runs
	// cells+1 times per folded query under the monitor mutex.
	LiveWeight func(lo, hi float64, wor bool) float64
}

// Uniformity is the streaming chi-squared monitor. All methods are safe
// for concurrent use; Fold takes a mutex but never allocates.
type Uniformity struct {
	opts UniformityOptions

	vals    []float64 // sorted dataset values
	prefixW []float64 // prefix weights, len n+1
	cellIdx []int     // cell i covers sorted indices [cellIdx[i], cellIdx[i+1])
	cellHi  []float64 // last value of each cell, for sample bucketing

	mu        sync.Mutex
	strideCtr int64
	folded    int64
	obs       []int64
	exp       []float64
	breached  bool
	stat      float64
	critical  float64
}

// NewUniformity builds a monitor over the dataset (nil weights mean
// uniform). The inputs are copied. Datasets too small for two cells
// yield an inert monitor (Fold is a no-op, quality stays 0).
func NewUniformity(values, weights []float64, opts UniformityOptions) *Uniformity {
	if opts.Cells <= 0 {
		opts.Cells = 32
	}
	if opts.Stride <= 0 {
		opts.Stride = 16
	}
	if opts.Alpha <= 0 {
		opts.Alpha = 1e-6
	}
	if opts.MinFolded <= 0 {
		opts.MinFolded = 256
	}
	u := &Uniformity{opts: opts}

	n := len(values)
	type pair struct{ v, w float64 }
	ps := make([]pair, n)
	for i, v := range values {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		ps[i] = pair{v, w}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	u.vals = make([]float64, n)
	u.prefixW = make([]float64, n+1)
	for i, p := range ps {
		u.vals[i] = p.v
		u.prefixW[i+1] = u.prefixW[i] + p.w
	}

	// Equal-weight quantile cuts, advanced past duplicate values so a
	// sample value maps to exactly one cell.
	total := u.prefixW[n]
	u.cellIdx = append(u.cellIdx, 0)
	for c := 1; c < opts.Cells && u.cellIdx[len(u.cellIdx)-1] < n; c++ {
		target := total * float64(c) / float64(opts.Cells)
		cut := sort.SearchFloat64s(u.prefixW, target)
		if cut > n {
			cut = n
		}
		for cut < n && cut > 0 && u.vals[cut] == u.vals[cut-1] {
			cut++
		}
		if last := u.cellIdx[len(u.cellIdx)-1]; cut <= last {
			continue
		}
		if cut < n {
			u.cellIdx = append(u.cellIdx, cut)
		}
	}
	u.cellIdx = append(u.cellIdx, n)
	cells := len(u.cellIdx) - 1
	if cells < 2 || n == 0 {
		u.cellIdx = nil // inert
		return u
	}
	u.cellHi = make([]float64, cells)
	for i := 0; i < cells; i++ {
		u.cellHi[i] = u.vals[u.cellIdx[i+1]-1]
	}
	u.obs = make([]int64, cells)
	u.exp = make([]float64, cells)
	return u
}

// Fold accounts a served query: samples were drawn from S ∩ [lo, hi],
// weight-proportionally when wor is false, uniformly (the WoR marginal:
// each in-range element included with equal probability) when wor is
// true. Only every stride-th sample is bucketed; the per-cell expected
// mass — conditional on this query's range — is accumulated alongside,
// so queries over any mix of ranges compose into one valid test.
func (u *Uniformity) Fold(lo, hi float64, samples []float64, wor bool) {
	if u == nil || u.cellIdx == nil || len(samples) == 0 {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	m := int64(0)
	stride := int64(u.opts.Stride)
	for _, v := range samples {
		u.strideCtr++
		if u.strideCtr%stride != 0 {
			continue
		}
		c := sort.SearchFloat64s(u.cellHi, v)
		if c >= len(u.obs) {
			c = len(u.obs) - 1
		}
		u.obs[c]++
		m++
	}
	if m == 0 {
		return
	}
	u.folded += m

	if u.opts.LiveWeight != nil {
		u.foldLiveLocked(lo, hi, m, wor)
		u.recompute()
		return
	}

	// Index bounds of S ∩ [lo, hi] in the sorted order.
	n := len(u.vals)
	L := sort.SearchFloat64s(u.vals, lo)
	R := sort.Search(n, func(i int) bool { return u.vals[i] > hi })
	var totalIn float64
	if wor {
		totalIn = float64(R - L)
	} else {
		totalIn = u.prefixW[R] - u.prefixW[L]
	}
	if !(totalIn > 0) {
		return
	}
	for i := range u.exp {
		a, b := u.cellIdx[i], u.cellIdx[i+1]
		if a < L {
			a = L
		}
		if b > R {
			b = R
		}
		if b <= a {
			continue
		}
		var w float64
		if wor {
			w = float64(b - a)
		} else {
			w = u.prefixW[b] - u.prefixW[a]
		}
		u.exp[i] += float64(m) * w / totalIn
	}
	u.recompute()
}

// foldLiveLocked accumulates dynamic expectations: the cell histogram
// buckets by frozen boundaries (cell i covers the value interval
// (cellHi[i-1], cellHi[i]], unbounded at both ends), and each cell's
// expected mass is the live in-range weight of that interval
// intersected with the query. Caller holds u.mu.
func (u *Uniformity) foldLiveLocked(lo, hi float64, m int64, wor bool) {
	totalIn := u.opts.LiveWeight(lo, hi, wor)
	if !(totalIn > 0) {
		return
	}
	cells := len(u.cellHi)
	for i := 0; i < cells; i++ {
		a := lo
		if i > 0 {
			if open := math.Nextafter(u.cellHi[i-1], math.Inf(1)); open > a {
				a = open
			}
		}
		b := hi
		if i < cells-1 && u.cellHi[i] < b {
			b = u.cellHi[i]
		}
		if a > b {
			continue
		}
		w := u.opts.LiveWeight(a, b, wor)
		if !(w > 0) {
			continue
		}
		u.exp[i] += float64(m) * w / totalIn
	}
}

// minExpected is the classic chi-squared validity floor: cells with
// less accumulated expectation are left out of the statistic (and the
// degrees of freedom) until they have seen enough mass.
const minExpected = 5.0

// recompute refreshes the statistic, critical value, gauge, and breach
// state. Caller holds u.mu.
func (u *Uniformity) recompute() {
	stat := 0.0
	included := 0
	for i, e := range u.exp {
		if e < minExpected {
			continue
		}
		d := float64(u.obs[i]) - e
		stat += d * d / e
		included++
	}
	if included < 2 || u.folded < u.opts.MinFolded {
		u.stat, u.critical = 0, 0
		if u.opts.Gauge != nil {
			u.opts.Gauge.Set(0)
		}
		return
	}
	crit := stats.ChiSquareCritical(included-1, u.opts.Alpha)
	u.stat, u.critical = stat, crit
	ratio := stat / crit
	if u.opts.Gauge != nil {
		u.opts.Gauge.Set(ratio)
	}
	if ratio > 1 {
		if !u.breached && u.opts.OnBreach != nil {
			u.opts.OnBreach(stat, crit, u.folded)
		}
		u.breached = true
	} else {
		u.breached = false
	}
}

// Snapshot returns the current statistic, critical value, and folded
// sample count (stat and critical are 0 below MinFolded).
func (u *Uniformity) Snapshot() (stat, critical float64, folded int64) {
	if u == nil || u.cellIdx == nil {
		return 0, 0, 0
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.stat, u.critical, u.folded
}

// Quality returns statistic/critical (0 while inert or warming up) —
// the value the exported gauge carries.
func (u *Uniformity) Quality() float64 {
	stat, crit, _ := u.Snapshot()
	if crit <= 0 {
		return 0
	}
	return stat / crit
}

// Cells returns the number of active cells (0 when inert).
func (u *Uniformity) Cells() int {
	if u == nil {
		return 0
	}
	return len(u.cellHi)
}
