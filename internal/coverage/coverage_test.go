package coverage

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// rangeIndex is a toy exact Index over n elements: the predicate is a
// position range [Lo, Hi], covered by splitting into fixed-size blocks
// (so covers have >1 node and partial blocks are exercised).
type rangeIndex struct {
	weights []float64
	block   int
}

type posRangeQ struct{ Lo, Hi int }

func (ri *rangeIndex) NumElements() int { return len(ri.weights) }

func (ri *rangeIndex) Cover(q posRangeQ, dst []Node) []Node {
	if q.Lo > q.Hi || q.Hi >= len(ri.weights) || q.Lo < 0 {
		return dst
	}
	for lo := q.Lo; lo <= q.Hi; {
		hi := min((lo/ri.block+1)*ri.block-1, q.Hi)
		w := 0.0
		for i := lo; i <= hi; i++ {
			w += ri.weights[i]
		}
		dst = append(dst, Node{Lo: lo, Hi: hi, Weight: w})
		lo = hi + 1
	}
	return dst
}

func chi2Crit(dof int) float64 {
	z := 3.719
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestSamplerDistribution(t *testing.T) {
	r := rng.New(1)
	const n = 40
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = r.Float64()*4 + 0.5
	}
	idx := &rangeIndex{weights: weights, block: 7}
	sp, err := NewSampler[posRangeQ](idx, weights)
	if err != nil {
		t.Fatal(err)
	}
	q := posRangeQ{5, 33}
	total := 0.0
	for i := q.Lo; i <= q.Hi; i++ {
		total += weights[i]
	}
	const draws = 300000
	counts := make([]int, n)
	out, ok := sp.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, pos := range out {
		if pos < q.Lo || pos > q.Hi {
			t.Fatalf("pos %d outside query", pos)
		}
		counts[pos]++
	}
	chi2 := 0.0
	for i := q.Lo; i <= q.Hi; i++ {
		expected := draws * weights[i] / total
		d := float64(counts[i]) - expected
		chi2 += d * d / expected
	}
	if chi2 > chi2Crit(q.Hi-q.Lo) {
		t.Fatalf("chi2 = %v", chi2)
	}
	if got := sp.RangeWeight(q); math.Abs(got-total) > 1e-9 {
		t.Fatalf("RangeWeight = %v, want %v", got, total)
	}
}

func TestSamplerEmptyCover(t *testing.T) {
	idx := &rangeIndex{weights: []float64{1, 1, 1}, block: 2}
	sp, err := NewSampler[posRangeQ](idx, idx.weights)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.Query(rng.New(1), posRangeQ{2, 1}, 5, nil); ok {
		t.Fatal("empty cover returned ok")
	}
}

func TestSamplerWeightsMismatch(t *testing.T) {
	idx := &rangeIndex{weights: []float64{1, 1}, block: 2}
	if _, err := NewSampler[posRangeQ](idx, []float64{1}); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
}

func TestComplementCoverProperties(t *testing.T) {
	r := rng.New(2)
	f := func(nRaw, loRaw, spanRaw uint16) bool {
		n := int(nRaw%200) + 1
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = float64(i)
			weights[i] = 1
		}
		c, err := NewComplement(values, weights)
		if err != nil {
			return false
		}
		lo := float64(loRaw % uint16(n+10))
		hi := lo + float64(spanRaw%uint16(n+10))
		q := Interval{Lo: lo, Hi: hi}
		cov := c.ApproxCover(q, nil)
		// Size at most 2 — the §6 claim.
		if len(cov) > 2 {
			return false
		}
		// Count the true complement.
		m := 0
		for _, v := range values {
			if v < lo || v > hi {
				m++
			}
		}
		if m == 0 {
			return len(cov) == 0
		}
		// Every complement element must be covered; covered total must be
		// at most 4x the complement size (the constant here is 2 per
		// piece).
		covered := 0
		for _, nd := range cov {
			covered += nd.Hi - nd.Lo + 1
		}
		for i, v := range values {
			if v < lo || v > hi {
				in := false
				for _, nd := range cov {
					if i >= nd.Lo && i <= nd.Hi {
						in = true
					}
				}
				if !in {
					return false
				}
			}
		}
		if covered > 4*m {
			return false
		}
		// Disjointness.
		if len(cov) == 2 && cov[0].Hi >= cov[1].Lo && cov[1].Hi >= cov[0].Lo {
			// Overlapping spans.
			if !(cov[0].Hi < cov[1].Lo || cov[1].Hi < cov[0].Lo) {
				return false
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestComplementSamplerDistribution(t *testing.T) {
	const n = 50
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1
	}
	sp, c, err := NewComplementSampler(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	// q covers [10, 44] (35 of 50 elements, > half): complement is
	// {0..9} ∪ {45..49}, exercising the two-spine-node branch.
	q := Interval{Lo: 10, Hi: 44}
	const draws = 150000
	counts := map[int]int{}
	out, ok, err := sp.Query(r, q, draws, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, pos := range out {
		v := c.Value(pos)
		if v >= 10 && v <= 44 {
			t.Fatalf("sampled %v inside q", v)
		}
		counts[pos]++
	}
	expected := float64(draws) / 15
	for pos, cnt := range counts {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pos %d count %d, expected ~%v", pos, cnt, expected)
		}
	}
	if len(counts) != 15 {
		t.Fatalf("only %d of 15 complement elements sampled", len(counts))
	}
}

func TestComplementSmallQUsesRoot(t *testing.T) {
	const n = 20
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1
	}
	c, err := NewComplement(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	cov := c.ApproxCover(Interval{Lo: 5, Hi: 8}, nil) // 4 ≤ n/2 inside
	if len(cov) != 1 || cov[0].Lo != 0 || cov[0].Hi != n-1 {
		t.Fatalf("cover = %v, want root", cov)
	}
}

func TestComplementEmptyComplement(t *testing.T) {
	values := []float64{1, 2, 3}
	weights := []float64{1, 1, 1}
	sp, _, err := NewComplementSampler(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := sp.Query(rng.New(4), Interval{Lo: 0, Hi: 5}, 3, nil)
	if ok || err != nil {
		t.Fatalf("ok=%v err=%v for empty complement", ok, err)
	}
}

func TestComplementEmptyIntersection(t *testing.T) {
	// q misses S entirely: complement is everything.
	values := []float64{1, 2, 3, 4}
	weights := []float64{1, 1, 1, 1}
	sp, _, err := NewComplementSampler(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := sp.Query(rng.New(5), Interval{Lo: 100, Hi: 200}, 100, nil)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	seen := map[int]bool{}
	for _, pos := range out {
		seen[pos] = true
	}
	if len(seen) != 4 {
		t.Fatalf("sampled %d of 4 elements", len(seen))
	}
}

// brokenIndex violates the density condition: its cover contains no
// satisfying element.
type brokenIndex struct{ n int }

func (b *brokenIndex) NumElements() int { return b.n }
func (b *brokenIndex) ApproxCover(q struct{}, dst []Node) []Node {
	return append(dst, Node{Lo: 0, Hi: b.n - 1, Weight: float64(b.n)})
}
func (b *brokenIndex) Contains(q struct{}, pos int) bool { return false }

func TestRejectionStuck(t *testing.T) {
	idx := &brokenIndex{n: 8}
	weights := make([]float64, 8)
	for i := range weights {
		weights[i] = 1
	}
	sp, err := NewApproxSampler[struct{}](idx, weights)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp.Query(rng.New(6), struct{}{}, 1, nil); err != ErrRejectionStuck {
		t.Fatalf("err = %v, want ErrRejectionStuck", err)
	}
}

func TestCachedApproxSampler(t *testing.T) {
	const n = 64
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
		weights[i] = 1
	}
	c, err := NewComplement(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewCachedApproxSampler[Interval](c, c.weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	// Different predicates sharing the root cover must hit the cache.
	for i := 0; i < 50; i++ {
		q := Interval{Lo: float64(10 + i%5), Hi: float64(12 + i%5)}
		if _, ok, err := sp.Query(r, q, 3, nil); !ok || err != nil {
			t.Fatalf("query %d: ok=%v err=%v", i, ok, err)
		}
	}
	size, hits, misses := sp.CacheStats()
	if size != 1 {
		t.Fatalf("cache size = %d, want 1 (all small-q covers are the root)", size)
	}
	if hits != 49 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d", hits, misses)
	}
	// Distribution sanity on the cached path.
	out, ok, err := sp.Query(r, Interval{Lo: 0, Hi: 31}, 60000, nil)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	counts := map[int]int{}
	for _, pos := range out {
		if pos < 32 {
			t.Fatalf("sampled pos %d inside q", pos)
		}
		counts[pos]++
	}
	expected := 60000.0 / 32
	for pos, cnt := range counts {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pos %d count %d", pos, cnt)
		}
	}
}

func TestCachedRejectionStuck(t *testing.T) {
	idx := &brokenIndex{n: 4}
	weights := []float64{1, 1, 1, 1}
	sp, err := NewCachedApproxSampler[struct{}](idx, weights)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp.Query(rng.New(8), struct{}{}, 1, nil); err != ErrRejectionStuck {
		t.Fatalf("err = %v", err)
	}
}

func TestConstructorWeightMismatches(t *testing.T) {
	c, err := NewComplement([]float64{1, 2}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewApproxSampler[Interval](c, []float64{1}); err == nil {
		t.Fatal("approx sampler length mismatch accepted")
	}
	if _, err := NewCachedApproxSampler[Interval](c, []float64{1}); err == nil {
		t.Fatal("cached sampler length mismatch accepted")
	}
	if _, _, err := NewComplementSampler([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewComplement([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("complement length mismatch accepted")
	}
}
