package coverage

import (
	"encoding/binary"

	"repro/internal/alias"
	"repro/internal/rangesample"
	"repro/internal/rng"
)

// CachedApproxSampler is the Corollary 7 transform: the alias structure
// over each distinct approximate cover is computed once and memoised, so
// that repeated predicates sharing a cover pay O(s) expected per query
// instead of O(|Ĉ_q| + s). The extra space is O(Σ_{C ∈ Ĉ} |C|), the sum
// of the distinct cover sizes — exactly the trade stated in the
// corollary.
//
// The corollary's usefulness hinges on approximate covers being shared by
// many predicates (the paper's §6 remark); the §6 Complement example
// below has only O(log² n) distinct covers across all possible intervals.
type CachedApproxSampler[Q any] struct {
	idx   ApproxIndex[Q]
	pos   *rangesample.PosSampler
	cache map[string]*cachedCover
	// stats
	hits, misses         int
	maxAttemptsPerSample int
}

type cachedCover struct {
	cov []Node
	top *alias.Alias
}

// NewCachedApproxSampler builds the transform; weights as in NewSampler.
func NewCachedApproxSampler[Q any](idx ApproxIndex[Q], weights []float64) (*CachedApproxSampler[Q], error) {
	inner, err := NewApproxSampler(idx, weights)
	if err != nil {
		return nil, err
	}
	return &CachedApproxSampler[Q]{
		idx:   idx,
		pos:   inner.pos,
		cache: make(map[string]*cachedCover),
	}, nil
}

// coverKey serialises a cover's spans into a map key.
func coverKey(cov []Node) string {
	buf := make([]byte, 0, len(cov)*8)
	var tmp [8]byte
	for _, nd := range cov {
		binary.LittleEndian.PutUint32(tmp[0:4], uint32(nd.Lo))
		binary.LittleEndian.PutUint32(tmp[4:8], uint32(nd.Hi))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

// Query is ApproxSampler.Query with cover-level alias memoisation.
func (sp *CachedApproxSampler[Q]) Query(r *rng.Source, q Q, s int, dst []int) ([]int, bool, error) {
	var scratch [128]Node
	cov := sp.idx.ApproxCover(q, scratch[:0])
	if len(cov) == 0 {
		return dst, false, nil
	}
	key := coverKey(cov)
	entry, ok := sp.cache[key]
	if !ok {
		sp.misses++
		w := make([]float64, len(cov))
		for i, nd := range cov {
			w[i] = nd.Weight
		}
		entry = &cachedCover{
			cov: append([]Node(nil), cov...),
			top: alias.MustNew(w),
		}
		sp.cache[key] = entry
	} else {
		sp.hits++
	}
	maxAttempts := sp.maxAttemptsPerSample
	if maxAttempts == 0 {
		maxAttempts = 64
	}
	var one [1]int
	for i := 0; i < s; i++ {
		accepted := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			nd := entry.cov[entry.top.Sample(r)]
			pos := sp.pos.Query(r, nd.Lo, nd.Hi, 1, one[:0])[0]
			if sp.idx.Contains(q, pos) {
				dst = append(dst, pos)
				accepted = true
				break
			}
		}
		if !accepted {
			return dst, false, ErrRejectionStuck
		}
	}
	return dst, true, nil
}

// CacheStats returns (distinct covers cached, hits, misses).
func (sp *CachedApproxSampler[Q]) CacheStats() (size, hits, misses int) {
	return len(sp.cache), sp.hits, sp.misses
}
