package coverage

import (
	"errors"
	"sort"
)

// Complement implements the worked example of Section 6: sampling from
// S ∖ q for an interval q over sorted 1-D values. In a BST, an exact
// cover of a complement range can require Ω(log n) canonical nodes, but
// an approximate cover of size at most 2 always exists (attributed to Hu
// et al. [18] in the paper). This type realises that bound:
//
//   - if q contains at most half of S, the root alone approximately
//     covers the complement (density ≥ 1/2);
//   - otherwise the complement's prefix piece [0, a−1] and suffix piece
//     [b+1, n−1] are each covered by the smallest BST spine node
//     containing them, which over-counts by a factor < 2 (an even-split
//     spine halves geometrically), and the two spine nodes have disjoint
//     subtrees precisely because q covers more than half of S.
//
// Complement implements ApproxIndex[Interval] and is consumed through
// ApproxSampler/CachedApproxSampler (Theorem 6 / Corollary 7).
type Complement struct {
	values  []float64 // sorted
	weights []float64
	prefix  []float64 // prefix[i] = Σ weights[0..i-1]
}

// Interval is a closed interval [Lo, Hi]; the predicate is "NOT in the
// interval".
type Interval struct {
	Lo, Hi float64
}

// ErrEmpty is returned when constructing over no elements.
var ErrEmpty = errors.New("coverage: empty input")

// NewComplement builds the structure over values and weights (unsorted
// input is sorted internally, weights following their values).
func NewComplement(values, weights []float64) (*Complement, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(weights) != n {
		return nil, errors.New("coverage: values and weights length mismatch")
	}
	c := &Complement{
		values:  append([]float64(nil), values...),
		weights: append([]float64(nil), weights...),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	for i, j := range idx {
		c.values[i] = values[j]
		c.weights[i] = weights[j]
		if !(c.weights[i] > 0) {
			return nil, errors.New("coverage: weights must be positive")
		}
	}
	c.prefix = make([]float64, n+1)
	for i, w := range c.weights {
		c.prefix[i+1] = c.prefix[i] + w
	}
	return c, nil
}

// NumElements implements ApproxIndex.
func (c *Complement) NumElements() int { return len(c.values) }

// Contains implements ApproxIndex: position pos satisfies the predicate
// when its value lies outside q.
func (c *Complement) Contains(q Interval, pos int) bool {
	v := c.values[pos]
	return v < q.Lo || v > q.Hi
}

// Value returns the i-th smallest stored value.
func (c *Complement) Value(i int) float64 { return c.values[i] }

// insideRange returns the position range [a, b] of values inside q;
// empty=true when no value is inside.
func (c *Complement) insideRange(q Interval) (a, b int, empty bool) {
	a = sort.SearchFloat64s(c.values, q.Lo)
	b = sort.Search(len(c.values), func(i int) bool { return c.values[i] > q.Hi }) - 1
	if a > b {
		return 0, 0, true
	}
	return a, b, false
}

// spanWeight returns the total weight of positions [lo, hi].
func (c *Complement) spanWeight(lo, hi int) float64 {
	return c.prefix[hi+1] - c.prefix[lo]
}

// leftSpine returns the smallest even-split spine span [0, m] covering
// position p. The even-split spine is the sequence of left children from
// the root of the §3.2 BST, whose sizes halve geometrically, so
// m+1 < 2(p+1).
func leftSpine(n, p int) int {
	lo, hi := 0, n-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if mid >= p {
			hi = mid
		} else {
			break
		}
	}
	return hi
}

// rightSpine returns the largest start m of an even-split right-spine
// span [m, n-1] covering position p (so n-m < 2(n-p)).
func rightSpine(n, p int) int {
	lo, hi := 0, n-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if mid+1 <= p {
			lo = mid + 1
		} else {
			break
		}
	}
	return lo
}

// ApproxCover implements ApproxIndex. The returned cover has size ≤ 2.
func (c *Complement) ApproxCover(q Interval, dst []Node) []Node {
	n := len(c.values)
	a, b, empty := c.insideRange(q)
	if empty {
		// Complement is everything.
		return append(dst, Node{Lo: 0, Hi: n - 1, Weight: c.spanWeight(0, n-1)})
	}
	k := b - a + 1
	if k == n {
		// Complement is empty.
		return dst
	}
	if k <= n/2 {
		// Root alone: density = (n-k)/n ≥ 1/2.
		return append(dst, Node{Lo: 0, Hi: n - 1, Weight: c.spanWeight(0, n-1)})
	}
	// q covers more than half: cover the prefix [0,a-1] and suffix
	// [b+1,n-1] with their spine nodes.
	if a > 0 {
		m := leftSpine(n, a-1)
		dst = append(dst, Node{Lo: 0, Hi: m, Weight: c.spanWeight(0, m)})
	}
	if b < n-1 {
		m := rightSpine(n, b+1)
		dst = append(dst, Node{Lo: m, Hi: n - 1, Weight: c.spanWeight(m, n-1)})
	}
	return dst
}

var _ ApproxIndex[Interval] = (*Complement)(nil)

// NewComplementSampler is a convenience constructor wiring Complement
// into the Theorem 6 transform.
func NewComplementSampler(values, weights []float64) (*ApproxSampler[Interval], *Complement, error) {
	c, err := NewComplement(values, weights)
	if err != nil {
		return nil, nil, err
	}
	sp, err := NewApproxSampler[Interval](c, c.weights)
	if err != nil {
		return nil, nil, err
	}
	return sp, c, nil
}
