// Package coverage implements the paper's Technique 2 ("Coverage",
// Theorem 5) and Technique 3 ("Approximate Coverage", Theorem 6 and
// Corollary 7) as generic transforms.
//
// Setting: a tree-based reporting structure stores each element of S at a
// distinct leaf. Linearise the leaves by a depth-first traversal (every
// subtree spans a contiguous range of the leaf sequence — Proposition 1).
// Given a predicate q, the structure produces a cover C_q: a set of nodes
// with disjoint subtrees whose leaves are exactly S_q (Theorem 5), or an
// approximate cover Ĉ_q whose leaves contain S_q with |S_q| =
// Ω(|∪ S(u)|) (Theorem 6).
//
// The transforms below convert any such structure into an IQS structure:
//
//	Sampler        Theorem 5: query cost O(|C_q| + s) plus cover finding
//	ApproxSampler  Theorem 6: query cost O(|Ĉ_q| + s) expected, via
//	               rejection, plus cover finding
//	CoverCache     Corollary 7: memoises per-cover alias structures,
//	               removing the O(|Ĉ_q|) alias-building term for repeated
//	               covers at the price of extra space
//
// Concrete instantiations in this repository: internal/kdtree (cover size
// O(n^{1-1/d})), internal/rangetree (cover size O(log^d n)), and the
// Complement sampler below (the §6 worked example with approximate covers
// of size ≤ 2).
package coverage

import (
	"errors"
	"fmt"

	"repro/internal/alias"
	"repro/internal/rangesample"
	"repro/internal/rng"
)

// Node is one cover element: a contiguous span [Lo, Hi] over the
// structure's depth-first leaf sequence, with the subtree's total weight.
type Node struct {
	Lo, Hi int
	Weight float64
}

// Index is a tree-based reporting structure in the sense of Theorem 5:
// it can produce, for any predicate of type Q, an exact cover over its
// leaf sequence.
type Index[Q any] interface {
	// Cover appends the cover C_q to dst: disjoint spans whose union of
	// leaves is exactly S_q. An empty result means S_q = ∅.
	Cover(q Q, dst []Node) []Node
	// NumElements returns the length of the leaf sequence.
	NumElements() int
}

// Sampler is the Theorem 5 transform: it adds O(m) structures (subtree
// weights plus the Lemma 4 engine over the leaf sequence) to an Index and
// answers weighted IQS queries in O(|C_q| + s) time plus the index's
// cover-finding time.
type Sampler[Q any] struct {
	idx Index[Q]
	pos *rangesample.PosSampler
}

// NewSampler builds the transform. weights[i] is the weight of the
// element at leaf-sequence position i; len(weights) must equal
// idx.NumElements().
func NewSampler[Q any](idx Index[Q], weights []float64) (*Sampler[Q], error) {
	if len(weights) != idx.NumElements() {
		return nil, fmt.Errorf("coverage: %d weights for %d elements",
			len(weights), idx.NumElements())
	}
	return &Sampler[Q]{idx: idx, pos: rangesample.NewPosSampler(weights)}, nil
}

// Query appends s independent weighted samples from S_q to dst as
// leaf-sequence positions. ok is false when S_q is empty.
//
// Algorithm (proof of Theorem 5): find C_q; build an alias structure over
// the cover weights on the fly (Theorem 1, O(|C_q|)); draw the per-node
// sample counts in O(s); finish each node's quota from the leaf-sequence
// sampler.
func (sp *Sampler[Q]) Query(r *rng.Source, q Q, s int, dst []int) ([]int, bool) {
	var scratch [128]Node
	cov := sp.idx.Cover(q, scratch[:0])
	if len(cov) == 0 {
		return dst, false
	}
	if len(cov) == 1 {
		return sp.pos.Query(r, cov[0].Lo, cov[0].Hi, s, dst), true
	}
	w := make([]float64, len(cov))
	for i, nd := range cov {
		w[i] = nd.Weight
	}
	counts := alias.MustNew(w).Counts(r, s)
	for i, cnt := range counts {
		if cnt > 0 {
			dst = sp.pos.Query(r, cov[i].Lo, cov[i].Hi, cnt, dst)
		}
	}
	return dst, true
}

// RangeWeight returns the total weight of S_q (the sum of cover weights).
func (sp *Sampler[Q]) RangeWeight(q Q) float64 {
	var scratch [128]Node
	cov := sp.idx.Cover(q, scratch[:0])
	sum := 0.0
	for _, nd := range cov {
		sum += nd.Weight
	}
	return sum
}

// ApproxIndex is a tree-based structure in the sense of Theorem 6: it
// produces approximate covers and can test membership of an element
// (identified by its leaf-sequence position) in S_q.
type ApproxIndex[Q any] interface {
	// ApproxCover appends Ĉ_q to dst: disjoint spans whose leaves
	// contain S_q, with |S_q| = Ω(total leaves covered). Empty result
	// means S_q = ∅.
	ApproxCover(q Q, dst []Node) []Node
	// Contains reports whether the element at leaf position pos
	// satisfies q.
	Contains(q Q, pos int) bool
	// NumElements returns the length of the leaf sequence.
	NumElements() int
}

// ErrRejectionStuck is returned when the rejection loop fails to accept
// for far longer than the Theorem 6 contract (constant expected repeats)
// allows — the ApproxIndex is violating the Ω(·) condition.
var ErrRejectionStuck = errors.New("coverage: rejection loop stuck; approximate cover violates the density condition")

// ApproxSampler is the Theorem 6 transform: like Sampler, but each
// candidate drawn from the approximate cover is kept only if it satisfies
// q; rejected candidates are redrawn. With a valid approximate cover the
// expected number of repeats per sample is O(1).
//
// Note on weights: the paper states Theorem 6 for WR sampling (uniform
// weights), where the Ω(·) density condition is cardinality-based. The
// transform below is exact for arbitrary weights, but the O(1)-repeats
// guarantee needs the density condition to hold in *weight*: the
// elements of S_q must carry a constant fraction of the cover's total
// weight (the weighted extension is due to Afshani–Phillips [2]).
type ApproxSampler[Q any] struct {
	idx ApproxIndex[Q]
	pos *rangesample.PosSampler
	// maxAttemptsPerSample bounds the rejection loop (safety valve, not
	// part of the paper's model). 0 means the default of 64.
	maxAttemptsPerSample int
}

// NewApproxSampler builds the transform; weights as in NewSampler.
func NewApproxSampler[Q any](idx ApproxIndex[Q], weights []float64) (*ApproxSampler[Q], error) {
	if len(weights) != idx.NumElements() {
		return nil, fmt.Errorf("coverage: %d weights for %d elements",
			len(weights), idx.NumElements())
	}
	return &ApproxSampler[Q]{idx: idx, pos: rangesample.NewPosSampler(weights)}, nil
}

// Query appends s independent weighted samples from S_q. It reports
// ErrRejectionStuck if the cover's density condition is violated.
func (sp *ApproxSampler[Q]) Query(r *rng.Source, q Q, s int, dst []int) ([]int, bool, error) {
	var scratch [128]Node
	cov := sp.idx.ApproxCover(q, scratch[:0])
	if len(cov) == 0 {
		return dst, false, nil
	}
	w := make([]float64, len(cov))
	for i, nd := range cov {
		w[i] = nd.Weight
	}
	top := alias.MustNew(w)
	maxAttempts := sp.maxAttemptsPerSample
	if maxAttempts == 0 {
		maxAttempts = 64
	}
	var one [1]int
	for i := 0; i < s; i++ {
		accepted := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			nd := cov[top.Sample(r)]
			pos := sp.pos.Query(r, nd.Lo, nd.Hi, 1, one[:0])[0]
			if sp.idx.Contains(q, pos) {
				dst = append(dst, pos)
				accepted = true
				break
			}
		}
		if !accepted {
			return dst, false, ErrRejectionStuck
		}
	}
	return dst, true, nil
}
