// Package intervaltree implements IQS for interval stabbing queries —
// another instantiation of the paper's Theorem 5, underscoring its point
// that the coverage technique converts tree-based database indexes into
// IQS structures wholesale.
//
// Problem: S is a set of n intervals [l_i, r_i], each with a positive
// weight. Given a stabbing point q and an integer s ≥ 1, a query returns
// s independent weighted samples from S_q := {i : l_i ≤ q ≤ r_i}, with
// outputs independent across queries.
//
// Structure: the classic interval tree (Edelsbrunner/McCreight). Each
// node owns the intervals that cross its centre point, stored twice —
// sorted by left endpoint and sorted by descending right endpoint. For a
// stabbing point q < centre, the node's qualifying intervals are exactly
// a *prefix* of its left-sorted list (those with l ≤ q); for q > centre,
// a prefix of its right-desc-sorted list (those with r ≥ q); for q =
// centre, the whole node. Each prefix is a contiguous run of a fixed
// layout — precisely the element-aligned range the Theorem 5 transform
// consumes. A query decomposes S_q into O(log n) such runs (one per node
// on the search path), found with one binary search each:
// O(log² n + s) query time, O(n) space (each interval appears in the two
// sorted lists of exactly one node).
package intervaltree

import (
	"errors"
	"sort"

	"repro/internal/alias"
	"repro/internal/rangesample"
	"repro/internal/rng"
)

// Interval is a closed interval [L, R].
type Interval struct {
	L, R float64
}

// Contains reports whether the interval covers q.
func (iv Interval) Contains(q float64) bool { return iv.L <= q && q <= iv.R }

// ErrEmpty is returned when building over no intervals.
var ErrEmpty = errors.New("intervaltree: empty input")

// ErrBadInterval is returned for an interval with R < L.
var ErrBadInterval = errors.New("intervaltree: interval with R < L")

// ErrBadWeight is returned for non-positive weights.
var ErrBadWeight = errors.New("intervaltree: weights must be positive and finite")

// Tree is the interval tree with IQS sampling.
type Tree struct {
	ivs []Interval
	wts []float64
	// Node storage. Each node: centre, child links, and two runs into
	// the shared layout arrays.
	nodes []node
	root  int32
	// byLeft / byRight are concatenated per-node lists: interval ids
	// sorted within each node by ascending L / descending R.
	byLeft  []int32
	byRight []int32
	// Weighted engines over the two layouts (Lemma 4 / PosSampler):
	// per-node runs are contiguous in these arrays.
	leftEngine  *rangesample.PosSampler
	rightEngine *rangesample.PosSampler
}

type node struct {
	centre      float64
	left, right int32 // -1 when absent
	off, cnt    int32 // run [off, off+cnt) in byLeft and byRight
	weight      float64
}

// New builds the tree over intervals and weights (nil weights mean
// uniform). Build time O(n log n).
func New(ivs []Interval, weights []float64) (*Tree, error) {
	n := len(ivs)
	if n == 0 {
		return nil, ErrEmpty
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != n {
		return nil, errors.New("intervaltree: intervals and weights length mismatch")
	}
	for i, iv := range ivs {
		if iv.R < iv.L {
			return nil, ErrBadInterval
		}
		if !(weights[i] > 0) {
			return nil, ErrBadWeight
		}
	}
	t := &Tree{
		ivs: append([]Interval(nil), ivs...),
		wts: append([]float64(nil), weights...),
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	t.root = t.build(all)
	// Engines over the final layouts.
	lw := make([]float64, len(t.byLeft))
	for i, id := range t.byLeft {
		lw[i] = t.wts[id]
	}
	t.leftEngine = rangesample.NewPosSampler(lw)
	rw := make([]float64, len(t.byRight))
	for i, id := range t.byRight {
		rw[i] = t.wts[id]
	}
	t.rightEngine = rangesample.NewPosSampler(rw)
	return t, nil
}

// build constructs the subtree over the given interval ids and returns
// its node index (-1 for none).
func (t *Tree) build(ids []int32) int32 {
	if len(ids) == 0 {
		return -1
	}
	// Centre: median of all endpoint midpoints (median of L's works and
	// guarantees both sides shrink).
	ls := make([]float64, len(ids))
	for i, id := range ids {
		ls[i] = (t.ivs[id].L + t.ivs[id].R) / 2
	}
	sort.Float64s(ls)
	centre := ls[len(ls)/2]

	var crossing, leftIDs, rightIDs []int32
	for _, id := range ids {
		switch {
		case t.ivs[id].R < centre:
			leftIDs = append(leftIDs, id)
		case t.ivs[id].L > centre:
			rightIDs = append(rightIDs, id)
		default:
			crossing = append(crossing, id)
		}
	}
	// Degenerate guard: if nothing crosses (can't happen with midpoint
	// medians — the median midpoint's interval always crosses), force
	// progress by moving one interval in.
	if len(crossing) == 0 {
		if len(leftIDs) > 0 {
			crossing = append(crossing, leftIDs[len(leftIDs)-1])
			leftIDs = leftIDs[:len(leftIDs)-1]
		} else {
			crossing = append(crossing, rightIDs[0])
			rightIDs = rightIDs[1:]
		}
	}

	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{centre: centre, left: -1, right: -1})

	off := int32(len(t.byLeft))
	byL := append([]int32(nil), crossing...)
	sort.Slice(byL, func(a, b int) bool {
		la, lb := t.ivs[byL[a]].L, t.ivs[byL[b]].L
		if la != lb {
			return la < lb
		}
		return byL[a] < byL[b]
	})
	byR := append([]int32(nil), crossing...)
	sort.Slice(byR, func(a, b int) bool {
		ra, rb := t.ivs[byR[a]].R, t.ivs[byR[b]].R
		if ra != rb {
			return ra > rb
		}
		return byR[a] < byR[b]
	})
	t.byLeft = append(t.byLeft, byL...)
	t.byRight = append(t.byRight, byR...)
	w := 0.0
	for _, id := range crossing {
		w += t.wts[id]
	}
	nd := &t.nodes[idx]
	nd.off = off
	nd.cnt = int32(len(crossing))
	nd.weight = w

	l := t.build(leftIDs)
	r := t.build(rightIDs)
	t.nodes[idx].left = l
	t.nodes[idx].right = r
	return idx
}

// Len returns the number of intervals.
func (t *Tree) Len() int { return len(t.ivs) }

// run is one contiguous qualifying range: in the left layout when
// useLeft, else in the right layout.
type run struct {
	off, cnt int32
	weight   float64
	useLeft  bool
}

// stab collects the qualifying runs for point q: one per node on the
// search path, each found by binary search within the node's list.
func (t *Tree) stab(q float64, dst []run) []run {
	for id := t.root; id >= 0; {
		nd := &t.nodes[id]
		switch {
		case q < nd.centre:
			// Prefix of byLeft with L ≤ q.
			lo, hi := int(nd.off), int(nd.off+nd.cnt)
			k := sort.Search(hi-lo, func(i int) bool {
				return t.ivs[t.byLeft[lo+i]].L > q
			})
			if k > 0 {
				w := t.leftEngine.RangeWeight(lo, lo+k-1)
				dst = append(dst, run{off: nd.off, cnt: int32(k), weight: w, useLeft: true})
			}
			id = nd.left
		case q > nd.centre:
			// Prefix of byRight (descending R) with R ≥ q.
			lo, hi := int(nd.off), int(nd.off+nd.cnt)
			k := sort.Search(hi-lo, func(i int) bool {
				return t.ivs[t.byRight[lo+i]].R < q
			})
			if k > 0 {
				w := t.rightEngine.RangeWeight(lo, lo+k-1)
				dst = append(dst, run{off: nd.off, cnt: int32(k), weight: w, useLeft: false})
			}
			id = nd.right
		default:
			// q == centre: the whole node qualifies.
			if nd.cnt > 0 {
				dst = append(dst, run{off: nd.off, cnt: nd.cnt, weight: nd.weight, useLeft: true})
			}
			return dst
		}
	}
	return dst
}

// Query appends s independent weighted samples from S_q (interval
// indices) to dst. ok is false when no interval contains q.
// O(log² n + s) time (uniform weights: the per-sample step is O(1)).
func (t *Tree) Query(r *rng.Source, q float64, s int, dst []int) ([]int, bool) {
	var scratch [64]run
	runs := t.stab(q, scratch[:0])
	if len(runs) == 0 {
		return dst, false
	}
	w := make([]float64, len(runs))
	for i, rn := range runs {
		w[i] = rn.weight
	}
	counts := alias.MustNew(w).Counts(r, s)
	var buf [64]int
	for i, cnt := range counts {
		if cnt == 0 {
			continue
		}
		rn := runs[i]
		engine := t.rightEngine
		layout := t.byRight
		if rn.useLeft {
			engine = t.leftEngine
			layout = t.byLeft
		}
		out := engine.Query(r, int(rn.off), int(rn.off+rn.cnt)-1, cnt, buf[:0])
		for _, pos := range out {
			dst = append(dst, int(layout[pos]))
		}
	}
	return dst, true
}

// StabWeight returns the total weight of the intervals containing q.
func (t *Tree) StabWeight(q float64) float64 {
	var scratch [64]run
	runs := t.stab(q, scratch[:0])
	sum := 0.0
	for _, rn := range runs {
		sum += rn.weight
	}
	return sum
}

// Report appends all interval indices containing q (baseline/test
// helper).
func (t *Tree) Report(q float64, dst []int) []int {
	var scratch [64]run
	runs := t.stab(q, scratch[:0])
	for _, rn := range runs {
		layout := t.byRight
		if rn.useLeft {
			layout = t.byLeft
		}
		for i := rn.off; i < rn.off+rn.cnt; i++ {
			dst = append(dst, int(layout[i]))
		}
	}
	return dst
}
