package intervaltree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func makeIntervals(n int, seed uint64) ([]Interval, []float64) {
	r := rng.New(seed)
	ivs := make([]Interval, n)
	w := make([]float64, n)
	for i := range ivs {
		l := r.Float64() * 100
		ivs[i] = Interval{L: l, R: l + r.Float64()*20}
		w[i] = r.Float64()*4 + 0.2
	}
	return ivs, w
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([]Interval{{L: 2, R: 1}}, nil); err != ErrBadInterval {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([]Interval{{L: 1, R: 2}}, []float64{0}); err != ErrBadWeight {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([]Interval{{L: 1, R: 2}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReportMatchesBruteForce(t *testing.T) {
	ivs, w := makeIntervals(400, 1)
	tree, err := New(ivs, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	f := func(raw uint16) bool {
		q := float64(raw%1300) / 10
		got := tree.Report(q, nil)
		sort.Ints(got)
		var want []int
		for i, iv := range ivs {
			if iv.Contains(q) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestStabWeightMatchesBruteForce(t *testing.T) {
	ivs, w := makeIntervals(300, 3)
	tree, err := New(ivs, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		q := r.Float64() * 130
		want := 0.0
		for i, iv := range ivs {
			if iv.Contains(q) {
				want += w[i]
			}
		}
		if got := tree.StabWeight(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("StabWeight(%v) = %v, want %v", q, got, want)
		}
	}
}

func chi2Crit(dof int) float64 {
	z := 3.719
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestQueryDistribution(t *testing.T) {
	// Overlapping intervals around q = 50.
	ivs, w := makeIntervals(120, 5)
	tree, err := New(ivs, w)
	if err != nil {
		t.Fatal(err)
	}
	const q = 50.0
	inside := map[int]float64{}
	total := 0.0
	for i, iv := range ivs {
		if iv.Contains(q) {
			inside[i] = w[i]
			total += w[i]
		}
	}
	if len(inside) < 5 {
		t.Fatalf("setup: only %d stabbed", len(inside))
	}
	r := rng.New(6)
	const draws = 300000
	counts := map[int]int{}
	out, ok := tree.Query(r, q, draws, nil)
	if !ok {
		t.Fatal("query empty")
	}
	for _, idx := range out {
		if _, in := inside[idx]; !in {
			t.Fatalf("sampled interval %d not containing q", idx)
		}
		counts[idx]++
	}
	chi2 := 0.0
	for idx, wi := range inside {
		expected := draws * wi / total
		diff := float64(counts[idx]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(len(inside)-1) {
		t.Fatalf("chi2 = %v", chi2)
	}
}

func TestQueryEmpty(t *testing.T) {
	tree, err := New([]Interval{{L: 10, R: 20}, {L: 30, R: 40}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for _, q := range []float64{5, 25, 45} {
		if _, ok := tree.Query(r, q, 2, nil); ok {
			t.Fatalf("stab %v returned ok", q)
		}
		if got := tree.StabWeight(q); got != 0 {
			t.Fatalf("StabWeight(%v) = %v", q, got)
		}
	}
}

func TestQueryAtCentreAndEndpoints(t *testing.T) {
	ivs := []Interval{{L: 0, R: 10}, {L: 5, R: 5}, {L: 5, R: 15}}
	tree, err := New(ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	out, ok := tree.Query(r, 5, 3000, nil)
	if !ok {
		t.Fatal("stab 5 empty")
	}
	seen := map[int]bool{}
	for _, idx := range out {
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("stab 5 hit %d of 3 intervals", len(seen))
	}
	// Closed endpoints.
	out, ok = tree.Query(r, 0, 100, nil)
	if !ok {
		t.Fatal("stab 0 empty")
	}
	for _, idx := range out {
		if idx != 0 {
			t.Fatalf("stab 0 sampled %d", idx)
		}
	}
}

func TestIdenticalIntervals(t *testing.T) {
	ivs := make([]Interval, 50)
	for i := range ivs {
		ivs[i] = Interval{L: 1, R: 2}
	}
	tree, err := New(ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	out, ok := tree.Query(r, 1.5, 5000, nil)
	if !ok {
		t.Fatal("empty")
	}
	seen := map[int]bool{}
	for _, idx := range out {
		seen[idx] = true
	}
	if len(seen) < 40 {
		t.Fatalf("only %d of 50 identical intervals sampled", len(seen))
	}
}

func TestCrossQueryIndependence(t *testing.T) {
	ivs := []Interval{{L: 0, R: 10}, {L: 0, R: 10}}
	tree, err := New(ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	var pairs [4]int
	out, _ := tree.Query(r, 5, 1, nil)
	prev := out[0]
	const queries = 40000
	for i := 0; i < queries; i++ {
		out, _ := tree.Query(r, 5, 1, nil)
		pairs[prev*2+out[0]]++
		prev = out[0]
	}
	expected := float64(queries) / 4
	for i, c := range pairs {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pair %02b count %d", i, c)
		}
	}
}

func BenchmarkStabQuery(b *testing.B) {
	ivs, w := makeIntervals(1<<17, 1)
	tree, err := New(ivs, w)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = tree.Query(r, r.Float64()*100, 16, dst[:0])
	}
}

func TestLen(t *testing.T) {
	tree, err := New([]Interval{{L: 1, R: 2}, {L: 3, R: 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 2 {
		t.Fatalf("Len = %d", tree.Len())
	}
}
