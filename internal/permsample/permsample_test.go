package permsample

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewEmpty(t *testing.T) {
	if _, err := New(nil, 1); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestQueryDeterministic(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	st, err := New(values, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, ok1 := st.Query(10, 60, 5, nil)
	b, ok2 := st.Query(10, 60, 5, nil)
	if !ok1 || !ok2 {
		t.Fatal("query empty")
	}
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("lens %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repeated query returned different output — baseline must be dependent")
		}
	}
}

func TestQueryReturnsLowestRanks(t *testing.T) {
	values := make([]float64, 64)
	for i := range values {
		values[i] = float64(i)
	}
	st, err := New(values, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(loRaw, spanRaw, sRaw uint8) bool {
		lo := float64(loRaw % 64)
		hi := lo + float64(spanRaw%64)
		s := int(sRaw%10) + 1
		out, ok := st.Query(lo, hi, s, nil)
		if !ok {
			return lo > 63
		}
		// Brute force: positions in [lo, hi], sorted by rank.
		var want []int
		for i := 0; i < st.Len(); i++ {
			if st.Value(i) >= lo && st.Value(i) <= hi {
				want = append(want, i)
			}
		}
		sort.Slice(want, func(a, b int) bool { return st.Rank(want[a]) < st.Rank(want[b]) })
		if s > len(want) {
			s = len(want)
		}
		if len(out) != s {
			return false
		}
		for i := 0; i < s; i++ {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryEmptyRange(t *testing.T) {
	st, err := New([]float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Query(10, 20, 2, nil); ok {
		t.Fatal("empty range returned ok")
	}
	if _, ok := st.Query(2.5, 2.9, 2, nil); ok {
		t.Fatal("gap range returned ok")
	}
}

func TestSingleOutputIsUniformAcrossSeeds(t *testing.T) {
	// Over many independently built structures, the first-ranked element
	// of a fixed range must be uniform: a single output of the baseline
	// is a fair sample, only the cross-query behaviour is degenerate.
	values := make([]float64, 8)
	for i := range values {
		values[i] = float64(i)
	}
	counts := make([]int, 8)
	const builds = 40000
	seedGen := rng.New(99)
	for b := 0; b < builds; b++ {
		st, err := New(values, seedGen.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		out, ok := st.Query(0, 7, 1, nil)
		if !ok || len(out) != 1 {
			t.Fatal("query failed")
		}
		counts[out[0]]++
	}
	expected := float64(builds) / 8
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("element %d chosen first %d times, expected ~%v", i, c, expected)
		}
	}
}

func TestSRequestsMoreThanAvailable(t *testing.T) {
	st, err := New([]float64{1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := st.Query(0, 10, 99, nil)
	if !ok || len(out) != 3 {
		t.Fatalf("ok=%v len=%d", ok, len(out))
	}
	seen := map[int]bool{}
	for _, p := range out {
		if seen[p] {
			t.Fatal("duplicate position in WoR output")
		}
		seen[p] = true
	}
}

func TestUnsortedInput(t *testing.T) {
	st, err := New([]float64{5, 1, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Value(0) != 1 || st.Value(2) != 5 {
		t.Fatal("values not sorted")
	}
}

func BenchmarkQuery(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 18
	values := make([]float64, n)
	for i := range values {
		values[i] = r.Float64()
	}
	st, err := New(values, 2)
	if err != nil {
		b.Fatal(err)
	}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := r.Float64() * 0.5
		dst, _ = st.Query(lo, lo+0.25, 16, dst[:0])
	}
}

func TestQueryWR(t *testing.T) {
	values := make([]float64, 50)
	for i := range values {
		values[i] = float64(i)
	}
	st, err := New(values, 9)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	out, ok := st.QueryWR(r, 10, 39, 8, nil)
	if !ok || len(out) != 8 {
		t.Fatalf("ok=%v len=%d", ok, len(out))
	}
	for _, pos := range out {
		if v := st.Value(pos); v < 10 || v > 39 {
			t.Fatalf("value %v outside", v)
		}
	}
	// Empty range.
	if _, ok := st.QueryWR(r, 100, 200, 3, nil); ok {
		t.Fatal("empty range ok")
	}
	// s exceeding |S_q| still yields s outputs (resampling fallback).
	out, ok = st.QueryWR(r, 10, 12, 9, nil)
	if !ok || len(out) != 9 {
		t.Fatalf("oversized: ok=%v len=%d", ok, len(out))
	}
}

func TestQueryWRStillDependent(t *testing.T) {
	// The WR variant must still draw from the same frozen WoR set: the
	// union of many WR draws equals the first s distinct ranked values,
	// never the whole range.
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	st, err := New(values, 11)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	seen := map[int]bool{}
	for q := 0; q < 300; q++ {
		out, _ := st.QueryWR(r, 0, 99, 5, nil)
		for _, pos := range out {
			seen[pos] = true
		}
	}
	if len(seen) > 5 {
		t.Fatalf("WR variant leaked %d distinct values — dependence broken?", len(seen))
	}
}
