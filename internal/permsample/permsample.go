// Package permsample implements the conventional (dependent) query
// sampling structure described in Section 2 of the paper, which serves as
// the foil for IQS throughout the experiments:
//
//	"In preprocessing, we can randomly permute the elements in S and
//	 define the rank of each element as its position in the permutation.
//	 Given q and s, a query simply returns the set Q ⊆ S_q of s elements
//	 having the lowest ranks in S_q. It is clear that Q is a random WoR
//	 sample set of S_q. Equally obvious is that the outputs of different
//	 queries are correlated; e.g., repeating the query with the same q
//	 and s always yields the same Q."
//
// Each individual output is a perfectly uniform WoR sample of S_q — but
// outputs across queries are deterministic functions of one permutation,
// so they are maximally dependent. Experiments E12/E13 quantify what that
// costs.
//
// The retrieval runs in O(log n + s·log(s + log n)) time via a min-rank
// segment tree with heap extraction (the paper cites an O(log n + s)
// top-k range reporting structure [12]; the extra log factor is a
// simplicity trade that does not affect the experiments, which compare
// statistical behaviour, not speed, of this baseline).
package permsample

import (
	"container/heap"
	"errors"
	"sort"

	"repro/internal/rng"
	"repro/internal/wor"
)

// ErrEmpty is returned when building over no elements.
var ErrEmpty = errors.New("permsample: empty input")

// Structure is the dependent query-sampling structure.
type Structure struct {
	values []float64 // sorted
	rank   []int32   // rank[i] = permutation position of values[i]
	// seg is a segment tree over rank: seg[node] = position of the
	// minimum rank in the node's span.
	seg  []int32
	n    int
	size int // segment tree base size (power of two ≥ n)
}

// New builds the structure over values; seed drives the one-off random
// permutation (the only randomness this structure ever uses — that is
// the point).
func New(values []float64, seed uint64) (*Structure, error) {
	n := len(values)
	if n == 0 {
		return nil, ErrEmpty
	}
	st := &Structure{
		values: append([]float64(nil), values...),
		n:      n,
	}
	sort.Float64s(st.values)
	r := rng.New(seed)
	perm := r.Perm(n)
	st.rank = make([]int32, n)
	for i, p := range perm {
		st.rank[i] = int32(p)
	}
	st.size = 1
	for st.size < n {
		st.size *= 2
	}
	st.seg = make([]int32, 2*st.size)
	for i := range st.seg {
		st.seg[i] = -1
	}
	for i := 0; i < n; i++ {
		st.seg[st.size+i] = int32(i)
	}
	for i := st.size - 1; i >= 1; i-- {
		st.seg[i] = st.argmin(st.seg[2*i], st.seg[2*i+1])
	}
	return st, nil
}

func (st *Structure) argmin(a, b int32) int32 {
	switch {
	case a < 0:
		return b
	case b < 0:
		return a
	case st.rank[a] <= st.rank[b]:
		return a
	default:
		return b
	}
}

// Len returns the number of elements.
func (st *Structure) Len() int { return st.n }

// Value returns the i-th smallest value.
func (st *Structure) Value(i int) float64 { return st.values[i] }

// Rank returns the permutation rank of position i (diagnostic).
func (st *Structure) Rank(i int) int { return int(st.rank[i]) }

// segNode is a heap entry: a segment-tree node whose span lies within the
// query range, keyed by the rank of its minimum.
type segNode struct {
	node   int32
	minPos int32
	lo, hi int32 // span of the node clipped to nothing (full node span)
}

type nodeHeap struct {
	items []segNode
	st    *Structure
}

func (h *nodeHeap) Len() int { return len(h.items) }
func (h *nodeHeap) Less(i, j int) bool {
	return h.st.rank[h.items[i].minPos] < h.st.rank[h.items[j].minPos]
}
func (h *nodeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x interface{}) { h.items = append(h.items, x.(segNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Query returns the (at most) s elements of S ∩ [lo, hi] with the lowest
// permutation ranks, as positions into the sorted order — a WoR "sample"
// of S_q that is identical on every repetition. ok is false when S ∩ q is
// empty.
func (st *Structure) Query(lo, hi float64, s int, dst []int) ([]int, bool) {
	a := sort.SearchFloat64s(st.values, lo)
	b := sort.Search(st.n, func(i int) bool { return st.values[i] > hi }) - 1
	if a > b {
		return dst, false
	}
	// Collect canonical segment-tree nodes covering [a, b].
	h := &nodeHeap{st: st}
	st.collect(1, 0, st.size-1, int32(a), int32(b), h)
	heap.Init(h)
	for s > 0 && h.Len() > 0 {
		it := heap.Pop(h).(segNode)
		// Emit the min position, then split its node around it so the
		// remaining positions stay reachable.
		dst = append(dst, int(it.minPos))
		s--
		st.pushChildrenExcluding(h, it, it.minPos)
	}
	return dst, true
}

// QueryWR adapts the structure to WR sampling via the O(s) WoR→WR
// conversion the paper cites as [19] (Section 2: "The above approach can
// be easily adapted for WR sampling... The dependence issue persists,
// nevertheless."). The conversion consumes randomness from r, so
// repeated calls return different *multisets* — but they are all
// resamplings of the same frozen WoR set, so cross-query dependence
// persists exactly as the paper notes.
func (st *Structure) QueryWR(r *rng.Source, lo, hi float64, s int, dst []int) ([]int, bool) {
	// The conversion may need up to s distinct values.
	worSet, ok := st.Query(lo, hi, s, nil)
	if !ok {
		return dst, false
	}
	// |S_q| for the collision probability.
	a := sort.SearchFloat64s(st.values, lo)
	b := sort.Search(st.n, func(i int) bool { return st.values[i] > hi }) - 1
	nq := b - a + 1
	wr, err := wor.WoRToWR(r, worSet, nq, s)
	if err != nil {
		// Only possible when |S_q| < s distinct values exist; fall back
		// to resampling the frozen set uniformly.
		for i := 0; i < s; i++ {
			dst = append(dst, worSet[r.Intn(len(worSet))])
		}
		return dst, true
	}
	return append(dst, wr...), true
}

// collect pushes canonical nodes of [a, b] onto the heap (unheapified).
func (st *Structure) collect(node int32, nlo, nhi int, a, b int32, h *nodeHeap) {
	if int(b) < nlo || nhi < int(a) || st.seg[node] < 0 {
		return
	}
	if int(a) <= nlo && nhi <= int(b) {
		h.items = append(h.items, segNode{node: node, minPos: st.seg[node], lo: int32(nlo), hi: int32(nhi)})
		return
	}
	mid := (nlo + nhi) / 2
	st.collect(2*node, nlo, mid, a, b, h)
	st.collect(2*node+1, mid+1, nhi, a, b, h)
}

// pushChildrenExcluding descends from it.node to the leaf holding pos,
// pushing at each step the sibling subtree (whose min is unaffected by
// the removal) onto the heap.
func (st *Structure) pushChildrenExcluding(h *nodeHeap, it segNode, pos int32) {
	node, nlo, nhi := it.node, int(it.lo), int(it.hi)
	for nlo < nhi {
		mid := (nlo + nhi) / 2
		left, right := 2*node, 2*node+1
		if int(pos) <= mid {
			if st.seg[right] >= 0 {
				heap.Push(h, segNode{node: right, minPos: st.seg[right], lo: int32(mid + 1), hi: int32(nhi)})
			}
			node, nhi = left, mid
		} else {
			if st.seg[left] >= 0 {
				heap.Push(h, segNode{node: left, minPos: st.seg[left], lo: int32(nlo), hi: int32(mid)})
			}
			node, nlo = right, mid+1
		}
	}
}
