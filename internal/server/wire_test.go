package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/samplepool"
	"repro/internal/shard"
)

// newWireServer builds a 4-shard engine over 0..n-1 with optional
// pooling and returns the server plus coordinator.
func newWireServer(t testing.TB, pool *samplepool.Config, opts Options) (*Server, *shard.Coordinator) {
	t.Helper()
	n := 1 << 12
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
	}
	coord, err := shard.New(context.Background(), "wire", values, nil, shard.Options{Shards: 4, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return New(coord, opts), coord
}

// TestSampleBinaryRoundTrip proves the negotiated binary /sample body
// decodes to exactly the samples the JSON path would carry: same seed,
// same request id stream, so the responses must agree element-wise.
func TestSampleBinaryRoundTrip(t *testing.T) {
	const target = "/sample?lo=100&hi=900&k=12"
	sJSON, _ := newWireServer(t, nil, Options{Seed: 11})
	sBin, _ := newWireServer(t, nil, Options{Seed: 11})

	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	sJSON.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("json status %d: %s", rec.Code, rec.Body.String())
	}
	var jr sampleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
		t.Fatal(err)
	}

	req = httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("Accept", BinContentType)
	rec = httptest.NewRecorder()
	sBin.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("binary status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != BinContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, BinContentType)
	}
	got, err := DecodeSampleBody(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jr.Samples) {
		t.Fatalf("binary carried %d samples, json %d", len(got), len(jr.Samples))
	}
	for i := range got {
		if got[i] != jr.Samples[i] {
			t.Fatalf("sample %d: binary %v != json %v", i, got[i], jr.Samples[i])
		}
	}
}

// TestBatchBinary decodes a mixed success/error batch.
func TestBatchBinary(t *testing.T) {
	s, _ := newWireServer(t, nil, Options{Seed: 3})
	body := `{"queries":[{"lo":100,"hi":900,"k":4},{"lo":-5,"hi":-1,"k":4},{"lo":0,"hi":4000,"k":0}]}`
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
	req.Header.Set("Accept", BinContentType)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	results, err := DecodeBatchBody(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("decoded %d results, want 3", len(results))
	}
	if results[0].Status != http.StatusOK || len(results[0].Samples) != 4 {
		t.Fatalf("result 0: status %d, %d samples", results[0].Status, len(results[0].Samples))
	}
	if results[1].Status != http.StatusUnprocessableEntity || results[1].Err == "" {
		t.Fatalf("result 1: status %d err %q, want 422 with message", results[1].Status, results[1].Err)
	}
	if results[2].Status != http.StatusOK || len(results[2].Samples) != 0 {
		t.Fatalf("result 2: status %d, %d samples, want empty OK", results[2].Status, len(results[2].Samples))
	}
}

// TestBinaryNegotiation: no Accept header (or an unrelated one) keeps
// the JSON encoding, and the wire counters attribute each response to
// its format.
func TestBinaryNegotiation(t *testing.T) {
	s, _ := newWireServer(t, nil, Options{Seed: 5})
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/sample?lo=0&hi=100&k=2", nil)
	req.Header.Set("Accept", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want JSON without negotiation", ct)
	}
	req = httptest.NewRequest(http.MethodGet, "/sample?lo=0&hi=100&k=2", nil)
	req.Header.Set("Accept", "application/json, "+BinContentType)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != BinContentType {
		t.Fatalf("Content-Type = %q, want binary when listed", ct)
	}
	if j, bin := s.wireJSON.Value(), s.wireBin.Value(); j != 1 || bin != 1 {
		t.Fatalf("wire counters json=%d binary=%d, want 1 and 1", j, bin)
	}
}

// TestDecodeRejectsMalformed exercises the decoder's bounds checks.
func TestDecodeRejectsMalformed(t *testing.T) {
	good := appendSampleFrame(nil, []float64{1, 2, 3})
	if _, err := DecodeSampleBody(good); err != nil {
		t.Fatalf("good frame rejected: %v", err)
	}
	for name, body := range map[string][]byte{
		"empty":       {},
		"shortHeader": good[:3],
		"truncated":   good[:len(good)-1],
		"overlength":  append(append([]byte(nil), good...), 0xff),
		"badKind":     {5, 0, 0, 0, 9, 0, 0, 0, 0},
	} {
		if _, err := DecodeSampleBody(body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := DecodeBatchBody([]byte{1}); err == nil {
		t.Error("truncated batch header decoded without error")
	}
}

// TestPoolAdmissionBypass: with pooling enabled and a window warmed,
// the coordinator reports the window hot and /sample responses served
// through the bypass stay correct. The coalescer path and the direct
// path are byte-identical per request id, so only correctness (not
// routing) is observable through the response — the probe itself is
// asserted directly.
func TestPoolAdmissionBypass(t *testing.T) {
	pool := &samplepool.Config{Capacity: 256, Seed: 17}
	s, coord := newWireServer(t, pool, Options{Seed: 17, Coalesce: 8})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 1e9)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	h := s.Handler()
	const lo, hi, k = 600, 680, 8 // inside shard 0 of 4 over 0..4095

	warmed := false
	for i := 0; i < 4000; i++ {
		req := httptest.NewRequest(http.MethodGet, "/sample?lo=600&hi=680&k=8", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		runtime.Gosched() // single-CPU CI: let the filler run
		if coord.PoolHot(lo, hi, k) {
			warmed = true
			break
		}
	}
	if !warmed {
		t.Fatal("pool never reported the hot window ready")
	}
	// Served through the bypass now that the window is hot.
	req := httptest.NewRequest(http.MethodGet, "/sample?lo=600&hi=680&k=8", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("hot status %d: %s", rec.Code, rec.Body.String())
	}
	var jr sampleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Samples) != k {
		t.Fatalf("hot response carried %d samples, want %d", len(jr.Samples), k)
	}
	for _, v := range jr.Samples {
		if v < lo || v > hi {
			t.Fatalf("pooled sample %v outside [%v, %v]", v, float64(lo), float64(hi))
		}
	}
	// Multi-shard ranges never probe hot.
	if coord.PoolHot(0, 4000, 8) {
		t.Fatal("multi-shard range reported pool-hot")
	}
}
