package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/shard"
)

// BenchmarkServerSample drives the full HTTP /sample path — admission,
// parameter parse, engine query, JSON encode — through the handler
// without sockets, so -benchmem isolates the serving stack's per-request
// allocations (the numbers BENCH_hotpath.json tracks PR over PR).

func benchServer(b *testing.B) *Server {
	return benchServerOpts(b, Options{Seed: 7})
}

func benchServerOpts(b *testing.B, opts Options) *Server {
	b.Helper()
	n := 1 << 14
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
	}
	coord, err := shard.New(context.Background(), "bench", values, nil, shard.Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	return New(coord, opts)
}

func BenchmarkServerSample(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/sample?lo=100&hi=9000&k=16", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerSampleParallel is the concurrent serving benchmark
// the coalescer targets: many goroutines drive /sample at once, so the
// coalesced variant amortises one engine pass (snapshot, scratch
// arena, structure traversal) across a whole batch where the
// uncoalesced variant pays it per request. qps = 1e9/ns_per_op.
func BenchmarkServerSampleParallel(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		coalesce int
	}{
		{"uncoalesced", 0},
		{"coalesced", 16},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := benchServerOpts(b, Options{Seed: 7, Coalesce: cfg.coalesce, MaxInFlight: 64, MaxQueue: 1 << 16})
			h := s.Handler()
			b.ReportAllocs()
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				req := httptest.NewRequest(http.MethodGet, "/sample?lo=100&hi=9000&k=16", nil)
				for pb.Next() {
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
					}
				}
			})
			b.StopTimer()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_ = s.Shutdown(ctx)
			cancel()
		})
	}
}

func BenchmarkServerBatch(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	body := `{"queries":[{"lo":0,"hi":8000,"k":8},{"lo":100,"hi":9000,"k":8},{"lo":50,"hi":4000,"k":8,"wor":true}]}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
