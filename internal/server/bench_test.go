package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/shard"
)

// BenchmarkServerSample drives the full HTTP /sample path — admission,
// parameter parse, engine query, JSON encode — through the handler
// without sockets, so -benchmem isolates the serving stack's per-request
// allocations (the numbers BENCH_hotpath.json tracks PR over PR).

func benchServer(b *testing.B) *Server {
	b.Helper()
	n := 1 << 14
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
	}
	coord, err := shard.New(context.Background(), "bench", values, nil, shard.Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	return New(coord, Options{Seed: 7})
}

func BenchmarkServerSample(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/sample?lo=100&hi=9000&k=16", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

func BenchmarkServerBatch(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	body := `{"queries":[{"lo":0,"hi":8000,"k":8},{"lo":100,"hi":9000,"k":8},{"lo":50,"hi":4000,"k":8,"wor":true}]}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
