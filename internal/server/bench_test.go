package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/samplepool"
	"repro/internal/shard"
)

// BenchmarkServerSample drives the full HTTP /sample path — admission,
// parameter parse, engine query, JSON encode — through the handler
// without sockets, so -benchmem isolates the serving stack's per-request
// allocations (the numbers BENCH_hotpath.json tracks PR over PR).

func benchServer(b *testing.B) *Server {
	return benchServerOpts(b, Options{Seed: 7})
}

func benchServerOpts(b *testing.B, opts Options) *Server {
	s, _ := benchServerPool(b, nil, opts)
	return s
}

func benchServerPool(b *testing.B, pool *samplepool.Config, opts Options) (*Server, *shard.Coordinator) {
	b.Helper()
	n := 1 << 14
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
	}
	coord, err := shard.New(context.Background(), "bench", values, nil, shard.Options{Shards: 4, Pool: pool})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(coord.Close)
	return New(coord, opts), coord
}

// warmPool drives the hot request until the coordinator reports the
// window fully pooled, yielding so the single filler goroutine gets CPU
// on single-core CI machines.
func warmPool(b *testing.B, h http.Handler, coord *shard.Coordinator, target string, lo, hi float64, k int) {
	b.Helper()
	for i := 0; i < 8192; i++ {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("warm status %d: %s", rec.Code, rec.Body.String())
		}
		runtime.Gosched()
		if coord.PoolHot(lo, hi, k) {
			return
		}
	}
	b.Fatal("pool never warmed")
}

func BenchmarkServerSample(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/sample?lo=100&hi=9000&k=16", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerSampleParallel is the concurrent serving benchmark
// the coalescer targets: many goroutines drive /sample at once, so the
// coalesced variant amortises one engine pass (snapshot, scratch
// arena, structure traversal) across a whole batch where the
// uncoalesced variant pays it per request. qps = 1e9/ns_per_op.
func BenchmarkServerSampleParallel(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		coalesce int
	}{
		{"uncoalesced", 0},
		{"coalesced", 16},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := benchServerOpts(b, Options{Seed: 7, Coalesce: cfg.coalesce, MaxInFlight: 64, MaxQueue: 1 << 16})
			h := s.Handler()
			b.ReportAllocs()
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				req := httptest.NewRequest(http.MethodGet, "/sample?lo=100&hi=9000&k=16", nil)
				for pb.Next() {
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
					}
				}
			})
			b.StopTimer()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_ = s.Shutdown(ctx)
			cancel()
		})
	}
}

// hot-range workload: one fixed window inside a single shard (shard 1
// of 4 over 0..16383 owns [4096, 8192)), k=16 — the regime the sample
// pool targets. The pooled variant yields every few requests so the
// background filler gets scheduled on single-core machines; the nopool
// variant yields identically so the comparison is symmetric.
const (
	benchHotTarget = "/sample?lo=5000&hi=5200&k=16"
	benchHotLo     = 5000.0
	benchHotHi     = 5200.0
	benchHotK      = 16
)

func BenchmarkServerSampleHot(b *testing.B) {
	for _, cfg := range []struct {
		name string
		pool *samplepool.Config
	}{
		{"nopool", nil},
		{"pool", &samplepool.Config{Capacity: 4096, Seed: 9, MinTakes: 2}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s, coord := benchServerPool(b, cfg.pool, Options{Seed: 7})
			h := s.Handler()
			if cfg.pool != nil {
				warmPool(b, h, coord, benchHotTarget, benchHotLo, benchHotHi, benchHotK)
			}
			req := httptest.NewRequest(http.MethodGet, benchHotTarget, nil)
			w := &benchWriter{hdr: make(http.Header)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.code = 0
				h.ServeHTTP(w, req)
				if w.code != http.StatusOK {
					b.Fatalf("status %d", w.code)
				}
				if i&7 == 7 {
					runtime.Gosched()
				}
			}
		})
	}
}

// benchWriter is a reusable no-op ResponseWriter: the binary allocs/op
// gate measures the serving stack, not the test recorder.
type benchWriter struct {
	hdr  http.Header
	code int
	n    int
}

func (w *benchWriter) Header() http.Header { return w.hdr }
func (w *benchWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
func (w *benchWriter) WriteHeader(c int) { w.code = c }

// BenchmarkServerSampleBinary is the allocs/op gate on the binary
// encode path (CI asserts ≤ 10): hot window, warm pool, negotiated
// binary framing, reusable writer.
func BenchmarkServerSampleBinary(b *testing.B) {
	s, coord := benchServerPool(b, &samplepool.Config{Capacity: 4096, Seed: 9, MinTakes: 2}, Options{Seed: 7})
	h := s.Handler()
	warmPool(b, h, coord, benchHotTarget, benchHotLo, benchHotHi, benchHotK)
	req := httptest.NewRequest(http.MethodGet, benchHotTarget, nil)
	req.Header.Set("Accept", BinContentType)
	w := &benchWriter{hdr: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.code = 0
		h.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
		if i&7 == 7 {
			runtime.Gosched()
		}
	}
}

// BenchmarkServerSampleUniform is the no-regression gate: every request
// asks a fresh range never seen before (as a genuinely uniform random
// workload over a large range space would), so the pool never hits and
// the pooled variant must stay within a few percent of nopool — the
// MinTakes gate keeps one-shot windows from queueing fills, so the
// pool's whole cost is registering (and LRU-evicting) cold entries.
func BenchmarkServerSampleUniform(b *testing.B) {
	for _, cfg := range []struct {
		name string
		pool *samplepool.Config
	}{
		{"nopool", nil},
		{"pool", &samplepool.Config{Capacity: 4096, Seed: 9, MinTakes: 2}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s, _ := benchServerPool(b, cfg.pool, Options{Seed: 7})
			h := s.Handler()
			reqs := make([]*http.Request, b.N)
			for i := range reqs {
				lo := (i*53 + i/8192) % (1 << 13)
				hi := lo + 512 + (i*131)%4096
				reqs[i] = httptest.NewRequest(http.MethodGet, fmt.Sprintf("/sample?lo=%d&hi=%d&k=16", lo, hi), nil)
			}
			w := &benchWriter{hdr: make(http.Header)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.code = 0
				h.ServeHTTP(w, reqs[i])
				if w.code != http.StatusOK {
					b.Fatalf("status %d", w.code)
				}
			}
		})
	}
}

func BenchmarkServerBatch(b *testing.B) {
	s := benchServer(b)
	h := s.Handler()
	body := `{"queries":[{"lo":0,"hi":8000,"k":8},{"lo":100,"hi":9000,"k":8},{"lo":50,"hi":4000,"k":8,"wor":true}]}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
