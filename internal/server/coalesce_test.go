package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/shard"
)

// coalescePair builds two servers over identically built engines with
// the same seed: one uncoalesced, one coalesced. The Nth request sent
// to either gets the same sequence number, hence the same X-Request-ID
// and the same rng stream — so matching responses by position also
// matches them by request id.
func coalescePair(t *testing.T, n, shards, maxBatch int) (plain, coal *Server, tsPlain, tsCoal *httptest.Server) {
	t.Helper()
	build := func() Engine {
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(i)
		}
		eng, err := shard.New(context.Background(), "coal", values, nil, shard.Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	const seed = 0xc0a1
	plain = New(build(), Options{Seed: seed})
	coal = New(build(), Options{Seed: seed, Coalesce: maxBatch})
	tsPlain = httptest.NewServer(plain.Handler())
	tsCoal = httptest.NewServer(coal.Handler())
	t.Cleanup(func() {
		tsPlain.Close()
		tsCoal.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = coal.Shutdown(ctx)
	})
	return plain, coal, tsPlain, tsCoal
}

func getSample(t *testing.T, url string) (id string, samples []float64, status int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id = resp.Header.Get("X-Request-ID")
	status = resp.StatusCode
	if status != http.StatusOK {
		return id, nil, status
	}
	var body sampleResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return id, body.Samples, status
}

// TestCoalescedMatchesUncoalescedSerial is the determinism contract
// over HTTP: the same request sequence against a coalesced and an
// uncoalesced server (same seed) yields byte-identical responses,
// matched by X-Request-ID. Serial requests coalesce into batches of
// one, proving the SampleMulti plumbing itself changes nothing.
func TestCoalescedMatchesUncoalescedSerial(t *testing.T) {
	_, _, tsPlain, tsCoal := coalescePair(t, 2000, 4, 16)
	queries := []string{
		"/sample?lo=100&hi=899&k=32",
		"/sample?lo=0&hi=1999&k=64&wor=true",
		"/sample?lo=500&hi=501&k=8",
		"/sample?lo=0&hi=1999&k=0",
		"/sample?lo=3000&hi=4000&k=4",        // empty range: 422 both ways
		"/sample?lo=1500&hi=1600&k=16&wor=1", // WoR inside a narrow range
	}
	for _, q := range queries {
		idP, sP, stP := getSample(t, tsPlain.URL+q)
		idC, sC, stC := getSample(t, tsCoal.URL+q)
		if idP != idC {
			t.Fatalf("%s: request ids diverge: %s vs %s", q, idP, idC)
		}
		if stP != stC {
			t.Fatalf("%s (id %s): status %d uncoalesced vs %d coalesced", q, idP, stP, stC)
		}
		if len(sP) != len(sC) {
			t.Fatalf("%s (id %s): %d samples uncoalesced vs %d coalesced", q, idP, len(sP), len(sC))
		}
		for i := range sP {
			if sP[i] != sC[i] {
				t.Fatalf("%s (id %s) sample %d: %v uncoalesced vs %v coalesced", q, idP, i, sP[i], sC[i])
			}
		}
	}
}

// TestCoalescedConcurrentMatchesScalar hammers the coalesced server
// with concurrent varied requests — so real multi-request batches form
// — and checks every response against a direct engine call on the
// stream its X-Request-ID pins down. A response is correct no matter
// which batch it landed in.
func TestCoalescedConcurrentMatchesScalar(t *testing.T) {
	const n, seed = 2000, uint64(0x5eed)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	eng, err := shard.New(context.Background(), "coal-conc", values, nil, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{Seed: seed, Coalesce: 8, Linger: 200 * time.Microsecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	const N = 64
	// X-Request-ID is a pure function of (seed, seq); precompute the
	// inverse map so each response reveals which stream answered it.
	seqByID := make(map[string]uint64, N)
	for seq := uint64(1); seq <= N; seq++ {
		seqByID[metrics.RequestID(seed, seq)] = seq
	}

	type result struct {
		id      string
		samples []float64
		lo, hi  float64
		k       int
		wor     bool
	}
	results := make([]result, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo, hi := float64(10*(i%8)), float64(1000+17*i)
			k, wor := 8+i%16, i%3 == 0
			id, samples, status := getSample(t, fmt.Sprintf("%s/sample?lo=%v&hi=%v&k=%d&wor=%v", ts.URL, lo, hi, k, wor))
			if status != http.StatusOK {
				t.Errorf("req %d: status %d", i, status)
				return
			}
			results[i] = result{id, samples, lo, hi, k, wor}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, res := range results {
		seq, ok := seqByID[res.id]
		if !ok {
			t.Fatalf("req %d: unknown request id %s", i, res.id)
		}
		r := srv.randFor(seq)
		var want []float64
		var err error
		if res.wor {
			want, err = eng.SampleWoRInto(context.Background(), r, res.lo, res.hi, res.k, nil)
		} else {
			want, err = eng.SampleInto(context.Background(), r, res.lo, res.hi, res.k, nil)
		}
		if err != nil {
			t.Fatalf("req %d (id %s): scalar replay failed: %v", i, res.id, err)
		}
		if len(want) != len(res.samples) {
			t.Fatalf("req %d (id %s): %d samples, scalar %d", i, res.id, len(res.samples), len(want))
		}
		for j := range want {
			if res.samples[j] != want[j] {
				t.Fatalf("req %d (id %s) sample %d: coalesced %v != scalar %v", i, res.id, j, res.samples[j], want[j])
			}
		}
	}

	// Every request went through the coalescer, and the metrics saw them.
	if got := srv.coalesced.Value(); got != N {
		t.Fatalf("coalesced counter %d, want %d", got, N)
	}
	if got := srv.coalBatchSize.Count(); got < 1 || srv.coalBatchSize.Sum() != N {
		t.Fatalf("batch-size histogram: %d batches summing %v, want sum %d", got, srv.coalBatchSize.Sum(), N)
	}
	if srv.coalLinger.Count() != srv.coalBatchSize.Count() {
		t.Fatalf("linger histogram count %d != batch count %d", srv.coalLinger.Count(), srv.coalBatchSize.Count())
	}
}

// TestCoalescedUniformity extends the Uniformity monitor test to the
// coalesced path: concurrent batched requests over varied ranges must
// stay chi-squared-consistent with the uniform contract, and identical
// concurrent requests must return distinct sample streams
// (cross-request independence inside a batch).
func TestCoalescedUniformity(t *testing.T) {
	const n = 1024
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	eng, err := shard.New(context.Background(), "coal-uni", values, nil, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{Seed: 99, Coalesce: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	// An independent monitor folds every returned sample (stride 1); the
	// service's own monitor watches the same stream server-side.
	u := metrics.NewUniformity(values, nil, metrics.UniformityOptions{Stride: 1})
	ranges := []struct{ lo, hi float64 }{
		{0, 1023}, {0, 511}, {256, 768}, {100, 149}, {900, 1023},
	}
	const workers, rounds, k = 8, 25, 16
	var mu sync.Mutex
	byQuery := make(map[string][]string) // query -> sample fingerprints
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				rg := ranges[(w+round)%len(ranges)]
				q := fmt.Sprintf("lo=%v&hi=%v&k=%d", rg.lo, rg.hi, k)
				_, samples, status := getSample(t, ts.URL+"/sample?"+q)
				if status != http.StatusOK {
					t.Errorf("worker %d round %d: status %d", w, round, status)
					return
				}
				mu.Lock()
				u.Fold(rg.lo, rg.hi, samples, false)
				byQuery[q] = append(byQuery[q], fmt.Sprint(samples))
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if q := u.Quality(); q > 1 {
		stat, crit, folded := u.Snapshot()
		t.Fatalf("coalesced path failed uniformity: stat %.1f crit %.1f after %d folds", stat, crit, folded)
	}
	// Independence: identical queries (many answered inside the same
	// batch) must never share a stream.
	for q, prints := range byQuery {
		seen := make(map[string]bool, len(prints))
		for _, p := range prints {
			if seen[p] {
				t.Fatalf("query %s: two requests returned identical samples — streams shared", q)
			}
			seen[p] = true
		}
	}
}

// TestCoalesceMetricsExposed asserts satellite (b): the coalescer
// series are present on /metrics even before traffic, and carry the
// traffic after it.
func TestCoalesceMetricsExposed(t *testing.T) {
	_, _, _, tsCoal := coalescePair(t, 500, 2, 4)
	scrape := func() string {
		resp, err := http.Get(tsCoal.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	body := scrape()
	for _, series := range []string{
		"iqs_coalesce_batch_size_count",
		"iqs_coalesce_linger_seconds_count",
		"iqs_coalesced_requests_total",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("series %s missing from /metrics before traffic", series)
		}
	}
	for i := 0; i < 5; i++ {
		if _, _, status := getSample(t, tsCoal.URL+"/sample?lo=0&hi=499&k=8"); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	body = scrape()
	if !strings.Contains(body, "iqs_coalesced_requests_total 5") {
		t.Fatalf("coalesced_requests_total did not reach 5:\n%s", body)
	}
}

// TestCoalescerShutdownReleasesWaiters proves the drain path: requests
// in flight when Shutdown fires still get answers, and the dispatcher
// goroutine exits.
func TestCoalescerShutdownReleasesWaiters(t *testing.T) {
	_, coalSrv, _, tsCoal := coalescePair(t, 500, 2, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// 200 may not arrive (the server may already be draining);
			// the requirement is only that every request completes.
			resp, err := http.Get(tsCoal.URL + "/sample?lo=0&hi=499&k=16")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := coalSrv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case <-coalSrv.coal.stopped:
	default:
		t.Fatal("dispatcher still running after Shutdown")
	}
	// Requests after shutdown are refused, not deadlocked.
	if _, _, status := getSample(t, tsCoal.URL+"/sample?lo=0&hi=499&k=4"); status == http.StatusOK {
		t.Fatal("request served after shutdown")
	}
}
