// The /estimate endpoint: approximate COUNT/SUM/AVG/DISTINCT over a
// value range, answered from the engine's sampling and sketch machinery
// instead of a scan. Requests flow through the same admission control
// and per-request deadlines as /sample; responses carry the estimate,
// its confidence interval, and — for COUNT, where the engine scores
// itself against the exact answer — the measured q-error next to the
// Chernoff bound it is monitored against. The server feeds every scored
// q-error into the iqs_estimate_qerror histogram and counts bound
// violations, so the paper's accuracy guarantee is a dashboard fact
// rather than a code comment.
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/service"
)

// estimator is the optional approximate-analytics extension of Engine;
// *shard.Coordinator implements it. Engines without it answer 501 on
// /estimate.
type estimator interface {
	Estimate(ctx context.Context, r *core.Rand, req service.EstimateRequest) (estimate.Result, error)
}

// estimateParams are the /estimate inputs, accepted as query parameters
// (GET) or a JSON body (POST). Lo/Hi are ignored for op=distinct.
type estimateParams struct {
	Op   string  `json:"op"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	K    int     `json:"k"`
	Conf float64 `json:"conf"`
}

// estimateResponse is the /estimate payload.
type estimateResponse struct {
	Op         string  `json:"op"`
	Estimate   float64 `json:"estimate"`
	CILo       float64 `json:"ci_lo"`
	CIHi       float64 `json:"ci_hi"`
	Confidence float64 `json:"confidence"`
	K          int     `json:"k"`
	Exact      bool    `json:"exact"`
	// QError / QBound are populated for op=count (0 otherwise); +Inf
	// encodes as the JSON string "inf" via the float fields' own
	// formatting being invalid JSON, so they are clamped to a sentinel.
	QError    float64 `json:"q_error"`
	QBound    float64 `json:"q_bound"`
	ElapsedUS int64   `json:"elapsed_us"`
}

// jsonSafe clamps non-finite values (an uncertifiable +Inf bound) to 0,
// which the response documents as "not available" — encoding/json
// rejects infinities outright.
func jsonSafe(f float64) float64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	return f
}

func parseEstimateParams(r *http.Request) (estimateParams, error) {
	if r.Method == http.MethodPost {
		var pp estimateParams
		if err := json.NewDecoder(r.Body).Decode(&pp); err != nil {
			return pp, fmt.Errorf("bad JSON body: %w", err)
		}
		return pp, nil
	}
	var p estimateParams
	var err error
	p.Op = queryValue(r, "op")
	if lo := queryValue(r, "lo"); lo != "" {
		if p.Lo, err = strconv.ParseFloat(lo, 64); err != nil {
			return p, fmt.Errorf("bad lo: %q", lo)
		}
	}
	if hi := queryValue(r, "hi"); hi != "" {
		if p.Hi, err = strconv.ParseFloat(hi, 64); err != nil {
			return p, fmt.Errorf("bad hi: %q", hi)
		}
	}
	if k := queryValue(r, "k"); k != "" {
		if p.K, err = strconv.Atoi(k); err != nil {
			return p, fmt.Errorf("bad k: %q", k)
		}
	}
	if conf := queryValue(r, "conf"); conf != "" {
		if p.Conf, err = strconv.ParseFloat(conf, 64); err != nil {
			return p, fmt.Errorf("bad conf: %q", conf)
		}
	}
	return p, nil
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
		return
	}
	if s.est == nil {
		s.writeError(w, http.StatusNotImplemented, errors.New("engine has no estimator"))
		return
	}
	reqStart := time.Now()
	rctx, seq, tr := s.beginRequest(w, r)
	defer func() {
		s.reqEstimate.Observe(time.Since(reqStart).Seconds())
		s.finishTrace(tr, "/estimate", time.Since(reqStart))
	}()
	endAdmit := tr.StartSpan("admit")
	release, status := s.admit(rctx)
	s.stage[stageAdmit].Observe(time.Since(reqStart).Seconds())
	endAdmit()
	if status != 0 {
		s.shed(w, status)
		return
	}
	defer release()
	p, err := parseEstimateParams(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	op, err := estimate.ParseOp(p.Op)
	if err != nil {
		s.estFailed.Add(1)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if p.K < 0 || p.K > s.opts.MaxK {
		s.estFailed.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("k = %d out of [0, %d]", p.K, s.opts.MaxK))
		return
	}
	if p.Conf < 0 || p.Conf >= 1 {
		s.estFailed.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("conf = %v out of [0, 1)", p.Conf))
		return
	}
	s.estReq[op].Add(1)
	ctx, cancel := context.WithTimeout(rctx, s.opts.Timeout)
	defer cancel()
	start := time.Now()
	endEngine := tr.StartSpan("engine")
	res, err := s.est.Estimate(ctx, s.randFor(seq), service.EstimateRequest{
		Op: op, Lo: p.Lo, Hi: p.Hi, K: p.K, Conf: p.Conf,
	})
	endEngine()
	if err != nil {
		s.estFailed.Add(1)
		s.writeError(w, statusOf(err), err)
		return
	}
	s.served.Add(1)
	if q := res.QError; q >= 1 && !math.IsInf(q, 1) {
		s.estQError.Observe(q)
		if !math.IsInf(res.QBound, 1) && q > res.QBound {
			s.estQBoundExceeded.Add(1)
		}
	}
	if wantBinary(r) {
		s.wireBin.Add(1)
		bb := binPool.Get().(*[]byte)
		body := appendEstimateFrame((*bb)[:0], res)
		s.writeBin(w, http.StatusOK, body)
		*bb = body[:0]
		binPool.Put(bb)
		return
	}
	s.wireJSON.Add(1)
	writeJSON(w, http.StatusOK, estimateResponse{
		Op:         res.Op.String(),
		Estimate:   jsonSafe(res.Estimate),
		CILo:       jsonSafe(res.CILo),
		CIHi:       jsonSafe(res.CIHi),
		Confidence: res.Confidence,
		K:          res.K,
		Exact:      res.Exact,
		QError:     jsonSafe(res.QError),
		QBound:     jsonSafe(res.QBound),
		ElapsedUS:  time.Since(start).Microseconds(),
	})
}

// appendEstimateFrame appends one kind-2 frame:
//
//	[u8 2][u8 op][u8 exact][u32 k]
//	[f64 estimate][f64 ciLo][f64 ciHi][f64 conf][f64 qError][f64 qBound]
//
// Non-finite q fields travel as their IEEE bits — binary clients get
// the honest +Inf, unlike the JSON clamping.
func appendEstimateFrame(b []byte, res estimate.Result) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(1+1+1+4+6*8))
	b = append(b, binKindEstimate, uint8(res.Op), boolByte(res.Exact))
	b = binary.LittleEndian.AppendUint32(b, uint32(res.K))
	for _, f := range [...]float64{res.Estimate, res.CILo, res.CIHi, res.Confidence, res.QError, res.QBound} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

func boolByte(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

// DecodeEstimateBody decodes a binary /estimate response body (one
// kind-2 frame). The load generator and tests use it.
func DecodeEstimateBody(b []byte) (estimate.Result, error) {
	var res estimate.Result
	if len(b) < 4 {
		return res, fmt.Errorf("iqs-bin: truncated estimate header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) != n || n != 1+1+1+4+6*8 {
		return res, fmt.Errorf("iqs-bin: estimate frame length %d, body %d", n, len(b))
	}
	if b[0] != binKindEstimate {
		return res, fmt.Errorf("iqs-bin: frame kind %d, want %d", b[0], binKindEstimate)
	}
	res.Op = estimate.Op(b[1])
	res.Exact = b[2] == 1
	res.K = int(binary.LittleEndian.Uint32(b[3:]))
	fields := [...]*float64{&res.Estimate, &res.CILo, &res.CIHi, &res.Confidence, &res.QError, &res.QBound}
	for i, f := range fields {
		*f = math.Float64frombits(binary.LittleEndian.Uint64(b[7+8*i:]))
	}
	return res, nil
}
