package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/estimate"
)

func TestEstimateEndpointJSON(t *testing.T) {
	_, ts := newTestServer(t, 10000, 4, Options{})

	// COUNT over [0, 2499]: exact 2500 of 10000.
	m := getJSON(t, ts.URL+"/estimate?op=count&lo=0&hi=2499&k=2000", http.StatusOK)
	if m["op"] != "count" {
		t.Fatalf("op = %v", m["op"])
	}
	est := m["estimate"].(float64)
	if rel := math.Abs(est-2500) / 2500; rel > 0.15 {
		t.Fatalf("count estimate %v off by %.3f relative", est, rel)
	}
	if lo, hi := m["ci_lo"].(float64), m["ci_hi"].(float64); lo > 2500 || 2500 > hi {
		t.Fatalf("interval [%v, %v] misses 2500", lo, hi)
	}
	if q := m["q_error"].(float64); q < 1 {
		t.Fatalf("q_error %v not scored", q)
	}
	if qb := m["q_bound"].(float64); qb <= 1 {
		t.Fatalf("q_bound %v not populated", qb)
	}
	if m["confidence"].(float64) != 0.95 {
		t.Fatalf("default confidence: %v", m["confidence"])
	}

	// SUM via POST body.
	body := `{"op":"sum","lo":100,"hi":199,"k":500}`
	resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sm map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&sm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST sum: %d %v", resp.StatusCode, sm)
	}
	if rel := math.Abs(sm["estimate"].(float64)-14950) / 14950; rel > 0.10 {
		t.Fatalf("sum estimate %v off by %.3f relative", sm["estimate"], rel)
	}

	// DISTINCT ignores the range and needs no k.
	m = getJSON(t, ts.URL+"/estimate?op=distinct", http.StatusOK)
	if rel := math.Abs(m["estimate"].(float64)-10000) / 10000; rel > 0.20 {
		t.Fatalf("distinct estimate %v off by %.3f relative", m["estimate"], rel)
	}

	// Errors keep the typed vocabulary.
	getJSON(t, ts.URL+"/estimate?op=median&lo=0&hi=1", http.StatusBadRequest)
	getJSON(t, ts.URL+"/estimate?op=count&lo=5&hi=1", http.StatusBadRequest)
	getJSON(t, ts.URL+"/estimate?op=avg&lo=1e9&hi=2e9", http.StatusUnprocessableEntity)
	getJSON(t, ts.URL+"/estimate?op=count&lo=0&hi=1&conf=1.5", http.StatusBadRequest)
}

func TestEstimateEndpointBinary(t *testing.T) {
	_, ts := newTestServer(t, 10000, 2, Options{})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/estimate?op=count&lo=0&hi=4999&k=1000", nil)
	req.Header.Set("Accept", BinContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BinContentType {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeEstimateBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != estimate.OpCount || res.K != 1000 {
		t.Fatalf("decoded metadata: %+v", res)
	}
	if rel := math.Abs(res.Estimate-5000) / 5000; rel > 0.15 {
		t.Fatalf("decoded estimate %v off by %.3f relative", res.Estimate, rel)
	}
	if res.CILo > 5000 || 5000 > res.CIHi {
		t.Fatalf("decoded interval [%v, %v] misses 5000", res.CILo, res.CIHi)
	}
	if res.QError < 1 || res.QBound <= 1 {
		t.Fatalf("decoded q fields: %v / %v", res.QError, res.QBound)
	}
}

func TestEstimateFrameRoundTrip(t *testing.T) {
	in := estimate.Result{
		Op: estimate.OpCount, Estimate: 1234.5, CILo: 1100.25, CIHi: 1360.75,
		Confidence: 0.99, K: 512, QError: 1.05, QBound: math.Inf(1),
	}
	out, err := DecodeEstimateBody(appendEstimateFrame(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
	if _, err := DecodeEstimateBody([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated body decoded")
	}
}

func TestEstimateMetricsExported(t *testing.T) {
	srv, ts := newTestServer(t, 5000, 2, Options{})
	for i := 0; i < 20; i++ {
		getJSON(t, ts.URL+"/estimate?op=count&lo=0&hi=999&k=500", http.StatusOK)
	}
	getJSON(t, ts.URL+"/estimate?op=distinct", http.StatusOK)
	getJSON(t, ts.URL+"/estimate?op=nope", http.StatusBadRequest)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		`iqs_estimate_requests_total{op="count"} 20`,
		`iqs_estimate_requests_total{op="distinct"} 1`,
		`iqs_estimate_failed_total 1`,
		`iqs_estimate_qerror_bucket`,
		`iqs_estimate_qerror_bound_exceeded_total`,
		`iqs_server_request_seconds_count{path="/estimate"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every scored COUNT feeds the q-error histogram.
	if !strings.Contains(text, `iqs_estimate_qerror_count 20`) {
		t.Errorf("q-error histogram did not observe all 20 scored counts:\n%s",
			grepLines(text, "iqs_estimate_qerror"))
	}
}

func grepLines(text, substr string) string {
	var b bytes.Buffer
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestEstimateWithoutEstimatorAnswers501(t *testing.T) {
	// A bare Engine stub without the estimator extension.
	eng := &laggedEngine{lag: 0}
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	getJSON(t, ts.URL+"/estimate?op=count&lo=0&hi=1", http.StatusNotImplemented)
}
