package server

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/em"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/shard"
)

// newMetricsServer builds a full stack — faulty EM mirrors optional —
// sharing one registry between the engine and the front end, the way
// cmd/iqsserve wires it.
func newMetricsServer(t *testing.T, n, shards int, faultProb float64, opts Options) (*Server, *httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	sopts := shard.Options{Shards: shards, Metrics: reg}
	if faultProb > 0 {
		devs := make([]*em.Device, shards)
		for i := range devs {
			dev, err := em.NewDevice(64, 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			dev.SetFaultPolicy(&em.FaultPolicy{ReadFailProb: faultProb, WriteFailProb: faultProb, Seed: uint64(i + 1)})
			devs[i] = dev
		}
		sopts.Service = func(i int) service.Options {
			return service.Options{
				Metrics: reg,
				Mirror:  devs[i],
				Retry:   em.RetryPolicy{MaxAttempts: 8, BaseDelay: 20 * time.Microsecond, MaxDelay: 200 * time.Microsecond},
			}
		}
	}
	eng, err := shard.New(context.Background(), "m", values, nil, sopts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Metrics = reg
	srv := New(eng, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

func scrape(t *testing.T, url string) *metrics.Exposition {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	exp, err := metrics.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return exp
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newMetricsServer(t, 2048, 4, 0, Options{})
	for i := 0; i < 20; i++ {
		url := ts.URL + "/sample?lo=10&hi=2000&k=16"
		if i%4 == 3 {
			url += "&wor=true"
		}
		getJSON(t, url, http.StatusOK)
	}
	resp, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"queries":[{"lo":0,"hi":2047,"k":8},{"lo":5,"hi":50,"k":4,"wor":true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	getJSON(t, ts.URL+"/sample?lo=abc&hi=1&k=1", http.StatusBadRequest)

	exp := scrape(t, ts.URL)
	if v, ok := exp.Get("iqs_server_served_total"); !ok || v != 21 {
		t.Fatalf("served_total = %v, %v (want 21)", v, ok)
	}
	if v, ok := exp.Get("iqs_server_failed_total"); !ok || v != 1 {
		t.Fatalf("failed_total = %v, %v", v, ok)
	}
	// Every /sample request — including the failed decode — lands in the
	// end-to-end latency histogram.
	if v, ok := exp.Get("iqs_server_request_seconds_count", `path="/sample"`); !ok || v != 21 {
		t.Fatalf("request_seconds_count{/sample} = %v, %v", v, ok)
	}
	if v, ok := exp.Get("iqs_server_request_seconds_count", `path="/batch"`); !ok || v != 1 {
		t.Fatalf("request_seconds_count{/batch} = %v, %v", v, ok)
	}
	for _, fam := range []string{"iqs_server_request_seconds", "iqs_server_stage_seconds",
		"iqs_service_sample_seconds", "iqs_shard_fanout_seconds", "iqs_shard_merge_seconds"} {
		if exp.Types[fam] != "histogram" {
			t.Errorf("%s type = %q, want histogram", fam, exp.Types[fam])
		}
	}
	// Engine-layer series share the registry: per-shard service traffic,
	// fan-out timings, and the quality gauges are all present.
	if v := exp.SumAcross("iqs_service_requests_total"); v <= 0 {
		t.Fatalf("service requests not exported (sum %v)", v)
	}
	if v := exp.SumAcross("iqs_shard_fanout_seconds_count"); v != 22 {
		t.Fatalf("fanout histogram count %v, want 22", v)
	}
	if _, ok := exp.Get("iqs_sample_quality_ratio", `shard="0"`); !ok {
		t.Fatal("quality gauge for shard 0 missing")
	}
	if v, ok := exp.Get("iqs_server_in_flight"); !ok || v != 0 {
		t.Fatalf("in_flight gauge = %v, %v", v, ok)
	}
	// Stage histograms cover admit/decode/encode.
	for _, stage := range []string{"admit", "decode", "encode"} {
		if v, ok := exp.Get("iqs_server_stage_seconds_count", `stage="`+stage+`"`); !ok || v <= 0 {
			t.Errorf("stage %q count = %v, %v", stage, v, ok)
		}
	}
}

func TestRequestIDHeader(t *testing.T) {
	_, ts, _ := newMetricsServer(t, 256, 2, 0, Options{})
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/sample?lo=0&hi=255&k=4")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if len(id) != 16 {
			t.Fatalf("X-Request-ID %q, want 16 hex chars", id)
		}
		if ids[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		ids[id] = true
	}
	// Error responses carry the id too.
	resp, err := http.Get(ts.URL + "/sample?lo=bad&hi=1&k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("error response without X-Request-ID")
	}
}

func TestTraceLogging(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(syncWriter{&mu, &buf}, nil))
	_, ts, _ := newMetricsServer(t, 512, 2, 0, Options{TraceSampleRate: 1, Logger: logger})
	resp, err := http.Get(ts.URL + "/sample?lo=0&hi=511&k=8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{`"msg":"trace"`, `"request_id":"` + id + `"`, `"path":"/sample"`,
		"admit", "decode", "engine", "encode", "service.sample", "shard.fanout"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace line missing %q:\n%s", want, out)
		}
	}

	// Rate 0: no trace lines, but ids still issued.
	var buf2 bytes.Buffer
	logger2 := slog.New(slog.NewJSONHandler(syncWriter{&mu, &buf2}, nil))
	_, ts2, _ := newMetricsServer(t, 512, 2, 0, Options{Logger: logger2})
	resp2, err := http.Get(ts2.URL + "/sample?lo=0&hi=511&k=8")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Fatal("no request id with tracing off")
	}
	mu.Lock()
	out2 := buf2.String()
	mu.Unlock()
	if strings.Contains(out2, `"msg":"trace"`) {
		t.Fatalf("trace logged with rate 0: %s", out2)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestRetryAfterDerived pins the shed-backoff law: deeper queues quote
// longer waits, clamped to [1, 60] seconds.
func TestRetryAfterDerived(t *testing.T) {
	srv, _, _ := newMetricsServer(t, 64, 1, 0, Options{MaxInFlight: 4, Timeout: 2 * time.Second})
	cases := []struct {
		queued int64
		want   int64
	}{
		{0, 1},
		{2, 1},
		{4, 2},
		{12, 6},
		{100000, 60},
	}
	for _, c := range cases {
		srv.queued.Store(c.queued)
		if got := srv.retryAfterSecs(); got != c.want {
			t.Errorf("queued %d: Retry-After %d, want %d", c.queued, got, c.want)
		}
	}
	srv.queued.Store(0)
	// The header value must always parse as a positive integer.
	rec := httptest.NewRecorder()
	srv.shed(rec, http.StatusTooManyRequests)
	secs, err := strconv.ParseInt(rec.Header().Get("Retry-After"), 10, 64)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q not a positive integer", rec.Header().Get("Retry-After"))
	}
}

// TestQueryEscapedFallback exercises the allocating fallback of the
// RawQuery fast path: escaped parameters must still parse, matching
// url.Values semantics.
func TestQueryEscapedFallback(t *testing.T) {
	_, ts, _ := newMetricsServer(t, 2048, 2, 0, Options{})
	// lo=1e%2B2 unescapes to 1e+2 = 100.
	m := getJSON(t, ts.URL+"/sample?lo=1e%2B2&hi=900&k=8", http.StatusOK)
	samples := m["samples"].([]any)
	if len(samples) != 8 {
		t.Fatalf("escaped query returned %d samples", len(samples))
	}
	for _, s := range samples {
		if v := s.(float64); v < 100 || v > 900 {
			t.Fatalf("sample %v outside unescaped range [100, 900]", v)
		}
	}
	// First occurrence wins on duplicates, like url.Values.Get.
	m = getJSON(t, ts.URL+"/sample?lo=0&lo=2000&hi=50&k=4", http.StatusOK)
	if len(m["samples"].([]any)) != 4 {
		t.Fatal("duplicate-key query failed")
	}
}

// TestMetricsScrapeRace is the concurrency acceptance test: clients
// hammer /sample and /batch (with 5% EM faults live) while scrapers
// pull /metrics and /stats, all under -race in CI. Asserts counter
// monotonicity across scrapes and, at quiescence, exact agreement
// between the latency histogram count and the requests issued.
func TestMetricsScrapeRace(t *testing.T) {
	_, ts, _ := newMetricsServer(t, 4096, 4, 0.05, Options{MaxInFlight: 32, Timeout: 10 * time.Second})
	const (
		clients   = 4
		perClient = 50
	)
	var sampleReqs, batchReqs, oks atomic64
	stop := make(chan struct{})
	var scrapeErr error
	var scrapeMu sync.Mutex

	var wg, scrapeWg sync.WaitGroup
	// Scrapers: parse every exposition and require served_total to be
	// non-decreasing while traffic is in flight.
	for s := 0; s < 2; s++ {
		scrapeWg.Add(1)
		go func() {
			defer scrapeWg.Done()
			last := -1.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					continue
				}
				exp, perr := metrics.ParseExposition(resp.Body)
				resp.Body.Close()
				if perr != nil {
					scrapeMu.Lock()
					scrapeErr = perr
					scrapeMu.Unlock()
					return
				}
				v, _ := exp.Get("iqs_server_served_total")
				if v < last {
					scrapeMu.Lock()
					scrapeErr = fmt.Errorf("served_total went backwards: %v -> %v", last, v)
					scrapeMu.Unlock()
					return
				}
				last = v
				if resp, err := http.Get(ts.URL + "/stats"); err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if i%10 == 9 {
					batchReqs.add(1)
					resp, err := http.Post(ts.URL+"/batch", "application/json",
						strings.NewReader(`{"queries":[{"lo":0,"hi":4095,"k":8}]}`))
					if err == nil {
						if resp.StatusCode == http.StatusOK {
							oks.add(1)
						}
						resp.Body.Close()
					}
					continue
				}
				sampleReqs.add(1)
				url := fmt.Sprintf("%s/sample?lo=%d&hi=%d&k=8", ts.URL, (g*97+i)%2000, 2100+(g*31+i)%1900)
				if i%5 == 4 {
					url += "&wor=true"
				}
				resp, err := http.Get(url)
				if err == nil {
					if resp.StatusCode == http.StatusOK {
						oks.add(1)
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapeWg.Wait()
	scrapeMu.Lock()
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}
	scrapeMu.Unlock()

	exp := scrape(t, ts.URL)
	if v, _ := exp.Get("iqs_server_request_seconds_count", `path="/sample"`); v != float64(sampleReqs.load()) {
		t.Fatalf("sample histogram count %v, want %d issued requests", v, sampleReqs.load())
	}
	if v, _ := exp.Get("iqs_server_request_seconds_count", `path="/batch"`); v != float64(batchReqs.load()) {
		t.Fatalf("batch histogram count %v, want %d issued requests", v, batchReqs.load())
	}
	if v, _ := exp.Get("iqs_server_served_total"); v != float64(oks.load()) {
		t.Fatalf("served_total %v, want %d observed 200s", v, oks.load())
	}
	// Under 5%% faults the mirrors saw retries or faults; the EM series
	// must be live on the same endpoint.
	if v := exp.SumAcross("iqs_em_faults_total"); v <= 0 {
		t.Fatalf("no EM faults exported under 5%% fault policy (sum %v)", v)
	}
}

// atomic64 is a tiny wrapper to keep the test free of sync/atomic
// import clutter at call sites.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
