// Binary wire format for the query endpoints.
//
// JSON encode dominates the /sample hot path once the engine itself is
// fast (float formatting plus per-element commas cost more than the
// draw). Clients that opt in via content negotiation — an Accept header
// containing "application/x-iqs-bin" — get responses in a compact
// length-prefixed binary framing instead; requests without the header
// keep getting JSON, so the format is purely additive.
//
// All integers are little-endian; floats are IEEE-754 bits via
// math.Float64bits. One frame is
//
//	[u32 payloadLen][payload]
//
// with payloadLen the byte length of payload. Payloads start with a
// one-byte kind tag:
//
//	kind 0 (samples): [u8 0][u32 count][count × f64]
//	kind 1 (error):   [u8 1][u16 httpStatus][u32 msgLen][msg bytes]
//
// A /sample response body is exactly one frame (kind 0 on success).
// A /batch response body is [u32 nResults] followed by nResults frames,
// one per query in order, each kind 0 or kind 1. Request-level errors
// (bad parameters, shed load) are answered in JSON with a non-200
// status regardless of Accept: they are exceptional, and keeping one
// error shape avoids a second error vocabulary on the wire.
//
// Encoding appends into pooled buffers (binPool) so the steady-state
// binary path allocates nothing for the body.
package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// BinContentType is the negotiated media type of the binary framing.
const BinContentType = "application/x-iqs-bin"

// Frame kind tags.
const (
	binKindSamples   = 0
	binKindError     = 1
	binKindEstimate  = 2 // /estimate responses; layout in estimate.go
	binKindSubsample = 3 // /subsample requests (cluster router → node)
)

// binPool recycles binary response bodies.
var binPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// wantBinary reports whether the client negotiated the binary framing.
// A substring scan is deliberate: the header is either absent, exactly
// the media type, or a list containing it — full Accept parsing (q
// values, wildcards) buys nothing on this internal protocol.
func wantBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), BinContentType)
}

// appendSampleFrame appends one kind-0 frame holding samples.
func appendSampleFrame(b []byte, samples []float64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(1+4+8*len(samples)))
	b = append(b, binKindSamples)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(samples)))
	for _, v := range samples {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// appendErrorFrame appends one kind-1 frame holding a per-query error.
func appendErrorFrame(b []byte, status int, msg string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(1+2+4+len(msg)))
	b = append(b, binKindError)
	b = binary.LittleEndian.AppendUint16(b, uint16(status))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(msg)))
	b = append(b, msg...)
	return b
}

// Shared header values: Header().Set allocates a fresh []string per
// call, so the hot paths assign these canonical-key entries directly.
var (
	binCTVal  = []string{BinContentType}
	jsonCTVal = []string{"application/json"}
)

// writeBin writes a fully-encoded binary body. Content-Length is left
// to net/http: bodies that fit its write buffer get the header computed
// for free, larger ones are correctly chunked — setting it here would
// cost a string and a header slice per response.
func (s *Server) writeBin(w http.ResponseWriter, status int, body []byte) {
	w.Header()["Content-Type"] = binCTVal
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeRawJSON writes a pre-encoded JSON body (hand-rolled /sample
// fast path; everything else goes through writeJSON's pooled encoder).
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header()["Content-Type"] = jsonCTVal
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// appendSampleJSON hand-encodes a sampleResponse: the stdlib encoder's
// reflection walk costs several times the pooled draw itself on a
// 16-sample body. Output is byte-identical to encoding/json for this
// struct (same shortest-round-trip float formatting, same trailing
// newline as json.Encoder) for the finite values the engine emits.
func appendSampleJSON(b []byte, samples []float64, elapsedUS int64) []byte {
	b = append(b, `{"samples":[`...)
	for i, v := range samples {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONFloat(b, v)
	}
	b = append(b, `],"count":`...)
	b = strconv.AppendInt(b, int64(len(samples)), 10)
	b = append(b, `,"elapsed_us":`...)
	b = strconv.AppendInt(b, elapsedUS, 10)
	return append(b, '}', '\n')
}

// appendJSONFloat matches encoding/json's float64 rule: 'f' unless the
// magnitude forces 'e', shortest form, exponent leading zero trimmed.
func appendJSONFloat(b []byte, f float64) []byte {
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// BinResult is one decoded /batch entry: Status 200 carries Samples,
// anything else carries Err.
type BinResult struct {
	Samples []float64
	Status  int
	Err     string
}

// decodeFrame decodes one frame at the head of b, returning the rest.
func decodeFrame(b []byte) (res BinResult, rest []byte, err error) {
	if len(b) < 4 {
		return res, nil, fmt.Errorf("iqs-bin: truncated frame header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n || n < 1 {
		return res, nil, fmt.Errorf("iqs-bin: frame length %d exceeds body", n)
	}
	payload, rest := b[:n], b[n:]
	switch payload[0] {
	case binKindSamples:
		if len(payload) < 5 {
			return res, nil, fmt.Errorf("iqs-bin: truncated samples frame")
		}
		count := binary.LittleEndian.Uint32(payload[1:])
		payload = payload[5:]
		if uint32(len(payload)) != 8*count {
			return res, nil, fmt.Errorf("iqs-bin: samples frame holds %d bytes, want %d", len(payload), 8*count)
		}
		res.Status = http.StatusOK
		res.Samples = make([]float64, count)
		for i := range res.Samples {
			res.Samples[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return res, rest, nil
	case binKindError:
		if len(payload) < 7 {
			return res, nil, fmt.Errorf("iqs-bin: truncated error frame")
		}
		res.Status = int(binary.LittleEndian.Uint16(payload[1:]))
		msgLen := binary.LittleEndian.Uint32(payload[3:])
		payload = payload[7:]
		if uint32(len(payload)) != msgLen {
			return res, nil, fmt.Errorf("iqs-bin: error frame holds %d bytes, want %d", len(payload), msgLen)
		}
		res.Err = string(payload)
		return res, rest, nil
	default:
		return res, nil, fmt.Errorf("iqs-bin: unknown frame kind %d", payload[0])
	}
}

// SubsampleRequest is the decoded kind-3 frame: one shard's share of a
// cluster fan-out. The router plans the whole query — per-shard budgets
// on the request's rng stream, then one split-derived seed per positive
// shard — and ships only (shard, seed, budget, range, op); the node
// rebuilds the stream with rng.New(Seed) and draws from its local copy
// of the shard, so the bytes coming back are exactly what a local
// fan-out worker would have produced. See internal/cluster.
type SubsampleRequest struct {
	// WoR selects the without-replacement path (op 1); false is the
	// weighted WR path (op 0).
	WoR bool
	// Shard is the global shard index being drawn.
	Shard int
	// Seed is the split-derived stream seed (rng.SplitSeed).
	Seed uint64
	// Lo, Hi is the query range; K the shard's sub-budget.
	Lo, Hi float64
	K      int
}

// AppendSubsampleRequest appends one kind-3 frame:
//
//	[u8 3][u8 op][u32 shard][u64 seed][f64 lo][f64 hi][u32 k]
func AppendSubsampleRequest(b []byte, req SubsampleRequest) []byte {
	const payloadLen = 1 + 1 + 4 + 8 + 8 + 8 + 4
	b = binary.LittleEndian.AppendUint32(b, payloadLen)
	b = append(b, binKindSubsample)
	op := byte(0)
	if req.WoR {
		op = 1
	}
	b = append(b, op)
	b = binary.LittleEndian.AppendUint32(b, uint32(req.Shard))
	b = binary.LittleEndian.AppendUint64(b, req.Seed)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(req.Lo))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(req.Hi))
	b = binary.LittleEndian.AppendUint32(b, uint32(req.K))
	return b
}

// DecodeSubsampleBody decodes a /subsample request body (one kind-3
// frame).
func DecodeSubsampleBody(b []byte) (SubsampleRequest, error) {
	var req SubsampleRequest
	if len(b) < 4 {
		return req, fmt.Errorf("iqs-bin: truncated frame header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	const payloadLen = 1 + 1 + 4 + 8 + 8 + 8 + 4
	if n != payloadLen || len(b) != payloadLen {
		return req, fmt.Errorf("iqs-bin: subsample frame length %d, want %d", n, payloadLen)
	}
	if b[0] != binKindSubsample {
		return req, fmt.Errorf("iqs-bin: frame kind %d, want %d", b[0], binKindSubsample)
	}
	req.WoR = b[1] == 1
	req.Shard = int(binary.LittleEndian.Uint32(b[2:]))
	req.Seed = binary.LittleEndian.Uint64(b[6:])
	req.Lo = math.Float64frombits(binary.LittleEndian.Uint64(b[14:]))
	req.Hi = math.Float64frombits(binary.LittleEndian.Uint64(b[22:]))
	req.K = int(binary.LittleEndian.Uint32(b[30:]))
	return req, nil
}

// DecodeSampleBody decodes a binary /sample response body (one kind-0
// frame). The load generator and tests use it; servers never decode.
func DecodeSampleBody(b []byte) ([]float64, error) {
	res, rest, err := decodeFrame(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("iqs-bin: %d trailing bytes after sample frame", len(rest))
	}
	if res.Status != http.StatusOK {
		return nil, fmt.Errorf("iqs-bin: error frame in /sample body: %d %s", res.Status, res.Err)
	}
	return res.Samples, nil
}

// DecodeSampleBodyInto decodes one kind-0 or kind-1 frame, appending a
// kind-0 frame's samples into caller-owned dst (returned unchanged for
// kind-1, whose status and message come back instead). The cluster
// router runs it per sub-sample reply, so the steady-state decode path
// allocates nothing beyond dst growth.
func DecodeSampleBodyInto(b []byte, dst []float64) (out []float64, status int, msg string, err error) {
	if len(b) < 4 {
		return dst, 0, "", fmt.Errorf("iqs-bin: truncated frame header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) != n || n < 1 {
		return dst, 0, "", fmt.Errorf("iqs-bin: frame length %d vs %d body bytes", n, len(b))
	}
	switch b[0] {
	case binKindSamples:
		if len(b) < 5 {
			return dst, 0, "", fmt.Errorf("iqs-bin: truncated samples frame")
		}
		count := binary.LittleEndian.Uint32(b[1:])
		b = b[5:]
		if uint32(len(b)) != 8*count {
			return dst, 0, "", fmt.Errorf("iqs-bin: samples frame holds %d bytes, want %d", len(b), 8*count)
		}
		for i := uint32(0); i < count; i++ {
			dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
		return dst, http.StatusOK, "", nil
	case binKindError:
		if len(b) < 7 {
			return dst, 0, "", fmt.Errorf("iqs-bin: truncated error frame")
		}
		status = int(binary.LittleEndian.Uint16(b[1:]))
		msgLen := binary.LittleEndian.Uint32(b[3:])
		b = b[7:]
		if uint32(len(b)) != msgLen {
			return dst, 0, "", fmt.Errorf("iqs-bin: error frame holds %d bytes, want %d", len(b), msgLen)
		}
		return dst, status, string(b), nil
	default:
		return dst, 0, "", fmt.Errorf("iqs-bin: unknown frame kind %d", b[0])
	}
}

// DecodeBatchBody decodes a binary /batch response body ([u32 nResults]
// then one frame per query, in order).
func DecodeBatchBody(b []byte) ([]BinResult, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("iqs-bin: truncated batch header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	out := make([]BinResult, 0, n)
	for i := uint32(0); i < n; i++ {
		res, rest, err := decodeFrame(b)
		if err != nil {
			return nil, fmt.Errorf("iqs-bin: result %d: %w", i, err)
		}
		out = append(out, res)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("iqs-bin: %d trailing bytes after %d results", len(b), n)
	}
	return out, nil
}
