// Cluster-node endpoints: /subsample and /cluster/partition.
//
// In a scale-out deployment (internal/cluster) every data node is a
// regular Server whose Options.Node carries a cluster.NodeHost. The
// router speaks the PR-8 binary framing over persistent keep-alive
// connections: one kind-3 sub-sample request frame per POST, one kind-0
// (samples) or kind-1 (error) frame back. Sub-sample traffic runs under
// the same admission control, per-request deadline, and drain semantics
// as every other query — a node shedding load sheds its routers too,
// which is what lets the router fail over to a replica.
package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// maxSubsampleBody bounds the /subsample request read: one kind-3 frame
// is 38 bytes, so anything larger is malformed by construction.
const maxSubsampleBody = 64

// handleSubsample serves one sub-sample frame from the cluster router.
// The router's X-Request-ID propagates: the node echoes the inbound id
// (minting its own only for direct probes), so one id follows a query
// across the router→node hop in both servers' logs and traces.
func (s *Server) handleSubsample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	reqStart := time.Now()
	seq := s.reqSeq.Add(1)
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = metrics.RequestID(s.opts.Seed, seq)
	}
	w.Header().Set("X-Request-ID", id)
	defer func() {
		s.reqSubs.Observe(time.Since(reqStart).Seconds())
	}()
	release, status := s.admit(r.Context())
	if status != 0 {
		s.shed(w, status)
		return
	}
	defer release()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubsampleBody))
	if err != nil {
		s.writeSubsampleError(w, http.StatusBadRequest, err)
		return
	}
	req, err := DecodeSubsampleBody(body)
	if err != nil {
		s.writeSubsampleError(w, http.StatusBadRequest, err)
		return
	}
	if req.K < 0 || req.K > s.opts.MaxK {
		s.writeSubsampleError(w, http.StatusBadRequest, errors.New("sub-budget out of range"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	bp := samplePool.Get().(*[]float64)
	out, err := s.node.Subsample(ctx, req, (*bp)[:0])
	if err != nil {
		samplePool.Put(bp)
		s.writeSubsampleError(w, statusOf(err), err)
		return
	}
	s.subsServed.Add(1)
	s.served.Add(1)
	s.wireBin.Add(1)
	bb := binPool.Get().(*[]byte)
	rb := appendSampleFrame((*bb)[:0], out)
	s.writeBin(w, http.StatusOK, rb)
	*bb = rb[:0]
	binPool.Put(bb)
	*bp = out[:0] // keep any growth the draw caused
	samplePool.Put(bp)
}

// writeSubsampleError answers a failed sub-sample with a kind-1 frame,
// keeping the hop binary in both directions so the router needs exactly
// one decoder.
func (s *Server) writeSubsampleError(w http.ResponseWriter, status int, err error) {
	s.subsFailed.Add(1)
	s.failed.Add(1)
	bb := binPool.Get().(*[]byte)
	body := appendErrorFrame((*bb)[:0], status, err.Error())
	s.writeBin(w, status, body)
	*bb = body[:0]
	binPool.Put(bb)
}

// handlePartition serves the cluster partition map as JSON — the
// operator's view of how shards map to nodes and replicas.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	b, err := s.part.PartitionJSON()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, http.StatusOK, b)
}
