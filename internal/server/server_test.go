package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

func newTestServer(t *testing.T, n, shards int, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	eng, err := shard.New(context.Background(), "http", values, nil, shard.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return m
}

func TestSampleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 1000, 4, Options{})
	m := getJSON(t, ts.URL+"/sample?lo=100&hi=899&k=32", http.StatusOK)
	samples := m["samples"].([]any)
	if len(samples) != 32 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		v := s.(float64)
		if v < 100 || v > 899 {
			t.Fatalf("sample %v outside range", v)
		}
	}
	// WoR flavour.
	m = getJSON(t, ts.URL+"/sample?lo=0&hi=999&k=50&wor=true", http.StatusOK)
	seen := map[float64]bool{}
	for _, s := range m["samples"].([]any) {
		v := s.(float64)
		if seen[v] {
			t.Fatalf("duplicate %v in WoR response", v)
		}
		seen[v] = true
	}
	// Independence across identical requests: two calls must differ.
	a := fmt.Sprint(getJSON(t, ts.URL+"/sample?lo=0&hi=999&k=16", http.StatusOK)["samples"])
	b := fmt.Sprint(getJSON(t, ts.URL+"/sample?lo=0&hi=999&k=16", http.StatusOK)["samples"])
	if a == b {
		t.Fatal("two identical requests returned identical samples — rng streams shared")
	}
}

func TestSampleErrors(t *testing.T) {
	_, ts := newTestServer(t, 100, 2, Options{MaxK: 1000})
	cases := []struct {
		query string
		want  int
	}{
		{"lo=abc&hi=1&k=1", http.StatusBadRequest},
		{"lo=0&hi=1&k=zzz", http.StatusBadRequest},
		{"lo=5&hi=1&k=1", http.StatusBadRequest},              // inverted range
		{"lo=0.2&hi=0.8&k=1", http.StatusUnprocessableEntity}, // empty range
		{"lo=0&hi=99&k=101&wor=true", http.StatusUnprocessableEntity},
		{"lo=0&hi=99&k=5000", http.StatusBadRequest}, // beyond MaxK
	}
	for _, c := range cases {
		m := getJSON(t, ts.URL+"/sample?"+c.query, c.want)
		if m["error"] == nil || m["error"] == "" {
			t.Errorf("%s: no error message", c.query)
		}
	}
	resp, err := http.Head(ts.URL + "/sample")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("HEAD /sample: %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 500, 4, Options{MaxBatch: 4})
	body := `{"queries":[
		{"lo":0,"hi":499,"k":8},
		{"lo":10,"hi":20,"k":5,"wor":true},
		{"lo":9,"hi":3,"k":1}
	]}`
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Samples []float64 `json:"samples"`
			Error   string    `json:"error"`
			Status  int       `json:"status"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Status != 200 || len(out.Results[0].Samples) != 8 {
		t.Fatalf("q0: %+v", out.Results[0])
	}
	if out.Results[1].Status != 200 || len(out.Results[1].Samples) != 5 {
		t.Fatalf("q1: %+v", out.Results[1])
	}
	if out.Results[2].Status != http.StatusBadRequest || out.Results[2].Error == "" {
		t.Fatalf("q2: %+v", out.Results[2])
	}

	// Oversized and malformed batches are refused whole.
	over := batchRequest{Queries: make([]sampleParams, 5)}
	raw, _ := json.Marshal(over)
	resp2, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d", resp2.StatusCode)
	}
	resp3, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: %d", resp3.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, 300, 3, Options{})
	m := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if m["status"] != "ok" || m["shards"].(float64) != 3 || m["len"].(float64) != 300 {
		t.Fatalf("healthz: %v", m)
	}
	getJSON(t, ts.URL+"/sample?lo=0&hi=299&k=4", http.StatusOK)
	st := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if st["served"].(float64) < 1 {
		t.Fatalf("stats served: %v", st["served"])
	}
	eng := st["engine"].(map[string]any)
	if eng["Shards"].(float64) != 3 {
		t.Fatalf("stats engine: %v", eng)
	}
}

// slowEngine wedges Sample until released, to fill admission slots
// deterministically.
type slowEngine struct {
	inner   Engine
	release chan struct{}
}

func (s *slowEngine) Sample(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.inner.Sample(ctx, r, lo, hi, k)
}

// SampleInto wedges too: the handler's hot path runs through the Into
// variants, and the admission tests need those requests to hold their
// slots.
func (s *slowEngine) SampleInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	select {
	case <-s.release:
	case <-ctx.Done():
		return dst, ctx.Err()
	}
	return s.inner.SampleInto(ctx, r, lo, hi, k, dst)
}

func (s *slowEngine) SampleWoR(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	return s.inner.SampleWoR(ctx, r, lo, hi, k)
}

func (s *slowEngine) SampleWoRInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	return s.inner.SampleWoRInto(ctx, r, lo, hi, k, dst)
}

// SampleMulti wedges like SampleInto: coalesced batches must hold
// their execution slots for the admission tests too.
func (s *slowEngine) SampleMulti(ctx context.Context, reqs []*shard.MultiQuery) {
	select {
	case <-s.release:
	case <-ctx.Done():
		for _, q := range reqs {
			q.Out, q.Err = q.Dst, ctx.Err()
		}
		return
	}
	s.inner.SampleMulti(ctx, reqs)
}

func (s *slowEngine) Batch(ctx context.Context, r *core.Rand, q []shard.Query) []shard.Result {
	return s.inner.Batch(ctx, r, q)
}
func (s *slowEngine) Count(ctx context.Context, lo, hi float64) (int, error) {
	return s.inner.Count(ctx, lo, hi)
}
func (s *slowEngine) Health() shard.Health          { return s.inner.Health() }
func (s *slowEngine) Downgrades() []shard.Downgrade { return s.inner.Downgrades() }

func TestAdmissionControl429(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	eng, err := shard.New(context.Background(), "adm", values, nil, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowEngine{inner: eng, release: make(chan struct{})}
	srv := New(slow, Options{MaxInFlight: 2, MaxQueue: 1, Timeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Saturate the 2 execution slots plus the full waiter allowance
	// (MaxInFlight+MaxQueue = 3 waiting requests).
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/sample?lo=0&hi=99&k=1")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	// Wait until all five are inside admission (2 executing + 3 queued).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(srv.sem) == 2 && srv.queued.Load() == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: in-flight %d queued %d", len(srv.sem), srv.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// The next request must shed with 429 + Retry-After.
	resp, err := http.Get(ts.URL + "/sample?lo=0&hi=99&k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(slow.release)
	wg.Wait()
	if srv.rejectedBusy.Value() == 0 {
		t.Error("429 not counted")
	}
}

func TestGracefulShutdown(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	eng, err := shard.New(context.Background(), "drain", values, nil, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowEngine{inner: eng, release: make(chan struct{})}
	srv := New(slow, Options{MaxInFlight: 4, Timeout: 10 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	// One in-flight request...
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/sample?lo=0&hi=99&k=1")
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.sem) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// ...then shutdown: it must wait for the in-flight request, refuse
	// new ones with 503, and Serve must return ErrServerClosed.
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	for !srv.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	// Draining: healthz flips to 503; direct handler avoids the closed
	// listener.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/sample?lo=0&hi=99&k=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("sample while draining: %d, want 503", rec.Code)
	}

	close(slow.release)
	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight request during drain finished with %d, want 200", code)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if srv.rejectedGone.Value() == 0 {
		t.Error("503 not counted")
	}
}

func TestRequestDeadline(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	eng, err := shard.New(context.Background(), "slow", values, nil, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowEngine{inner: eng, release: make(chan struct{})} // never released
	srv := New(slow, Options{Timeout: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/sample?lo=0&hi=99&k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled request: %d, want 504", resp.StatusCode)
	}
	if e := time.Since(start); e > 3*time.Second {
		t.Fatalf("deadline not enforced: took %v", e)
	}
}
