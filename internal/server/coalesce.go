package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/shard"
)

// errCoalescerStopped is returned by coalescer.do when the dispatcher
// has already shut down. Under Serve's ordering it cannot happen (the
// dispatcher outlives every handler); it guards direct-Handler harnesses.
var errCoalescerStopped = errors.New("server: coalescer stopped")

// coalesceJob carries one /sample request into the dispatcher and back.
// done is closed after the job's batch has executed; until then the
// request's buffer is shared with the dispatcher.
type coalesceJob struct {
	req  *shard.MultiQuery
	done chan struct{}
}

// coalescer groups concurrent /sample requests into single engine
// SampleMulti calls. One dispatcher goroutine owns batch formation:
//
//	collect — block for the first job, then drain whatever else is
//	          already queued, up to maxBatch.
//	linger  — if the batch is not full AND more requests hold execution
//	          slots than are in the batch (stragglers are imminent),
//	          wait up to linger for them. An otherwise-idle server skips
//	          this state entirely, so serial latency never pays it.
//	flush   — run the batch through Engine.SampleMulti under a detached
//	          per-batch deadline, then release every waiter.
//
// Requests keep their own rng stream and response buffer through the
// batch (shard.MultiQuery), so coalescing is invisible in the output:
// each response is byte-identical to the uncoalesced path's for the
// same X-Request-ID. The channel is buffered to maxBatch so the next
// batch forms while the current one executes.
type coalescer struct {
	s        *Server
	ch       chan *coalesceJob
	maxBatch int
	linger   time.Duration
	stop     chan struct{}
	stopOnce sync.Once
	stopped  chan struct{}
}

func newCoalescer(s *Server, maxBatch int, linger time.Duration) *coalescer {
	c := &coalescer{
		s:        s,
		ch:       make(chan *coalesceJob, maxBatch),
		maxBatch: maxBatch,
		linger:   linger,
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	go c.run()
	return c
}

// do submits the request and waits for its batch to complete. The wait
// is unconditional once the job is enqueued: req's buffer is shared
// with the dispatcher, so the handler must not reclaim it early even if
// the handler's own context expires — the batch runs under its own
// deadline of the same length, so the wait is bounded regardless.
func (c *coalescer) do(ctx context.Context, req *shard.MultiQuery) error {
	j := &coalesceJob{req: req, done: make(chan struct{})}
	select {
	case c.ch <- j:
	case <-ctx.Done():
		return ctx.Err()
	case <-c.stopped:
		return errCoalescerStopped
	}
	<-j.done
	return nil
}

// shutdown stops the dispatcher after flushing anything still queued.
// Idempotent. Call only after the HTTP server has drained: Serve's
// ordering guarantees no handler is inside do by then.
func (c *coalescer) shutdown() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.stopped
}

func (c *coalescer) run() {
	defer close(c.stopped)
	batch := make([]*coalesceJob, 0, c.maxBatch)
	for {
		// Collect: block for the batch's first job.
		select {
		case j := <-c.ch:
			batch = append(batch, j)
		case <-c.stop:
			c.drain(batch)
			return
		}
		// Drain everything already queued, without waiting.
	fill:
		for len(batch) < c.maxBatch {
			select {
			case j := <-c.ch:
				batch = append(batch, j)
			default:
				break fill
			}
		}
		// Linger: len(s.sem) counts requests holding execution slots —
		// the batched ones (blocked in do) plus any still parsing or
		// en route to the channel. Wait for those stragglers only while
		// they exist; an idle server flushes immediately.
		lingerStart := time.Now()
		if c.linger > 0 && len(batch) < c.maxBatch && len(c.s.sem) > len(batch) {
			deadline := time.NewTimer(c.linger)
		wait:
			for len(batch) < c.maxBatch && len(c.s.sem) > len(batch) {
				select {
				case j := <-c.ch:
					batch = append(batch, j)
				case <-deadline.C:
					break wait
				case <-c.stop:
					break wait // flush below; the next collect exits.
				}
			}
			deadline.Stop()
		}
		c.flush(batch, time.Since(lingerStart))
		batch = batch[:0]
	}
}

// drain flushes the carried batch plus anything left in the channel at
// shutdown, so no waiter is abandoned.
func (c *coalescer) drain(batch []*coalesceJob) {
	for {
		select {
		case j := <-c.ch:
			batch = append(batch, j)
			continue
		default:
		}
		break
	}
	if len(batch) > 0 {
		c.flush(batch, 0)
	}
}

// flush executes one batch and releases its waiters. The batch runs
// under its own detached deadline (not any single request's context):
// one client disconnecting must not cancel its batchmates.
func (c *coalescer) flush(batch []*coalesceJob, lingered time.Duration) {
	s := c.s
	s.coalBatchSize.Observe(float64(len(batch)))
	s.coalLinger.Observe(lingered.Seconds())
	s.coalesced.Add(int64(len(batch)))
	reqs := make([]*shard.MultiQuery, len(batch))
	for i, j := range batch {
		reqs[i] = j.req
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.Timeout)
	s.eng.SampleMulti(ctx, reqs)
	cancel()
	for _, j := range batch {
		close(j.done)
	}
}
