// Package server is the stdlib net/http serving front end over the
// sharded batch query engine: JSON endpoints for single queries
// (/sample), batched queries (/batch), liveness (/healthz), and
// operational counters (/stats), hardened the same way the layers
// below are:
//
//   - Admission control: at most MaxInFlight requests execute
//     concurrently; up to MaxQueue more may wait. Past that the server
//     sheds load with 429 Too Many Requests (and Retry-After) instead
//     of queueing unboundedly; during drain every request gets 503.
//
//   - Per-request deadlines: each admitted request runs under a
//     context.WithTimeout derived from the connection context, so the
//     cancellation plumbing of internal/core bounds tail latency even
//     for pathological queries.
//
//   - Graceful shutdown: Shutdown flips the server into draining mode
//     (healthz turns 503, new work is refused) and then lets in-flight
//     requests finish via http.Server.Shutdown.
//
// Randomness: the server owns a base seed and gives every request its
// own derived rng stream, so concurrent requests never share a Source
// and repeated identical requests return fresh independent samples —
// the IQS contract, now over HTTP.
package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/shard"
)

// Engine is the query backend the server fronts; *shard.Coordinator
// implements it. The Into variants append into a caller-owned buffer
// (returned unchanged on error) so the hot /sample path can recycle
// pooled response buffers instead of allocating per request.
type Engine interface {
	Sample(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error)
	SampleInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error)
	SampleWoR(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error)
	SampleWoRInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error)
	// SampleMulti answers a coalesced batch: each request keeps its own
	// rng stream and buffer and must come back byte-identical to the
	// equivalent SampleInto/SampleWoRInto call (errors land per request).
	SampleMulti(ctx context.Context, reqs []*shard.MultiQuery)
	Batch(ctx context.Context, r *core.Rand, queries []shard.Query) []shard.Result
	Count(ctx context.Context, lo, hi float64) (int, error)
	Health() shard.Health
	Downgrades() []shard.Downgrade
}

// poolProber is the optional pool-aware-admission extension of Engine;
// *shard.Coordinator implements it. PoolHot reports whether a WR query
// would be answered entirely from precomputed sample-pool inventory
// without consuming any (it does record demand, which is what warms
// pool windows under coalesced serving). The /sample handler routes hot
// requests around the batch coalescer: coalescing exists to amortise
// fan-out overhead that the pooled path never pays, and pooled draws
// are identically distributed and independent per request, so the
// bypass preserves the IQS contract.
type poolProber interface {
	PoolHot(lo, hi float64, k int) bool
}

// writeLagger is the optional ingest-lag extension of Engine;
// *shard.Coordinator implements it. WriteLagSeconds estimates how long
// the slowest shard's rebuilder needs to drain its delta log. The write
// endpoints quote it as Retry-After on backpressure 429s: the read
// queue can be empty while the rebuilder is minutes behind, so deriving
// write backoff from the read queue (the old behaviour) told shed
// writers to stampede back ~1s later into a log that was still full.
type writeLagger interface {
	WriteLagSeconds() float64
}

// MutableEngine is the optional write-path extension of Engine;
// *shard.Coordinator implements it. The /insert, /delete and /bulkload
// endpoints serve engines that do; on engines that don't, they answer
// 501 Not Implemented. Writes flow through the same admission control
// as queries, and ingest backpressure surfaces as 429 with Retry-After
// so clients shed by a saturated delta log back off like clients shed
// by a full request queue.
type MutableEngine interface {
	Insert(ctx context.Context, value, weight float64) error
	Delete(ctx context.Context, value float64) error
	BulkLoad(ctx context.Context, values, weights []float64) error
}

// NodeBackend serves cluster sub-sample frames: one shard's share of a
// router-planned fan-out, drawn on a stream rebuilt from the frame's
// seed. *cluster.NodeHost implements it; when Options.Node is set the
// server additionally mounts POST /subsample (binary kind-3 frames in,
// kind-0/kind-1 frames out) behind the same admission control as every
// query endpoint.
type NodeBackend interface {
	Subsample(ctx context.Context, req SubsampleRequest, dst []float64) ([]float64, error)
}

// PartitionProvider exposes the cluster partition map; engines or node
// backends that implement it get GET /cluster/partition mounted. Both
// *cluster.Router and *cluster.NodeHost implement it, so operators can
// ask any tier how shards map to nodes.
type PartitionProvider interface {
	PartitionJSON() ([]byte, error)
}

// requestIDForwarder marks an engine that forwards work to other
// processes and wants the request ID in its context (cluster.Router).
// For such engines beginRequest installs the ID via
// metrics.ContextWithRequestID and honours an inbound X-Request-ID, so
// one ID follows a query across every router→node hop. Engines that
// answer locally skip the per-request context allocation entirely.
type requestIDForwarder interface {
	ForwardsRequestID()
}

// Options configures a Server.
type Options struct {
	// MaxInFlight bounds concurrently executing requests; 0 means 64.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot before the
	// server sheds with 429; 0 means 2×MaxInFlight.
	MaxQueue int
	// Timeout is the per-request deadline; 0 means 5s.
	Timeout time.Duration
	// Seed is the base of the per-request rng streams.
	Seed uint64
	// MaxBatch bounds queries per /batch request; 0 means 256.
	MaxBatch int
	// MaxK bounds the sample budget of one query; 0 means 1<<20.
	MaxK int
	// Metrics is the registry /metrics serves and the server's own
	// instruments register in. Nil means a private registry — the
	// endpoint then exports only the server's series; pass the same
	// registry the engine was built with to export the whole stack.
	Metrics *metrics.Registry
	// TraceSampleRate is the fraction of requests whose per-stage span
	// timings are logged (realised as every round(1/rate)-th request);
	// 0 disables span logging. Every request gets an X-Request-ID
	// either way.
	TraceSampleRate float64
	// Logger receives the sampled trace lines. Nil discards.
	Logger *slog.Logger
	// Coalesce enables adaptive request coalescing on /sample: up to
	// Coalesce concurrent requests are grouped into one engine batch
	// (each keeping its own rng stream and response buffer, so answers
	// are identical to the uncoalesced path per request id). 0 disables.
	Coalesce int
	// Linger bounds how long the coalescer waits for stragglers when
	// more requests are in flight than batched; 0 means 100µs with
	// coalescing enabled. Batches dispatch immediately when the server
	// is otherwise idle, so serial latency does not pay the linger.
	Linger time.Duration
	// Node, when non-nil, runs the server in cluster-node mode: POST
	// /subsample serves binary sub-sample frames from the cluster
	// router in addition to the regular query endpoints.
	Node NodeBackend
}

// Server serves the engine over HTTP. Create with New.
type Server struct {
	eng    Engine
	mut    MutableEngine // nil when eng has no write path
	prober poolProber    // nil when eng has no pool probe
	lagger writeLagger   // nil when eng has no ingest-lag estimate
	est    estimator     // nil when eng has no approximate analytics
	opts   Options
	reg    *metrics.Registry
	log    *slog.Logger

	sem chan struct{}
	// release is the single slot-release func admit hands back on every
	// admission; allocating it once here keeps a closure off the
	// per-request path.
	release  func()
	queued   atomic.Int64
	draining atomic.Bool
	reqSeq   atomic.Uint64

	// traceEvery samples every traceEvery-th request for span logging
	// (0: tracing off) — a deterministic realisation of TraceSampleRate
	// with no per-request randomness.
	traceEvery uint64

	served       *metrics.Counter
	failed       *metrics.Counter // requests answered with a 4xx/5xx error body
	rejectedBusy *metrics.Counter // 429: queue full
	rejectedGone *metrics.Counter // 503: draining or deadline while queued

	// request[path] is the end-to-end handler latency ("/sample",
	// "/batch", "/write" for the three write endpoints); stage[i]
	// isolates admit / decode / encode.
	reqSample *metrics.Histogram
	reqBatch  *metrics.Histogram
	reqWrite  *metrics.Histogram
	writes    *metrics.Counter // write-endpoint requests answered 200
	stage     [3]*metrics.Histogram

	baseMallocs uint64 // runtime.MemStats.Mallocs at New, for /stats deltas

	// coal batches concurrent /sample requests into engine SampleMulti
	// calls; nil when Options.Coalesce is 0. The metrics register
	// unconditionally so the exposition is stable across configs.
	coal          *coalescer
	coalBatchSize *metrics.Histogram
	coalLinger    *metrics.Histogram
	coalesced     *metrics.Counter

	// wireJSON / wireBin count query responses by negotiated encoding
	// ("/sample" and "/batch" bodies, success and per-query error alike).
	wireJSON *metrics.Counter
	wireBin  *metrics.Counter

	// Node mode (Options.Node): the sub-sample backend, the partition
	// provider (from Node or the engine, whichever implements it), and
	// the /subsample serving counters.
	node       NodeBackend
	part       PartitionProvider
	subsServed *metrics.Counter
	subsFailed *metrics.Counter
	reqSubs    *metrics.Histogram

	// forwardID is set when the engine forwards requests downstream and
	// needs the request ID carried in the context (requestIDForwarder).
	forwardID bool

	// /estimate instrumentation: per-op request counters, failures, the
	// empirical q-error distribution of scored (COUNT) estimates, and
	// how often a scored q-error escaped its Chernoff bound.
	reqEstimate       *metrics.Histogram
	estReq            [4]*metrics.Counter
	estFailed         *metrics.Counter
	estQError         *metrics.Histogram
	estQBoundExceeded *metrics.Counter

	hs *http.Server
}

// Stage indices for Server.stage and the spans logged for sampled
// requests.
const (
	stageAdmit = iota
	stageDecode
	stageEncode
)

var stageNames = [3]string{"admit", "decode", "encode"}

// New returns a server fronting eng.
func New(eng Engine, opts Options) *Server {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 64
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 2 * opts.MaxInFlight
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	if opts.MaxK <= 0 {
		opts.MaxK = 1 << 20
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.Coalesce > 0 && opts.Linger <= 0 {
		opts.Linger = 100 * time.Microsecond
	}
	s := &Server{
		eng:  eng,
		opts: opts,
		reg:  opts.Metrics,
		log:  opts.Logger,
		sem:  make(chan struct{}, opts.MaxInFlight),
	}
	s.release = func() { <-s.sem }
	s.mut, _ = eng.(MutableEngine)
	s.prober, _ = eng.(poolProber)
	s.lagger, _ = eng.(writeLagger)
	s.est, _ = eng.(estimator)
	s.node = opts.Node
	_, s.forwardID = eng.(requestIDForwarder)
	if s.part, _ = opts.Node.(PartitionProvider); s.part == nil {
		s.part, _ = eng.(PartitionProvider)
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	if r := opts.TraceSampleRate; r >= 1 {
		s.traceEvery = 1
	} else if r > 0 {
		s.traceEvery = uint64(math.Round(1 / r))
	}
	reg := s.reg
	s.served = reg.Counter("iqs_server_served_total", "Requests answered 200.")
	s.failed = reg.Counter("iqs_server_failed_total", "Requests answered with a 4xx/5xx error body.")
	s.rejectedBusy = reg.Counter("iqs_server_rejected_total", "Requests shed by admission control.", metrics.L("reason", "busy"))
	s.rejectedGone = reg.Counter("iqs_server_rejected_total", "Requests shed by admission control.", metrics.L("reason", "draining"))
	s.reqSample = reg.Histogram("iqs_server_request_seconds", "End-to-end handler latency.", nil, metrics.L("path", "/sample"))
	s.reqBatch = reg.Histogram("iqs_server_request_seconds", "End-to-end handler latency.", nil, metrics.L("path", "/batch"))
	s.reqWrite = reg.Histogram("iqs_server_request_seconds", "End-to-end handler latency.", nil, metrics.L("path", "/write"))
	s.writes = reg.Counter("iqs_server_writes_total", "Write-endpoint requests answered 200.")
	for i, name := range stageNames {
		s.stage[i] = reg.Histogram("iqs_server_stage_seconds", "Per-stage handler latency.", nil, metrics.L("stage", name))
	}
	s.coalBatchSize = reg.Histogram("iqs_coalesce_batch_size", "Requests per coalesced engine batch.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	s.coalLinger = reg.Histogram("iqs_coalesce_linger_seconds", "Time each batch spent waiting for stragglers.", nil)
	s.coalesced = reg.Counter("iqs_coalesced_requests_total", "Requests answered through a coalesced batch.")
	s.wireJSON = reg.Counter("iqs_wire_encoding_total", "Query responses encoded, by wire format.", metrics.L("format", "json"))
	s.wireBin = reg.Counter("iqs_wire_encoding_total", "Query responses encoded, by wire format.", metrics.L("format", "binary"))
	s.reqEstimate = reg.Histogram("iqs_server_request_seconds", "End-to-end handler latency.", nil, metrics.L("path", "/estimate"))
	for _, op := range []estimate.Op{estimate.OpCount, estimate.OpSum, estimate.OpAvg, estimate.OpDistinct} {
		s.estReq[op] = reg.Counter("iqs_estimate_requests_total", "Estimate requests accepted, by aggregate.", metrics.L("op", op.String()))
	}
	s.estFailed = reg.Counter("iqs_estimate_failed_total", "Estimate requests answered with an error.")
	s.estQError = reg.Histogram("iqs_estimate_qerror", "Empirical q-error of scored (COUNT) estimates.",
		[]float64{1.0, 1.01, 1.02, 1.05, 1.1, 1.2, 1.5, 2, 3, 5, 10})
	s.estQBoundExceeded = reg.Counter("iqs_estimate_qerror_bound_exceeded_total", "Scored estimates whose q-error escaped the monitored Chernoff bound.")
	reg.GaugeFunc("iqs_server_in_flight", "Requests currently executing.",
		func() float64 { return float64(len(s.sem)) })
	reg.GaugeFunc("iqs_server_queue_depth", "Requests admitted or waiting for an execution slot.",
		func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("iqs_server_draining", "1 while the server refuses new work for shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	if opts.Node != nil {
		s.subsServed = reg.Counter("iqs_cluster_node_subsamples_total", "Sub-sample frames served 200.", metrics.L("outcome", "ok"))
		s.subsFailed = reg.Counter("iqs_cluster_node_subsamples_total", "Sub-sample frames served 200.", metrics.L("outcome", "error"))
		s.reqSubs = reg.Histogram("iqs_server_request_seconds", "End-to-end handler latency.", nil, metrics.L("path", "/subsample"))
	}
	if opts.Coalesce > 0 {
		s.coal = newCoalescer(s, opts.Coalesce, opts.Linger)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.baseMallocs = ms.Mallocs
	// Explicit idle/header timeouts: per-request deadlines only start
	// once a handler runs, so without these a slow-header client or an
	// abandoned keep-alive connection would pin a conn goroutine forever.
	s.hs = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	return s
}

// Handler returns the route mux (exported for httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sample", s.handleSample)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/bulkload", s.handleBulkLoad)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.node != nil {
		mux.HandleFunc("/subsample", s.handleSubsample)
	}
	if s.part != nil {
		mux.HandleFunc("/cluster/partition", s.handlePartition)
	}
	return mux
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean drain, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown drains gracefully: new requests are refused with 503 while
// in-flight ones finish (bounded by ctx). The coalescer dispatcher is
// stopped only after the HTTP drain completes, since in-flight /sample
// requests may still be waiting on it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.hs.Shutdown(ctx)
	if s.coal != nil {
		s.coal.shutdown()
	}
	return err
}

// Stats is the /stats payload. The allocation counters come from
// runtime.MemStats deltas since New: Mallocs counts heap objects
// PROCESS-WIDE, so MallocsPerRequest is polluted by everything else the
// process does — scrapes of /stats and /metrics, GC bookkeeping,
// background goroutines, other endpoints — and is only an upper bound
// on the serving stack's per-request allocation cost (the live
// counterpart of the -benchmem numbers BENCH_hotpath.json tracks; trust
// those for regression gating). For the same reason the malloc counters
// are deliberately NOT exported on /metrics: a monotone process-wide
// proxy series invites alerting on noise the serving path never caused.
type Stats struct {
	Served            int64           `json:"served"`
	Failed            int64           `json:"failed"`
	RejectedBusy      int64           `json:"rejected_429"`
	RejectedGone      int64           `json:"rejected_503"`
	InFlight          int             `json:"in_flight"`
	Queued            int64           `json:"queued"`
	Draining          bool            `json:"draining"`
	Mallocs           uint64          `json:"mallocs_since_start"`
	MallocsPerRequest float64         `json:"mallocs_per_request"`
	HeapAllocBytes    uint64          `json:"heap_alloc_bytes"`
	Engine            shard.Health    `json:"engine"`
	Downgrades        []downgradeJSON `json:"downgrades,omitempty"`
}

type downgradeJSON struct {
	Shard   int    `json:"shard"`
	Dataset string `json:"dataset"`
	From    string `json:"from"`
	Op      string `json:"op"`
	Reason  string `json:"reason"`
	Time    string `json:"time"`
}

// admit implements the backpressure contract. It returns a release
// func and 0 on admission, or the HTTP status the request must be shed
// with (429 queue full, 503 draining/expired while queued).
func (s *Server) admit(ctx context.Context) (func(), int) {
	if s.draining.Load() {
		s.rejectedGone.Add(1)
		return nil, http.StatusServiceUnavailable
	}
	if q := s.queued.Add(1); q > int64(s.opts.MaxInFlight+s.opts.MaxQueue) {
		s.queued.Add(-1)
		s.rejectedBusy.Add(1)
		return nil, http.StatusTooManyRequests
	}
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		return s.release, 0
	case <-ctx.Done():
		s.queued.Add(-1)
		s.rejectedGone.Add(1)
		return nil, http.StatusServiceUnavailable
	}
}

// statusOf maps the typed error vocabulary to HTTP statuses. Errors
// carrying their own status (the cluster router's remote errors
// implement HTTPStatus) pass it through, so a 422 from a node surfaces
// as a 422 from the router, exactly like single-node serving. Untyped
// errors map to 500 — the chaos tests prove none occur.
func statusOf(err error) int {
	var ie *service.InternalError
	var he interface{ HTTPStatus() int }
	switch {
	case errors.Is(err, core.ErrBadRange), errors.Is(err, core.ErrBadValue), errors.Is(err, core.ErrBadWeight):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrEmptyRange), errors.Is(err, core.ErrSampleTooLarge),
		errors.Is(err, service.ErrEmptyDataset):
		return http.StatusUnprocessableEntity
	case errors.Is(err, service.ErrValueNotFound):
		return http.StatusNotFound
	case errors.Is(err, service.ErrNotMutable):
		return http.StatusNotImplemented
	case errors.Is(err, ingest.ErrBackpressure):
		return http.StatusTooManyRequests
	case errors.Is(err, ingest.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, errCoalescerStopped):
		return http.StatusServiceUnavailable
	case errors.As(err, &he):
		return he.HTTPStatus()
	case errors.As(err, &ie):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// encodeScratch pairs a reusable buffer with a json.Encoder bound to
// it, so the per-response encoder and its internal state are recycled
// rather than rebuilt per request.
type encodeScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	es := &encodeScratch{}
	es.enc = json.NewEncoder(&es.buf)
	return es
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	es := encPool.Get().(*encodeScratch)
	es.buf.Reset()
	if err := es.enc.Encode(v); err != nil {
		// Encoding failed before anything hit the wire; answer with a
		// plain 500 rather than a truncated body.
		encPool.Put(es)
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(es.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(es.buf.Bytes())
	encPool.Put(es)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.failed.Add(1)
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// retryAfterSecs estimates how long a 429'd client should back off:
// the queue ahead of it holds ~queued/MaxInFlight timeout-bounded
// rounds of work, clamped to [1s, 60s]. A deeper queue quotes a longer
// wait instead of the old constant "1", which stampeded every shed
// client back at once.
func (s *Server) retryAfterSecs() int64 {
	rounds := float64(s.queued.Load()) / float64(s.opts.MaxInFlight)
	secs := int64(math.Ceil(rounds * s.opts.Timeout.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeRetryAfterSecs quotes backoff for a backpressured write: the
// engine's estimated ingest drain lag, clamped to [1s, 300s] — the cap
// is higher than the read path's 60s because a behind rebuilder really
// can need minutes, and quoting less re-sheds every retry. Without a
// lag signal (no completed rebuild yet, or an engine with no ingest
// path) it falls back to the read-queue estimate.
func (s *Server) writeRetryAfterSecs() int64 {
	if s.lagger != nil {
		if lag := s.lagger.WriteLagSeconds(); lag > 0 {
			secs := int64(math.Ceil(lag))
			if secs < 1 {
				secs = 1
			}
			if secs > 300 {
				secs = 300
			}
			return secs
		}
	}
	return s.retryAfterSecs()
}

// shed answers a request refused by admission control.
func (s *Server) shed(w http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.FormatInt(s.retryAfterSecs(), 10))
	}
	writeJSON(w, status, map[string]string{"error": http.StatusText(status)})
}

// randFor derives the request's rng stream from its sequence number —
// the same number its X-Request-ID is derived from, so a logged request
// id pins down the exact random stream the response was drawn with.
func (s *Server) randFor(seq uint64) *core.Rand {
	return rng.New(s.opts.Seed + 0x9e3779b97f4a7c15*seq)
}

// beginRequest assigns the request its sequence number and id, sets the
// X-Request-ID response header, and — for sampled requests — installs a
// span-recording trace in the returned context. The unsampled path adds
// no context allocation: TraceFrom on the untouched context returns nil
// and every span call is a no-op.
func (s *Server) beginRequest(w http.ResponseWriter, r *http.Request) (ctx context.Context, seq uint64, tr *metrics.Trace) {
	seq = s.reqSeq.Add(1)
	id := metrics.RequestID(s.opts.Seed, seq)
	if s.forwardID {
		// A forwarding engine (the cluster router) keeps one ID per
		// query across tiers: honour the caller's inbound ID and carry
		// it in the context so the node RPCs can stamp it.
		if inbound := r.Header.Get("X-Request-ID"); inbound != "" {
			id = inbound
		}
	}
	w.Header().Set("X-Request-ID", id)
	ctx = r.Context()
	if s.forwardID {
		ctx = metrics.ContextWithRequestID(ctx, id)
	}
	if s.traceEvery > 0 && seq%s.traceEvery == 0 {
		tr = metrics.NewTrace(id, true)
		ctx = metrics.ContextWithTrace(ctx, tr)
	}
	return ctx, seq, tr
}

// finishTrace logs the sampled request's spans and releases the trace.
func (s *Server) finishTrace(tr *metrics.Trace, path string, total time.Duration) {
	if tr == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 8)
	attrs = append(attrs,
		slog.String("request_id", tr.ID()),
		slog.String("path", path),
		slog.Duration("total", total))
	for _, sp := range tr.Spans() {
		attrs = append(attrs, slog.Duration(sp.Name, sp.End-sp.Start))
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "trace", attrs...)
	tr.Release()
}

// sampleResponse is the /sample payload; a typed struct encodes
// without the per-key interface boxing a map[string]any costs on every
// request.
type sampleResponse struct {
	Samples   []float64 `json:"samples"`
	Count     int       `json:"count"`
	ElapsedUS int64     `json:"elapsed_us"`
}

// samplePool recycles /sample result buffers: the engine appends into a
// pooled buffer via SampleInto and the buffer is returned after the
// response is encoded.
var samplePool = sync.Pool{New: func() any {
	b := make([]float64, 0, 1024)
	return &b
}}

// sampleParams are the /sample inputs, accepted as query parameters
// (GET) or a JSON body (POST).
type sampleParams struct {
	Lo  float64 `json:"lo"`
	Hi  float64 `json:"hi"`
	K   int     `json:"k"`
	WoR bool    `json:"wor"`
}

// queryValue returns the first value of key in the request's query
// string without allocating: numeric /sample parameters never need URL
// escaping, so the common case is a direct scan of RawQuery with
// strings.Cut. Queries carrying escapes ('%' or '+') fall back to the
// stdlib parser.
func queryValue(r *http.Request, key string) string {
	raw := r.URL.RawQuery
	if strings.ContainsAny(raw, "%+") {
		return r.URL.Query().Get(key)
	}
	for raw != "" {
		var pair string
		pair, raw, _ = strings.Cut(raw, "&")
		if k, v, _ := strings.Cut(pair, "="); k == key {
			return v
		}
	}
	return ""
}

func parseSampleParams(r *http.Request) (sampleParams, error) {
	if r.Method == http.MethodPost {
		// Decoded in its own variable so taking its address here does
		// not force the GET path's p onto the heap.
		var pp sampleParams
		if err := json.NewDecoder(r.Body).Decode(&pp); err != nil {
			return pp, fmt.Errorf("bad JSON body: %w", err)
		}
		return pp, nil
	}
	var p sampleParams
	var err error
	lo, hi, k := queryValue(r, "lo"), queryValue(r, "hi"), queryValue(r, "k")
	if p.Lo, err = strconv.ParseFloat(lo, 64); err != nil {
		return p, fmt.Errorf("bad lo: %q", lo)
	}
	if p.Hi, err = strconv.ParseFloat(hi, 64); err != nil {
		return p, fmt.Errorf("bad hi: %q", hi)
	}
	if p.K, err = strconv.Atoi(k); err != nil {
		return p, fmt.Errorf("bad k: %q", k)
	}
	if wor := queryValue(r, "wor"); wor != "" {
		if p.WoR, err = strconv.ParseBool(wor); err != nil {
			return p, fmt.Errorf("bad wor: %q", wor)
		}
	}
	return p, nil
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
		return
	}
	reqStart := time.Now()
	rctx, seq, tr := s.beginRequest(w, r)
	defer func() {
		s.reqSample.Observe(time.Since(reqStart).Seconds())
		s.finishTrace(tr, "/sample", time.Since(reqStart))
	}()
	endAdmit := tr.StartSpan("admit")
	release, status := s.admit(rctx)
	s.stage[stageAdmit].Observe(time.Since(reqStart).Seconds())
	endAdmit()
	if status != 0 {
		s.shed(w, status)
		return
	}
	defer release()
	endDecode := tr.StartSpan("decode")
	decodeStart := time.Now()
	p, err := parseSampleParams(r)
	s.stage[stageDecode].Observe(time.Since(decodeStart).Seconds())
	endDecode()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if p.K < 0 || p.K > s.opts.MaxK {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("k = %d out of [0, %d]", p.K, s.opts.MaxK))
		return
	}
	ctx, cancel := context.WithTimeout(rctx, s.opts.Timeout)
	defer cancel()
	start := time.Now()
	endEngine := tr.StartSpan("engine")
	bp := samplePool.Get().(*[]float64)
	var out []float64
	coalesce := s.coal != nil
	if coalesce && !p.WoR && s.prober != nil && s.prober.PoolHot(p.Lo, p.Hi, p.K) {
		// Pool-aware admission: the whole budget is sitting pre-drawn in
		// one shard's pool, so the coalescing rendezvous would only add
		// latency. The pooled response is identically distributed (and
		// independent) — the IQS contract — though not byte-identical to
		// what the coalesced kernel would have drawn for this request id.
		coalesce = false
	}
	if coalesce {
		// Coalesced path: same stream (randFor(seq)) and same pooled
		// buffer as below, so the response for this X-Request-ID is
		// byte-identical either way.
		mq := &shard.MultiQuery{Lo: p.Lo, Hi: p.Hi, K: p.K, WoR: p.WoR, R: s.randFor(seq), Dst: (*bp)[:0]}
		if err = s.coal.do(ctx, mq); err == nil {
			out, err = mq.Out, mq.Err
		}
	} else if p.WoR {
		out, err = s.eng.SampleWoRInto(ctx, s.randFor(seq), p.Lo, p.Hi, p.K, (*bp)[:0])
	} else {
		out, err = s.eng.SampleInto(ctx, s.randFor(seq), p.Lo, p.Hi, p.K, (*bp)[:0])
	}
	endEngine()
	if err != nil {
		samplePool.Put(bp)
		s.writeError(w, statusOf(err), err)
		return
	}
	s.served.Add(1)
	if out == nil {
		out = (*bp)[:0] // encode as [], matching the pre-pool behaviour
	}
	endEncode := tr.StartSpan("encode")
	encodeStart := time.Now()
	if wantBinary(r) {
		s.wireBin.Add(1)
		bb := binPool.Get().(*[]byte)
		body := appendSampleFrame((*bb)[:0], out)
		s.writeBin(w, http.StatusOK, body)
		*bb = body[:0]
		binPool.Put(bb)
	} else {
		s.wireJSON.Add(1)
		bb := binPool.Get().(*[]byte)
		body := appendSampleJSON((*bb)[:0], out, time.Since(start).Microseconds())
		writeRawJSON(w, http.StatusOK, body)
		*bb = body[:0]
		binPool.Put(bb)
	}
	s.stage[stageEncode].Observe(time.Since(encodeStart).Seconds())
	endEncode()
	*bp = out[:0] // keep any growth the engine caused
	samplePool.Put(bp)
}

// batchRequest is the /batch body.
type batchRequest struct {
	Queries []sampleParams `json:"queries"`
}

// batchResult is one entry of the /batch response.
type batchResult struct {
	Samples []float64 `json:"samples,omitempty"`
	Error   string    `json:"error,omitempty"`
	Status  int       `json:"status"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	reqStart := time.Now()
	rctx, seq, tr := s.beginRequest(w, r)
	defer func() {
		s.reqBatch.Observe(time.Since(reqStart).Seconds())
		s.finishTrace(tr, "/batch", time.Since(reqStart))
	}()
	endAdmit := tr.StartSpan("admit")
	release, status := s.admit(rctx)
	s.stage[stageAdmit].Observe(time.Since(reqStart).Seconds())
	endAdmit()
	if status != 0 {
		s.shed(w, status)
		return
	}
	defer release()
	endDecode := tr.StartSpan("decode")
	decodeStart := time.Now()
	var req batchRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	s.stage[stageDecode].Observe(time.Since(decodeStart).Seconds())
	endDecode()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Queries) > s.opts.MaxBatch {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(req.Queries), s.opts.MaxBatch))
		return
	}
	queries := make([]shard.Query, len(req.Queries))
	for i, q := range req.Queries {
		if q.K < 0 || q.K > s.opts.MaxK {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("queries[%d]: k = %d out of [0, %d]", i, q.K, s.opts.MaxK))
			return
		}
		queries[i] = shard.Query{Lo: q.Lo, Hi: q.Hi, K: q.K, WoR: q.WoR}
	}
	ctx, cancel := context.WithTimeout(rctx, s.opts.Timeout)
	defer cancel()
	endEngine := tr.StartSpan("engine")
	results := s.eng.Batch(ctx, s.randFor(seq), queries)
	endEngine()
	s.served.Add(1)
	if wantBinary(r) {
		s.wireBin.Add(1)
		endEncode := tr.StartSpan("encode")
		encodeStart := time.Now()
		bb := binPool.Get().(*[]byte)
		body := binary.LittleEndian.AppendUint32((*bb)[:0], uint32(len(results)))
		for _, res := range results {
			if res.Err != nil {
				body = appendErrorFrame(body, statusOf(res.Err), res.Err.Error())
				continue
			}
			body = appendSampleFrame(body, res.Samples)
		}
		s.writeBin(w, http.StatusOK, body)
		*bb = body[:0]
		binPool.Put(bb)
		s.stage[stageEncode].Observe(time.Since(encodeStart).Seconds())
		endEncode()
		return
	}
	s.wireJSON.Add(1)
	out := make([]batchResult, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i] = batchResult{Error: res.Err.Error(), Status: statusOf(res.Err)}
			continue
		}
		samples := res.Samples
		if samples == nil {
			samples = []float64{}
		}
		out[i] = batchResult{Samples: samples, Status: http.StatusOK}
	}
	endEncode := tr.StartSpan("encode")
	encodeStart := time.Now()
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
	s.stage[stageEncode].Observe(time.Since(encodeStart).Seconds())
	endEncode()
}

// writeParams is the body of all three write endpoints. /insert reads
// Value and Weight (absent or 0 means 1, the uniform weight); /delete
// reads Value; /bulkload reads Values and optional Weights.
type writeParams struct {
	Value   float64   `json:"value"`
	Weight  float64   `json:"weight"`
	Values  []float64 `json:"values"`
	Weights []float64 `json:"weights"`
}

// beginWrite is the shared front half of the write endpoints: method
// check, admission, JSON decode. It returns ok=false after answering
// the request itself; on ok the caller must invoke release when done.
func (s *Server) beginWrite(w http.ResponseWriter, r *http.Request) (p writeParams, release func(), ok bool) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return p, nil, false
	}
	if s.mut == nil {
		s.failed.Add(1)
		writeJSON(w, http.StatusNotImplemented, map[string]string{"error": "engine is not mutable"})
		return p, nil, false
	}
	reqStart := time.Now()
	release, status := s.admit(r.Context())
	s.stage[stageAdmit].Observe(time.Since(reqStart).Seconds())
	if status != 0 {
		s.shed(w, status)
		return p, nil, false
	}
	decodeStart := time.Now()
	err := json.NewDecoder(r.Body).Decode(&p)
	s.stage[stageDecode].Observe(time.Since(decodeStart).Seconds())
	if err != nil {
		release()
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return p, nil, false
	}
	return p, release, true
}

// finishWrite answers a completed write. Backpressure (a saturated
// delta log) quotes a Retry-After derived from the ingest drain lag —
// how long the rebuilder actually needs to work through the log —
// falling back to the admission path's read-queue estimate only when no
// lag signal exists yet. The two conditions are not interchangeable:
// the read queue drains in timeout-bounded rounds (~seconds) while a
// full delta log drains at the rebuilder's pace (possibly minutes), so
// the old shared quote told writers shed at MaxLag to stampede back ~1s
// later into a log that was still full.
func (s *Server) finishWrite(w http.ResponseWriter, reqStart time.Time, applied int, err error) {
	defer func() { s.reqWrite.Observe(time.Since(reqStart).Seconds()) }()
	if err != nil {
		status := statusOf(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.FormatInt(s.writeRetryAfterSecs(), 10))
		}
		s.writeError(w, status, err)
		return
	}
	s.served.Add(1)
	s.writes.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"applied": applied})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	p, release, ok := s.beginWrite(w, r)
	if !ok {
		return
	}
	defer release()
	if p.Weight == 0 {
		p.Weight = 1
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	s.finishWrite(w, reqStart, 1, s.mut.Insert(ctx, p.Value, p.Weight))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	p, release, ok := s.beginWrite(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	s.finishWrite(w, reqStart, 1, s.mut.Delete(ctx, p.Value))
}

func (s *Server) handleBulkLoad(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	p, release, ok := s.beginWrite(w, r)
	if !ok {
		return
	}
	defer release()
	if len(p.Values) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty values"))
		return
	}
	if p.Weights != nil && len(p.Weights) != len(p.Values) {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d values vs %d weights", len(p.Values), len(p.Weights)))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	s.finishWrite(w, reqStart, len(p.Values), s.mut.BulkLoad(ctx, p.Values, p.Weights))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	h := s.eng.Health()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"shards":   h.Shards,
		"len":      h.Len,
		"degraded": h.Degraded,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := Stats{
		Served:         s.served.Value(),
		Failed:         s.failed.Value(),
		RejectedBusy:   s.rejectedBusy.Value(),
		RejectedGone:   s.rejectedGone.Value(),
		InFlight:       len(s.sem),
		Queued:         s.queued.Load(),
		Draining:       s.draining.Load(),
		Mallocs:        ms.Mallocs - s.baseMallocs,
		HeapAllocBytes: ms.HeapAlloc,
		Engine:         s.eng.Health(),
	}
	if st.Served > 0 {
		st.MallocsPerRequest = float64(st.Mallocs) / float64(st.Served)
	}
	for _, d := range s.eng.Downgrades() {
		st.Downgrades = append(st.Downgrades, downgradeJSON{
			Shard:   d.Shard,
			Dataset: d.Event.Dataset,
			From:    d.Event.From.String(),
			Op:      d.Event.Op,
			Reason:  d.Event.Reason,
			Time:    d.Event.Time.Format(time.RFC3339Nano),
		})
	}
	writeJSON(w, http.StatusOK, st)
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. Scraping is read-only and lock-cheap: instruments are atomics
// and the registry locks only to walk its family list.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
