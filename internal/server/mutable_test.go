package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/ingest"
	"repro/internal/service"
	"repro/internal/shard"
)

func newMutableTestServer(t *testing.T, n, shards int, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	eng, err := shard.New(context.Background(), "http", values, nil, shard.Options{
		Shards:  shards,
		Mutable: true,
		Ingest:  service.MutableOptions{RebuildThreshold: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv := New(eng, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", url, err)
	}
	return m
}

func TestWriteEndpoints(t *testing.T) {
	_, ts := newMutableTestServer(t, 200, 2, Options{})

	// Insert outside the seeded span, then sample it back.
	postJSON(t, ts.URL+"/insert", map[string]any{"value": 1000.5, "weight": 2}, http.StatusOK)
	m := getJSON(t, ts.URL+"/sample?lo=1000&hi=1001&k=3", http.StatusOK)
	for _, s := range m["samples"].([]any) {
		if s.(float64) != 1000.5 {
			t.Fatalf("sampled %v, want the inserted 1000.5", s)
		}
	}

	// Absent weight means uniform weight 1.
	postJSON(t, ts.URL+"/insert", map[string]any{"value": -5}, http.StatusOK)

	// Delete masks the value immediately; a repeat is 404.
	postJSON(t, ts.URL+"/delete", map[string]any{"value": 42}, http.StatusOK)
	postJSON(t, ts.URL+"/delete", map[string]any{"value": 42}, http.StatusNotFound)
	getJSON(t, ts.URL+"/sample?lo=42&hi=42&k=1", http.StatusUnprocessableEntity)

	// Bulk load partitions across shards and reports the applied count.
	m = postJSON(t, ts.URL+"/bulkload", map[string]any{
		"values": []float64{10.5, 150.5}, "weights": []float64{1, 3},
	}, http.StatusOK)
	if m["applied"].(float64) != 2 {
		t.Fatalf("applied = %v, want 2", m["applied"])
	}

	// Validation errors are 400s.
	postJSON(t, ts.URL+"/bulkload", map[string]any{"values": []float64{}}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/bulkload", map[string]any{
		"values": []float64{1, 2}, "weights": []float64{1},
	}, http.StatusBadRequest)
	postJSON(t, ts.URL+"/insert", map[string]any{"value": "NaN"}, http.StatusBadRequest)

	// GET is not a write method.
	resp, err := http.Get(ts.URL + "/insert")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert: %d, want 405", resp.StatusCode)
	}

	// The write counter saw exactly the five applied writes.
	st := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if got := st["engine"].(map[string]any)["Len"].(float64); got != 203 {
		t.Fatalf("engine len = %v, want 203", got)
	}
}

func TestWriteEndpointsOnStaticEngine(t *testing.T) {
	// An engine without a write path answers 501 before admission.
	_, ts := newTestServer(t, 100, 2, Options{})
	postJSON(t, ts.URL+"/bulkload", map[string]any{"values": []float64{1}}, http.StatusNotImplemented)
}

func TestWriteBackpressureRetryAfter(t *testing.T) {
	// A one-slot delta log with rebuilds disabled sheds the second write
	// with 429 and a Retry-After quote.
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	eng, err := shard.New(context.Background(), "bp", values, nil, shard.Options{
		Shards:  1,
		Mutable: true,
		Ingest:  service.MutableOptions{RebuildThreshold: 1 << 20, MaxLag: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	postJSON(t, ts.URL+"/insert", map[string]any{"value": 1000}, http.StatusOK)
	b, _ := json.Marshal(map[string]any{"value": 2000})
	resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second insert: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 write missing Retry-After")
	}
}

// laggedEngine wraps a read engine with a write path that always sheds
// with ingest backpressure while reporting a fixed ingest drain lag.
type laggedEngine struct {
	Engine
	lag float64
}

func (e *laggedEngine) Insert(ctx context.Context, value, weight float64) error {
	return ingest.ErrBackpressure
}
func (e *laggedEngine) Delete(ctx context.Context, value float64) error {
	return ingest.ErrBackpressure
}
func (e *laggedEngine) BulkLoad(ctx context.Context, values, weights []float64) error {
	return ingest.ErrBackpressure
}
func (e *laggedEngine) WriteLagSeconds() float64 { return e.lag }

// TestWriteRetryAfterTracksIngestLag: a write shed by a saturated delta
// log must quote the rebuilder's drain lag, not the read queue's depth.
// Pre-fix, finishWrite reused retryAfterSecs(), which reports 1s on an
// idle read queue even with the rebuilder minutes behind — this test
// fails on that code.
func TestWriteRetryAfterTracksIngestLag(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	inner, err := shard.New(context.Background(), "lag", values, nil, shard.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inner.Close)

	for _, tc := range []struct {
		lag  float64
		want string
	}{
		{137.2, "138"}, // ceil of the drain estimate
		{1e6, "300"},   // clamped to the write-path cap
		{0, "1"},       // no lag signal: read-queue fallback (idle queue)
	} {
		srv := New(&laggedEngine{Engine: inner, lag: tc.lag}, Options{})
		ts := httptest.NewServer(srv.Handler())
		b, _ := json.Marshal(map[string]any{"value": 7})
		resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("lag %v: status %d, want 429", tc.lag, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != tc.want {
			t.Errorf("lag %v: Retry-After %q, want %q", tc.lag, got, tc.want)
		}
		ts.Close()
	}
}
