// Block generation: the bulk-kernel layer's variate supply. The sampling
// structures draw randomness one call at a time on the scalar path; the
// bulk kernels instead pre-generate runs of raw 64-bit variates into
// caller scratch with the xoshiro state held in registers, then consume
// them through a Block cursor. The contract that makes this safe to drop
// under golden-seeded code is exact-consumption equivalence:
//
//   - Fill* produce exactly the words the same number of scalar calls
//     would, leaving the Source in the identical state.
//
//   - A Block hands buffered words out in generation order and falls
//     back to the live Source when the buffer runs dry, so the consumed
//     word sequence — and hence every derived sample — is identical to
//     the scalar path no matter how draws interleave. Callers prime a
//     Block with the *guaranteed minimum* word consumption of the loop
//     ahead (rejection resampling may consume more, never less); Prime
//     panics if primed words were left unconsumed, which would desync
//     the stream.
package rng

import "math/bits"

// FillUint64 fills dst with the next len(dst) raw words, exactly as
// len(dst) successive Uint64 calls would, with the generator state kept
// in locals for the whole run.
func (r *Source) FillUint64(dst []uint64) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		dst[i] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// FillFloat64 fills dst with uniform [0, 1) variates, exactly as
// len(dst) successive Float64 calls would (one raw word each).
func (r *Source) FillFloat64(dst []float64) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		u := bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		dst[i] = float64(u>>11) / (1 << 53)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// FillBounded fills dst with uniform values in [0, n), exactly as
// len(dst) successive Uint64n calls would (Lemire rejection included —
// a rejected word costs an extra raw draw on both paths). Panics if
// n == 0.
func (r *Source) FillBounded(dst []uint64, n uint64) {
	if n == 0 {
		panic("rng: FillBounded called with n == 0")
	}
	thresh := -n % n
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		var hi, lo uint64
		for {
			u := bits.RotateLeft64(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			hi, lo = bits.Mul64(u, n)
			if lo >= thresh {
				break
			}
		}
		dst[i] = hi
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Block is a cursor over a run of pre-generated raw words. It is a
// value type meant to live on the caller's stack around a sampling
// loop; the buffer is caller scratch (typically a fixed stack array).
// Not safe for concurrent use, like the Source it wraps.
type Block struct {
	src *Source
	buf []uint64
	i   int // next unread word
	n   int // filled words
}

// MakeBlock returns a Block drawing from src through buf. The block
// starts empty; call Prime before a bulk loop.
func MakeBlock(src *Source, buf []uint64) Block {
	return Block{src: src, buf: buf}
}

// Prime pre-generates min(k, cap) raw words, where k must be a lower
// bound on the words the upcoming loop consumes — rejection resampling
// may pull extra words (served from the buffer while it lasts, then
// straight from the Source), but the loop must never consume fewer than
// k, or the Source would advance past what the scalar path consumed.
// Prime panics if previously primed words are still unread: that is a
// miscounted lower bound, and silently discarding the words would
// desynchronise the stream from the scalar path.
func (b *Block) Prime(k int) {
	if b.i != b.n {
		panic("rng: Block.Prime with unconsumed variates")
	}
	if k > len(b.buf) {
		k = len(b.buf)
	}
	if k <= 0 {
		b.i, b.n = 0, 0
		return
	}
	b.src.FillUint64(b.buf[:k])
	b.i, b.n = 0, k
}

// Uint64 pops the next raw word, falling back to the live Source when
// the primed run is exhausted.
func (b *Block) Uint64() uint64 {
	if b.i < b.n {
		u := b.buf[b.i]
		b.i++
		return u
	}
	return b.src.Uint64()
}

// Float64 is Source.Float64 over the block's word stream.
func (b *Block) Float64() float64 {
	return float64(b.Uint64()>>11) / (1 << 53)
}

// Uint64n is Source.Uint64n over the block's word stream: identical
// Lemire rejection, with retries consuming further words in order.
func (b *Block) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(b.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(b.Uint64(), n)
		}
	}
	return hi
}

// Intn is Source.Intn over the block's word stream.
func (b *Block) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(b.Uint64n(uint64(n)))
}

// Remaining reports how many primed words are still unread
// (diagnostic; tests use it to assert exact consumption).
func (b *Block) Remaining() int { return b.n - b.i }
