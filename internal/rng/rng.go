// Package rng provides the deterministic pseudo-random number generator
// used by every sampling structure in this repository.
//
// All IQS structures take an explicit *rng.Source so that experiments are
// reproducible bit-for-bit from a seed, and so that the independence
// guarantees can be audited: a structure draws fresh randomness at query
// time only, never reusing preprocessing randomness across queries.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// splitmix64, which is the standard recommendation for initialising
// xoshiro state. It is not cryptographically secure; it is fast,
// full-period (2^256−1) and passes BigCrush, which is what a sampling
// library needs.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic random source. It is NOT safe for concurrent
// use; create one Source per goroutine (use Split for derived streams).
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seeding state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	s := &Source{}
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	// xoshiro must not start in the all-zero state; splitmix64 of any
	// seed cannot produce four zero outputs in a row, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
	return s
}

// Split derives an independent-stream Source from r. The derived stream is
// seeded from two outputs of r, so distinct calls yield distinct streams.
func (r *Source) Split() *Source {
	return New(r.SplitSeed())
}

// SplitSeed consumes exactly the randomness Split would and returns the
// derived stream's seed instead of the stream: New(r.SplitSeed()) is
// byte-identical to r.Split(). The cluster router ships this 8-byte
// seed to a remote node in place of the Source, so a sub-sample drawn
// remotely replays the same stream a local shard fan-out would have
// used.
func (r *Source) SplitSeed() uint64 {
	a := r.Uint64()
	b := r.Uint64()
	return a ^ bits.RotateLeft64(b, 32)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's nearly-divisionless unbiased bounded generation.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// IntRange returns a uniform integer in [lo, hi] inclusive. Panics if
// hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher–Yates, back-to-front).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
// Used only by dataset generators, never by the sampling structures.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
