package rng

import (
	"testing"

	"repro/internal/race"
)

// The bulk layer's one invariant: block generation is stream-identical
// to scalar calls. Every test here drives a Fill/Block path and its
// scalar twin from identically seeded sources and requires the same
// outputs AND the same final generator state.

func sameState(a, b *Source) bool {
	return *a == *b
}

func TestFillUint64MatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		rs, rb := New(uint64(n)+1), New(uint64(n)+1)
		want := make([]uint64, n)
		for i := range want {
			want[i] = rs.Uint64()
		}
		got := make([]uint64, n)
		rb.FillUint64(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: word %d: got %x want %x", n, i, got[i], want[i])
			}
		}
		if !sameState(rs, rb) {
			t.Fatalf("n=%d: final states diverge", n)
		}
	}
}

func TestFillFloat64MatchesScalar(t *testing.T) {
	rs, rb := New(99), New(99)
	want := make([]float64, 500)
	for i := range want {
		want[i] = rs.Float64()
	}
	got := make([]float64, 500)
	rb.FillFloat64(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("float %d: got %v want %v", i, got[i], want[i])
		}
	}
	if !sameState(rs, rb) {
		t.Fatal("final states diverge")
	}
}

func TestFillBoundedMatchesScalar(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 3} {
		rs, rb := New(n), New(n)
		want := make([]uint64, 300)
		for i := range want {
			want[i] = rs.Uint64n(n)
		}
		got := make([]uint64, 300)
		rb.FillBounded(got, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: value %d: got %d want %d", n, i, got[i], want[i])
			}
		}
		if !sameState(rs, rb) {
			t.Fatalf("n=%d: final states diverge", n)
		}
	}
}

// TestBlockMatchesScalar interleaves every Block draw kind and checks
// the consumed stream against the same scalar calls, across priming
// patterns that exercise buffered pops, fallback, and re-priming.
func TestBlockMatchesScalar(t *testing.T) {
	var buf [32]uint64
	for _, prime := range []int{0, 1, 8, 32} {
		rs, rb := New(7), New(7)
		bk := MakeBlock(rb, buf[:])
		// Guaranteed minimum consumption of the loop below per round:
		// 1 (Uint64) + 1 (Float64) + 1 (Uint64n) + 1 (Intn) = 4 words.
		rounds := 20
		primed := prime
		if primed > 4*rounds {
			primed = 4 * rounds
		}
		bk.Prime(primed)
		for i := 0; i < rounds; i++ {
			if g, w := bk.Uint64(), rs.Uint64(); g != w {
				t.Fatalf("prime=%d round %d Uint64: got %x want %x", prime, i, g, w)
			}
			if g, w := bk.Float64(), rs.Float64(); g != w {
				t.Fatalf("prime=%d round %d Float64: got %v want %v", prime, i, g, w)
			}
			if g, w := bk.Uint64n(1000), rs.Uint64n(1000); g != w {
				t.Fatalf("prime=%d round %d Uint64n: got %d want %d", prime, i, g, w)
			}
			if g, w := bk.Intn(17), rs.Intn(17); g != w {
				t.Fatalf("prime=%d round %d Intn: got %d want %d", prime, i, g, w)
			}
		}
		if bk.Remaining() != 0 {
			t.Fatalf("prime=%d: %d primed words unconsumed", prime, bk.Remaining())
		}
		if !sameState(rs, rb) {
			t.Fatalf("prime=%d: final states diverge", prime)
		}
	}
}

func TestBlockRePrime(t *testing.T) {
	var buf [8]uint64
	rs, rb := New(3), New(3)
	bk := MakeBlock(rb, buf[:])
	for chunk := 0; chunk < 5; chunk++ {
		bk.Prime(8)
		for i := 0; i < 8; i++ {
			if g, w := bk.Uint64(), rs.Uint64(); g != w {
				t.Fatalf("chunk %d word %d: got %x want %x", chunk, i, g, w)
			}
		}
	}
	if !sameState(rs, rb) {
		t.Fatal("final states diverge")
	}
}

func TestBlockPrimeUnconsumedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Prime over unconsumed words did not panic")
		}
	}()
	var buf [8]uint64
	bk := MakeBlock(New(1), buf[:])
	bk.Prime(4)
	bk.Uint64()
	bk.Prime(4) // 3 words still unread: must panic
}

// TestBlockZeroAlloc pins the bulk supply as allocation-free: a stack
// buffer plus a Block must add nothing to the heap.
func TestBlockZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race build: allocation counts not asserted")
	}
	r := New(11)
	got := testing.AllocsPerRun(200, func() {
		var buf [64]uint64
		bk := MakeBlock(r, buf[:])
		bk.Prime(64)
		s := uint64(0)
		for i := 0; i < 64; i++ {
			s += bk.Uint64()
		}
		if s == 0 {
			t.Fatal("unexpected zero sum")
		}
	})
	if got != 0 {
		t.Errorf("Block loop: %v allocs/op, want 0", got)
	}
	fl := make([]float64, 256)
	got = testing.AllocsPerRun(200, func() { r.FillFloat64(fl) })
	if got != 0 {
		t.Errorf("FillFloat64: %v allocs/op, want 0", got)
	}
}

func BenchmarkUint64Scalar(b *testing.B) {
	r := New(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += r.Uint64()
	}
	sinkU64 = s
}

func BenchmarkFillUint64(b *testing.B) {
	r := New(1)
	buf := make([]uint64, 1024)
	b.SetBytes(8 * 1024)
	for i := 0; i < b.N; i++ {
		r.FillUint64(buf)
	}
	sinkU64 = buf[0]
}

func BenchmarkFillBounded(b *testing.B) {
	r := New(1)
	buf := make([]uint64, 1024)
	for i := 0; i < b.N; i++ {
		r.FillBounded(buf, 12345)
	}
	sinkU64 = buf[0]
}

func BenchmarkFillFloat64(b *testing.B) {
	r := New(1)
	buf := make([]float64, 1024)
	for i := 0; i < b.N; i++ {
		r.FillFloat64(buf)
	}
	sinkF64 = buf[0]
}

var (
	sinkU64 uint64
	sinkF64 float64
)
