package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestSplitIndependent(t *testing.T) {
	r := New(7)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams produced %d identical outputs out of 100", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntRange(t *testing.T) {
	r := New(11)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("IntRange(-3,3) hit only %d of 7 values in 1000 draws", len(seen))
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	// standard error is 1/sqrt(12n) ≈ 0.00065; allow 6 sigma.
	if math.Abs(mean-0.5) > 0.004 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	// chi-square with 9 dof; critical value at alpha=1e-4 is ~33.7.
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 33.7 {
		t.Fatalf("Intn uniformity chi2 = %v (counts %v)", chi2, counts)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(19)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	const draws = 100000
	heads := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			heads++
		}
	}
	p := float64(heads) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(29)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("Perm first-element count[%d] = %d, expected ~%v", i, c, expected)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(37)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("exponential mean = %v", sum/n)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000003)
	}
	_ = sink
}

func TestUint64nLargeBound(t *testing.T) {
	// Bounds near 2^64 exercise the rejection branch of Lemire's method.
	r := New(91)
	huge := uint64(1)<<63 + 12345
	for i := 0; i < 2000; i++ {
		if v := r.Uint64n(huge); v >= huge {
			t.Fatalf("Uint64n returned %d >= bound", v)
		}
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(3, 1) did not panic")
		}
	}()
	New(1).IntRange(3, 1)
}
