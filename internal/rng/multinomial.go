package rng

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadMultinomial is returned by Multinomial for weights that are
// negative, NaN or infinite, or that sum to zero (or overflow to +Inf).
var ErrBadMultinomial = errors.New("rng: multinomial weights must be non-negative, finite, with positive sum")

// Multinomial draws one sample from the multinomial distribution: s
// independent category draws with P(category i) = weights[i]/ΣW,
// returned as per-category counts. The marginal of counts[i] is
// Binomial(s, weights[i]/ΣW). Zero weights are allowed and always
// receive count 0; s ≤ 0 returns all-zero counts.
//
// This is the "multinomial split" primitive of Lemma 2 / Theorem 3 —
// how a sample budget is divided across canonical pieces (and, at the
// system level, across shards) so that per-piece sampling composes into
// an exact global sample. It uses the same Walker alias mechanism as
// internal/alias.Counts, reimplemented here because package alias
// depends on rng; callers that already hold an *alias.Alias should keep
// using Counts. O(len(weights) + s) time.
func Multinomial(r *Source, s int, weights []float64) ([]int, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("%w: no categories", ErrBadMultinomial)
	}
	counts := make([]int, n)
	// Collect the strictly positive categories; the draw runs over those
	// and maps back through idx.
	idx := make([]int, 0, n)
	pos := make([]float64, 0, n)
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("%w: weights[%d] = %v", ErrBadMultinomial, i, w)
		}
		if w > 0 {
			idx = append(idx, i)
			pos = append(pos, w)
			total += w
		}
	}
	if !(total > 0) || math.IsInf(total, 1) {
		return nil, fmt.Errorf("%w: total = %v", ErrBadMultinomial, total)
	}
	if s <= 0 {
		return counts, nil
	}
	if len(pos) == 1 {
		counts[idx[0]] = s
		return counts, nil
	}

	// Walker alias construction over the positive categories (see
	// internal/alias for the annotated version): scale so the average urn
	// load is 1, then pair each under-full urn with an over-full one.
	m := len(pos)
	prob := make([]float64, m)
	alias := make([]int32, m)
	scaled := make([]float64, m)
	scale := float64(m) / total
	for i, w := range pos {
		scaled[i] = w * scale
	}
	small := make([]int32, 0, m)
	large := make([]int32, 0, m)
	for i := m - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		sm := small[len(small)-1]
		small = small[:len(small)-1]
		lg := large[len(large)-1]
		prob[sm] = scaled[sm]
		alias[sm] = lg
		scaled[lg] -= 1 - scaled[sm]
		if scaled[lg] < 1 {
			large = large[:len(large)-1]
			small = append(small, lg)
		}
	}
	for _, lg := range large {
		prob[lg] = 1
		alias[lg] = lg
	}
	for _, sm := range small {
		prob[sm] = 1
		alias[sm] = sm
	}

	for i := 0; i < s; i++ {
		u := r.Intn(m)
		j := u
		if r.Float64() >= prob[u] {
			j = int(alias[u])
		}
		counts[idx[j]]++
	}
	return counts, nil
}
