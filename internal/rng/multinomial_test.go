package rng

import (
	"errors"
	"math"
	"testing"
)

func TestMultinomialCountsSumToBudget(t *testing.T) {
	r := New(1)
	weights := []float64{3, 0, 1, 2.5, 0.5}
	for _, s := range []int{0, 1, 7, 1000} {
		counts, err := Multinomial(r, s, weights)
		if err != nil {
			t.Fatalf("Multinomial(s=%d): %v", s, err)
		}
		if len(counts) != len(weights) {
			t.Fatalf("got %d counts, want %d", len(counts), len(weights))
		}
		sum := 0
		for i, c := range counts {
			if c < 0 {
				t.Fatalf("negative count at %d", i)
			}
			if weights[i] == 0 && c != 0 {
				t.Fatalf("zero-weight category %d got %d draws", i, c)
			}
			sum += c
		}
		if sum != s {
			t.Fatalf("counts sum to %d, want %d", sum, s)
		}
	}
}

// TestMultinomialBinomialMarginals checks that counts[i] behaves like
// Binomial(s, w_i/W): over many trials the empirical mean and variance
// must match s·p and s·p·(1−p) within generous sampling tolerance.
func TestMultinomialBinomialMarginals(t *testing.T) {
	r := New(7)
	weights := []float64{5, 1, 0, 3, 1}
	totalW := 10.0
	const (
		s      = 200
		trials = 4000
	)
	sums := make([]float64, len(weights))
	sqSums := make([]float64, len(weights))
	for tr := 0; tr < trials; tr++ {
		counts, err := Multinomial(r, s, weights)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			sums[i] += float64(c)
			sqSums[i] += float64(c) * float64(c)
		}
	}
	for i, w := range weights {
		p := w / totalW
		mean := sums[i] / trials
		variance := sqSums[i]/trials - mean*mean
		wantMean := float64(s) * p
		wantVar := float64(s) * p * (1 - p)
		// Mean of `trials` i.i.d. Binomials has sd sqrt(wantVar/trials);
		// allow 6 sigma. Variance allowed a loose 20% relative band.
		if tol := 6 * math.Sqrt(wantVar/trials); math.Abs(mean-wantMean) > tol+1e-9 {
			t.Errorf("category %d: mean %.3f, want %.3f ± %.3f", i, mean, wantMean, tol)
		}
		if wantVar > 0 && math.Abs(variance-wantVar) > 0.2*wantVar+1 {
			t.Errorf("category %d: variance %.3f, want ≈ %.3f", i, variance, wantVar)
		}
	}
}

func TestMultinomialSingleCategory(t *testing.T) {
	r := New(3)
	counts, err := Multinomial(r, 42, []float64{0, 9, 0})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 || counts[1] != 42 || counts[2] != 0 {
		t.Fatalf("got %v, want all 42 draws on category 1", counts)
	}
}

func TestMultinomialBadWeights(t *testing.T) {
	r := New(5)
	for _, weights := range [][]float64{
		nil,
		{},
		{0, 0},
		{1, -0.5},
		{1, math.NaN()},
		{1, math.Inf(1)},
	} {
		if _, err := Multinomial(r, 10, weights); !errors.Is(err, ErrBadMultinomial) {
			t.Errorf("weights %v: got err %v, want ErrBadMultinomial", weights, err)
		}
	}
}

// TestMultinomialChiSquare checks the joint distribution against the
// weights with a chi-square goodness-of-fit on one large draw. (The
// alias package cannot be imported here — it depends on rng — so the
// equivalence with alias.Counts is distributional, not bitwise.)
func TestMultinomialChiSquare(t *testing.T) {
	r := New(11)
	weights := []float64{8, 4, 2, 1, 1}
	totalW := 16.0
	const s = 160000
	counts, err := Multinomial(r, s, weights)
	if err != nil {
		t.Fatal(err)
	}
	stat := 0.0
	for i, w := range weights {
		e := float64(s) * w / totalW
		d := float64(counts[i]) - e
		stat += d * d / e
	}
	// dof = 4; P(χ²₄ > 23) ≈ 1.3e-4 — a deterministic seed keeps this
	// stable across runs.
	if stat > 23 {
		t.Fatalf("chi-square %.2f too large for counts %v", stat, counts)
	}
}
