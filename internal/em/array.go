package em

import "fmt"

// Array is a vector of fixed-stride records stored across consecutive
// disk blocks. A record is `stride` words; records never straddle block
// boundaries (each block holds ⌊B/stride⌋ records), so a record access
// costs exactly one I/O and a sequential scan costs ⌈n·stride/B⌉-ish
// I/Os.
type Array struct {
	dev     *Device
	first   BlockID
	n       int // number of records
	stride  int
	perBlk  int // records per block
	nBlocks int
}

// NewArray allocates an EM array of n records with the given stride.
func NewArray(dev *Device, n, stride int) *Array {
	if stride < 1 || stride > dev.b {
		panic(fmt.Sprintf("em: stride %d invalid for block size %d", stride, dev.b))
	}
	perBlk := dev.b / stride
	nBlocks := (n + perBlk - 1) / perBlk
	if nBlocks == 0 {
		nBlocks = 1
	}
	return &Array{
		dev:     dev,
		first:   dev.Alloc(nBlocks),
		n:       n,
		stride:  stride,
		perBlk:  perBlk,
		nBlocks: nBlocks,
	}
}

// Len returns the number of records.
func (a *Array) Len() int { return a.n }

// Stride returns the record width in words.
func (a *Array) Stride() int { return a.stride }

// Blocks returns the number of blocks occupied (the space metric).
func (a *Array) Blocks() int { return a.nBlocks }

// blockOf returns the block id and in-block offset (in words) of record i.
func (a *Array) blockOf(i int) (BlockID, int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("em: record %d out of [0,%d)", i, a.n))
	}
	return a.first + BlockID(i/a.perBlk), (i % a.perBlk) * a.stride
}

// Get reads record i into dst (length ≥ stride): one I/O.
func (a *Array) Get(i int, dst []Word) {
	id, off := a.blockOf(i)
	buf := make([]Word, a.dev.b)
	a.dev.Read(id, buf)
	copy(dst, buf[off:off+a.stride])
}

// Set writes record i from src: one read-modify-write (2 I/Os, as the
// model requires whole-block transfers).
func (a *Array) Set(i int, src []Word) {
	id, off := a.blockOf(i)
	buf := make([]Word, a.dev.b)
	a.dev.Read(id, buf)
	copy(buf[off:off+a.stride], src[:a.stride])
	a.dev.Write(id, buf)
}

// Scanner reads records sequentially at one I/O per block.
type Scanner struct {
	a    *Array
	next int
	buf  []Word
	blk  BlockID // currently buffered block, -1 if none
}

// Scan returns a Scanner positioned at record `from`.
func (a *Array) Scan(from int) *Scanner {
	return &Scanner{a: a, next: from, buf: make([]Word, a.dev.b), blk: -1}
}

// Next reads the next record into dst and reports whether one was read.
func (s *Scanner) Next(dst []Word) bool {
	if s.next >= s.a.n {
		return false
	}
	id, off := s.a.blockOf(s.next)
	if id != s.blk {
		s.a.dev.Read(id, s.buf)
		s.blk = id
	}
	copy(dst, s.buf[off:off+s.a.stride])
	s.next++
	return true
}

// Pos returns the index of the record Next will read.
func (s *Scanner) Pos() int { return s.next }

// RandomReader reads records in arbitrary order while buffering one
// block: consecutive reads within the same block cost no extra I/O, so a
// monotone sequence of record indexes costs at most one I/O per distinct
// block — the access pattern behind the sort-based batch sampling of
// Section 8.
type RandomReader struct {
	a   *Array
	buf []Word
	blk BlockID
}

// RandomReader returns a reader with an empty buffer.
func (a *Array) RandomReader() *RandomReader {
	return &RandomReader{a: a, buf: make([]Word, a.dev.b), blk: -1}
}

// Get reads record i into dst, costing one I/O only when i's block is
// not the buffered one.
func (r *RandomReader) Get(i int, dst []Word) {
	id, off := r.a.blockOf(i)
	if id != r.blk {
		r.a.dev.Read(id, r.buf)
		r.blk = id
	}
	copy(dst, r.buf[off:off+r.a.stride])
}

// Writer writes records sequentially at one I/O per block (flushing each
// block once when it fills or on Flush).
type Writer struct {
	a     *Array
	next  int
	buf   []Word
	blk   BlockID
	dirty bool
}

// Write returns a Writer positioned at record `from`. Writing must
// proceed strictly sequentially.
func (a *Array) Write(from int) *Writer {
	w := &Writer{a: a, next: from, buf: make([]Word, a.dev.b), blk: -1}
	return w
}

// Append writes src as the next record.
func (w *Writer) Append(src []Word) {
	if w.next >= w.a.n {
		panic("em: Writer past end of array")
	}
	id, off := w.a.blockOf(w.next)
	if id != w.blk {
		w.flush()
		// Partial leading block: preserve existing contents.
		if off != 0 || w.next+w.a.perBlk-1 >= w.a.n {
			w.a.dev.Read(id, w.buf)
		} else {
			for i := range w.buf {
				w.buf[i] = 0
			}
		}
		w.blk = id
	}
	copy(w.buf[off:off+w.a.stride], src[:w.a.stride])
	w.dirty = true
	w.next++
}

func (w *Writer) flush() {
	if w.dirty && w.blk >= 0 {
		w.a.dev.Write(w.blk, w.buf)
		w.dirty = false
	}
}

// Flush writes out the buffered block; call once after the last Append.
func (w *Writer) Flush() { w.flush() }
