package em

import (
	"errors"
	"testing"
)

func TestFaultInjectionDeterministic(t *testing.T) {
	mk := func() *Device {
		d, err := NewDevice(4, 16)
		if err != nil {
			t.Fatal(err)
		}
		d.Alloc(4)
		d.SetFaultPolicy(&FaultPolicy{ReadFailProb: 0.5, WriteFailProb: 0.5, Seed: 11})
		return d
	}
	trace := func(d *Device) []bool {
		var out []bool
		buf := make([]Word, d.B())
		for i := 0; i < 64; i++ {
			out = append(out, d.TryRead(BlockID(i%4), buf) != nil)
			out = append(out, d.TryWrite(BlockID(i%4), buf) != nil)
		}
		return out
	}
	a, b := trace(mk()), trace(mk())
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault stream not deterministic at op %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("implausible fault count %d/%d at p=0.5", faults, len(a))
	}
}

func TestFaultErrorMatchesSentinelAndSkipsIO(t *testing.T) {
	d, err := NewDevice(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	d.Alloc(1)
	d.SetFaultPolicy(&FaultPolicy{ReadFailProb: 1, Seed: 1})
	buf := make([]Word, 4)
	rerr := d.TryRead(0, buf)
	if rerr == nil || !errors.Is(rerr, ErrFault) {
		t.Fatalf("want fault matching ErrFault, got %v", rerr)
	}
	var fe *FaultError
	if !errors.As(rerr, &fe) || fe.Op != "read" {
		t.Fatalf("want *FaultError{Op: read}, got %#v", rerr)
	}
	if d.Reads() != 0 {
		t.Fatalf("faulted read counted as I/O: %d", d.Reads())
	}
	if d.FaultsInjected() != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", d.FaultsInjected())
	}
}

func TestMaxConsecutiveForcesProgress(t *testing.T) {
	d, err := NewDevice(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	d.Alloc(1)
	d.SetFaultPolicy(&FaultPolicy{ReadFailProb: 1, MaxConsecutive: 3, Seed: 2})
	buf := make([]Word, 4)
	run := 0
	for i := 0; i < 20; i++ {
		if d.TryRead(0, buf) != nil {
			run++
			if run > 3 {
				t.Fatalf("run of %d consecutive faults exceeds cap 3", run)
			}
		} else {
			run = 0
		}
	}
	if d.Reads() == 0 {
		t.Fatal("no read ever succeeded despite MaxConsecutive cap")
	}
}

func TestWithRetryExhaustionAndRecovery(t *testing.T) {
	// Fails twice, then succeeds: WithRetry should absorb the faults.
	n := 0
	err := WithRetry(RetryPolicy{MaxAttempts: 5}, func() error {
		n++
		if n < 3 {
			return &FaultError{Op: "read", Block: 0}
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("want success after 3 attempts, got err=%v n=%d", err, n)
	}
	// Always fails: the exhaustion error still matches ErrFault.
	err = WithRetry(RetryPolicy{MaxAttempts: 3}, func() error {
		return &FaultError{Op: "write", Block: 1}
	})
	if err == nil || !errors.Is(err, ErrFault) {
		t.Fatalf("want exhausted fault error, got %v", err)
	}
	// Non-fault errors are not retried.
	boom := errors.New("boom")
	n = 0
	err = WithRetry(RetryPolicy{MaxAttempts: 5}, func() error { n++; return boom })
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("non-fault error retried: err=%v n=%d", err, n)
	}
}

func TestCatchFaultConvertsPanic(t *testing.T) {
	d, err := NewDevice(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	d.Alloc(1)
	d.SetFaultPolicy(&FaultPolicy{WriteFailProb: 1, Seed: 3})
	buf := make([]Word, 4)
	cerr := CatchFault(func() { d.Write(0, buf) })
	if cerr == nil || !errors.Is(cerr, ErrFault) {
		t.Fatalf("want caught fault, got %v", cerr)
	}
	// Non-fault panics must propagate.
	defer func() {
		if recover() == nil {
			t.Fatal("non-fault panic swallowed")
		}
	}()
	_ = CatchFault(func() { panic("other") })
}
