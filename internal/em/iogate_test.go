package em

import (
	"context"
	"testing"
	"time"
)

func TestIOGateNil(t *testing.T) {
	var g *IOGate
	if g2 := NewIOGate(0, 10); g2 != nil {
		t.Fatal("rate 0 should return nil gate")
	}
	if err := g.Admit(context.Background(), 1000); err != nil {
		t.Fatalf("nil gate must admit: %v", err)
	}
	if g.Waits() != 0 {
		t.Fatal("nil gate reports no waits")
	}
}

func TestIOGatePacesToRate(t *testing.T) {
	// 10k blocks/s, small burst: admitting 1000 blocks in 100-block
	// requests must take roughly 100ms (1000/10000 s), well above 50ms.
	g := NewIOGate(10_000, 200)
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := g.Admit(context.Background(), 100); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("1000 blocks at 10k/s finished in %v; gate not pacing", el)
	}
	if g.Waits() == 0 {
		t.Fatal("oversubscribed gate should record waits")
	}
}

func TestIOGateBurstAdmitsImmediately(t *testing.T) {
	g := NewIOGate(1000, 500)
	start := time.Now()
	if err := g.Admit(context.Background(), 400); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if el := time.Since(start); el > 20*time.Millisecond {
		t.Fatalf("within-burst admit took %v", el)
	}
}

func TestIOGateRespectsContext(t *testing.T) {
	g := NewIOGate(10, 1) // 10 blocks/s
	// First oversized admit rides the burst into debt; the second must
	// wait ~10s for the debt to clear and the deadline fires first.
	if err := g.Admit(context.Background(), 100); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := g.Admit(ctx, 1); err == nil {
		t.Fatal("expected context deadline error")
	}
}

func TestIOGateOversizedCostDoesNotDeadlock(t *testing.T) {
	g := NewIOGate(1000, 100)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	// Cost above burst admits once the bucket covers a full burst and
	// goes into debt instead of waiting for unreachable credits.
	if err := g.Admit(ctx, 10_000); err != nil {
		t.Fatalf("oversized admit should not deadlock, got %v", err)
	}
}

func TestIOBlocks(t *testing.T) {
	if got := IOBlocks(1<<20, 1024, 1024); got < 2 || got > 5 {
		t.Fatalf("IOBlocks(1M, 1024, 1024) = %d, want locate+1 stream blocks", got)
	}
	if got := IOBlocks(100, 0, 1024); got < 1 {
		t.Fatalf("zero-budget draw still locates: %d", got)
	}
	if got := IOBlocks(100, 7, 1); got != 8 {
		t.Fatalf("B<=1 degrades to per-sample I/O: got %d, want 8", got)
	}
	if got := IOBlocks(100, -3, 8); got < 1 {
		t.Fatalf("negative k clamps: %d", got)
	}
}
