// Package em simulates the external memory (EM) model of Aggarwal and
// Vitter, the setting of Section 8 of the paper: a machine with M words
// of memory and a disk formatted into blocks of B words; an I/O reads or
// writes one block; the cost of an algorithm is the number of I/Os (CPU
// time is free); the space of a structure is the number of blocks
// occupied.
//
// The Device type is the simulated disk: it allocates blocks, serves
// reads and writes of whole blocks, and counts I/Os. Algorithms in this
// package and in internal/emiqs are written to respect the memory budget
// M — they never materialise more than O(M) words in RAM at a time — so
// the I/O counters reproduce the model's cost metric exactly (DESIGN.md
// substitution 5).
package em

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Word is the unit of storage in the model.
type Word = float64

// BlockID identifies a disk block.
type BlockID int

// ErrBadGeometry is returned for invalid M/B configurations.
var ErrBadGeometry = errors.New("em: need B >= 1 and M >= 2B")

// Device is a simulated disk with I/O accounting and optional
// transient-fault injection (see FaultPolicy). A Device is not safe for
// concurrent use; callers that share one across goroutines (e.g. the
// service layer's EM mirror) must serialise access externally. The I/O
// counters are atomic so observability scrapers may read them while an
// externally-serialised operation is in flight.
type Device struct {
	b, m   int
	blocks [][]Word
	reads  atomic.Int64
	writes atomic.Int64
	faults *faultState // nil when fault injection is off
}

// NewDevice creates a device with block size b words and memory capacity
// m words. The model requires m ≥ 2b (the memory holds at least two
// blocks).
func NewDevice(b, m int) (*Device, error) {
	if b < 1 || m < 2*b {
		return nil, fmt.Errorf("%w: B=%d M=%d", ErrBadGeometry, b, m)
	}
	return &Device{b: b, m: m}, nil
}

// B returns the block size in words.
func (d *Device) B() int { return d.b }

// M returns the memory capacity in words.
func (d *Device) M() int { return d.m }

// Alloc reserves n fresh zeroed blocks and returns the id of the first;
// the ids are consecutive.
func (d *Device) Alloc(n int) BlockID {
	first := BlockID(len(d.blocks))
	for i := 0; i < n; i++ {
		d.blocks = append(d.blocks, make([]Word, d.b))
	}
	return first
}

// NumBlocks returns the number of allocated blocks (the space metric).
func (d *Device) NumBlocks() int { return len(d.blocks) }

// TryRead copies block id into dst (which must have length ≥ B) and
// counts one I/O. Under an installed FaultPolicy it may instead return a
// *FaultError without transferring the block.
func (d *Device) TryRead(id BlockID, dst []Word) error {
	if int(id) < 0 || int(id) >= len(d.blocks) {
		panic(fmt.Sprintf("em: read of unallocated block %d", id))
	}
	if d.faults != nil {
		if err := d.faults.decide("read", d.faults.policy.ReadFailProb, id); err != nil {
			return err
		}
	}
	d.reads.Add(1)
	copy(dst, d.blocks[id])
	return nil
}

// Read is TryRead for callers that treat the device as infallible (all
// the in-package access structures). An injected fault surfaces as a
// *FaultError panic, which em.CatchFault or the service layer's panic
// containment converts back into an error at the operation boundary.
func (d *Device) Read(id BlockID, dst []Word) {
	if err := d.TryRead(id, dst); err != nil {
		panic(err.(*FaultError))
	}
}

// TryWrite copies src (length ≤ B) into block id and counts one I/O.
// Under an installed FaultPolicy it may instead return a *FaultError
// without touching the block.
func (d *Device) TryWrite(id BlockID, src []Word) error {
	if int(id) < 0 || int(id) >= len(d.blocks) {
		panic(fmt.Sprintf("em: write of unallocated block %d", id))
	}
	if len(src) > d.b {
		panic("em: write larger than block")
	}
	if d.faults != nil {
		if err := d.faults.decide("write", d.faults.policy.WriteFailProb, id); err != nil {
			return err
		}
	}
	d.writes.Add(1)
	copy(d.blocks[id], src)
	return nil
}

// Write is TryWrite for infallible callers; injected faults panic with a
// *FaultError exactly like Read.
func (d *Device) Write(id BlockID, src []Word) {
	if err := d.TryWrite(id, src); err != nil {
		panic(err.(*FaultError))
	}
}

// Reads returns the read I/O count since the last ResetStats.
func (d *Device) Reads() int64 { return d.reads.Load() }

// Writes returns the write I/O count since the last ResetStats.
func (d *Device) Writes() int64 { return d.writes.Load() }

// IOs returns reads + writes.
func (d *Device) IOs() int64 { return d.reads.Load() + d.writes.Load() }

// ResetStats zeroes the I/O counters (block contents are untouched).
func (d *Device) ResetStats() { d.reads.Store(0); d.writes.Store(0) }
