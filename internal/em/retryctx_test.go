package em

import (
	"context"
	"errors"
	"testing"
	"time"
)

// An already-cancelled context must short-circuit before op ever runs.
func TestWithRetryContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	start := time.Now()
	err := WithRetryContext(ctx, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Second}, func() error {
		n++
		return ErrFault
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n != 0 {
		t.Fatalf("op ran %d times on a dead context", n)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cancelled retry took %v; backoff must not sleep", d)
	}
}

// Cancellation during backoff must cut the sleep short and surface both
// the context error and the last fault.
func TestWithRetryContextCancelsMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	start := time.Now()
	err := WithRetryContext(ctx, RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Second}, func() error {
		n++
		cancel() // fire while the loop is about to back off
		return ErrFault
	})
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancel mid-backoff took %v; timer must wake on Done", d)
	}
	if n != 1 {
		t.Fatalf("op ran %d times, want 1", n)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrFault) {
		t.Fatalf("want both context.Canceled and ErrFault in chain, got %v", err)
	}
}

// A deadline that expires between zero-delay attempts stops the loop
// even though there is no timer to interrupt.
func TestWithRetryContextZeroDelayHonoursDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := WithRetryContext(ctx, RetryPolicy{MaxAttempts: 1000}, func() error {
		n++
		if n == 3 {
			cancel()
		}
		return ErrFault
	})
	if n != 3 {
		t.Fatalf("op ran %d times, want 3", n)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// The context-free wrapper keeps its exact legacy behaviour: retries run
// to exhaustion and wrap the final fault.
func TestWithRetryContextBackgroundMatchesWithRetry(t *testing.T) {
	n := 0
	err := WithRetryContext(context.Background(), RetryPolicy{MaxAttempts: 4}, func() error {
		n++
		return ErrFault
	})
	if n != 4 || !errors.Is(err, ErrFault) {
		t.Fatalf("n=%d err=%v, want 4 attempts ending in ErrFault", n, err)
	}
}
