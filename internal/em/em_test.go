package em

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDeviceGeometry(t *testing.T) {
	if _, err := NewDevice(0, 10); err == nil {
		t.Fatal("B=0 accepted")
	}
	if _, err := NewDevice(8, 8); err == nil {
		t.Fatal("M<2B accepted")
	}
	d, err := NewDevice(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.B() != 8 || d.M() != 16 {
		t.Fatalf("B/M = %d/%d", d.B(), d.M())
	}
}

func TestDeviceReadWriteCounts(t *testing.T) {
	d, err := NewDevice(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	id := d.Alloc(2)
	if d.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d", d.NumBlocks())
	}
	d.Write(id, []Word{1, 2, 3, 4})
	buf := make([]Word, 4)
	d.Read(id, buf)
	if buf[2] != 3 {
		t.Fatalf("read back %v", buf)
	}
	if d.Reads() != 1 || d.Writes() != 1 || d.IOs() != 2 {
		t.Fatalf("stats %d/%d", d.Reads(), d.Writes())
	}
	d.ResetStats()
	if d.IOs() != 0 {
		t.Fatal("ResetStats did not reset")
	}
}

func TestDevicePanics(t *testing.T) {
	d, _ := NewDevice(4, 8)
	for _, fn := range []func(){
		func() { d.Read(5, make([]Word, 4)) },
		func() { d.Write(0, make([]Word, 4)) }, // unallocated
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestArrayGetSet(t *testing.T) {
	d, _ := NewDevice(8, 64)
	a := NewArray(d, 10, 2)
	for i := 0; i < 10; i++ {
		a.Set(i, []Word{float64(i), float64(i * 10)})
	}
	rec := make([]Word, 2)
	for i := 0; i < 10; i++ {
		a.Get(i, rec)
		if rec[0] != float64(i) || rec[1] != float64(i*10) {
			t.Fatalf("record %d = %v", i, rec)
		}
	}
	// 8 words/block, stride 2 → 4 records per block → 3 blocks for 10.
	if a.Blocks() != 3 {
		t.Fatalf("Blocks = %d", a.Blocks())
	}
}

func TestScannerIOCount(t *testing.T) {
	d, _ := NewDevice(16, 64)
	const n = 100
	a := NewArray(d, n, 1)
	w := a.Write(0)
	for i := 0; i < n; i++ {
		w.Append([]Word{float64(i)})
	}
	w.Flush()
	d.ResetStats()
	sc := a.Scan(0)
	rec := make([]Word, 1)
	cnt := 0
	for sc.Next(rec) {
		if rec[0] != float64(cnt) {
			t.Fatalf("record %d = %v", cnt, rec[0])
		}
		cnt++
	}
	if cnt != n {
		t.Fatalf("scanned %d", cnt)
	}
	wantIOs := int64((n + 15) / 16)
	if d.Reads() != wantIOs {
		t.Fatalf("scan reads = %d, want %d", d.Reads(), wantIOs)
	}
}

func TestWriterIOCount(t *testing.T) {
	d, _ := NewDevice(16, 64)
	const n = 64
	a := NewArray(d, n, 1)
	d.ResetStats()
	w := a.Write(0)
	for i := 0; i < n; i++ {
		w.Append([]Word{float64(i)})
	}
	w.Flush()
	if d.Writes() != 4 {
		t.Fatalf("writes = %d, want 4 (sequential blocks)", d.Writes())
	}
}

func TestSortCorrect(t *testing.T) {
	f := func(raw []uint16, bExp, mExp uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 500 {
			raw = raw[:500]
		}
		b := 4 + int(bExp%4)*4
		m := 2*b + int(mExp%4)*b
		d, err := NewDevice(b, m)
		if err != nil {
			return false
		}
		n := len(raw)
		a := NewArray(d, n, 2)
		w := a.Write(0)
		for i, v := range raw {
			w.Append([]Word{float64(v), float64(i)})
		}
		w.Flush()
		Sort(d, a)
		// Read back: keys ascending, payload permuted consistently.
		sc := a.Scan(0)
		rec := make([]Word, 2)
		var keys []float64
		seenPayload := map[int]bool{}
		for sc.Next(rec) {
			keys = append(keys, rec[0])
			p := int(rec[1])
			if p < 0 || p >= n || seenPayload[p] {
				return false
			}
			if float64(raw[p]) != rec[0] {
				return false // payload separated from its key
			}
			seenPayload[p] = true
		}
		if len(keys) != n {
			return false
		}
		return sort.Float64sAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortIOComplexity(t *testing.T) {
	// I/O count should be Θ((n/B)·log_{M/B}(n/B)); check against a
	// generous constant.
	const n = 1 << 14
	b, m := 64, 1024
	d, _ := NewDevice(b, m)
	a := NewArray(d, n, 1)
	r := rng.New(1)
	w := a.Write(0)
	for i := 0; i < n; i++ {
		w.Append([]Word{r.Float64()})
	}
	w.Flush()
	d.ResetStats()
	Sort(d, a)
	nb := float64(n) / float64(b)
	logTerm := math.Log(nb) / math.Log(float64(m)/float64(b))
	bound := int64(8 * nb * (logTerm + 1))
	if d.IOs() > bound {
		t.Fatalf("sort I/Os = %d exceeds bound %d", d.IOs(), bound)
	}
	// And it must genuinely be sorted.
	sc := a.Scan(0)
	rec := make([]Word, 1)
	last := math.Inf(-1)
	for sc.Next(rec) {
		if rec[0] < last {
			t.Fatal("not sorted")
		}
		last = rec[0]
	}
}

func TestSortTiny(t *testing.T) {
	d, _ := NewDevice(4, 8)
	a := NewArray(d, 1, 1)
	w := a.Write(0)
	w.Append([]Word{5})
	w.Flush()
	Sort(d, a)
	rec := make([]Word, 1)
	a.Get(0, rec)
	if rec[0] != 5 {
		t.Fatalf("got %v", rec[0])
	}
}

func TestArrayPanics(t *testing.T) {
	d, _ := NewDevice(8, 64)
	for _, fn := range []func(){
		func() { NewArray(d, 3, 0) },
		func() { NewArray(d, 3, 9) },
		func() { a := NewArray(d, 3, 1); a.Get(3, make([]Word, 1)) },
		func() { a := NewArray(d, 3, 1); a.Get(-1, make([]Word, 1)) },
		func() {
			a := NewArray(d, 1, 1)
			w := a.Write(0)
			w.Append([]Word{1})
			w.Append([]Word{2}) // past end
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBTreeLenHeight(t *testing.T) {
	d, _ := NewDevice(8, 64)
	a := buildSortedArray(t, d, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	bt, err := BuildBTree(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Len() != 10 {
		t.Fatalf("Len = %d", bt.Len())
	}
	if bt.Height() < 1 {
		t.Fatalf("Height = %d", bt.Height())
	}
}

func TestWriterMidStreamStart(t *testing.T) {
	// Writing from a non-zero, non-block-aligned offset must preserve
	// preceding content.
	d, _ := NewDevice(4, 8)
	a := NewArray(d, 8, 1)
	w := a.Write(0)
	for i := 0; i < 8; i++ {
		w.Append([]Word{float64(i)})
	}
	w.Flush()
	w2 := a.Write(2)
	w2.Append([]Word{99})
	w2.Flush()
	rec := make([]Word, 1)
	a.Get(1, rec)
	if rec[0] != 1 {
		t.Fatalf("preceding record clobbered: %v", rec[0])
	}
	a.Get(2, rec)
	if rec[0] != 99 {
		t.Fatalf("mid-stream write lost: %v", rec[0])
	}
	a.Get(3, rec)
	if rec[0] != 3 {
		t.Fatalf("following record clobbered: %v", rec[0])
	}
}
