package em

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
)

// Fault injection: real disks fail transiently, and the EM treatment of
// the paper's Section 8 (like the systems it models) must tolerate that.
// A FaultPolicy attached to a Device makes individual block I/Os fail
// with configurable probability and adds optional per-I/O latency, so the
// retry and degradation machinery in internal/emiqs and internal/service
// can be exercised deterministically from a seed.

// ErrFault is the sentinel matched (via errors.Is) by every injected
// transient I/O fault.
var ErrFault = errors.New("em: injected transient I/O fault")

// FaultError reports one injected transient fault. It unwraps to
// ErrFault.
type FaultError struct {
	Op    string // "read" or "write"
	Block BlockID
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("em: injected transient %s fault on block %d", e.Op, e.Block)
}

// Is reports whether target is ErrFault, so errors.Is(err, ErrFault)
// matches any injected fault.
func (e *FaultError) Is(target error) bool { return target == ErrFault }

// FaultPolicy configures transient-fault injection on a Device. The zero
// probability fields make the corresponding operation infallible.
type FaultPolicy struct {
	// ReadFailProb and WriteFailProb are per-I/O probabilities in [0, 1]
	// that the operation fails with a *FaultError instead of transferring
	// the block.
	ReadFailProb  float64
	WriteFailProb float64
	// Latency is added to every I/O (fault or not); zero adds none.
	Latency time.Duration
	// MaxConsecutive, when positive, forces a success after that many
	// consecutive injected faults, guaranteeing the fault stream is
	// transient even at probability 1. Zero means no cap.
	MaxConsecutive int
	// Seed drives the fault decisions deterministically.
	Seed uint64
}

// faultState is the per-device mutable fault bookkeeping. It has its own
// mutex so fault decisions stay race-free even when the Device itself is
// guarded externally.
type faultState struct {
	mu          sync.Mutex
	policy      FaultPolicy
	r           *rng.Source
	consecutive int
	injected    int64
}

// decide returns a *FaultError when this I/O should fail, applying the
// latency and the MaxConsecutive cap.
func (fs *faultState) decide(op string, prob float64, id BlockID) error {
	fs.mu.Lock()
	fail := false
	if prob > 0 && !(fs.policy.MaxConsecutive > 0 && fs.consecutive >= fs.policy.MaxConsecutive) {
		fail = fs.r.Bernoulli(prob)
	}
	if fail {
		fs.consecutive++
		fs.injected++
	} else {
		fs.consecutive = 0
	}
	latency := fs.policy.Latency
	fs.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if fail {
		return &FaultError{Op: op, Block: id}
	}
	return nil
}

// SetFaultPolicy installs (or, with nil, removes) a fault-injection
// policy. With no policy the fallible I/O paths cost nothing extra.
func (d *Device) SetFaultPolicy(p *FaultPolicy) {
	if p == nil {
		d.faults = nil
		return
	}
	d.faults = &faultState{policy: *p, r: rng.New(p.Seed)}
}

// FaultsInjected returns how many transient faults have been injected
// since the policy was installed.
func (d *Device) FaultsInjected() int64 {
	if d.faults == nil {
		return 0
	}
	d.faults.mu.Lock()
	defer d.faults.mu.Unlock()
	return d.faults.injected
}

// RetryPolicy bounds how persistently an EM operation is retried after
// transient faults: up to MaxAttempts tries with exponential backoff
// starting at BaseDelay and capped at MaxDelay.
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// DefaultRetry is a sensible policy for simulated devices: five attempts
// backing off 100µs → 1.6ms.
var DefaultRetry = RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Microsecond, MaxDelay: 5 * time.Millisecond}

// WithRetry runs op, retrying (with exponential backoff) as long as it
// returns an injected transient fault, up to p.MaxAttempts attempts. Any
// other error, and success, return immediately. When the attempts are
// exhausted the last fault is returned wrapped with the attempt count.
func WithRetry(p RetryPolicy, op func() error) error {
	return WithRetryContext(context.Background(), p, op)
}

// WithRetryContext is WithRetry with cancellation-aware backoff: the
// sleeps between attempts wake on ctx.Done(), a cancelled context stops
// the retry loop before the next attempt, and an already-cancelled
// context returns ctx.Err() without running op at all. Cancellation
// after at least one faulted attempt returns the context error wrapped
// around the last fault, so errors.Is still matches both ErrFault and
// the context sentinel.
func WithRetryContext(ctx context.Context, p RetryPolicy, op func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	delay := p.BaseDelay
	var err error
	for a := 0; a < attempts; a++ {
		if err = op(); err == nil || !errors.Is(err, ErrFault) {
			return err
		}
		if a == attempts-1 {
			break
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("em: retry canceled after %d attempts: %w (last fault: %w)", a+1, ctx.Err(), err)
			case <-t.C:
			}
			delay *= 2
			if p.MaxDelay > 0 && delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		} else if ctx.Err() != nil {
			return fmt.Errorf("em: retry canceled after %d attempts: %w (last fault: %w)", a+1, ctx.Err(), err)
		}
	}
	return fmt.Errorf("em: %d attempts exhausted: %w", attempts, err)
}

// CatchFault runs fn and converts a *FaultError panic — the way faults
// surface from the infallible Read/Write used deep inside scanners and
// sort passes — into an ordinary error. Other panics propagate.
func CatchFault(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if fe, ok := r.(*FaultError); ok {
				err = fe
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}
