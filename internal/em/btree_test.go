package em

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func buildSortedArray(t testing.TB, dev *Device, values []float64) *Array {
	t.Helper()
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	a := NewArray(dev, len(sorted), 1)
	w := a.Write(0)
	for _, v := range sorted {
		w.Append([]Word{v})
	}
	w.Flush()
	return a
}

func TestBTreeErrors(t *testing.T) {
	d, _ := NewDevice(8, 64)
	if _, err := BuildBTree(d, NewArray(d, 3, 2)); err == nil {
		t.Fatal("stride-2 accepted")
	}
	// Unsorted input.
	a := NewArray(d, 3, 1)
	w := a.Write(0)
	w.Append([]Word{3})
	w.Append([]Word{1})
	w.Append([]Word{2})
	w.Flush()
	if _, err := BuildBTree(d, a); err != ErrNotSorted {
		t.Fatalf("err = %v", err)
	}
}

func TestBTreeSearchMatchesSort(t *testing.T) {
	r := rng.New(1)
	f := func(raw []uint16, probe uint16) bool {
		if len(raw) == 0 || len(raw) > 400 {
			return true
		}
		d, err := NewDevice(8, 64)
		if err != nil {
			return false
		}
		values := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v % 500)
		}
		a := buildSortedArray(t, d, values)
		bt, err := BuildBTree(d, a)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		x := float64(probe % 520)
		want := sort.SearchFloat64s(sorted, x)
		_ = r
		return bt.Search(x) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRangeReport(t *testing.T) {
	d, _ := NewDevice(16, 128)
	values := make([]float64, 300)
	for i := range values {
		values[i] = float64(i)
	}
	a := buildSortedArray(t, d, values)
	bt, err := BuildBTree(d, a)
	if err != nil {
		t.Fatal(err)
	}
	out := bt.RangeReport(50.5, 60.5, nil)
	if len(out) != 10 {
		t.Fatalf("reported %d values: %v", len(out), out)
	}
	for i, v := range out {
		if v != float64(51+i) {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
	if got := bt.Count(50.5, 60.5); got != 10 {
		t.Fatalf("Count = %d", got)
	}
	if got := bt.Count(1000, 2000); got != 0 {
		t.Fatalf("empty Count = %d", got)
	}
	if got := bt.Count(60, 50); got != 0 {
		t.Fatalf("inverted Count = %d", got)
	}
	if got := bt.Count(0, 299); got != 300 {
		t.Fatalf("full Count = %d", got)
	}
}

func TestBTreeSearchIOCost(t *testing.T) {
	// Search must cost O(log_B n) I/Os, far below a full scan.
	const n = 1 << 14
	d, _ := NewDevice(64, 1024)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	a := buildSortedArray(t, d, values)
	bt, err := BuildBTree(d, a)
	if err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	bt.Search(12345)
	// height+1 levels × ≤2 blocks each, plus the data block.
	bound := int64(2*bt.Height() + 2)
	if d.IOs() > bound {
		t.Fatalf("search I/Os = %d > %d (height %d)", d.IOs(), bound, bt.Height())
	}
}

func TestBTreeReportIOCost(t *testing.T) {
	const n = 1 << 14
	d, _ := NewDevice(64, 1024)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	a := buildSortedArray(t, d, values)
	bt, err := BuildBTree(d, a)
	if err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	const k = 1000
	out := bt.RangeReport(2000, 2000+k-1, nil)
	if len(out) != k {
		t.Fatalf("reported %d", len(out))
	}
	// O(log_B n + k/B): generous bound 2·height + k/B + 3.
	bound := int64(2*bt.Height() + k/64 + 3)
	if d.IOs() > bound {
		t.Fatalf("report I/Os = %d > %d", d.IOs(), bound)
	}
}

func TestBTreeSingleBlock(t *testing.T) {
	d, _ := NewDevice(8, 64)
	a := buildSortedArray(t, d, []float64{1, 2, 3})
	bt, err := BuildBTree(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := bt.Search(2); got != 1 {
		t.Fatalf("Search(2) = %d", got)
	}
	if got := bt.Search(0); got != 0 {
		t.Fatalf("Search(0) = %d", got)
	}
	if got := bt.Search(9); got != 3 {
		t.Fatalf("Search(9) = %d", got)
	}
}
