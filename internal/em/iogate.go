// I/O-aware admission for cluster nodes.
//
// The EM model (Section 8) prices a query by the blocks it touches, not
// the CPU it burns: a node's storage device serves a finite number of
// block reads per second, and that — not cycles — is what saturates a
// data node under a sampling load with large budgets. IOGate turns that
// bound into an admission gate: a token bucket holding "block credits"
// refilled at the device's sustained read rate. A sub-sample draw
// admits its estimated block cost before touching the structure;
// requests queue (respecting their context deadline) when the device
// is oversubscribed, so latency degrades smoothly instead of the node
// thrashing.
//
// Because each node gates on its own device, aggregate cluster
// bandwidth scales with the node count — the property the scale-out
// saturation experiment (EXPERIMENTS.md C1) measures.
package em

import (
	"context"
	"math"
	"sync"
	"time"
)

// IOGate is a token bucket over I/O block credits. The zero rate is
// modelled by a nil gate: all methods are nil-safe no-ops, so callers
// hold one *IOGate field and never branch.
type IOGate struct {
	mu     sync.Mutex
	rate   float64 // credits (blocks) per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time

	waits int64 // admissions that had to wait
}

// NewIOGate returns a gate refilling rate blocks/second with capacity
// burst (burst < rate/100 is raised to rate/100 so single queries fit).
// rate <= 0 returns nil: an absent device bound, admission disabled.
func NewIOGate(rate, burst float64) *IOGate {
	if rate <= 0 {
		return nil
	}
	if burst < rate/100 {
		burst = rate / 100
	}
	return &IOGate{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// IOBlocks estimates the block cost of one range-sampling draw of k
// values from a structure of n elements with block size B: one
// root-to-leaf locate (⌈log_B n⌉, as in the EM structures of §8) plus
// the pooled-sample stream of ⌈k/B⌉ blocks (internal/emiqs pool
// regime). B <= 1 degrades to the one-I/O-per-sample bound.
func IOBlocks(n, k, blockSize int) int {
	if k < 0 {
		k = 0
	}
	if blockSize <= 1 {
		return 1 + k
	}
	locate := 1
	if n > 1 {
		locate += int(math.Ceil(math.Log(float64(n)) / math.Log(float64(blockSize))))
	}
	return locate + (k+blockSize-1)/blockSize
}

// Admit blocks until the gate grants blocks credits or ctx expires.
// A cost above the burst capacity is admitted once the bucket can
// cover a full burst and drives the balance negative — the debt is
// paid down by the refill, so oversized requests are servable but
// still pace the stream to the device rate. Nil gates admit
// immediately.
func (g *IOGate) Admit(ctx context.Context, blocks int) error {
	if g == nil || blocks <= 0 {
		return nil
	}
	need := float64(blocks)
	waited := false
	for {
		g.mu.Lock()
		target := math.Min(need, g.burst)
		now := time.Now()
		g.tokens = math.Min(g.burst, g.tokens+now.Sub(g.last).Seconds()*g.rate)
		g.last = now
		if g.tokens >= target {
			g.tokens -= need
			if waited {
				g.waits++
			}
			g.mu.Unlock()
			return nil
		}
		wait := time.Duration((target - g.tokens) / g.rate * float64(time.Second))
		g.mu.Unlock()
		if wait < 50*time.Microsecond {
			wait = 50 * time.Microsecond
		}
		waited = true
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Waits reports how many admissions had to queue for credits — the
// node's "device saturated" signal.
func (g *IOGate) Waits() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waits
}
