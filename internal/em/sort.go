package em

import (
	"container/heap"
	"sort"
)

// Sort sorts the array's records in place by ascending record[0] (the
// key word), using the textbook EM merge sort: run formation with M-word
// in-memory sorts, then (M/B − 1)-way merge passes. Total cost is
// O((n/B)·log_{M/B}(n/B)) I/Os — the sorting bound the paper's Section 8
// quotes throughout.
func Sort(dev *Device, a *Array) {
	n := a.Len()
	if n <= 1 {
		return
	}
	stride := a.Stride()
	recsPerMem := dev.M() / stride
	if recsPerMem < 1 {
		recsPerMem = 1
	}

	// Phase 1: run formation. Each run is a sorted span of ≤ recsPerMem
	// records, staged through a temp array.
	tmp := NewArray(dev, n, stride)
	var runs []span
	{
		sc := a.Scan(0)
		w := tmp.Write(0)
		buf := make([]Word, recsPerMem*stride)
		rec := make([]Word, stride)
		pos := 0
		for pos < n {
			cnt := 0
			for cnt < recsPerMem && sc.Next(rec) {
				copy(buf[cnt*stride:], rec[:stride])
				cnt++
			}
			// In-memory sort of the run (CPU is free in the model).
			idx := make([]int, cnt)
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(x, y int) bool {
				return buf[idx[x]*stride] < buf[idx[y]*stride]
			})
			for _, i := range idx {
				w.Append(buf[i*stride : i*stride+stride])
			}
			runs = append(runs, span{lo: pos, hi: pos + cnt - 1})
			pos += cnt
		}
		w.Flush()
	}

	// Phase 2: merge passes, alternating between tmp and a second temp
	// (the final pass lands back in a).
	fanout := dev.M()/dev.B() - 1
	if fanout < 2 {
		fanout = 2
	}
	src := tmp
	for len(runs) > 1 {
		var dst *Array
		var nextRuns []span
		// If this pass reduces to a single run, write directly into a.
		if (len(runs)+fanout-1)/fanout == 1 {
			dst = a
		} else {
			dst = NewArray(dev, n, stride)
		}
		w := dst.Write(0)
		for lo := 0; lo < len(runs); lo += fanout {
			hi := lo + fanout
			if hi > len(runs) {
				hi = len(runs)
			}
			group := runs[lo:hi]
			mergeRuns(src, group, w, stride)
			nextRuns = append(nextRuns, span{lo: group[0].lo, hi: group[len(group)-1].hi})
		}
		w.Flush()
		runs = nextRuns
		src = dst
	}
	if src != a {
		// Single run formed directly in tmp (n fit in one memory load):
		// copy back.
		sc := src.Scan(0)
		w := a.Write(0)
		rec := make([]Word, stride)
		for sc.Next(rec) {
			w.Append(rec)
		}
		w.Flush()
	}
}

type mergeHead struct {
	key Word
	rec []Word
	sc  *Scanner
	end int // exclusive record bound of this run
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// span is an inclusive record range forming one sorted run.
type span struct{ lo, hi int }

// mergeRuns merges the given sorted runs of src (each span inclusive)
// into w.
func mergeRuns(src *Array, group []span, w *Writer, stride int) {
	h := make(mergeHeap, 0, len(group))
	for _, rn := range group {
		sc := src.Scan(rn.lo)
		rec := make([]Word, stride)
		if sc.Pos() <= rn.hi && sc.Next(rec) {
			h = append(h, mergeHead{key: rec[0], rec: append([]Word(nil), rec...), sc: sc, end: rn.hi + 1})
		}
	}
	heap.Init(&h)
	rec := make([]Word, stride)
	for h.Len() > 0 {
		top := h[0]
		w.Append(top.rec)
		if top.sc.Pos() < top.end && top.sc.Next(rec) {
			copy(h[0].rec, rec)
			h[0].key = rec[0]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
}
