package em

import (
	"errors"
	"math"
)

// BTree is a static B-tree over a sorted stride-1 Array — the
// conventional EM reporting structure the paper contrasts IQS against in
// Section 8 ("the B-tree achieves the purpose in O(log_B n + k/B)
// I/Os"). Internal nodes are stored one per block and hold up to
// fanout = B/2 (separator, child) pairs; leaves are the data blocks
// themselves. Search costs O(log_B n) I/Os; RangeReport costs
// O(log_B n + k/B).
type BTree struct {
	dev    *Device
	data   *Array // sorted values, stride 1
	perBlk int
	n      int
	fanout int
	// levels[0] is the leaf-summary level: one (minValue, blockIndex)
	// entry per data block, packed into node blocks; higher levels
	// summarise the level below. levels[len-1] is the root (single
	// block).
	levels []*Array // each an Array of stride-2 records (key, child)
}

// ErrNotSorted is returned when the input array is not sorted.
var ErrNotSorted = errors.New("em: BTree input not sorted")

// BuildBTree constructs a static B-tree over data, which must be a
// sorted stride-1 array. Build cost O(n/B) I/Os (one scan per level).
func BuildBTree(dev *Device, data *Array) (*BTree, error) {
	if data.Stride() != 1 {
		return nil, errors.New("em: BTree requires stride-1 data")
	}
	n := data.Len()
	if n == 0 {
		return nil, errors.New("em: BTree over empty array")
	}
	t := &BTree{
		dev:    dev,
		data:   data,
		perBlk: dev.B(),
		n:      n,
		fanout: dev.B() / 2,
	}
	if t.fanout < 2 {
		t.fanout = 2
	}
	// Level 0: one (firstValue, dataBlockIdx) entry per data block, and
	// verify sortedness on the way.
	nBlocks := (n + t.perBlk - 1) / t.perBlk
	lvl := NewArray(dev, nBlocks, 2)
	{
		sc := data.Scan(0)
		w := lvl.Write(0)
		rec := make([]Word, 1)
		last := math.Inf(-1)
		for i := 0; sc.Next(rec); i++ {
			if rec[0] < last {
				return nil, ErrNotSorted
			}
			last = rec[0]
			if i%t.perBlk == 0 {
				w.Append([]Word{rec[0], Word(i / t.perBlk)})
			}
		}
		w.Flush()
	}
	t.levels = append(t.levels, lvl)
	// Higher levels until one block suffices.
	for t.levels[len(t.levels)-1].Len() > t.fanout {
		below := t.levels[len(t.levels)-1]
		cnt := (below.Len() + t.fanout - 1) / t.fanout
		up := NewArray(dev, cnt, 2)
		sc := below.Scan(0)
		w := up.Write(0)
		rec := make([]Word, 2)
		for i := 0; sc.Next(rec); i++ {
			if i%t.fanout == 0 {
				w.Append([]Word{rec[0], Word(i)})
			}
		}
		w.Flush()
		t.levels = append(t.levels, up)
	}
	return t, nil
}

// Len returns the number of keys.
func (t *BTree) Len() int { return t.n }

// Height returns the number of internal levels (≈ log_B n).
func (t *BTree) Height() int { return len(t.levels) }

// Search returns the position of the first key ≥ x (n when all keys are
// smaller). O(log_B n) I/Os: one node block per level plus one data
// block.
func (t *BTree) Search(x float64) int {
	// Descend: at each level find the last entry with key ≤ x within the
	// current window of `fanout` entries.
	top := t.levels[len(t.levels)-1]
	lo, hi := 0, top.Len()-1
	rec := make([]Word, 2)
	for li := len(t.levels) - 1; li >= 0; li-- {
		lv := t.levels[li]
		rd := lv.RandomReader()
		best := -1
		bestChild := 0.0
		for i := lo; i <= hi && i < lv.Len(); i++ {
			rd.Get(i, rec)
			if rec[0] <= x {
				best = i
				bestChild = rec[1]
			} else {
				break
			}
		}
		if best < 0 {
			// x precedes every key.
			return 0
		}
		if li == 0 {
			// bestChild is a data block index; scan it.
			blk := int(bestChild)
			start := blk * t.perBlk
			end := start + t.perBlk
			if end > t.n {
				end = t.n
			}
			sc := t.data.Scan(start)
			val := make([]Word, 1)
			for p := start; p < end && sc.Next(val); p++ {
				if val[0] >= x {
					return p
				}
			}
			return end
		}
		lo = int(bestChild)
		hi = lo + t.fanout - 1
	}
	return 0
}

// RangeReport appends the values in [x, y] to dst: O(log_B n + k/B)
// I/Os.
func (t *BTree) RangeReport(x, y float64, dst []float64) []float64 {
	pos := t.Search(x)
	sc := t.data.Scan(pos)
	rec := make([]Word, 1)
	for sc.Next(rec) {
		if rec[0] > y {
			break
		}
		dst = append(dst, rec[0])
	}
	return dst
}

// Count returns |keys in [x, y]| in O(log_B n) I/Os.
func (t *BTree) Count(x, y float64) int {
	if y < x {
		return 0
	}
	a := t.Search(x)
	b := t.Search(math.Nextafter(y, math.Inf(1)))
	return b - a
}
