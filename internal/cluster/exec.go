// The fan-out executor shared by the Router (remote draws over kind-3
// frames) and NodeHost (local draws for its own /sample endpoint).
// Randomness consumption replicates Coordinator.fanOut exactly: one
// SplitSeed per positive-budget shard in ascending shard order before
// any concurrency starts, partials merged in job order, tail shuffled
// with the request stream.
package cluster

import (
	"context"
	"slices"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// drawFn draws one shard's sub-budget on the stream seeded by seed,
// appending into dst. The Router's drawFn speaks the wire with
// failover; NodeHost's calls its local shard service.
type drawFn func(ctx context.Context, wor bool, shard int, seed uint64, lo, hi float64, k int, dst []float64) ([]float64, error)

// partPool recycles per-job sample buffers across fan-outs.
var partPool = sync.Pool{New: func() any {
	b := make([]float64, 0, 256)
	return &b
}}

type fanExec struct {
	meta    *Meta
	workers int
	draw    drawFn
	// fanout[op] (0 sample, 1 wor) and merge mirror the coordinator's
	// histograms; always non-nil (unregistered registry when unset).
	fanout [2]*metrics.Histogram
	merge  *metrics.Histogram
}

// sampleInto is Coordinator.SampleInto with planning against Meta and
// draws through e.draw. Validation order, fast paths and randomness
// consumption are identical.
func (e *fanExec) sampleInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	if err := core.ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	if k <= 0 {
		return dst, nil
	}
	shards, budgets, err := e.meta.planWR(r, lo, hi, k)
	if err != nil {
		return dst, err
	}
	return e.fanOut(ctx, r, 0, shards, budgets, lo, hi, dst)
}

// sampleWoRInto is Coordinator.SampleWoRInto likewise.
func (e *fanExec) sampleWoRInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	if err := core.ValidateRange(lo, hi); err != nil {
		return dst, err
	}
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	shards, budgets, err := e.meta.planWoR(r, lo, hi, k)
	if err != nil {
		return dst, err
	}
	return e.fanOut(ctx, r, 1, shards, budgets, lo, hi, dst)
}

// fanOut executes the planned budgets. Seeds are derived from r in
// ascending shard order before any goroutine starts (each SplitSeed
// consumes the two Uint64 draws Coordinator's r.Split() would);
// partials merge in job order and the appended tail is shuffled with
// r. dst is returned unchanged on error.
func (e *fanExec) fanOut(ctx context.Context, r *core.Rand, op int, shards, budgets []int, lo, hi float64, dst []float64) ([]float64, error) {
	total, positive, last := 0, 0, -1
	for i := range shards {
		if budgets[i] > 0 {
			positive++
			last = i
			total += budgets[i]
		}
	}
	if positive == 0 {
		return dst, nil
	}
	endSpan := metrics.TraceFrom(ctx).StartSpan("cluster.fanout")
	fanStart := time.Now()
	defer func() {
		e.fanout[op].Observe(time.Since(fanStart).Seconds())
		endSpan()
	}()

	if positive == 1 {
		// Single-shard fan-out (the hot-range case): one draw on the
		// caller's goroutine, no jobs slice or worker machinery.
		out, err := e.draw(ctx, op == 1, shards[last], r.SplitSeed(), lo, hi, budgets[last], dst)
		if err != nil {
			return dst, err
		}
		mergeStart := time.Now()
		tail := out[len(dst):]
		r.Shuffle(len(tail), func(i, k int) { tail[i], tail[k] = tail[k], tail[i] })
		e.merge.Observe(time.Since(mergeStart).Seconds())
		return out, nil
	}

	type job struct {
		shard, k int
		seed     uint64
	}
	jobs := make([]job, 0, positive)
	for i, s := range shards {
		if budgets[i] <= 0 {
			continue
		}
		jobs = append(jobs, job{shard: s, k: budgets[i], seed: r.SplitSeed()})
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, e.workers)
		mu       sync.Mutex
		firstErr error
	)
	parts := make([][]float64, len(jobs))
	bufs := make([]*[]float64, len(jobs))
	defer func() {
		for ji, bp := range bufs {
			if bp == nil {
				continue
			}
			if parts[ji] != nil {
				*bp = parts[ji][:0]
			}
			partPool.Put(bp)
		}
	}()
	for ji := range jobs {
		wg.Add(1)
		go func(ji int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-fctx.Done():
				mu.Lock()
				if firstErr == nil {
					firstErr = fctx.Err()
				}
				mu.Unlock()
				return
			}
			j := jobs[ji]
			bp := partPool.Get().(*[]float64)
			bufs[ji] = bp
			out, err := e.draw(fctx, op == 1, j.shard, j.seed, lo, hi, j.k, (*bp)[:0])
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel() // first error stops the sibling draws
				return
			}
			parts[ji] = out
		}(ji)
	}
	wg.Wait()
	if firstErr != nil {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		return dst, firstErr
	}
	mergeStart := time.Now()
	base := len(dst)
	dst = slices.Grow(dst, total)
	for _, p := range parts {
		dst = append(dst, p...)
	}
	tail := dst[base:]
	r.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
	e.merge.Observe(time.Since(mergeStart).Seconds())
	return dst, nil
}
