// Consistent-hash shard placement.
//
// Shards are assigned to nodes by hashing virtual points for every node
// address onto a 64-bit ring and walking clockwise from each shard's
// hash until R distinct nodes are met: the shard's replica set, in
// failover preference order. The construction is a pure function of
// (node list, replica count), so the router and every node derive the
// same assignment independently — no coordination service, no
// assignment exchange, and a node knows which shards to host from its
// own address alone.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVirtualPoints is the per-node virtual point count: enough that
// shard ownership spreads near-uniformly even for small clusters.
const defaultVirtualPoints = 64

type ringPoint struct {
	hash uint64
	node int
}

// ring is an immutable consistent-hash ring over node indices.
type ring struct {
	nodes  int
	points []ringPoint // sorted by (hash, node)
}

// hash64 is FNV-1a finished with a splitmix64 finalizer: raw FNV of
// short keys differing in one character ("shard#1" vs "shard#2",
// sibling virtual points) clusters in narrow arcs, which concentrates
// whole shard ranges on one node; the finalizer's avalanche scatters
// them uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// buildRing hashes vpoints virtual points per node address. Hash
// collisions break ties by node index so the ring is deterministic for
// a given node list in any process.
func buildRing(nodes []string, vpoints int) *ring {
	if vpoints <= 0 {
		vpoints = defaultVirtualPoints
	}
	rg := &ring{nodes: len(nodes), points: make([]ringPoint, 0, len(nodes)*vpoints)}
	for ni, addr := range nodes {
		for v := 0; v < vpoints; v++ {
			rg.points = append(rg.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", addr, v)), node: ni})
		}
	}
	sort.Slice(rg.points, func(i, j int) bool {
		if rg.points[i].hash != rg.points[j].hash {
			return rg.points[i].hash < rg.points[j].hash
		}
		return rg.points[i].node < rg.points[j].node
	})
	return rg
}

// owners returns shard's replica set: the first r distinct nodes
// clockwise from hash("shard#i"), in preference order. r is clamped to
// the node count; the slice is freshly allocated.
func (rg *ring) owners(shard, r int) []int {
	if r < 1 {
		r = 1
	}
	if r > rg.nodes {
		r = rg.nodes
	}
	h := hash64(fmt.Sprintf("shard#%d", shard))
	start := sort.Search(len(rg.points), func(j int) bool { return rg.points[j].hash >= h })
	out := make([]int, 0, r)
	seen := make([]bool, rg.nodes)
	for n := 0; n < len(rg.points) && len(out) < r; n++ {
		p := rg.points[(start+n)%len(rg.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
