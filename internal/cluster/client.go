// Node client: persistent keep-alive connections speaking the PR-8
// binary framing, a per-node circuit breaker, and the typed error the
// router surfaces when a node answers with an engine error.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

// RemoteError is a node-reported sub-sample failure. It carries the
// node's HTTP status, which the server layer passes through
// (statusOf), so a deterministic engine error — say a 422
// sample-too-large — surfaces from the router exactly as a single node
// would report it.
type RemoteError struct {
	Node   string
	Status int
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: node %s: %s (http %d)", e.Node, e.Msg, e.Status)
}

// HTTPStatus implements the server layer's status pass-through.
func (e *RemoteError) HTTPStatus() int { return e.Status }

// retryable reports whether a failed sub-sample may succeed on a
// replica. Transport failures, timeouts, shed/overload statuses and
// misrouting (421, a stale assignment view) are retryable; any other
// node-reported status is a deterministic engine answer that every
// replica would repeat.
func retryable(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Status >= 500 ||
			re.Status == http.StatusTooManyRequests ||
			re.Status == http.StatusMisdirectedRequest
	}
	return true
}

// breaker is a per-node circuit breaker: threshold consecutive
// failures open it for cooldown, after which one probe is allowed
// through (half-open); a success closes it, a failure re-opens it for
// another cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	fails     int
	openUntil time.Time
}

// allow reports whether an attempt may proceed now.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails < b.threshold || !now.Before(b.openUntil)
}

// open reports whether the breaker is currently open (for the gauge).
func (b *breaker) open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && now.Before(b.openUntil)
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.fails = 0
	b.mu.Unlock()
}

func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
}

// frameBufPool recycles request-frame encode buffers.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64)
	return &b
}}

// nodeClient is the router's view of one data node.
type nodeClient struct {
	index int
	addr  string
	url   string // http://addr/subsample
	hc    *http.Client
	br    breaker

	lat       *metrics.Histogram // per-attempt RPC latency
	attempts  *metrics.Counter
	errs      *metrics.Counter
	failovers *metrics.Counter // retryable failures that moved on
}

// subsample runs one sub-sample RPC against the node: a kind-3 frame
// out, a kind-0 (samples appended to dst) or kind-1 (RemoteError) back.
// reqID, when non-empty, rides the X-Request-ID header so the node's
// logs and traces correlate with the router's.
func (nc *nodeClient) subsample(ctx context.Context, wor bool, shardIdx int, seed uint64, lo, hi float64, k int, reqID string, dst []float64) ([]float64, error) {
	bb := frameBufPool.Get().(*[]byte)
	frame := server.AppendSubsampleRequest((*bb)[:0], server.SubsampleRequest{
		WoR: wor, Shard: shardIdx, Seed: seed, Lo: lo, Hi: hi, K: k,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, nc.url, bytes.NewReader(frame))
	if err != nil {
		*bb = frame[:0]
		frameBufPool.Put(bb)
		return dst, err
	}
	req.Header["Content-Type"] = []string{server.BinContentType}
	req.Header["Accept"] = []string{server.BinContentType}
	if reqID != "" {
		req.Header["X-Request-Id"] = []string{reqID}
	}
	start := time.Now()
	nc.attempts.Add(1)
	resp, err := nc.hc.Do(req)
	*bb = frame[:0]
	frameBufPool.Put(bb)
	if err != nil {
		nc.errs.Add(1)
		return dst, fmt.Errorf("cluster: node %s: %w", nc.addr, err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	nc.lat.Observe(time.Since(start).Seconds())
	if rerr != nil {
		nc.errs.Add(1)
		return dst, fmt.Errorf("cluster: node %s: %w", nc.addr, rerr)
	}
	out, status, msg, derr := server.DecodeSampleBodyInto(body, dst)
	if derr != nil {
		nc.errs.Add(1)
		if resp.StatusCode == http.StatusOK {
			// A 200 that doesn't parse is a protocol bug, not an outage.
			return dst, fmt.Errorf("cluster: node %s: malformed reply: %w", nc.addr, derr)
		}
		// Sheds and front-proxy errors answer JSON; classify by the
		// HTTP status so 429/503 stay failover-eligible.
		return dst, &RemoteError{Node: nc.addr, Status: resp.StatusCode, Msg: http.StatusText(resp.StatusCode)}
	}
	if status != http.StatusOK {
		nc.errs.Add(1)
		return dst, &RemoteError{Node: nc.addr, Status: status, Msg: msg}
	}
	return out, nil
}
