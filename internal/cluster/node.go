// NodeHost: one data node's engine. It derives the shard assignment
// from the shared (nodes, replicas, shards) configuration — no
// coordination service — builds a full service instance per owned
// shard exactly as the single-node coordinator would, and serves two
// surfaces: Subsample (the router's kind-3 RPC: rebuild the stream
// from the frame's seed, draw the sub-budget) and the regular
// server.Engine methods for queries its owned shards can answer alone.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/em"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/shard"
)

// NotOwnedError reports a query or sub-sample that needs a shard this
// node does not host — a stale router view or misconfiguration. It
// maps to 421 (Misdirected Request), which the router treats as
// failover-eligible.
type NotOwnedError struct {
	Shard int
	Node  string
}

func (e *NotOwnedError) Error() string {
	return fmt.Sprintf("cluster: shard %d not owned by node %s", e.Shard, e.Node)
}

// HTTPStatus implements the server layer's status pass-through.
func (e *NotOwnedError) HTTPStatus() int { return http.StatusMisdirectedRequest }

// NodeOptions configures a NodeHost.
type NodeOptions struct {
	// Nodes is the cluster's canonical node list; must match the
	// router's and every peer's.
	Nodes []string
	// Self is this node's address; must appear in Nodes.
	Self string
	// Replicas, Shards, VirtualPoints as in Options; all three must
	// match the router's or assignment views diverge.
	Replicas      int
	Shards        int
	VirtualPoints int
	// Kind is the per-shard index structure.
	Kind core.Kind
	// Workers bounds the local fan-out for the node's own /sample; 0
	// means the owned-shard count.
	Workers int
	// Service, when non-nil, supplies service.Options for owned shard
	// i (fault-injection hook, as on the coordinator).
	Service func(shard int) service.Options
	// Quality configures per-shard sample-quality monitors when the
	// Service hook is nil.
	Quality metrics.UniformityOptions
	// IOGate, when non-nil, models this node's storage device: every
	// sub-sample admits its estimated block cost (em.IOBlocks) before
	// drawing, so the node saturates at the device's bandwidth.
	IOGate *em.IOGate
	// IOBlock is the block size B for the gate's cost model; 0 means
	// 1024 words.
	IOBlock int
	Metrics *metrics.Registry
	// MetricLabels are stamped on the node's series; shard services
	// additionally get shard="i".
	MetricLabels []metrics.Label
	Logger       *slog.Logger
}

// NodeHost hosts one node's owned shards.
type NodeHost struct {
	meta    *Meta
	opts    NodeOptions
	self    int
	owners  [][]int // shard → replica-ordered node indices
	ownedIx []int   // ascending owned shard indices
	owned   map[int]*service.Service
	exec    fanExec
	gate    *em.IOGate
	ioBlock int

	gateWait *metrics.Histogram
}

// NewNodeHost builds the services for every shard the ring assigns to
// opts.Self. The dataset (values, weights; nil weights uniform) must
// be the same arrays every other node and the router load: partition
// and assignment are derived, not exchanged.
func NewNodeHost(ctx context.Context, values, weights []float64, opts NodeOptions) (*NodeHost, error) {
	self := -1
	for i, addr := range opts.Nodes {
		if addr == opts.Self {
			self = i
			break
		}
	}
	if self < 0 {
		return nil, fmt.Errorf("%w: self %q not in node list", core.ErrBadValue, opts.Self)
	}
	meta, err := NewMeta(values, weights, opts.Shards)
	if err != nil {
		return nil, err
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > len(opts.Nodes) {
		opts.Replicas = len(opts.Nodes)
	}
	if opts.IOBlock <= 0 {
		opts.IOBlock = 1024
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}

	nh := &NodeHost{
		meta:    meta,
		opts:    opts,
		self:    self,
		owned:   make(map[int]*service.Service),
		gate:    opts.IOGate,
		ioBlock: opts.IOBlock,
	}
	rg := buildRing(opts.Nodes, opts.VirtualPoints)
	nh.owners = make([][]int, meta.Shards())
	fail := func(err error) (*NodeHost, error) {
		for _, svc := range nh.owned {
			svc.Close()
		}
		return nil, err
	}
	for i := 0; i < meta.Shards(); i++ {
		own := rg.owners(i, opts.Replicas)
		nh.owners[i] = own
		mine := false
		for _, ni := range own {
			if ni == self {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		var sopts service.Options
		if opts.Service != nil {
			sopts = opts.Service(i)
		} else {
			sopts.Quality = opts.Quality
		}
		if sopts.Metrics == nil {
			sopts.Metrics = opts.Metrics
		}
		if sopts.Logger == nil {
			sopts.Logger = opts.Logger
		}
		if sopts.MetricLabels == nil {
			sopts.MetricLabels = append(append([]metrics.Label(nil), opts.MetricLabels...),
				metrics.L("shard", strconv.Itoa(i)))
		}
		svc := service.New(sopts)
		sv, sw := meta.Run(i)
		if err := svc.Create(ctx, dsName, opts.Kind, sv, sw); err != nil {
			svc.Close()
			return fail(fmt.Errorf("shard %d: %w", i, err))
		}
		nh.owned[i] = svc
		nh.ownedIx = append(nh.ownedIx, i)
	}

	nh.exec.meta = meta
	nh.exec.workers = opts.Workers
	if nh.exec.workers <= 0 {
		nh.exec.workers = len(nh.ownedIx)
		if nh.exec.workers == 0 {
			nh.exec.workers = 1
		}
	}
	nh.exec.draw = nh.drawLocal
	reg := opts.Metrics
	for op, opName := range []string{"sample", "wor"} {
		ls := append(append([]metrics.Label(nil), opts.MetricLabels...), metrics.L("op", opName))
		nh.exec.fanout[op] = reg.Histogram("iqs_cluster_fanout_seconds",
			"Wall time of the full per-query cluster fan-out (plan, draws, merge).", nil, ls...)
	}
	nh.exec.merge = reg.Histogram("iqs_cluster_merge_seconds",
		"Time to merge and shuffle per-shard partials into the response buffer.", nil, opts.MetricLabels...)
	nh.gateWait = reg.Histogram("iqs_cluster_io_wait_seconds",
		"Time sub-samples spent queued for I/O admission credits.", nil, opts.MetricLabels...)
	if nh.gate != nil {
		reg.CounterFunc("iqs_cluster_io_waits_total",
			"Sub-sample admissions that had to queue for the I/O gate.",
			func() float64 { return float64(nh.gate.Waits()) }, opts.MetricLabels...)
	}
	return nh, nil
}

// Owned returns the ascending shard indices this node hosts.
func (nh *NodeHost) Owned() []int { return append([]int(nil), nh.ownedIx...) }

// Close shuts down the owned shard services.
func (nh *NodeHost) Close() {
	for _, svc := range nh.owned {
		svc.Close()
	}
}

// Subsample implements server.NodeBackend: rebuild the sub-stream from
// the frame's seed and draw the router-planned budget on the owned
// shard. The draw is a pure function of (shard data, seed, budget), so
// any replica owner produces identical bytes — the failover-safety
// invariant.
func (nh *NodeHost) Subsample(ctx context.Context, req server.SubsampleRequest, dst []float64) ([]float64, error) {
	svc, ok := nh.owned[req.Shard]
	if !ok {
		return dst, &NotOwnedError{Shard: req.Shard, Node: nh.opts.Self}
	}
	if nh.gate != nil {
		n := len(nh.meta.shards[req.Shard].vals)
		wait := time.Now()
		if err := nh.gate.Admit(ctx, em.IOBlocks(n, req.K, nh.ioBlock)); err != nil {
			return dst, err
		}
		nh.gateWait.Observe(time.Since(wait).Seconds())
	}
	r := rng.New(req.Seed)
	if req.WoR {
		return svc.SampleWoRInto(ctx, r, dsName, req.Lo, req.Hi, req.K, dst)
	}
	return svc.SampleInto(ctx, r, dsName, req.Lo, req.Hi, req.K, dst)
}

// drawLocal is the node's drawFn for its own /sample surface: like the
// router's, but the "RPC" is a local service call on the rebuilt
// stream — still draw-identical to the coordinator because the stream
// seed fixes the draw.
func (nh *NodeHost) drawLocal(ctx context.Context, wor bool, shardIdx int, seed uint64, lo, hi float64, k int, dst []float64) ([]float64, error) {
	svc, ok := nh.owned[shardIdx]
	if !ok {
		return dst, &NotOwnedError{Shard: shardIdx, Node: nh.opts.Self}
	}
	r := rng.New(seed)
	if wor {
		return svc.SampleWoRInto(ctx, r, dsName, lo, hi, k, dst)
	}
	return svc.SampleInto(ctx, r, dsName, lo, hi, k, dst)
}

// Sample implements server.Engine for queries answerable from owned
// shards; others fail with NotOwnedError (421) so a client retries
// against the router.
func (nh *NodeHost) Sample(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	return nh.exec.sampleInto(ctx, r, lo, hi, k, nil)
}

// SampleInto implements server.Engine.
func (nh *NodeHost) SampleInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	return nh.exec.sampleInto(ctx, r, lo, hi, k, dst)
}

// SampleWoR implements server.Engine.
func (nh *NodeHost) SampleWoR(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	return nh.exec.sampleWoRInto(ctx, r, lo, hi, k, nil)
}

// SampleWoRInto implements server.Engine.
func (nh *NodeHost) SampleWoRInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	return nh.exec.sampleWoRInto(ctx, r, lo, hi, k, dst)
}

// SampleMulti implements server.Engine via the scalar path per
// request (each on its own stream).
func (nh *NodeHost) SampleMulti(ctx context.Context, reqs []*shard.MultiQuery) {
	for _, q := range reqs {
		if q.WoR {
			q.Out, q.Err = nh.SampleWoRInto(ctx, q.R, q.Lo, q.Hi, q.K, q.Dst)
		} else {
			q.Out, q.Err = nh.SampleInto(ctx, q.R, q.Lo, q.Hi, q.K, q.Dst)
		}
	}
}

// Batch implements server.Engine.
func (nh *NodeHost) Batch(ctx context.Context, r *core.Rand, queries []shard.Query) []shard.Result {
	results := make([]shard.Result, len(queries))
	for i := range queries {
		rr := r.Split()
		q := queries[i]
		if q.WoR {
			results[i].Samples, results[i].Err = nh.SampleWoR(ctx, rr, q.Lo, q.Hi, q.K)
		} else {
			results[i].Samples, results[i].Err = nh.Sample(ctx, rr, q.Lo, q.Hi, q.K)
		}
	}
	return results
}

// Count answers from the partition metadata (the node knows the full
// sorted dataset, not just its shards).
func (nh *NodeHost) Count(ctx context.Context, lo, hi float64) (int, error) {
	if err := core.ValidateRange(lo, hi); err != nil {
		return 0, err
	}
	return nh.meta.Count(lo, hi), nil
}

// Health aggregates the owned services' health, coordinator-style.
func (nh *NodeHost) Health() shard.Health {
	h := shard.Health{Shards: len(nh.ownedIx)}
	for _, i := range nh.ownedIx {
		sh := nh.owned[i].Health()
		h.PerShard = append(h.PerShard, sh)
		h.Aggregate.Requests += sh.Requests
		h.Aggregate.Failures += sh.Failures
		h.Aggregate.PanicsContained += sh.PanicsContained
		h.Aggregate.Downgrades += sh.Downgrades
		h.Aggregate.Rebuilds += sh.Rebuilds
		h.Aggregate.EMFaults += sh.EMFaults
		for _, d := range sh.Datasets {
			h.Len += d.Len
			if d.Degraded {
				h.Degraded++
			}
		}
	}
	return h
}

// Downgrades reports the owned services' downgrade events tagged with
// global shard indices.
func (nh *NodeHost) Downgrades() []shard.Downgrade {
	var out []shard.Downgrade
	for _, i := range nh.ownedIx {
		for _, ev := range nh.owned[i].Downgrades() {
			out = append(out, shard.Downgrade{Shard: i, Event: ev})
		}
	}
	return out
}

// PartitionJSON implements server.PartitionProvider with the node's
// own view (Self and Owned set).
func (nh *NodeHost) PartitionJSON() ([]byte, error) {
	pm := buildPartitionMap(nh.meta, nh.opts.Nodes, nh.owners, nh.opts.Replicas)
	pm.Self = nh.opts.Self
	pm.Owned = nh.Owned()
	return json.Marshal(pm)
}
