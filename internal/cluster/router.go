// The router tier: a server.Engine that plans every query locally —
// budgets and stream seeds on the request's own rng stream, against
// the deterministic partition metadata — and fans the sub-budgets out
// to the owning nodes over persistent binary connections, failing over
// to replicas behind per-node circuit breakers.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// Options configures a Router.
type Options struct {
	// Nodes are the data-node addresses (host:port), in the cluster's
	// canonical order; every node must be configured with the same list
	// or assignment views diverge.
	Nodes []string
	// Replicas is R, the owners per shard (failover width); 0 means 2,
	// clamped to len(Nodes).
	Replicas int
	// Shards is the partition count K the nodes were built with.
	Shards int
	// VirtualPoints is the consistent-hash virtual point count per
	// node; 0 means 64. Must match the nodes'.
	VirtualPoints int
	// Workers bounds concurrent sub-sample RPCs per query; 0 means the
	// shard count.
	Workers int
	// AttemptTimeout bounds one sub-sample RPC attempt so a hung node
	// fails over instead of consuming the whole request deadline; 0
	// means 1s. The request context still applies on top.
	AttemptTimeout time.Duration
	// Rounds is how many times the full replica set is cycled before a
	// shard's draw is declared failed; 0 means 2.
	Rounds int
	// Backoff is the base sleep between failover attempts (doubling,
	// capped at 64×); 0 means 2ms.
	Backoff time.Duration
	// BreakerThreshold consecutive failures open a node's circuit
	// breaker; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects attempts
	// before admitting a half-open probe; 0 means 500ms.
	BreakerCooldown time.Duration
	// Client, when non-nil, overrides the HTTP client (tests). The
	// default uses a dedicated keep-alive transport sized for the
	// fan-out width.
	Client *http.Client
	// Metrics receives the iqs_cluster_* families; nil disables.
	Metrics *metrics.Registry
	// MetricLabels are constant labels stamped on the router's series;
	// per-node series additionally get a node="i" label.
	MetricLabels []metrics.Label
}

// Router fans queries out over the cluster. It implements
// server.Engine; mount it behind a server.Server to get the standard
// HTTP surface (admission control, coalescing, binary wire) in front
// of the cluster.
type Router struct {
	meta    *Meta
	opts    Options
	owners  [][]int // shard → replica-ordered node indices
	clients []*nodeClient
	exec    fanExec
	workers int

	failoverN atomic.Int64 // total failovers (for tests and /stats)
	transport *http.Transport
}

// NewRouter derives the partition metadata from the dataset (nil
// weights mean uniform) and the shard assignment from the node list.
// The router holds no shard data — only sorted values and prefix
// weights — but must see the exact dataset the nodes were built from.
func NewRouter(values, weights []float64, opts Options) (*Router, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", core.ErrBadValue)
	}
	meta, err := NewMeta(values, weights, opts.Shards)
	if err != nil {
		return nil, err
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > len(opts.Nodes) {
		opts.Replicas = len(opts.Nodes)
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = time.Second
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 2 * time.Millisecond
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 500 * time.Millisecond
	}

	rt := &Router{meta: meta, opts: opts}
	rt.workers = opts.Workers
	if rt.workers <= 0 {
		rt.workers = meta.Shards()
	}

	hc := opts.Client
	if hc == nil {
		rt.transport = &http.Transport{
			MaxIdleConns:        4 * len(opts.Nodes) * rt.workers,
			MaxIdleConnsPerHost: 4 * rt.workers,
			IdleConnTimeout:     90 * time.Second,
		}
		hc = &http.Client{Transport: rt.transport}
	}

	rg := buildRing(opts.Nodes, opts.VirtualPoints)
	rt.owners = make([][]int, meta.Shards())
	for i := range rt.owners {
		rt.owners[i] = rg.owners(i, opts.Replicas)
	}

	reg := opts.Metrics
	rt.clients = make([]*nodeClient, len(opts.Nodes))
	for i, addr := range opts.Nodes {
		ls := append(append([]metrics.Label(nil), opts.MetricLabels...), metrics.L("node", fmt.Sprint(i)))
		nc := &nodeClient{
			index: i,
			addr:  addr,
			url:   "http://" + addr + "/subsample",
			hc:    hc,
			br:    breaker{threshold: opts.BreakerThreshold, cooldown: opts.BreakerCooldown},
			lat: reg.Histogram("iqs_cluster_subsample_seconds",
				"Per-attempt sub-sample RPC latency.", nil, ls...),
			attempts: reg.Counter("iqs_cluster_subsamples_total",
				"Sub-sample RPC attempts issued.", ls...),
			errs: reg.Counter("iqs_cluster_node_errors_total",
				"Sub-sample RPC attempts that failed.", ls...),
			failovers: reg.Counter("iqs_cluster_failovers_total",
				"Retryable sub-sample failures that moved to another replica or retried.", ls...),
		}
		reg.GaugeFunc("iqs_cluster_breaker_open",
			"1 while the node's circuit breaker is open.",
			func() float64 {
				if nc.br.open(time.Now()) {
					return 1
				}
				return 0
			}, ls...)
		rt.clients[i] = nc
	}
	for op, opName := range []string{"sample", "wor"} {
		ls := append(append([]metrics.Label(nil), opts.MetricLabels...), metrics.L("op", opName))
		rt.exec.fanout[op] = reg.Histogram("iqs_cluster_fanout_seconds",
			"Wall time of the full per-query cluster fan-out (plan, RPCs, merge).", nil, ls...)
	}
	rt.exec.merge = reg.Histogram("iqs_cluster_merge_seconds",
		"Time to merge and shuffle per-node partials into the response buffer.", nil, opts.MetricLabels...)

	rt.exec.meta = meta
	rt.exec.workers = rt.workers
	rt.exec.draw = rt.drawRemote
	return rt, nil
}

// Close releases the router's idle keep-alive connections.
func (rt *Router) Close() {
	if rt.transport != nil {
		rt.transport.CloseIdleConnections()
	}
}

// ForwardsRequestID opts the fronting server into carrying the request
// ID in the context so node hops share it.
func (rt *Router) ForwardsRequestID() {}

// Failovers returns the total failover count (tests, smoke checks).
func (rt *Router) Failovers() int64 { return rt.failoverN.Load() }

// drawRemote is the router's drawFn: try the shard's replica owners in
// preference order, skipping open breakers while a closed one remains,
// backing off between attempts, cycling the set opts.Rounds times.
// Deterministic engine errors return immediately — every replica holds
// identical data and the seed fixes the draw, so retrying cannot
// change the answer (and that same purity is why failing over a
// timed-out attempt preserves draw identity).
func (rt *Router) drawRemote(ctx context.Context, wor bool, shardIdx int, seed uint64, lo, hi float64, k int, dst []float64) ([]float64, error) {
	owners := rt.owners[shardIdx]
	reqID := metrics.RequestIDFromContext(ctx)
	var lastErr error
	attempt := 0
	for round := 0; round < rt.opts.Rounds; round++ {
		for _, ni := range owners {
			nc := rt.clients[ni]
			now := time.Now()
			if !nc.br.allow(now) && !rt.allOpen(owners, now) {
				continue
			}
			if attempt > 0 {
				shift := attempt - 1
				if shift > 6 {
					shift = 6
				}
				if err := sleepCtx(ctx, rt.opts.Backoff<<uint(shift)); err != nil {
					return dst, err
				}
			}
			attempt++
			actx, cancel := context.WithTimeout(ctx, rt.opts.AttemptTimeout)
			out, err := nc.subsample(actx, wor, shardIdx, seed, lo, hi, k, reqID, dst)
			cancel()
			if err == nil {
				nc.br.onSuccess()
				return out, nil
			}
			nc.br.onFailure(time.Now())
			if !retryable(err) {
				return dst, err
			}
			lastErr = err
			nc.failovers.Add(1)
			rt.failoverN.Add(1)
			if ctx.Err() != nil {
				return dst, ctx.Err()
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: shard %d: all %d replicas circuit-open", shardIdx, len(owners))
	}
	return dst, lastErr
}

// allOpen reports whether every owner's breaker is open — the
// all-replicas-down case where skipping open breakers would fail the
// query without even probing.
func (rt *Router) allOpen(owners []int, now time.Time) bool {
	for _, ni := range owners {
		if rt.clients[ni].br.allow(now) {
			return false
		}
	}
	return true
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Sample implements server.Engine.
func (rt *Router) Sample(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	return rt.exec.sampleInto(ctx, r, lo, hi, k, nil)
}

// SampleInto implements server.Engine.
func (rt *Router) SampleInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	return rt.exec.sampleInto(ctx, r, lo, hi, k, dst)
}

// SampleWoR implements server.Engine.
func (rt *Router) SampleWoR(ctx context.Context, r *core.Rand, lo, hi float64, k int) ([]float64, error) {
	return rt.exec.sampleWoRInto(ctx, r, lo, hi, k, nil)
}

// SampleWoRInto implements server.Engine.
func (rt *Router) SampleWoRInto(ctx context.Context, r *core.Rand, lo, hi float64, k int, dst []float64) ([]float64, error) {
	return rt.exec.sampleWoRInto(ctx, r, lo, hi, k, dst)
}

// SampleMulti answers a coalesced batch. Each request runs the scalar
// path on its own stream and buffer — network fan-out dominates, so
// requests run concurrently on the worker bound, and byte-identity to
// the scalar path holds per request by construction.
func (rt *Router) SampleMulti(ctx context.Context, reqs []*shard.MultiQuery) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, rt.workers)
	for _, q := range reqs {
		wg.Add(1)
		go func(q *shard.MultiQuery) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if q.WoR {
				q.Out, q.Err = rt.SampleWoRInto(ctx, q.R, q.Lo, q.Hi, q.K, q.Dst)
			} else {
				q.Out, q.Err = rt.SampleInto(ctx, q.R, q.Lo, q.Hi, q.K, q.Dst)
			}
		}(q)
	}
	wg.Wait()
}

// Batch implements server.Engine: streams split from r per query in
// order (the coordinator's consumption), then concurrent scalar calls.
func (rt *Router) Batch(ctx context.Context, r *core.Rand, queries []shard.Query) []shard.Result {
	results := make([]shard.Result, len(queries))
	rands := make([]*core.Rand, len(queries))
	for i := range queries {
		rands[i] = r.Split()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, rt.workers)
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			q := queries[i]
			if q.WoR {
				results[i].Samples, results[i].Err = rt.SampleWoR(ctx, rands[i], q.Lo, q.Hi, q.K)
			} else {
				results[i].Samples, results[i].Err = rt.Sample(ctx, rands[i], q.Lo, q.Hi, q.K)
			}
		}(i)
	}
	wg.Wait()
	return results
}

// Count answers from the partition metadata — no node round trip.
func (rt *Router) Count(ctx context.Context, lo, hi float64) (int, error) {
	if err := core.ValidateRange(lo, hi); err != nil {
		return 0, err
	}
	return rt.meta.Count(lo, hi), nil
}

// Health reports the partition dimensions; per-node health lives on
// the nodes' own /healthz.
func (rt *Router) Health() shard.Health {
	return shard.Health{Shards: rt.meta.Shards(), Len: rt.meta.Len()}
}

// Downgrades implements server.Engine; the router itself never
// downgrades (nodes report their own).
func (rt *Router) Downgrades() []shard.Downgrade { return nil }

// PartitionMap is the operator-facing assignment view served at
// /cluster/partition by routers and nodes alike.
type PartitionMap struct {
	Shards   int      `json:"shards"`
	Len      int      `json:"len"`
	Nodes    []string `json:"nodes"`
	Replicas int      `json:"replicas"`
	// Cuts are the interior shard boundaries (shard i owns
	// [Cuts[i-1], Cuts[i]), with the first and last extending to ±inf).
	Cuts []float64 `json:"cuts"`
	// Assignment maps shard index → replica-ordered node addresses.
	Assignment [][]string `json:"assignment"`
	// Self and Owned are set when a node serves the map: its own
	// address and the shards it hosts.
	Self  string `json:"self,omitempty"`
	Owned []int  `json:"owned,omitempty"`
}

func buildPartitionMap(meta *Meta, nodes []string, owners [][]int, replicas int) PartitionMap {
	pm := PartitionMap{
		Shards:     meta.Shards(),
		Len:        meta.Len(),
		Nodes:      nodes,
		Replicas:   replicas,
		Cuts:       meta.Cuts(),
		Assignment: make([][]string, meta.Shards()),
	}
	for i, own := range owners {
		addrs := make([]string, len(own))
		for j, ni := range own {
			addrs[j] = nodes[ni]
		}
		pm.Assignment[i] = addrs
	}
	return pm
}

// PartitionJSON implements server.PartitionProvider.
func (rt *Router) PartitionJSON() ([]byte, error) {
	return json.Marshal(buildPartitionMap(rt.meta, rt.opts.Nodes, rt.owners, rt.opts.Replicas))
}
