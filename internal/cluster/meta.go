// Package cluster scales the sharded serving stack across processes: a
// Router tier fronts N data nodes, each hosting a subset of the shards
// behind a consistent-hash partition map with R-way replication.
//
// The whole design rests on one invariant: a clustered deployment must
// answer every query with the exact bytes a single-node
// shard.Coordinator would produce for the same seed. That holds
// because every random decision is made once, on the router, with the
// coordinator's own exported planners:
//
//   - Partition: shard.SortByValue + shard.CutRuns are pure functions
//     of (values, weights, K), so the router and every node derive
//     identical shard contents and boundaries from the dataset — no
//     assignment exchange.
//   - Budgets: the router replans the multinomial WR split
//     (shard.PlanWR) and hypergeometric WoR split (shard.PlanWoR) on
//     the request's own rng stream, against per-shard range weights
//     and counts computed from local metadata that replicates each
//     shard kernel's arithmetic bit-for-bit (see Meta).
//   - Streams: where the coordinator's fan-out calls r.Split() per
//     positive-budget shard, the router calls r.SplitSeed() — the same
//     two Uint64 draws — and ships the 8-byte seed in a kind-3 frame.
//     The node rebuilds rng.New(seed): the identical child stream.
//   - Merge: partials are concatenated in ascending shard order and
//     the tail shuffled with the request stream, exactly as
//     Coordinator.fanOut merges.
//
// Nodes are therefore pure functions of (shard data, seed, budget):
// failing over a sub-sample to a replica — or retrying it after a
// timeout — cannot perturb the answer, which is what makes the
// failover path safe to take silently.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/shard"
)

// dsName is the dataset name every node's shard services host their
// run under, mirroring the coordinator's.
const dsName = "shard"

// metaShard is one shard's local metadata: the run's values and
// weights (in the order the coordinator hands them to the shard
// service) plus the prefix-weight array its kernel would build, so the
// router evaluates RangeWeight/Count without touching a node.
type metaShard struct {
	vals    []float64 // run values, sorted ascending
	weights []float64 // run weights, same order as vals
	prefix  []float64 // kernel-order prefix weights; prefix[n] = total
	lo, hi  float64   // half-open ownership interval [lo, hi)
}

// Meta is the deterministic partition view shared by the router and
// every node: the dataset sorted and cut into shard runs with the
// coordinator's own code, plus per-shard prefix weights replicating
// core.RangeSampler bit-for-bit.
//
// Bit-exactness matters because the WR budget split feeds the shard
// range weights into rng.Multinomial: a weight differing in the last
// ulp from what the single-node coordinator computes could tip a
// budget and diverge the whole stream. Two details make it exact:
// every kernel sorts its input through the same index-sort
// (rangesample's base), so ties land in the same permutation here as
// on the node, and prefix sums are accumulated per shard in that
// kernel order — never globally — so float rounding matches the
// shard-local arithmetic.
type Meta struct {
	shards []metaShard
	n      int
}

// NewMeta sorts and cuts the dataset exactly as shard.New does and
// precomputes each run's kernel-order prefix weights. nil weights mean
// uniform.
func NewMeta(values, weights []float64, shards int) (*Meta, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: shards = %d", core.ErrBadValue, shards)
	}
	if len(values) == 0 {
		return nil, service.ErrEmptyDataset
	}
	if weights != nil && len(weights) != len(values) {
		return nil, fmt.Errorf("%w: %d values vs %d weights", core.ErrBadValue, len(values), len(weights))
	}
	sv, sw := shard.SortByValue(values, weights)
	runs := shard.CutRuns(sv, shards)
	m := &Meta{n: len(sv), shards: make([]metaShard, 0, len(runs))}
	for i, run := range runs {
		rv := sv[run[0]:run[1]]
		rw := sw[run[0]:run[1]]
		// Replicate the kernel's base construction: indices sorted by
		// value with sort.Slice. rv is already ascending, but sort.Slice
		// is not stable, so ties may settle in a different permutation
		// than input order — and the prefix sums must accumulate in the
		// kernel's exact weight order or the last ulp diverges.
		idx := make([]int, len(rv))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(x, y int) bool { return rv[idx[x]] < rv[idx[y]] })
		prefix := make([]float64, len(rv)+1)
		for j, k := range idx {
			prefix[j+1] = prefix[j] + rw[k]
		}
		lo, hi := shard.RunBounds(sv, runs, i)
		m.shards = append(m.shards, metaShard{vals: rv, weights: rw, prefix: prefix, lo: lo, hi: hi})
	}
	return m, nil
}

// Shards returns the effective shard count (runs never start empty, so
// this can be below the requested K).
func (m *Meta) Shards() int { return len(m.shards) }

// Len returns the dataset size.
func (m *Meta) Len() int { return m.n }

// Bounds returns shard i's half-open ownership interval.
func (m *Meta) Bounds(i int) (lo, hi float64) { return m.shards[i].lo, m.shards[i].hi }

// Cuts returns the interior shard boundaries (len Shards()-1), the
// finite values of the partition map.
func (m *Meta) Cuts() []float64 {
	cuts := make([]float64, 0, len(m.shards)-1)
	for i := 1; i < len(m.shards); i++ {
		cuts = append(cuts, m.shards[i].lo)
	}
	return cuts
}

// Run returns copies of shard i's values and weights in the order the
// coordinator hands them to a shard service — what a node builds its
// local service from.
func (m *Meta) Run(i int) (values, weights []float64) {
	ms := &m.shards[i]
	return append([]float64(nil), ms.vals...), append([]float64(nil), ms.weights...)
}

// overlapping returns the shards whose interval intersects [lo, hi],
// by the coordinator's rule.
func (m *Meta) overlapping(lo, hi float64) []int {
	out := make([]int, 0, len(m.shards))
	for i := range m.shards {
		ms := &m.shards[i]
		if hi < ms.lo || lo >= ms.hi {
			continue
		}
		out = append(out, i)
	}
	return out
}

// rangeWeight is core.RangeSampler.RangeWeight evaluated against the
// shard-local arrays: same sort.Search bounds, same prefix difference.
func (ms *metaShard) rangeWeight(lo, hi float64) float64 {
	if core.ValidateRange(lo, hi) != nil {
		return 0
	}
	n := len(ms.vals)
	a := sort.Search(n, func(i int) bool { return ms.vals[i] >= lo })
	b := sort.Search(n, func(i int) bool { return ms.vals[i] > hi })
	if a >= b {
		return 0
	}
	return ms.prefix[b] - ms.prefix[a]
}

// count is core.RangeSampler.Count against the shard-local arrays.
func (ms *metaShard) count(lo, hi float64) int {
	if core.ValidateRange(lo, hi) != nil {
		return 0
	}
	n := len(ms.vals)
	a := sort.Search(n, func(i int) bool { return ms.vals[i] >= lo })
	b := sort.Search(n, func(i int) bool { return ms.vals[i] > hi }) - 1
	if a > b {
		return 0
	}
	return b - a + 1
}

// planWR mirrors Coordinator.SampleInto's planning phase on the
// request stream r: the single-overlap fast path consumes no
// randomness and routes the whole budget; otherwise in-range shard
// weights feed shard.PlanWR. Callers must have validated the range and
// k > 0 first, exactly as the coordinator orders its checks.
func (m *Meta) planWR(r *core.Rand, lo, hi float64, k int) (shards, budgets []int, err error) {
	first, overlaps := -1, 0
	for i := range m.shards {
		ms := &m.shards[i]
		if hi < ms.lo || lo >= ms.hi {
			continue
		}
		if first < 0 {
			first = i
		}
		overlaps++
	}
	if overlaps == 1 {
		return []int{first}, []int{k}, nil
	}
	shards = m.overlapping(lo, hi)
	weights := make([]float64, len(shards))
	total := 0.0
	for i, s := range shards {
		w := m.shards[s].rangeWeight(lo, hi)
		weights[i] = w
		total += w
	}
	if !(total > 0) {
		return nil, nil, core.ErrEmptyRange
	}
	budgets, err = shard.PlanWR(r, k, weights)
	if err != nil {
		return nil, nil, err
	}
	return shards, budgets, nil
}

// planWoR mirrors Coordinator.SampleWoRInto's planning phase: shard
// counts feed shard.PlanWoR's global rank draw on r.
func (m *Meta) planWoR(r *core.Rand, lo, hi float64, k int) (shards, budgets []int, err error) {
	shards = m.overlapping(lo, hi)
	counts := make([]int, len(shards))
	for i, s := range shards {
		counts[i] = m.shards[s].count(lo, hi)
	}
	budgets, err = shard.PlanWoR(r, k, counts)
	if err != nil {
		return nil, nil, err
	}
	return shards, budgets, nil
}

// Count returns |S ∩ [lo, hi]| summed across shards.
func (m *Meta) Count(lo, hi float64) int {
	total := 0
	for _, s := range m.overlapping(lo, hi) {
		total += m.shards[s].count(lo, hi)
	}
	return total
}

// RangeWeight returns the total in-range weight summed across shards.
func (m *Meta) RangeWeight(lo, hi float64) float64 {
	total := 0.0
	for _, s := range m.overlapping(lo, hi) {
		total += m.shards[s].rangeWeight(lo, hi)
	}
	return total
}
