package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
)

// testDataset builds a dataset with duplicate values and non-uniform
// weights — the inputs that stress tie-permutation and prefix-sum
// bit-exactness.
func testDataset(n int) (values, weights []float64) {
	r := rng.New(0xDA7A)
	values = make([]float64, n)
	weights = make([]float64, n)
	for i := range values {
		values[i] = math.Floor(r.Float64()*float64(n)/3) / 7
		weights[i] = 0.25 + 3*r.Float64()
	}
	return values, weights
}

// testCluster is a booted router + N node servers over loopback TCP.
type testCluster struct {
	router    *Router
	nodes     []*server.Server
	hosts     []*NodeHost
	listeners []net.Listener
	addrs     []string
}

func (tc *testCluster) close() {
	tc.router.Close()
	for i, s := range tc.nodes {
		if s != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			s.Shutdown(ctx)
			cancel()
		}
		if tc.listeners[i] != nil {
			tc.listeners[i].Close()
		}
	}
	for _, nh := range tc.hosts {
		nh.Close()
	}
}

// killNode stops node i's server and listener, simulating a crash.
func (tc *testCluster) killNode(i int) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	tc.nodes[i].Shutdown(ctx)
	cancel()
	tc.listeners[i].Close()
	tc.nodes[i] = nil
	tc.listeners[i] = nil
}

// bootCluster starts nNodes data nodes hosting the dataset and a
// router fronting them. wrap, when non-nil, wraps each node's handler
// (for intercepting headers in tests).
func bootCluster(t testing.TB, values, weights []float64, nNodes, shards, replicas int, wrap func(node int, h http.Handler) http.Handler) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < nNodes; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		tc.listeners = append(tc.listeners, l)
		tc.addrs = append(tc.addrs, l.Addr().String())
	}
	for i := 0; i < nNodes; i++ {
		nh, err := NewNodeHost(context.Background(), values, weights, NodeOptions{
			Nodes:    tc.addrs,
			Self:     tc.addrs[i],
			Replicas: replicas,
			Shards:   shards,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		tc.hosts = append(tc.hosts, nh)
		srv := server.New(nh, server.Options{Node: nh, Seed: uint64(1000 + i)})
		tc.nodes = append(tc.nodes, srv)
		h := srv.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		go http.Serve(tc.listeners[i], h)
	}
	rt, err := NewRouter(values, weights, Options{
		Nodes:          tc.addrs,
		Replicas:       replicas,
		Shards:         shards,
		AttemptTimeout: 2 * time.Second,
		Backoff:        200 * time.Microsecond,
	})
	if err != nil {
		tc.close()
		t.Fatalf("router: %v", err)
	}
	tc.router = rt
	return tc
}

// twinCoordinator builds the single-node reference for the same
// dataset and shard count.
func twinCoordinator(t testing.TB, values, weights []float64, shards int) *shard.Coordinator {
	t.Helper()
	c, err := shard.New(context.Background(), "twin", values, weights, shard.Options{Shards: shards})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return c
}

type idQuery struct {
	lo, hi float64
	k      int
	wor    bool
}

// identityQueries covers single-shard, multi-shard, full-range, empty,
// zero-budget and error cases.
func identityQueries(values []float64) []idQuery {
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	mid := (lo + hi) / 2
	return []idQuery{
		{lo, hi, 64, false},
		{lo, hi, 64, true},
		{mid, mid + (hi-lo)/64, 32, false}, // hot narrow range
		{mid, mid + (hi-lo)/64, 8, true},
		{lo, mid, 128, false},
		{mid, hi, 128, true},
		{lo, hi, 0, false},
		{lo, hi, 0, true},
		{hi + 1, hi + 2, 16, false},                 // empty range
		{hi + 1, hi + 2, 4, true},                   // WoR empty → too large
		{lo, hi, len(values) * 2, true},             // k > count
		{lo + (hi-lo)/3, hi - (hi-lo)/3, 96, false}, // interior multi-shard
	}
}

// assertIdentical runs every query against both engines with the same
// seed and requires byte-identical samples and matching error classes.
func assertIdentical(t *testing.T, tag string, tc *testCluster, coord *shard.Coordinator, values []float64, seed uint64) {
	t.Helper()
	ctx := context.Background()
	for qi, q := range identityQueries(values) {
		rc, rr := rng.New(seed+uint64(qi)), rng.New(seed+uint64(qi))
		var want, got []float64
		var werr, gerr error
		if q.wor {
			want, werr = coord.SampleWoRInto(ctx, rc, q.lo, q.hi, q.k, nil)
			got, gerr = tc.router.SampleWoRInto(ctx, rr, q.lo, q.hi, q.k, nil)
		} else {
			want, werr = coord.SampleInto(ctx, rc, q.lo, q.hi, q.k, nil)
			got, gerr = tc.router.SampleInto(ctx, rr, q.lo, q.hi, q.k, nil)
		}
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s query %d (%+v): coordinator err = %v, router err = %v", tag, qi, q, werr, gerr)
		}
		if werr != nil {
			// The coordinator's error class must surface through the wire
			// (locally or as a RemoteError with the matching status).
			for _, sentinel := range []error{core.ErrEmptyRange, core.ErrSampleTooLarge, core.ErrBadRange} {
				if errors.Is(werr, sentinel) && !remoteIs(gerr, sentinel) {
					t.Fatalf("%s query %d: coordinator %v vs router %v", tag, qi, werr, gerr)
				}
			}
			continue
		}
		if len(want) != len(got) {
			t.Fatalf("%s query %d (%+v): len %d vs %d", tag, qi, q, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s query %d (%+v): sample %d: %v vs %v", tag, qi, q, i, want[i], got[i])
			}
		}
	}
}

// remoteIs matches a sentinel against either a local error or a
// RemoteError carrying the node's message (the sentinel's text
// travelled the wire; match by status class).
func remoteIs(err error, sentinel error) bool {
	if errors.Is(err, sentinel) {
		return true
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	switch sentinel {
	case core.ErrSampleTooLarge:
		return re.Status == http.StatusUnprocessableEntity
	case core.ErrEmptyRange:
		return re.Status == http.StatusNotFound || re.Status == http.StatusUnprocessableEntity
	case core.ErrBadRange:
		return re.Status == http.StatusBadRequest
	}
	return false
}

func TestRouterDrawIdentity(t *testing.T) {
	values, weights := testDataset(4000)
	tc := bootCluster(t, values, weights, 3, 5, 2, nil)
	defer tc.close()
	coord := twinCoordinator(t, values, weights, 5)
	defer coord.Close()
	assertIdentical(t, "healthy", tc, coord, values, 7700)
}

func TestRouterDrawIdentityUniform(t *testing.T) {
	values, _ := testDataset(2500)
	tc := bootCluster(t, values, nil, 2, 4, 2, nil)
	defer tc.close()
	coord := twinCoordinator(t, values, nil, 4)
	defer coord.Close()
	assertIdentical(t, "uniform", tc, coord, values, 4400)
}

func TestRouterFailover(t *testing.T) {
	values, weights := testDataset(3000)
	tc := bootCluster(t, values, weights, 3, 6, 2, nil)
	defer tc.close()
	coord := twinCoordinator(t, values, weights, 6)
	defer coord.Close()

	assertIdentical(t, "pre-kill", tc, coord, values, 123)
	// Kill the primary owner of shard 0: the ring hashes the ephemeral
	// node addresses, so a fixed victim index might be secondary
	// everywhere and never receive an attempt to fail over from.
	tc.killNode(tc.router.owners[0][0])
	// Every shard keeps a live replica (R=2, one node down), so answers
	// must stay byte-identical while the router fails over.
	assertIdentical(t, "post-kill", tc, coord, values, 456)
	if tc.router.Failovers() == 0 {
		t.Fatal("no failovers recorded after killing a node")
	}
}

func TestRouterDistribution(t *testing.T) {
	// Uniform weights over a multi-shard range: sample counts per value
	// bucket must pass a chi-squared uniformity test.
	n := 1200
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	tc := bootCluster(t, values, nil, 2, 4, 2, nil)
	defer tc.close()

	ctx := context.Background()
	r := rng.New(99)
	const draws = 30000
	counts := make([]int, 10)
	buf := make([]float64, 0, 64)
	for got := 0; got < draws; {
		out, err := tc.router.SampleInto(ctx, r, 0, float64(n-1), 64, buf[:0])
		if err != nil {
			t.Fatalf("sample: %v", err)
		}
		for _, v := range out {
			counts[int(v)*len(counts)/n]++
			got++
		}
	}
	chi2, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatalf("chi2: %v", err)
	}
	if crit := stats.ChiSquareCritical(len(counts)-1, 1e-9); chi2 > crit {
		t.Fatalf("chi2 = %.2f > critical %.2f: cluster samples not uniform", chi2, crit)
	}
}

func TestNodeNotOwned(t *testing.T) {
	values, weights := testDataset(1000)
	addrs := []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}
	nh, err := NewNodeHost(context.Background(), values, weights, NodeOptions{
		Nodes: addrs, Self: addrs[0], Replicas: 1, Shards: 6,
	})
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	defer nh.Close()
	owned := nh.Owned()
	if len(owned) == 0 || len(owned) == 6 {
		t.Fatalf("R=1 over 3 nodes should own a strict subset, got %v", owned)
	}
	// Subsample for a shard someone else owns → NotOwnedError (421).
	var missing int = -1
	ownedSet := map[int]bool{}
	for _, s := range owned {
		ownedSet[s] = true
	}
	for s := 0; s < 6; s++ {
		if !ownedSet[s] {
			missing = s
			break
		}
	}
	_, err = nh.Subsample(context.Background(), server.SubsampleRequest{Shard: missing, Seed: 1, Lo: 0, Hi: 1, K: 1}, nil)
	var noe *NotOwnedError
	if !errors.As(err, &noe) {
		t.Fatalf("want NotOwnedError, got %v", err)
	}
	if noe.HTTPStatus() != http.StatusMisdirectedRequest {
		t.Fatalf("status = %d, want 421", noe.HTTPStatus())
	}
}

func TestRingDeterministicAndDistinct(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r1, r2 := buildRing(nodes, 0), buildRing(nodes, 0)
	for s := 0; s < 32; s++ {
		o1, o2 := r1.owners(s, 3), r2.owners(s, 3)
		if len(o1) != 3 {
			t.Fatalf("shard %d: %d owners, want 3", s, len(o1))
		}
		seen := map[int]bool{}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("shard %d: rings disagree: %v vs %v", s, o1, o2)
			}
			if seen[o1[i]] {
				t.Fatalf("shard %d: duplicate owner in %v", s, o1)
			}
			seen[o1[i]] = true
		}
	}
	if got := r1.owners(0, 99); len(got) != len(nodes) {
		t.Fatalf("replicas should clamp to node count, got %v", got)
	}
}

func TestBreaker(t *testing.T) {
	b := breaker{threshold: 3, cooldown: 50 * time.Millisecond}
	now := time.Now()
	if !b.allow(now) {
		t.Fatal("fresh breaker should allow")
	}
	for i := 0; i < 3; i++ {
		b.onFailure(now)
	}
	if b.allow(now) {
		t.Fatal("breaker should be open after threshold failures")
	}
	if !b.open(now) {
		t.Fatal("open() should report open")
	}
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("cooldown elapsed: breaker should admit a half-open probe")
	}
	b.onSuccess()
	if !b.allow(now) || b.open(now) {
		t.Fatal("success should close the breaker")
	}
}

func TestPartitionMapsAgree(t *testing.T) {
	values, weights := testDataset(800)
	tc := bootCluster(t, values, weights, 3, 4, 2, nil)
	defer tc.close()

	rb, err := tc.router.PartitionJSON()
	if err != nil {
		t.Fatalf("router partition: %v", err)
	}
	// Every node must serve the same assignment (modulo Self/Owned).
	resp, err := http.Get("http://" + tc.addrs[1] + "/cluster/partition")
	if err != nil {
		t.Fatalf("node partition: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node partition status = %d", resp.StatusCode)
	}
	var want, got PartitionMap
	if err := json.Unmarshal(rb, &want); err != nil {
		t.Fatalf("decode router map: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode node map: %v", err)
	}
	if got.Self != tc.addrs[1] || len(got.Owned) == 0 {
		t.Fatalf("node map should set Self/Owned, got %+v", got)
	}
	if fmt.Sprint(want.Assignment) != fmt.Sprint(got.Assignment) || fmt.Sprint(want.Cuts) != fmt.Sprint(got.Cuts) {
		t.Fatalf("router and node assignment views diverge:\n%v\n%v", want, got)
	}
	for _, h := range tc.hosts {
		for _, s := range h.Owned() {
			found := false
			for _, addr := range want.Assignment[s] {
				if addr == h.opts.Self {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %s hosts shard %d but router assignment %v omits it", h.opts.Self, s, want.Assignment[s])
			}
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	values, weights := testDataset(1500)
	var mu sync.Mutex
	seen := map[int][]string{}
	tc := bootCluster(t, values, weights, 2, 4, 2, func(node int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/subsample" {
				mu.Lock()
				seen[node] = append(seen[node], r.Header.Get("X-Request-ID"))
				mu.Unlock()
			}
			h.ServeHTTP(w, r)
		})
	})
	defer tc.close()

	// Front the router with a server, as production does, and send a
	// query with an explicit inbound request ID over a multi-shard range.
	fe := server.New(tc.router, server.Options{Seed: 42})
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	lo, hi := values[0], values[0]
	for _, v := range values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/sample?lo=%v&hi=%v&k=64", ts.URL, lo, hi), nil)
	const wantID = "cafe0123cafe0123"
	req.Header.Set("X-Request-ID", wantID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("sample: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != wantID {
		t.Fatalf("router echoed id %q, want %q", got, wantID)
	}
	mu.Lock()
	defer mu.Unlock()
	hops := 0
	for node, ids := range seen {
		for _, id := range ids {
			hops++
			if id != wantID {
				t.Fatalf("node %d saw X-Request-ID %q, want %q", node, id, wantID)
			}
		}
	}
	if hops == 0 {
		t.Fatal("no sub-sample hops recorded")
	}
}

func TestNodeEngineAnswersOwnedQueries(t *testing.T) {
	values, weights := testDataset(2000)
	tc := bootCluster(t, values, weights, 2, 4, 2, nil)
	defer tc.close()
	// With R=2 over 2 nodes every node owns every shard, so the node's
	// own engine must answer global queries draw-identically too.
	coord := twinCoordinator(t, values, weights, 4)
	defer coord.Close()
	ctx := context.Background()
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	want, err := coord.SampleInto(ctx, rng.New(5), lo, hi, 80, nil)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	got, err := tc.hosts[0].SampleInto(ctx, rng.New(5), lo, hi, 80, nil)
	if err != nil {
		t.Fatalf("node engine: %v", err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sample %d: %v vs %v", i, want[i], got[i])
		}
	}
}

func BenchmarkClusterSample(b *testing.B) {
	n := 1 << 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	tc := bootCluster(b, values, nil, 2, 4, 2, nil)
	defer tc.close()
	lo, hi := float64(n/2), float64(n/2+n/64)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(rng.New(uint64(b.N)).Uint64())
		buf := make([]float64, 0, 64)
		for pb.Next() {
			out, err := tc.router.SampleInto(ctx, r, lo, hi, 64, buf[:0])
			if err != nil {
				b.Fatalf("sample: %v", err)
			}
			buf = out[:0]
		}
	})
}
