package setunion

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 1); err != ErrEmptyCollection {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([][]int{{}, {}}, 1); err != ErrEmptyCollection {
		t.Fatalf("all-empty err = %v", err)
	}
}

func TestQueryErrors(t *testing.T) {
	c, err := New([][]int{{1, 2}, {3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	if _, _, err := c.Query(r, []int{5}, 1, nil); err == nil {
		t.Fatal("out-of-range set index accepted")
	}
	if _, _, err := c.Query(r, nil, 1, nil); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestDisjointSetsUniform(t *testing.T) {
	sets := [][]int{
		{1, 2, 3},
		{10, 11},
		{20, 21, 22, 23, 24},
	}
	c, err := New(sets, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	const draws = 100000
	counts := map[int]int{}
	out, ok, err := c.Query(r, []int{0, 1, 2}, draws, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(out) != draws {
		t.Fatalf("drew %d", len(out))
	}
	for _, e := range out {
		counts[e]++
	}
	if len(counts) != 10 {
		t.Fatalf("sampled %d distinct, want 10", len(counts))
	}
	expected := float64(draws) / 10
	for e, cnt := range counts {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("element %d count %d, expected ~%v", e, cnt, expected)
		}
	}
}

func TestOverlappingSetsUniform(t *testing.T) {
	// Heavy overlap: an element in many sets must NOT be oversampled —
	// the whole point of the permutation technique.
	sets := [][]int{
		{1, 2, 3, 4, 5},
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3, 4, 5, 6, 7},
		{1, 8},
	}
	c, err := New(sets, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	const draws = 160000
	counts := map[int]int{}
	out, ok, err := c.Query(r, []int{0, 1, 2, 3}, draws, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, e := range out {
		counts[e]++
	}
	if len(counts) != 8 {
		t.Fatalf("sampled %d distinct, want 8", len(counts))
	}
	expected := float64(draws) / 8
	for e, cnt := range counts {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("element %d count %d, expected ~%v (overlap bias?)", e, cnt, expected)
		}
	}
}

func TestSubsetGroup(t *testing.T) {
	sets := [][]int{
		{1, 2, 3},
		{4, 5},
		{6},
	}
	c, err := New(sets, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	const draws = 60000
	counts := map[int]int{}
	out, ok, err := c.Query(r, []int{1, 2}, draws, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, e := range out {
		if e == 1 || e == 2 || e == 3 {
			t.Fatalf("sampled %d from a set outside G", e)
		}
		counts[e]++
	}
	expected := float64(draws) / 3
	for e, cnt := range counts {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("element %d count %d", e, cnt)
		}
	}
}

func TestSingleSingletonSet(t *testing.T) {
	c, err := New([][]int{{42}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := c.Query(rng.New(10), []int{0}, 5, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, e := range out {
		if e != 42 {
			t.Fatalf("sampled %d", e)
		}
	}
}

func TestLargeSetsWithSketches(t *testing.T) {
	// Sets above the sketch threshold exercise the pre-built-sketch and
	// merge paths.
	const size = 3000
	a := make([]int, size)
	b := make([]int, size)
	for i := range a {
		a[i] = i
		b[i] = size/2 + i // half overlap
	}
	c, err := New([][]int{a, b}, 11)
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.UnionSizeEstimate([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.UnionSizeExact([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if exact != size*3/2 {
		t.Fatalf("exact union = %d", exact)
	}
	if est < float64(exact)/2 || est > 1.5*float64(exact) {
		t.Fatalf("estimate %v outside band of %d", est, exact)
	}
	// Sample and verify coverage of both halves.
	r := rng.New(12)
	out, ok, err := c.Query(r, []int{0, 1}, 3000, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	var loHalf, overlap, hiHalf int
	for _, e := range out {
		switch {
		case e < size/2:
			loHalf++
		case e < size:
			overlap++
		default:
			hiHalf++
		}
	}
	// Each third of the union should get ~1/3 of samples.
	for i, cnt := range []int{loHalf, overlap, hiHalf} {
		if math.Abs(float64(cnt)-1000) > 6*math.Sqrt(1000) {
			t.Fatalf("third %d count %d, expected ~1000", i, cnt)
		}
	}
}

func TestDuplicateElementsWithinSet(t *testing.T) {
	c, err := New([][]int{{7, 7, 7, 8}}, 13)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(14)
	const draws = 40000
	counts := map[int]int{}
	out, ok, err := c.Query(r, []int{0}, draws, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, e := range out {
		counts[e]++
	}
	// Duplicates inside a set must not bias the distribution.
	if math.Abs(float64(counts[7])-draws/2) > 6*math.Sqrt(draws/2) {
		t.Fatalf("counts = %v, want ~50/50", counts)
	}
}

func TestRebuildKeepsAnswering(t *testing.T) {
	sets := [][]int{{1, 2}, {3}}
	c, err := New(sets, 15)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(16)
	// Push well past the rebuild threshold (U = 3).
	for i := 0; i < 50; i++ {
		out, ok, err := c.Query(r, []int{0, 1}, 2, nil)
		if err != nil || !ok || len(out) != 2 {
			t.Fatalf("query %d: ok=%v err=%v len=%d", i, ok, err, len(out))
		}
	}
	c.Rebuild()
	if _, ok, err := c.Query(r, []int{0}, 1, nil); err != nil || !ok {
		t.Fatalf("post-rebuild: ok=%v err=%v", ok, err)
	}
}

func TestCrossQueryIndependence(t *testing.T) {
	// Repeated identical queries on a 2-element union: consecutive
	// outputs must form independent pairs.
	c, err := New([][]int{{0}, {1}}, 17)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(18)
	var pairs [4]int
	const queries = 40000
	out, _, err := c.Query(r, []int{0, 1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := out[0]
	for i := 0; i < queries; i++ {
		out, _, err := c.Query(r, []int{0, 1}, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		pairs[prev*2+out[0]]++
		prev = out[0]
	}
	expected := float64(queries) / 4
	for i, cnt := range pairs {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pair %02b count %d, expected ~%v", i, cnt, expected)
		}
	}
}

func BenchmarkQueryG8(b *testing.B) {
	r := rng.New(1)
	sets := make([][]int, 64)
	for i := range sets {
		s := make([]int, 2000)
		for j := range s {
			s[j] = r.Intn(50000)
		}
		sets[i] = s
	}
	c, err := New(sets, 2)
	if err != nil {
		b.Fatal(err)
	}
	G := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ok bool
		dst, ok, err = c.Query(r, G, 1, dst[:0])
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

func TestAccessorsAndEstimateErrors(t *testing.T) {
	c, err := New([][]int{{1, 2, 2}, {2, 3}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSets() != 2 {
		t.Fatalf("NumSets = %d", c.NumSets())
	}
	if c.UniverseSize() != 3 {
		t.Fatalf("UniverseSize = %d", c.UniverseSize())
	}
	if c.TotalSize() != 5 {
		t.Fatalf("TotalSize = %d (raw multiset size)", c.TotalSize())
	}
	if _, err := c.UnionSizeEstimate([]int{9}); err == nil {
		t.Fatal("bad set index accepted by estimate")
	}
	if _, err := c.UnionSizeEstimate(nil); err == nil {
		t.Fatal("empty group accepted by estimate")
	}
	if _, err := c.UnionSizeExact([]int{9}); err == nil {
		t.Fatal("bad set index accepted by exact")
	}
}

func TestQueryWoR(t *testing.T) {
	c, err := New([][]int{{1, 2, 3, 4}, {3, 4, 5, 6}}, 31)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(32)
	out, ok, err := c.QueryWoR(r, []int{0, 1}, 4, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	seen := map[int]bool{}
	for _, e := range out {
		if e < 1 || e > 6 {
			t.Fatalf("element %d outside union", e)
		}
		if seen[e] {
			t.Fatalf("duplicate %d in WoR output", e)
		}
		seen[e] = true
	}
	// Oversized request: |∪G| = 6 < 7.
	if _, ok, err := c.QueryWoR(r, []int{0, 1}, 7, nil); ok || err != nil {
		t.Fatalf("oversized: ok=%v err=%v", ok, err)
	}
	// Exact full union.
	out, ok, err = c.QueryWoR(r, []int{0, 1}, 6, nil)
	if err != nil || !ok || len(out) != 6 {
		t.Fatalf("full union: ok=%v err=%v len=%d", ok, err, len(out))
	}
}

func TestQueryWoRMarginals(t *testing.T) {
	c, err := New([][]int{{0, 1, 2}, {2, 3, 4, 5}}, 33)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(34)
	const trials = 30000
	counts := map[int]int{}
	for i := 0; i < trials; i++ {
		out, ok, err := c.QueryWoR(r, []int{0, 1}, 2, nil)
		if err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		for _, e := range out {
			counts[e]++
		}
	}
	// Inclusion probability 2/6 per element.
	expected := float64(trials) * 2 / 6
	for e := 0; e <= 5; e++ {
		if math.Abs(float64(counts[e])-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("element %d marginal %d, expected ~%v", e, counts[e], expected)
		}
	}
}
