// Package setunion implements Technique 4 of the paper ("Random
// Permutation", Section 7): the set union sampling problem and the
// Theorem 8 structure.
//
// Problem: F is a collection of sets over a common element domain. Given
// G ⊆ F, a query returns an element sampled uniformly at random from
// ∪G (the union of the sets in G), independently of all previous
// queries' outputs. The problem is the core of fair near neighbour
// search (Section 2, Benefit 2; see internal/fairnn).
//
// Structure (following Aumüller et al. [8], refined in [7], as presented
// by the paper):
//
//   - a random permutation Π of the distinct elements assigns each a rank
//     in [1, U];
//   - each set stores its members' ranks in sorted order (a static BST —
//     realised here as a sorted array with binary search, which answers
//     the same rank-range reporting queries in O(log n + k));
//   - each set of size ≥ log₂ n carries a KMV sketch so that Û_G, a
//     factor-1.5 estimate of |∪G|, can be derived by merging g sketches
//     (smaller sets sketch on the fly);
//   - a query cuts the rank space into Û_G intervals, picks one uniformly,
//     materialises the union's members inside it (expected O(1) of them),
//     and accepts a uniform member with probability |∪I|/m for a cap
//     m = Θ(log n); repeats otherwise.
//
// Each success returns an exactly uniform element of ∪G (Equation 5 of
// the paper: acceptance probability 1/(Û_G·m) is the same for every
// element). Expected cost per sample is O(g log² n).
//
// The structure answers each query correctly with high probability; as in
// the paper, it rebuilds itself with fresh randomness every U queries so
// that the guarantee holds over unbounded query sequences (the amortised
// rebuild cost is O(log n) per query).
package setunion

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/sketch"
)

// ErrEmptyCollection is returned when constructing over no sets.
var ErrEmptyCollection = errors.New("setunion: empty collection")

// ErrBadSet is returned for queries naming an unknown set index.
var ErrBadSet = errors.New("setunion: set index out of range")

// Collection is the Theorem 8 structure.
type Collection struct {
	sets [][]int // original member lists (element ids)
	// elements of the union domain
	universe []int       // distinct element ids
	rankOf   map[int]int // element id -> rank in [1, U]
	byRank   []int       // byRank[r-1] = element id with rank r
	// per-set sorted member ranks
	ranks [][]int
	// sketches for sets of size >= sketchMin
	sketches  []*sketch.KMV
	hasher    sketch.Hasher
	k         int
	sketchMin int
	n         int // Σ |S| over all sets (the paper's n)

	r *rng.Source // structural randomness (permutation, salts, rebuilds)

	queriesSinceRebuild int
	rebuildEvery        int
}

// New builds the structure over sets of element ids. seed drives the
// structural randomness (permutation, sketch salt); query randomness
// comes from the caller's source. Build time O(n log n) expected.
func New(sets [][]int, seed uint64) (*Collection, error) {
	if len(sets) == 0 {
		return nil, ErrEmptyCollection
	}
	n := 0
	for _, s := range sets {
		n += len(s)
	}
	if n == 0 {
		return nil, ErrEmptyCollection
	}
	c := &Collection{
		sets: make([][]int, len(sets)),
		r:    rng.New(seed),
		n:    n,
	}
	for i, s := range sets {
		c.sets[i] = append([]int(nil), s...)
	}
	c.build()
	return c, nil
}

// build (re)creates all randomness-dependent state: the permutation, the
// rank arrays and the sketches.
func (c *Collection) build() {
	// Distinct universe.
	seen := make(map[int]struct{})
	c.universe = c.universe[:0]
	for _, s := range c.sets {
		for _, e := range s {
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				c.universe = append(c.universe, e)
			}
		}
	}
	// Random permutation of the universe → ranks.
	c.r.Shuffle(len(c.universe), func(i, j int) {
		c.universe[i], c.universe[j] = c.universe[j], c.universe[i]
	})
	c.rankOf = make(map[int]int, len(c.universe))
	c.byRank = append(c.byRank[:0], c.universe...)
	for i, e := range c.universe {
		c.rankOf[e] = i + 1
	}
	// Per-set sorted rank arrays.
	c.ranks = make([][]int, len(c.sets))
	for i, s := range c.sets {
		rs := make([]int, 0, len(s))
		dedup := make(map[int]struct{}, len(s))
		for _, e := range s {
			if _, dup := dedup[e]; dup {
				continue
			}
			dedup[e] = struct{}{}
			rs = append(rs, c.rankOf[e])
		}
		sort.Ints(rs)
		c.ranks[i] = rs
	}
	// Sketches: ε=1/2, δ=1/n³ as in the paper, on sets of size ≥ log₂ n.
	logn := math.Log2(float64(c.n) + 2)
	c.sketchMin = int(logn)
	if c.sketchMin < 1 {
		c.sketchMin = 1
	}
	delta := 1 / (float64(c.n) * float64(c.n) * float64(c.n))
	c.k = sketch.KForEpsilonDelta(0.5, delta)
	c.hasher = sketch.NewHasher(c.r.Uint64())
	c.sketches = make([]*sketch.KMV, len(c.sets))
	for i, rs := range c.ranks {
		if len(rs) >= c.sketchMin {
			s, err := sketch.Build(c.hasher, c.k, rs)
			if err != nil {
				panic(fmt.Sprintf("setunion: sketch build: %v", err))
			}
			c.sketches[i] = s
		}
	}
	c.rebuildEvery = len(c.universe)
	if c.rebuildEvery < 1 {
		c.rebuildEvery = 1
	}
	c.queriesSinceRebuild = 0
}

// NumSets returns |F|.
func (c *Collection) NumSets() int { return len(c.sets) }

// UniverseSize returns U, the number of distinct elements.
func (c *Collection) UniverseSize() int { return len(c.universe) }

// TotalSize returns n = Σ |S|.
func (c *Collection) TotalSize() int { return c.n }

// UnionSizeEstimate merges the sketches of the sets in G and returns the
// ε=1/2 estimate Û_G of |∪G|. O(g log² n) expected.
func (c *Collection) UnionSizeEstimate(G []int) (float64, error) {
	merged, err := c.mergedSketch(G)
	if err != nil {
		return 0, err
	}
	return merged.Estimate(), nil
}

func (c *Collection) mergedSketch(G []int) (*sketch.KMV, error) {
	if len(G) == 0 {
		return nil, errors.New("setunion: empty query group")
	}
	var merged *sketch.KMV
	for _, gi := range G {
		if gi < 0 || gi >= len(c.sets) {
			return nil, fmt.Errorf("%w: %d", ErrBadSet, gi)
		}
		s := c.sketches[gi]
		if s == nil {
			// Small set: sketch on the fly (O(log² n) expected).
			var err error
			s, err = sketch.Build(c.hasher, c.k, c.ranks[gi])
			if err != nil {
				return nil, err
			}
		} else {
			s = s.Clone()
		}
		if merged == nil {
			merged = s.Clone()
			continue
		}
		if err := merged.Merge(s); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// rankRange returns the members of set gi whose ranks fall in [lo, hi]
// (binary search over the sorted rank array).
func (c *Collection) rankRange(gi, lo, hi int, dst []int) []int {
	rs := c.ranks[gi]
	i := sort.SearchInts(rs, lo)
	for ; i < len(rs) && rs[i] <= hi; i++ {
		dst = append(dst, rs[i])
	}
	return dst
}

// Query appends s independent uniform samples from ∪G to dst (as element
// ids). ok is false when the union is empty. Expected time O(s·g·log² n).
//
// The structure transparently rebuilds itself with fresh randomness every
// U queries, extending the high-probability correctness guarantee to
// unbounded query sequences as described in the paper.
func (c *Collection) Query(r *rng.Source, G []int, s int, dst []int) ([]int, bool, error) {
	if c.queriesSinceRebuild >= c.rebuildEvery {
		c.build()
	}
	c.queriesSinceRebuild++

	merged, err := c.mergedSketch(G)
	if err != nil {
		return dst, false, err
	}
	uEst := merged.Estimate()
	if uEst <= 0 {
		// All sets in G are empty.
		return dst, false, nil
	}
	uG := int(math.Ceil(uEst))
	U := len(c.universe)
	if uG > U {
		uG = U
	}
	if uG < 1 {
		uG = 1
	}
	// Cap m = c·log₂ n with c = 4; doubled adaptively if an interval
	// ever exceeds it (keeps the output exactly uniform: for any fixed
	// cap the acceptance distribution is uniform, and the final output
	// is a mixture of uniforms).
	m := 4 * (int(math.Log2(float64(c.n)+2)) + 1)

	scratch := make([]int, 0, 4*m)
	for drawn := 0; drawn < s; {
		// Pick interval j ∈ [0, uG) and materialise ∪I_j.
		j := r.Intn(uG)
		lo := j*U/uG + 1
		hi := (j + 1) * U / uG
		if hi < lo {
			continue // empty slack interval (possible when uG > U/…)
		}
		scratch = scratch[:0]
		for _, gi := range G {
			scratch = c.rankRange(gi, lo, hi, scratch)
		}
		if len(scratch) == 0 {
			continue
		}
		// Dedupe ranks (sets may overlap).
		sort.Ints(scratch)
		uniq := scratch[:1]
		for _, v := range scratch[1:] {
			if v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		if len(uniq) > m {
			// Interval denser than the cap allows: double the cap and
			// retry the sample from scratch.
			m *= 2
			continue
		}
		// Coin with heads probability |∪I|/m.
		if r.Float64()*float64(m) < float64(len(uniq)) {
			rank := uniq[r.Intn(len(uniq))]
			dst = append(dst, c.byRank[rank-1])
			drawn++
		}
	}
	return dst, true, nil
}

// QueryWoR appends a uniformly random size-s *subset* of ∪G (without
// replacement) to dst, by deduplicating WR draws — O(s) expected extra
// draws while s ≤ |∪G|/2, coupon-collector beyond. Returns ok=false with
// no error when s exceeds |∪G| (detected via the exact size, computed
// only in that unlikely branch after 8(s+8) fruitless draws).
func (c *Collection) QueryWoR(r *rng.Source, G []int, s int, dst []int) ([]int, bool, error) {
	seen := make(map[int]struct{}, s)
	var one [1]int
	budget := 8 * (s + 8)
	for len(seen) < s {
		out, ok, err := c.Query(r, G, 1, one[:0])
		if err != nil || !ok {
			return dst, false, err
		}
		if _, dup := seen[out[0]]; dup {
			budget--
			if budget <= 0 {
				// Possibly s > |∪G|: check exactly once.
				exact, err := c.UnionSizeExact(G)
				if err != nil {
					return dst, false, err
				}
				if s > exact {
					return dst, false, nil
				}
				budget = 8 * (s + 8) // rare: just keep collecting
			}
			continue
		}
		seen[out[0]] = struct{}{}
		dst = append(dst, out[0])
	}
	return dst, true, nil
}

// UnionSizeExact computes |∪G| exactly (test/benchmark helper; not part
// of the sublinear query path).
func (c *Collection) UnionSizeExact(G []int) (int, error) {
	seen := map[int]struct{}{}
	for _, gi := range G {
		if gi < 0 || gi >= len(c.sets) {
			return 0, fmt.Errorf("%w: %d", ErrBadSet, gi)
		}
		for _, rk := range c.ranks[gi] {
			seen[rk] = struct{}{}
		}
	}
	return len(seen), nil
}

// Rebuild forces an immediate rebuild with fresh randomness.
func (c *Collection) Rebuild() { c.build() }
