// Package scratch provides the reusable per-goroutine arena the sampling
// hot paths thread their per-query temporaries through, so that a warm
// arena makes a query — alias rebuilds for partial chunks and canonical
// covers, WoR dedupe sets, weighted-WoR key heaps, position buffers —
// allocation-free no matter how many times it runs.
//
// Ownership discipline (DESIGN.md §6): an Arena is single-goroutine
// state, like *rng.Source. Each accessor (Pos, Ints, Floats, Weights,
// Seen, Alias) owns one buffer; a caller may hold at most one live
// borrow per accessor at a time, and a nested callee may use any
// accessor its caller is not currently holding. The sampling call tree
// partitions them statically:
//
//	Pos      caller-level position accumulation (internal/core)
//	Ints     structure-internal int scratch (chunk id lists)
//	Floats   dense float scratch (naive CDF, Efraimidis–Spirakis keys)
//	Weights  weight vectors (canonical-cover weights, in-range weights)
//	Seen     WoR dedupe set
//	Alias    the shared alias.Builder (strictly sequential rebuilds)
//
// Buffers are handed out with undefined contents unless documented
// otherwise; callers must fully overwrite what they read.
package scratch

import (
	"sync"

	"repro/internal/alias"
)

// Arena is the reusable scratch state. The zero value is ready to use;
// buffers grow to the high-water mark of the queries run through it and
// are then reused. Not safe for concurrent use.
type Arena struct {
	pos     []int
	ints    []int
	floats  []float64
	weights []float64
	words   []uint64
	seen    map[int]struct{}
	builder alias.Builder
}

// Pos returns a zero-length []int with capacity ≥ n, for append-style
// accumulation of sample positions at the API boundary.
func (a *Arena) Pos(n int) []int {
	if cap(a.pos) < n {
		a.pos = make([]int, 0, n)
	}
	return a.pos[:0]
}

// Ints returns a zero-length []int with capacity ≥ n, for
// structure-internal index lists.
func (a *Arena) Ints(n int) []int {
	if cap(a.ints) < n {
		a.ints = make([]int, 0, n)
	}
	return a.ints[:0]
}

// Floats returns a length-n []float64 with undefined contents.
func (a *Arena) Floats(n int) []float64 {
	if cap(a.floats) < n {
		a.floats = make([]float64, n)
	}
	return a.floats[:n]
}

// Weights returns a length-n []float64 with undefined contents, distinct
// from Floats so weight vectors and key/CDF scratch can be live at once.
func (a *Arena) Weights(n int) []float64 {
	if cap(a.weights) < n {
		a.weights = make([]float64, n)
	}
	return a.weights[:n]
}

// Words returns a length-n []uint64 with undefined contents, the
// staging buffer for block-RNG variates on the bulk sampling paths.
// Arena-backed rather than stack-allocated: a multi-KB block array in
// a sampling frame forces a stack grow-and-copy on every fresh fan-out
// goroutine, which costs more than the block generation saves.
func (a *Arena) Words(n int) []uint64 {
	if cap(a.words) < n {
		a.words = make([]uint64, n)
	}
	return a.words[:n]
}

// Seen returns an empty map for WoR position dedupe, cleared on every
// call and reused across calls.
func (a *Arena) Seen(hint int) map[int]struct{} {
	if a.seen == nil {
		a.seen = make(map[int]struct{}, hint)
		return a.seen
	}
	clear(a.seen)
	return a.seen
}

// Alias returns the arena's alias builder. Rebuilds must be strictly
// sequential: the *alias.Alias from one Rebuild is dead after the next.
func (a *Arena) Alias() *alias.Builder { return &a.builder }

// pool backs Get/Put so the serving stack reuses arenas across requests
// without sharing them between in-flight goroutines.
var pool = sync.Pool{New: func() any { return new(Arena) }}

// Get returns a warm arena from the process-wide pool.
func Get() *Arena { return pool.Get().(*Arena) }

// Put returns an arena to the pool. The caller must not retain any
// buffer borrowed from it.
func Put(a *Arena) { pool.Put(a) }
