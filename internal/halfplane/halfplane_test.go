package halfplane

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func makePoints(n int, seed uint64) ([][]float64, []float64) {
	r := rng.New(seed)
	pts := make([][]float64, n)
	w := make([]float64, n)
	for i := range pts {
		pts[i] = []float64{r.Float64()*2 - 1, r.Float64()*2 - 1}
		w[i] = r.Float64()*3 + 0.2
	}
	return pts, w
}

func randHalfplane(r *rng.Source) Halfplane {
	theta := r.Float64() * 2 * math.Pi
	return Halfplane{
		A: math.Cos(theta),
		B: math.Sin(theta),
		C: r.Float64()*2 - 1,
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([][]float64{{1}}, nil); err == nil {
		t.Fatal("1-D accepted")
	}
	if _, err := New([][]float64{{1, 2}}, []float64{0}); err != ErrBadWeight {
		t.Fatalf("err = %v", err)
	}
	if _, err := New([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLayersPartitionPoints(t *testing.T) {
	pts, w := makePoints(500, 1)
	ix, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]int{}
	total := 0
	for _, ly := range ix.layers {
		for _, id := range ly.idx {
			seen[id]++
			total++
		}
	}
	if total != 500 || len(seen) != 500 {
		t.Fatalf("layers hold %d slots over %d ids, want 500/500", total, len(seen))
	}
	for id, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("point %d appears %d times", id, cnt)
		}
	}
}

func TestReportMatchesBruteForce(t *testing.T) {
	pts, w := makePoints(400, 2)
	ix, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 500)
		q := randHalfplane(rr)
		got := ix.Report(q, nil)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if q.Contains(p[0], p[1]) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeWeightMatchesBruteForce(t *testing.T) {
	pts, w := makePoints(300, 4)
	ix, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		q := randHalfplane(r)
		want := 0.0
		for i, p := range pts {
			if q.Contains(p[0], p[1]) {
				want += w[i]
			}
		}
		if got := ix.RangeWeight(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("RangeWeight = %v, want %v (q=%+v)", got, want, q)
		}
	}
}

func chi2Crit(dof int) float64 {
	z := 3.719
	d := float64(dof)
	x := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * x * x * x
}

func TestQueryDistribution(t *testing.T) {
	pts, w := makePoints(100, 6)
	ix, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Halfplane{A: 1, B: 0.5, C: 0.3}
	inside := map[int]float64{}
	total := 0.0
	for i, p := range pts {
		if q.Contains(p[0], p[1]) {
			inside[i] = w[i]
			total += w[i]
		}
	}
	if len(inside) < 10 {
		t.Fatalf("setup: only %d inside", len(inside))
	}
	r := rng.New(7)
	const draws = 300000
	counts := map[int]int{}
	out, ok, err := ix.Query(r, q, draws, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, idx := range out {
		if _, in := inside[idx]; !in {
			t.Fatalf("sampled %d outside halfplane", idx)
		}
		counts[idx]++
	}
	chi2 := 0.0
	for idx, wi := range inside {
		expected := draws * wi / total
		diff := float64(counts[idx]) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > chi2Crit(len(inside)-1) {
		t.Fatalf("chi2 = %v (dof %d)", chi2, len(inside)-1)
	}
}

func TestEmptyHalfplane(t *testing.T) {
	pts, w := makePoints(50, 8)
	ix, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	q := Halfplane{A: 1, B: 0, C: -10} // x ≤ -10: nothing
	if _, ok, err := ix.Query(r, q, 2, nil); ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got := ix.RangeWeight(q); got != 0 {
		t.Fatalf("RangeWeight = %v", got)
	}
}

func TestDegenerateNormal(t *testing.T) {
	pts, w := makePoints(30, 10)
	ix, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	// 0·x + 0·y ≤ 1: everything.
	out, ok, err := ix.Query(r, Halfplane{A: 0, B: 0, C: 1}, 100, nil)
	if err != nil || !ok || len(out) != 100 {
		t.Fatalf("ok=%v err=%v len=%d", ok, err, len(out))
	}
	// 0·x + 0·y ≤ -1: nothing.
	if _, ok, err := ix.Query(r, Halfplane{A: 0, B: 0, C: -1}, 1, nil); ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestCollinearAndDuplicatePoints(t *testing.T) {
	// All points on a line, with duplicates: peeling must terminate and
	// each point carry weight exactly once.
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}, {1, 1}, {3, 3}, {0, 0}}
	ix, err := New(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ly := range ix.layers {
		total += len(ly.idx)
	}
	if total != 6 {
		t.Fatalf("layers hold %d slots, want 6", total)
	}
	r := rng.New(12)
	q := Halfplane{A: 1, B: 0, C: 1.5} // x ≤ 1.5: points 0,1,3,5
	out, ok, err := ix.Query(r, q, 4000, nil)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	counts := map[int]int{}
	for _, idx := range out {
		if idx != 0 && idx != 1 && idx != 3 && idx != 5 {
			t.Fatalf("sampled %d outside", idx)
		}
		counts[idx]++
	}
	if len(counts) != 4 {
		t.Fatalf("hit %d of 4 qualifying duplicates", len(counts))
	}
}

func TestTouchedLayersShallow(t *testing.T) {
	// A halfplane clipping just a corner should touch few layers.
	pts, w := makePoints(2000, 13)
	ix, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	q := Halfplane{A: 1, B: 1, C: -1.5} // deep corner cut
	if got := ix.Report(q, nil); len(got) > 0 {
		tl := ix.TouchedLayers(q)
		if tl > ix.NumLayers()/2 {
			t.Fatalf("shallow query touched %d of %d layers", tl, ix.NumLayers())
		}
	}
	// The full-plane query touches every layer.
	full := Halfplane{A: 1, B: 0, C: 10}
	if got := ix.TouchedLayers(full); got != ix.NumLayers() {
		t.Fatalf("full query touched %d of %d layers", got, ix.NumLayers())
	}
}

func TestCrossQueryIndependence(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}}
	ix, err := New(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(14)
	q := Halfplane{A: 0, B: 1, C: 1}
	var pairs [4]int
	out, _, err := ix.Query(r, q, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := out[0]
	const queries = 40000
	for i := 0; i < queries; i++ {
		out, _, err := ix.Query(r, q, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		pairs[prev*2+out[0]]++
		prev = out[0]
	}
	expected := float64(queries) / 4
	for i, cnt := range pairs {
		if math.Abs(float64(cnt)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("pair %02b count %d", i, cnt)
		}
	}
}

func BenchmarkHalfplaneQuery(b *testing.B) {
	pts, w := makePoints(1<<15, 1)
	ix, err := New(pts, w)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := randHalfplane(r)
		dst, _, _ = ix.Query(r, q, 16, dst[:0])
	}
}

func TestLenAndNumLayers(t *testing.T) {
	pts, w := makePoints(20, 30)
	ix, err := New(pts, w)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 20 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if ix.NumLayers() < 1 {
		t.Fatalf("NumLayers = %d", ix.NumLayers())
	}
}
