// Package halfplane implements IQS for 2-D halfplane range queries via
// convex layers — the classical "onion" structure of Chazelle–Guibas–Lee
// for halfplane reporting, converted to sampling with the paper's
// Theorem 5. It is the planar cousin of the 3-D halfspace problem whose
// IQS treatment by Afshani–Wei the paper's Section 6 builds on.
//
// Problem: S is a set of n points in R² with positive weights. Given a
// halfplane q = {(x, y) : a·x + b·y ≤ c} and s ≥ 1, return s independent
// weighted samples of S_q := S ∩ q, independent across queries.
//
// Structure: peel S into convex layers L_1 ⊃ L_2 ⊃ ... (L_1 is the hull
// of S, L_2 the hull of the rest, ...). Two classical facts make the
// layers a Theorem 5-style index:
//
//  1. if a halfplane contains any point of layer i+1, it contains a
//     vertex of layer i (nesting), so the touched layers are a prefix
//     L_1..L_t and the query can stop at the first empty layer;
//  2. within one layer, the vertices inside a halfplane form a
//     contiguous cyclic arc of the hull; the arc's endpoints are found
//     by binary search along the hull's two f-monotone sides once the
//     extreme vertex in direction −(a, b) is located (this
//     implementation locates it by an O(h) scan for tie-robustness; a
//     tuned version would use the O(log h) convex-polygon extreme-point
//     search, which changes the constant, not the experiments).
//
// Each arc is one or two contiguous runs of the layer's vertex array, so
// the Lemma 4 engine (rangesample.PosSampler) samples inside it in O(1)
// per draw (uniform weights) or O(log h) (weighted). Query cost:
// O(Σ h_i over touched layers + s) with this implementation,
// O(t·log n + s) with the tuned extreme-point search; either way the
// dominant saving over report-then-sample stands: the qualifying points
// inside each touched layer are never enumerated. Space O(n).
//
// Build: repeated Andrew monotone-chain hulls; O(n log n) per layer,
// O(n·t_max) total (Chazelle's O(n log n) full peeling is out of scope —
// the asymptotics affect preprocessing only).
package halfplane

import (
	"errors"
	"sort"

	"repro/internal/alias"
	"repro/internal/rangesample"
	"repro/internal/rng"
)

// Halfplane is the predicate a·x + b·y ≤ c.
type Halfplane struct {
	A, B, C float64
}

// Contains reports whether (x, y) satisfies the predicate.
func (q Halfplane) Contains(x, y float64) bool {
	return q.A*x+q.B*y <= q.C
}

// ErrEmpty is returned when building over no points.
var ErrEmpty = errors.New("halfplane: empty input")

// ErrBadWeight is returned for non-positive weights.
var ErrBadWeight = errors.New("halfplane: weights must be positive and finite")

// ErrDegenerate is returned for the all-zero normal (A = B = 0).
var ErrDegenerate = errors.New("halfplane: degenerate predicate with zero normal")

// Index is the convex-layers IQS structure.
type Index struct {
	xs, ys []float64 // original points
	wts    []float64
	layers []layer
}

// layer stores one convex layer's vertices in counter-clockwise order.
type layer struct {
	// idx[i] is the original point index of hull vertex i (CCW).
	idx []int32
	xs  []float64
	ys  []float64
	eng *rangesample.PosSampler // weights in vertex order
}

// New builds the structure (nil weights mean uniform).
func New(pts [][]float64, weights []float64) (*Index, error) {
	n := len(pts)
	if n == 0 {
		return nil, ErrEmpty
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != n {
		return nil, errors.New("halfplane: points and weights length mismatch")
	}
	ix := &Index{
		xs:  make([]float64, n),
		ys:  make([]float64, n),
		wts: append([]float64(nil), weights...),
	}
	for i, p := range pts {
		if len(p) != 2 {
			return nil, errors.New("halfplane: points must be 2-D")
		}
		if !(weights[i] > 0) {
			return nil, ErrBadWeight
		}
		ix.xs[i], ix.ys[i] = p[0], p[1]
	}
	// Onion peeling.
	remaining := make([]int32, n)
	for i := range remaining {
		remaining[i] = int32(i)
	}
	for len(remaining) > 0 {
		hull := ix.convexHull(remaining)
		lw := make([]float64, len(hull))
		ly := layer{
			idx: hull,
			xs:  make([]float64, len(hull)),
			ys:  make([]float64, len(hull)),
		}
		onHull := make(map[int32]struct{}, len(hull))
		for i, id := range hull {
			ly.xs[i] = ix.xs[id]
			ly.ys[i] = ix.ys[id]
			lw[i] = ix.wts[id]
			onHull[id] = struct{}{}
		}
		ly.eng = rangesample.NewPosSampler(lw)
		ix.layers = append(ix.layers, ly)
		next := remaining[:0]
		for _, id := range remaining {
			if _, on := onHull[id]; !on {
				next = append(next, id)
			}
		}
		remaining = next
	}
	return ix, nil
}

// convexHull returns the hull of the given point ids in CCW order
// (Andrew's monotone chain; collinear points are kept on the hull so
// that peeling terminates and every boundary point is sampleable).
func (ix *Index) convexHull(ids []int32) []int32 {
	if len(ids) <= 2 {
		return append([]int32(nil), ids...)
	}
	sorted := append([]int32(nil), ids...)
	sort.Slice(sorted, func(a, b int) bool {
		xa, xb := ix.xs[sorted[a]], ix.xs[sorted[b]]
		if xa != xb {
			return xa < xb
		}
		return ix.ys[sorted[a]] < ix.ys[sorted[b]]
	})
	cross := func(o, p, q int32) float64 {
		return (ix.xs[p]-ix.xs[o])*(ix.ys[q]-ix.ys[o]) -
			(ix.ys[p]-ix.ys[o])*(ix.xs[q]-ix.xs[o])
	}
	// Lower then upper hull; strict turns only (< 0) keep collinear
	// points on the chain.
	var lower []int32
	for _, id := range sorted {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], id) < 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, id)
	}
	var upper []int32
	for i := len(sorted) - 1; i >= 0; i-- {
		id := sorted[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], id) < 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, id)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	// With collinear or duplicate points the two chains can share
	// vertices; deduplicate by id so no point carries double weight
	// within a layer.
	seen := make(map[int32]struct{}, len(hull))
	uniq := hull[:0]
	for _, id := range hull {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		uniq = append(uniq, id)
	}
	if len(uniq) == 0 { // all points identical
		uniq = append(uniq, sorted[0])
	}
	return uniq
}

// Len returns the number of points.
func (ix *Index) Len() int { return len(ix.xs) }

// NumLayers returns the number of convex layers.
func (ix *Index) NumLayers() int { return len(ix.layers) }

// run is one contiguous vertex range of one layer.
type run struct {
	li       int
	off, cnt int
	weight   float64
}

// arcRuns appends the (≤ 2) contiguous runs of layer li's vertices that
// satisfy q. found reports whether any vertex qualified.
func (ix *Index) arcRuns(li int, q Halfplane, dst []run) ([]run, bool) {
	ly := &ix.layers[li]
	h := len(ly.idx)
	f := func(i int) float64 { return q.A*ly.xs[i] + q.B*ly.ys[i] }
	if h <= 8 {
		// Tiny layer: linear scan, merging contiguous qualifying runs
		// (cyclically).
		return ix.smallLayerRuns(li, q, dst)
	}
	// Locate the vertices minimising and maximising f over the hull by a
	// linear scan. f over a convex polygon's vertex cycle is bitonic, so
	// an O(log h) extreme-point search exists — but collinear vertices
	// (which this structure deliberately keeps on the hull so every
	// boundary point is sampleable) create plateaus that break the
	// classical search's comparisons; a weak local maximum inside a
	// plateau is not a global one. The scan is unconditionally correct;
	// the endpoint searches below remain O(log h).
	minI, maxI := 0, 0
	for i := 1; i < h; i++ {
		if f(i) < f(minI) {
			minI = i
		}
		if f(i) > f(maxI) {
			maxI = i
		}
	}
	if f(minI) > q.C {
		return dst, false
	}
	// Distance from minI to maxI going forward (CCW).
	fwdLen := (maxI - minI + h) % h
	bwdLen := h - fwdLen
	// Furthest qualifying offset going forward from minI (0..fwdLen).
	fwd := sort.Search(fwdLen, func(k int) bool {
		return f((minI+k+1)%h) > q.C
	})
	// Furthest qualifying offset going backward (0..bwdLen-1).
	bwd := sort.Search(bwdLen-1, func(k int) bool {
		return f((minI-k-1+2*h)%h) > q.C
	})
	// Qualifying cyclic range: [minI-bwd, minI+fwd].
	start := (minI - bwd + 2*h) % h
	count := bwd + fwd + 1
	if count >= h {
		// Whole layer qualifies.
		dst = append(dst, run{li: li, off: 0, cnt: h, weight: ly.eng.RangeWeight(0, h-1)})
		return dst, true
	}
	if start+count <= h {
		dst = append(dst, run{li: li, off: start, cnt: count,
			weight: ly.eng.RangeWeight(start, start+count-1)})
	} else {
		c1 := h - start
		dst = append(dst, run{li: li, off: start, cnt: c1,
			weight: ly.eng.RangeWeight(start, h-1)})
		dst = append(dst, run{li: li, off: 0, cnt: count - c1,
			weight: ly.eng.RangeWeight(0, count-c1-1)})
	}
	return dst, true
}

// smallLayerRuns is the O(h) fallback for tiny layers.
func (ix *Index) smallLayerRuns(li int, q Halfplane, dst []run) ([]run, bool) {
	ly := &ix.layers[li]
	h := len(ly.idx)
	any := false
	i := 0
	for i < h {
		if !q.Contains(ly.xs[i], ly.ys[i]) {
			i++
			continue
		}
		j := i
		for j < h && q.Contains(ly.xs[j], ly.ys[j]) {
			j++
		}
		dst = append(dst, run{li: li, off: i, cnt: j - i,
			weight: ly.eng.RangeWeight(i, j-1)})
		any = true
		i = j
	}
	// Merge a wrap-around pair (last run ends at h-1 and first starts
	// at 0): keep as two runs — contiguity in the array is what the
	// engine needs, not cyclic contiguity.
	return dst, any
}

// cover collects the qualifying runs across the touched layer prefix.
func (ix *Index) cover(q Halfplane, dst []run) []run {
	for li := range ix.layers {
		var found bool
		dst, found = ix.arcRuns(li, q, dst)
		if !found {
			break // nesting: deeper layers are empty too
		}
	}
	return dst
}

// Query appends s independent weighted samples of S ∩ q to dst as
// original point indices. ok is false when the halfplane is empty.
func (ix *Index) Query(r *rng.Source, q Halfplane, s int, dst []int) ([]int, bool, error) {
	if q.A == 0 && q.B == 0 {
		if q.C >= 0 {
			// Everything qualifies: degenerate but well-defined.
			q = Halfplane{A: 0, B: 1, C: ix.maxY() + 1}
		} else {
			return dst, false, nil
		}
	}
	var scratch [128]run
	cov := ix.cover(q, scratch[:0])
	if len(cov) == 0 {
		return dst, false, nil
	}
	w := make([]float64, len(cov))
	for i, rn := range cov {
		w[i] = rn.weight
	}
	counts := alias.MustNew(w).Counts(r, s)
	var buf [64]int
	for i, cnt := range counts {
		if cnt == 0 {
			continue
		}
		rn := cov[i]
		ly := &ix.layers[rn.li]
		out := ly.eng.Query(r, rn.off, rn.off+rn.cnt-1, cnt, buf[:0])
		for _, pos := range out {
			dst = append(dst, int(ly.idx[pos]))
		}
	}
	return dst, true, nil
}

func (ix *Index) maxY() float64 {
	m := ix.ys[0]
	for _, y := range ix.ys {
		if y > m {
			m = y
		}
	}
	return m
}

// RangeWeight returns the total weight of S ∩ q.
func (ix *Index) RangeWeight(q Halfplane) float64 {
	var scratch [128]run
	cov := ix.cover(q, scratch[:0])
	sum := 0.0
	for _, rn := range cov {
		sum += rn.weight
	}
	return sum
}

// Report appends all original indices of points in q (test helper).
func (ix *Index) Report(q Halfplane, dst []int) []int {
	var scratch [128]run
	cov := ix.cover(q, scratch[:0])
	for _, rn := range cov {
		ly := &ix.layers[rn.li]
		for i := rn.off; i < rn.off+rn.cnt; i++ {
			dst = append(dst, int(ly.idx[i]))
		}
	}
	return dst
}

// TouchedLayers returns the number of layers a query intersects
// (diagnostic).
func (ix *Index) TouchedLayers(q Halfplane) int {
	t := 0
	for li := range ix.layers {
		var found bool
		_, found = ix.arcRuns(li, q, nil)
		if !found {
			break
		}
		t++
	}
	return t
}
