package wor

import (
	"testing"

	"repro/internal/race"
	"repro/internal/rng"
)

// Every bulk variant must be stream-identical to its scalar twin:
// same outputs, same final generator state.

func TestUniformWRBulkMatchesScalar(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{1, 10}, {7, 0}, {100, 1}, {1000, 255}, {1000, 256}, {1000, 1000}} {
		rs, rb := rng.New(uint64(tc.n+tc.s)), rng.New(uint64(tc.n+tc.s))
		want := UniformWRInto(rs, tc.n, tc.s, nil)
		got := UniformWRBulkInto(rb, tc.n, tc.s, nil)
		if len(got) != len(want) {
			t.Fatalf("n=%d s=%d: got %d samples want %d", tc.n, tc.s, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d s=%d: sample %d: got %d want %d", tc.n, tc.s, i, got[i], want[i])
			}
		}
		if *rs != *rb {
			t.Fatalf("n=%d s=%d: final states diverge", tc.n, tc.s)
		}
	}
}

func TestUniformWoRBulkMatchesScalar(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{1, 1}, {10, 10}, {100, 7}, {1000, 300}, {5000, 1000}} {
		rs, rb := rng.New(uint64(tc.n*7+tc.s)), rng.New(uint64(tc.n*7+tc.s))
		want, err := UniformWoRInto(rs, tc.n, tc.s, nil, make(map[int]struct{}, tc.s))
		if err != nil {
			t.Fatal(err)
		}
		got, err := UniformWoRBulkInto(rb, tc.n, tc.s, nil, make(map[int]struct{}, tc.s))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d s=%d: got %d samples want %d", tc.n, tc.s, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d s=%d: sample %d: got %d want %d", tc.n, tc.s, i, got[i], want[i])
			}
		}
		if *rs != *rb {
			t.Fatalf("n=%d s=%d: final states diverge", tc.n, tc.s)
		}
	}
	if _, err := UniformWoRBulkInto(rng.New(1), 3, 4, nil, map[int]struct{}{}); err != ErrSampleTooLarge {
		t.Fatalf("s>n: got %v want ErrSampleTooLarge", err)
	}
}

func TestWeightedWoRBulkMatchesScalar(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{1, 1}, {50, 8}, {300, 300}, {1000, 64}} {
		w := make([]float64, tc.n)
		for i := range w {
			w[i] = float64(1 + (i*13)%17)
		}
		rs, rb := rng.New(uint64(tc.n+3*tc.s)), rng.New(uint64(tc.n+3*tc.s))
		want, err := WeightedWoRInto(rs, w, tc.s, nil, make([]float64, tc.s))
		if err != nil {
			t.Fatal(err)
		}
		got, err := WeightedWoRBulkInto(rb, w, tc.s, nil, make([]float64, tc.s))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d s=%d: got %d winners want %d", tc.n, tc.s, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d s=%d: winner %d: got %d want %d", tc.n, tc.s, i, got[i], want[i])
			}
		}
		if *rs != *rb {
			t.Fatalf("n=%d s=%d: final states diverge", tc.n, tc.s)
		}
	}
}

// TestBulkZeroAlloc pins the bulk variants' variate staging on the
// stack (the WoR dedupe map is caller scratch and excluded by reuse).
func TestBulkZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("race build: allocation counts not asserted")
	}
	r := rng.New(2)
	dst := make([]int, 0, 512)
	got := testing.AllocsPerRun(100, func() {
		dst = UniformWRBulkInto(r, 9999, 512, dst[:0])
	})
	if got != 0 {
		t.Errorf("UniformWRBulkInto: %v allocs/op, want 0", got)
	}
	w := make([]float64, 512)
	for i := range w {
		w[i] = 1 + float64(i%7)
	}
	keys := make([]float64, 32)
	got = testing.AllocsPerRun(100, func() {
		if _, err := WeightedWoRBulkInto(r, w, 32, dst[:0], keys); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("WeightedWoRBulkInto: %v allocs/op, want 0", got)
	}
}

func BenchmarkUniformWoRScalar(b *testing.B) {
	r := rng.New(1)
	dst := make([]int, 0, 256)
	chosen := make(map[int]struct{}, 256)
	for i := 0; i < b.N; i++ {
		clear(chosen)
		var err error
		dst, err = UniformWoRInto(r, 1<<20, 256, dst[:0], chosen)
		if err != nil {
			b.Fatal(err)
		}
	}
	sinkWoR = dst[0]
}

func BenchmarkUniformWoRBulk(b *testing.B) {
	r := rng.New(1)
	dst := make([]int, 0, 256)
	chosen := make(map[int]struct{}, 256)
	for i := 0; i < b.N; i++ {
		clear(chosen)
		var err error
		dst, err = UniformWoRBulkInto(r, 1<<20, 256, dst[:0], chosen)
		if err != nil {
			b.Fatal(err)
		}
	}
	sinkWoR = dst[0]
}

func BenchmarkWeightedWoRScalar(b *testing.B) {
	r := rng.New(1)
	w := make([]float64, 4096)
	for i := range w {
		w[i] = 1 + float64(i%11)
	}
	dst := make([]int, 0, 64)
	keys := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = WeightedWoRInto(r, w, 64, dst[:0], keys)
		if err != nil {
			b.Fatal(err)
		}
	}
	sinkWoR = dst[0]
}

func BenchmarkWeightedWoRBulk(b *testing.B) {
	r := rng.New(1)
	w := make([]float64, 4096)
	for i := range w {
		w[i] = 1 + float64(i%11)
	}
	dst := make([]int, 0, 64)
	keys := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = WeightedWoRBulkInto(r, w, 64, dst[:0], keys)
		if err != nil {
			b.Fatal(err)
		}
	}
	sinkWoR = dst[0]
}

var sinkWoR int
