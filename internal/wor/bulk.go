// Bulk variants of the WR/WoR kernels: same algorithms, with variates
// pre-generated in cache-friendly runs (rng.Fill* / rng.Block) instead
// of one generator call per draw. Each variant is stream-identical to
// its scalar twin — same consumed word sequence, same output, same
// final generator state — so they can replace the scalar calls under
// golden-seeded paths.
package wor

import (
	"errors"
	"math"

	"repro/internal/rng"
)

var (
	errKeyBuffer = errors.New("wor: key buffer shorter than sample size")
	errBadWeight = errors.New("wor: weights must be positive")
)

// bulkWords sizes the stack scratch the bulk variants stage variates
// through between refills. Kept to 512 bytes deliberately: these run
// in frames on fresh fan-out goroutines, and a larger array would
// force a stack grow-and-copy per goroutine that costs more than
// blocking saves.
const bulkWords = 64

// UniformWRBulkInto is UniformWRInto with block-generated variates:
// the bound n is fixed across all s draws, so whole runs go through
// rng.FillBounded. Stream-identical to s scalar Intn(n) calls.
func UniformWRBulkInto(r *rng.Source, n, s int, dst []int) []int {
	var raw [bulkWords]uint64
	for done := 0; done < s; {
		chunk := s - done
		if chunk > bulkWords {
			chunk = bulkWords
		}
		r.FillBounded(raw[:chunk], uint64(n))
		for _, v := range raw[:chunk] {
			dst = append(dst, int(v))
		}
		done += chunk
	}
	return dst
}

// UniformWoRBulkInto is UniformWoRInto (Floyd + shuffle) with the urn
// picks pulled through a primed Block. Floyd's bound grows every
// iteration and the shuffle's shrinks, so per-draw bounded generation
// stays — only the raw word supply is batched. Guaranteed minimum
// consumption is one word per Intn: s for Floyd, s-1 for the shuffle.
func UniformWoRBulkInto(r *rng.Source, n, s int, dst []int, chosen map[int]struct{}) ([]int, error) {
	if s > n {
		return nil, ErrSampleTooLarge
	}
	var raw [bulkWords]uint64
	bk := rng.MakeBlock(r, raw[:])
	base := len(dst)
	for j := n - s; j < n; {
		chunk := n - j
		if chunk > bulkWords {
			chunk = bulkWords
		}
		bk.Prime(chunk)
		for end := j + chunk; j < end; j++ {
			v := bk.Intn(j + 1)
			if _, dup := chosen[v]; dup {
				v = j
			}
			chosen[v] = struct{}{}
			dst = append(dst, v)
		}
	}
	tail := dst[base:]
	for i := len(tail) - 1; i > 0; {
		chunk := i
		if chunk > bulkWords {
			chunk = bulkWords
		}
		bk.Prime(chunk)
		for end := i - chunk; i > end; i-- {
			j := bk.Intn(i + 1)
			tail[i], tail[j] = tail[j], tail[i]
		}
	}
	return dst, nil
}

// WeightedWoRBulkInto is WeightedWoRInto with the n uniform coins
// generated through rng.FillFloat64 (exactly one word per element on
// both paths — Float64 never rejects). Heap maintenance is unchanged,
// so indices and order match the scalar variant exactly.
func WeightedWoRBulkInto(r *rng.Source, weights []float64, s int, dst []int, keys []float64) ([]int, error) {
	n := len(weights)
	if s > n {
		return nil, ErrSampleTooLarge
	}
	if s == 0 {
		return dst, nil
	}
	if len(keys) < s {
		return nil, errKeyBuffer
	}
	var coins [bulkWords]float64
	base := len(dst)
	h := 0
	for off := 0; off < n; {
		chunk := n - off
		if chunk > bulkWords {
			chunk = bulkWords
		}
		r.FillFloat64(coins[:chunk])
		for c, w := range weights[off : off+chunk] {
			if !(w > 0) {
				return nil, errBadWeight
			}
			logKey := math.Log(coins[c]+1e-300) / w
			i := off + c
			switch {
			case h < s:
				keys[h] = logKey
				dst = append(dst, i)
				h++
				siftUp(keys[:h], dst[base:], h-1)
			case logKey > keys[0]:
				keys[0] = logKey
				dst[base] = i
				siftDown(keys[:h], dst[base:], 0)
			}
		}
		off += chunk
	}
	return dst, nil
}
