package wor

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestWeightedWoRBasics(t *testing.T) {
	r := rng.New(1)
	if _, err := WeightedWoR(r, []float64{1, 2}, 3); err != ErrSampleTooLarge {
		t.Fatalf("err = %v", err)
	}
	if out, err := WeightedWoR(r, []float64{1, 2}, 0); err != nil || out != nil {
		t.Fatalf("s=0: out=%v err=%v", out, err)
	}
	if _, err := WeightedWoR(r, []float64{1, -2}, 1); err == nil {
		t.Fatal("negative weight accepted")
	}
	out, err := WeightedWoR(r, []float64{1, 2, 3, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range out {
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
	}
	if len(seen) != 4 {
		t.Fatalf("got %d distinct", len(seen))
	}
}

func TestWeightedWoRFirstInclusionProbability(t *testing.T) {
	// For s=1, WeightedWoR reduces to exact weighted sampling.
	r := rng.New(2)
	weights := []float64{1, 2, 4, 8}
	total := 15.0
	const trials = 120000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		out, err := WeightedWoR(r, weights, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts[out[0]]++
	}
	for i, c := range counts {
		expected := trials * weights[i] / total
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("index %d count %d, expected ~%v", i, c, expected)
		}
	}
}

func TestWeightedWoRHeavyDominates(t *testing.T) {
	// One huge weight must always be included for s >= 1.
	r := rng.New(3)
	weights := []float64{1e-6, 1e-6, 1e9, 1e-6}
	for trial := 0; trial < 200; trial++ {
		out, err := WeightedWoR(r, weights, 2)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, i := range out {
			if i == 2 {
				found = true
			}
		}
		if !found {
			t.Fatal("heavy element excluded from WoR sample")
		}
	}
}

func TestWeightedWoRUniformMatchesUniformWoR(t *testing.T) {
	// Equal weights: element marginals must be s/n.
	r := rng.New(4)
	const n, s, trials = 8, 3, 60000
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 2.5
	}
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		out, err := WeightedWoR(r, weights, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range out {
			counts[i]++
		}
	}
	expected := float64(trials) * s / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("index %d marginal %d, expected ~%v", i, c, expected)
		}
	}
}
