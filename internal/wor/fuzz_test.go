package wor

import (
	"testing"

	"repro/internal/rng"
)

// FuzzWRWoRRoundTrip drives the O(s) conversions both ways and checks
// the structural invariants hold for every (n, s, seed):
//
//	UniformWoR(n, s)            → s distinct indices in [0, n)
//	WoRToWR(wor, n, s)          → s indices, support ⊆ wor
//	WRToWoR over that WR stream → distinct indices, support ⊆ the WR set
func FuzzWRWoRRoundTrip(f *testing.F) {
	f.Add(uint64(1), 16, 4)
	f.Add(uint64(7), 1, 1)
	f.Add(uint64(42), 512, 512)
	f.Add(uint64(99), 100, 0)
	f.Fuzz(func(t *testing.T, seed uint64, n, s int) {
		// Bound the search space: population 1..512, sample 0..n.
		if n < 1 {
			n = -n
		}
		n = n%512 + 1
		if s < 0 {
			s = -s
		}
		s = s % (n + 1)
		r := rng.New(seed)

		worSample, err := UniformWoR(r, n, s)
		if err != nil {
			t.Fatalf("UniformWoR(n=%d, s=%d): %v", n, s, err)
		}
		if len(worSample) != s {
			t.Fatalf("UniformWoR returned %d indices, want %d", len(worSample), s)
		}
		inWoR := make(map[int]bool, s)
		for _, v := range worSample {
			if v < 0 || v >= n {
				t.Fatalf("index %d outside [0, %d)", v, n)
			}
			if inWoR[v] {
				t.Fatalf("duplicate %d in WoR sample", v)
			}
			inWoR[v] = true
		}

		wr, err := WoRToWR(r, worSample, n, s)
		if err != nil {
			t.Fatalf("WoRToWR: %v", err)
		}
		if len(wr) != s {
			t.Fatalf("WoRToWR returned %d indices, want %d", len(wr), s)
		}
		inWR := make(map[int]bool, s)
		for _, v := range wr {
			if !inWoR[v] {
				t.Fatalf("WR value %d not drawn from the WoR support", v)
			}
			inWR[v] = true
		}

		// Close the loop: WR draws over the distinct WR support convert
		// back to a WoR sample of that support.
		support := make([]int, 0, len(inWR))
		for v := range inWR {
			support = append(support, v)
		}
		if len(support) == 0 {
			return
		}
		s2 := len(support)
		back, err := WRToWoR(r, s2, s2, func() int { return support[r.Intn(s2)] })
		if err != nil {
			t.Fatalf("WRToWoR: %v", err)
		}
		seen := make(map[int]bool, len(back))
		for _, v := range back {
			if !inWR[v] {
				t.Fatalf("round-tripped value %d escaped the support", v)
			}
			if seen[v] {
				t.Fatalf("duplicate %d after WRToWoR", v)
			}
			seen[v] = true
		}
		if len(back) != s2 {
			t.Fatalf("round trip lost values: %d of %d", len(back), s2)
		}
	})
}

// TestWoRMergeDisjointShardsNoDuplicates is the property the sharded
// coordinator's SampleWoR path rests on: bucket a global uniform WoR
// rank sample by disjoint parts, draw a uniform WoR subset of matching
// size inside each part, and the merged result is duplicate-free with
// exactly the requested size — for every split point and budget.
func TestWoRMergeDisjointShardsNoDuplicates(t *testing.T) {
	r := rng.New(0xD15C0)
	for trial := 0; trial < 200; trial++ {
		n1 := 1 + r.Intn(64)
		n2 := 1 + r.Intn(64)
		n := n1 + n2
		k := r.Intn(n + 1)

		// Global rank draw fixes the per-part budgets (multivariate
		// hypergeometric), exactly as shard.Coordinator.SampleWoR does.
		ranks, err := UniformWoR(r, n, k)
		if err != nil {
			t.Fatal(err)
		}
		k1 := 0
		for _, rank := range ranks {
			if rank < n1 {
				k1++
			}
		}
		k2 := k - k1

		part1, err := UniformWoR(r, n1, k1)
		if err != nil {
			t.Fatal(err)
		}
		part2, err := UniformWoR(r, n2, k2)
		if err != nil {
			t.Fatal(err)
		}
		merged := make([]int, 0, k)
		merged = append(merged, part1...)
		for _, v := range part2 {
			merged = append(merged, n1+v) // shard 2 owns [n1, n)
		}

		if len(merged) != k {
			t.Fatalf("trial %d: merged %d, want %d (k1=%d k2=%d)", trial, len(merged), k, k1, k2)
		}
		seen := make(map[int]bool, k)
		for _, v := range merged {
			if v < 0 || v >= n {
				t.Fatalf("trial %d: %d outside [0, %d)", trial, v, n)
			}
			if seen[v] {
				t.Fatalf("trial %d: duplicate %d across disjoint shards", trial, v)
			}
			seen[v] = true
		}
	}
}
