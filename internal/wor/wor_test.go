package wor

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestUniformWRBounds(t *testing.T) {
	r := rng.New(1)
	out := UniformWR(r, 10, 1000)
	if len(out) != 1000 {
		t.Fatalf("len = %d", len(out))
	}
	for _, v := range out {
		if v < 0 || v >= 10 {
			t.Fatalf("value %d out of range", v)
		}
	}
}

func TestUniformWoRIsSubset(t *testing.T) {
	r := rng.New(2)
	f := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%100) + 1
		s := int(sRaw) % (n + 1)
		out, err := UniformWoR(r, n, s)
		if err != nil {
			return false
		}
		if len(out) != s {
			return false
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformWoRTooLarge(t *testing.T) {
	if _, err := UniformWoR(rng.New(1), 3, 4); err != ErrSampleTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestUniformWoRSubsetUniformity(t *testing.T) {
	// n=5, s=2: C(5,2)=10 subsets, each should appear with prob 1/10.
	r := rng.New(33)
	const draws = 100000
	counts := map[[2]int]int{}
	for i := 0; i < draws; i++ {
		out, err := UniformWoR(r, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(out)
		counts[[2]int{out[0], out[1]}]++
	}
	if len(counts) != 10 {
		t.Fatalf("observed %d distinct subsets, want 10", len(counts))
	}
	expected := float64(draws) / 10
	for k, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("subset %v count %d, expected ~%v", k, c, expected)
		}
	}
}

func TestUniformWoRElementMarginals(t *testing.T) {
	// Every element should be included with probability s/n.
	r := rng.New(44)
	const n, s, draws = 8, 3, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		out, _ := UniformWoR(r, n, s)
		for _, v := range out {
			counts[v]++
		}
	}
	expected := float64(draws) * s / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("element %d marginal %d, expected ~%v", i, c, expected)
		}
	}
}

func TestWoRToWRDistribution(t *testing.T) {
	// Convert WoR samples over n=4 to WR samples of size 3; each of the
	// 4^3 = 64 sequences should be equally likely.
	r := rng.New(55)
	const n, s, draws = 4, 3, 256000
	counts := map[[3]int]int{}
	for i := 0; i < draws; i++ {
		worSample, err := UniformWoR(r, n, s)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := WoRToWR(r, worSample, n, s)
		if err != nil {
			t.Fatal(err)
		}
		counts[[3]int{wr[0], wr[1], wr[2]}]++
	}
	if len(counts) != 64 {
		t.Fatalf("observed %d distinct sequences, want 64", len(counts))
	}
	expected := float64(draws) / 64
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// dof=63, crit at 1e-4 ≈ 107.
	if chi2 > 107 {
		t.Fatalf("WoR->WR chi2 = %v", chi2)
	}
}

func TestWoRToWRExhaustsInput(t *testing.T) {
	// If the WoR sample is smaller than the number of distinct values
	// the WR process demands, conversion must fail rather than repeat.
	r := rng.New(9)
	_, err := WoRToWR(r, []int{0}, 1000, 5)
	// With n=1000 and s=5 the process almost surely needs >1 distinct
	// value; retry a few seeds to make the expectation deterministic.
	for seed := uint64(10); err == nil && seed < 50; seed++ {
		_, err = WoRToWR(rng.New(seed), []int{0}, 1000, 5)
	}
	if err == nil {
		t.Fatal("conversion with starved WoR input never failed")
	}
}

func TestWRToWoR(t *testing.T) {
	r := rng.New(6)
	const n, s = 20, 10
	out, err := WRToWoR(r, n, s, func() int { return r.Intn(n) })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != s {
		t.Fatalf("len = %d", len(out))
	}
	seen := map[int]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate %d in WoR output", v)
		}
		seen[v] = true
	}
	if _, err := WRToWoR(r, 3, 4, func() int { return 0 }); err != ErrSampleTooLarge {
		t.Fatalf("oversized request err = %v", err)
	}
}

func TestReservoirBasics(t *testing.T) {
	r := rng.New(7)
	rv := NewReservoir(5)
	for i := 0; i < 3; i++ {
		rv.Offer(r, i)
	}
	if rv.Seen() != 3 || len(rv.Sample()) != 3 {
		t.Fatalf("seen/len = %d/%d", rv.Seen(), len(rv.Sample()))
	}
	for i := 3; i < 1000; i++ {
		rv.Offer(r, i)
	}
	if len(rv.Sample()) != 5 {
		t.Fatalf("reservoir size = %d", len(rv.Sample()))
	}
}

func TestReservoirUniform(t *testing.T) {
	// Each of 20 stream elements should survive with probability 5/20.
	r := rng.New(71)
	const trials = 40000
	counts := make([]int, 20)
	for trial := 0; trial < trials; trial++ {
		rv := NewReservoir(5)
		for i := 0; i < 20; i++ {
			rv.Offer(r, i)
		}
		for _, v := range rv.Sample() {
			counts[v]++
		}
	}
	expected := float64(trials) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("element %d survived %d times, expected ~%v", i, c, expected)
		}
	}
}
