package rangesample

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/scratch"
)

func TestCoverCacheLRUEviction(t *testing.T) {
	c := newCoverCache(3)
	for k := uint64(1); k <= 3; k++ {
		c.put(&coverEntry{key: k})
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Touch 1 so 2 becomes least-recent, then overflow.
	if c.get(1) == nil {
		t.Fatal("key 1 missing before eviction")
	}
	c.put(&coverEntry{key: 4})
	if c.Len() != 3 {
		t.Fatalf("len after eviction = %d, want 3", c.Len())
	}
	if c.get(2) != nil {
		t.Fatal("key 2 should have been evicted as LRU")
	}
	for _, k := range []uint64{1, 3, 4} {
		if c.get(k) == nil {
			t.Fatalf("key %d missing after eviction", k)
		}
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats not tracked: hits=%d misses=%d", hits, misses)
	}
}

func TestCoverCacheDuplicatePutKeepsIncumbent(t *testing.T) {
	c := newCoverCache(4)
	first := &coverEntry{key: 7}
	c.put(first)
	if got := c.put(&coverEntry{key: 7}); got != first {
		t.Fatal("duplicate put replaced the incumbent entry")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

// TestQueryCacheWarmsAndStaysCorrect drives the same ranges twice and
// checks the second (cache-hit) pass produces exactly the stream the
// first cold pass did from the same seed.
func TestQueryCacheWarmsAndStaysCorrect(t *testing.T) {
	n := 4096
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = float64(i) + 0.5
		weights[i] = float64(1 + (i*7)%13)
	}
	cold, err := NewChunked(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewChunked(values, weights)
	if err != nil {
		t.Fatal(err)
	}
	var sc scratch.Arena
	// The first range lives inside one chunk (chunk size is 12 at
	// n=4096), so every pass is forced through samplePartial; the
	// others exercise the three-piece split and the top cover cache.
	ranges := []Interval{{Lo: 12.5, Hi: 22.5}, {Lo: 10.5, Hi: 300.5}, {Lo: 1000, Hi: 3500}, {Lo: 77, Hi: 78}}
	// Pre-warm the second instance's caches with a throwaway pass.
	for _, q := range ranges {
		warm.QueryScratch(rng.New(999), q, 64, nil, &sc)
	}
	for _, q := range ranges {
		want, ok := cold.QueryScratch(rng.New(42), q, 200, nil, &sc)
		if !ok {
			t.Fatalf("cold query %+v empty", q)
		}
		got, ok := warm.QueryScratch(rng.New(42), q, 200, nil, &sc)
		if !ok {
			t.Fatalf("warm query %+v empty", q)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range %+v sample %d: warm %d != cold %d", q, i, got[i], want[i])
			}
		}
	}
	if hits, _ := warm.pcache.Stats(); hits == 0 {
		t.Fatal("warm instance recorded no partial-cache hits")
	}
	if hits, _ := warm.top.cache.Stats(); hits == 0 {
		t.Fatal("warm instance recorded no cover-cache hits")
	}
}

// TestCacheHammerAcrossRebuilds is the -race guard for satellite (c):
// queriers hammer cache-hot ranges while the "snapshot" is repeatedly
// swapped for a freshly built structure. Because each structure owns
// its cache, a rebuild can never serve a stale decomposition — every
// sample must stay inside the queried position range of the structure
// that produced it.
func TestCacheHammerAcrossRebuilds(t *testing.T) {
	build := func(n int) *Chunked {
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = float64(i) + 0.5
			weights[i] = float64(1 + (i*3)%7)
		}
		ch, err := NewChunked(values, weights)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	var cur atomic.Pointer[Chunked]
	cur.Store(build(2048))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			var sc scratch.Arena
			var dst []int
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch := cur.Load()
				q := Interval{Lo: 100.5, Hi: 900.5}
				dst, _ = ch.QueryScratch(r, q, 32, dst[:0], &sc)
				for _, p := range dst {
					v := ch.values[p]
					if v < q.Lo || v > q.Hi {
						t.Errorf("sample value %v outside [%v, %v]", v, q.Lo, q.Hi)
						return
					}
				}
			}
		}(uint64(g) + 1)
	}
	// Swap snapshots under the queriers' feet; alternate sizes so a
	// stale cross-structure decomposition would index out of range.
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			cur.Store(build(1024))
		} else {
			cur.Store(build(4096))
		}
	}
	close(stop)
	wg.Wait()
}
