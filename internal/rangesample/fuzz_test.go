package rangesample

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// FuzzChunkedQuery differentially fuzzes the Theorem 3 structure against
// the Naive baseline: for any query bounds, both must agree on range
// membership, and Chunked's samples must stay inside the interval.
//
//	go test -fuzz=FuzzChunkedQuery ./internal/rangesample
func FuzzChunkedQuery(f *testing.F) {
	f.Add(0.1, 0.9, uint8(4))
	f.Add(-1.0, 2.0, uint8(1))
	f.Add(0.5, 0.5, uint8(16))
	f.Add(0.9, 0.1, uint8(3)) // inverted

	const n = 257
	values, weights := makeDataset(n, 123)
	// Rescale values into [0,1) fractions of n for denser fuzz hits.
	for i := range values {
		values[i] = values[i] / n
	}
	ck, err := NewChunked(values, weights)
	if err != nil {
		f.Fatal(err)
	}
	nv, err := NewNaive(values, weights)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, lo, hi float64, sRaw uint8) {
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Skip()
		}
		s := int(sRaw%32) + 1
		q := Interval{Lo: lo, Hi: hi}
		r := rng.New(9)
		outC, okC := ck.Query(r, q, s, nil)
		_, okN := nv.Query(r, q, s, nil)
		if okC != okN {
			t.Fatalf("emptiness disagreement for %v: chunked=%v naive=%v", q, okC, okN)
		}
		if !okC {
			return
		}
		if len(outC) != s {
			t.Fatalf("chunked returned %d of %d samples", len(outC), s)
		}
		for _, pos := range outC {
			v := ck.Value(pos)
			if v < lo || v > hi {
				t.Fatalf("sample %v outside [%v,%v]", v, lo, hi)
			}
		}
		// Weights must agree too.
		if math.Abs(ck.RangeWeight(q)-naiveRangeWeight(nv, q)) > 1e-6 {
			t.Fatalf("range weight disagreement for %v", q)
		}
	})
}

// naiveRangeWeight computes the range weight by scanning the baseline.
func naiveRangeWeight(nv *Naive, q Interval) float64 {
	sum := 0.0
	for i := 0; i < nv.Len(); i++ {
		if v := nv.Value(i); v >= q.Lo && v <= q.Hi {
			sum += nv.Weight(i)
		}
	}
	return sum
}
